// The paper's Fig 5 scenario: a Video-on-Demand application and a
// parallel/distributed application with *different* QOS requirements,
// served by different flow-control policies selected at NCS_init time.
//
// A VOD server streams real JPEG-compressed frames (apps/vod) to a client
// across the NYNET backbone while a P/D application pushes bulk transfers
// over the same hop. The client runs a playout (jitter-buffer) model; with
// greedy injection (flow=none) the clip arrives as one burst the client
// must buffer wholesale, with rate-based flow control it arrives on the
// stream's own cadence.
#include <cstdio>

#include "apps/vod.hpp"
#include "cluster/cluster.hpp"

using namespace ncs;
using namespace ncs::cluster;
using apps::vod::FrameSource;
using apps::vod::JitterBuffer;
using apps::vod::VideoParams;

namespace {

constexpr VideoParams kClip{.width = 320, .height = 240, .fps = 24, .frame_count = 48,
                            .quality = 60};

struct Outcome {
  JitterBuffer::Report playout;
  bool frames_ok = true;
  double avg_frame_bytes = 0;
};

Outcome run_vod(mps::FlowControlKind video_policy) {
  // Hosts 0 (site 0) -> 2 (site 1): the video crosses the DS-3 backbone;
  // 1 -> 3 is the P/D application's bulk traffic on the same hop.
  ClusterConfig cfg = nynet_wan(4);
  cfg.ncs.flow.kind = video_policy;
  // Pace at the stream's own average rate (measured from the source).
  FrameSource probe(kClip);
  std::size_t clip_bytes = 0;
  for (Bytes f = probe.next_frame(); !f.empty(); f = probe.next_frame())
    clip_bytes += f.size();
  cfg.ncs.flow.rate_bytes_per_sec =
      static_cast<double>(clip_bytes) / kClip.frame_count * kClip.fps;
  Cluster c(cfg);
  c.init_ncs_hsm();

  Outcome out;
  out.avg_frame_bytes = static_cast<double>(clip_bytes) / kClip.frame_count;
  auto buffer = std::make_shared<JitterBuffer>(kClip.fps, Duration::milliseconds(100));

  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      switch (rank) {
        case 0: {  // VOD server
          FrameSource source(kClip);
          for (Bytes f = source.next_frame(); !f.empty(); f = source.next_frame())
            node.send(0, 0, 2, f);
          break;
        }
        case 2: {  // VOD client with playout model
          FrameSource reference(kClip);
          for (int i = 0; i < kClip.frame_count; ++i) {
            const Bytes frame = node.recv(0, 0, 0);
            buffer->on_arrival(c.engine().now(), frame.size());
            if (i == 0) {  // spot-check content end-to-end
              const auto img = FrameSource::decode_frame(frame);
              out.frames_ok = apps::psnr(reference.reference_frame(0), img) > 30.0;
            }
          }
          break;
        }
        case 1:  // P/D application: bulk transfers over the same hop
          for (int i = 0; i < 24; ++i) node.send(0, 0, 3, Bytes(60000, std::byte{2}));
          break;
        case 3:
          for (int i = 0; i < 24; ++i) (void)node.recv(0, 1, 0);
          break;
        default: break;
      }
    });
    node.host().join(node.user_thread(t));
  });

  out.playout = buffer->report();
  return out;
}

}  // namespace

int main() {
  std::printf("QOS demo (paper Fig 5): a VOD stream and a P/D application share\n");
  std::printf("the NYNET backbone; the VOD node selects flow control at NCS_init.\n");
  std::printf("clip: %dx%d, %d fps, %d JPEG frames; client prebuffers 100 ms\n\n",
              kClip.width, kClip.height, kClip.fps, kClip.frame_count);

  for (const auto policy : {mps::FlowControlKind::none, mps::FlowControlKind::rate}) {
    const Outcome o = run_vod(policy);
    std::printf("  flow=%-5s  avg frame %5.1f KB  underruns %2d/%d  worst lateness %6.2f ms"
                "  peak client buffer %2d frames  %s\n",
                mps::to_string(policy), o.avg_frame_bytes / 1024.0, o.playout.underruns,
                o.playout.frames, o.playout.worst_lateness.ms(), o.playout.max_depth,
                o.frames_ok ? "(frame content verified)" : "FRAME CORRUPT");
  }

  std::printf("\nBoth policies play cleanly here — the difference is the client-side\n"
              "cost: greedy injection lands the whole clip almost at once, so the\n"
              "player must buffer nearly every frame; rate pacing keeps the buffer\n"
              "a few frames deep. Same messaging system, different QOS per\n"
              "application — the paper's modularity argument.\n");
  return 0;
}
