// Switched virtual circuits: Q.2931-style call setup over the signaling
// channel (VPI 0 / VCI 5), data on the dynamically assigned VC, teardown —
// first on a LAN, then across the NYNET backbone where the setup handshake
// pays real WAN propagation.
#include <cstdio>

#include "atm/signaling.hpp"

using namespace ncs;
using namespace ncs::atm;

namespace {

void lan_demo() {
  sim::Engine engine;
  LanConfig lc;
  lc.n_hosts = 3;
  AtmLan lan(engine, lc);
  CallController controller(engine, lan);

  std::printf("--- LAN: host 0 calls host 2 ---\n");
  controller.agent(2);  // callee comes online (accepts by default)

  VcId data_vc{};
  controller.agent(0).open_call(2, [&](Result<VcId> vc) {
    data_vc = vc.value();
    std::printf("[%s] call connected; transmit label VPI %u / VCI %u\n",
                engine.now().to_string().c_str(), data_vc.vpi, data_vc.vci);
  });
  engine.run();

  lan.nic(2).set_rx_handler([&](VcId vc, Bytes data, bool) {
    std::printf("[%s] host 2 received %zu bytes on VCI %u\n",
                engine.now().to_string().c_str(), data.size(), vc.vci);
  });
  lan.nic(0).submit_tx(data_vc, Bytes(2000, std::byte{0x33}), true);
  engine.run();

  controller.agent(0).release_call(data_vc);
  engine.run();
  std::printf("[%s] call released; %llu setups, %llu active\n\n",
              engine.now().to_string().c_str(),
              static_cast<unsigned long long>(controller.stats().setups),
              static_cast<unsigned long long>(controller.stats().active_calls));
}

void wan_demo() {
  sim::Engine engine;
  WanConfig wc;
  wc.n_hosts = 4;
  wc.nic.io_buffer_size = 9216;  // one 8 KB message = one I/O buffer
  AtmWan wan(engine, wc);
  WanCallController controller(engine, wan);

  std::printf("--- NYNET WAN: host 0 (site 0) calls host 3 (site 1) ---\n");
  controller.agent(3);

  VcId data_vc{};
  controller.agent(0).open_call(3, [&](Result<VcId> vc) {
    data_vc = vc.value();
    std::printf("[%s] cross-site call connected (setup crossed the DS-3 "
                "backbone %llu times)\n",
                engine.now().to_string().c_str(),
                static_cast<unsigned long long>(controller.stats().backbone_hops));
  });
  engine.run();

  wan.nic(3).set_rx_handler([&](VcId vc, Bytes data, bool) {
    std::printf("[%s] host 3 received %zu bytes on VCI %u, label-switched "
                "across both sites\n",
                engine.now().to_string().c_str(), data.size(), vc.vci);
  });
  wan.nic(0).submit_tx(data_vc, Bytes(8000, std::byte{0x44}), true);
  engine.run();
}

}  // namespace

int main() {
  std::printf("ATM switched virtual circuits (extension beyond the paper's "
              "preconfigured PVC mesh)\n\n");
  lan_demo();
  wan_demo();
  return 0;
}
