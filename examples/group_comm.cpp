// Group communication on the collective API: NCS_bcast / NCS_allreduce /
// NCS_allgather / NCS_reduce_scatter over an 8-workstation ATM LAN.
//
// The program never names an algorithm — coll::select picks one per call
// from the group size and payload size (binomial tree for the bcast,
// recursive doubling for the small allreduce, chunk-pipelined ring for the
// large one), and the printout asks the engine which it chose. Compare
// bench/coll_sweep, which forces each algorithm in turn and times them
// against each other.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "coll/engine.hpp"
#include "core/api.hpp"

using namespace ncs;
using namespace ncs::cluster;

int main() {
  constexpr int kProcs = 8;
  ClusterConfig config = sun_atm_lan(kProcs);
  Cluster cluster(config);
  cluster.init_ncs_hsm();

  cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);
    const int t = node.t_create([&, rank] {
      // 1-to-many: rank 0's model parameters reach everyone.
      Bytes params;
      if (rank == 0) params = to_bytes("model parameters, epoch 0");
      const Bytes model = api::NCS_bcast(0, params);

      // many-to-many, small: one scalar per rank (a global error term).
      const std::vector<double> err{static_cast<double>(rank) * 0.125};
      const auto total_err = api::NCS_allreduce(err);

      // many-to-many, large: 64 K doubles of "gradients" per rank.
      std::vector<double> grad(64 * 1024);
      for (std::size_t i = 0; i < grad.size(); ++i)
        grad[i] = static_cast<double>(rank + 1) / static_cast<double>(i + 1);
      const auto summed = api::NCS_allreduce(grad);

      // Everyone reports; rank 0 prints once, with the engine's choices.
      const auto views = api::NCS_allgather(to_bytes("done p" + std::to_string(rank)));
      if (rank == 0) {
        coll::Engine& eng = node.coll();
        std::printf("group of %d on the ATM LAN, HSM tier:\n", kProcs);
        std::printf("  bcast %zu B            -> %s\n", model.size(),
                    coll::to_string(eng.algorithm_for(coll::Op::bcast, model.size())));
        std::printf("  allreduce %zu B           -> %s (sum of errors: %.3f)\n",
                    err.size() * sizeof(double),
                    coll::to_string(
                        eng.algorithm_for(coll::Op::allreduce, err.size() * sizeof(double))),
                    total_err[0]);
        std::printf("  allreduce %zu B      -> %s (first gradient: %.3f)\n",
                    grad.size() * sizeof(double),
                    coll::to_string(
                        eng.algorithm_for(coll::Op::allreduce, grad.size() * sizeof(double))),
                    summed[0]);
        std::printf("  allgather: %zu reports, last = \"%.*s\"\n", views.size(),
                    static_cast<int>(views.back().size()),
                    reinterpret_cast<const char*>(views.back().data()));
        std::printf("finished at %s simulated\n",
                    cluster.engine().now().to_string().c_str());
      }
    });
    node.host().join(node.user_thread(t));
  });
  return 0;
}
