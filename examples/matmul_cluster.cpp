// Distributed matrix multiplication (the paper's Section 5.1 workload) as
// a library consumer would run it: pick a testbed, pick a runtime, compare.
#include <cstdio>

#include "cluster/drivers.hpp"
#include "cluster/table.hpp"

using namespace ncs::cluster;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;

  std::printf("Distributed %dx%d matrix multiplication, %d node processes\n\n",
              calibration().matmul_n, calibration().matmul_n, nodes);

  struct Case {
    const char* label;
    AppResult result;
  };
  const Case cases[] = {
      {"p4 on shared Ethernet", run_matmul_p4(sun_ethernet(0), nodes)},
      {"NCS_MTS/p4 on shared Ethernet", run_matmul_ncs(sun_ethernet(0), nodes)},
      {"p4 on the ATM LAN", run_matmul_p4(sun_atm_lan(0), nodes)},
      {"NCS_MTS/p4 on the ATM LAN", run_matmul_ncs(sun_atm_lan(0), nodes)},
      {"NCS/HSM straight on the ATM API", run_matmul_ncs(sun_atm_lan(0), nodes, NcsTier::hsm_atm)},
      {"collective API (bcast/scatter/gather)", run_matmul_coll(sun_atm_lan(0), nodes)},
  };

  for (const Case& c : cases)
    std::printf("  %-34s %8.3f s   %s\n", c.label, c.result.elapsed.sec(),
                c.result.correct ? "(verified against sequential C=A*B)" : "WRONG RESULT");

  std::printf("\nimprovement of NCS over p4, Ethernet: %5.2f %%\n",
              improvement_pct(cases[0].result.elapsed, cases[1].result.elapsed));
  std::printf("improvement of NCS over p4, ATM:      %5.2f %%\n",
              improvement_pct(cases[2].result.elapsed, cases[3].result.elapsed));
  std::printf("HSM over NSM on ATM:                  %5.2f %%\n",
              improvement_pct(cases[3].result.elapsed, cases[4].result.elapsed));
  std::printf("\nThe last row replaces the hand-rolled host/node message loops with\n"
              "NCS_bcast / NCS_scatter / NCS_gather; coll::select picks flat, tree,\n"
              "or ring per call from the group and payload size (see bench/coll_sweep).\n");
  return 0;
}
