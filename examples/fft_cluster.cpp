// The paper's distributed DIF FFT (Section 5.3): M-point transforms over
// N node processes with two threads each, verified against the reference
// DFT, swept over node counts.
#include <cstdio>

#include "apps/fft.hpp"
#include "cluster/drivers.hpp"

using namespace ncs;
using namespace ncs::cluster;

int main() {
  const auto& cal = calibration();
  std::printf("Distributed DIF FFT: M = %zu points, %d sample sets\n\n", cal.fft_m,
              cal.fft_sample_sets);

  // Show the kernel is a real FFT: one spectrum line.
  const auto samples = apps::fft::make_samples(cal.fft_m, 0);
  const auto spectrum = apps::fft::fft(samples);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < spectrum.size() / 2; ++i)
    if (std::abs(spectrum[i]) > std::abs(spectrum[peak])) peak = i;
  std::printf("dominant tone of sample set 0: bin %zu (|X| = %.1f)\n\n", peak,
              std::abs(spectrum[peak]));

  std::printf("%-7s %14s %16s %10s\n", "nodes", "p4 (s)", "NCS 2 thr (s)", "gain");
  for (const int nodes : {1, 2, 4, 8}) {
    const AppResult p4_run = run_fft_p4(sun_ethernet(0), nodes);
    const AppResult ncs_run = run_fft_ncs(sun_ethernet(0), nodes);
    std::printf("%-7d %14.3f %16.3f %9.2f%%  %s\n", nodes, p4_run.elapsed.sec(),
                ncs_run.elapsed.sec(),
                (p4_run.elapsed - ncs_run.elapsed).sec() / p4_run.elapsed.sec() * 100.0,
                p4_run.correct && ncs_run.correct ? "" : "WRONG RESULT");
  }

  const AppResult coll_run = run_fft_coll(sun_atm_lan(0), 4);
  std::printf("\ncollective API, 4 nodes on the ATM LAN (scatter + gather): %.3f s %s\n",
              coll_run.elapsed.sec(), coll_run.correct ? "" : "WRONG RESULT");
  std::printf("\nEach thread owns M/(2T) butterfly rows (paper Fig 21): log2(T)\n"
              "exchange stages, then an independent local sub-FFT; the final\n"
              "exchange between the two threads of a node never touches the wire.\n");
  return 0;
}
