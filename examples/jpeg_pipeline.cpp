// The paper's JPEG compression/decompression pipeline (Section 5.2) with a
// live activity timeline: half the nodes compress, the other half
// decompress, two threads per node overlap the stage hand-offs.
#include <cstdio>

#include "apps/image.hpp"
#include "apps/jpeg/codec.hpp"
#include "cluster/drivers.hpp"

using namespace ncs;
using namespace ncs::cluster;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;

  const auto& cal = calibration();
  std::printf("JPEG pipeline: %dx%d (%zu KB) image, %d compressors -> %d decompressors\n\n",
              cal.jpeg_width, cal.jpeg_height,
              static_cast<std::size_t>(cal.jpeg_width) * static_cast<std::size_t>(cal.jpeg_height) /
                  1024,
              nodes / 2, nodes / 2);

  // How well does the codec itself do on this material?
  const apps::Image img = apps::make_test_image(cal.jpeg_width, cal.jpeg_height, 7);
  const Bytes stream = apps::jpeg::compress(img);
  const apps::Image back = apps::jpeg::decompress(stream);
  std::printf("codec: %zu -> %zu bytes (%.1f:1), PSNR %.1f dB\n\n", img.size_bytes(),
              stream.size(), static_cast<double>(img.size_bytes()) / static_cast<double>(stream.size()),
              apps::psnr(img, back));

  const AppResult p4_run = run_jpeg_p4(sun_ethernet(0), nodes);
  const AppResult ncs_run = run_jpeg_ncs(sun_ethernet(0), nodes);
  const AppResult hsm_run = run_jpeg_ncs(sun_atm_lan(0), nodes, NcsTier::hsm_atm);
  const AppResult coll_run = run_jpeg_coll(sun_atm_lan(0), nodes);

  std::printf("pipeline, single-threaded p4 (Ethernet):   %7.3f s %s\n", p4_run.elapsed.sec(),
              p4_run.correct ? "" : "WRONG RESULT");
  std::printf("pipeline, NCS 2 threads/node (Ethernet):   %7.3f s %s\n", ncs_run.elapsed.sec(),
              ncs_run.correct ? "" : "WRONG RESULT");
  std::printf("pipeline, NCS/HSM on the ATM LAN:          %7.3f s %s\n", hsm_run.elapsed.sec(),
              hsm_run.correct ? "" : "WRONG RESULT");
  std::printf("collective API (scatter/gather/allreduce): %7.3f s %s\n", coll_run.elapsed.sec(),
              coll_run.correct ? "" : "WRONG RESULT");
  std::printf("\nthreading hides %.1f %% of the p4 pipeline's stalls; the ATM API\n"
              "tier removes most of the remaining protocol cost.\n",
              (p4_run.elapsed - ncs_run.elapsed).sec() / p4_run.elapsed.sec() * 100.0);
  return 0;
}
