// Quickstart: the paper's Fig 10 "generic model for application programs",
// written against the public API.
//
// Builds a two-workstation ATM LAN, initializes NCS on the HSM tier
// (NCS_init), creates compute threads (NCS_t_create), and exchanges
// thread-addressed messages (NCS_send / NCS_recv) — including the blocking
// behaviour the whole system is about: while one thread waits for a
// message, its sibling keeps computing.
#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/report.hpp"

using namespace ncs;
using namespace ncs::cluster;

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) json = json || std::strcmp(argv[i], "--json") == 0;
  // Two SPARCstation-class hosts on a FORE-style ATM switch.
  ClusterConfig config = sun_atm_lan(/*n_procs=*/2);
  Cluster cluster(config);
  cluster.init_ncs_hsm();  // NCS approach 2: straight on the ATM API

  cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);  // this process's NCS runtime

    if (rank == 0) {
      // THREAD0 sends a greeting to (process 1, thread 0) and waits for
      // the echo; THREAD1 computes meanwhile.
      const int t0 = node.t_create([&] {
        node.send(/*from_thread=*/0, /*to_thread=*/0, /*to_process=*/1,
                  to_bytes("hello from process 0"));
        const Bytes reply = node.recv(/*from_thread=*/0, /*from_process=*/1, /*to_thread=*/0);
        std::printf("[p0/t0 @ %s] got reply: \"%.*s\"\n",
                    cluster.engine().now().to_string().c_str(),
                    static_cast<int>(reply.size()),
                    reinterpret_cast<const char*>(reply.data()));
      });
      const int t1 = node.t_create([&] {
        node.host().charge_cycles(2e6, sim::Activity::compute);  // 50 ms of work
        std::printf("[p0/t1 @ %s] finished computing while t0 waited\n",
                    cluster.engine().now().to_string().c_str());
      });
      node.host().join(node.user_thread(t0));
      node.host().join(node.user_thread(t1));
    } else {
      const int t0 = node.t_create([&] {
        int src_thread = 0, src_process = 0;
        const Bytes msg = node.recv(mps::kAnyThread, mps::kAnyProcess, /*to_thread=*/0,
                                    &src_thread, &src_process);
        std::printf("[p1/t0 @ %s] received %zu bytes from (p%d, t%d)\n",
                    cluster.engine().now().to_string().c_str(), msg.size(), src_process,
                    src_thread);
        node.send(0, src_thread, src_process, to_bytes("echo: " + std::string(
                      reinterpret_cast<const char*>(msg.data()), msg.size())));
      });
      node.host().join(node.user_thread(t0));
    }
  });

  std::printf("simulation finished at %s\n\n", cluster.engine().now().to_string().c_str());
  if (json) {
    std::fputs(ncs::cluster::report_json(cluster).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(ncs::cluster::report(cluster).c_str(), stdout);
  }
  return 0;
}
