#include "qt/stack.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace ncs::qt {
namespace {

TEST(Stack, SizeRoundedToPageAndUsable) {
  Stack s(1000);  // will round up to one page
  EXPECT_GE(s.size(), 1000u);
  EXPECT_EQ(s.size() % 4096, 0u);
  // The whole usable region is writable.
  std::memset(s.base(), 0xCD, s.size());
}

TEST(Stack, TopIsBasePlusSize) {
  Stack s(64 * 1024);
  EXPECT_EQ(static_cast<char*>(s.top()) - static_cast<char*>(s.base()),
            static_cast<std::ptrdiff_t>(s.size()));
}

TEST(Stack, WatermarkZeroWhenUnpainted) {
  Stack s(64 * 1024);
  EXPECT_EQ(s.high_watermark(), 0u);
}

TEST(Stack, WatermarkTracksDeepestTouch) {
  Stack s(64 * 1024);
  s.paint();
  EXPECT_EQ(s.high_watermark(), 0u);
  // Touch 1 KiB from the top (stacks grow down).
  auto* top = static_cast<std::uint64_t*>(s.top());
  top[-128] = 42;  // 1024 bytes below top
  EXPECT_EQ(s.high_watermark(), 1024u);
  top[-1024] = 43;  // 8192 bytes below top
  EXPECT_EQ(s.high_watermark(), 8192u);
}

TEST(Stack, MoveTransfersOwnership) {
  Stack a(64 * 1024);
  void* base = a.base();
  Stack b(std::move(a));
  EXPECT_EQ(b.base(), base);
  EXPECT_EQ(a.base(), nullptr);
  std::memset(b.base(), 0, b.size());
}

TEST(StackDeathTest, GuardPageFaultsOnOverflow) {
  Stack s(16 * 1024);
  auto* below = static_cast<char*>(s.base()) - 16;  // inside the guard page
  EXPECT_DEATH({ *below = 1; }, "");
}

}  // namespace
}  // namespace ncs::qt
