#include "qt/context.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "qt/stack.hpp"

namespace ncs::qt {
namespace {

// Contexts used by the test fixtures. Plain globals: the tests are
// single-threaded and each sets these up before switching.
Context g_main;
Context g_fiber_a;
Context g_fiber_b;
std::vector<std::string> g_log;

void simple_entry(void* arg) {
  g_log.push_back("enter:" + std::string(static_cast<const char*>(arg)));
  Context::switch_to(g_fiber_a, g_main);
  g_log.push_back("resume");
  Context::switch_to(g_fiber_a, g_main);
  // never reached
}

TEST(Context, SwitchInAndOutPreservesControlFlow) {
  g_log.clear();
  Stack stack;
  g_fiber_a.init(stack, simple_entry, const_cast<char*>("x"));

  Context::switch_to(g_main, g_fiber_a);
  g_log.push_back("back-in-main");
  Context::switch_to(g_main, g_fiber_a);
  g_log.push_back("back-again");

  EXPECT_EQ(g_log, (std::vector<std::string>{"enter:x", "back-in-main", "resume", "back-again"}));
}

void arg_entry(void* arg) {
  *static_cast<int*>(arg) = 1234;
  Context::switch_to(g_fiber_a, g_main);
}

TEST(Context, ArgumentIsDeliveredToEntry) {
  Stack stack;
  int value = 0;
  g_fiber_a.init(stack, arg_entry, &value);
  Context::switch_to(g_main, g_fiber_a);
  EXPECT_EQ(value, 1234);
}

void ping_entry(void*);
void pong_entry(void*);

int g_ping_count = 0;

void ping_entry(void*) {
  for (int i = 0; i < 10; ++i) {
    ++g_ping_count;
    Context::switch_to(g_fiber_a, g_fiber_b);
  }
  Context::switch_to(g_fiber_a, g_main);
}

void pong_entry(void*) {
  for (;;) {
    ++g_ping_count;
    Context::switch_to(g_fiber_b, g_fiber_a);
  }
}

TEST(Context, FiberToFiberSwitching) {
  Stack sa, sb;
  g_ping_count = 0;
  g_fiber_a.init(sa, ping_entry, nullptr);
  g_fiber_b.init(sb, pong_entry, nullptr);
  Context::switch_to(g_main, g_fiber_a);
  EXPECT_EQ(g_ping_count, 20);
}

void locals_entry(void* arg) {
  // Locals on the fiber stack must survive a switch-out/switch-in.
  volatile double x = 3.5;
  volatile int y = 21;
  std::string s = "stack-local";
  Context::switch_to(g_fiber_a, g_main);
  *static_cast<bool*>(arg) = (x == 3.5 && y == 21 && s == "stack-local");
  Context::switch_to(g_fiber_a, g_main);
}

TEST(Context, StackLocalsSurviveSwitches) {
  Stack stack;
  bool ok = false;
  g_fiber_a.init(stack, locals_entry, &ok);
  Context::switch_to(g_main, g_fiber_a);
  Context::switch_to(g_main, g_fiber_a);
  EXPECT_TRUE(ok);
}

void fp_entry(void* arg) {
  // Floating-point computation interleaved across switches: callee-saved
  // FP control state must be preserved.
  double acc = 0.0;
  for (int i = 1; i <= 4; ++i) {
    acc += std::sqrt(static_cast<double>(i) * 2.0);
    Context::switch_to(g_fiber_a, g_main);
  }
  *static_cast<double*>(arg) = acc;
  Context::switch_to(g_fiber_a, g_main);
}

TEST(Context, FloatingPointAcrossSwitches) {
  Stack stack;
  double result = 0.0;
  g_fiber_a.init(stack, fp_entry, &result);
  double main_acc = 0.0;
  for (int i = 0; i < 5; ++i) {
    Context::switch_to(g_main, g_fiber_a);
    main_acc += std::sqrt(7.0);  // clobber FP regs on the main side
  }
  const double expected = std::sqrt(2.0) + std::sqrt(4.0) + std::sqrt(6.0) + std::sqrt(8.0);
  EXPECT_DOUBLE_EQ(result, expected);
  EXPECT_GT(main_acc, 0.0);
}

int deep_recurse(int depth) {
  volatile char frame[512];
  frame[0] = static_cast<char>(depth);
  if (depth == 0) return frame[0];
  return deep_recurse(depth - 1) + frame[0];
}

void deep_entry(void*) {
  // ~128 levels x >=512B frames: at least 64 KiB of stack.
  volatile int sink = deep_recurse(128);
  (void)sink;
  Context::switch_to(g_fiber_a, g_main);
}

TEST(Context, DeepStackUsageWithinLimitsWorks) {
  Stack stack(256 * 1024);
  stack.paint();
  g_fiber_a.init(stack, deep_entry, nullptr);
  Context::switch_to(g_main, g_fiber_a);
  EXPECT_GE(stack.high_watermark(), 64u * 1024u);
}

}  // namespace
}  // namespace ncs::qt
