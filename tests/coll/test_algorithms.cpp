// Forced-algorithm correctness of every collective on a live cluster:
// each test pins one algorithm through Node::Options::coll and checks the
// collective's contract at group sizes the algorithm finds awkward
// (non-power-of-two P, payloads shorter than the group, empty payloads).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "cluster/cluster.hpp"
#include "coll/algorithms.hpp"
#include "coll/engine.hpp"
#include "core/api.hpp"
#include "core/mps/node.hpp"

namespace ncs::coll {
namespace {

using cluster::Cluster;
using mps::Node;

std::unique_ptr<Cluster> make_cluster(int n_procs, const Params& params = {}) {
  cluster::ClusterConfig cfg = cluster::sun_atm_lan(n_procs);
  cfg.ncs.coll = params;
  auto c = std::make_unique<Cluster>(std::move(cfg));
  c->init_ncs_hsm();
  return c;
}

/// Runs `body(rank)` as one user thread per process.
void run_threads(Cluster& c, std::function<void(int)> body) {
  c.run([&c, body](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([body, rank] { body(rank); });
    node.host().join(node.user_thread(t));
  });
}

Params force(Op op, Algorithm a) {
  Params p;
  p.set_force(op, a);
  return p;
}

TEST(Algorithms, BinomialBcastNonPowerOfTwoAnyRoot) {
  auto c = make_cluster(5, force(Op::bcast, Algorithm::binomial_tree));
  const Bytes payload = to_bytes("tree broadcast payload");
  std::vector<Bytes> got(5);
  run_threads(*c, [&](int rank) {
    got[static_cast<std::size_t>(rank)] =
        c->node(rank).bcast(3, rank == 3 ? BytesView(payload) : BytesView{});
  });
  for (const Bytes& b : got) EXPECT_EQ(b, payload);
  for (int r = 0; r < 5; ++r)
    EXPECT_EQ(c->node(r).coll().algorithm_for(Op::bcast, payload.size()),
              Algorithm::binomial_tree);
}

TEST(Algorithms, BinomialGatherNonPowerOfTwoAnyRoot) {
  auto c = make_cluster(5, force(Op::gather, Algorithm::binomial_tree));
  std::vector<Bytes> at_root;
  run_threads(*c, [&](int rank) {
    // Contribution lengths differ by rank, so misrouted blob merges would
    // show up as size mismatches, not just reordered bytes.
    auto out = c->node(rank).gather(
        2, to_bytes(std::string(static_cast<std::size_t>(rank) + 1, static_cast<char>('a' + rank))));
    if (rank == 2) at_root = std::move(out);
    else EXPECT_TRUE(out.empty());
  });
  ASSERT_EQ(at_root.size(), 5u);
  for (int p = 0; p < 5; ++p)
    EXPECT_EQ(at_root[static_cast<std::size_t>(p)],
              to_bytes(std::string(static_cast<std::size_t>(p) + 1, static_cast<char>('a' + p))));
}

TEST(Algorithms, BinomialScatterNonPowerOfTwoAnyRoot) {
  auto c = make_cluster(5, force(Op::scatter, Algorithm::binomial_tree));
  std::vector<Bytes> mine(5);
  run_threads(*c, [&](int rank) {
    std::vector<Bytes> payloads;
    if (rank == 4)
      for (int p = 0; p < 5; ++p)
        payloads.push_back(to_bytes(std::string(static_cast<std::size_t>(5 - p), static_cast<char>('A' + p))));
    mine[static_cast<std::size_t>(rank)] = c->node(rank).scatter(4, payloads);
  });
  for (int p = 0; p < 5; ++p)
    EXPECT_EQ(mine[static_cast<std::size_t>(p)],
              to_bytes(std::string(static_cast<std::size_t>(5 - p), static_cast<char>('A' + p))));
}

TEST(Algorithms, BinomialReduceNonPowerOfTwo) {
  auto c = make_cluster(5, force(Op::reduce, Algorithm::binomial_tree));
  std::vector<double> at_root;
  run_threads(*c, [&](int rank) {
    const std::vector<double> mine{static_cast<double>(rank), 1.0, static_cast<double>(rank * rank)};
    auto out = c->node(rank).reduce_sum(1, mine);
    if (rank == 1) at_root = std::move(out);
    else EXPECT_TRUE(out.empty());
  });
  ASSERT_EQ(at_root.size(), 3u);
  EXPECT_DOUBLE_EQ(at_root[0], 0 + 1 + 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(at_root[1], 5.0);
  EXPECT_DOUBLE_EQ(at_root[2], 0 + 1 + 4 + 9 + 16);
}

TEST(Algorithms, DisseminationBarrierSeparatesPhases) {
  constexpr int kProcs = 5, kPhases = 4;
  auto c = make_cluster(kProcs, force(Op::barrier, Algorithm::dissemination));
  std::vector<int> log;  // phase number per arrival, in simulated-time order
  run_threads(*c, [&](int rank) {
    Node& node = c->node(rank);
    for (int phase = 0; phase < kPhases; ++phase) {
      log.push_back(phase);
      node.barrier();
    }
  });
  // Every process logs phase k before any process may log phase k+1.
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kProcs * kPhases));
  for (int phase = 0; phase < kPhases; ++phase)
    for (int p = 0; p < kProcs; ++p)
      EXPECT_EQ(log[static_cast<std::size_t>(phase * kProcs + p)], phase);
}

TEST(Algorithms, RecursiveDoublingNonPowerOfTwoIdenticalEverywhere) {
  for (const int procs : {3, 5}) {
    auto c = make_cluster(procs, force(Op::allreduce, Algorithm::recursive_doubling));
    std::vector<std::vector<double>> results(static_cast<std::size_t>(procs));
    run_threads(*c, [&](int rank) {
      std::vector<double> mine(7);
      for (std::size_t i = 0; i < mine.size(); ++i)
        mine[i] = static_cast<double>(rank + 1) * static_cast<double>(i + 1);
      results[static_cast<std::size_t>(rank)] = c->node(rank).allreduce_sum(mine);
    });
    const double ranks = static_cast<double>(procs) * static_cast<double>(procs + 1) / 2.0;
    for (int p = 0; p < procs; ++p) {
      ASSERT_EQ(results[static_cast<std::size_t>(p)].size(), 7u) << "P=" << procs;
      for (std::size_t i = 0; i < 7; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(p)][i], ranks * static_cast<double>(i + 1))
            << "P=" << procs << " rank " << p;
    }
  }
}

TEST(Algorithms, RingAllreduceUnevenAndShortVectors) {
  Params p = force(Op::allreduce, Algorithm::ring);
  p.ring_chunk_bytes = 16;  // force multi-chunk segments even at this size
  // n = 10 (not divisible by P) and n = 2 (< P: some segments are empty).
  for (const std::size_t n : {std::size_t{10}, std::size_t{2}}) {
    auto c = make_cluster(4, p);
    std::vector<std::vector<double>> results(4);
    run_threads(*c, [&](int rank) {
      std::vector<double> mine(n);
      for (std::size_t i = 0; i < n; ++i)
        mine[i] = static_cast<double>(rank) + static_cast<double>(i) * 0.25;
      results[static_cast<std::size_t>(rank)] = c->node(rank).allreduce_sum(mine);
    });
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(results[static_cast<std::size_t>(r)].size(), n) << "n=" << n;
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(r)][i], 6.0 + 4.0 * static_cast<double>(i) * 0.25)
            << "n=" << n << " rank " << r;
    }
  }
}

TEST(Algorithms, ChunkElemsClampsToWholeElements) {
  // Regression: a chunk_bytes below sizeof(double) used to truncate to 0
  // elements, silently degrading the ring pipeline to one whole-payload
  // chunk. Any nonzero request now yields at least one element per chunk.
  for (std::size_t b = 1; b < sizeof(double); ++b)
    EXPECT_EQ(chunk_elems(b, 1000), 1u) << "chunk_bytes=" << b;
  EXPECT_EQ(chunk_elems(sizeof(double), 1000), 1u);
  EXPECT_EQ(chunk_elems(4 * sizeof(double), 1000), 4u);
  // Fractional element counts round down to whole elements.
  EXPECT_EQ(chunk_elems(3 * sizeof(double) + 5, 1000), 3u);
  // chunk_bytes == 0 disables chunking: one chunk covers the payload,
  // and an empty payload still produces a nonzero granularity.
  EXPECT_EQ(chunk_elems(0, 1000), 1000u);
  EXPECT_EQ(chunk_elems(0, 0), 1u);
}

TEST(Algorithms, RingAllreduceCorrectWithSubElementChunkBytes) {
  // End-to-end guard for the clamp: chunk_bytes = 1 must still produce a
  // correct allreduce (per-element pipelining, not a degenerate chunk).
  Params p = force(Op::allreduce, Algorithm::ring);
  p.ring_chunk_bytes = 1;
  auto c = make_cluster(4, p);
  constexpr std::size_t kN = 6;
  std::vector<std::vector<double>> results(4);
  run_threads(*c, [&](int rank) {
    std::vector<double> mine(kN);
    for (std::size_t i = 0; i < kN; ++i)
      mine[i] = static_cast<double>(rank + 1) * static_cast<double>(i);
    results[static_cast<std::size_t>(rank)] = c->node(rank).allreduce_sum(mine);
  });
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(results[static_cast<std::size_t>(r)].size(), kN);
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_EQ(results[static_cast<std::size_t>(r)][i],
                10.0 * static_cast<double>(i))
          << "rank " << r;
  }
}

TEST(Algorithms, RingAllgatherKeepsRankOrderWithVaryingSizes) {
  auto c = make_cluster(5, force(Op::allgather, Algorithm::ring));
  std::vector<std::vector<Bytes>> views(5);
  run_threads(*c, [&](int rank) {
    views[static_cast<std::size_t>(rank)] = c->node(rank).allgather(
        to_bytes(std::string(static_cast<std::size_t>(rank) + 1, static_cast<char>('p' + rank))));
  });
  for (int me = 0; me < 5; ++me) {
    ASSERT_EQ(views[static_cast<std::size_t>(me)].size(), 5u);
    for (int p = 0; p < 5; ++p)
      EXPECT_EQ(views[static_cast<std::size_t>(me)][static_cast<std::size_t>(p)],
                to_bytes(std::string(static_cast<std::size_t>(p) + 1, static_cast<char>('p' + p))));
  }
}

TEST(Algorithms, RingReduceScatterMatchesSegmentPartition) {
  auto c = make_cluster(4, force(Op::reduce_scatter, Algorithm::ring));
  constexpr std::size_t kN = 10;
  std::vector<std::vector<double>> results(4);
  run_threads(*c, [&](int rank) {
    std::vector<double> mine(kN);
    for (std::size_t i = 0; i < kN; ++i)
      mine[i] = static_cast<double>(rank + 1) * static_cast<double>(i);
    results[static_cast<std::size_t>(rank)] = c->node(rank).reduce_scatter_sum(mine);
  });
  for (int r = 0; r < 4; ++r) {
    const Segment seg = segment_of(kN, 4, r);
    ASSERT_EQ(results[static_cast<std::size_t>(r)].size(), seg.len);
    for (std::size_t i = 0; i < seg.len; ++i)
      EXPECT_EQ(results[static_cast<std::size_t>(r)][i],
                10.0 * static_cast<double>(seg.begin + i));
  }
}

TEST(Algorithms, EmptyPayloadsFlowThroughScalableAlgorithms) {
  auto c = make_cluster(4);  // P = 4: tree/ring/dissemination by default
  std::vector<Bytes> bcast_got(4);
  std::vector<Bytes> gathered;
  std::vector<std::vector<Bytes>> allgathered(4);
  std::vector<double> reduced{-1.0};
  run_threads(*c, [&](int rank) {
    Node& node = c->node(rank);
    bcast_got[static_cast<std::size_t>(rank)] = node.bcast(0, {});
    auto g = node.gather(0, {});
    if (rank == 0) gathered = std::move(g);
    allgathered[static_cast<std::size_t>(rank)] = node.allgather({});
    auto r = node.allreduce_sum({});
    if (rank == 0) reduced = std::move(r);
    node.barrier();
  });
  for (const Bytes& b : bcast_got) EXPECT_TRUE(b.empty());
  ASSERT_EQ(gathered.size(), 4u);
  for (const Bytes& b : gathered) EXPECT_TRUE(b.empty());
  for (const auto& view : allgathered) {
    ASSERT_EQ(view.size(), 4u);
    for (const Bytes& b : view) EXPECT_TRUE(b.empty());
  }
  EXPECT_TRUE(reduced.empty());
}

TEST(Algorithms, SingleProcessCollectivesAreIdentities) {
  auto c = make_cluster(1);
  run_threads(*c, [&](int rank) {
    Node& node = c->node(rank);
    EXPECT_EQ(node.bcast(0, to_bytes("solo")), to_bytes("solo"));
    const auto gathered = node.gather(0, to_bytes("me"));
    ASSERT_EQ(gathered.size(), 1u);
    EXPECT_EQ(gathered[0], to_bytes("me"));
    const std::vector<Bytes> one{to_bytes("slice")};
    EXPECT_EQ(node.scatter(0, one), to_bytes("slice"));
    const std::vector<double> v{1.5, -2.0};
    EXPECT_EQ(node.allreduce_sum(v), v);
    EXPECT_EQ(node.reduce_scatter_sum(v), v);
    const auto view = node.allgather(to_bytes("x"));
    ASSERT_EQ(view.size(), 1u);
    node.barrier();
  });
  EXPECT_EQ(c->node(0).stats().collectives, 7u);
}

TEST(Algorithms, MixedOpsBackToBackStayInPhase) {
  auto c = make_cluster(4);
  bool ok = true;
  run_threads(*c, [&](int rank) {
    Node& node = c->node(rank);
    for (int round = 0; round < 3; ++round) {
      const Bytes b = node.bcast(round % 4, to_bytes("r" + std::to_string(round)));
      if (b != to_bytes("r" + std::to_string(round))) ok = false;
      const std::vector<double> v{static_cast<double>(rank + round)};
      const auto sum = node.allreduce_sum(v);
      if (sum.size() != 1 || sum[0] != static_cast<double>(6 + 4 * round)) ok = false;
      node.barrier();
      const auto view = node.allgather(to_bytes(std::to_string(rank)));
      if (view.size() != 4 || view[3] != to_bytes("3")) ok = false;
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(c->node(2).stats().collectives, 12u);
}

TEST(Algorithms, ApiWrappersReachTheEngine) {
  auto c = make_cluster(4);
  std::vector<double> reduced;
  run_threads(*c, [&](int rank) {
    const Bytes b = api::NCS_bcast(1, rank == 1 ? BytesView(to_bytes("via api")) : BytesView{});
    EXPECT_EQ(b, to_bytes("via api"));
    const std::vector<double> v{static_cast<double>(rank)};
    auto r = api::NCS_allreduce(v);
    if (rank == 0) reduced = std::move(r);
    const auto view = api::NCS_allgather(to_bytes("g" + std::to_string(rank)));
    EXPECT_EQ(view.size(), 4u);
    const auto mine = api::NCS_reduce_scatter(std::vector<double>{1.0, 2.0, 3.0, 4.0});
    ASSERT_EQ(mine.size(), 1u);
    EXPECT_EQ(mine[0], static_cast<double>((rank + 1) * 4));
  });
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_DOUBLE_EQ(reduced[0], 0 + 1 + 2 + 3);
}

}  // namespace
}  // namespace ncs::coll
