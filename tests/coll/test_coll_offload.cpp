// NIC-offloaded collectives at the cluster level: bit-identity against the
// host algorithms, the abort-window double-contribution regression, and
// fault-driven fallback/re-arm with the no-leaked-contexts census.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/drivers.hpp"
#include "coll/algorithms.hpp"
#include "coll/select.hpp"
#include "core/mps/node.hpp"

namespace ncs::coll {
namespace {

using namespace ncs::literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using mps::Node;

/// Irrational contributions: any fold-order deviation (a duplicate or a
/// dropped contribution slipping through recovery) changes the bits.
std::vector<double> contribution(int rank, std::size_t n) {
  std::vector<double> mine(n);
  for (std::size_t i = 0; i < n; ++i)
    mine[i] = std::sin(static_cast<double>(rank + 1) * (static_cast<double>(i) + 0.5));
  return mine;
}

/// Small-integer contributions: every partial sum is exactly representable,
/// so the digest is fold-order independent — the one case where a NIC tree
/// fold and a host recursive doubling must agree bit for bit.
std::vector<double> integer_contribution(int rank, std::size_t n) {
  std::vector<double> mine(n);
  for (std::size_t i = 0; i < n; ++i)
    mine[i] = static_cast<double>((static_cast<std::size_t>(rank + 1) * (i + 3)) % 97);
  return mine;
}

struct Outcome {
  std::uint64_t hash = 0;  // FNV-1a over every rank's results, in rank order
  std::uint64_t fallbacks = 0;
  std::uint64_t rearms = 0;
  std::uint64_t nic_completions = 0;
  std::uint64_t late_drops = 0;
  std::size_t contexts_leaked = 0;
  Duration elapsed;
};

/// Each rank runs `ops` rounds of allreduce+bcast with a barrier between
/// rounds; the digest covers every rank's allreduce results and received
/// bcast payloads.
Outcome run_mixed_collectives(ClusterConfig cfg, int procs, std::size_t n, int ops,
                              bool integer_inputs = false) {
  Cluster c(std::move(cfg));
  c.init_ncs_hsm();

  std::vector<std::vector<double>> sums(static_cast<std::size_t>(procs));
  std::vector<Bytes> casts(static_cast<std::size_t>(procs));
  const Duration elapsed = c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      const std::vector<double> mine =
          integer_inputs ? integer_contribution(rank, n) : contribution(rank, n);
      for (int op = 0; op < ops; ++op) {
        std::vector<double> s = node.allreduce_sum(mine);
        for (double v : s) sums[static_cast<std::size_t>(rank)].push_back(v);
        const Bytes payload =
            rank == 0 ? pack_doubles(s) : Bytes{};
        Bytes got = node.bcast(0, payload);
        append(casts[static_cast<std::size_t>(rank)], got);
        node.barrier();
      }
    });
    node.host().join(node.user_thread(t));
  });

  Outcome out;
  out.elapsed = elapsed;
  out.hash = 0xCBF29CE484222325ull;
  for (const auto& s : sums)
    out.hash = cluster::fnv1a(s.data(), s.size() * sizeof(double), out.hash);
  for (const auto& b : casts) out.hash = cluster::fnv1a(b.data(), b.size(), out.hash);
  if (c.has_coll_offload()) {
    for (int r = 0; r < procs; ++r) {
      out.fallbacks += c.coll_port(r).stats().fallbacks;
      out.rearms += c.coll_port(r).stats().rearms;
      out.nic_completions += c.coll_port(r).engine().stats().completions;
      out.late_drops += c.coll_port(r).engine().stats().late_drops;
      out.contexts_leaked += c.coll_port(r).engine().pending_ops();
    }
  }
  return out;
}

TEST(CollOffload, OffloadedResultsBitIdenticalToHostAlgorithms) {
  constexpr int kProcs = 8;
  constexpr std::size_t kN = 32;  // 256 B: inside the offload size window

  // Integer inputs: host recursive doubling and the NIC tree fold sum in
  // different orders, and only exactly-representable sums let results be
  // compared bit for bit across *algorithms*. (Offload-vs-fallback
  // identity, which holds for any doubles, is the fault tests' job.)
  ClusterConfig host_cfg = cluster::sun_atm_lan(kProcs);
  const Outcome host = run_mixed_collectives(host_cfg, kProcs, kN, 3, true);

  ClusterConfig off_cfg = cluster::sun_atm_lan(kProcs);
  off_cfg.ncs.coll.nic_offload = true;
  const Outcome offloaded = run_mixed_collectives(off_cfg, kProcs, kN, 3, true);

  // The offload path really ran (NIC completions on every rank, no
  // fallback), finished every operation, and produced the same bits the
  // host algorithms produce.
  EXPECT_GT(offloaded.nic_completions, 0u);
  EXPECT_EQ(offloaded.fallbacks, 0u);
  EXPECT_EQ(offloaded.contexts_leaked, 0u);
  EXPECT_EQ(offloaded.hash, host.hash);
}

TEST(CollOffload, OffloadedBarrierIsFasterThanHostBarrierAtScale) {
  constexpr int kProcs = 16;
  auto barrier_time = [](bool offload) {
    ClusterConfig cfg = cluster::sun_atm_lan(kProcs);
    cfg.ncs.coll.nic_offload = offload;
    Cluster c(std::move(cfg));
    c.init_ncs_hsm();
    return c.run([&](int rank) {
      Node& node = c.node(rank);
      const int t = node.t_create([&] {
        for (int i = 0; i < 8; ++i) node.barrier();
      });
      node.host().join(node.user_thread(t));
    });
  };
  const Duration host = barrier_time(false);
  const Duration nic = barrier_time(true);
  EXPECT_LT(nic, host);  // the tentpole's headline claim at P = 16
}

// Satellite regression: a fault strands offloaded operations mid-flight;
// every rank times out, aborts the NIC state, and restarts on the host
// fallback. The partial NIC accumulations from before the abort must not
// double-contribute — the digest across the abort window must equal the
// fault-free offloaded digest bit for bit.
TEST(CollOffload, AbortWindowFallbackIsBitIdenticalAndLeaksNothing) {
  constexpr int kProcs = 4;
  constexpr std::size_t kN = 32;
  constexpr int kOps = 6;

  ClusterConfig clean = cluster::nynet_wan(kProcs);
  clean.ncs.coll.nic_offload = true;
  clean.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 50_ms};
  const Outcome baseline = run_mixed_collectives(clean, kProcs, kN, kOps);
  EXPECT_EQ(baseline.fallbacks, 0u);

  ClusterConfig faulty = cluster::nynet_wan(kProcs);
  faulty.ncs.coll.nic_offload = true;
  faulty.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 50_ms};
  // The SONET hop dies mid-collective: firmware contributions crossing the
  // backbone are lost (no retransmission on the offload plane), so the
  // stranded ranks must take the abort -> fetch -> refold path, whose
  // fetches ride the retransmitting message plane.
  faulty.faults.link_down("sonet", TimePoint::origin() + 1_ms, 120_ms);
  const Outcome faulted = run_mixed_collectives(faulty, kProcs, kN, kOps);

  EXPECT_GT(faulted.fallbacks, 0u);       // the fault actually bit
  EXPECT_GT(faulted.rearms, static_cast<std::uint64_t>(kProcs));  // re-armed after teardown
  EXPECT_EQ(faulted.contexts_leaked, 0u);  // census: nothing left open
  EXPECT_EQ(faulted.hash, baseline.hash);  // bit-identical, only later
  EXPECT_LT(baseline.elapsed, faulted.elapsed);
}

// The offload decision is config-only: ranks never consult live NIC state,
// so a faulted run keeps burning the same sequence numbers on every rank
// and converges back to the NIC path after re-arm.
TEST(CollOffload, SwitchFaultMidRunRecoversBackToTheNicPath) {
  constexpr int kProcs = 8;
  constexpr std::size_t kN = 16;
  constexpr int kOps = 8;

  ClusterConfig clean = cluster::sun_atm_lan(kProcs);
  clean.ncs.coll.nic_offload = true;
  clean.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 50_ms};
  const Outcome baseline = run_mixed_collectives(clean, kProcs, kN, kOps);

  ClusterConfig faulty = cluster::sun_atm_lan(kProcs);
  faulty.ncs.coll.nic_offload = true;
  faulty.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 50_ms};
  // Port 3 of the LAN switch flaps mid-barrier: rank 3's contributions and
  // its downstream results are dropped at the fabric for the window.
  faulty.faults.port_down("lan-switch", 3, TimePoint::origin() + 500_us, 60_ms);
  const Outcome faulted = run_mixed_collectives(faulty, kProcs, kN, kOps);

  EXPECT_GT(faulted.fallbacks, 0u);
  EXPECT_GT(faulted.nic_completions, 0u);  // came back to the NIC after re-arm
  EXPECT_EQ(faulted.contexts_leaked, 0u);
  EXPECT_EQ(faulted.hash, baseline.hash);
}

}  // namespace
}  // namespace ncs::coll
