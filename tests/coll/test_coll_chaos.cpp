// Collectives under injected faults: the ring allreduce's accumulation
// order is fixed by rank arithmetic, so a run where error control has to
// retransmit lost segments must produce a bit-identical result to the
// fault-free run — only later.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.hpp"
#include "cluster/drivers.hpp"
#include "coll/select.hpp"
#include "core/mps/node.hpp"

namespace ncs::coll {
namespace {

using namespace ncs::literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using mps::Node;

struct Outcome {
  std::uint64_t hash = 0;  // FNV-1a over every rank's result, in rank order
  std::uint64_t retransmits = 0;
  Duration elapsed;
};

Outcome run_ring_allreduce(ClusterConfig cfg, int procs, std::size_t n) {
  cfg.ncs.coll.set_force(Op::allreduce, Algorithm::ring);
  Cluster c(std::move(cfg));
  c.init_ncs_hsm();

  std::vector<std::vector<double>> results(static_cast<std::size_t>(procs));
  const Duration elapsed = c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      // Irrational contributions: any change to the accumulation order
      // (e.g. a duplicate or dropped segment slipping through recovery)
      // changes the bits, not just the last ulp of a round number.
      std::vector<double> mine(n);
      for (std::size_t i = 0; i < n; ++i)
        mine[i] = std::sin(static_cast<double>(rank + 1) * (static_cast<double>(i) + 0.5));
      results[static_cast<std::size_t>(rank)] = node.allreduce_sum(mine);
    });
    node.host().join(node.user_thread(t));
  });

  Outcome out;
  out.elapsed = elapsed;
  out.hash = 0xCBF29CE484222325ull;
  for (const auto& r : results)
    out.hash = cluster::fnv1a(r.data(), r.size() * sizeof(double), out.hash);
  for (int i = 0; i < procs; ++i)
    out.retransmits += c.node(i).error_control().stats().retransmits;
  return out;
}

TEST(CollChaos, RingAllreduceBitIdenticalUnderBackboneLoss) {
  constexpr int kProcs = 4;
  constexpr std::size_t kN = 4096;  // 32 KiB: multi-chunk ring segments

  ClusterConfig clean = cluster::nynet_wan(kProcs);
  clean.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 50_ms};
  const Outcome baseline = run_ring_allreduce(clean, kProcs, kN);
  EXPECT_EQ(baseline.retransmits, 0u);

  ClusterConfig faulty = cluster::nynet_wan(kProcs);
  faulty.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 50_ms};
  // Take the WAN backbone down mid-collective: segments crossing the SONET
  // hop are lost and must be retransmitted once the link returns.
  faulty.faults.link_down("sonet", TimePoint::origin() + 1_ms, 40_ms);
  const Outcome faulted = run_ring_allreduce(faulty, kProcs, kN);

  EXPECT_GT(faulted.retransmits, 0u);
  EXPECT_EQ(faulted.hash, baseline.hash);  // bit-identical, only later
  EXPECT_LT(baseline.elapsed, faulted.elapsed);
}

// Multi-core audit regression: the collective plane's blocking receive
// must pull a progress hint like every other blocking receive, or under
// ProgressModel::on_demand the system threads that move collective traffic
// can sit unmigrated while every core runs user compute. The digest must
// not depend on how many cores a host has — and with one core the hint is
// a no-op, so the historical single-core digests are untouched.
TEST(CollChaos, RingAllreduceDigestInvariantAcrossCoreCounts) {
  constexpr int kProcs = 4;
  constexpr std::size_t kN = 1024;

  std::uint64_t expected = 0;
  for (const int cores : {1, 2, 4}) {
    ClusterConfig cfg = cluster::sun_atm_lan(kProcs);
    cfg.cores = cores;
    cfg.progress = mts::ProgressModel::on_demand;
    const Outcome out = run_ring_allreduce(cfg, kProcs, kN);
    if (cores == 1) {
      expected = out.hash;
    } else {
      EXPECT_EQ(out.hash, expected) << cores << " cores";
    }
  }
}

}  // namespace
}  // namespace ncs::coll
