// The coll::select decision table: thresholds, forced overrides, and the
// segment partition helper the ring algorithms schedule by.
#include <gtest/gtest.h>

#include "coll/algorithms.hpp"
#include "coll/select.hpp"

namespace ncs::coll {
namespace {

TEST(Select, SmallGroupsStayFlat) {
  const Params p;
  for (const int np : {1, 2, 3})
    for (int op = 0; op < kOpCount; ++op)
      EXPECT_EQ(select(static_cast<Op>(op), np, 1 << 20, p), Algorithm::flat)
          << to_string(static_cast<Op>(op)) << " at P=" << np;
}

TEST(Select, ScalableAlgorithmsFromTreeThresholdUp) {
  const Params p;
  for (const int np : {p.tree_min_procs, 16}) {
    EXPECT_EQ(select(Op::bcast, np, 0, p), Algorithm::binomial_tree);
    EXPECT_EQ(select(Op::gather, np, 0, p), Algorithm::binomial_tree);
    EXPECT_EQ(select(Op::scatter, np, 0, p), Algorithm::binomial_tree);
    EXPECT_EQ(select(Op::reduce, np, 0, p), Algorithm::binomial_tree);
    EXPECT_EQ(select(Op::barrier, np, 0, p), Algorithm::dissemination);
    EXPECT_EQ(select(Op::allgather, np, 0, p), Algorithm::ring);
    EXPECT_EQ(select(Op::reduce_scatter, np, 0, p), Algorithm::ring);
  }
}

TEST(Select, AllreduceSizeCrossoverIsInclusive) {
  const Params p;
  EXPECT_EQ(select(Op::allreduce, 8, p.allreduce_ring_min_bytes, p),
            Algorithm::recursive_doubling);
  EXPECT_EQ(select(Op::allreduce, 8, p.allreduce_ring_min_bytes + 1, p), Algorithm::ring);
}

TEST(Select, ThresholdsComeFromParams) {
  Params p;
  p.tree_min_procs = 9;
  EXPECT_EQ(select(Op::bcast, 8, 0, p), Algorithm::flat);
  EXPECT_EQ(select(Op::bcast, 9, 0, p), Algorithm::binomial_tree);
  p.tree_min_procs = 4;
  p.allreduce_ring_min_bytes = 0;
  EXPECT_EQ(select(Op::allreduce, 8, 1, p), Algorithm::ring);
}

TEST(Select, NicOffloadPreemptsTheHostTableInsideItsWindow) {
  Params p;
  p.nic_offload = true;
  // Barrier and bcast offload independent of size (for bcast only the root
  // knows the payload size, so the decision cannot depend on it).
  EXPECT_EQ(select(Op::barrier, p.offload_min_procs, 0, p), Algorithm::nic_offload);
  EXPECT_EQ(select(Op::bcast, 16, 1 << 20, p), Algorithm::nic_offload);
  // Allreduce offloads up to the size crossover, inclusive.
  EXPECT_EQ(select(Op::allreduce, 16, p.offload_max_bytes, p), Algorithm::nic_offload);
  EXPECT_EQ(select(Op::allreduce, 16, p.offload_max_bytes + 1, p),
            Algorithm::recursive_doubling);
  // Below the group-size floor the host table answers.
  EXPECT_EQ(select(Op::barrier, p.offload_min_procs - 1, 0, p), Algorithm::flat);
  // Off by default: the host table is untouched.
  EXPECT_EQ(select(Op::barrier, 16, 0, Params{}), Algorithm::dissemination);
  // Ops the firmware has no context kind for never offload.
  EXPECT_EQ(select(Op::gather, 16, 64, p), Algorithm::binomial_tree);
  EXPECT_EQ(select(Op::allgather, 16, 64, p), Algorithm::ring);
}

TEST(Select, ForcedAlgorithmWinsWhenItImplementsTheOp) {
  Params p;
  p.set_force(Op::bcast, Algorithm::flat);
  EXPECT_EQ(select(Op::bcast, 16, 1 << 20, p), Algorithm::flat);
  p.set_force(Op::allreduce, Algorithm::recursive_doubling);
  EXPECT_EQ(select(Op::allreduce, 16, 1 << 20, p), Algorithm::recursive_doubling);
}

TEST(Select, UnimplementableForceFallsBackToTable) {
  Params p;
  p.set_force(Op::bcast, Algorithm::ring);  // no ring bcast exists
  EXPECT_EQ(select(Op::bcast, 16, 0, p), Algorithm::binomial_tree);
}

TEST(Select, ImplementsMatrix) {
  for (int op = 0; op < kOpCount; ++op)
    EXPECT_TRUE(implements(static_cast<Op>(op), Algorithm::flat));
  EXPECT_TRUE(implements(Op::allreduce, Algorithm::ring));
  EXPECT_TRUE(implements(Op::allgather, Algorithm::ring));
  EXPECT_TRUE(implements(Op::barrier, Algorithm::dissemination));
  EXPECT_FALSE(implements(Op::barrier, Algorithm::recursive_doubling));
  EXPECT_FALSE(implements(Op::gather, Algorithm::ring));
  EXPECT_FALSE(implements(Op::allreduce, Algorithm::binomial_tree));
}

TEST(Select, SegmentsPartitionTheVector) {
  // n = 10 over P = 4: lengths 3,3,2,2 — contiguous and covering.
  std::size_t next = 0;
  for (int s = 0; s < 4; ++s) {
    const Segment seg = segment_of(10, 4, s);
    EXPECT_EQ(seg.begin, next);
    EXPECT_EQ(seg.len, s < 2 ? 3u : 2u);
    next = seg.begin + seg.len;
  }
  EXPECT_EQ(next, 10u);
}

TEST(Select, SegmentsWithFewerElementsThanRanks) {
  // n = 2 over P = 4: the tail ranks own empty segments.
  EXPECT_EQ(segment_of(2, 4, 0).len, 1u);
  EXPECT_EQ(segment_of(2, 4, 1).len, 1u);
  EXPECT_EQ(segment_of(2, 4, 2).len, 0u);
  EXPECT_EQ(segment_of(2, 4, 3).len, 0u);
}

}  // namespace
}  // namespace ncs::coll
