#include "ether/bus.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ncs::ether {
namespace {

using namespace ncs::literals;

struct Rx {
  int to;
  int from;
  std::size_t size;
  TimePoint at;
};

struct BusFixture : ::testing::Test {
  void build(int hosts, bool contention) {
    BusParams p;
    p.model_contention = contention;
    bus = std::make_unique<Bus>(engine, p, hosts);
    for (int h = 0; h < hosts; ++h)
      bus->set_rx_handler(h, [this, h](int src, Bytes data) {
        rx.push_back({h, src, data.size(), engine.now()});
      });
  }

  sim::Engine engine;
  std::unique_ptr<Bus> bus;
  std::vector<Rx> rx;
};

TEST_F(BusFixture, DeliversPayload) {
  build(2, false);
  bus->send(0, 1, Bytes(1000, std::byte{7}), nullptr);
  engine.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].from, 0);
  EXPECT_EQ(rx[0].to, 1);
  EXPECT_EQ(rx[0].size, 1000u);
}

TEST_F(BusFixture, TimingIsWireBytesAtTenMbps) {
  build(2, false);
  bus->send(0, 1, Bytes(1000, std::byte{7}), nullptr);
  engine.run();
  const Duration expected =
      Duration::for_bytes(static_cast<std::int64_t>(wire_bytes_for_payload(1000)), 10e6) + 10_us;
  EXPECT_EQ(rx[0].at, TimePoint::origin() + expected);
}

TEST_F(BusFixture, AllHostsShareOneMedium) {
  // Two disjoint pairs: second transfer waits for the first — the defining
  // contrast with the ATM LAN's dedicated links.
  build(4, false);
  bus->send(0, 1, Bytes(1000, std::byte{1}), nullptr);
  bus->send(2, 3, Bytes(1000, std::byte{2}), nullptr);
  engine.run();
  ASSERT_EQ(rx.size(), 2u);
  const Duration tx = Duration::for_bytes(static_cast<std::int64_t>(wire_bytes_for_payload(1000)), 10e6);
  EXPECT_EQ(rx[0].at, TimePoint::origin() + tx + 10_us);
  EXPECT_EQ(rx[1].at, TimePoint::origin() + tx + tx + 10_us);
}

TEST_F(BusFixture, OnSentFiresAtEndOfTransmit) {
  build(2, false);
  TimePoint sent;
  bus->send(0, 1, Bytes(1000, std::byte{1}), [&] { sent = engine.now(); });
  engine.run();
  const Duration tx = Duration::for_bytes(static_cast<std::int64_t>(wire_bytes_for_payload(1000)), 10e6);
  EXPECT_EQ(sent, TimePoint::origin() + tx);
}

TEST_F(BusFixture, ContentionAddsDelayDeterministically) {
  build(4, true);
  for (int i = 0; i < 8; ++i) bus->send(i % 4, (i + 1) % 4, Bytes(500, std::byte{1}), nullptr);
  engine.run();
  EXPECT_GT(bus->stats().contention_events, 0u);
  EXPECT_GT(bus->stats().contention_delay.us(), 0.0);
}

TEST_F(BusFixture, ContentionDeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine eng;
    BusParams p;
    p.model_contention = true;
    Bus b(eng, p, 4);
    std::vector<std::int64_t> times;
    for (int h = 0; h < 4; ++h)
      b.set_rx_handler(h, [&eng, &times](int, Bytes) { times.push_back(eng.now().ps()); });
    for (int i = 0; i < 10; ++i) b.send(i % 4, (i + 1) % 4, Bytes(500, std::byte{1}), nullptr);
    eng.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(BusFixture, SingleSenderNeverPaysContention) {
  build(2, true);
  for (int i = 0; i < 5; ++i) {
    bus->send(0, 1, Bytes(500, std::byte{1}), nullptr);
    engine.run();  // drain before next send: queue never exceeds 1
  }
  EXPECT_EQ(bus->stats().contention_events, 0u);
}

TEST_F(BusFixture, StatsCountFrames) {
  build(2, false);
  bus->send(0, 1, Bytes(100, std::byte{1}), nullptr);
  bus->send(1, 0, Bytes(200, std::byte{2}), nullptr);
  engine.run();
  EXPECT_EQ(bus->stats().frames, 2u);
  EXPECT_EQ(bus->stats().payload_bytes, 300u);
}

TEST_F(BusFixture, OversizedPayloadAborts) {
  build(2, false);
  EXPECT_DEATH(bus->send(0, 1, Bytes(kMaxPayload + 1, std::byte{1}), nullptr), "MTU");
}

}  // namespace
}  // namespace ncs::ether
