#include "ether/frame.hpp"

#include <gtest/gtest.h>

namespace ncs::ether {
namespace {

TEST(Frame, PackUnpackRoundTrip) {
  Frame f;
  f.dst = mac_of_host(1);
  f.src = mac_of_host(0);
  f.ethertype = 0x0800;
  f.payload = to_bytes("hello ethernet world, this payload is long enough.");

  const Bytes wire = f.pack();
  const auto r = Frame::unpack(wire);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().dst, f.dst);
  EXPECT_EQ(r.value().src, f.src);
  EXPECT_EQ(r.value().ethertype, f.ethertype);
  // Payload >= 46 bytes: no padding, exact round trip.
  EXPECT_EQ(r.value().payload, f.payload);
}

TEST(Frame, ShortPayloadPaddedToMinimum) {
  Frame f;
  f.payload = to_bytes("hi");
  const Bytes wire = f.pack();
  EXPECT_EQ(wire.size(), kHeaderSize + kMinPayload + kFcsSize);
  const auto r = Frame::unpack(wire);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().payload.size(), kMinPayload);
  EXPECT_EQ(r.value().payload[0], std::byte{'h'});
  EXPECT_EQ(r.value().payload[2], std::byte{0});
}

TEST(Frame, FcsDetectsCorruption) {
  Frame f;
  f.payload = Bytes(100, std::byte{0x5A});
  Bytes wire = f.pack();
  wire[30] ^= std::byte{0x01};
  const auto r = Frame::unpack(wire);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::data_corruption);
}

TEST(Frame, RuntFrameRejected) {
  const Bytes runt(10, std::byte{0});
  EXPECT_FALSE(Frame::unpack(runt).is_ok());
}

TEST(Frame, WireSizeBounds) {
  Frame small;
  small.payload = to_bytes("x");
  EXPECT_EQ(small.wire_size(), 64u);  // Ethernet minimum frame

  Frame big;
  big.payload = Bytes(kMaxPayload, std::byte{1});
  EXPECT_EQ(big.wire_size(), 1518u);  // Ethernet maximum frame
}

TEST(Frame, OversizedPayloadAborts) {
  Frame f;
  f.payload = Bytes(kMaxPayload + 1, std::byte{0});
  EXPECT_DEATH((void)f.pack(), "MTU");
}

TEST(Mac, DistinctPerHostAndLocallyAdministered) {
  EXPECT_NE(mac_of_host(0), mac_of_host(1));
  EXPECT_NE(mac_of_host(1), mac_of_host(256));
  EXPECT_EQ(mac_of_host(3)[0] & 0x02, 0x02);
}

TEST(WireBytes, IncludesSilentOverhead) {
  EXPECT_EQ(wire_bytes_for_payload(1500), 1518u + kSilentOverheadBytes);
  EXPECT_EQ(wire_bytes_for_payload(1), 64u + kSilentOverheadBytes);
}

}  // namespace
}  // namespace ncs::ether
