// Group communication (paper Section 3.1: 1-to-many, many-to-1,
// many-to-many) and the exception-handling service.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/mps/filters.hpp"
#include "core/mps/node.hpp"

namespace ncs::mps {
namespace {

using namespace ncs::literals;
using cluster::Cluster;

std::unique_ptr<Cluster> make_cluster(int n_procs, bool hsm = true) {
  auto c = std::make_unique<Cluster>(hsm ? cluster::sun_atm_lan(n_procs)
                                         : cluster::sun_ethernet(n_procs));
  if (hsm) {
    c->init_ncs_hsm();
  } else {
    c->init_ncs_nsm();
  }
  return c;
}

/// Runs `body(rank)` as one user thread per process.
void run_threads(Cluster& c, std::function<void(int)> body) {
  c.run([&c, body](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([body, rank] { body(rank); });
    node.host().join(node.user_thread(t));
  });
}

TEST(Collectives, GatherCollectsByRank) {
  auto c = make_cluster(4);
  std::vector<Bytes> at_root;
  run_threads(*c, [&](int rank) {
    auto out = c->node(rank).gather(0, to_bytes("from" + std::to_string(rank)));
    if (rank == 0) at_root = std::move(out);
    else EXPECT_TRUE(out.empty());
  });
  ASSERT_EQ(at_root.size(), 4u);
  for (int p = 0; p < 4; ++p)
    EXPECT_EQ(at_root[static_cast<std::size_t>(p)], to_bytes("from" + std::to_string(p)));
}

TEST(Collectives, GatherToNonZeroRoot) {
  auto c = make_cluster(3);
  std::vector<Bytes> at_root;
  run_threads(*c, [&](int rank) {
    auto out = c->node(rank).gather(2, to_bytes(std::string(1, static_cast<char>('a' + rank))));
    if (rank == 2) at_root = std::move(out);
  });
  ASSERT_EQ(at_root.size(), 3u);
  EXPECT_EQ(at_root[0], to_bytes("a"));
  EXPECT_EQ(at_root[2], to_bytes("c"));
}

TEST(Collectives, ScatterDistributesSlices) {
  auto c = make_cluster(3);
  std::vector<Bytes> mine(3);
  run_threads(*c, [&](int rank) {
    std::vector<Bytes> payloads;
    if (rank == 1)
      for (int p = 0; p < 3; ++p) payloads.push_back(to_bytes("slice" + std::to_string(p)));
    mine[static_cast<std::size_t>(rank)] = c->node(rank).scatter(1, payloads);
  });
  for (int p = 0; p < 3; ++p)
    EXPECT_EQ(mine[static_cast<std::size_t>(p)], to_bytes("slice" + std::to_string(p)));
}

TEST(Collectives, AllToAllEveryoneSeesEveryone) {
  auto c = make_cluster(4);
  std::vector<std::vector<Bytes>> views(4);
  run_threads(*c, [&](int rank) {
    views[static_cast<std::size_t>(rank)] =
        c->node(rank).all_to_all(to_bytes("p" + std::to_string(rank)));
  });
  for (int me = 0; me < 4; ++me) {
    ASSERT_EQ(views[static_cast<std::size_t>(me)].size(), 4u);
    for (int p = 0; p < 4; ++p)
      EXPECT_EQ(views[static_cast<std::size_t>(me)][static_cast<std::size_t>(p)],
                to_bytes("p" + std::to_string(p)));
  }
}

TEST(Collectives, ReduceSumElementwise) {
  auto c = make_cluster(3);
  std::vector<double> result;
  run_threads(*c, [&](int rank) {
    const std::vector<double> mine{1.0 * rank, 10.0 * rank, 0.5};
    auto out = c->node(rank).reduce_sum(0, mine);
    if (rank == 0) result = std::move(out);
  });
  ASSERT_EQ(result.size(), 3u);
  EXPECT_DOUBLE_EQ(result[0], 0 + 1 + 2);
  EXPECT_DOUBLE_EQ(result[1], 0 + 10 + 20);
  EXPECT_DOUBLE_EQ(result[2], 1.5);
}

TEST(Collectives, RepeatedCollectivesStayInPhase) {
  auto c = make_cluster(3);
  std::vector<double> sums;
  run_threads(*c, [&](int rank) {
    Node& node = c->node(rank);
    for (int round = 0; round < 5; ++round) {
      const std::vector<double> mine{static_cast<double>(rank + round)};
      auto out = node.reduce_sum(0, mine);
      if (rank == 0) sums.push_back(out[0]);
    }
  });
  ASSERT_EQ(sums.size(), 5u);
  for (int round = 0; round < 5; ++round)
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(round)], 3.0 * round + 3);
}

TEST(Collectives, CollectiveBcastLandsOnEveryRank) {
  auto c = make_cluster(3);
  std::vector<Bytes> got(3);
  run_threads(*c, [&](int rank) {
    got[static_cast<std::size_t>(rank)] =
        c->node(rank).bcast(1, rank == 1 ? BytesView(to_bytes("group bcast")) : BytesView{});
  });
  for (const Bytes& b : got) EXPECT_EQ(b, to_bytes("group bcast"));
}

TEST(Collectives, AllreduceSumEveryRankGetsTheTotal) {
  auto c = make_cluster(3);
  std::vector<std::vector<double>> results(3);
  run_threads(*c, [&](int rank) {
    const std::vector<double> mine{static_cast<double>(rank), 2.0};
    results[static_cast<std::size_t>(rank)] = c->node(rank).allreduce_sum(mine);
  });
  for (int p = 0; p < 3; ++p) {
    ASSERT_EQ(results[static_cast<std::size_t>(p)].size(), 2u);
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(p)][0], 0 + 1 + 2);
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(p)][1], 6.0);
  }
}

TEST(Collectives, ReduceScatterHandsEachRankItsSegment) {
  auto c = make_cluster(3);
  std::vector<std::vector<double>> results(3);
  run_threads(*c, [&](int rank) {
    // All ranks contribute {1,2,3}; segments of the x3 sum land by rank.
    results[static_cast<std::size_t>(rank)] =
        c->node(rank).reduce_scatter_sum(std::vector<double>{1.0, 2.0, 3.0});
  });
  ASSERT_EQ(results[0].size(), 1u);
  EXPECT_DOUBLE_EQ(results[0][0], 3.0);
  EXPECT_DOUBLE_EQ(results[1][0], 6.0);
  EXPECT_DOUBLE_EQ(results[2][0], 9.0);
}

TEST(Collectives, CountedInNodeStats) {
  auto c = make_cluster(2);
  run_threads(*c, [&](int rank) {
    Node& node = c->node(rank);
    (void)node.gather(0, to_bytes("x"));
    node.barrier();
    (void)node.allgather(to_bytes("y"));
  });
  EXPECT_EQ(c->node(0).stats().collectives, 3u);
  EXPECT_EQ(c->node(1).stats().collectives, 3u);
}

TEST(Collectives, DoNotCollideWithWildcardRecv) {
  // A wildcard user receive posted during a collective must not swallow
  // collective traffic (reserved endpoint).
  auto c = make_cluster(2);
  Bytes user_got;
  std::vector<Bytes> gathered;
  run_threads(*c, [&](int rank) {
    Node& node = c->node(rank);
    if (rank == 0) {
      // Post a wildcard receive in another thread, then run a collective.
      const int rx = node.t_create(
          [&] { user_got = node.recv(kAnyThread, kAnyProcess, 0); });
      gathered = node.gather(0, to_bytes("root"));
      node.send(0, 0, 0, to_bytes("a real user message"));  // self, serves rx
      node.host().join(node.user_thread(rx));
    } else {
      (void)node.gather(0, to_bytes("peer"));
    }
  });
  EXPECT_EQ(user_got, to_bytes("a real user message"));
  ASSERT_EQ(gathered.size(), 2u);
  EXPECT_EQ(gathered[1], to_bytes("peer"));
}

// --- exception handling -------------------------------------------------------

TEST(ExceptionHandling, TimeoutReportedWhenRetriesExhausted) {
  cluster::ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 1.0;  // black hole
  cfg.ncs.error = {.kind = ErrorControlKind::retransmit, .rto = 5_ms, .max_retries = 2};
  Cluster c(cfg);
  c.init_ncs_hsm();

  std::vector<std::pair<int, std::uint32_t>> timeouts;
  c.node(0).set_exception_handler(
      [&](Node::Exception kind, int peer, std::uint32_t seq) {
        if (kind == Node::Exception::message_timeout) timeouts.emplace_back(peer, seq);
      });

  c.host(0).spawn([&c] {
    c.node(0).send(0, 0, 1, Bytes(500, std::byte{1}));
  }, {.name = "main"});
  c.engine().run();

  ASSERT_EQ(timeouts.size(), 1u);
  EXPECT_EQ(timeouts[0].first, 1);   // the unreachable peer
  EXPECT_EQ(timeouts[0].second, 0u); // first sequence number
}

TEST(ExceptionHandling, FrameErrorReportedOnGarbledDelivery) {
  cluster::ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 0.35;  // lose chunks mid-message
  Cluster c(cfg);
  c.init_ncs_hsm();

  int frame_errors = 0;
  c.node(1).set_exception_handler([&](Node::Exception kind, int peer, std::uint32_t) {
    if (kind == Node::Exception::frame_error) {
      EXPECT_EQ(peer, 0);
      ++frame_errors;
    }
  });

  c.host(0).spawn([&c] {
    // Multi-chunk messages so a lost chunk garbles reassembly.
    for (int i = 0; i < 10; ++i) c.node(0).send(0, 0, 1, Bytes(20'000, std::byte{1}));
  }, {.name = "main"});
  c.engine().run_until(TimePoint::origin() + 2_sec);
  EXPECT_GT(frame_errors, 0);
}

// --- MPI filter ---------------------------------------------------------------

TEST(MpiFilter, SendRecvWithTags) {
  auto c = make_cluster(2);
  Bytes got;
  int src = -5, tag = -5;
  run_threads(*c, [&](int rank) {
    MpiFilter mpi(c->node(rank));
    if (rank == 0) {
      mpi.send(to_bytes("tagged payload"), 1, 42);
    } else {
      got = mpi.recv(MpiFilter::kAnySource, MpiFilter::kAnyTag, &src, &tag);
    }
  });
  EXPECT_EQ(got, to_bytes("tagged payload"));
  EXPECT_EQ(src, 0);
  EXPECT_EQ(tag, 42);
}

TEST(MpiFilter, BcastReplacesEveryBuffer) {
  auto c = make_cluster(3);
  std::vector<Bytes> buffers(3);
  run_threads(*c, [&](int rank) {
    MpiFilter mpi(c->node(rank));
    Bytes buf = rank == 1 ? to_bytes("the broadcast") : Bytes{};
    mpi.bcast(buf, 1);
    buffers[static_cast<std::size_t>(rank)] = std::move(buf);
  });
  for (int p = 0; p < 3; ++p)
    EXPECT_EQ(buffers[static_cast<std::size_t>(p)], to_bytes("the broadcast"));
}

TEST(MpiFilter, GatherAndReduce) {
  auto c = make_cluster(3);
  std::vector<Bytes> gathered;
  std::vector<double> reduced;
  run_threads(*c, [&](int rank) {
    MpiFilter mpi(c->node(rank));
    auto g = mpi.gather(to_bytes(std::string(static_cast<std::size_t>(rank) + 1, 'x')), 0);
    const std::vector<double> v{static_cast<double>(rank * rank)};
    auto r = mpi.reduce_sum(v, 0);
    mpi.barrier();
    if (rank == 0) {
      gathered = std::move(g);
      reduced = std::move(r);
    }
  });
  ASSERT_EQ(gathered.size(), 3u);
  EXPECT_EQ(gathered[2].size(), 3u);
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_DOUBLE_EQ(reduced[0], 0 + 1 + 4);
}

}  // namespace
}  // namespace ncs::mps
