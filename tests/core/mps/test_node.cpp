// End-to-end NCS_MPS tests over a real simulated cluster (both tiers).
#include "core/mps/node.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/api.hpp"

namespace ncs::mps {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkKind;

ClusterConfig test_config(int n_procs, NetworkKind net = NetworkKind::ethernet) {
  ClusterConfig c = net == NetworkKind::ethernet ? cluster::sun_ethernet(n_procs)
                                                 : cluster::sun_atm_lan(n_procs);
  c.n_procs = n_procs;
  return c;
}

/// Builds a 3-process cluster on the requested tier.
std::unique_ptr<Cluster> make_cluster(bool hsm, int n_procs = 3) {
  auto c = std::make_unique<Cluster>(
      test_config(n_procs, hsm ? NetworkKind::atm_lan : NetworkKind::ethernet));
  if (hsm) {
    c->init_ncs_hsm();
  } else {
    c->init_ncs_nsm();
  }
  return c;
}

struct TierCase {
  const char* name;
  bool hsm;
};

class NcsTier : public ::testing::TestWithParam<TierCase> {};

TEST_P(NcsTier, SendRecvRoundTrip) {
  auto c = make_cluster(GetParam().hsm);
  Bytes got;
  int src_thread = -9, src_proc = -9;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    if (rank == 0) {
      const int t = node.t_create([&] { node.send(0, 1, 1, to_bytes("over the fabric")); });
      node.host().join(node.user_thread(t));
    } else if (rank == 1) {
      const int t = node.t_create([&] { got = node.recv(0, 0, 1, &src_thread, &src_proc); });
      node.host().join(node.user_thread(t));
    }
  });
  EXPECT_EQ(got, to_bytes("over the fabric"));
  EXPECT_EQ(src_thread, 0);
  EXPECT_EQ(src_proc, 0);
}

TEST_P(NcsTier, LargeMessageSurvives) {
  auto c = make_cluster(GetParam().hsm);
  Bytes big(200'000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::byte>(i * 31);
  Bytes got;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    if (rank == 0) {
      const int t = node.t_create([&] { node.send(0, 0, 2, big); });
      node.host().join(node.user_thread(t));
    } else if (rank == 2) {
      const int t = node.t_create([&] { got = node.recv(kAnyThread, kAnyProcess, 0); });
      node.host().join(node.user_thread(t));
    }
  });
  EXPECT_EQ(got, big);
}

TEST_P(NcsTier, ThreadAddressedDelivery) {
  // Two receiving threads on one process; each gets exactly its message.
  auto c = make_cluster(GetParam().hsm);
  Bytes got0, got1;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    if (rank == 0) {
      const int t = node.t_create([&] {
        node.send(0, 1, 1, to_bytes("for-one"));
        node.send(0, 0, 1, to_bytes("for-zero"));
      });
      node.host().join(node.user_thread(t));
    } else if (rank == 1) {
      const int t0 = node.t_create([&] { got0 = node.recv(kAnyThread, kAnyProcess, 0); });
      const int t1 = node.t_create([&] { got1 = node.recv(kAnyThread, kAnyProcess, 1); });
      node.host().join(node.user_thread(t0));
      node.host().join(node.user_thread(t1));
    }
  });
  EXPECT_EQ(got0, to_bytes("for-zero"));
  EXPECT_EQ(got1, to_bytes("for-one"));
}

TEST_P(NcsTier, BcastReachesEveryEndpoint) {
  auto c = make_cluster(GetParam().hsm);
  std::vector<int> got(3, 0);
  c->run([&](int rank) {
    Node& node = c->node(rank);
    if (rank == 0) {
      const int t = node.t_create([&] {
        const std::vector<Endpoint> eps{{1, 0}, {2, 0}};
        node.bcast(0, eps, to_bytes("group message"));
      });
      node.host().join(node.user_thread(t));
    } else {
      const int t = node.t_create([&] {
        got[static_cast<std::size_t>(rank)] =
            static_cast<int>(node.recv(kAnyThread, 0, 0).size());
      });
      node.host().join(node.user_thread(t));
    }
  });
  EXPECT_EQ(got[1], 13);
  EXPECT_EQ(got[2], 13);
}

TEST_P(NcsTier, BarrierSynchronizesProcesses) {
  auto c = make_cluster(GetParam().hsm);
  std::vector<std::string> log;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    const int t = node.t_create([&, rank] {
      node.host().charge_cycles(1e6 * (3 - rank), sim::Activity::compute);
      log.push_back("arrive" + std::to_string(rank));
      node.barrier();
      log.push_back("pass" + std::to_string(rank));
    });
    node.host().join(node.user_thread(t));
  });
  ASSERT_EQ(log.size(), 6u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)].substr(0, 6), "arrive");
  for (int i = 3; i < 6; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)].substr(0, 4), "pass");
}

TEST_P(NcsTier, LocalSendBypassesNetwork) {
  auto c = make_cluster(GetParam().hsm);
  Bytes got;
  Duration elapsed;
  c->run([&](int rank) {
    if (rank != 1) return;
    Node& node = c->node(rank);
    const int tx = node.t_create([&] { node.send(0, 1, 1, to_bytes("local hop")); });
    const int rx = node.t_create([&] { got = node.recv(0, 1, 1); });
    node.host().join(node.user_thread(tx));
    node.host().join(node.user_thread(rx));
  });
  elapsed = Duration::picoseconds(c->engine().now().ps());
  EXPECT_EQ(got, to_bytes("local hop"));
  EXPECT_EQ(c->node(1).stats().local_deliveries, 1u);
  // Far below any network round trip (includes thread-creation overheads).
  EXPECT_LT(elapsed.ms(), 5.0);
}

TEST_P(NcsTier, SendBlocksCallerUntilHandOff) {
  auto c = make_cluster(GetParam().hsm);
  std::vector<std::string> log;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    if (rank == 0) {
      const int t = node.t_create([&] {
        log.push_back("before-send");
        node.send(0, 0, 1, Bytes(50'000, std::byte{1}));
        log.push_back("after-send");
      });
      // A sibling thread runs while the sender is blocked in NCS_send.
      const int w = node.t_create([&] { log.push_back("sibling"); });
      node.host().join(node.user_thread(t));
      node.host().join(node.user_thread(w));
    } else if (rank == 1) {
      const int t = node.t_create([&] { (void)node.recv(kAnyThread, kAnyProcess, 0); });
      node.host().join(node.user_thread(t));
    }
  });
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "before-send");
  EXPECT_EQ(log[1], "sibling");  // overlap while the send thread works
  EXPECT_EQ(log[2], "after-send");
}

TEST_P(NcsTier, AvailableProbe) {
  auto c = make_cluster(GetParam().hsm);
  bool before = true, after = false;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    if (rank == 0) {
      const int t = node.t_create([&] { node.send(0, 0, 1, to_bytes("x")); });
      node.host().join(node.user_thread(t));
    } else if (rank == 1) {
      const int t = node.t_create([&] {
        before = node.available(kAnyThread, kAnyProcess, 0);
        (void)node.recv(kAnyThread, kAnyProcess, 0);  // wait for arrival
        after = node.available(kAnyThread, kAnyProcess, 0);
      });
      node.host().join(node.user_thread(t));
    }
  });
  EXPECT_FALSE(before);
  EXPECT_FALSE(after);
}

TEST_P(NcsTier, PaperStyleApiWrappers) {
  auto c = make_cluster(GetParam().hsm);
  Bytes got;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    if (rank == 0) {
      const int t = node.t_create([&] {
        EXPECT_EQ(api::NCS_get_my_id(), 0);
        EXPECT_EQ(api::NCS_num_procs(), 3);
        api::NCS_send(0, 0, 0, 1, to_bytes("via C API"));
      });
      node.host().join(node.user_thread(t));
    } else if (rank == 1) {
      const int t = node.t_create([&] { got = api::NCS_recv(0, 0, 0, 1); });
      node.host().join(node.user_thread(t));
    }
  });
  EXPECT_EQ(got, to_bytes("via C API"));
}

INSTANTIATE_TEST_SUITE_P(Tiers, NcsTier,
                         ::testing::Values(TierCase{"nsm_p4", false}, TierCase{"hsm_atm", true}),
                         [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace ncs::mps
