// Point-to-point protocol engine (mps/proto.*): eager coalescing,
// rendezvous RTS/CTS + chunked bulk transfer, adaptive crossover, and the
// interaction with flow/error control over faulty networks.
#include "core/mps/proto.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "common/crc.hpp"
#include "core/mps/node.hpp"

namespace ncs::mps {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using namespace ncs::literals;

Bytes patterned(std::size_t n, std::uint32_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::byte>((i * 131 + salt * 29) & 0xFF);
  return b;
}

TEST(ProtoEngine, OffByDefaultKeepsLegacyPath) {
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  Cluster c(cfg);
  c.init_ncs_hsm();
  EXPECT_FALSE(c.node(0).proto().enabled());

  Bytes got;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        node.send(0, 0, 1, patterned(512, 7));
      } else {
        got = node.recv(kAnyThread, kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(got, patterned(512, 7));
  EXPECT_EQ(c.node(0).proto().stats().eager_frames, 0u);
  EXPECT_EQ(c.node(0).proto().stats().rndv_transfers, 0u);
}

TEST(ProtoEngine, EagerCoalescesConcurrentSmallSends) {
  // Several sender threads queue small messages while the send thread sits
  // in a flow-control window stall (on this single-CPU model that stall is
  // what lets the queue accumulate — the WAN's multi-ms ack round trip
  // dwarfs the per-message host cost), so batches form; the receiver must
  // still see every payload, in per-(source-thread) FIFO order, and the
  // frame count must come in well under the message count.
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.ncs.flow = {.kind = FlowControlKind::window, .window = 1};
  cfg.ncs.proto.mode = ProtoMode::eager;
  Cluster c(cfg);
  c.init_ncs_hsm();

  constexpr int kThreads = 4;
  constexpr std::uint32_t kEach = 12;
  std::vector<std::vector<std::uint32_t>> per_thread(kThreads);
  c.run([&](int rank) {
    Node& node = c.node(rank);
    if (rank == 0) {
      std::vector<int> tids;
      for (int s = 0; s < kThreads; ++s) {
        tids.push_back(node.t_create([&node, s] {
          for (std::uint32_t i = 0; i < kEach; ++i) {
            Bytes payload(64, std::byte{0});
            payload[0] = static_cast<std::byte>(i >> 8);
            payload[1] = static_cast<std::byte>(i & 0xFF);
            node.send(s, 0, 1, payload);
          }
        }));
      }
      for (const int t : tids) node.host().join(node.user_thread(t));
    } else {
      const int t = node.t_create([&] {
        for (int i = 0; i < kThreads * static_cast<int>(kEach); ++i) {
          int src_thread = -1;
          const Bytes payload =
              node.recv(kAnyThread, kAnyProcess, 0, &src_thread, nullptr);
          ASSERT_EQ(payload.size(), 64u);
          ASSERT_GE(src_thread, 0);
          ASSERT_LT(src_thread, kThreads);
          per_thread[static_cast<std::size_t>(src_thread)].push_back(
              static_cast<std::uint32_t>(payload[0]) << 8 |
              static_cast<std::uint32_t>(payload[1]));
        }
      });
      node.host().join(node.user_thread(t));
    }
  });

  for (int s = 0; s < kThreads; ++s) {
    ASSERT_EQ(per_thread[static_cast<std::size_t>(s)].size(), kEach);
    for (std::uint32_t i = 0; i < kEach; ++i)
      EXPECT_EQ(per_thread[static_cast<std::size_t>(s)][i], i)
          << "thread " << s << " message " << i;
  }
  const ProtoEngine::Stats& st = c.node(0).proto().stats();
  EXPECT_EQ(st.eager_msgs, static_cast<std::uint64_t>(kThreads) * kEach);
  EXPECT_GT(st.eager_frames, 0u);
  EXPECT_LT(st.eager_frames, st.eager_msgs) << "no coalescing happened";
}

TEST(ProtoEngine, RendezvousDeliversLargeMessageIntact) {
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.ncs.proto.mode = ProtoMode::rendezvous;
  Cluster c(cfg);
  c.init_ncs_hsm();

  const Bytes sent = patterned(200 * 1024, 3);
  Bytes got;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        node.send(0, 0, 1, sent);
      } else {
        got = node.recv(kAnyThread, kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(got.size(), sent.size());
  EXPECT_EQ(crc32_ieee(got), crc32_ieee(sent));

  const ProtoEngine::Stats& tx = c.node(0).proto().stats();
  const ProtoEngine::Stats& rx = c.node(1).proto().stats();
  EXPECT_EQ(tx.rndv_transfers, 1u);
  EXPECT_GT(tx.rndv_chunks, 1u) << "payload should span several DMA windows";
  EXPECT_EQ(rx.rndv_completed, 1u);
  EXPECT_EQ(rx.rndv_failed, 0u);
}

TEST(ProtoEngine, AdaptiveKeepsMixedSizesInFifoOrder) {
  // One sender thread alternates payloads straddling the crossover; the
  // ordered-flush rule (eager batch flushed before any rendezvous to the
  // same destination) must preserve program order end to end.
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.ncs.proto.mode = ProtoMode::adaptive;
  cfg.ncs.proto.eager_max_bytes = 4096;  // pin the crossover for the test
  Cluster c(cfg);
  c.init_ncs_hsm();

  constexpr int kRounds = 6;
  std::vector<std::size_t> sizes;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < kRounds; ++i) {
          node.send(0, 0, 1, patterned(96, static_cast<std::uint32_t>(i)));
          node.send(0, 0, 1, patterned(32 * 1024, static_cast<std::uint32_t>(i)));
        }
      } else {
        for (int i = 0; i < 2 * kRounds; ++i)
          sizes.push_back(node.recv(kAnyThread, kAnyProcess, 0).size());
      }
    });
    node.host().join(node.user_thread(t));
  });

  ASSERT_EQ(sizes.size(), 2u * kRounds);
  for (int i = 0; i < kRounds; ++i) {
    EXPECT_EQ(sizes[2 * static_cast<std::size_t>(i)], 96u) << "round " << i;
    EXPECT_EQ(sizes[2 * static_cast<std::size_t>(i) + 1], 32u * 1024u)
        << "round " << i;
  }
  const ProtoEngine::Stats& st = c.node(0).proto().stats();
  EXPECT_EQ(st.eager_msgs, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(st.rndv_transfers, static_cast<std::uint64_t>(kRounds));
  EXPECT_GT(st.flush_ordered + st.flush_idle + st.flush_timeout + st.flush_full,
            0u);
}

TEST(ProtoEngine, FlushTimerDrainsLoneBatch) {
  // With idle-flush disabled, a lone small send sits in its batch until
  // the flush timer fires — it must still arrive, attributed to the
  // timeout flush reason.
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.ncs.proto.mode = ProtoMode::eager;
  cfg.ncs.proto.flush_on_idle = false;
  cfg.ncs.proto.flush_timeout = 200_us;
  Cluster c(cfg);
  c.init_ncs_hsm();

  Bytes got;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        node.send(0, 0, 1, patterned(48, 9));
      } else {
        got = node.recv(kAnyThread, kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(got, patterned(48, 9));
  EXPECT_EQ(c.node(0).proto().stats().flush_timeout, 1u);
  EXPECT_EQ(c.node(0).proto().stats().flush_idle, 0u);
}

TEST(ProtoEngine, CtsTimeoutGivesUpInsteadOfWedging) {
  // Black-hole WAN: the RTS can never be answered. The sender must abandon
  // the transfer after the retry limit, return its window credit, raise
  // message_timeout through the exception handler, and let the program
  // terminate instead of wedging the send thread forever.
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 1.0;
  cfg.ncs.flow = {.kind = FlowControlKind::window, .window = 2};
  cfg.ncs.proto.mode = ProtoMode::rendezvous;
  cfg.ncs.proto.cts_timeout = 5_ms;
  cfg.ncs.proto.cts_retry_limit = 2;
  Cluster c(cfg);
  c.init_ncs_hsm();

  std::vector<std::pair<NcsExceptionKind, int>> raised;
  c.node(0).set_exception_handler(
      [&](NcsExceptionKind kind, int peer, std::uint32_t) {
        raised.emplace_back(kind, peer);
      });

  bool send_returned = false;
  c.host(0).spawn(
      [&] {
        Node& node = c.node(0);
        const int t = node.t_create([&] {
          node.send(0, 0, 1, patterned(64 * 1024, 1));
          send_returned = true;
        });
        node.host().join(node.user_thread(t));
      },
      {.name = "main"});
  c.engine().run_until(TimePoint::origin() + 2_sec);

  EXPECT_TRUE(send_returned) << "sender wedged on an unanswerable RTS";
  const ProtoEngine::Stats& st = c.node(0).proto().stats();
  EXPECT_EQ(st.rndv_give_ups, 1u);
  EXPECT_EQ(st.rts_resends, 2u);
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_EQ(raised[0].first, NcsExceptionKind::message_timeout);
  EXPECT_EQ(raised[0].second, 1);
  // The abandoned transfer's credit came back: the window is empty again.
  EXPECT_EQ(c.node(0).flow_control().outstanding(1), 0);
}

TEST(ProtoEngine, LossyWanDigestsBitIdentical) {
  // Chaos acceptance: adaptive protocol over a lossy WAN with retransmit
  // error control. Every payload — coalesced eager records and reassembled
  // rendezvous transfers alike — must arrive bit-identical (CRC32 per
  // message), with per-source FIFO order intact.
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 0.08;
  cfg.ncs.error = {.kind = ErrorControlKind::retransmit, .rto = 15_ms, .max_retries = 40};
  cfg.ncs.proto.mode = ProtoMode::adaptive;
  cfg.ncs.proto.eager_max_bytes = 2048;
  Cluster c(cfg);
  c.init_ncs_hsm();

  constexpr std::uint32_t kMsgs = 24;
  std::vector<std::uint32_t> want_crc, got_crc;
  for (std::uint32_t i = 0; i < kMsgs; ++i) {
    const std::size_t n = i % 3 == 2 ? 24 * 1024 : 128;
    want_crc.push_back(crc32_ieee(patterned(n, i)));
  }

  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (std::uint32_t i = 0; i < kMsgs; ++i) {
          const std::size_t n = i % 3 == 2 ? 24 * 1024 : 128;
          node.send(0, 0, 1, patterned(n, i));
        }
      } else {
        for (std::uint32_t i = 0; i < kMsgs; ++i)
          got_crc.push_back(crc32_ieee(node.recv(kAnyThread, kAnyProcess, 0)));
      }
    });
    node.host().join(node.user_thread(t));
  });

  EXPECT_EQ(got_crc, want_crc);
  const ProtoEngine::Stats& tx = c.node(0).proto().stats();
  EXPECT_EQ(tx.rndv_transfers, static_cast<std::uint64_t>(kMsgs / 3));
  EXPECT_GT(c.node(0).error_control().stats().retransmits +
                tx.rts_resends,
            0u);
}

TEST(ProtoEngine, AutomaticCrossoverIsSaneForHsm) {
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.ncs.proto.mode = ProtoMode::adaptive;
  Cluster c(cfg);
  c.init_ncs_hsm();
  const std::size_t crossover = c.node(0).proto().crossover_bytes();
  EXPECT_GE(crossover, 1024u);
  EXPECT_LE(crossover, 256u * 1024u);
  EXPECT_FALSE(c.node(0).proto().use_rendezvous(64));
  EXPECT_TRUE(c.node(0).proto().use_rendezvous(crossover + 1));
}

}  // namespace
}  // namespace ncs::mps
