#include "core/mps/mailbox.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/mps/error_control.hpp"

namespace ncs::mps {
namespace {

struct MailboxFixture : ::testing::Test {
  MailboxFixture() : sched(engine, params()), mailbox(sched) {}

  static mts::SchedulerParams params() {
    mts::SchedulerParams p;
    p.context_switch_cost = Duration::zero();
    p.thread_create_cost = Duration::zero();
    return p;
  }

  Message msg(int from_p, int from_t, int to_p, int to_t, const char* text = "m") {
    Message m;
    m.from_process = from_p;
    m.from_thread = from_t;
    m.to_process = to_p;
    m.to_thread = to_t;
    m.data = to_bytes(text);
    return m;
  }

  sim::Engine engine;
  mts::Scheduler sched;
  Mailbox mailbox;
};

TEST_F(MailboxFixture, DeliverThenRecv) {
  mailbox.deliver(msg(1, 0, 0, 0, "early"));
  Bytes got;
  sched.spawn([&] { got = mailbox.recv(Pattern{0, 1, 0, 0}).data; });
  engine.run();
  EXPECT_EQ(got, to_bytes("early"));
}

TEST_F(MailboxFixture, RecvBlocksUntilDelivery) {
  std::vector<int> order;
  sched.spawn([&] {
    order.push_back(1);
    (void)mailbox.recv(Pattern{kAnyThread, kAnyProcess, 0, 0});
    order.push_back(3);
  });
  engine.schedule_after(Duration::microseconds(50), [&] {
    order.push_back(2);
    mailbox.deliver(msg(1, 0, 0, 0));
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(MailboxFixture, WildcardSourceMatchesAny) {
  mailbox.deliver(msg(3, 1, 0, 0, "from3"));
  Message got;
  sched.spawn([&] { got = mailbox.recv(Pattern{kAnyThread, kAnyProcess, 0, 0}); });
  engine.run();
  EXPECT_EQ(got.from_process, 3);
  EXPECT_EQ(got.from_thread, 1);
}

TEST_F(MailboxFixture, ExactSourceSkipsNonMatching) {
  mailbox.deliver(msg(1, 0, 0, 0, "wrong"));
  mailbox.deliver(msg(2, 0, 0, 0, "right"));
  Bytes got;
  sched.spawn([&] { got = mailbox.recv(Pattern{0, 2, 0, 0}).data; });
  engine.run();
  EXPECT_EQ(got, to_bytes("right"));
  EXPECT_EQ(mailbox.pending(), 1u);  // the non-matching one stays queued
}

TEST_F(MailboxFixture, ToThreadDemultiplexes) {
  Bytes got0, got1;
  sched.spawn([&] { got0 = mailbox.recv(Pattern{kAnyThread, kAnyProcess, 0, 0}).data; });
  sched.spawn([&] { got1 = mailbox.recv(Pattern{kAnyThread, kAnyProcess, 1, 0}).data; });
  engine.schedule_after(Duration::microseconds(10), [&] {
    mailbox.deliver(msg(2, 0, 0, 1, "for-thread1"));
    mailbox.deliver(msg(2, 0, 0, 0, "for-thread0"));
  });
  engine.run();
  EXPECT_EQ(got0, to_bytes("for-thread0"));
  EXPECT_EQ(got1, to_bytes("for-thread1"));
}

TEST_F(MailboxFixture, FifoAmongMatching) {
  for (int i = 0; i < 3; ++i)
    mailbox.deliver(msg(1, 0, 0, 0, ("m" + std::to_string(i)).c_str()));
  std::vector<std::string> got;
  sched.spawn([&] {
    for (int i = 0; i < 3; ++i) {
      const Bytes b = mailbox.recv(Pattern{kAnyThread, kAnyProcess, 0, 0}).data;
      got.emplace_back(reinterpret_cast<const char*>(b.data()), b.size());
    }
  });
  engine.run();
  EXPECT_EQ(got, (std::vector<std::string>{"m0", "m1", "m2"}));
}

TEST_F(MailboxFixture, LongestWaiterWinsOnDelivery) {
  std::vector<int> woke;
  sched.spawn([&] {
    (void)mailbox.recv(Pattern{kAnyThread, kAnyProcess, 0, 0});
    woke.push_back(0);
  });
  sched.spawn([&] {
    (void)mailbox.recv(Pattern{kAnyThread, kAnyProcess, 0, 0});
    woke.push_back(1);
  });
  engine.schedule_after(Duration::microseconds(10), [&] {
    mailbox.deliver(msg(1, 0, 0, 0));
    mailbox.deliver(msg(1, 0, 0, 0));
  });
  engine.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1}));
}

TEST_F(MailboxFixture, WildcardRecvSeesPerSourceFifoThroughReorderBuffer) {
  // The wildcard-receive × error-control seam: arrivals pass through
  // ErrorControl::accept before the mailbox, so a wildcard waiter must see
  // each source's messages in sequence order even when a retransmission
  // makes a later sequence arrive first, and duplicates must vanish.
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit},
                  [](Message) {});
  auto admit = [&](Message m) {
    for (Message& out : ec.accept(std::move(m))) mailbox.deliver(std::move(out));
  };
  auto seq_msg = [&](int from_p, std::uint32_t seq, const char* text) {
    Message m = msg(from_p, 0, 0, 0, text);
    m.seq = seq;
    return m;
  };

  std::vector<std::pair<int, Bytes>> got;
  sched.spawn([&] {
    for (int i = 0; i < 4; ++i) {
      Message m = mailbox.recv(Pattern{kAnyThread, kAnyProcess, 0, 0});
      got.emplace_back(m.from_process, m.data);
    }
  });
  engine.run();  // park the wildcard waiter

  admit(seq_msg(1, 1, "p1-b"));      // overtook seq 0: held, not delivered
  admit(seq_msg(2, 0, "p2-a"));      // other source unaffected by p1's gap
  engine.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (std::pair<int, Bytes>{2, to_bytes("p2-a")}));

  admit(seq_msg(1, 0, "p1-a"));      // gap fills: releases p1-a then p1-b
  admit(seq_msg(1, 1, "p1-b-dup"));  // retransmitted duplicate: dropped
  admit(seq_msg(2, 1, "p2-b"));
  engine.run();

  const std::vector<std::pair<int, Bytes>> want{
      {2, to_bytes("p2-a")},
      {1, to_bytes("p1-a")},
      {1, to_bytes("p1-b")},
      {2, to_bytes("p2-b")},
  };
  EXPECT_EQ(got, want);
  EXPECT_EQ(ec.stats().reorders, 1u);
  EXPECT_EQ(ec.stats().duplicates_dropped, 1u);
}

TEST_F(MailboxFixture, AvailableProbe) {
  EXPECT_FALSE(mailbox.available(Pattern{kAnyThread, kAnyProcess, 0, 0}));
  mailbox.deliver(msg(1, 2, 0, 0));
  EXPECT_TRUE(mailbox.available(Pattern{kAnyThread, kAnyProcess, 0, 0}));
  EXPECT_TRUE(mailbox.available(Pattern{2, 1, 0, 0}));
  EXPECT_FALSE(mailbox.available(Pattern{3, 1, 0, 0}));
  EXPECT_FALSE(mailbox.available(Pattern{kAnyThread, kAnyProcess, 1, 0}));
}

TEST_F(MailboxFixture, PatternMatchRules) {
  const Message m = msg(5, 2, 0, 1);
  EXPECT_TRUE((Pattern{2, 5, 1, 0}).matches(m));
  EXPECT_TRUE((Pattern{kAnyThread, 5, 1, 0}).matches(m));
  EXPECT_TRUE((Pattern{2, kAnyProcess, 1, 0}).matches(m));
  EXPECT_FALSE((Pattern{3, 5, 1, 0}).matches(m));    // wrong from_thread
  EXPECT_FALSE((Pattern{2, 4, 1, 0}).matches(m));    // wrong from_process
  EXPECT_FALSE((Pattern{2, 5, 0, 0}).matches(m));    // wrong to_thread
  EXPECT_FALSE((Pattern{2, 5, 1, 9}).matches(m));    // wrong to_process
}

TEST_F(MailboxFixture, MessageEncodeDecodeRoundTrip) {
  Message m = msg(7, 3, 2, 1, "payload bytes");
  m.seq = 0xDEADBEEF;
  const Message d = decode(encode(m));
  EXPECT_EQ(d.from_process, 7);
  EXPECT_EQ(d.from_thread, 3);
  EXPECT_EQ(d.to_process, 2);
  EXPECT_EQ(d.to_thread, 1);
  EXPECT_EQ(d.seq, 0xDEADBEEF);
  EXPECT_EQ(d.data, to_bytes("payload bytes"));
}

TEST_F(MailboxFixture, EncodeHandlesNegativeSentinels) {
  Message m = msg(0, kControlThread, 1, kControlThread);
  const Message d = decode(encode(m));
  EXPECT_EQ(d.from_thread, kControlThread);
  EXPECT_EQ(d.to_thread, kControlThread);
}

}  // namespace
}  // namespace ncs::mps
