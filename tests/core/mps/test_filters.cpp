// The p4 message-passing filter: p4-style programs running unchanged on
// NCS (paper Figs 6/12).
#include "core/mps/filters.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace ncs::mps {
namespace {

using cluster::Cluster;

std::unique_ptr<Cluster> hsm_cluster(int n_procs) {
  auto c = std::make_unique<Cluster>(cluster::sun_atm_lan(n_procs));
  c->init_ncs_hsm();
  return c;
}

TEST(P4Filter, TypedSendRecvOverNcs) {
  auto c = hsm_cluster(2);
  Bytes got;
  int got_type = -1, got_from = -1;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    const int t = node.t_create([&, rank] {
      P4Filter p4(node);
      if (rank == 0) {
        p4.send(7, 1, to_bytes("through the filter"));
      } else {
        int type = 7, from = 0;
        got = p4.recv(&type, &from);
        got_type = type;
        got_from = from;
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(got, to_bytes("through the filter"));
  EXPECT_EQ(got_type, 7);
  EXPECT_EQ(got_from, 0);
}

TEST(P4Filter, TypeSelectiveRecvReordersLikeP4) {
  auto c = hsm_cluster(2);
  std::vector<int> order;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    const int t = node.t_create([&, rank] {
      P4Filter p4(node);
      if (rank == 0) {
        p4.send(1, 1, to_bytes("first"));
        p4.send(2, 1, to_bytes("second"));
      } else {
        int type = 2, from = -1;
        (void)p4.recv(&type, &from);  // take the second by type
        order.push_back(type);
        type = -1;
        from = -1;
        (void)p4.recv(&type, &from);  // then whatever is left
        order.push_back(type);
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(P4Filter, WildcardRecvAndProbe) {
  auto c = hsm_cluster(3);
  int seen_froms = 0;
  bool probe_before = true;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    const int t = node.t_create([&, rank] {
      P4Filter p4(node);
      if (rank == 0) {
        int type = -1, from = -1;
        probe_before = p4.messages_available(&type, &from);
        for (int k = 0; k < 2; ++k) {
          type = -1;
          from = -1;
          (void)p4.recv(&type, &from);
          seen_froms += from;
        }
      } else {
        p4.send(rank, 0, to_bytes("x"));
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_FALSE(probe_before);
  EXPECT_EQ(seen_froms, 1 + 2);
}

TEST(P4Filter, BroadcastAndBarrier) {
  auto c = hsm_cluster(3);
  std::vector<int> got(3, 0);
  std::vector<std::string> log;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    const int t = node.t_create([&, rank] {
      P4Filter p4(node);
      if (rank == 0) {
        p4.broadcast(9, to_bytes("all hands"));
      } else {
        int type = 9, from = 0;
        got[static_cast<std::size_t>(rank)] = static_cast<int>(p4.recv(&type, &from).size());
      }
      log.push_back("arrive");
      p4.global_barrier();
      log.push_back("pass");
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(got[1], 9);
  EXPECT_EQ(got[2], 9);
  ASSERT_EQ(log.size(), 6u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)], "arrive");
  for (int i = 3; i < 6; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)], "pass");
}


TEST(PvmFilter, PackSendRecvUnpackRoundTrip) {
  auto c = hsm_cluster(2);
  std::vector<std::int32_t> ints_out(3);
  std::vector<double> doubles_out(2);
  Bytes bytes_out;
  int from = -1, tag = -1;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    const int t = node.t_create([&, rank] {
      PvmFilter pvm(node);
      if (rank == 0) {
        pvm.initsend();
        const std::vector<std::int32_t> ints{10, -20, 30};
        const std::vector<double> doubles{3.25, -1.5};
        pvm.pkint(ints);
        pvm.pkdouble(doubles);
        pvm.pkbytes(to_bytes("trailing blob"));
        pvm.send(1, 77);
      } else {
        from = pvm.recv(PvmFilter::kAnyTid, PvmFilter::kAnyTag, &tag);
        pvm.upkint(ints_out);
        pvm.upkdouble(doubles_out);
        bytes_out = pvm.upkbytes();
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(from, 0);
  EXPECT_EQ(tag, 77);
  EXPECT_EQ(ints_out, (std::vector<std::int32_t>{10, -20, 30}));
  EXPECT_DOUBLE_EQ(doubles_out[0], 3.25);
  EXPECT_DOUBLE_EQ(doubles_out[1], -1.5);
  EXPECT_EQ(bytes_out, to_bytes("trailing blob"));
}

TEST(PvmFilter, InitsendResetsTheBuffer) {
  auto c = hsm_cluster(2);
  std::vector<std::int32_t> got(1);
  c->run([&](int rank) {
    Node& node = c->node(rank);
    const int t = node.t_create([&, rank] {
      PvmFilter pvm(node);
      if (rank == 0) {
        pvm.initsend();
        const std::vector<std::int32_t> junk{999};
        pvm.pkint(junk);
        pvm.initsend();  // discard
        const std::vector<std::int32_t> real{7};
        pvm.pkint(real);
        pvm.send(1, 1);
      } else {
        (void)pvm.recv(0, 1);
        pvm.upkint(got);
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(got[0], 7);
}

TEST(PvmFilter, TagSelectiveRecvAndProbe) {
  auto c = hsm_cluster(2);
  std::vector<int> tags;
  bool probe_hit = false;
  c->run([&](int rank) {
    Node& node = c->node(rank);
    const int t = node.t_create([&, rank] {
      PvmFilter pvm(node);
      if (rank == 0) {
        for (int tag : {5, 6}) {
          pvm.initsend();
          const std::vector<std::int32_t> v{tag};
          pvm.pkint(v);
          pvm.send(1, tag);
        }
      } else {
        int tag = 0;
        (void)pvm.recv(0, 6, &tag);  // select the second by tag
        tags.push_back(tag);
        probe_hit = pvm.probe(0, 5);  // the first is still waiting
        (void)pvm.recv(0, 5, &tag);
        tags.push_back(tag);
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(tags, (std::vector<int>{6, 5}));
  EXPECT_TRUE(probe_hit);
}

TEST(PvmFilterDeathTest, UnpackTypeMismatchAborts) {
  auto c = hsm_cluster(2);
  EXPECT_DEATH(
      c->run([&](int rank) {
        Node& node = c->node(rank);
        const int t = node.t_create([&, rank] {
          PvmFilter pvm(node);
          if (rank == 0) {
            pvm.initsend();
            const std::vector<std::int32_t> v{1};
            pvm.pkint(v);
            pvm.send(1, 1);
          } else {
            (void)pvm.recv(0, 1);
            std::vector<double> wrong(1);
            pvm.upkdouble(wrong);  // packed as ints
          }
        });
        node.host().join(node.user_thread(t));
      }),
      "type mismatch");
}

}  // namespace
}  // namespace ncs::mps
