// Flow-control and error-control policy tests (the QOS machinery of
// Fig 5 and the NCS_init(flow, error) selection).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/mps/error_control.hpp"
#include "core/mps/flow_control.hpp"

namespace ncs::mps {
namespace {

using namespace ncs::literals;
using cluster::Cluster;
using cluster::ClusterConfig;

// --- FlowControl unit tests -------------------------------------------------

struct FcFixture : ::testing::Test {
  FcFixture() : sched(engine, params()) {}

  static mts::SchedulerParams params() {
    mts::SchedulerParams p;
    p.context_switch_cost = Duration::zero();
    p.thread_create_cost = Duration::zero();
    return p;
  }

  Message to(int dst, std::size_t bytes = 100) {
    Message m;
    m.to_process = dst;
    m.data.resize(bytes);
    return m;
  }

  sim::Engine engine;
  mts::Scheduler sched;
};

TEST_F(FcFixture, NonePolicyNeverBlocks) {
  FlowControl fc(sched, {.kind = FlowControlKind::none}, 4);
  EXPECT_FALSE(fc.wants_acks());
  int sent = 0;
  sched.spawn([&] {
    for (int i = 0; i < 100; ++i) {
      fc.before_send(to(1));
      ++sent;
    }
  });
  engine.run();
  EXPECT_EQ(sent, 100);
  EXPECT_EQ(fc.stats().window_stalls, 0u);
}

TEST_F(FcFixture, WindowBlocksAtLimitAndAckReleases) {
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 2}, 4);
  EXPECT_TRUE(fc.wants_acks());
  std::vector<int> log;
  sched.spawn([&] {
    for (int i = 0; i < 4; ++i) {
      fc.before_send(to(1));
      log.push_back(i);
    }
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1}));  // stuck at the window

  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_GE(fc.stats().window_stalls, 1u);
}

TEST_F(FcFixture, WindowIsPerDestination) {
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 1}, 4);
  std::vector<std::string> log;
  sched.spawn([&] {
    fc.before_send(to(1));
    log.push_back("to1");
    fc.before_send(to(2));  // different destination: not blocked
    log.push_back("to2");
    fc.before_send(to(1));  // blocked until ack from 1
    log.push_back("to1-again");
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"to1", "to2"}));
  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log.back(), "to1-again");
}

TEST_F(FcFixture, AckWakesTheWaiterForItsOwnDestination) {
  // Regression: window waiters used to sit in one global FIFO, so an ack
  // from destination 2 woke whichever sender blocked first — here the one
  // stuck on destination 1, which just re-blocked while destination 2's
  // sender slept forever.
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 1}, 4);
  std::vector<std::string> log;
  sched.spawn([&] {
    fc.before_send(to(1));
    log.push_back("to1-first");
    fc.before_send(to(1));  // blocks: window for 1 is full
    log.push_back("to1-second");
  });
  sched.spawn([&] {
    fc.before_send(to(2));
    log.push_back("to2-first");
    fc.before_send(to(2));  // blocks: window for 2 is full
    log.push_back("to2-second");
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"to1-first", "to2-first"}));

  fc.on_ack(2);  // must wake the destination-2 waiter, not the first blocker
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"to1-first", "to2-first", "to2-second"}));

  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log.back(), "to1-second");
  EXPECT_EQ(log.size(), 4u);
}

TEST_F(FcFixture, RatePolicyPacesInjection) {
  // 1 MB/s: three 100 KB messages must take ~0.2s of pacing after the first.
  FlowControl fc(sched, {.kind = FlowControlKind::rate, .rate_bytes_per_sec = 1e6}, 4);
  EXPECT_FALSE(fc.wants_acks());
  TimePoint last;
  sched.spawn([&] {
    for (int i = 0; i < 3; ++i) fc.before_send(to(1, 100'000));
    last = engine.now();
  });
  engine.run();
  EXPECT_NEAR(last.sec(), 0.2, 0.01);
  EXPECT_EQ(fc.stats().rate_delays, 2u);
}

TEST_F(FcFixture, DuplicateAcksClampAtZero) {
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 2}, 4);
  sched.spawn([&] { fc.before_send(to(1)); });
  engine.run();
  fc.on_ack(1);
  fc.on_ack(1);  // duplicate: must not underflow
  sched.spawn([&] {
    fc.before_send(to(1));
    fc.before_send(to(1));
  });
  engine.run();  // window still 2 deep, both admitted
  EXPECT_EQ(fc.stats().window_stalls, 0u);
}

// --- ErrorControl unit tests ------------------------------------------------

struct EcFixture : ::testing::Test {
  Message msg(int dst, std::uint32_t seq, int src = 0) {
    Message m;
    m.from_process = src;
    m.to_process = dst;
    m.seq = seq;
    m.data = to_bytes("payload");
    return m;
  }

  /// Sequence numbers accept() released, in delivery order.
  static std::vector<std::uint32_t> seqs(std::vector<Message> ready) {
    std::vector<std::uint32_t> out;
    for (const Message& m : ready) out.push_back(m.seq);
    return out;
  }

  sim::Engine engine;
  std::vector<std::uint32_t> retransmitted;
  ErrorControl* ec_ptr = nullptr;
};

TEST_F(EcFixture, NonePolicyAcceptsEverythingTwice) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::none}, nullptr);
  EXPECT_FALSE(ec.wants_acks());
  EXPECT_EQ(seqs(ec.accept(msg(0, 1))), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(seqs(ec.accept(msg(0, 1))), (std::vector<std::uint32_t>{1}));  // no dedup when off
}

TEST_F(EcFixture, RetransmitsAfterRto) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit, .rto = 10_ms},
                  [&](Message m) { retransmitted.push_back(m.seq); });
  ec.on_sent(msg(1, 5));
  engine.run_until(TimePoint::origin() + 9_ms);
  EXPECT_TRUE(retransmitted.empty());
  engine.run_until(TimePoint::origin() + 11_ms);
  EXPECT_EQ(retransmitted, (std::vector<std::uint32_t>{5}));
}

TEST_F(EcFixture, AckCancelsRetransmission) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit, .rto = 10_ms},
                  [&](Message m) { retransmitted.push_back(m.seq); });
  ec.on_sent(msg(1, 5));
  ec.on_ack(1, 5);
  engine.run();
  EXPECT_TRUE(retransmitted.empty());
  EXPECT_TRUE(ec.idle());
}

TEST_F(EcFixture, GivesUpAfterMaxRetries) {
  ErrorControl ec(engine,
                  {.kind = ErrorControlKind::retransmit, .rto = 1_ms, .max_retries = 3},
                  [&](Message m) {
                    retransmitted.push_back(m.seq);
                    ec_ptr->on_sent(m);  // simulate the send thread resending
                  });
  ec_ptr = &ec;
  ec.on_sent(msg(1, 9));
  engine.run();
  EXPECT_EQ(retransmitted.size(), 3u);
  EXPECT_EQ(ec.stats().give_ups, 1u);
  EXPECT_TRUE(ec.idle());
}

TEST_F(EcFixture, ReceiverDeduplicates) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit}, [](Message) {});
  EXPECT_EQ(ec.accept(msg(0, 0, 2)).size(), 1u);
  EXPECT_EQ(ec.accept(msg(0, 1, 2)).size(), 1u);
  EXPECT_TRUE(ec.accept(msg(0, 0, 2)).empty());  // duplicate
  EXPECT_TRUE(ec.accept(msg(0, 1, 2)).empty());
  EXPECT_EQ(ec.accept(msg(0, 2, 2)).size(), 1u);
  EXPECT_EQ(ec.stats().duplicates_dropped, 2u);
}

TEST_F(EcFixture, DedupTracksSourcesIndependently) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit}, [](Message) {});
  EXPECT_EQ(ec.accept(msg(0, 0, 1)).size(), 1u);
  EXPECT_EQ(ec.accept(msg(0, 0, 2)).size(), 1u);  // same seq, different source
}

TEST_F(EcFixture, OutOfOrderArrivalsAreHeldForFifoDelivery) {
  // Regression: a retransmission overtaken by later traffic used to be
  // delivered out of order, breaking the per-source FIFO that message
  // order-sensitive applications (fft's A-then-B handshake) rely on.
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit}, [](Message) {});
  EXPECT_TRUE(ec.accept(msg(0, 3, 1)).empty());  // gap: held, not delivered
  EXPECT_EQ(seqs(ec.accept(msg(0, 0, 1))), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(seqs(ec.accept(msg(0, 1, 1))), (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(ec.accept(msg(0, 3, 1)).empty());  // duplicate of the held one
  EXPECT_EQ(seqs(ec.accept(msg(0, 2, 1))), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_TRUE(ec.accept(msg(0, 0, 1)).empty());  // below the advanced watermark
  EXPECT_EQ(ec.stats().duplicates_dropped, 2u);
  EXPECT_EQ(ec.stats().reorders, 1u);
}

// --- End-to-end: retransmission over a lossy WAN ---------------------------

TEST(ErrorControlEndToEnd, RecoversMessagesOverLossyHsmLink) {
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 0.1;
  cfg.ncs.error = {.kind = ErrorControlKind::retransmit, .rto = 20_ms};
  Cluster c(cfg);
  c.init_ncs_hsm();

  int received = 0;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    if (rank == 0) {
      const int t = node.t_create([&] {
        for (int i = 0; i < 20; ++i) node.send(0, 0, 1, Bytes(2000, std::byte{1}));
      });
      node.host().join(node.user_thread(t));
    } else {
      const int t = node.t_create([&] {
        for (int i = 0; i < 20; ++i) {
          (void)node.recv(kAnyThread, kAnyProcess, 0);
          ++received;
        }
      });
      node.host().join(node.user_thread(t));
    }
  });
  EXPECT_EQ(received, 20);
  EXPECT_GT(c.node(0).error_control().stats().retransmits, 0u);
}

TEST(ErrorControlEndToEnd, LossWithoutErrorControlLosesMessages) {
  // Control experiment: same lossy link, policy none -> receiver would
  // block forever, so count deliveries within a deadline instead.
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 0.15;
  Cluster c(cfg);
  c.init_ncs_hsm();

  int received = 0;
  for (int r = 0; r < 2; ++r) {
    c.host(r).spawn([&c, r, &received] {
      Node& node = c.node(r);
      if (r == 0) {
        for (int i = 0; i < 20; ++i) node.send(0, 0, 1, Bytes(2000, std::byte{1}));
      } else {
        for (int i = 0; i < 20; ++i) {
          (void)node.recv(kAnyThread, kAnyProcess, 0);
          ++received;
        }
      }
    }, {.name = "main"});
  }
  c.engine().run_until(TimePoint::origin() + 5_sec);
  EXPECT_LT(received, 20);
  EXPECT_GT(received, 0);
}


TEST(ErrorControlEndToEnd, GiveUpReleasesWindowCreditAndRaisesException) {
  // Regression: when error control exhausted max_retries the in-flight
  // record was erased but the flow-control window credit was never
  // returned, so a window-limited sender wedged forever on its next send
  // (and nothing told the application its message was gone). The give-up
  // path must now release the credit and surface a typed NCS exception.
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 1.0;  // backbone black hole
  cfg.ncs.flow = {.kind = FlowControlKind::window, .window = 1};
  cfg.ncs.error = {.kind = ErrorControlKind::retransmit, .rto = 5_ms, .max_retries = 2};
  Cluster c(cfg);
  c.init_ncs_hsm();

  int sent = 0;
  std::vector<std::uint32_t> lost_seqs;
  c.node(0).set_exception_handler([&](Node::Exception kind, int peer, std::uint32_t seq) {
    EXPECT_EQ(kind, Node::Exception::message_timeout);
    EXPECT_EQ(peer, 1);
    lost_seqs.push_back(seq);
  });
  c.host(0).spawn([&] {
    Node& node = c.node(0);
    for (int i = 0; i < 3; ++i) {
      node.send(0, 0, 1, Bytes(2000, std::byte{1}));
      ++sent;  // with the credit leak, send #2 blocked here forever
    }
  }, {.name = "main"});
  c.engine().run_until(TimePoint::origin() + 2_sec);

  EXPECT_EQ(sent, 3);
  EXPECT_EQ(lost_seqs, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(c.node(0).error_control().stats().give_ups, 3u);
  EXPECT_TRUE(c.node(0).error_control().idle());
  EXPECT_GE(c.node(0).flow_control().stats().window_stalls, 1u);
}

TEST(ErrorControlEndToEnd, RetransmitRecoversCellCorruption) {
  // Fault injection at the lowest layer: damaged cells are rejected by the
  // receiving adapter's AAL5 CRC (real cells, detailed mode), and the NCS
  // error-control thread retransmits until everything lands.
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.nic.detailed_cells = true;
  cfg.nic.cell_corrupt_probability = 0.002;
  cfg.ncs.error = {.kind = ErrorControlKind::retransmit, .rto = 10_ms, .max_retries = 40};
  Cluster c(cfg);
  c.init_ncs_hsm();

  int received = 0;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < 15; ++i) node.send(0, 0, 1, Bytes(8000, std::byte{1}));
      } else {
        for (int i = 0; i < 15; ++i) {
          const Bytes msg = node.recv(kAnyThread, kAnyProcess, 0);
          EXPECT_EQ(msg.size(), 8000u);
          ++received;
        }
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(received, 15);
  EXPECT_GT(c.node(0).error_control().stats().retransmits, 0u);
}

}  // namespace
}  // namespace ncs::mps
