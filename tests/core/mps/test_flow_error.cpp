// Flow-control and error-control policy tests (the QOS machinery of
// Fig 5 and the NCS_init(flow, error) selection).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/mps/error_control.hpp"
#include "core/mps/flow_control.hpp"

namespace ncs::mps {
namespace {

using namespace ncs::literals;
using cluster::Cluster;
using cluster::ClusterConfig;

// --- FlowControl unit tests -------------------------------------------------

struct FcFixture : ::testing::Test {
  FcFixture() : sched(engine, params()) {}

  static mts::SchedulerParams params() {
    mts::SchedulerParams p;
    p.context_switch_cost = Duration::zero();
    p.thread_create_cost = Duration::zero();
    return p;
  }

  Message to(int dst, std::size_t bytes = 100) {
    Message m;
    m.to_process = dst;
    m.data.resize(bytes);
    return m;
  }

  sim::Engine engine;
  mts::Scheduler sched;
};

TEST_F(FcFixture, NonePolicyNeverBlocks) {
  FlowControl fc(sched, {.kind = FlowControlKind::none}, 4);
  EXPECT_FALSE(fc.wants_acks());
  int sent = 0;
  sched.spawn([&] {
    for (int i = 0; i < 100; ++i) {
      fc.before_send(to(1));
      ++sent;
    }
  });
  engine.run();
  EXPECT_EQ(sent, 100);
  EXPECT_EQ(fc.stats().window_stalls, 0u);
}

TEST_F(FcFixture, WindowBlocksAtLimitAndAckReleases) {
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 2}, 4);
  EXPECT_TRUE(fc.wants_acks());
  std::vector<int> log;
  sched.spawn([&] {
    for (int i = 0; i < 4; ++i) {
      fc.before_send(to(1));
      log.push_back(i);
    }
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1}));  // stuck at the window

  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_GE(fc.stats().window_stalls, 1u);
}

TEST_F(FcFixture, WindowIsPerDestination) {
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 1}, 4);
  std::vector<std::string> log;
  sched.spawn([&] {
    fc.before_send(to(1));
    log.push_back("to1");
    fc.before_send(to(2));  // different destination: not blocked
    log.push_back("to2");
    fc.before_send(to(1));  // blocked until ack from 1
    log.push_back("to1-again");
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"to1", "to2"}));
  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log.back(), "to1-again");
}

TEST_F(FcFixture, AckWakesTheWaiterForItsOwnDestination) {
  // Regression: window waiters used to sit in one global FIFO, so an ack
  // from destination 2 woke whichever sender blocked first — here the one
  // stuck on destination 1, which just re-blocked while destination 2's
  // sender slept forever.
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 1}, 4);
  std::vector<std::string> log;
  sched.spawn([&] {
    fc.before_send(to(1));
    log.push_back("to1-first");
    fc.before_send(to(1));  // blocks: window for 1 is full
    log.push_back("to1-second");
  });
  sched.spawn([&] {
    fc.before_send(to(2));
    log.push_back("to2-first");
    fc.before_send(to(2));  // blocks: window for 2 is full
    log.push_back("to2-second");
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"to1-first", "to2-first"}));

  fc.on_ack(2);  // must wake the destination-2 waiter, not the first blocker
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"to1-first", "to2-first", "to2-second"}));

  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log.back(), "to1-second");
  EXPECT_EQ(log.size(), 4u);
}

TEST_F(FcFixture, WindowWaitersKeepFifoSeniorityOverNewcomers) {
  // Regression: a sender dispatched between an ack and the woken waiter's
  // resumption used to see outstanding < window and barge past the queue,
  // stealing the credit; the waiter then re-queued at the BACK and lost
  // its seniority. Admission must follow arrival order per destination.
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 1}, 4);
  std::vector<std::string> log;
  sched.spawn([&] {
    fc.before_send(to(1));
    log.push_back("a1");
    fc.before_send(to(1));  // blocks: window full
    log.push_back("a2");
  });
  sched.spawn([&] {
    fc.before_send(to(1));  // blocks behind the first waiter
    log.push_back("b");
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a1"}));

  // The ack frees one credit for the queue front; the newcomer (spawned at
  // higher priority, so dispatched before the woken waiter) must line up
  // behind the existing waiters, not steal that credit.
  fc.on_ack(1);
  sched.spawn(
      [&] {
        fc.before_send(to(1));
        log.push_back("c");
      },
      {.priority = 1});
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a1", "a2"}));  // pre-fix: "c" barged here

  fc.on_ack(1);
  engine.run();
  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a1", "a2", "b", "c"}));
}

TEST_F(FcFixture, DuplicateAcksDoNotSignalExtraWaiters) {
  // Regression: on_ack used to pop + wake one waiter per ack regardless of
  // how many credits were actually free, so duplicate acks handed several
  // wakeups to a single credit; the losers re-queued (recounting their
  // stall and losing their seat's seniority). A waiter now queues exactly
  // once per stall and only credit-backed acks signal.
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 1}, 4);
  std::vector<std::string> log;
  sched.spawn([&] {
    fc.before_send(to(1));
    log.push_back("first");
  });
  engine.run();
  sched.spawn([&] {
    fc.before_send(to(1));
    log.push_back("a");
  });
  sched.spawn([&] {
    fc.before_send(to(1));
    log.push_back("b");
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"first"}));
  EXPECT_EQ(fc.stats().window_stalls, 2u);

  // One credit comes back but the ack is tripled (lost-ack retransmission
  // aftermath): only one waiter may be admitted.
  fc.on_ack(1);
  fc.on_ack(1);
  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"first", "a"}));
  // Exactly one queue entry per stall: the pre-fix loop re-queued the
  // spuriously woken second waiter and counted a third stall.
  EXPECT_EQ(fc.stats().window_stalls, 2u);

  fc.on_ack(1);
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"first", "a", "b"}));
}

TEST_F(FcFixture, RatePolicyPacesInjection) {
  // 1 MB/s: three 100 KB messages must take ~0.2s of pacing after the first.
  FlowControl fc(sched, {.kind = FlowControlKind::rate, .rate_bytes_per_sec = 1e6}, 4);
  EXPECT_FALSE(fc.wants_acks());
  TimePoint last;
  sched.spawn([&] {
    for (int i = 0; i < 3; ++i) fc.before_send(to(1, 100'000));
    last = engine.now();
  });
  engine.run();
  EXPECT_NEAR(last.sec(), 0.2, 0.01);
  EXPECT_EQ(fc.stats().rate_delays, 2u);
}

TEST_F(FcFixture, RatePolicyDoesNotBurstWhenManySendersWakeTogether) {
  // Regression: before_send slept until the injection horizon ONCE and
  // then injected unconditionally. N senders sleeping toward the same
  // horizon all woke at it and burst their messages back to back — the
  // paced rate was exceeded by a factor of N right after every stall.
  // Each sender must re-check the horizon after waking.
  FlowControl fc(sched, {.kind = FlowControlKind::rate, .rate_bytes_per_sec = 1e6}, 4);
  std::vector<double> admitted;  // seconds, one per sender
  for (int i = 0; i < 4; ++i) {
    sched.spawn([&] {
      fc.before_send(to(1, 100'000));  // 0.1 s of rate occupancy each
      admitted.push_back(engine.now().sec());
    });
  }
  engine.run();
  ASSERT_EQ(admitted.size(), 4u);
  // 1 MB/s admits one 100 KB message every 0.1 s; pre-fix the last three
  // all landed at 0.1 s.
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(admitted[static_cast<std::size_t>(i)], 0.1 * i, 0.01);
  EXPECT_EQ(fc.stats().rate_delays, 3u);
}

TEST_F(FcFixture, DuplicateAcksClampAtZero) {
  FlowControl fc(sched, {.kind = FlowControlKind::window, .window = 2}, 4);
  sched.spawn([&] { fc.before_send(to(1)); });
  engine.run();
  fc.on_ack(1);
  fc.on_ack(1);  // duplicate: must not underflow
  sched.spawn([&] {
    fc.before_send(to(1));
    fc.before_send(to(1));
  });
  engine.run();  // window still 2 deep, both admitted
  EXPECT_EQ(fc.stats().window_stalls, 0u);
}

// --- ErrorControl unit tests ------------------------------------------------

struct EcFixture : ::testing::Test {
  Message msg(int dst, std::uint32_t seq, int src = 0) {
    Message m;
    m.from_process = src;
    m.to_process = dst;
    m.seq = seq;
    m.data = to_bytes("payload");
    return m;
  }

  /// Sequence numbers accept() released, in delivery order.
  static std::vector<std::uint32_t> seqs(std::vector<Message> ready) {
    std::vector<std::uint32_t> out;
    for (const Message& m : ready) out.push_back(m.seq);
    return out;
  }

  sim::Engine engine;
  std::vector<std::uint32_t> retransmitted;
  ErrorControl* ec_ptr = nullptr;
};

TEST_F(EcFixture, NonePolicyAcceptsEverythingTwice) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::none}, nullptr);
  EXPECT_FALSE(ec.wants_acks());
  EXPECT_EQ(seqs(ec.accept(msg(0, 1))), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(seqs(ec.accept(msg(0, 1))), (std::vector<std::uint32_t>{1}));  // no dedup when off
}

TEST_F(EcFixture, RetransmitsAfterRto) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit, .rto = 10_ms},
                  [&](Message m) { retransmitted.push_back(m.seq); });
  ec.on_sent(msg(1, 5));
  engine.run_until(TimePoint::origin() + 9_ms);
  EXPECT_TRUE(retransmitted.empty());
  engine.run_until(TimePoint::origin() + 11_ms);
  EXPECT_EQ(retransmitted, (std::vector<std::uint32_t>{5}));
}

TEST_F(EcFixture, AckCancelsRetransmission) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit, .rto = 10_ms},
                  [&](Message m) { retransmitted.push_back(m.seq); });
  ec.on_sent(msg(1, 5));
  ec.on_ack(1, 5);
  engine.run();
  EXPECT_TRUE(retransmitted.empty());
  EXPECT_TRUE(ec.idle());
}

TEST_F(EcFixture, GivesUpAfterMaxRetries) {
  ErrorControl ec(engine,
                  {.kind = ErrorControlKind::retransmit, .rto = 1_ms, .max_retries = 3},
                  [&](Message m) {
                    retransmitted.push_back(m.seq);
                    ec_ptr->on_sent(m);  // simulate the send thread resending
                  });
  ec_ptr = &ec;
  ec.on_sent(msg(1, 9));
  engine.run();
  EXPECT_EQ(retransmitted.size(), 3u);
  EXPECT_EQ(ec.stats().give_ups, 1u);
  EXPECT_TRUE(ec.idle());
}

TEST_F(EcFixture, ReceiverDeduplicates) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit}, [](Message) {});
  EXPECT_EQ(ec.accept(msg(0, 0, 2)).size(), 1u);
  EXPECT_EQ(ec.accept(msg(0, 1, 2)).size(), 1u);
  EXPECT_TRUE(ec.accept(msg(0, 0, 2)).empty());  // duplicate
  EXPECT_TRUE(ec.accept(msg(0, 1, 2)).empty());
  EXPECT_EQ(ec.accept(msg(0, 2, 2)).size(), 1u);
  EXPECT_EQ(ec.stats().duplicates_dropped, 2u);
}

TEST_F(EcFixture, DedupTracksSourcesIndependently) {
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit}, [](Message) {});
  EXPECT_EQ(ec.accept(msg(0, 0, 1)).size(), 1u);
  EXPECT_EQ(ec.accept(msg(0, 0, 2)).size(), 1u);  // same seq, different source
}

TEST_F(EcFixture, OutOfOrderArrivalsAreHeldForFifoDelivery) {
  // Regression: a retransmission overtaken by later traffic used to be
  // delivered out of order, breaking the per-source FIFO that message
  // order-sensitive applications (fft's A-then-B handshake) rely on.
  ErrorControl ec(engine, {.kind = ErrorControlKind::retransmit}, [](Message) {});
  EXPECT_TRUE(ec.accept(msg(0, 3, 1)).empty());  // gap: held, not delivered
  EXPECT_EQ(seqs(ec.accept(msg(0, 0, 1))), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(seqs(ec.accept(msg(0, 1, 1))), (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(ec.accept(msg(0, 3, 1)).empty());  // duplicate of the held one
  EXPECT_EQ(seqs(ec.accept(msg(0, 2, 1))), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_TRUE(ec.accept(msg(0, 0, 1)).empty());  // below the advanced watermark
  EXPECT_EQ(ec.stats().duplicates_dropped, 2u);
  EXPECT_EQ(ec.stats().reorders, 1u);
}

// --- End-to-end: retransmission over a lossy WAN ---------------------------

TEST(ErrorControlEndToEnd, RecoversMessagesOverLossyHsmLink) {
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 0.1;
  cfg.ncs.error = {.kind = ErrorControlKind::retransmit, .rto = 20_ms};
  Cluster c(cfg);
  c.init_ncs_hsm();

  int received = 0;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    if (rank == 0) {
      const int t = node.t_create([&] {
        for (int i = 0; i < 20; ++i) node.send(0, 0, 1, Bytes(2000, std::byte{1}));
      });
      node.host().join(node.user_thread(t));
    } else {
      const int t = node.t_create([&] {
        for (int i = 0; i < 20; ++i) {
          (void)node.recv(kAnyThread, kAnyProcess, 0);
          ++received;
        }
      });
      node.host().join(node.user_thread(t));
    }
  });
  EXPECT_EQ(received, 20);
  EXPECT_GT(c.node(0).error_control().stats().retransmits, 0u);
}

TEST(ErrorControlEndToEnd, LossWithoutErrorControlLosesMessages) {
  // Control experiment: same lossy link, policy none -> receiver would
  // block forever, so count deliveries within a deadline instead.
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 0.15;
  Cluster c(cfg);
  c.init_ncs_hsm();

  int received = 0;
  for (int r = 0; r < 2; ++r) {
    c.host(r).spawn([&c, r, &received] {
      Node& node = c.node(r);
      if (r == 0) {
        for (int i = 0; i < 20; ++i) node.send(0, 0, 1, Bytes(2000, std::byte{1}));
      } else {
        for (int i = 0; i < 20; ++i) {
          (void)node.recv(kAnyThread, kAnyProcess, 0);
          ++received;
        }
      }
    }, {.name = "main"});
  }
  c.engine().run_until(TimePoint::origin() + 5_sec);
  EXPECT_LT(received, 20);
  EXPECT_GT(received, 0);
}


TEST(ErrorControlEndToEnd, GiveUpReleasesWindowCreditAndRaisesException) {
  // Regression: when error control exhausted max_retries the in-flight
  // record was erased but the flow-control window credit was never
  // returned, so a window-limited sender wedged forever on its next send
  // (and nothing told the application its message was gone). The give-up
  // path must now release the credit and surface a typed NCS exception.
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.wan_backbone.loss_probability = 1.0;  // backbone black hole
  cfg.ncs.flow = {.kind = FlowControlKind::window, .window = 1};
  cfg.ncs.error = {.kind = ErrorControlKind::retransmit, .rto = 5_ms, .max_retries = 2};
  Cluster c(cfg);
  c.init_ncs_hsm();

  int sent = 0;
  std::vector<std::uint32_t> lost_seqs;
  c.node(0).set_exception_handler([&](Node::Exception kind, int peer, std::uint32_t seq) {
    EXPECT_EQ(kind, Node::Exception::message_timeout);
    EXPECT_EQ(peer, 1);
    lost_seqs.push_back(seq);
  });
  c.host(0).spawn([&] {
    Node& node = c.node(0);
    for (int i = 0; i < 3; ++i) {
      node.send(0, 0, 1, Bytes(2000, std::byte{1}));
      ++sent;  // with the credit leak, send #2 blocked here forever
    }
  }, {.name = "main"});
  c.engine().run_until(TimePoint::origin() + 2_sec);

  EXPECT_EQ(sent, 3);
  EXPECT_EQ(lost_seqs, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(c.node(0).error_control().stats().give_ups, 3u);
  EXPECT_TRUE(c.node(0).error_control().idle());
  EXPECT_GE(c.node(0).flow_control().stats().window_stalls, 1u);
}

TEST(ErrorControlEndToEnd, WildcardReceiveStaysPerSourceFifoUnderRetransmission) {
  // Satellite regression: wildcard Pattern matching x the per-source FIFO
  // reorder buffer. Two senders stream counted payloads over a lossy WAN;
  // retransmissions overtake later traffic on the wire, yet a wildcard
  // receiver must still observe each source's counters strictly in order
  // (sources may interleave freely).
  ClusterConfig cfg = cluster::nynet_wan(3);
  cfg.wan_backbone.loss_probability = 0.15;
  cfg.ncs.error = {.kind = ErrorControlKind::retransmit, .rto = 15_ms, .max_retries = 40};
  Cluster c(cfg);
  c.init_ncs_hsm();

  constexpr int kPerSender = 25;
  std::vector<std::vector<std::uint32_t>> seen(3);
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < 2 * kPerSender; ++i) {
          int src = -1;
          const Bytes payload = node.recv(kAnyThread, kAnyProcess, 0, nullptr, &src);
          ASSERT_EQ(payload.size(), 260u);
          std::uint32_t counter = 0;
          for (std::size_t b = 0; b < 4; ++b)
            counter = counter << 8 | static_cast<std::uint32_t>(payload[b]);
          ASSERT_TRUE(src == 1 || src == 2);
          seen[static_cast<std::size_t>(src)].push_back(counter);
        }
      } else {
        for (std::uint32_t i = 0; i < kPerSender; ++i) {
          Bytes payload(260, std::byte{static_cast<unsigned char>(rank)});
          for (int b = 0; b < 4; ++b)
            payload[static_cast<std::size_t>(b)] =
                static_cast<std::byte>(i >> (24 - 8 * b) & 0xFF);
          node.send(0, 0, 0, payload);
        }
      }
    });
    node.host().join(node.user_thread(t));
  });

  for (int src = 1; src <= 2; ++src) {
    ASSERT_EQ(seen[static_cast<std::size_t>(src)].size(),
              static_cast<std::size_t>(kPerSender));
    for (std::uint32_t i = 0; i < kPerSender; ++i)
      EXPECT_EQ(seen[static_cast<std::size_t>(src)][i], i)
          << "source p" << src << " delivered out of order at index " << i;
  }
  EXPECT_GT(c.node(1).error_control().stats().retransmits +
                c.node(2).error_control().stats().retransmits,
            0u);
}

TEST(ErrorControlEndToEnd, RetransmitRecoversCellCorruption) {
  // Fault injection at the lowest layer: damaged cells are rejected by the
  // receiving adapter's AAL5 CRC (real cells, detailed mode), and the NCS
  // error-control thread retransmits until everything lands.
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.nic.detailed_cells = true;
  cfg.nic.cell_corrupt_probability = 0.002;
  cfg.ncs.error = {.kind = ErrorControlKind::retransmit, .rto = 10_ms, .max_retries = 40};
  Cluster c(cfg);
  c.init_ncs_hsm();

  int received = 0;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < 15; ++i) node.send(0, 0, 1, Bytes(8000, std::byte{1}));
      } else {
        for (int i = 0; i < 15; ++i) {
          const Bytes msg = node.recv(kAnyThread, kAnyProcess, 0);
          EXPECT_EQ(msg.size(), 8000u);
          ++received;
        }
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(received, 15);
  EXPECT_GT(c.node(0).error_control().stats().retransmits, 0u);
}

}  // namespace
}  // namespace ncs::mps
