#include "core/mts/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ncs::mts {
namespace {

using namespace ncs::literals;

struct SyncFixture : ::testing::Test {
  SyncFixture() : sched(engine, params()) {}

  static SchedulerParams params() {
    SchedulerParams p;
    p.name = "h";
    p.context_switch_cost = Duration::zero();
    p.thread_create_cost = Duration::zero();
    return p;
  }

  sim::Engine engine;
  Scheduler sched;
};

TEST_F(SyncFixture, SemaphoreInitialValueAdmitsWithoutBlocking) {
  Semaphore sem(sched, 2);
  int admitted = 0;
  for (int i = 0; i < 2; ++i)
    sched.spawn([&] {
      sem.wait();
      ++admitted;
    });
  engine.run();
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(sem.value(), 0);
}

TEST_F(SyncFixture, SemaphoreBlocksAtZeroUntilSignal) {
  Semaphore sem(sched, 0);
  std::vector<int> log;
  sched.spawn([&] {
    sem.wait();
    log.push_back(2);
  });
  sched.spawn([&] {
    log.push_back(1);
    sem.signal();
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST_F(SyncFixture, SemaphoreFifoWakeups) {
  Semaphore sem(sched, 0);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i)
    sched.spawn([&, i] {
      sem.wait();
      order.push_back(i);
    });
  sched.spawn([&] {
    for (int i = 0; i < 3; ++i) sem.signal();
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(SyncFixture, SemaphoreSignalFromEngineContext) {
  Semaphore sem(sched, 0);
  bool done = false;
  sched.spawn([&] {
    sem.wait();
    done = true;
  });
  engine.schedule_after(50_us, [&] { sem.signal(); });
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_GE(engine.now(), TimePoint::origin() + 50_us);
}

TEST_F(SyncFixture, MutexProvidesExclusionAcrossBlockingPoints) {
  Mutex m(sched);
  std::vector<std::string> log;
  for (const char* name : {"a", "b"}) {
    sched.spawn([&, name] {
      LockGuard g(m);
      log.push_back(std::string(name) + ":in");
      sched.sleep_for(10_us);  // blocking point inside the critical section
      log.push_back(std::string(name) + ":out");
    });
  }
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a:in");
  EXPECT_EQ(log[1], "a:out");  // b must not enter while a sleeps
  EXPECT_EQ(log[2], "b:in");
  EXPECT_EQ(log[3], "b:out");
}

TEST_F(SyncFixture, CondVarNotifyOneWakesInOrder) {
  Mutex m(sched);
  CondVar cv(sched);
  std::vector<int> woke;
  bool ready = false;
  for (int i = 0; i < 2; ++i)
    sched.spawn([&, i] {
      LockGuard g(m);
      while (!ready) cv.wait(m);
      woke.push_back(i);
    });
  sched.spawn([&] {
    LockGuard g(m);
    ready = true;
    cv.notify_all();
  });
  engine.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1}));
}

TEST_F(SyncFixture, BarrierReleasesAllAtOnce) {
  Barrier barrier(sched, 3);
  std::vector<std::string> log;
  for (int i = 0; i < 3; ++i)
    sched.spawn([&, i] {
      sched.charge(Duration::microseconds(10.0 * (i + 1)));
      log.push_back("arrive" + std::to_string(i));
      barrier.arrive_and_wait();
      log.push_back("go" + std::to_string(i));
    });
  engine.run();
  ASSERT_EQ(log.size(), 6u);
  // All arrivals strictly precede all releases.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)].substr(0, 6), "arrive");
  for (int i = 3; i < 6; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)].substr(0, 2), "go");
}

TEST_F(SyncFixture, BarrierIsReusableAcrossPhases) {
  Barrier barrier(sched, 2);
  std::vector<int> phases;
  for (int i = 0; i < 2; ++i)
    sched.spawn([&, i] {
      for (int phase = 0; phase < 3; ++phase) {
        barrier.arrive_and_wait();
        if (i == 0) phases.push_back(phase);
      }
    });
  engine.run();
  EXPECT_EQ(phases, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(barrier.generation(), 3);
}

TEST_F(SyncFixture, EventIsSticky) {
  Event ev(sched);
  std::vector<int> log;
  sched.spawn([&] {
    ev.wait();
    log.push_back(1);
  });
  sched.spawn([&] { ev.set(); });
  engine.run();
  // A late waiter passes straight through.
  sched.spawn([&] {
    ev.wait();
    log.push_back(2);
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST_F(SyncFixture, ChannelDeliversInOrder) {
  Channel<int> ch(sched);
  std::vector<int> got;
  sched.spawn([&] {
    for (int i = 0; i < 5; ++i) got.push_back(ch.pop());
  });
  sched.spawn([&] {
    for (int i = 0; i < 5; ++i) ch.push(i);
  });
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(SyncFixture, ChannelPushFromEngineContext) {
  Channel<int> ch(sched);
  int got = -1;
  sched.spawn([&] { got = ch.pop(); });
  engine.schedule_after(10_us, [&] { ch.push(42); });
  engine.run();
  EXPECT_EQ(got, 42);
}

TEST_F(SyncFixture, ChannelTryPopNonBlocking) {
  Channel<int> ch(sched);
  std::vector<int> log;
  sched.spawn([&] {
    EXPECT_FALSE(ch.try_pop().has_value());
    ch.push(7);
    const auto v = ch.try_pop();
    ASSERT_TRUE(v.has_value());
    log.push_back(*v);
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{7}));
}

TEST_F(SyncFixture, ChannelStealDoesNotLoseWakeup) {
  // A try_pop stealing the item between push and the blocked popper's
  // resume must leave the popper blocked (it re-checks), and a later push
  // must still wake it.
  Channel<int> ch(sched);
  std::vector<int> got;
  sched.spawn([&] { got.push_back(ch.pop()); }, {.name = "popper"});
  sched.spawn([&] {
    ch.push(1);
    // Steal before popper resumes (it is runnable, not running).
    const auto stolen = ch.try_pop();
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(*stolen, 1);
  }, {.name = "thief", .priority = 0});
  engine.run();
  EXPECT_TRUE(got.empty());

  ch.push(2);
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{2}));
}

TEST_F(SyncFixture, ProducerConsumerPipelineUnderLoad) {
  Channel<int> ch(sched);
  long sum = 0;
  const int n = 500;
  sched.spawn([&] {
    for (int i = 0; i < n; ++i) sum += ch.pop();
  });
  sched.spawn([&] {
    for (int i = 0; i < n; ++i) {
      ch.push(i);
      if (i % 7 == 0) sched.yield();
    }
  });
  engine.run();
  EXPECT_EQ(sum, static_cast<long>(n) * (n - 1) / 2);
}

TEST_F(SyncFixture, MutexUnlockByNonOwnerAborts) {
  Mutex m(sched);
  sched.spawn([&] { m.lock(); });
  engine.run();
  EXPECT_DEATH(
      {
        sim::Engine e2;
        Scheduler s2(e2, params());
        Mutex m2(s2);
        s2.spawn([&] {
          m2.lock();
          m2.unlock();
          m2.unlock();
        });
        e2.run();
      },
      "");
}

}  // namespace
}  // namespace ncs::mts
