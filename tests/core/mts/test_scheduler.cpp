#include "core/mts/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ncs::mts {
namespace {

using namespace ncs::literals;

SchedulerParams zero_cost(const std::string& name = "h0", double mhz = 40) {
  SchedulerParams p;
  p.name = name;
  p.cpu_mhz = mhz;
  p.context_switch_cost = Duration::zero();
  p.thread_create_cost = Duration::zero();
  return p;
}

TEST(Scheduler, RunsASpawnedThreadToCompletion) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  bool ran = false;
  Thread* t = sched.spawn([&] { ran = true; });
  engine.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(t->finished());
  EXPECT_TRUE(sched.quiescent());
}

TEST(Scheduler, ThreadsSeeThemselves) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  Thread* spawned = nullptr;
  ThreadId seen = kInvalidThread;
  spawned = sched.spawn([&] {
    EXPECT_EQ(Scheduler::active(), &sched);
    seen = sched.current()->id();
  });
  engine.run();
  EXPECT_EQ(seen, spawned->id());
  EXPECT_EQ(Scheduler::active(), nullptr);
}

TEST(Scheduler, ChargeAdvancesVirtualTime) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost("h", 40));
  TimePoint end;
  sched.spawn([&] {
    sched.charge_cycles(40e6);  // 1 second at 40 MHz
    end = engine.now();
  });
  engine.run();
  EXPECT_NEAR((end - TimePoint::origin()).sec(), 1.0, 1e-9);
}

TEST(Scheduler, CpuMhzScalesChargeTime) {
  auto run_at = [](double mhz) {
    sim::Engine engine;
    Scheduler sched(engine, zero_cost("h", mhz));
    TimePoint end;
    sched.spawn([&] {
      sched.charge_cycles(33e6);
      end = engine.now();
    });
    engine.run();
    return (end - TimePoint::origin()).sec();
  };
  EXPECT_NEAR(run_at(33.0), 1.0, 1e-9);
  EXPECT_NEAR(run_at(66.0), 0.5, 1e-9);
}

TEST(Scheduler, ChargeWindowExcludesSiblings) {
  // While thread A computes, thread B (runnable) must not run: one CPU.
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<std::string> log;
  sched.spawn([&] {
    log.push_back("A0@" + std::to_string(engine.now().ps()));
    sched.charge(100_us);
    log.push_back("A1@" + std::to_string(engine.now().ps()));
  }, {.name = "A"});
  sched.spawn([&] {
    log.push_back("B0@" + std::to_string(engine.now().ps()));
  }, {.name = "B"});
  engine.run();
  // B starts only after A's 100us charge completes.
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].substr(0, 2), "A0");
  EXPECT_EQ(log[1].substr(0, 2), "A1");
  EXPECT_EQ(log[2].substr(0, 2), "B0");
}

TEST(Scheduler, BlockAndUnblockResume) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  Thread* blocked = nullptr;
  std::vector<int> log;
  blocked = sched.spawn([&] {
    log.push_back(1);
    sched.block();
    log.push_back(3);
  });
  sched.spawn([&] {
    log.push_back(2);
    sched.unblock(blocked);
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SleepReleasesCpuToSiblings) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<std::string> log;
  sched.spawn([&] {
    sched.sleep_for(100_us);
    log.push_back("sleeper@" + std::to_string(engine.now().ps()));
  });
  sched.spawn([&] {
    log.push_back("worker@" + std::to_string(engine.now().ps()));
  });
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].substr(0, 6), "worker");  // runs during the sleep
}

TEST(Scheduler, UnblockCutsASleepShort) {
  // A sleeping thread is just a blocked thread; an explicit unblock must
  // wake it before its deadline, not crash or double-wake it.
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  TimePoint woke;
  Thread* sleeper = sched.spawn([&] {
    sched.sleep_until(TimePoint::origin() + 1_ms);
    woke = engine.now();
  });
  sched.spawn([&] {
    sched.sleep_for(10_us);
    sched.unblock(sleeper);
  });
  engine.run();
  EXPECT_NEAR((woke - TimePoint::origin()).sec(), 10e-6, 1e-9);
  EXPECT_TRUE(sched.quiescent());
}

TEST(Scheduler, StaleSleepTimerDoesNotWakeALaterBlock) {
  // Regression: the sleep timer used to unblock its thread unconditionally.
  // If the thread was woken early and had moved on to block on something
  // else, the stale timer fired into that *new* wait and woke it spuriously.
  // Today the early wake *cancels* the timer outright, so beyond not firing
  // into the second block it must not even keep the engine alive to 1 ms.
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<std::string> log;
  Thread* sleeper = nullptr;
  sleeper = sched.spawn([&] {
    sched.sleep_until(TimePoint::origin() + 1_ms);
    log.push_back("woke-early");
    sched.block();  // a different wait; the 1 ms timer is now stale
    log.push_back("woke-again");
  });
  sched.spawn([&] {
    sched.sleep_for(10_us);
    sched.unblock(sleeper);
  });
  engine.run();
  // The sleeper is still sitting in its second block, and the 1 ms timer
  // was reclaimed at the early wake: the queue drained at the unblock.
  EXPECT_EQ(log, (std::vector<std::string>{"woke-early"}));
  EXPECT_NEAR((engine.now() - TimePoint::origin()).sec(), 10e-6, 1e-9);

  sched.unblock(sleeper);
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"woke-early", "woke-again"}));
  EXPECT_TRUE(sched.quiescent());
}

TEST(Scheduler, PriorityOrdering) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<int> order;
  // Spawn in reverse priority order; dispatch must follow priority.
  for (int prio : {12, 4, 8, 0, 15}) {
    sched.spawn([&order, prio] { order.push_back(prio); }, {.priority = prio});
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 4, 8, 12, 15}));
}

TEST(Scheduler, RoundRobinWithinPriorityLevel) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<std::string> order;
  for (const char* name : {"a", "b", "c"}) {
    sched.spawn([&order, name, &sched] {
      for (int round = 0; round < 3; ++round) {
        order.push_back(name + std::to_string(round));
        sched.yield();
      }
    }, {.name = name});
  }
  engine.run();
  // Perfect interleaving: a0 b0 c0 a1 b1 c1 a2 b2 c2.
  const std::vector<std::string> expected{"a0", "b0", "c0", "a1", "b1", "c1", "a2", "b2", "c2"};
  EXPECT_EQ(order, expected);
}

TEST(Scheduler, HigherPriorityRunsAtNextDispatchPoint) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<std::string> log;
  sched.spawn([&] {
    log.push_back("low-start");
    sched.spawn([&] { log.push_back("high"); }, {.priority = 0});
    log.push_back("low-continues");  // non-preemptive: still running
    sched.yield();
    log.push_back("low-after-yield");
  }, {.priority = 10});
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"low-start", "low-continues", "high",
                                           "low-after-yield"}));
}

TEST(Scheduler, JoinWaitsForCompletion) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<int> log;
  Thread* worker = sched.spawn([&] {
    sched.charge(50_us);
    log.push_back(1);
  });
  sched.spawn([&] {
    sched.join(worker);
    log.push_back(2);
  });
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Scheduler, JoinOnFinishedThreadReturnsImmediately) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  Thread* worker = sched.spawn([] {});
  bool joined = false;
  engine.run();
  sched.spawn([&] {
    sched.join(worker);
    joined = true;
  });
  engine.run();
  EXPECT_TRUE(joined);
}

TEST(Scheduler, ContextSwitchCostDelaysDispatch) {
  sim::Engine engine;
  SchedulerParams p = zero_cost();
  p.context_switch_cost = 10_us;
  Scheduler sched(engine, p);
  TimePoint started;
  sched.spawn([&] { started = engine.now(); });
  engine.run();
  EXPECT_EQ(started, TimePoint::origin() + 10_us);
  EXPECT_EQ(sched.stats().overhead, 10_us);
}

TEST(Scheduler, ThreadCreateCostAccrues) {
  sim::Engine engine;
  SchedulerParams p = zero_cost();
  p.thread_create_cost = 25_us;
  Scheduler sched(engine, p);
  sched.spawn([] {});
  sched.spawn([] {});
  engine.run();
  EXPECT_EQ(sched.stats().overhead, 50_us);
}

TEST(Scheduler, ManyThreadsManySwitches) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  int total = 0;
  for (int i = 0; i < 50; ++i) {
    sched.spawn([&, i] {
      for (int k = 0; k < 20; ++k) {
        total += i;
        sched.yield();
      }
    });
  }
  engine.run();
  EXPECT_EQ(total, 20 * (49 * 50 / 2));
  EXPECT_TRUE(sched.quiescent());
  EXPECT_GE(sched.stats().dispatches, 50u * 20u);
}

TEST(Scheduler, TwoHostsInterleaveDeterministically) {
  auto run_once = [] {
    sim::Engine engine;
    Scheduler h0(engine, zero_cost("h0"));
    Scheduler h1(engine, zero_cost("h1"));
    std::vector<std::string> log;
    for (auto* s : {&h0, &h1}) {
      s->spawn([&log, s] {
        for (int i = 0; i < 3; ++i) {
          log.push_back(s->name() + std::to_string(i));
          s->charge(Duration::microseconds(s->name() == "h0" ? 10 : 15));
        }
      });
    }
    engine.run();
    return log;
  };
  const auto log = run_once();
  EXPECT_EQ(log, run_once());
  // Hosts run truly concurrently in virtual time: h1's first step happens
  // before h0 finishes all three.
  EXPECT_EQ(log[0], "h00");
  EXPECT_EQ(log[1], "h10");
}

TEST(Scheduler, TimelineRecordsComputeAndIdle) {
  sim::Engine engine;
  sim::Timeline tl;
  Scheduler sched(engine, zero_cost());
  sched.set_timeline(&tl);
  sched.spawn([&] { sched.charge(100_us, sim::Activity::compute); }, {.name = "worker"});
  engine.run();
  tl.finish(engine.now());

  ASSERT_EQ(tl.track_count(), 1);
  EXPECT_EQ(tl.track_name(0), "h0/worker");
  const auto s = tl.summarize(0);
  EXPECT_NEAR(s.fraction(sim::Activity::compute), 1.0, 1e-9);
}

TEST(Scheduler, StackWatermarkVisibleAfterRun) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  Thread* t = sched.spawn([] {
    volatile char burn[8000];
    for (int i = 0; i < 8000; i += 64) burn[i] = 1;
    (void)burn[0];
  });
  engine.run();
  EXPECT_GE(t->stack_high_watermark(), 8000u);
}


TEST(Scheduler, YieldToHigherPrefersSystemThreads) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<std::string> log;
  // Two same-priority workers and one high-priority thread that becomes
  // runnable mid-run: yield_to_higher must let the high one in but never
  // rotate between the peers.
  // The high-priority thread parks itself immediately (like an idle
  // system thread waiting for work).
  Thread* high = sched.spawn([&] {
    sched.block();
    log.push_back("high");
  }, {.name = "high", .priority = 0});
  sched.spawn([&] {
    for (int i = 0; i < 3; ++i) {
      log.push_back("a" + std::to_string(i));
      if (i == 0) sched.unblock(high);
      sched.yield_to_higher();
    }
  }, {.name = "a", .priority = 8});
  sched.spawn([&] {
    for (int i = 0; i < 3; ++i) {
      log.push_back("b" + std::to_string(i));
      sched.yield_to_higher();
    }
  }, {.name = "b", .priority = 8});
  engine.run();
  // a keeps the CPU among its peers (no timesharing with b), but the
  // woken high-priority thread takes the yield point.
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "high", "a1", "a2", "b0", "b1", "b2"}));
}

TEST(Scheduler, YieldToHigherNoopWithoutHigherWork) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<int> order;
  sched.spawn([&] {
    order.push_back(1);
    sched.yield_to_higher();  // peer exists but is not higher priority
    order.push_back(2);
  });
  sched.spawn([&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SetPriorityRequeuesRunnableThread) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<std::string> order;
  Thread* slow = sched.spawn([&] { order.push_back("was-low"); }, {.priority = 15});
  sched.spawn([&, slow] {
    sched.set_priority(slow, 0);  // promote before it ever ran
    order.push_back("promoter");
    sched.yield();
    order.push_back("promoter-after");
  }, {.priority = 8});
  sched.spawn([&] { order.push_back("mid"); }, {.priority = 8});
  engine.run();
  // After the promoter yields, the promoted thread outranks "mid".
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "promoter");
  EXPECT_EQ(order[1], "was-low");
  EXPECT_EQ(order[2], "mid");
}

TEST(Scheduler, SetPriorityOnBlockedThreadTakesEffectOnWake) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<std::string> order;
  Thread* blocked = sched.spawn([&] {
    sched.block();
    order.push_back("woken");
  }, {.priority = 15});
  engine.run();
  sched.set_priority(blocked, 0);
  sched.spawn([&] { order.push_back("other"); }, {.priority = 8});
  sched.unblock(blocked);
  engine.run();
  EXPECT_EQ(order, (std::vector<std::string>{"woken", "other"}));
}

TEST(Scheduler, SetPriorityDuringChargeTakesEffectAtNextQueueing) {
  // A thread inside a charge() window is parked (blocked, not queued) but
  // still owns the CPU. Changing its priority mid-window must neither
  // requeue it nor disturb the window: the charge runs to completion, the
  // thread resumes directly, and the new level applies at its next
  // queueing (the documented "takes effect at next queueing" semantics).
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  std::vector<std::string> order;
  TimePoint resumed;
  Thread* charger = sched.spawn([&] {
    sched.charge(100_us);  // the promotion lands mid-window
    resumed = engine.now();
    order.push_back("charger");
    sched.yield();  // first queueing after the change: new level applies
    order.push_back("charger-after-yield");
  }, {.name = "charger", .priority = 8});
  engine.schedule_at(TimePoint::origin() + 50_us, [&] {
    EXPECT_EQ(charger->state(), ThreadState::blocked);  // parked in charge()
    sched.set_priority(charger, 0);
    EXPECT_EQ(charger->priority(), 0);
  });
  // A peer above the charger's old level but below its new one, queued
  // while the window runs: the non-preemptive CPU keeps it waiting, and
  // at the charger's yield the *new* priority must outrank it.
  engine.schedule_at(TimePoint::origin() + 60_us, [&] {
    sched.spawn([&] { order.push_back("peer"); }, {.name = "peer", .priority = 4});
  });
  engine.run();
  EXPECT_EQ(resumed, TimePoint::origin() + 100_us);  // window undisturbed
  EXPECT_EQ(order, (std::vector<std::string>{"charger", "charger-after-yield", "peer"}));
  EXPECT_TRUE(sched.quiescent());
}

TEST(SchedulerDeathTest, BlockOutsideThreadAborts) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  EXPECT_DEATH(sched.block(), "outside a thread");
}

TEST(SchedulerDeathTest, UnblockRunnableThreadAborts) {
  sim::Engine engine;
  Scheduler sched(engine, zero_cost());
  Thread* t = sched.spawn([] {});
  EXPECT_DEATH(sched.unblock(t), "not on the blocked queue");
  engine.run();
}

}  // namespace
}  // namespace ncs::mts
