#include "core/mts/smp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/mts/scheduler.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ncs::mts {
namespace {

using namespace ncs::literals;

SchedulerParams smp_params(int cores, StealPolicy steal = StealPolicy::seeded,
                           ProgressModel progress = ProgressModel::dedicated_core) {
  SchedulerParams p;
  p.name = "h0";
  p.cpu_mhz = 40;
  p.context_switch_cost = Duration::zero();
  p.thread_create_cost = Duration::zero();
  p.smp.n_cores = cores;
  p.smp.steal = steal;
  p.smp.progress = progress;
  return p;
}

TEST(VictimOrder, EmptyForSingleCoreOrNoStealing) {
  EXPECT_TRUE(victim_order(0, 1, StealPolicy::seeded, 1).empty());
  EXPECT_TRUE(victim_order(0, 4, StealPolicy::none, 1).empty());
}

TEST(VictimOrder, RingStartsAtNextCore) {
  EXPECT_EQ(victim_order(1, 4, StealPolicy::ring, 0), (std::vector<int>{2, 3, 0}));
  EXPECT_EQ(victim_order(3, 4, StealPolicy::ring, 0), (std::vector<int>{0, 1, 2}));
}

TEST(VictimOrder, SeededIsAPermutationOfSiblingsAndDeterministic) {
  for (int self = 0; self < 8; ++self) {
    const auto a = victim_order(self, 8, StealPolicy::seeded, 1995);
    const auto b = victim_order(self, 8, StealPolicy::seeded, 1995);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 7u);
    auto sorted = a;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0, j = 0; i < 8; ++i) {
      if (i == self) continue;
      EXPECT_EQ(sorted[static_cast<std::size_t>(j++)], i);
    }
  }
}

TEST(VictimOrder, DifferentSeedsGiveDifferentPermutations) {
  // Not guaranteed per-core, but across 8 thieves at least one must differ.
  bool any_differ = false;
  for (int self = 0; self < 8; ++self)
    any_differ |= victim_order(self, 8, StealPolicy::seeded, 1) !=
                  victim_order(self, 8, StealPolicy::seeded, 2);
  EXPECT_TRUE(any_differ);
}

TEST(Smp, SingleCoreHasNoSiblingState) {
  sim::Engine engine;
  Scheduler sched(engine, smp_params(1));
  EXPECT_EQ(sched.n_cores(), 1);
  sched.spawn([&] { sched.charge(10_us); });
  engine.run();
  EXPECT_EQ(sched.stats().steals, 0u);
  EXPECT_EQ(sched.core_stats(0).dispatches, sched.stats().dispatches);
}

TEST(Smp, DedicatedCorePlacesSystemThreadsOnLastCore) {
  sim::Engine engine;
  Scheduler sched(engine, smp_params(4, StealPolicy::none));
  Thread* sys = sched.spawn([&] {}, {.name = "sys", .cls = ThreadClass::system});
  Thread* u0 = sched.spawn([&] {}, {.name = "u0"});
  Thread* u1 = sched.spawn([&] {}, {.name = "u1"});
  Thread* u2 = sched.spawn([&] {}, {.name = "u2"});
  Thread* u3 = sched.spawn([&] {}, {.name = "u3"});
  EXPECT_EQ(sys->core(), 3);
  // Users round-robin the three compute cores, wrapping.
  EXPECT_EQ(u0->core(), 0);
  EXPECT_EQ(u1->core(), 1);
  EXPECT_EQ(u2->core(), 2);
  EXPECT_EQ(u3->core(), 0);
  engine.run();
}

TEST(Smp, OnDemandPlacesSystemThreadsOnCoreZero) {
  sim::Engine engine;
  Scheduler sched(engine, smp_params(4, StealPolicy::none, ProgressModel::on_demand));
  Thread* sys = sched.spawn([&] {}, {.name = "sys", .cls = ThreadClass::system});
  Thread* u0 = sched.spawn([&] {}, {.name = "u0"});
  Thread* u1 = sched.spawn([&] {}, {.name = "u1"});
  Thread* u2 = sched.spawn([&] {}, {.name = "u2"});
  Thread* u3 = sched.spawn([&] {}, {.name = "u3"});
  EXPECT_EQ(sys->core(), 0);
  // All four cores take user threads: no core is reserved.
  EXPECT_EQ(u0->core(), 0);
  EXPECT_EQ(u1->core(), 1);
  EXPECT_EQ(u2->core(), 2);
  EXPECT_EQ(u3->core(), 3);
  engine.run();
}

TEST(Smp, AffinityPinsPlacement) {
  sim::Engine engine;
  Scheduler sched(engine, smp_params(4));
  Thread* pinned = sched.spawn([&] {}, {.name = "pin", .affinity = 2});
  EXPECT_EQ(pinned->core(), 2);
  EXPECT_EQ(pinned->affinity(), 2);
  engine.run();
}

TEST(Smp, ChargeWindowsOverlapAcrossCores) {
  // Two compute threads on different cores charge 1 ms each; on two compute
  // cores the host finishes in ~1 ms, not 2 ms.
  sim::Engine engine;
  Scheduler sched(engine, smp_params(3));  // 2 compute + 1 progress core
  TimePoint end_a, end_b;
  sched.spawn([&] {
    sched.charge(1_ms);
    end_a = engine.now();
  }, {.name = "A"});
  sched.spawn([&] {
    sched.charge(1_ms);
    end_b = engine.now();
  }, {.name = "B"});
  engine.run();
  EXPECT_EQ((end_a - TimePoint::origin()).ps(), Duration(1_ms).ps());
  EXPECT_EQ((end_b - TimePoint::origin()).ps(), Duration(1_ms).ps());
  EXPECT_EQ(sched.core_stats(0).dispatches + sched.core_stats(1).dispatches,
            sched.stats().dispatches);
}

TEST(Smp, IdleCoreStealsQueuedUserWork) {
  // A (pinned) occupies core 0 with a charge; B, unpinned and placed on
  // core 0 by round-robin, sits queued behind it until the idle sibling
  // steals it — after which both charges run concurrently.
  sim::Engine engine;
  Scheduler sched(engine, smp_params(2, StealPolicy::seeded, ProgressModel::on_demand));
  TimePoint end_a, end_b;
  Thread* b = nullptr;
  sched.spawn([&] {
    sched.charge(1_ms);
    end_a = engine.now();
  }, {.name = "A", .affinity = 0});
  b = sched.spawn([&] {
    sched.charge(1_ms);
    end_b = engine.now();
  }, {.name = "B"});
  engine.run();
  EXPECT_GE(sched.stats().steals, 1u);
  EXPECT_EQ(sched.core_stats(1).steals_in, sched.stats().steals);
  EXPECT_EQ(sched.core_stats(0).steals_out, sched.stats().steals);
  EXPECT_EQ(b->core(), 1);  // rebound to the thief
  // Both finish at 1 ms: the steal ran B concurrently with A.
  EXPECT_EQ((end_a - TimePoint::origin()).ps(), Duration(1_ms).ps());
  EXPECT_EQ((end_b - TimePoint::origin()).ps(), Duration(1_ms).ps());
}

TEST(Smp, StealPolicyNoneSerializesACore) {
  sim::Engine engine;
  Scheduler sched(engine, smp_params(2, StealPolicy::none, ProgressModel::on_demand));
  TimePoint end_b;
  sched.spawn([&] { sched.charge(1_ms); }, {.name = "A", .affinity = 0});
  sched.spawn([&] {
    sched.charge(1_ms);
    end_b = engine.now();
  }, {.name = "B"});  // placed on core 0 by round-robin
  engine.run();
  EXPECT_EQ(sched.stats().steals, 0u);
  EXPECT_EQ((end_b - TimePoint::origin()).ps(), Duration(2_ms).ps());
}

TEST(Smp, PinnedThreadsAreNeverStolen) {
  sim::Engine engine;
  Scheduler sched(engine, smp_params(2, StealPolicy::seeded, ProgressModel::on_demand));
  TimePoint end_b;
  sched.spawn([&] { sched.charge(1_ms); }, {.name = "A", .affinity = 0});
  Thread* b = sched.spawn([&] {
    sched.charge(1_ms);
    end_b = engine.now();
  }, {.name = "B", .affinity = 0});
  engine.run();
  EXPECT_EQ(sched.stats().steals, 0u);
  EXPECT_EQ(b->core(), 0);
  EXPECT_EQ((end_b - TimePoint::origin()).ps(), Duration(2_ms).ps());
}

TEST(Smp, DedicatedProgressCoreDoesNotStealUserWork) {
  // 2 cores under dedicated_core: core 1 is the progress core. Queue two
  // user threads on core 0; core 1 must stay idle rather than steal.
  sim::Engine engine;
  Scheduler sched(engine, smp_params(2, StealPolicy::seeded));
  TimePoint end_b;
  sched.spawn([&] { sched.charge(1_ms); }, {.name = "A"});
  sched.spawn([&] {
    sched.charge(1_ms);
    end_b = engine.now();
  }, {.name = "B"});
  engine.run();
  EXPECT_EQ(sched.stats().steals, 0u);
  EXPECT_EQ(sched.core_stats(1).dispatches, 0u);
  EXPECT_EQ((end_b - TimePoint::origin()).ps(), Duration(2_ms).ps());
}

TEST(Smp, ProgressHintMigratesRunnableSystemThreads) {
  sim::Engine engine;
  Scheduler sched(engine, smp_params(2, StealPolicy::none, ProgressModel::on_demand));
  TimePoint plane_ran;
  // A system "plane" that ends up runnable on core 0 behind a 5 ms charge.
  Thread* plane = sched.spawn([&] {
    sched.block();
    plane_ran = engine.now();
  }, {.name = "plane", .priority = 1, .cls = ThreadClass::system});
  sched.spawn([&] { sched.charge(5_ms); }, {.name = "hog", .affinity = 0});
  sched.spawn([&] {
    sched.sleep_for(1_ms);
    sched.unblock(plane);  // re-queues on core 0, behind the hog's charge
  }, {.name = "waker", .cls = ThreadClass::system, .affinity = 1});
  // Caller on core 1 pulls the plane over instead of waiting for core 0.
  sched.spawn([&] {
    sched.sleep_for(2_ms);
    sched.progress_hint();
    sched.yield_to_higher();  // plane is priority 1: it runs here, now
  }, {.name = "caller", .affinity = 1});
  engine.run();
  EXPECT_EQ(sched.core_stats(1).migrations_in, 1u);
  EXPECT_EQ(plane->core(), 1);
  EXPECT_EQ((plane_ran - TimePoint::origin()).ps(), Duration(2_ms).ps());
}

TEST(Smp, HybridSlicesLongUserCharges) {
  // hybrid: a 1 ms user charge with a 200 us quantum gets 5 windows with
  // yield points between them; a higher-priority thread woken mid-charge
  // runs at the next slice boundary, not after the full 1 ms.
  sim::Engine engine;
  SchedulerParams p = smp_params(1, StealPolicy::none, ProgressModel::hybrid);
  p.smp.poll_quantum = Duration::microseconds(200);
  Scheduler sched(engine, p);
  TimePoint urgent_ran;
  Thread* urgent = sched.spawn([&] {
    sched.block();
    urgent_ran = engine.now();
  }, {.name = "urgent", .priority = 0});
  TimePoint hog_done;
  sched.spawn([&] {
    sched.charge(1_ms);
    hog_done = engine.now();
  }, {.name = "hog", .priority = 8});
  sched.spawn([&] {
    sched.sleep_for(300_us);
    sched.unblock(urgent);
  }, {.name = "waker", .priority = 4, .cls = ThreadClass::system});
  engine.run();
  // urgent runs at the 400 us slice boundary (woken at 300 us), far before
  // the hog's charge completes at >= 1 ms.
  EXPECT_EQ((urgent_ran - TimePoint::origin()).ps(), Duration(400_us).ps());
  EXPECT_GE((hog_done - TimePoint::origin()).ps(), Duration(1_ms).ps());
}

TEST(Smp, HybridDoesNotSliceSystemThreads) {
  sim::Engine engine;
  SchedulerParams p = smp_params(1, StealPolicy::none, ProgressModel::hybrid);
  p.smp.poll_quantum = Duration::microseconds(200);
  Scheduler sched(engine, p);
  TimePoint urgent_ran;
  Thread* urgent = sched.spawn([&] {
    sched.block();
    urgent_ran = engine.now();
  }, {.name = "urgent", .priority = 0});
  sched.spawn([&] { sched.charge(1_ms); },
              {.name = "sys-hog", .priority = 8, .cls = ThreadClass::system});
  sched.spawn([&] {
    sched.sleep_for(300_us);
    sched.unblock(urgent);
  }, {.name = "waker", .priority = 4, .cls = ThreadClass::system});
  engine.run();
  // System charges are atomic: urgent waits for the full window.
  EXPECT_GE((urgent_ran - TimePoint::origin()).ps(), Duration(1_ms).ps());
}

TEST(Smp, StickyWakeupKeepsStolenThreadOnItsNewCore) {
  sim::Engine engine;
  Scheduler sched(engine, smp_params(2, StealPolicy::seeded, ProgressModel::on_demand));
  Thread* mover = nullptr;
  mover = sched.spawn([&] {
    sched.block();  // woken at 0.5 ms while core 0 is charging: stolen
    EXPECT_EQ(sched.current()->core(), 1);
    sched.block();  // woken again when every core is free: sticky to core 1
    EXPECT_EQ(sched.current()->core(), 1);
  }, {.name = "mover"});
  sched.spawn([&] { sched.charge(1_ms); }, {.name = "hog", .affinity = 0});
  sched.spawn([&] {
    sched.sleep_for(500_us);
    sched.unblock(mover);
    sched.sleep_for(1500_us);
    sched.unblock(mover);
  }, {.name = "waker", .cls = ThreadClass::system, .affinity = 1});
  engine.run();
  EXPECT_EQ(mover->core(), 1);
  EXPECT_GE(sched.stats().steals, 1u);
  EXPECT_TRUE(mover->finished());
}

TEST(Smp, RegisterMetricsExposesPerCoreCountersOnlyWhenMultiCore) {
  sim::Engine engine;
  Scheduler one(engine, smp_params(1));
  Scheduler four(engine, smp_params(4, StealPolicy::seeded, ProgressModel::on_demand));
  obs::MetricsRegistry reg1, reg4;
  one.register_metrics(reg1, "p0/mts");
  four.register_metrics(reg4, "p0/mts");
  obs::JsonWriter w1, w4;
  w1.begin_object();
  reg1.write_json(w1);
  w1.end_object();
  w4.begin_object();
  reg4.write_json(w4);
  w4.end_object();
  const std::string s1 = std::move(w1).str();
  const std::string s4 = std::move(w4).str();
  EXPECT_EQ(s1.find("core0"), std::string::npos);
  EXPECT_EQ(s1.find("steals"), std::string::npos);
  EXPECT_NE(s4.find("p0/mts/core0/dispatches"), std::string::npos);
  EXPECT_NE(s4.find("p0/mts/core3/steals_in"), std::string::npos);
  EXPECT_NE(s4.find("p0/mts/steals"), std::string::npos);
}

}  // namespace
}  // namespace ncs::mts
