// rma::Window registration/bounds arithmetic, DmaDescriptor translation,
// and CompletionQueue ordering/blocking semantics.
#include "rma/window.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "atm/network.hpp"
#include "core/mts/scheduler.hpp"
#include "rma/cq.hpp"
#include "sim/engine.hpp"

namespace ncs::rma {
namespace {

TEST(Window, OwnedStorageIsZeroInitializedAndBounded) {
  Window w(3, 256);
  EXPECT_EQ(w.id(), 3);
  EXPECT_EQ(w.size(), 256u);
  for (std::byte b : w.span()) EXPECT_EQ(b, std::byte{0});

  EXPECT_TRUE(w.in_range(0, 256));
  EXPECT_TRUE(w.in_range(255, 1));
  EXPECT_TRUE(w.in_range(256, 0));  // empty access at the end is legal
  EXPECT_FALSE(w.in_range(255, 2));
  EXPECT_FALSE(w.in_range(257, 0));
  // Offset+len overflow must not wrap into range.
  EXPECT_FALSE(w.in_range(~std::uint64_t{0}, 2));
}

TEST(Window, RegisteredUserMemoryIsSharedNotCopied) {
  std::vector<std::byte> mem(64, std::byte{0xAB});
  Window w(0, std::span<std::byte>(mem));
  EXPECT_EQ(w.size(), 64u);
  w.store_u64(8, 0x1122334455667788ull);
  EXPECT_EQ(w.load_u64(8), 0x1122334455667788ull);
  // The store landed in the caller's buffer, not a copy.
  bool changed = false;
  for (std::size_t i = 8; i < 16; ++i) changed |= mem[i] != std::byte{0xAB};
  EXPECT_TRUE(changed);
}

TEST(DmaDescriptor, TranslationUsesTheRmaPlaneVc) {
  // descriptor_for is pure arithmetic on the VC numbering; check the label
  // math directly (the Engine method is a one-liner over it).
  const atm::VcId vc = atm::rma_vc_to(5);
  EXPECT_EQ(vc.vpi, 0);
  EXPECT_EQ(vc.vci, atm::kRmaVciBase + 5);
  EXPECT_EQ(atm::rma_src_of(vc), 5);
  // The RMA plane must stay clear of the data mesh and the signaling
  // channel's dynamic labels.
  EXPECT_GT(atm::kRmaVciBase, 1024 + 16384);
}

TEST(CompletionQueue, PollIsFifoAcrossPushes) {
  sim::Engine engine;
  mts::Scheduler sched(engine, {});
  CompletionQueue cq(sched);
  for (std::uint32_t i = 1; i <= 3; ++i) {
    Completion c;
    c.op_id = i;
    cq.push(c);
  }
  EXPECT_EQ(cq.depth(), 3u);
  for (std::uint32_t i = 1; i <= 3; ++i) EXPECT_EQ(cq.poll()->op_id, i);
  EXPECT_FALSE(cq.poll().has_value());
  EXPECT_EQ(cq.pushed(), 3u);
}

TEST(CompletionQueue, WaitBlocksUntilPush) {
  sim::Engine engine;
  mts::Scheduler sched(engine, {});
  CompletionQueue cq(sched);
  std::vector<std::uint32_t> got;
  sched.spawn([&] {
    got.push_back(cq.wait().op_id);
    got.push_back(cq.wait().op_id);
  });
  engine.schedule_after(Duration::milliseconds(1), [&] {
    Completion c;
    c.op_id = 7;
    cq.push(c);
    c.op_id = 8;
    cq.push(c);
  });
  engine.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 7u);
  EXPECT_EQ(got[1], 8u);
}

TEST(Completion, RaiseIfErrorThrowsTyped) {
  Completion ok;
  EXPECT_NO_THROW(ok.raise_if_error());
  Completion bad;
  bad.ok = false;
  bad.error = mps::NcsExceptionKind::message_timeout;
  bad.peer = 2;
  bad.op_id = 41;
  try {
    bad.raise_if_error();
    FAIL() << "expected NcsException";
  } catch (const mps::NcsException& e) {
    EXPECT_EQ(e.kind(), mps::NcsExceptionKind::message_timeout);
    EXPECT_EQ(e.peer(), 2);
    EXPECT_EQ(e.seq(), 41u);
  }
}

}  // namespace
}  // namespace ncs::rma
