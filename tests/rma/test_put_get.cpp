// One-sided put/get over the HSM ATM fabric: data lands with no receiver
// thread involved, multi-chunk transfers reassemble exactly, completions
// are FIFO per peer, loopback ops work, and runs are deterministic.
#include "rma/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "common/crc.hpp"
#include "core/mps/node.hpp"

namespace ncs::rma {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using namespace ncs::literals;

Bytes patterned(std::size_t n, std::uint32_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::byte>((i * 131 + salt * 29) & 0xFF);
  return b;
}

TEST(RmaPutGet, PutLandsWithoutReceiverThreads) {
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.rma_enabled = true;
  Cluster c(cfg);
  c.init_ncs_hsm();

  const Bytes data = patterned(512, 3);
  Bytes seen;
  std::uint64_t target_recvs = 0;
  c.run([&](int rank) {
    Engine& rma = c.rma(rank);
    rma.create_window(0, 4096);
    c.node(rank).barrier();  // both windows exist
    const std::uint64_t recvs_before = c.node(rank).stats().recvs;
    if (rank == 0) {
      const std::uint32_t id = rma.put(1, 0, 64, data, /*notify=*/true, 99);
      Completion done = rma.cq().wait();
      EXPECT_TRUE(done.ok);
      EXPECT_EQ(done.kind, OpKind::put);
      EXPECT_EQ(done.op_id, id);
      EXPECT_EQ(done.peer, 1);
      EXPECT_EQ(done.bytes, 512u);
      EXPECT_EQ(done.cookie, 99u);
    } else {
      // The target only waits on its CQ — no recv() anywhere.
      Completion note = rma.cq().wait();
      EXPECT_EQ(note.kind, OpKind::remote_put);
      EXPECT_EQ(note.peer, 0);
      EXPECT_EQ(note.offset, 64u);
      EXPECT_EQ(note.bytes, 512u);
      auto span = rma.window(0)->span().subspan(64, 512);
      seen.assign(span.begin(), span.end());
      target_recvs = c.node(1).stats().recvs - recvs_before;
    }
  });
  EXPECT_EQ(seen, data);
  EXPECT_EQ(target_recvs, 0u);
  EXPECT_EQ(c.rma(1).stats().rx_requests, 1u);
}

TEST(RmaPutGet, MultiChunkPutReassemblesExactly) {
  // 64 KiB spans many NIC I/O buffers; the TX pump chunks the frame and
  // the target's reassembly must splice it back byte-exact.
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.rma_enabled = true;
  Cluster c(cfg);
  c.init_ncs_hsm();

  const Bytes data = patterned(64 * 1024, 11);
  const std::uint32_t want_crc = crc32_ieee(data);
  std::uint32_t got_crc = 0;
  c.run([&](int rank) {
    Engine& rma = c.rma(rank);
    rma.create_window(0, 128 * 1024);
    c.node(rank).barrier();
    if (rank == 0) {
      rma.put(1, 0, 0, data, /*notify=*/true);
      rma.fence();
      EXPECT_TRUE(rma.cq().poll()->ok);
    } else {
      Completion note = rma.cq().wait();
      EXPECT_EQ(note.bytes, data.size());
      auto span = rma.window(0)->span().subspan(0, data.size());
      got_crc = crc32_ieee(span);
    }
  });
  EXPECT_EQ(got_crc, want_crc);
  EXPECT_GT(c.rma(0).stats().tx_chunks, 4u);
}

TEST(RmaPutGet, GetReadsRemoteMemory) {
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.rma_enabled = true;
  Cluster c(cfg);
  c.init_ncs_hsm();

  const Bytes data = patterned(2048, 5);
  Bytes fetched;
  c.run([&](int rank) {
    Engine& rma = c.rma(rank);
    Window& w = rma.create_window(0, 4096);
    if (rank == 1) std::copy(data.begin(), data.end(), w.span().begin());
    c.node(rank).barrier();
    if (rank == 0) {
      rma.get(1, 0, 0, /*lwindow=*/0, /*loffset=*/1024, 2048);
      Completion done = rma.cq().wait();
      EXPECT_TRUE(done.ok);
      EXPECT_EQ(done.kind, OpKind::get);
      auto span = w.span().subspan(1024, 2048);
      fetched.assign(span.begin(), span.end());
    }
    c.node(rank).barrier();  // target stays alive until the get lands
  });
  EXPECT_EQ(fetched, data);
  EXPECT_EQ(c.rma(0).stats().bytes_got, 2048u);
}

TEST(RmaPutGet, CompletionsArePostOrderPerPeer) {
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.rma_enabled = true;
  cfg.rma.op_credits = 2;  // force deferrals past the credit window
  Cluster c(cfg);
  c.init_ncs_hsm();

  constexpr int kOps = 8;
  std::vector<std::uint32_t> order;
  c.run([&](int rank) {
    Engine& rma = c.rma(rank);
    rma.create_window(0, 4096);
    c.node(rank).barrier();
    if (rank == 0) {
      std::vector<std::uint32_t> ids;
      for (int i = 0; i < kOps; ++i)
        ids.push_back(rma.put(1, 0, static_cast<std::uint64_t>(i) * 64,
                              patterned(64, static_cast<std::uint32_t>(i))));
      rma.fence();
      while (auto done = rma.cq().poll()) order.push_back(done->op_id);
      EXPECT_EQ(order, ids);
    }
    c.node(rank).barrier();
  });
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kOps));
  EXPECT_GT(c.rma(0).stats().deferred, 0u);
}

TEST(RmaPutGet, LoopbackOpsCompleteLocally) {
  ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.rma_enabled = true;
  Cluster c(cfg);
  c.init_ncs_hsm();

  c.run([&](int rank) {
    Engine& rma = c.rma(rank);
    Window& w = rma.create_window(0, 1024);
    if (rank == 0) {
      const Bytes data = patterned(256, 1);
      rma.put(0, 0, 0, data, /*notify=*/true);
      // Notify lands on our own CQ alongside the op completion.
      Completion first = rma.cq().wait();
      Completion second = rma.cq().wait();
      EXPECT_EQ(first.kind, OpKind::remote_put);
      EXPECT_EQ(second.kind, OpKind::put);
      auto span = w.span().subspan(0, 256);
      EXPECT_EQ(Bytes(span.begin(), span.end()), data);

      rma.fetch_add(0, 0, 512, 41);
      EXPECT_EQ(rma.cq().wait().value, 0u);
      EXPECT_EQ(w.load_u64(512), 41u);
    }
  });
}

TEST(RmaPutGet, DeterministicCompletionStream) {
  auto digest = [] {
    ClusterConfig cfg = cluster::sun_atm_lan(4);
    cfg.rma_enabled = true;
    Cluster c(cfg);
    c.init_ncs_hsm();
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    c.run([&](int rank) {
      Engine& rma = c.rma(rank);
      rma.create_window(0, 8192);
      c.node(rank).barrier();
      for (int i = 0; i < 6; ++i) {
        const int peer = (rank + 1 + i) % c.n_procs();
        rma.put(peer, 0, static_cast<std::uint64_t>(rank) * 128,
                patterned(128, static_cast<std::uint32_t>(rank * 17 + i)));
      }
      rma.fence();
      c.node(rank).barrier();
      if (rank == 0) {
        for (int r = 0; r < c.n_procs(); ++r) {
          while (auto done = c.rma(r).cq().poll()) {
            mix(done->op_id);
            mix(static_cast<std::uint64_t>(done->peer));
            mix(static_cast<std::uint64_t>(done->at.ps()));
          }
        }
      }
    });
    mix(static_cast<std::uint64_t>((c.engine().now() - TimePoint::origin()).ps()));
    return h;
  };
  const std::uint64_t a = digest();
  const std::uint64_t b = digest();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ncs::rma
