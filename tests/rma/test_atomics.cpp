// Remote atomics under contention: N hosts hammering one counter must
// yield exactly N*iters with every intermediate value observed once, a
// compare_swap spinlock must mutually exclude, and uniform link loss must
// change nothing but the retransmit count — bit-identically across runs.
#include "rma/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "core/mps/node.hpp"
#include "net/link.hpp"

namespace ncs::rma {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using namespace ncs::literals;

TEST(RmaAtomics, ContendedFetchAddIsExactAndGapless) {
  constexpr int kProcs = 4;
  constexpr int kIters = 32;
  ClusterConfig cfg = cluster::sun_atm_lan(kProcs);
  cfg.rma_enabled = true;
  Cluster c(cfg);
  c.init_ncs_hsm();

  std::vector<std::vector<std::uint64_t>> pre(kProcs);
  std::uint64_t final_value = 0;
  c.run([&](int rank) {
    Engine& rma = c.rma(rank);
    rma.create_window(0, 64);
    c.node(rank).barrier();
    for (int i = 0; i < kIters; ++i) rma.fetch_add(0, 0, 0, 1);
    rma.fence();
    while (auto done = rma.cq().poll()) {
      ASSERT_TRUE(done->ok);
      if (done->kind == OpKind::fetch_add)
        pre[static_cast<std::size_t>(rank)].push_back(done->value);
    }
    c.node(rank).barrier();
    if (rank == 0) final_value = rma.window(0)->load_u64(0);
  });

  EXPECT_EQ(final_value, static_cast<std::uint64_t>(kProcs) * kIters);
  // Atomicity leaves no gaps and no duplicates: the union of pre-update
  // values across all ranks is exactly {0, ..., N*iters-1}.
  std::vector<std::uint64_t> all;
  for (const auto& v : pre) {
    EXPECT_EQ(v.size(), static_cast<std::size_t>(kIters));
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(RmaAtomics, CompareSwapSpinlockMutuallyExcludes) {
  // A classic test-and-set lock at offset 0 guards a *non-atomic*
  // read-modify-write (get, add, put) of the counter at offset 8. Without
  // mutual exclusion increments would be lost.
  constexpr int kProcs = 3;
  constexpr int kIters = 6;
  ClusterConfig cfg = cluster::sun_atm_lan(kProcs);
  cfg.rma_enabled = true;
  Cluster c(cfg);
  c.init_ncs_hsm();

  std::uint64_t final_value = 0;
  c.run([&](int rank) {
    Engine& rma = c.rma(rank);
    Window& scratch = rma.create_window(0, 64);
    c.node(rank).barrier();
    const std::uint64_t me = static_cast<std::uint64_t>(rank) + 1;
    for (int i = 0; i < kIters; ++i) {
      for (;;) {  // acquire: 0 -> me
        rma.compare_swap(0, 0, 0, 0, me);
        if (rma.cq().wait().value == 0) break;
      }
      rma.get(0, 0, 8, /*lwindow=*/0, /*loffset=*/16, 8);
      rma.cq().wait();
      scratch.store_u64(16, scratch.load_u64(16) + 1);
      rma.put(0, 0, 8, BytesView(scratch.span().subspan(16, 8)));
      rma.cq().wait();
      rma.compare_swap(0, 0, 0, me, 0);  // release: me -> 0
      EXPECT_EQ(rma.cq().wait().value, me);
    }
    c.node(rank).barrier();
    if (rank == 0) final_value = rma.window(0)->load_u64(8);
  });
  EXPECT_EQ(final_value, static_cast<std::uint64_t>(kProcs) * kIters);
}

std::uint64_t lossy_counter_digest(std::uint64_t* retransmits) {
  constexpr int kProcs = 4;
  constexpr int kIters = 24;
  ClusterConfig cfg = cluster::sun_atm_lan(kProcs);
  cfg.rma_enabled = true;
  // The data plane (barriers) must also survive the loss.
  cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 100_ms};
  Cluster c(cfg);
  c.init_ncs_hsm();

  std::uint64_t seed = 0x5EED;
  c.atm_fabric()->for_each_link([&seed](net::Link& link) {
    link.fault().configure_uniform(0.05, seed++);
  });

  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over completion stream
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  std::uint64_t final_value = 0;
  c.run([&](int rank) {
    Engine& rma = c.rma(rank);
    rma.create_window(0, 64);
    c.node(rank).barrier();
    for (int i = 0; i < kIters; ++i) rma.fetch_add(0, 0, 0, 1);
    rma.fence();
    c.node(rank).barrier();
    if (rank == 0) final_value = rma.window(0)->load_u64(0);
  });
  for (int r = 0; r < kProcs; ++r) {
    while (auto done = c.rma(r).cq().poll()) {
      EXPECT_TRUE(done->ok);
      mix(done->op_id);
      mix(done->value);
      mix(static_cast<std::uint64_t>(done->at.ps()));
    }
    *retransmits += c.rma(r).stats().retransmits;
    mix(c.rma(r).stats().rx_replays);
  }
  EXPECT_EQ(final_value, static_cast<std::uint64_t>(kProcs) * kIters);
  mix(final_value);
  mix(static_cast<std::uint64_t>((c.engine().now() - TimePoint::origin()).ps()));
  return h;
}

TEST(RmaAtomics, SequentialAtomicsUnderLossNeverReExecute) {
  // One op outstanding at a time: the op's frame is built with an empty
  // pipe, so its sync watermark is clamped to its own id. Before that
  // clamp, a retransmission (original response lost) pruned the target's
  // own idempotency entry and the atomic ran twice.
  constexpr int kProcs = 3;
  constexpr int kIters = 20;
  ClusterConfig cfg = cluster::sun_atm_lan(kProcs);
  cfg.rma_enabled = true;
  cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 100_ms};
  Cluster c(cfg);
  c.init_ncs_hsm();

  std::uint64_t seed = 7;
  c.atm_fabric()->for_each_link([&seed](net::Link& link) {
    link.fault().configure_uniform(0.12, seed++);
  });

  std::uint64_t final_value = 0;
  c.run([&](int rank) {
    Engine& rma = c.rma(rank);
    rma.create_window(0, 64);
    c.node(rank).barrier();
    for (int i = 0; i < kIters; ++i) {
      rma.fetch_add(0, 0, 0, 1);
      ASSERT_TRUE(rma.cq().wait().ok);  // drain before the next post
    }
    c.node(rank).barrier();
    if (rank == 0) final_value = rma.window(0)->load_u64(0);
  });
  EXPECT_EQ(final_value, static_cast<std::uint64_t>(kProcs) * kIters);
  std::uint64_t retx = 0;
  for (int r = 0; r < kProcs; ++r) retx += c.rma(r).stats().retransmits;
  EXPECT_GT(retx, 0u);
}

TEST(RmaAtomics, ParkedDuplicateSurvivesSuccessorWatermark) {
  // A response that barely loses the race with the initiator's timer makes
  // a spurious retransmission: the duplicate lands at the target just
  // before the *next* op's frame, whose sync watermark already covers the
  // duplicate's id (the original completed at the initiator in between).
  // The duplicate parks in rx_exec_ for target_exec; the successor frame's
  // arrival in that window must not prune the cache entry that makes the
  // duplicate a replay, or the fetch_add double-applies. A slow-firmware
  // target (large target_exec, the park window) plus a timeout sweep
  // through the response RTT guarantees some runs land the successor frame
  // inside the duplicate's park window.
  constexpr int kIters = 8;
  for (double us = 40.0; us <= 220.0; us += 1.0) {
    ClusterConfig cfg = cluster::sun_atm_lan(2);
    cfg.rma_enabled = true;
    cfg.rma.response_timeout = Duration::microseconds(us);
    cfg.rma.retry_limit = 64;  // aggressive timers must never exhaust
    cfg.rma.target_exec = Duration::microseconds(25);
    Cluster c(cfg);
    c.init_ncs_hsm();
    std::uint64_t final_value = 0;
    std::uint64_t retx = 0;
    c.run([&](int rank) {
      Engine& rma = c.rma(rank);
      rma.create_window(0, 64);
      c.node(rank).barrier();
      if (rank == 0) {
        for (int i = 0; i < kIters; ++i) {
          rma.fetch_add(1, 0, 0, 1);
          ASSERT_TRUE(rma.cq().wait().ok);  // complete before the next post
        }
      }
      c.node(rank).barrier();
      if (rank == 1) final_value = rma.window(0)->load_u64(0);
    });
    EXPECT_EQ(final_value, kIters) << "response_timeout = " << us << " us";
    retx = c.rma(0).stats().retransmits;
    if (retx == 0) break;  // timer now loses every race; sweep is done
  }
}

TEST(RmaAtomics, ExactUnderLinkLossAndDeterministic) {
  // 5% uniform frame loss on every link: the idempotent-retransmission
  // protocol must still deliver the exact sum (cached atomic replies are
  // replayed, never re-executed), must actually retransmit, and two
  // identical runs must produce bit-identical completion streams.
  std::uint64_t retx_a = 0;
  std::uint64_t retx_b = 0;
  const std::uint64_t a = lossy_counter_digest(&retx_a);
  const std::uint64_t b = lossy_counter_digest(&retx_b);
  EXPECT_GT(retx_a, 0u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(retx_a, retx_b);
}

}  // namespace
}  // namespace ncs::rma
