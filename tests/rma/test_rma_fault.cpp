// Fault coverage for the one-sided plane: when the WAN backbone goes down
// mid-stream, pending RMA ops must complete *with error* on the CQ (typed
// message_timeout), their credits must be released so the endpoint is
// usable after the heal, the node's exception handler must hear about
// every failure, and the whole recovery must be bit-identical across runs.
#include "rma/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "core/mps/node.hpp"

namespace ncs::rma {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using namespace ncs::literals;

struct OutageResult {
  std::uint64_t digest = 0;
  std::uint64_t error_completions = 0;
  std::uint64_t handler_errors = 0;  // seen by the node exception handler
  std::uint64_t exceptions = 0;      // cluster-wide NcsException count
  bool healed_put_ok = false;
  bool notify_landed = false;
};

OutageResult run_outage_scenario() {
  ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.rma_enabled = true;
  // Fail fast: 2 retries x 20ms response timeout, well inside the outage.
  cfg.rma.response_timeout = 20_ms;
  cfg.rma.retry_limit = 2;
  cfg.rma.op_credits = 2;  // the failing ops must cycle through deferral
  // Barriers cross the same backbone; they ride out the outage on the
  // data plane's own retransmission.
  cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 100_ms};
  cfg.faults.link_down("sonet", TimePoint::origin() + 20_ms, 300_ms);
  Cluster c(cfg);
  c.init_ncs_hsm();

  OutageResult r;
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  c.run([&](int rank) {
    c.node(rank).set_exception_handler([&r](mps::NcsExceptionKind kind, int, std::uint32_t) {
      if (kind == mps::NcsExceptionKind::message_timeout) ++r.handler_errors;
    });
    Engine& rma = c.rma(rank);
    rma.create_window(0, 4096);
    c.node(rank).barrier();
    c.host(rank).sleep_until(TimePoint::origin() + 30_ms);  // mid-outage
    if (rank == 0) {
      const Bytes data(64, std::byte{0x5A});
      for (int i = 0; i < 4; ++i)
        rma.put(1, 0, static_cast<std::uint64_t>(i) * 64, data);
      rma.fetch_add(1, 0, 1024, 7);
      rma.fence();  // every op resolves — with error — even on a dead circuit
      while (auto done = rma.cq().poll()) {
        EXPECT_FALSE(done->ok);
        ++r.error_completions;
        try {
          done->raise_if_error();
        } catch (const mps::NcsException& e) {
          EXPECT_EQ(e.kind(), mps::NcsExceptionKind::message_timeout);
          EXPECT_EQ(e.peer(), 1);
        }
        mix(done->op_id);
        mix(static_cast<std::uint64_t>(done->at.ps()));
      }
      // Credits were released with the failures: after the heal, a full
      // credit window of fresh ops must sail through.
      c.host(rank).sleep_until(TimePoint::origin() + 400_ms);
      rma.put(1, 0, 0, data, /*notify=*/true);
      rma.put(1, 0, 64, data);
      rma.fence();
      bool all_ok = true;
      int completed = 0;
      while (auto done = rma.cq().poll()) {
        all_ok &= done->ok;
        ++completed;
        mix(done->op_id);
        mix(static_cast<std::uint64_t>(done->at.ps()));
      }
      r.healed_put_ok = all_ok && completed == 2;
    } else {
      // The target's CQ hears exactly one notify — the post-heal one.
      Completion note = rma.cq().wait();
      r.notify_landed = note.kind == OpKind::remote_put && note.offset == 0;
    }
    c.node(rank).barrier();
  });
  r.exceptions = c.ncs_exception_count();
  mix(r.error_completions);
  mix(c.rma(0).stats().retransmits);
  mix(static_cast<std::uint64_t>((c.engine().now() - TimePoint::origin()).ps()));
  r.digest = h;
  return r;
}

TEST(RmaFault, BackboneOutageFailsPendingOpsThenHeals) {
  const OutageResult r = run_outage_scenario();
  EXPECT_EQ(r.error_completions, 5u);
  EXPECT_EQ(r.handler_errors, 5u);
  EXPECT_GE(r.exceptions, 5u);
  EXPECT_TRUE(r.healed_put_ok);
  EXPECT_TRUE(r.notify_landed);
}

TEST(RmaFault, RecoveryIsBitIdenticalAcrossRepeats) {
  const OutageResult a = run_outage_scenario();
  const OutageResult b = run_outage_scenario();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.error_completions, b.error_completions);
}

}  // namespace
}  // namespace ncs::rma
