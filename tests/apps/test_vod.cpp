#include "apps/vod.hpp"

#include <gtest/gtest.h>

namespace ncs::apps::vod {
namespace {

using namespace ncs::literals;

TEST(FrameSource, ProducesTheConfiguredClip) {
  FrameSource src({.width = 64, .height = 48, .frame_count = 5});
  int frames = 0;
  for (;;) {
    const Bytes f = src.next_frame();
    if (f.empty()) break;
    ++frames;
    EXPECT_GT(f.size(), 0u);
  }
  EXPECT_EQ(frames, 5);
  EXPECT_EQ(src.remaining(), 0);
}

TEST(FrameSource, FramesDecodeToTheirReference) {
  FrameSource src({.width = 64, .height = 48, .frame_count = 3, .quality = 90});
  for (int i = 0; i < 3; ++i) {
    const Bytes f = src.next_frame();
    const Image decoded = FrameSource::decode_frame(f);
    EXPECT_GT(psnr(src.reference_frame(i), decoded), 35.0) << "frame " << i;
  }
}

TEST(FrameSource, ConsecutiveFramesDiffer) {
  FrameSource src({.width = 64, .height = 48, .frame_count = 2});
  const Bytes a = src.next_frame();
  const Bytes b = src.next_frame();
  EXPECT_NE(a, b);
}

TEST(FrameSource, CompressionActuallyCompresses) {
  FrameSource src({.width = 320, .height = 240, .frame_count = 1, .quality = 60});
  const Bytes f = src.next_frame();
  EXPECT_LT(f.size(), 320u * 240u / 2);
}

TEST(JitterBuffer, PerfectCadenceHasNoUnderruns) {
  JitterBuffer jb(24, 50_ms);
  const Duration tick = Duration::seconds(1.0 / 24);
  TimePoint t;
  for (int i = 0; i < 24; ++i) {
    jb.on_arrival(t, 1000);
    t += tick;
  }
  const auto r = jb.report();
  EXPECT_EQ(r.frames, 24);
  EXPECT_EQ(r.underruns, 0);
  EXPECT_LE(r.max_depth, 3);
  EXPECT_EQ(r.bytes, 24u * 1000u);
}

TEST(JitterBuffer, BurstArrivalBuffersDeep) {
  JitterBuffer jb(24, 50_ms);
  TimePoint t;
  for (int i = 0; i < 24; ++i) {
    jb.on_arrival(t, 1000);
    t += 1_ms;  // the whole clip lands in 24 ms
  }
  const auto r = jb.report();
  EXPECT_EQ(r.underruns, 0);       // early is fine for correctness...
  EXPECT_GE(r.max_depth, 20);      // ...but the client buffers everything
}

TEST(JitterBuffer, StallMidStreamCausesUnderruns) {
  JitterBuffer jb(24, 50_ms);
  const Duration tick = Duration::seconds(1.0 / 24);
  TimePoint t;
  for (int i = 0; i < 10; ++i) {
    jb.on_arrival(t, 1000);
    t += tick;
  }
  t += 500_ms;  // network stall
  for (int i = 10; i < 20; ++i) {
    jb.on_arrival(t, 1000);
    t += tick;
  }
  const auto r = jb.report();
  EXPECT_GT(r.underruns, 0);
  EXPECT_GE(r.worst_lateness.ms(), 400.0);
}

TEST(JitterBuffer, PrebufferAbsorbsModerateJitter) {
  const Duration tick = Duration::seconds(1.0 / 24);
  // Odd frames arrive 30 ms late (still in order: 30 ms < one tick).
  const auto run = [&](Duration prebuffer) {
    JitterBuffer jb(24, prebuffer);
    TimePoint t;
    for (int i = 0; i < 24; ++i) {
      const Duration skew = (i % 2 == 0) ? Duration::zero() : 30_ms;
      jb.on_arrival(t + skew, 1000);
      t += tick;
    }
    return jb.report().underruns;
  };
  EXPECT_GT(run(10_ms), 0);
  EXPECT_EQ(run(100_ms), 0);
}

}  // namespace
}  // namespace ncs::apps::vod
