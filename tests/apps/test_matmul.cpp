#include "apps/matmul.hpp"

#include <gtest/gtest.h>

namespace ncs::apps::matmul {
namespace {

TEST(Matmul, IdentityTimesAnything) {
  const int n = 16;
  Matrix identity(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) identity[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(i)] = 1.0;
  const Matrix a = make_matrix(n, 42);
  EXPECT_TRUE(approx_equal(multiply(identity, a, n), a));
  EXPECT_TRUE(approx_equal(multiply(a, identity, n), a));
}

TEST(Matmul, KnownSmallProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const Matrix a{1, 2, 3, 4};
  const Matrix b{5, 6, 7, 8};
  const Matrix c = multiply(a, b, 2);
  EXPECT_DOUBLE_EQ(c[0], 19);
  EXPECT_DOUBLE_EQ(c[1], 22);
  EXPECT_DOUBLE_EQ(c[2], 43);
  EXPECT_DOUBLE_EQ(c[3], 50);
}

TEST(Matmul, RowBlocksComposeToFullProduct) {
  const int n = 32;
  const Matrix a = make_matrix(n, 1);
  const Matrix b = make_matrix(n, 2);
  const Matrix full = multiply(a, b, n);

  Matrix assembled(static_cast<std::size_t>(n) * n, 0.0);
  for (int begin = 0; begin < n; begin += 8)
    multiply_rows(a.data(), b.data(), assembled.data() + static_cast<std::ptrdiff_t>(begin) * n,
                  n, begin, begin + 8);
  EXPECT_TRUE(approx_equal(assembled, full));
}

TEST(Matmul, MakeMatrixDeterministicPerSeed) {
  EXPECT_EQ(make_matrix(8, 5), make_matrix(8, 5));
  EXPECT_NE(make_matrix(8, 5), make_matrix(8, 6));
}

TEST(Matmul, MakeMatrixValuesBounded) {
  for (double v : make_matrix(16, 9)) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Matmul, PackUnpackRoundTrip) {
  const int n = 8;
  const Matrix a = make_matrix(n, 3);
  const Bytes wire = pack_rows(a.data() + 2 * n, 3, n);
  EXPECT_EQ(wire.size(), 3u * n * sizeof(double));
  const auto rows = unpack_rows(wire);
  for (int i = 0; i < 3 * n; ++i)
    EXPECT_DOUBLE_EQ(rows[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(2 * n + i)]);
}

TEST(Matmul, OpCount) {
  EXPECT_DOUBLE_EQ(op_count(4, 128), 4.0 * 128 * 128);
}

TEST(Matmul, ApproxEqualRespectsTolerance) {
  Matrix a{1.0, 2.0};
  Matrix b{1.0 + 1e-12, 2.0};
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
  b[0] = 1.001;
  EXPECT_FALSE(approx_equal(a, b, 1e-9));
  EXPECT_FALSE(approx_equal(a, Matrix{1.0}, 1e-9));
}

class MatmulSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatmulSizeSweep, BlockDecompositionMatchesForAnyDivision) {
  const int n = 64;
  const int blocks = GetParam();
  const Matrix a = make_matrix(n, 11);
  const Matrix b = make_matrix(n, 12);
  const Matrix full = multiply(a, b, n);
  Matrix assembled(static_cast<std::size_t>(n) * n, 0.0);
  const int rows = n / blocks;
  for (int k = 0; k < blocks; ++k)
    multiply_rows(a.data(), b.data(), assembled.data() + static_cast<std::ptrdiff_t>(k) * rows * n,
                  n, k * rows, (k + 1) * rows);
  EXPECT_TRUE(approx_equal(assembled, full));
}

INSTANTIATE_TEST_SUITE_P(Divisions, MatmulSizeSweep, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace ncs::apps::matmul
