#include "apps/fft.hpp"

#include <gtest/gtest.h>

namespace ncs::apps::fft {
namespace {

TEST(Fft, MatchesReferenceDft) {
  for (std::size_t m : {2u, 8u, 64u, 512u}) {
    const auto samples = make_samples(m, 1);
    const auto fast = fft(samples);
    const auto slow = dft_reference(samples);
    EXPECT_TRUE(approx_equal(fast, slow, 1e-6 * static_cast<double>(m))) << "M=" << m;
  }
}

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<Complex> x(16, Complex(0, 0));
  x[0] = Complex(1, 0);
  for (const Complex& v : fft(x)) EXPECT_NEAR(std::abs(v - Complex(1, 0)), 0.0, 1e-12);
}

TEST(Fft, PureToneHitsOneBin) {
  const std::size_t m = 64;
  std::vector<Complex> x(m);
  // x_k = e^{+j 2 pi 5 k / M} = W^{-5k}: X(i) peaks at bin 5 under the
  // e^{-j} transform convention.
  for (std::size_t k = 0; k < m; ++k) x[k] = std::conj(twiddle(5 * k % m, m));
  const auto out = fft(x);
  for (std::size_t i = 0; i < m; ++i) {
    if (i == 5) {
      EXPECT_NEAR(std::abs(out[i]), static_cast<double>(m), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(out[i]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  const std::size_t m = 256;
  const auto x = make_samples(m, 3);
  const auto y = fft(x);
  double ex = 0, ey = 0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, ex * static_cast<double>(m), 1e-6 * ex * static_cast<double>(m));
}

TEST(Fft, BitReverse) {
  EXPECT_EQ(bit_reverse(0b000, 3), 0b000u);
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b011, 3), 0b110u);
  EXPECT_EQ(bit_reverse(0b101, 3), 0b101u);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(bit_reverse(bit_reverse(i, 5), 5), i);
}

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(512));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
  EXPECT_EQ(log2_exact(512), 9);
}

TEST(Fft, PackUnpackRoundTrip) {
  const auto x = make_samples(32, 4);
  EXPECT_EQ(unpack(pack(x)), x);
}

/// The distributed decomposition (paper Fig 21) run in-process: threads'
/// exchanges performed by direct buffer swaps. Sweeps thread counts.
class FftDistributed : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftDistributed, DecompositionMatchesWholeArrayFft) {
  const std::size_t m = 512;
  const std::size_t n_threads = GetParam();
  const std::size_t r = m / (2 * n_threads);
  const auto samples = make_samples(m, 7);

  // Per-thread A/B rows.
  std::vector<std::vector<Complex>> a(n_threads), b(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    a[t].assign(samples.begin() + static_cast<std::ptrdiff_t>(t * r),
                samples.begin() + static_cast<std::ptrdiff_t>((t + 1) * r));
    b[t].assign(samples.begin() + static_cast<std::ptrdiff_t>(t * r + m / 2),
                samples.begin() + static_cast<std::ptrdiff_t>((t + 1) * r + m / 2));
  }

  const int steps = log2_exact(n_threads);
  for (int step = 0; step < steps; ++step) {
    std::vector<std::vector<Complex>> x(n_threads, std::vector<Complex>(r));
    std::vector<std::vector<Complex>> y(n_threads, std::vector<Complex>(r));
    for (std::size_t t = 0; t < n_threads; ++t)
      global_stage(a[t], b[t], x[t], y[t], static_cast<int>(t), step, m, n_threads);
    const int d = static_cast<int>(n_threads) >> (step + 1);
    for (std::size_t t = 0; t < n_threads; ++t) {
      if (keeps_sum_half(static_cast<int>(t), d)) {
        const std::size_t partner = t + static_cast<std::size_t>(d);
        a[t] = x[t];
        b[t] = x[partner];
      } else {
        const std::size_t partner = t - static_cast<std::size_t>(d);
        a[t] = y[partner];
        b[t] = y[t];
      }
    }
  }

  std::vector<Complex> concatenated;
  for (std::size_t t = 0; t < n_threads; ++t) {
    std::vector<Complex> local(2 * r);
    std::copy(a[t].begin(), a[t].end(), local.begin());
    std::copy(b[t].begin(), b[t].end(), local.begin() + static_cast<std::ptrdiff_t>(r));
    local_phase(local, m);
    concatenated.insert(concatenated.end(), local.begin(), local.end());
  }

  const auto assembled = assemble(concatenated);
  const auto expected = fft(samples);
  EXPECT_TRUE(approx_equal(assembled, expected, 1e-6 * static_cast<double>(m)));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, FftDistributed, ::testing::Values(1, 2, 4, 8, 16));

TEST(Fft, KeepsSumHalfPattern) {
  // d=1: even threads keep sums; d=2: threads 0,1 vs 2,3.
  EXPECT_TRUE(keeps_sum_half(0, 1));
  EXPECT_FALSE(keeps_sum_half(1, 1));
  EXPECT_TRUE(keeps_sum_half(0, 2));
  EXPECT_TRUE(keeps_sum_half(1, 2));
  EXPECT_FALSE(keeps_sum_half(2, 2));
  EXPECT_FALSE(keeps_sum_half(3, 2));
}

}  // namespace
}  // namespace ncs::apps::fft
