#include "apps/jpeg/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ncs::apps::jpeg {
namespace {

std::vector<std::uint64_t> freq_of(const std::vector<int>& symbols, int alphabet) {
  std::vector<std::uint64_t> f(static_cast<std::size_t>(alphabet), 0);
  for (int s : symbols) ++f[static_cast<std::size_t>(s)];
  return f;
}

std::vector<int> roundtrip(const HuffmanTable& table, const std::vector<int>& symbols) {
  BitWriter w;
  for (int s : symbols) table.encode(w, s);
  const Bytes stream = w.finish();
  BitReader r(stream);
  std::vector<int> out;
  out.reserve(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) out.push_back(table.decode(r));
  return out;
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  std::vector<int> symbols;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) symbols.push_back(static_cast<int>(rng.next_below(20)));
  const auto table = HuffmanTable::build(freq_of(symbols, 20));
  EXPECT_EQ(roundtrip(table, symbols), symbols);
}

TEST(Huffman, SkewedDistributionCompresses) {
  // 90% zeros: entropy coding must beat fixed-width.
  std::vector<int> symbols;
  Rng rng(2);
  for (int i = 0; i < 10'000; ++i)
    symbols.push_back(rng.next_below(10) == 0 ? static_cast<int>(1 + rng.next_below(15)) : 0);
  const auto table = HuffmanTable::build(freq_of(symbols, 16));

  BitWriter w;
  for (int s : symbols) table.encode(w, s);
  const Bytes stream = w.finish();
  EXPECT_LT(stream.size() * 8, symbols.size() * 4);  // < 4 bits/symbol avg
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> f{1000, 100, 10, 1};
  const auto table = HuffmanTable::build(f);
  const auto& lengths = table.lengths();
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> f{0, 42, 0};
  const auto table = HuffmanTable::build(f);
  const std::vector<int> symbols(7, 1);
  EXPECT_EQ(roundtrip(table, symbols), symbols);
}

TEST(Huffman, UnusedSymbolsHaveNoCode) {
  std::vector<std::uint64_t> f{5, 0, 5, 0, 5};
  const auto table = HuffmanTable::build(f);
  EXPECT_TRUE(table.has_code(0));
  EXPECT_FALSE(table.has_code(1));
  EXPECT_FALSE(table.has_code(3));
}

TEST(Huffman, LengthLimitEnforcedOnPathologicalInput) {
  // Fibonacci-like weights force maximal depth in an unconstrained tree.
  std::vector<std::uint64_t> f(40);
  std::uint64_t a = 1, b = 1;
  for (auto& w : f) {
    w = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto table = HuffmanTable::build(f);
  for (std::uint8_t len : table.lengths()) EXPECT_LE(len, kMaxCodeLength);
  // Still decodable.
  std::vector<int> symbols{0, 5, 39, 20, 1, 38};
  EXPECT_EQ(roundtrip(table, symbols), symbols);
}

TEST(Huffman, SerializationRoundTrip) {
  std::vector<std::uint64_t> f{10, 0, 7, 3, 99, 1};
  const auto table = HuffmanTable::build(f);
  Bytes out;
  table.serialize(out);
  ByteReader r(out);
  const auto restored = HuffmanTable::deserialize(r);
  EXPECT_EQ(restored.lengths(), table.lengths());

  const std::vector<int> symbols{0, 2, 3, 4, 5, 4, 4, 0};
  EXPECT_EQ(roundtrip(restored, symbols), symbols);
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(3);
  std::vector<std::uint64_t> f(100);
  for (auto& w : f) w = rng.next_below(1000);
  f[0] = 1;  // ensure at least one used
  const auto table = HuffmanTable::build(f);
  double kraft = 0;
  for (std::uint8_t len : table.lengths())
    if (len > 0) kraft += std::pow(2.0, -static_cast<double>(len));
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(BitStream, WriteReadMixedWidths) {
  BitWriter w;
  w.put(0b1, 1);
  w.put(0b1010, 4);
  w.put(0xABCDE, 20);
  w.put(0, 3);
  const Bytes stream = w.finish();
  BitReader r(stream);
  EXPECT_EQ(r.get(1), 0b1u);
  EXPECT_EQ(r.get(4), 0b1010u);
  EXPECT_EQ(r.get(20), 0xABCDEu);
  EXPECT_EQ(r.get(3), 0u);
}

TEST(BitStream, PaddingWithOnes) {
  BitWriter w;
  w.put(0, 1);  // forces 7 pad bits
  const Bytes stream = w.finish();
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0], std::byte{0x7F});
}

TEST(BitStreamDeathTest, UnderrunAborts) {
  BitReader r(BytesView{});
  EXPECT_DEATH((void)r.get(1), "underrun");
}

}  // namespace
}  // namespace ncs::apps::jpeg
