#include "apps/jpeg/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/jpeg/dct.hpp"

namespace ncs::apps::jpeg {
namespace {

// --- DCT -------------------------------------------------------------------

Block random_block(std::uint64_t seed) {
  Block b;
  std::uint64_t x = seed;
  for (auto& v : b) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<double>(x >> 40) / (1 << 16) - 128.0;
  }
  return b;
}

TEST(Dct, RoundTripIsIdentity) {
  const Block in = random_block(1);
  Block freq, back;
  forward_dct(in, freq);
  inverse_dct(freq, back);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(back[static_cast<std::size_t>(i)], in[static_cast<std::size_t>(i)], 1e-9);
}

TEST(Dct, ConstantBlockIsPureDc) {
  Block in;
  in.fill(100.0);
  Block freq;
  forward_dct(in, freq);
  EXPECT_NEAR(freq[0], 800.0, 1e-9);  // 100 * 8 under orthonormal scaling
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(freq[static_cast<std::size_t>(i)], 0.0, 1e-9);
}

TEST(Dct, EnergyPreserved) {
  const Block in = random_block(2);
  Block freq;
  forward_dct(in, freq);
  double es = 0, ef = 0;
  for (int i = 0; i < 64; ++i) {
    es += in[static_cast<std::size_t>(i)] * in[static_cast<std::size_t>(i)];
    ef += freq[static_cast<std::size_t>(i)] * freq[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(ef, es, 1e-6 * es);
}

TEST(Dct, LinearityOfTransform) {
  const Block a = random_block(3);
  const Block b = random_block(4);
  Block sum;
  for (int i = 0; i < 64; ++i) sum[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
  Block fa, fb, fsum;
  forward_dct(a, fa);
  forward_dct(b, fb);
  forward_dct(sum, fsum);
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(fsum[static_cast<std::size_t>(i)], fa[static_cast<std::size_t>(i)] + fb[static_cast<std::size_t>(i)], 1e-9);
}

// --- codec ------------------------------------------------------------------

TEST(Codec, RoundTripHighQualityIsNearLossless) {
  const Image img = make_test_image(128, 96, 5);
  const Bytes stream = compress(img, {.quality = 95});
  const Image out = decompress(stream);
  EXPECT_EQ(out.width, img.width);
  EXPECT_EQ(out.height, img.height);
  EXPECT_GT(psnr(img, out), 40.0);
}

TEST(Codec, QualityTradesSizeForFidelity) {
  const Image img = make_test_image(256, 128, 6);
  const Bytes q90 = compress(img, {.quality = 90});
  const Bytes q30 = compress(img, {.quality = 30});
  EXPECT_LT(q30.size(), q90.size());
  EXPECT_GT(psnr(img, decompress(q90)), psnr(img, decompress(q30)));
  EXPECT_GT(psnr(img, decompress(q30)), 25.0);
}

TEST(Codec, CompressesContinuousToneMaterial) {
  const Image img = make_test_image(512, 512, 7);
  const Bytes stream = compress(img);
  // Smooth synthetic content at default quality: well under half size.
  EXPECT_LT(stream.size(), img.size_bytes() / 2);
}

TEST(Codec, NonMultipleOf8DimensionsHandled) {
  for (const auto& [w, h] : {std::pair{17, 9}, {8, 8}, {1, 1}, {33, 64}, {100, 75}}) {
    const Image img = make_test_image(w, h, 8);
    const Image out = decompress(compress(img, {.quality = 90}));
    EXPECT_EQ(out.width, w);
    EXPECT_EQ(out.height, h);
    EXPECT_GT(psnr(img, out), 30.0) << w << "x" << h;
  }
}

TEST(Codec, DeterministicStream) {
  const Image img = make_test_image(64, 64, 9);
  EXPECT_EQ(compress(img), compress(img));
}

TEST(Codec, ZigzagVisitsEveryCoefficientOnce) {
  const std::uint8_t* zz = zigzag_order();
  bool seen[64] = {};
  for (int i = 0; i < 64; ++i) {
    EXPECT_LT(zz[i], 64);
    EXPECT_FALSE(seen[zz[i]]);
    seen[zz[i]] = true;
  }
  EXPECT_EQ(zz[0], 0);   // DC first
  EXPECT_EQ(zz[1], 1);   // then the first AC pair
  EXPECT_EQ(zz[2], 8);
  EXPECT_EQ(zz[63], 63);
}

TEST(Codec, QuantTableScalesWithQuality) {
  std::uint16_t q50[64], q10[64], q95[64];
  quant_table(50, q50);
  quant_table(10, q10);
  quant_table(95, q95);
  for (int i = 0; i < 64; ++i) {
    EXPECT_GE(q10[i], q50[i]);
    EXPECT_LE(q95[i], q50[i]);
    EXPECT_GE(q95[i], 1);
  }
}

TEST(CodecDeathTest, GarbageStreamRejected) {
  const Bytes junk = to_bytes("definitely not a compressed image");
  EXPECT_DEATH((void)decompress(junk), "NCJ1");
}

// --- image helpers -----------------------------------------------------------

TEST(Image, StripExtractsRows) {
  const Image img = make_test_image(32, 16, 10);
  const Image s = img.strip(4, 8);
  EXPECT_EQ(s.width, 32);
  EXPECT_EQ(s.height, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 32; ++x) EXPECT_EQ(s.at(x, y), img.at(x, y + 4));
}

TEST(Image, PackUnpackRoundTrip) {
  const Image img = make_test_image(40, 30, 11);
  const Image out = unpack_image(pack_image(img));
  EXPECT_EQ(out.width, img.width);
  EXPECT_EQ(out.height, img.height);
  EXPECT_EQ(out.pixels, img.pixels);
}

TEST(Image, PsnrProperties) {
  const Image img = make_test_image(64, 64, 12);
  EXPECT_TRUE(std::isinf(psnr(img, img)));
  Image noisy = img;
  noisy.pixels[100] = static_cast<std::uint8_t>(noisy.pixels[100] ^ 0x40);
  const double p = psnr(img, noisy);
  EXPECT_GT(p, 20.0);
  EXPECT_FALSE(std::isinf(p));
}

TEST(Image, TestImageDeterministicAndInRange) {
  const Image a = make_test_image(100, 50, 13);
  const Image b = make_test_image(100, 50, 13);
  EXPECT_EQ(a.pixels, b.pixels);
  const Image c = make_test_image(100, 50, 14);
  EXPECT_NE(a.pixels, c.pixels);
}

}  // namespace
}  // namespace ncs::apps::jpeg
