#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace ncs {
namespace {

TEST(Bytes, ToBytesFromString) {
  const Bytes b = to_bytes("abc");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], std::byte{'a'});
  EXPECT_EQ(b[2], std::byte{'c'});
}

TEST(ByteWriter, BigEndianFields) {
  Bytes buf(15);
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  EXPECT_EQ(w.written(), 15u);
  EXPECT_EQ(w.remaining(), 0u);
  EXPECT_EQ(buf[0], std::byte{0xAB});
  EXPECT_EQ(buf[1], std::byte{0x12});
  EXPECT_EQ(buf[2], std::byte{0x34});
  EXPECT_EQ(buf[3], std::byte{0xDE});
  EXPECT_EQ(buf[6], std::byte{0xEF});
  EXPECT_EQ(buf[7], std::byte{0x01});
  EXPECT_EQ(buf[14], std::byte{0x08});
}

TEST(ByteReaderWriter, RoundTrip) {
  Bytes buf(15 + 4);
  ByteWriter w(buf);
  w.u8(7);
  w.u16(513);
  w.u32(1u << 31);
  w.u64(0xFFFFFFFFFFFFFFFFull);
  w.bytes(to_bytes("abcd"));

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u16(), 513u);
  EXPECT_EQ(r.u32(), 1u << 31);
  EXPECT_EQ(r.u64(), 0xFFFFFFFFFFFFFFFFull);
  const BytesView tail = r.bytes(4);
  EXPECT_EQ(tail[0], std::byte{'a'});
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteWriter, ZerosFills) {
  Bytes buf(4, std::byte{0xFF});
  ByteWriter w(buf);
  w.zeros(4);
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST(ByteReader, SkipAdvances) {
  const Bytes buf = to_bytes("abcdef");
  ByteReader r(buf);
  r.skip(4);
  EXPECT_EQ(r.u8(), static_cast<std::uint8_t>('e'));
}

TEST(ByteWriterDeathTest, OverflowAborts) {
  Bytes buf(2);
  ByteWriter w(buf);
  EXPECT_DEATH(w.u32(1), "overflow");
}

TEST(ByteReaderDeathTest, UnderflowAborts) {
  const Bytes buf = to_bytes("x");
  ByteReader r(buf);
  EXPECT_DEATH(r.u16(), "underflow");
}

TEST(Bytes, AppendConcatenates) {
  Bytes a = to_bytes("ab");
  append(a, to_bytes("cd"));
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a[3], std::byte{'d'});
}

}  // namespace
}  // namespace ncs
