#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ncs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (a.next_u64() != b.next_u64()) ++differing;
  EXPECT_GE(differing, 30);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyRoughlyMatchesP) {
  Rng r(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.next_bool(0.25)) ++hits;
  const double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.25, 0.02);
}

TEST(Rng, ZeroProbabilityNeverHits) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(r.next_bool(0.0));
}

}  // namespace
}  // namespace ncs
