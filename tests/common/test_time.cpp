#include "common/time.hpp"

#include <gtest/gtest.h>

namespace ncs {
namespace {

using namespace ncs::literals;

TEST(Duration, UnitConversions) {
  EXPECT_EQ(Duration::seconds(1).ps(), 1'000'000'000'000);
  EXPECT_EQ(Duration::milliseconds(1).ps(), 1'000'000'000);
  EXPECT_EQ(Duration::microseconds(1).ps(), 1'000'000);
  EXPECT_EQ(Duration::nanoseconds(1).ps(), 1'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(2.5).sec(), 2.5);
}

TEST(Duration, Literals) {
  EXPECT_EQ((5_us).ps(), 5'000'000);
  EXPECT_EQ((3_ms).ps(), 3'000'000'000);
  EXPECT_EQ((1_sec).ps(), 1'000'000'000'000);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ((2_us + 3_us).ps(), (5_us).ps());
  EXPECT_EQ((5_us - 3_us).ps(), (2_us).ps());
  EXPECT_EQ((2_us * 3).ps(), (6_us).ps());
  EXPECT_EQ((6_us / 3).ps(), (2_us).ps());
  EXPECT_TRUE((1_us - 2_us).is_negative());
}

TEST(Duration, ForBitsRoundsUpToWholePicosecond) {
  // One bit at 1 Gbps is exactly 1000 ps.
  EXPECT_EQ(Duration::for_bits(1, 1e9).ps(), 1000);
  // 53 bytes at 140 Mbps: 424 bits / 140e6 ~ 3.0286 us.
  const Duration cell = Duration::for_bytes(53, 140e6);
  EXPECT_NEAR(cell.us(), 3.0286, 0.001);
}

TEST(Duration, Ordering) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_EQ(ncs::max(1_us, 2_us), 2_us);
  EXPECT_EQ(ncs::min(1_us, 2_us), 1_us);
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + 5_us;
  EXPECT_EQ((t1 - t0).ps(), (5_us).ps());
  EXPECT_EQ((t1 - 2_us).ps(), (3_us).ps());
  EXPECT_LT(t0, t1);
}

TEST(TimePoint, MaxPicksLater) {
  const TimePoint a = TimePoint::from_ps(100);
  const TimePoint b = TimePoint::from_ps(200);
  EXPECT_EQ(ncs::max(a, b), b);
}

TEST(Duration, ToStringPicksSensibleUnit) {
  EXPECT_EQ((2_sec).to_string(), "2.000000s");
  EXPECT_EQ((3_ms).to_string(), "3.000ms");
  EXPECT_EQ((4_us).to_string(), "4.000us");
  EXPECT_EQ((500_ns).to_string(), "500.0ns");
}

}  // namespace
}  // namespace ncs
