#include "common/intrusive_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ncs {
namespace {

struct Node {
  explicit Node(int v) : value(v) {}
  int value;
  ListHook hook;
  ListHook other_hook;
};

using List = IntrusiveList<Node, &Node::hook>;
using OtherList = IntrusiveList<Node, &Node::other_hook>;

TEST(IntrusiveList, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
}

TEST(IntrusiveList, PushBackPreservesFifoOrder) {
  List list;
  Node a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.pop_front().value, 1);
  EXPECT_EQ(list.pop_front().value, 2);
  EXPECT_EQ(list.pop_front().value, 3);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, PushFront) {
  List list;
  Node a(1), b(2);
  list.push_back(a);
  list.push_front(b);
  EXPECT_EQ(list.front().value, 2);
  EXPECT_EQ(list.back().value, 1);
  list.clear();
}

TEST(IntrusiveList, RemoveFromMiddleIsO1AndKeepsOrder) {
  List list;
  Node a(1), b(2), c(3), d(4);
  for (Node* n : {&a, &b, &c, &d}) list.push_back(*n);
  list.remove(b);
  EXPECT_FALSE(List::is_linked(b));
  std::vector<int> order;
  for (Node& n : list) order.push_back(n.value);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
  list.clear();
}

TEST(IntrusiveList, ReinsertAfterRemove) {
  List list;
  Node a(1);
  list.push_back(a);
  list.remove(a);
  list.push_back(a);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(&list.front(), &a);
  list.clear();
}

TEST(IntrusiveList, ItemCanBeOnTwoListsThroughDifferentHooks) {
  List list;
  OtherList other;
  Node a(7);
  list.push_back(a);
  other.push_back(a);
  EXPECT_EQ(&list.front(), &a);
  EXPECT_EQ(&other.front(), &a);
  list.clear();
  other.clear();
}

TEST(IntrusiveList, IterationBidirectional) {
  List list;
  Node a(1), b(2), c(3);
  for (Node* n : {&a, &b, &c}) list.push_back(*n);
  auto it = list.begin();
  ++it;
  EXPECT_EQ(it->value, 2);
  --it;
  EXPECT_EQ(it->value, 1);
  list.clear();
}

TEST(IntrusiveList, ClearUnlinksEverything) {
  List list;
  Node a(1), b(2);
  list.push_back(a);
  list.push_back(b);
  list.clear();
  EXPECT_FALSE(List::is_linked(a));
  EXPECT_FALSE(List::is_linked(b));
}

TEST(IntrusiveListDeathTest, DoubleInsertAborts) {
  List list;
  Node a(1);
  list.push_back(a);
  EXPECT_DEATH(list.push_back(a), "already-linked");
  list.clear();
}

TEST(IntrusiveListDeathTest, DestroyLinkedHookAborts) {
  List list;
  auto* a = new Node(1);
  list.push_back(*a);
  EXPECT_DEATH(delete a, "still linked");
  list.clear();
  delete a;
}

}  // namespace
}  // namespace ncs
