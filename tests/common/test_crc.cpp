#include "common/crc.hpp"

#include <gtest/gtest.h>

#include <string_view>

#include "common/bytes.hpp"

namespace ncs {
namespace {

Bytes bytes_of(std::string_view s) { return to_bytes(s); }

TEST(Crc32, KnownVectorCheck) {
  // The classic CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32_ieee(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(crc32_ieee({}), 0x00000000u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const Bytes data = bytes_of("the quick brown fox jumps over the lazy dog");
  Crc32 inc;
  inc.update(BytesView(data).first(10));
  inc.update(BytesView(data).subspan(10, 7));
  inc.update(BytesView(data).subspan(17));
  EXPECT_EQ(inc.final(), crc32_ieee(data));
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  Bytes data = bytes_of("payload payload payload");
  const std::uint32_t before = crc32_ieee(data);
  data[5] ^= std::byte{0x01};
  EXPECT_NE(crc32_ieee(data), before);
}

TEST(Crc10, AtmCheckVector) {
  // CRC-10/ATM (poly x^10+x^9+x^5+x^4+x+1, init 0): check("123456789") = 0x199.
  EXPECT_EQ(crc10_aal34(bytes_of("123456789")), 0x199u);
}

TEST(Crc10, SensitiveToBitFlips) {
  Bytes data = bytes_of("atm adaptation layer three slash four");
  const std::uint16_t before = crc10_aal34(data);
  data[7] ^= std::byte{0x20};
  EXPECT_NE(crc10_aal34(data), before);
}

TEST(Crc10, TenBitRange) {
  for (int i = 0; i < 64; ++i) {
    Bytes data(static_cast<std::size_t>(i + 1), static_cast<std::byte>(i * 37));
    EXPECT_LE(crc10_aal34(data), 0x3FFu);
  }
}

TEST(Hec, RoundTrip) {
  const std::uint8_t header[4] = {0x12, 0x34, 0x56, 0x78};
  std::uint8_t full[5] = {0x12, 0x34, 0x56, 0x78, hec_compute(header)};
  EXPECT_TRUE(hec_verify(full));
}

TEST(Hec, DetectsHeaderCorruption) {
  const std::uint8_t header[4] = {0xAA, 0xBB, 0xCC, 0xDD};
  std::uint8_t full[5] = {0xAA, 0xBB, 0xCC, 0xDD, hec_compute(header)};
  full[1] ^= 0x04;
  EXPECT_FALSE(hec_verify(full));
}

TEST(Hec, CosetMakesAllZeroHeaderNonZero) {
  // ITU I.432's 0x55 coset guarantees an idle (all-zero) header does not
  // have an all-zero HEC.
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  EXPECT_EQ(hec_compute(zero), 0x55);
}

}  // namespace
}  // namespace ncs
