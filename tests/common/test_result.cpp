#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ncs {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::ok);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s(ErrorCode::data_corruption, "bad crc");
  EXPECT_FALSE(s.is_ok());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::data_corruption);
  EXPECT_EQ(s.to_string(), "DATA_CORRUPTION: bad crc");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status(ErrorCode::timed_out, "no ack"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::timed_out);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status(ErrorCode::not_found, ""));
  EXPECT_DEATH((void)r.value(), "value\\(\\) on error");
}

TEST(ErrorCode, AllCodesHaveNames) {
  EXPECT_STREQ(to_string(ErrorCode::ok), "OK");
  EXPECT_STREQ(to_string(ErrorCode::data_corruption), "DATA_CORRUPTION");
  EXPECT_STREQ(to_string(ErrorCode::timed_out), "TIMED_OUT");
  EXPECT_STREQ(to_string(ErrorCode::connection_reset), "CONNECTION_RESET");
}

}  // namespace
}  // namespace ncs
