#include "proto/tcp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ether/bus.hpp"
#include "proto/segment_network.hpp"

namespace ncs::proto {
namespace {

using namespace ncs::literals;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next_u64() & 0xFF);
  return b;
}

struct TcpFixture : ::testing::Test {
  void build(TcpParams params, double loss = 0.0) {
    ether::BusParams bp;
    bp.model_contention = false;
    bus = std::make_unique<ether::Bus>(engine, bp, 4);
    net = std::make_unique<EthernetSegmentNetwork>(*bus, 4);
    (void)loss;
    mesh = std::make_unique<TcpMesh>(engine, *net, params);
    for (int h = 0; h < 4; ++h)
      mesh->set_on_deliver(h, [this, h](int src, BytesView data) {
        auto& buf = received[static_cast<std::size_t>(h * 4 + src)];
        append(buf, data);
      });
  }

  Bytes& stream(int src, int dst) { return received[static_cast<std::size_t>(dst * 4 + src)]; }

  sim::Engine engine;
  std::unique_ptr<ether::Bus> bus;
  std::unique_ptr<EthernetSegmentNetwork> net;
  std::unique_ptr<TcpMesh> mesh;
  std::array<Bytes, 16> received;
};

TEST_F(TcpFixture, DeliversSmallMessage) {
  build({});
  const Bytes msg = random_bytes(100, 1);
  mesh->send(0, 1, msg);
  engine.run();
  EXPECT_EQ(stream(0, 1), msg);
  EXPECT_TRUE(mesh->idle());
}

TEST_F(TcpFixture, DeliversMultiSegmentStreamInOrder) {
  build({});
  const Bytes msg = random_bytes(50'000, 2);
  mesh->send(0, 1, msg);
  engine.run();
  EXPECT_EQ(stream(0, 1), msg);
}

TEST_F(TcpFixture, ConcatenatesSuccessiveSends) {
  build({});
  Bytes expected;
  for (int i = 0; i < 5; ++i) {
    const Bytes part = random_bytes(777, static_cast<std::uint64_t>(i));
    append(expected, part);
    mesh->send(2, 3, part);
  }
  engine.run();
  EXPECT_EQ(stream(2, 3), expected);
}

TEST_F(TcpFixture, BidirectionalStreamsIndependent) {
  build({});
  const Bytes ab = random_bytes(5000, 3);
  const Bytes ba = random_bytes(6000, 4);
  mesh->send(0, 1, ab);
  mesh->send(1, 0, ba);
  engine.run();
  EXPECT_EQ(stream(0, 1), ab);
  EXPECT_EQ(stream(1, 0), ba);
}

TEST_F(TcpFixture, WindowLimitsInFlight) {
  TcpParams p;
  p.window_segments = 2;
  p.nagle = false;
  build(p);
  const Bytes msg = random_bytes(30'000, 5);
  mesh->send(0, 1, msg);
  engine.run();
  EXPECT_EQ(stream(0, 1), msg);
  // With a 2-segment window delivery takes many more round trips than the
  // serialized wire time alone.
  EXPECT_GT(mesh->total_stats().acks_sent, 5u);
}

TEST_F(TcpFixture, MssClampedToMtu) {
  TcpParams p;
  p.mss = 100'000;  // absurd; must clamp to Ethernet MTU - headers
  build(p);
  EXPECT_EQ(mesh->effective_mss(), ether::kMaxPayload - kIpTcpHeaderBytes);
  const Bytes msg = random_bytes(10'000, 6);
  mesh->send(0, 1, msg);
  engine.run();
  EXPECT_EQ(stream(0, 1), msg);
}

TEST_F(TcpFixture, NagleHoldsSmallTailWhileUnacked) {
  TcpParams p;
  p.nagle = true;
  build(p);
  // 1460 + 100: the tail is sub-MSS and must wait for the first segment's
  // (delayed) ack.
  mesh->send(0, 1, random_bytes(1560, 7));
  engine.run();
  EXPECT_EQ(stream(0, 1).size(), 1560u);
  EXPECT_GE(mesh->total_stats().nagle_holds, 1u);
  // Delivery completed only after the delayed-ack stall.
  EXPECT_GT(engine.now().sec(), 0.19);
}

TEST_F(TcpFixture, NodelayAvoidsTheStall) {
  TcpParams p;
  p.nagle = false;
  build(p);
  mesh->send(0, 1, random_bytes(1560, 7));
  engine.run_until(TimePoint::origin() + 100_ms);
  EXPECT_EQ(stream(0, 1).size(), 1560u);  // delivered well before any stall
}

TEST_F(TcpFixture, DelayedAckEverySecondSegment) {
  TcpParams p;
  p.nagle = false;
  build(p);
  mesh->send(0, 1, random_bytes(1460 * 10, 8));
  engine.run();
  const auto stats = mesh->total_stats();
  // ~half the data segments produce immediate acks; the rest ride timers.
  EXPECT_LT(stats.acks_sent, stats.data_segments + 1);
}

TEST_F(TcpFixture, ManyPairsConcurrently) {
  TcpParams p;
  p.nagle = false;
  build(p);
  std::array<Bytes, 16> sent;
  for (int s = 0; s < 4; ++s)
    for (int d = 0; d < 4; ++d) {
      if (s == d) continue;
      sent[static_cast<std::size_t>(d * 4 + s)] =
          random_bytes(3000 + static_cast<std::size_t>(s) * 100 + static_cast<std::size_t>(d),
                       static_cast<std::uint64_t>(s * 16 + d));
      mesh->send(s, d, sent[static_cast<std::size_t>(d * 4 + s)]);
    }
  engine.run();
  for (int s = 0; s < 4; ++s)
    for (int d = 0; d < 4; ++d) {
      if (s == d) continue;
      EXPECT_EQ(stream(s, d), sent[static_cast<std::size_t>(d * 4 + s)]);
    }
}

// --- loss recovery over a lossy ATM path ---

struct LossyAtmFixture : ::testing::Test {
  void build(double loss) {
    atm::LanConfig lc;
    lc.n_hosts = 2;
    lc.nic.io_buffer_size = 9216;
    lc.host_link.loss_probability = loss;
    lan = std::make_unique<atm::AtmLan>(engine, lc);
    net = std::make_unique<AtmSegmentNetwork>(engine, *lan);
    TcpParams p;
    p.nagle = false;
    p.rto = 300_ms;  // must exceed the 200 ms delayed ack or acks look lost
    mesh = std::make_unique<TcpMesh>(engine, *net, p);
    mesh->set_on_deliver(1, [this](int, BytesView data) { append(got, data); });
  }

  sim::Engine engine;
  std::unique_ptr<atm::AtmLan> lan;
  std::unique_ptr<AtmSegmentNetwork> net;
  std::unique_ptr<TcpMesh> mesh;
  Bytes got;
};

TEST_F(LossyAtmFixture, RetransmissionRecoversLoss) {
  build(0.05);
  const Bytes msg = random_bytes(100'000, 11);
  mesh->send(0, 1, msg);
  engine.run();
  EXPECT_EQ(got, msg);
  EXPECT_GT(mesh->total_stats().retransmits, 0u);
}

TEST_F(LossyAtmFixture, LosslessPathHasNoRetransmits) {
  build(0.0);
  const Bytes msg = random_bytes(100'000, 12);
  mesh->send(0, 1, msg);
  engine.run();
  EXPECT_EQ(got, msg);
  EXPECT_EQ(mesh->total_stats().retransmits, 0u);
}

}  // namespace
}  // namespace ncs::proto
