#include "proto/segment_network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ncs::proto {
namespace {

using namespace ncs::literals;

TEST(EthernetSegmentNetwork, ForwardsToBus) {
  sim::Engine engine;
  ether::BusParams bp;
  bp.model_contention = false;
  ether::Bus bus(engine, bp, 3);
  EthernetSegmentNetwork net(bus, 3);

  EXPECT_EQ(net.mtu(), ether::kMaxPayload);
  EXPECT_EQ(net.n_hosts(), 3);

  std::vector<std::pair<int, std::size_t>> got;
  net.set_rx(2, [&](int src, Bytes data) { got.emplace_back(src, data.size()); });
  net.send(0, 2, Bytes(500, std::byte{1}), nullptr);
  net.send(1, 2, Bytes(700, std::byte{2}), nullptr);
  engine.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(0, std::size_t{500}));
  EXPECT_EQ(got[1], std::make_pair(1, std::size_t{700}));
}

struct AtmSegFixture : ::testing::Test {
  AtmSegFixture() {
    atm::LanConfig lc;
    lc.n_hosts = 3;
    lc.nic.io_buffer_size = 9216;
    lc.nic.tx_buffers = 2;
    lan = std::make_unique<atm::AtmLan>(engine, lc);
    net = std::make_unique<AtmSegmentNetwork>(engine, *lan);
  }

  sim::Engine engine;
  std::unique_ptr<atm::AtmLan> lan;
  std::unique_ptr<AtmSegmentNetwork> net;
};

TEST_F(AtmSegFixture, DatagramRidesOneAal5Pdu) {
  Bytes got;
  int from = -1;
  net->set_rx(1, [&](int src, Bytes data) {
    from = src;
    got = std::move(data);
  });
  Bytes payload(9000, std::byte{0x42});
  net->send(0, 1, payload, nullptr);
  engine.run();
  EXPECT_EQ(from, 0);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(net->mtu(), 9180u);
}

TEST_F(AtmSegFixture, BackpressureQueuesBeyondNicBuffers) {
  // 10 datagrams through 2 TX buffers: all must arrive, in order.
  std::vector<std::size_t> sizes;
  net->set_rx(2, [&](int, Bytes data) { sizes.push_back(data.size()); });
  for (std::size_t i = 0; i < 10; ++i) net->send(0, 2, Bytes(1000 + i, std::byte{1}), nullptr);
  engine.run();
  ASSERT_EQ(sizes.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sizes[i], 1000 + i);
}

TEST_F(AtmSegFixture, OnSentFiresForEveryDatagram) {
  int sent = 0;
  for (int i = 0; i < 5; ++i) net->send(0, 1, Bytes(100, std::byte{1}), [&] { ++sent; });
  engine.run();
  EXPECT_EQ(sent, 5);
}

TEST_F(AtmSegFixture, InterleavedDestinationsKeepPerPairOrder) {
  std::vector<int> to1, to2;
  net->set_rx(1, [&](int, Bytes d) { to1.push_back(static_cast<int>(d.size())); });
  net->set_rx(2, [&](int, Bytes d) { to2.push_back(static_cast<int>(d.size())); });
  for (int i = 0; i < 6; ++i) net->send(0, 1 + (i % 2), Bytes(static_cast<std::size_t>(10 + i), std::byte{1}), nullptr);
  engine.run();
  EXPECT_EQ(to1, (std::vector<int>{10, 12, 14}));
  EXPECT_EQ(to2, (std::vector<int>{11, 13, 15}));
}

TEST(AtmSegmentNetworkDeathTest, SmallNicBuffersRejected) {
  sim::Engine engine;
  atm::LanConfig lc;
  lc.n_hosts = 2;
  lc.nic.io_buffer_size = 4096;  // < 9180 MTU
  atm::AtmLan lan(engine, lc);
  EXPECT_DEATH(AtmSegmentNetwork(engine, lan), "9180");
}

}  // namespace
}  // namespace ncs::proto
