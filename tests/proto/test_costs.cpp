#include "proto/costs.hpp"

#include <gtest/gtest.h>

namespace ncs::proto {
namespace {

TEST(CostModel, CopyCyclesScaleLinearly) {
  CostModel m;
  EXPECT_DOUBLE_EQ(m.copy_cycles(8000, 4.0), 2.0 * m.copy_cycles(4000, 4.0));
  EXPECT_DOUBLE_EQ(m.copy_cycles(4000, 4.0), 2.0 * m.copy_cycles(4000, 2.0));
}

TEST(CostModel, NcsPathCheaperThanTcpPath) {
  // Fig 3: the mmap'ed-buffer path touches each word half as often as the
  // socket path (2 vs 4 protocol accesses), so for large transfers the NCS
  // per-chunk cost must be well under the TCP per-message cost.
  CostModel m;
  const std::size_t bytes = 64 * 1024;
  double ncs_total = 0;
  for (std::size_t off = 0; off < bytes; off += 4096) ncs_total += m.ncs_chunk_cycles(4096);
  EXPECT_LT(ncs_total, m.tcp_side_cycles(bytes, 1460));
}

TEST(CostModel, TcpSegmentCountRoundsUp) {
  CostModel m;
  const double one = m.tcp_side_cycles(1460, 1460);
  const double two = m.tcp_side_cycles(1461, 1460);
  EXPECT_NEAR(two - one, m.tcp_per_segment_cycles + m.copy_cycles(1, m.tcp_accesses_per_word),
              1e-6);
}

TEST(CostModel, ZeroByteMessageStillPaysFixedCosts) {
  CostModel m;
  EXPECT_GE(m.tcp_side_cycles(0, 1460), m.syscall_cycles + m.tcp_per_segment_cycles);
  EXPECT_GE(m.ncs_chunk_cycles(0), m.trap_cycles);
}

TEST(CostModel, TrapMuchCheaperThanSyscall) {
  CostModel m;
  EXPECT_LT(m.trap_cycles * 5, m.syscall_cycles);
}

TEST(CostModel, BusAccessRatioMatchesPaper) {
  // 5 total accesses (TCP) vs 3 (NCS), of which 1 is the application's own
  // write in both cases: the model charges 4 vs 2.
  CostModel m;
  EXPECT_DOUBLE_EQ(m.tcp_accesses_per_word + 1, 5.0);
  EXPECT_DOUBLE_EQ(m.ncs_accesses_per_word + 1, 3.0);
}

}  // namespace
}  // namespace ncs::proto
