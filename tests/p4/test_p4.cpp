#include "p4/p4.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ether/bus.hpp"
#include "proto/segment_network.hpp"

namespace ncs::p4 {
namespace {

using namespace ncs::literals;

struct P4Fixture : ::testing::Test {
  void build(int n_procs) {
    ether::BusParams bp;
    bp.model_contention = false;
    bus = std::make_unique<ether::Bus>(engine, bp, n_procs);
    net = std::make_unique<proto::EthernetSegmentNetwork>(*bus, n_procs);
    for (int r = 0; r < n_procs; ++r) {
      mts::SchedulerParams sp;
      sp.name = "p" + std::to_string(r);
      hosts.push_back(std::make_unique<mts::Scheduler>(engine, sp));
    }
    std::vector<mts::Scheduler*> ptrs;
    for (auto& h : hosts) ptrs.push_back(h.get());
    proto::TcpParams tcp;
    tcp.nagle = false;
    rt = std::make_unique<Runtime>(engine, ptrs, *net, tcp);
  }

  /// Runs `fn(rank)` as the main thread of every process.
  void run(std::function<void(int)> fn) {
    for (int r = 0; r < rt->n_procs(); ++r)
      hosts[static_cast<std::size_t>(r)]->spawn([fn, r] { fn(r); }, {.name = "main"});
    engine.run();
  }

  sim::Engine engine;
  std::unique_ptr<ether::Bus> bus;
  std::unique_ptr<proto::EthernetSegmentNetwork> net;
  std::vector<std::unique_ptr<mts::Scheduler>> hosts;
  std::unique_ptr<Runtime> rt;
};

TEST_F(P4Fixture, SendRecvRoundTrip) {
  build(2);
  Bytes got;
  run([&](int rank) {
    Process& p = rt->process(rank);
    if (rank == 0) {
      p.send(5, 1, to_bytes("hello p4"));
    } else {
      int type = 5, from = 0;
      got = p.recv(&type, &from);
      EXPECT_EQ(type, 5);
      EXPECT_EQ(from, 0);
    }
  });
  EXPECT_EQ(got, to_bytes("hello p4"));
}

TEST_F(P4Fixture, WildcardRecvMatchesAnything) {
  build(3);
  std::vector<int> senders;
  run([&](int rank) {
    Process& p = rt->process(rank);
    if (rank == 0) {
      for (int k = 0; k < 2; ++k) {
        int type = kAnyType, from = kAnyProc;
        (void)p.recv(&type, &from);
        senders.push_back(from);
      }
    } else {
      p.send(rank * 10, 0, to_bytes("x"));
    }
  });
  ASSERT_EQ(senders.size(), 2u);
  EXPECT_NE(senders[0], senders[1]);
}

TEST_F(P4Fixture, TypeSelectiveRecvSkipsOthers) {
  build(2);
  std::vector<int> order;
  run([&](int rank) {
    Process& p = rt->process(rank);
    if (rank == 0) {
      p.send(1, 1, to_bytes("first"));
      p.send(2, 1, to_bytes("second"));
    } else {
      int type = 2, from = 0;
      (void)p.recv(&type, &from);  // select the second message by type
      order.push_back(2);
      type = 1;
      from = 0;
      (void)p.recv(&type, &from);
      order.push_back(1);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST_F(P4Fixture, FifoPerTypeAndSender) {
  build(2);
  std::vector<std::string> got;
  run([&](int rank) {
    Process& p = rt->process(rank);
    if (rank == 0) {
      for (int i = 0; i < 5; ++i) p.send(7, 1, to_bytes("m" + std::to_string(i)));
    } else {
      for (int i = 0; i < 5; ++i) {
        int type = 7, from = 0;
        const Bytes b = p.recv(&type, &from);
        got.emplace_back(reinterpret_cast<const char*>(b.data()), b.size());
      }
    }
  });
  EXPECT_EQ(got, (std::vector<std::string>{"m0", "m1", "m2", "m3", "m4"}));
}

TEST_F(P4Fixture, MessagesAvailableProbe) {
  build(2);
  bool before = true, after = false;
  run([&](int rank) {
    Process& p = rt->process(rank);
    if (rank == 0) {
      int type = kAnyType, from = kAnyProc;
      before = p.messages_available(&type, &from);
      // Wait for the peer's message to arrive, then probe again.
      type = 9;
      from = 1;
      (void)p.recv(&type, &from);
      p.send(10, 1, to_bytes("done"));
    } else {
      p.send(9, 0, to_bytes("ping"));
      int type = 10, from = 0;
      (void)p.recv(&type, &from);
      p.send(11, 0, to_bytes("probe-me"));
    }
  });
  // Re-run a fresh engine pass: rank 0 probes after rank 1's last send.
  hosts[0]->spawn([&] {
    Process& p = rt->process(0);
    int type = kAnyType, from = kAnyProc;
    // The message may still be in flight; wait for it.
    type = 11;
    from = 1;
    (void)p.recv(&type, &from);
    type = kAnyType;
    from = kAnyProc;
    after = p.messages_available(&type, &from);
  });
  engine.run();
  EXPECT_FALSE(before);
  EXPECT_FALSE(after);
}

TEST_F(P4Fixture, BroadcastReachesAllOthers) {
  build(4);
  std::vector<int> got(4, 0);
  run([&](int rank) {
    Process& p = rt->process(rank);
    if (rank == 0) {
      p.broadcast(3, to_bytes("fan-out"));
    } else {
      int type = 3, from = 0;
      const Bytes b = p.recv(&type, &from);
      got[static_cast<std::size_t>(rank)] = static_cast<int>(b.size());
    }
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(got[static_cast<std::size_t>(r)], 7);
}

TEST_F(P4Fixture, GlobalBarrierSynchronizes) {
  build(3);
  std::vector<std::string> log;
  run([&](int rank) {
    Process& p = rt->process(rank);
    // Stagger arrivals with compute.
    p.host().charge_cycles(1e6 * (rank + 1), sim::Activity::compute);
    log.push_back("arrive" + std::to_string(rank));
    p.global_barrier();
    log.push_back("pass" + std::to_string(rank));
  });
  ASSERT_EQ(log.size(), 6u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)].substr(0, 6), "arrive");
  for (int i = 3; i < 6; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)].substr(0, 4), "pass");
}

TEST_F(P4Fixture, RepeatedBarriers) {
  build(2);
  int phases_in_sync = 0;
  int phase0 = 0, phase1 = 0;
  run([&](int rank) {
    Process& p = rt->process(rank);
    for (int k = 0; k < 4; ++k) {
      (rank == 0 ? phase0 : phase1) = k;
      p.global_barrier();
      if (rank == 0 && phase0 == phase1) ++phases_in_sync;
      p.global_barrier();
    }
  });
  EXPECT_EQ(phases_in_sync, 4);
}

TEST_F(P4Fixture, BlockingRecvBlocksOnlyCallingThread) {
  // The property NCS builds on: another green thread of the same process
  // keeps running while one is parked in recv.
  build(2);
  std::vector<std::string> log;
  run([&](int rank) {
    Process& p = rt->process(rank);
    if (rank == 0) {
      mts::Scheduler& host = p.host();
      mts::Thread* worker = host.spawn([&] {
        log.push_back("worker-ran");
      }, {.name = "worker"});
      int type = 1, from = 1;
      (void)p.recv(&type, &from);  // parks main; worker must run meanwhile
      log.push_back("recv-done");
      host.join(worker);
    } else {
      p.host().charge_cycles(50e6, sim::Activity::compute);  // arrive late
      p.send(1, 0, to_bytes("late"));
    }
  });
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "worker-ran");
  EXPECT_EQ(log[1], "recv-done");
}

TEST_F(P4Fixture, SendChargesCpuTime) {
  build(2);
  Duration send_cost;
  run([&](int rank) {
    Process& p = rt->process(rank);
    if (rank == 0) {
      const TimePoint t0 = engine.now();
      p.send(1, 1, Bytes(100'000, std::byte{1}));
      send_cost = engine.now() - t0;
    } else {
      int type = 1, from = 0;
      (void)p.recv(&type, &from);
    }
  });
  // 100 KB through syscall + copies + segmentation: milliseconds of CPU.
  EXPECT_GT(send_cost.ms(), 1.0);
}

TEST_F(P4Fixture, StatsCount) {
  build(2);
  run([&](int rank) {
    Process& p = rt->process(rank);
    if (rank == 0) {
      p.send(1, 1, Bytes(10, std::byte{1}));
    } else {
      int type = 1, from = 0;
      (void)p.recv(&type, &from);
    }
  });
  EXPECT_EQ(rt->process(0).stats().sends, 1u);
  EXPECT_EQ(rt->process(1).stats().recvs, 1u);
  EXPECT_EQ(rt->process(1).stats().bytes_received, 10u);
}

}  // namespace
}  // namespace ncs::p4
