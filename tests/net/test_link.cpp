#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ncs::net {
namespace {

using namespace ncs::literals;

LinkParams fast_link() {
  LinkParams p;
  p.bandwidth_bps = 100e6;  // 1 byte = 80 ns
  p.propagation = 10_us;
  p.per_frame_overhead = Duration::zero();
  return p;
}

TEST(Link, TxTimeMatchesBandwidth) {
  sim::Engine e;
  Link link(e, fast_link());
  EXPECT_EQ(link.tx_time(1000).ns(), 80000);  // 8000 bits / 100 Mbps = 80 us
}

TEST(Link, PerFrameOverheadAdds) {
  sim::Engine e;
  LinkParams p = fast_link();
  p.per_frame_overhead = 5_us;
  Link link(e, p);
  EXPECT_EQ(link.tx_time(1000), 80_us + 5_us);
}

TEST(Link, SentThenDeliveredTiming) {
  sim::Engine e;
  Link link(e, fast_link());
  TimePoint sent, delivered;
  link.transmit(1000, [&] { sent = e.now(); }, [&] { delivered = e.now(); });
  e.run();
  EXPECT_EQ(sent, TimePoint::origin() + 80_us);
  EXPECT_EQ(delivered, TimePoint::origin() + 80_us + 10_us);
}

TEST(Link, BackToBackFramesSerialize) {
  sim::Engine e;
  Link link(e, fast_link());
  std::vector<TimePoint> deliveries;
  link.transmit(1000, nullptr, [&] { deliveries.push_back(e.now()); });
  link.transmit(1000, nullptr, [&] { deliveries.push_back(e.now()); });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], TimePoint::origin() + 90_us);
  EXPECT_EQ(deliveries[1], TimePoint::origin() + 170_us);  // waits for first
}

TEST(Link, LaterTransmitAfterIdleStartsImmediately) {
  sim::Engine e;
  Link link(e, fast_link());
  link.transmit(1000, nullptr, nullptr);
  e.run();  // wire idle again at t=80us
  TimePoint delivered;
  link.transmit(1000, nullptr, [&] { delivered = e.now(); });
  e.run();
  EXPECT_EQ(delivered, TimePoint::origin() + 80_us + 90_us);
}

TEST(Link, StatsCountFramesAndBytes) {
  sim::Engine e;
  Link link(e, fast_link());
  link.transmit(100, nullptr, nullptr);
  link.transmit(200, nullptr, nullptr);
  e.run();
  EXPECT_EQ(link.stats().frames, 2u);
  EXPECT_EQ(link.stats().bytes, 300u);
  EXPECT_EQ(link.stats().drops, 0u);
}

TEST(Link, LossDropsDeliveryButNotSent) {
  sim::Engine e;
  LinkParams p = fast_link();
  p.loss_probability = 1.0;
  Link link(e, p);
  bool sent = false, delivered = false;
  link.transmit(100, [&] { sent = true; }, [&] { delivered = true; });
  e.run();
  EXPECT_TRUE(sent);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(link.stats().drops, 1u);
}

TEST(Link, LossRateApproximatelyRespected) {
  sim::Engine e;
  LinkParams p = fast_link();
  p.loss_probability = 0.3;
  Link link(e, p);
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) link.transmit(10, nullptr, [&] { ++delivered; });
  e.run();
  EXPECT_NEAR(delivered, 700, 50);
}

TEST(DuplexLink, DirectionsAreIndependent) {
  sim::Engine e;
  DuplexLink duplex(e, fast_link());
  TimePoint fwd, bwd;
  duplex.forward().transmit(1000, nullptr, [&] { fwd = e.now(); });
  duplex.backward().transmit(1000, nullptr, [&] { bwd = e.now(); });
  e.run();
  // No serialization between directions: both arrive at the same time.
  EXPECT_EQ(fwd, bwd);
  EXPECT_EQ(fwd, TimePoint::origin() + 90_us);
}

}  // namespace
}  // namespace ncs::net
