// Cross-cutting property tests over the full stack.
#include <gtest/gtest.h>

#include "cluster/drivers.hpp"
#include "cluster/table.hpp"

namespace ncs::cluster {
namespace {

TEST(CellFidelity, DetailedCellModeMatchesBurstModeExactly) {
  // The data plane has two fidelity modes: burst (cells charged in time
  // only) and detailed (real cells, HEC + AAL5 CRC checked end to end).
  // They must agree on *both* the result and the simulated clock, to the
  // picosecond — this pins the burst-mode timing arithmetic to the
  // cell-accurate implementation.
  ClusterConfig burst_cfg = sun_atm_lan(0);
  burst_cfg.hsm_chunk = 4096;
  ClusterConfig detailed_cfg = burst_cfg;
  detailed_cfg.nic.detailed_cells = true;

  const AppResult burst = run_matmul_ncs(burst_cfg, 2, NcsTier::hsm_atm);
  const AppResult detailed = run_matmul_ncs(detailed_cfg, 2, NcsTier::hsm_atm);
  EXPECT_TRUE(burst.correct);
  EXPECT_TRUE(detailed.correct);
  EXPECT_EQ(burst.elapsed.ps(), detailed.elapsed.ps());
}

struct TcpSweepCase {
  int window;
  bool nagle;
  bool delayed_ack;
};

class TcpParamSweep : public ::testing::TestWithParam<TcpSweepCase> {};

TEST_P(TcpParamSweep, JpegPipelineStaysCorrectUnderAnyTcpTuning) {
  // Whatever the era's TCP was tuned like, results must be bit-correct;
  // only time may change.
  ClusterConfig cfg = sun_ethernet(0);
  cfg.tcp.window_segments = GetParam().window;
  cfg.tcp.nagle = GetParam().nagle;
  cfg.tcp.delayed_ack_enabled = GetParam().delayed_ack;
  EXPECT_TRUE(run_jpeg_p4(cfg, 2).correct);
  EXPECT_TRUE(run_jpeg_ncs(cfg, 2).correct);
}

INSTANTIATE_TEST_SUITE_P(Tunings, TcpParamSweep,
                         ::testing::Values(TcpSweepCase{1, true, true},
                                           TcpSweepCase{2, false, true},
                                           TcpSweepCase{8, true, false},
                                           TcpSweepCase{32, false, false}));

class HsmChunkSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HsmChunkSweep, FftCorrectForAnyChunkSize) {
  ClusterConfig cfg = sun_atm_lan(0);
  cfg.hsm_chunk = GetParam();
  cfg.nic.io_buffer_size = std::max<std::size_t>(GetParam(), 9216);
  EXPECT_TRUE(run_fft_ncs(cfg, 2, NcsTier::hsm_atm).correct);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, HsmChunkSweep,
                         ::testing::Values(64, 512, 2048, 4096, 8192));

TEST(HsmChunkTiming, SmallerChunksCostMoreTraps) {
  // Finer chunking means more trap + bookkeeping overhead per byte: the
  // same workload must not get faster as chunks shrink drastically.
  ClusterConfig small = sun_atm_lan(0);
  small.hsm_chunk = 256;
  ClusterConfig big = sun_atm_lan(0);
  big.hsm_chunk = 8192;
  const auto t_small = run_jpeg_ncs(small, 2, NcsTier::hsm_atm).elapsed;
  const auto t_big = run_jpeg_ncs(big, 2, NcsTier::hsm_atm).elapsed;
  EXPECT_GT(t_small, t_big);
}

TEST(FlowControlOverhead, WindowPolicyCostsLittleOnCleanFabric) {
  // Fig 5's point is selectable policies; the paper's evaluated config
  // (none) must not be dramatically better than window FC on a clean LAN.
  ClusterConfig none_cfg = sun_atm_lan(0);
  ClusterConfig window_cfg = sun_atm_lan(0);
  window_cfg.ncs.flow = {.kind = mps::FlowControlKind::window, .window = 8};
  const auto t_none = run_jpeg_ncs(none_cfg, 2, NcsTier::hsm_atm).elapsed;
  const auto t_window = run_jpeg_ncs(window_cfg, 2, NcsTier::hsm_atm).elapsed;
  EXPECT_TRUE(run_jpeg_ncs(window_cfg, 2, NcsTier::hsm_atm).correct);
  EXPECT_LT(t_window.sec(), t_none.sec() * 1.25);
}


TEST(SvcProvisioning, HsmOverSwitchedCircuitsStaysCorrect) {
  // The HSM tier provisioned with on-demand SVCs instead of the PVC mesh:
  // identical results, slightly slower start (one call setup per pair).
  ClusterConfig pvc = sun_atm_lan(0);
  ClusterConfig svc = sun_atm_lan(0);
  svc.hsm_use_svc = true;

  const AppResult with_pvc = run_jpeg_ncs(pvc, 2, NcsTier::hsm_atm);
  const AppResult with_svc = run_jpeg_ncs(svc, 2, NcsTier::hsm_atm);
  EXPECT_TRUE(with_pvc.correct);
  EXPECT_TRUE(with_svc.correct);
  // Call setup costs microseconds on the LAN; the run as a whole is
  // essentially unchanged, and never faster.
  EXPECT_GE(with_svc.elapsed.ps(), with_pvc.elapsed.ps());
  EXPECT_LT(with_svc.elapsed.sec(), with_pvc.elapsed.sec() * 1.01);
}

TEST(SvcProvisioning, FftOverSvcsAcrossAllNodes) {
  ClusterConfig svc = sun_atm_lan(0);
  svc.hsm_use_svc = true;
  EXPECT_TRUE(run_fft_ncs(svc, 4, NcsTier::hsm_atm).correct);
}

TEST(Improvement, MetricMatchesPaperDefinition) {
  EXPECT_DOUBLE_EQ(improvement_pct(Duration::seconds(10), Duration::seconds(8)), 20.0);
  EXPECT_DOUBLE_EQ(improvement_pct(Duration::seconds(10), Duration::seconds(10)), 0.0);
  EXPECT_LT(improvement_pct(Duration::seconds(10), Duration::seconds(11)), 0.0);
  EXPECT_DOUBLE_EQ(improvement_pct(Duration::zero(), Duration::seconds(1)), 0.0);
}

TEST(TableFormat, RendersPaperLayout) {
  std::vector<TableRow> rows;
  TableRow r;
  r.nodes = 2;
  r.p4_ethernet = Duration::seconds(16.89);
  r.ncs_ethernet = Duration::seconds(13.72);
  r.p4_atm = Duration::seconds(14.40);
  r.ncs_atm = Duration::seconds(11.51);
  rows.push_back(r);
  TableRow r8;
  r8.nodes = 8;
  r8.p4_ethernet = Duration::seconds(5.90);
  r8.ncs_ethernet = Duration::seconds(4.62);
  r8.has_atm = false;
  rows.push_back(r8);

  const std::string table = format_table("Table X", "SUN/Ethernet", "NYNET", rows);
  EXPECT_NE(table.find("Table X"), std::string::npos);
  EXPECT_NE(table.find("18.77%"), std::string::npos);  // (16.89-13.72)/16.89
  EXPECT_NE(table.find("20.07%"), std::string::npos);  // ATM column
  EXPECT_NE(table.find("not measured"), std::string::npos);
}

}  // namespace
}  // namespace ncs::cluster
