#include "cluster/report.hpp"

#include <gtest/gtest.h>

#include "cluster/compute.hpp"

namespace ncs::cluster {
namespace {

TEST(Report, CoversNcsRunOverAtm) {
  Cluster c(sun_atm_lan(2));
  c.init_ncs_hsm();
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        node.send(0, 0, 1, Bytes(5000, std::byte{1}));
      } else {
        (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });

  const std::string r = report(c);
  EXPECT_NE(r.find("SUN/ATM LAN"), std::string::npos);
  EXPECT_NE(r.find("2 processes"), std::string::npos);
  EXPECT_NE(r.find("atm:"), std::string::npos);
  EXPECT_NE(r.find("cells transmitted"), std::string::npos);
  EXPECT_NE(r.find("flow-control stalls 0"), std::string::npos);
  EXPECT_EQ(r.find("tcp:"), std::string::npos);       // no TCP on the HSM tier
  EXPECT_EQ(r.find("ethernet:"), std::string::npos);  // no bus on ATM
}

TEST(Report, CoversP4RunOverEthernet) {
  Cluster c(sun_ethernet(2));
  p4::Runtime& rt = c.init_p4();
  c.run([&](int rank) {
    p4::Process& p = rt.process(rank);
    if (rank == 0) {
      p.send(1, 1, Bytes(3000, std::byte{1}));
    } else {
      int type = 1, from = 0;
      (void)p.recv(&type, &from);
    }
  });

  const std::string r = report(c);
  EXPECT_NE(r.find("tcp:"), std::string::npos);
  EXPECT_NE(r.find("data segments"), std::string::npos);
  EXPECT_NE(r.find("ethernet:"), std::string::npos);
  EXPECT_EQ(r.find("atm:"), std::string::npos);
}

TEST(ChargeCompute, QuantaLetSystemThreadsIn) {
  // A long computation charged through charge_compute must allow a
  // higher-priority thread woken mid-way to run long before the end.
  sim::Engine engine;
  mts::SchedulerParams sp;
  sp.cpu_mhz = 40;
  sp.context_switch_cost = Duration::zero();
  sp.thread_create_cost = Duration::zero();
  mts::Scheduler sched(engine, sp);

  TimePoint system_ran;
  mts::Thread* system_thread = sched.spawn([&] {
    sched.block();
    system_ran = engine.now();
  }, {.name = "sys", .priority = 1});

  engine.schedule_after(Duration::milliseconds(75), [&] { sched.unblock(system_thread); });
  TimePoint compute_done;
  sched.spawn([&] {
    charge_compute(sched, 40e6);  // 1 simulated second
    compute_done = engine.now();
  }, {.name = "worker", .priority = 8});
  engine.run();

  EXPECT_NEAR(compute_done.sec(), 1.0, 0.01);
  // The system thread ran at the next quantum boundary (~50 ms grain),
  // not after the whole second.
  EXPECT_LT(system_ran.sec(), 0.2);
  EXPECT_GT(system_ran.sec(), 0.07);
}

TEST(ChargeCompute, TotalTimeIsExact) {
  sim::Engine engine;
  mts::SchedulerParams sp;
  sp.cpu_mhz = 33;
  sp.context_switch_cost = Duration::zero();
  sp.thread_create_cost = Duration::zero();
  mts::Scheduler sched(engine, sp);
  TimePoint done;
  sched.spawn([&] {
    charge_compute(sched, 33e6 * 0.7);  // 0.7 s in many quanta
    done = engine.now();
  });
  engine.run();
  EXPECT_NEAR(done.sec(), 0.7, 1e-9);
}

}  // namespace
}  // namespace ncs::cluster
