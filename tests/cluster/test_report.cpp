#include "cluster/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cluster/bench_json.hpp"
#include "cluster/compute.hpp"
#include "cluster/table.hpp"

namespace ncs::cluster {
namespace {

TEST(Report, CoversNcsRunOverAtm) {
  Cluster c(sun_atm_lan(2));
  c.init_ncs_hsm();
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        node.send(0, 0, 1, Bytes(5000, std::byte{1}));
      } else {
        (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });

  const std::string r = report(c);
  EXPECT_NE(r.find("SUN/ATM LAN"), std::string::npos);
  EXPECT_NE(r.find("2 processes"), std::string::npos);
  EXPECT_NE(r.find("atm:"), std::string::npos);
  EXPECT_NE(r.find("cells transmitted"), std::string::npos);
  EXPECT_NE(r.find("flow-control stalls 0"), std::string::npos);
  EXPECT_EQ(r.find("tcp:"), std::string::npos);       // no TCP on the HSM tier
  EXPECT_EQ(r.find("ethernet:"), std::string::npos);  // no bus on ATM
}

TEST(Report, CoversP4RunOverEthernet) {
  Cluster c(sun_ethernet(2));
  p4::Runtime& rt = c.init_p4();
  c.run([&](int rank) {
    p4::Process& p = rt.process(rank);
    if (rank == 0) {
      p.send(1, 1, Bytes(3000, std::byte{1}));
    } else {
      int type = 1, from = 0;
      (void)p.recv(&type, &from);
    }
  });

  const std::string r = report(c);
  EXPECT_NE(r.find("tcp:"), std::string::npos);
  EXPECT_NE(r.find("data segments"), std::string::npos);
  EXPECT_NE(r.find("ethernet:"), std::string::npos);
  EXPECT_EQ(r.find("atm:"), std::string::npos);
}

TEST(Report, JsonCarriesConfigAndMetrics) {
  Cluster c(sun_atm_lan(2));
  c.init_ncs_hsm();
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        node.send(0, 0, 1, Bytes(5000, std::byte{1}));
      } else {
        (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });

  const std::string j = report_json(c, Duration::milliseconds(12));
  EXPECT_NE(j.find("\"schema\":\"ncs-run-report-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"n_procs\":2"), std::string::npos);
  EXPECT_NE(j.find("\"makespan_sec\":0.012"), std::string::npos);
  EXPECT_NE(j.find("\"metrics\""), std::string::npos);
  EXPECT_NE(j.find("\"p0/mps/sends\":1"), std::string::npos);
  EXPECT_NE(j.find("\"p1/mps/recvs\":1"), std::string::npos);
  EXPECT_NE(j.find("\"p0/nic/tx_cells\""), std::string::npos);
}

TEST(BenchJson, ReportHasStableSchema) {
  BenchReport report("unit_bench");
  report.row();
  report.set("nodes", 2);
  report.set("elapsed_sec", 1.25);
  report.set("label", std::string("a\"b"));
  report.row();
  report.set("nodes", 4);
  report.set("correct", true);
  report.summary("all_correct", true);

  const std::string j = report.to_json();
  EXPECT_NE(j.find("\"schema\":\"ncs-bench-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(j.find("\"rows\":["), std::string::npos);
  EXPECT_NE(j.find("\"nodes\":2"), std::string::npos);
  EXPECT_NE(j.find("\"elapsed_sec\":1.25"), std::string::npos);
  EXPECT_NE(j.find("\"label\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(j.find("\"summary\":{\"all_correct\":true}"), std::string::npos);
}

TEST(BenchJson, ParseJsonFlagVariants) {
  std::string path = "unset";
  {
    char arg0[] = "bench";
    char* argv[] = {arg0};
    EXPECT_FALSE(parse_json_flag(1, argv, &path));
  }
  {
    char arg0[] = "bench";
    char arg1[] = "--json";
    char* argv[] = {arg0, arg1};
    EXPECT_TRUE(parse_json_flag(2, argv, &path));
    EXPECT_EQ(path, "");
  }
  {
    char arg0[] = "bench";
    char arg1[] = "--json=/tmp/out.json";
    char* argv[] = {arg0, arg1};
    EXPECT_TRUE(parse_json_flag(2, argv, &path));
    EXPECT_EQ(path, "/tmp/out.json");
  }
}

TEST(TableJson, RowsCoverConfiguredNetworks) {
  std::vector<TableRow> rows;
  TableRow r;
  r.nodes = 2;
  r.p4_ethernet = Duration::seconds(2.0);
  r.ncs_ethernet = Duration::seconds(1.5);
  r.has_atm = false;
  rows.push_back(r);
  const std::string j = table_json("table1_matmul", rows, true);
  EXPECT_NE(j.find("\"bench\":\"table1_matmul\""), std::string::npos);
  EXPECT_NE(j.find("\"p4_ethernet_sec\":2"), std::string::npos);
  EXPECT_NE(j.find("\"ncs_ethernet_sec\":1.5"), std::string::npos);
  EXPECT_NE(j.find("\"ethernet_improvement_pct\":25"), std::string::npos);
  EXPECT_EQ(j.find("\"p4_atm_sec\""), std::string::npos);  // no ATM data
  EXPECT_NE(j.find("\"all_correct\":true"), std::string::npos);
}

TEST(Trace, ClusterRunProducesALoadableChromeTrace) {
  Cluster c(sun_atm_lan(2));
  c.enable_timeline();
  c.enable_trace();
  c.init_ncs_hsm();
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        node.send(0, 0, 1, Bytes(5000, std::byte{1}));
      } else {
        (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
        node.host().charge_cycles(1e6, sim::Activity::compute);
      }
    });
    node.host().join(node.user_thread(t));
  });

  ASSERT_NE(c.trace(), nullptr);
  EXPECT_GT(c.trace()->event_count(), 0u);

  const std::string path = ::testing::TempDir() + "ncs_trace_test.json";
  c.write_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  // Structural sanity plus the spans the acceptance criteria name: the
  // MPS transfer, the NIC pipeline, the switch hop, and the per-thread
  // activity intervals merged from the timeline.
  EXPECT_EQ(doc.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(doc.find("\"p0/mps/send\""), std::string::npos);
  EXPECT_NE(doc.find("\"p0/nic/tx\""), std::string::npos);
  EXPECT_NE(doc.find("\"switch\""), std::string::npos);
  EXPECT_NE(doc.find("\"compute\""), std::string::npos);
  EXPECT_NE(doc.find("\"communicate\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ChargeCompute, QuantaLetSystemThreadsIn) {
  // A long computation charged through charge_compute must allow a
  // higher-priority thread woken mid-way to run long before the end.
  sim::Engine engine;
  mts::SchedulerParams sp;
  sp.cpu_mhz = 40;
  sp.context_switch_cost = Duration::zero();
  sp.thread_create_cost = Duration::zero();
  mts::Scheduler sched(engine, sp);

  TimePoint system_ran;
  mts::Thread* system_thread = sched.spawn([&] {
    sched.block();
    system_ran = engine.now();
  }, {.name = "sys", .priority = 1});

  engine.schedule_after(Duration::milliseconds(75), [&] { sched.unblock(system_thread); });
  TimePoint compute_done;
  sched.spawn([&] {
    charge_compute(sched, 40e6);  // 1 simulated second
    compute_done = engine.now();
  }, {.name = "worker", .priority = 8});
  engine.run();

  EXPECT_NEAR(compute_done.sec(), 1.0, 0.01);
  // The system thread ran at the next quantum boundary (~50 ms grain),
  // not after the whole second.
  EXPECT_LT(system_ran.sec(), 0.2);
  EXPECT_GT(system_ran.sec(), 0.07);
}

TEST(ChargeCompute, TotalTimeIsExact) {
  sim::Engine engine;
  mts::SchedulerParams sp;
  sp.cpu_mhz = 33;
  sp.context_switch_cost = Duration::zero();
  sp.thread_create_cost = Duration::zero();
  mts::Scheduler sched(engine, sp);
  TimePoint done;
  sched.spawn([&] {
    charge_compute(sched, 33e6 * 0.7);  // 0.7 s in many quanta
    done = engine.now();
  });
  engine.run();
  EXPECT_NEAR(done.sec(), 0.7, 1e-9);
}

}  // namespace
}  // namespace ncs::cluster
