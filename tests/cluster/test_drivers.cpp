// Integration tests: the distributed applications produce correct results
// on every runtime tier and network, and the timing invariants the paper's
// tables rest on hold in simulation.
#include "cluster/drivers.hpp"

#include <gtest/gtest.h>

namespace ncs::cluster {
namespace {

// --- correctness across tiers and networks ----------------------------------

struct DriverCase {
  const char* name;
  NetworkKind network;
  NcsTier tier;
};

ClusterConfig preset(NetworkKind net) {
  switch (net) {
    case NetworkKind::ethernet: return sun_ethernet(0);
    case NetworkKind::atm_lan: return sun_atm_lan(0);
    case NetworkKind::atm_wan: return nynet_wan(0);
    case NetworkKind::atm_wan_multi: return nynet_wan_multi(0, 4);
  }
  return sun_ethernet(0);
}

class DriverMatrix : public ::testing::TestWithParam<DriverCase> {};

TEST_P(DriverMatrix, MatmulP4Correct) {
  EXPECT_TRUE(run_matmul_p4(preset(GetParam().network), 2).correct);
}

TEST_P(DriverMatrix, MatmulNcsCorrect) {
  EXPECT_TRUE(run_matmul_ncs(preset(GetParam().network), 2, GetParam().tier).correct);
}

TEST_P(DriverMatrix, JpegP4Correct) {
  EXPECT_TRUE(run_jpeg_p4(preset(GetParam().network), 2).correct);
}

TEST_P(DriverMatrix, JpegNcsCorrect) {
  EXPECT_TRUE(run_jpeg_ncs(preset(GetParam().network), 2, GetParam().tier).correct);
}

TEST_P(DriverMatrix, FftP4Correct) {
  EXPECT_TRUE(run_fft_p4(preset(GetParam().network), 2).correct);
}

TEST_P(DriverMatrix, FftNcsCorrect) {
  EXPECT_TRUE(run_fft_ncs(preset(GetParam().network), 2, GetParam().tier).correct);
}

INSTANTIATE_TEST_SUITE_P(
    NetworksAndTiers, DriverMatrix,
    ::testing::Values(DriverCase{"ethernet_nsm", NetworkKind::ethernet, NcsTier::nsm_p4},
                      DriverCase{"atm_lan_nsm", NetworkKind::atm_lan, NcsTier::nsm_p4},
                      DriverCase{"atm_lan_hsm", NetworkKind::atm_lan, NcsTier::hsm_atm},
                      DriverCase{"atm_wan_hsm", NetworkKind::atm_wan, NcsTier::hsm_atm}),
    [](const auto& param_info) { return param_info.param.name; });

// --- node-count sweeps -------------------------------------------------------

class NodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(NodeSweep, MatmulCorrectAtEveryScale) {
  EXPECT_TRUE(run_matmul_p4(sun_ethernet(0), GetParam()).correct);
  EXPECT_TRUE(run_matmul_ncs(sun_ethernet(0), GetParam()).correct);
}

TEST_P(NodeSweep, FftCorrectAtEveryScale) {
  EXPECT_TRUE(run_fft_p4(sun_ethernet(0), GetParam()).correct);
  EXPECT_TRUE(run_fft_ncs(sun_ethernet(0), GetParam()).correct);
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodeSweep, ::testing::Values(1, 2, 4, 8));

class EvenNodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(EvenNodeSweep, JpegCorrectAtEveryScale) {
  EXPECT_TRUE(run_jpeg_p4(sun_ethernet(0), GetParam()).correct);
  EXPECT_TRUE(run_jpeg_ncs(sun_ethernet(0), GetParam()).correct);
}

INSTANTIATE_TEST_SUITE_P(Nodes, EvenNodeSweep, ::testing::Values(2, 4, 8));

// --- timing invariants (the paper's qualitative claims) ----------------------

TEST(TimingInvariants, MoreNodesReduceMatmulTime) {
  const auto t2 = run_matmul_p4(sun_ethernet(0), 2).elapsed;
  const auto t4 = run_matmul_p4(sun_ethernet(0), 4).elapsed;
  const auto t8 = run_matmul_p4(sun_ethernet(0), 8).elapsed;
  EXPECT_LT(t4, t2);
  EXPECT_LT(t8, t4);
}

TEST(TimingInvariants, AtmTestbedFasterThanEthernet) {
  // Faster hosts (40 vs 33 MHz) and a dedicated 140 Mbps fabric.
  for (int nodes : {2, 4}) {
    EXPECT_LT(run_matmul_p4(sun_atm_lan(0), nodes).elapsed,
              run_matmul_p4(sun_ethernet(0), nodes).elapsed);
    EXPECT_LT(run_jpeg_p4(sun_atm_lan(0), nodes).elapsed,
              run_jpeg_p4(sun_ethernet(0), nodes).elapsed);
  }
}

TEST(TimingInvariants, NcsNeverLosesToP4BeyondOneNode) {
  for (int nodes : {2, 4}) {
    const auto p4t = run_matmul_p4(sun_ethernet(0), nodes).elapsed;
    const auto ncst = run_matmul_ncs(sun_ethernet(0), nodes).elapsed;
    EXPECT_LE(ncst.sec(), p4t.sec() * 1.005) << nodes << " nodes";
  }
}

TEST(TimingInvariants, NcsWinsClearlyOnJpegPipeline) {
  // The paper's strongest result (Table 2): the five-stage pipeline with
  // threads hides most communication.
  for (int nodes : {2, 4}) {
    const auto p4t = run_jpeg_p4(sun_ethernet(0), nodes).elapsed;
    const auto ncst = run_jpeg_ncs(sun_ethernet(0), nodes).elapsed;
    EXPECT_LT(ncst.sec(), p4t.sec() * 0.9) << nodes << " nodes";
  }
}

TEST(TimingInvariants, OneNodeNcsPaysThreadOverhead) {
  const auto p4t = run_fft_p4(sun_ethernet(0), 1).elapsed;
  const auto ncst = run_fft_ncs(sun_ethernet(0), 1).elapsed;
  EXPECT_GE(ncst, p4t);                       // threads cost something
  EXPECT_LT(ncst.sec(), p4t.sec() * 1.05);    // ... but not much
}

TEST(TimingInvariants, HsmBeatsNsmOnAtm) {
  // Approach 2 (ATM API, 3 bus accesses/word, traps) vs approach 1 (p4
  // over TCP/IP): the whole point of the paper's second implementation.
  for (int nodes : {2, 4}) {
    const auto nsm = run_jpeg_ncs(sun_atm_lan(0), nodes, NcsTier::nsm_p4).elapsed;
    const auto hsm = run_jpeg_ncs(sun_atm_lan(0), nodes, NcsTier::hsm_atm).elapsed;
    EXPECT_LT(hsm, nsm) << nodes << " nodes";
  }
}

TEST(TimingInvariants, WanSlowerThanLan) {
  const auto lan = run_fft_ncs(sun_atm_lan(0), 2, NcsTier::hsm_atm).elapsed;
  const auto wan = run_fft_ncs(nynet_wan(0), 2, NcsTier::hsm_atm).elapsed;
  EXPECT_GT(wan, lan);
}

TEST(TimingInvariants, RunsAreDeterministic) {
  const auto a = run_jpeg_ncs(sun_ethernet(0), 4).elapsed;
  const auto b = run_jpeg_ncs(sun_ethernet(0), 4).elapsed;
  EXPECT_EQ(a.ps(), b.ps());
}

}  // namespace
}  // namespace ncs::cluster
