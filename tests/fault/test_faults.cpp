// Per-component fault state: down windows, burst chains, corruption
// windows, port flags, pause handlers — and the legacy-knob RNG stream
// equivalence the migration depends on.
#include "fault/faults.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace ncs::fault {
namespace {

TEST(GilbertElliottTest, SameSeedSameTrajectory) {
  const GilbertElliottParams p{.p_good_to_bad = 0.1, .p_bad_to_good = 0.3,
                               .loss_good = 0.01, .loss_bad = 0.9};
  GilbertElliott a(p, 42), b(p, 42);
  for (int i = 0; i < 2000; ++i) ASSERT_EQ(a.advance(), b.advance()) << "draw " << i;
}

TEST(GilbertElliottTest, BadStateLosesMoreThanGoodState) {
  // loss_good=0, loss_bad=1: every loss is attributable to the bad state,
  // and with these transition rates the chain must visit both states.
  GilbertElliott ge({.p_good_to_bad = 0.2, .p_bad_to_good = 0.2,
                     .loss_good = 0.0, .loss_bad = 1.0}, 7);
  int losses = 0, bad_frames = 0;
  for (int i = 0; i < 5000; ++i) {
    if (ge.advance()) ++losses;
    if (ge.in_bad()) ++bad_frames;
  }
  EXPECT_GT(losses, 0);
  EXPECT_GT(bad_frames, 1000);
  EXPECT_LT(bad_frames, 4000);  // it also returns to the good state
}

TEST(LinkFaultTest, DownWindowsAreDepthCounted) {
  LinkFault f;
  EXPECT_FALSE(f.down());
  f.set_down(true);
  f.set_down(true);  // overlapping window
  f.set_down(false);
  EXPECT_TRUE(f.down());  // the inner window is still open
  f.set_down(false);
  EXPECT_FALSE(f.down());
}

TEST(LinkFaultTest, DropCausesAreChargedByPriority) {
  LinkFault f;
  f.configure_uniform(1.0, 1);  // would drop everything on its own
  f.set_down(true);
  EXPECT_TRUE(f.should_drop());
  EXPECT_EQ(f.stats().down_drops, 1u);      // down wins over uniform
  EXPECT_EQ(f.stats().uniform_drops, 0u);
  f.set_down(false);
  EXPECT_TRUE(f.should_drop());
  EXPECT_EQ(f.stats().uniform_drops, 1u);
}

TEST(LinkFaultTest, UniformLossMatchesTheLegacyRngStream) {
  // The `LinkParams::loss_probability` migration contract: with only the
  // uniform knob configured, should_drop() consumes exactly the draws the
  // pre-subsystem Link consumed — Rng(seed).next_bool(p) per frame.
  const std::uint64_t seed = 0xD1CEull;
  const double p = 0.3;
  LinkFault f;
  f.configure_uniform(p, seed);
  Rng reference(seed);
  for (int i = 0; i < 2000; ++i)
    ASSERT_EQ(f.should_drop(), reference.next_bool(p)) << "frame " << i;
}

TEST(LinkFaultTest, BurstChainDropsOnlyWhileActive) {
  LinkFault f;
  f.begin_burst({.p_good_to_bad = 1.0, .p_bad_to_good = 0.0,
                 .loss_good = 0.0, .loss_bad = 1.0}, 3);
  EXPECT_TRUE(f.bursting());
  int drops = 0;
  for (int i = 0; i < 100; ++i)
    if (f.should_drop()) ++drops;
  EXPECT_GE(drops, 99);  // first frame may still be in the good state
  EXPECT_EQ(f.stats().burst_drops, static_cast<std::uint64_t>(drops));
  f.end_burst();
  EXPECT_FALSE(f.bursting());
  EXPECT_FALSE(f.should_drop());
}

TEST(NicFaultTest, WindowsStackOnTopOfTheUniformKnob) {
  NicFault f;
  f.configure_uniform(0.0, 9);  // the NIC always seeds the draw stream
  EXPECT_FALSE(f.corrupting());
  f.begin_window(1.0);
  EXPECT_TRUE(f.corrupting());
  EXPECT_TRUE(f.draw_corrupt());
  f.begin_window(1.0);  // overlapping window
  f.end_window();
  EXPECT_TRUE(f.corrupting());
  f.end_window();
  EXPECT_FALSE(f.corrupting());
}

TEST(NicFaultTest, UniformCorruptionMatchesTheLegacyRngStream) {
  const std::uint64_t seed = 0xBEEF;
  const double p = 0.01;
  NicFault f;
  f.configure_uniform(p, seed);
  Rng reference(seed);
  for (int i = 0; i < 2000; ++i)
    ASSERT_EQ(f.draw_corrupt(), reference.next_bool(p)) << "cell " << i;
}

TEST(SwitchFaultTest, PortFlagsAreIndependentAndDepthCounted) {
  SwitchFault f;
  f.set_port_down(2, true);
  EXPECT_TRUE(f.port_down(2));
  EXPECT_FALSE(f.port_down(1));
  f.set_port_down(2, true);
  f.set_port_down(2, false);
  EXPECT_TRUE(f.port_down(2));
  f.set_port_down(2, false);
  EXPECT_FALSE(f.port_down(2));
}

TEST(SwitchFaultTest, ObserversSeeEveryTransition) {
  SwitchFault f;
  std::vector<std::pair<int, bool>> seen;
  f.subscribe([&](int port, bool down) { seen.emplace_back(port, down); });
  f.set_port_down(0, true);
  f.set_port_down(0, false);
  f.set_port_down(3, true);
  EXPECT_EQ(seen, (std::vector<std::pair<int, bool>>{{0, true}, {0, false}, {3, true}}));
}

TEST(HostFaultTest, PauseDelegatesToTheInstalledHandler) {
  HostFault f;
  std::vector<TimePoint> resumes;
  f.set_pause_handler([&](TimePoint at) { resumes.push_back(at); });
  const TimePoint t = TimePoint::origin() + Duration::milliseconds(5);
  f.pause_until(t);
  EXPECT_EQ(resumes, (std::vector<TimePoint>{t}));
  EXPECT_EQ(f.stats().pauses, 1u);
}

}  // namespace
}  // namespace ncs::fault
