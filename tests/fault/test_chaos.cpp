// End-to-end fault scenarios on the NYNET WAN topology: recovery through
// error control, typed exceptions without it, determinism of faulted runs,
// and host pauses that stall compute without stopping the network.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "core/mps/exception.hpp"
#include "fault/plan.hpp"

namespace ncs::cluster {
namespace {

using namespace ncs::literals;
using mps::Node;
using mps::kAnyProcess;
using mps::kAnyThread;

struct StreamOutcome {
  std::vector<int> order;  // first payload byte of each delivery, in order
  Duration elapsed;
  std::uint64_t retransmits = 0;
};

/// Rank 0 streams `count` tagged messages to rank 1 across the WAN
/// backbone; the receiver records the tag order.
StreamOutcome run_stream(ClusterConfig cfg, int count) {
  Cluster c(cfg);
  c.init_ncs_hsm();
  StreamOutcome out;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < count; ++i) {
          Bytes b(1500, std::byte{0});
          b[0] = static_cast<std::byte>(i);
          node.send(0, 0, 1, b);
        }
      } else {
        for (int i = 0; i < count; ++i) {
          const Bytes m = node.recv(kAnyThread, kAnyProcess, 0);
          out.order.push_back(static_cast<int>(m[0]));
        }
      }
    });
    node.host().join(node.user_thread(t));
  });
  out.elapsed = c.engine().now() - TimePoint::origin();
  out.retransmits = c.node(0).error_control().stats().retransmits;
  return out;
}

std::vector<int> iota(int count) {
  std::vector<int> v;
  for (int i = 0; i < count; ++i) v.push_back(i);
  return v;
}

TEST(ChaosEndToEnd, BackboneOutageRecoversWithFifoOrderIntact) {
  ClusterConfig cfg = nynet_wan(2);
  cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 100_ms};
  // Kill the backbone across the whole burst of sends; error control must
  // retransmit after the link returns, and the receiver must still see the
  // messages in send order (the reorder buffer holds overtaken gaps).
  cfg.faults.link_down("sonet", TimePoint::origin() + 1_ms, 60_ms);

  const StreamOutcome faulted = run_stream(cfg, 10);
  EXPECT_EQ(faulted.order, iota(10));
  EXPECT_GT(faulted.retransmits, 0u);

  ClusterConfig clean = nynet_wan(2);
  clean.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 100_ms};
  const StreamOutcome baseline = run_stream(clean, 10);
  EXPECT_EQ(baseline.order, faulted.order);  // same bytes, only later
  EXPECT_LT(baseline.elapsed, faulted.elapsed);
}

TEST(ChaosEndToEnd, BlackoutWithoutErrorControlRaisesTypedException) {
  ClusterConfig cfg = nynet_wan(2);
  cfg.ncs.recv_timeout = 200_ms;  // EC=none: timeouts are the only escape
  // Down from t=0: with no error control every message is gone for good.
  cfg.faults.link_down("sonet", TimePoint::origin(), 10_sec);

  int caught = 0;
  Cluster c(cfg);
  c.init_ncs_hsm();
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < 3; ++i) node.send(0, 0, 1, Bytes(1500, std::byte{1}));
      } else {
        try {
          for (int i = 0; i < 3; ++i) (void)node.recv(kAnyThread, kAnyProcess, 0);
        } catch (const mps::NcsException& e) {
          EXPECT_EQ(e.kind(), mps::NcsExceptionKind::recv_timeout);
          ++caught;
        }
      }
    });
    node.host().join(node.user_thread(t));
  });
  EXPECT_EQ(caught, 1);  // the run *terminated* with a typed exception
  EXPECT_GE(c.ncs_exception_count(), 1u);
}

TEST(ChaosEndToEnd, FaultedRunsAreBitIdenticalAcrossRepeats) {
  ClusterConfig cfg = nynet_wan(2);
  cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 100_ms};
  cfg.faults.seed = 99;
  cfg.faults.link_burst("sonet", TimePoint::origin() + 1_ms, 80_ms,
                        {.p_good_to_bad = 0.2, .p_bad_to_good = 0.2,
                         .loss_good = 0.0, .loss_bad = 0.9});

  const StreamOutcome a = run_stream(cfg, 10);
  const StreamOutcome b = run_stream(cfg, 10);
  EXPECT_EQ(a.order, iota(10));
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.retransmits, b.retransmits);
}

TEST(ChaosEndToEnd, HostPauseStallsComputeButNotTheRun) {
  ClusterConfig clean = nynet_wan(2);
  const StreamOutcome base = run_stream(clean, 5);

  ClusterConfig cfg = nynet_wan(2);
  cfg.faults.host_pause("p0", TimePoint::origin() + 2_ms, 50_ms);
  const StreamOutcome paused = run_stream(cfg, 5);

  EXPECT_EQ(paused.order, base.order);  // nothing lost, only delayed
  EXPECT_GT(paused.elapsed, base.elapsed + 30_ms);
}

}  // namespace
}  // namespace ncs::cluster
