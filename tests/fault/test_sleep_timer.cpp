// Regression tests for the sleep_until() timer machinery under fault
// pauses and early wakes.
//
// The hazards pinned here, in the order the bugs would bite:
//  - a sleep timer expiring while a HostFault pause monopolises the CPU
//    finds its thread already runnable when the pause ends — it must wake
//    the thread exactly once (a second unblock trips the blocked-queue
//    invariant and aborts);
//  - an early wake (NCS_unblock-style) must retire the pending timer via
//    Engine::cancel so the dead timer neither fires stale against a later
//    sleep nor sits in the event queue until its deadline;
//  - a wake landing at the exact deadline instant must not race the timer
//    into a double wake;
//  - on a multi-core host, a sleeper woken early and *stolen* to another
//    core (its original core paused by a HostFault) must still retire its
//    timer from the new core — the cancel path keys off the thread, not
//    the core it slept on.
#include <gtest/gtest.h>

#include <vector>

#include "common/time.hpp"
#include "core/mts/scheduler.hpp"
#include "fault/faults.hpp"
#include "sim/engine.hpp"

namespace ncs {
namespace {

using namespace ncs::literals;

mts::SchedulerParams exact_params() {
  // Zero dispatch/creation costs so wake instants are exact.
  return {.name = "p0",
          .cpu_mhz = 40.0,
          .context_switch_cost = Duration::zero(),
          .thread_create_cost = Duration::zero()};
}

// Installs the cluster's pause realisation: a top-priority thread that owns
// the CPU until resume time, so nothing else dispatches while the network
// (engine events) keeps moving.
void install_pause_handler(fault::HostFault& hf, mts::Scheduler& sched) {
  hf.set_pause_handler([&sched](TimePoint resume_at) {
    sched.spawn(
        [&sched, resume_at] {
          const TimePoint now = sched.engine().now();
          if (resume_at > now) sched.charge(resume_at - now, sim::Activity::overhead);
        },
        {.name = "fault-pause",
         .priority = mts::kHighestPriority,
         .cls = mts::ThreadClass::system});
  });
}

TEST(SleepTimer, TimerExpiringDuringHostPauseWakesExactlyOnce) {
  sim::Engine e;
  mts::Scheduler sched(e, exact_params());
  fault::HostFault hf;
  install_pause_handler(hf, sched);

  std::vector<TimePoint> wakes;
  sched.spawn([&] {
    sched.sleep_for(10_us);  // deadline lands mid-pause
    wakes.push_back(e.now());
    sched.sleep_for(10_us);  // a fresh sleep must still work afterwards
    wakes.push_back(e.now());
  });
  e.schedule_at(TimePoint::origin() + 5_us,
                [&] { hf.pause_until(TimePoint::origin() + 15_us); });
  e.run();

  // The 10us deadline passed during the pause; the thread may only resume
  // when the pause ends, and exactly once (a double unblock would abort).
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0], TimePoint::origin() + 15_us);
  EXPECT_EQ(wakes[1], TimePoint::origin() + 25_us);
  EXPECT_TRUE(sched.quiescent());
  EXPECT_TRUE(e.empty());
}

TEST(SleepTimer, EarlyWakeCancelsThePendingTimer) {
  sim::Engine e;
  mts::Scheduler sched(e, exact_params());

  std::vector<TimePoint> wakes;
  mts::Thread* sleeper = sched.spawn([&] {
    sched.sleep_until(TimePoint::origin() + 10_us);
    wakes.push_back(e.now());
    sched.sleep_until(TimePoint::origin() + 10_us);  // same deadline again
    wakes.push_back(e.now());
  });
  e.schedule_at(TimePoint::origin() + 3_us, [&] { sched.unblock(sleeper); });

  std::size_t pending_between = 0;
  e.schedule_at(TimePoint::origin() + 5_us, [&] { pending_between = e.pending(); });

  const std::uint64_t cancelled_before = e.stats().cancelled;
  e.run();

  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0], TimePoint::origin() + 3_us);   // the early wake
  EXPECT_EQ(wakes[1], TimePoint::origin() + 10_us);  // the re-armed sleep
  // The early wake retired the first timer: between the wake and the
  // deadline only the re-armed timer is queued, not a dead one too.
  EXPECT_EQ(pending_between, 1u);
  EXPECT_EQ(e.stats().cancelled, cancelled_before + 1);
}

TEST(SleepTimer, WakeAtTheExactDeadlineInstantDoesNotDoubleWake) {
  sim::Engine e;
  mts::Scheduler sched(e, exact_params());

  // The racing wake is scheduled *before* the sleeper exists, so at the
  // deadline instant it fires ahead of the sleep timer (lower sequence
  // number): the timer then finds the thread already runnable and must
  // stand down.
  mts::Thread* sleeper = nullptr;
  int wakes = 0;
  e.schedule_at(TimePoint::origin() + 10_us, [&] {
    if (sleeper != nullptr && sleeper->state() == mts::ThreadState::blocked)
      sched.unblock(sleeper);
  });
  sleeper = sched.spawn([&] {
    sched.sleep_until(TimePoint::origin() + 10_us);
    ++wakes;
  });
  e.run();

  EXPECT_EQ(wakes, 1);
  EXPECT_TRUE(sched.quiescent());
  EXPECT_TRUE(e.empty());
}

TEST(SleepTimer, StolenSleeperStillCancelsItsTimerFromTheNewCore) {
  // Two cores, work stealing on. The sleeper lives on core 0; a HostFault
  // pause parks a top-priority pauser pinned there. An early wake lands
  // mid-pause: the sleeper re-queues on the paused core, the idle sibling
  // steals it, and its sleep returns on core 1 — where it must cancel the
  // still-pending 10 ms timer exactly as if it had never moved.
  sim::Engine e;
  mts::SchedulerParams p = exact_params();
  p.smp.n_cores = 2;
  p.smp.steal = mts::StealPolicy::seeded;
  p.smp.progress = mts::ProgressModel::on_demand;
  mts::Scheduler sched(e, p);
  fault::HostFault hf;
  hf.set_pause_handler([&sched](TimePoint resume_at) {
    sched.spawn(
        [&sched, resume_at] {
          const TimePoint now = sched.engine().now();
          if (resume_at > now) sched.charge(resume_at - now, sim::Activity::overhead);
        },
        {.name = "fault-pause",
         .priority = mts::kHighestPriority,
         .cls = mts::ThreadClass::system,
         .affinity = 0});
  });

  std::vector<TimePoint> wakes;
  mts::Thread* sleeper = sched.spawn([&] {
    sched.sleep_until(TimePoint::origin() + 10_ms);
    wakes.push_back(e.now());
    EXPECT_EQ(sched.current()->core(), 1);  // resumed on the thief
    sched.sleep_for(1_ms);  // a fresh sleep must work from the new core
    wakes.push_back(e.now());
  });
  e.schedule_at(TimePoint::origin() + 1_ms,
                [&] { hf.pause_until(TimePoint::origin() + 5_ms); });
  e.schedule_at(TimePoint::origin() + 2_ms, [&] { sched.unblock(sleeper); });

  const std::uint64_t cancelled_before = e.stats().cancelled;
  e.run();

  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0], TimePoint::origin() + 2_ms);  // escaped the paused core
  EXPECT_EQ(wakes[1], TimePoint::origin() + 3_ms);
  EXPECT_EQ(sleeper->core(), 1);
  EXPECT_GE(sched.stats().steals, 1u);
  // The early wake retired the 10 ms timer from the new core; the second
  // sleep's timer fired normally, so exactly one cancellation.
  EXPECT_EQ(e.stats().cancelled, cancelled_before + 1);
  EXPECT_TRUE(sched.quiescent());
  EXPECT_TRUE(e.empty());
}

TEST(SleepTimer, RepeatedEarlyWakesNeverLeakTimers) {
  sim::Engine e;
  mts::Scheduler sched(e, exact_params());

  // An RTO-style loop: every sleep is cut short by a wake. Dead timers
  // used to pile up in the queue until their deadlines; now each early
  // wake cancels one.
  int wakes = 0;
  mts::Thread* sleeper = sched.spawn([&] {
    for (int i = 0; i < 50; ++i) {
      sched.sleep_for(1_ms);
      ++wakes;
    }
  });
  for (int i = 1; i <= 50; ++i) {
    e.schedule_at(TimePoint::origin() + Duration::microseconds(i), [&] {
      if (sleeper->state() == mts::ThreadState::blocked) sched.unblock(sleeper);
    });
  }
  e.run();

  EXPECT_EQ(wakes, 50);
  EXPECT_GE(e.stats().cancelled, 49u);  // every cut-short sleep retired its timer
  // The run ends when the last wake happens (~50us), not at the last
  // timer deadline (~50ms): the queue drained because nothing dead lingered.
  EXPECT_LT(e.now(), TimePoint::origin() + 1_ms);
  EXPECT_TRUE(e.empty());
}

}  // namespace
}  // namespace ncs
