// Determinism digest suite: the calendar-queue scheduler must reproduce
// the seed std::map scheduler's results *bit-identically*.
//
// Every scenario here runs twice — once per Engine::QueueKind — and
// compares full outcome digests: FNV-1a result hashes, exact simulated
// elapsed times (picosecond Duration equality), delivery orders and
// retransmit counts. Any divergence in event ordering anywhere in the
// stack shows up as a digest mismatch. These are the in-process halves of
// the chaos_soak / proto_sweep bench comparison the CI gate runs.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/drivers.hpp"
#include "fault/plan.hpp"

namespace ncs::cluster {
namespace {

using namespace ncs::literals;
using mps::Node;
using mps::kAnyProcess;
using mps::kAnyThread;

struct StreamDigest {
  std::vector<int> order;
  Duration elapsed;
  std::uint64_t retransmits = 0;

  bool operator==(const StreamDigest&) const = default;
};

StreamDigest run_stream(ClusterConfig cfg, int count) {
  Cluster c(cfg);
  c.init_ncs_hsm();
  StreamDigest out;
  c.run([&](int rank) {
    Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < count; ++i) {
          Bytes b(1500, std::byte{0});
          b[0] = static_cast<std::byte>(i);
          node.send(0, 0, 1, b);
        }
      } else if (rank == 1) {
        for (int i = 0; i < count; ++i) {
          const Bytes m = node.recv(kAnyThread, kAnyProcess, 0);
          out.order.push_back(static_cast<int>(m[0]));
        }
      }
    });
    node.host().join(node.user_thread(t));
  });
  out.elapsed = c.engine().now() - TimePoint::origin();
  out.retransmits = c.node(0).error_control().stats().retransmits;
  return out;
}

/// The chaos_soak "chaos" scenario in miniature: WAN stream through a
/// bursty backbone with retransmit error control.
ClusterConfig chaos_config(sim::Engine::QueueKind queue) {
  ClusterConfig cfg = nynet_wan(2);
  cfg.queue = queue;
  cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 100_ms};
  cfg.faults.seed = 99;
  cfg.faults.link_burst("sonet", TimePoint::origin() + 1_ms, 80_ms,
                        {.p_good_to_bad = 0.2, .p_bad_to_good = 0.2,
                         .loss_good = 0.0, .loss_bad = 0.9});
  return cfg;
}

TEST(DeterminismDigest, ChaosStreamMatchesLegacyMapBitIdentically) {
  const StreamDigest calendar =
      run_stream(chaos_config(sim::Engine::QueueKind::calendar), 10);
  const StreamDigest legacy =
      run_stream(chaos_config(sim::Engine::QueueKind::legacy_map), 10);
  EXPECT_EQ(calendar, legacy);
  EXPECT_GT(calendar.retransmits, 0u);  // the scenario actually exercised loss
}

TEST(DeterminismDigest, HostPauseTimingMatchesLegacyMapBitIdentically) {
  // Pauses stress the timer/cancel machinery: the paused host's sleep and
  // RTO timers expire while a top-priority thread owns the CPU.
  auto paused = [](sim::Engine::QueueKind queue) {
    ClusterConfig cfg = nynet_wan(2);
    cfg.queue = queue;
    cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 100_ms};
    cfg.faults.host_pause("p0", TimePoint::origin() + 2_ms, 50_ms);
    return run_stream(cfg, 5);
  };
  EXPECT_EQ(paused(sim::Engine::QueueKind::calendar),
            paused(sim::Engine::QueueKind::legacy_map));
}

TEST(DeterminismDigest, MatmulResultHashMatchesLegacyMap) {
  // App-level digest (the proto_sweep-style check): distributed matmul over
  // the ATM LAN, FNV-1a over the result matrix plus exact elapsed time.
  auto digest = [](sim::Engine::QueueKind queue) {
    ClusterConfig cfg = sun_atm_lan(3);
    cfg.queue = queue;
    return run_matmul_ncs(cfg, 2, NcsTier::hsm_atm);
  };
  const AppResult calendar = digest(sim::Engine::QueueKind::calendar);
  const AppResult legacy = digest(sim::Engine::QueueKind::legacy_map);
  EXPECT_TRUE(calendar.correct);
  EXPECT_EQ(calendar.result_hash, legacy.result_hash);
  EXPECT_EQ(calendar.elapsed, legacy.elapsed);
  EXPECT_EQ(calendar.retransmits, legacy.retransmits);
}

TEST(DeterminismDigest, RepeatRunsStayBitIdenticalOnTheCalendarQueue) {
  // Repeat-stability on the new backend itself (chaos_soak's repeat leg).
  const StreamDigest a = run_stream(chaos_config(sim::Engine::QueueKind::calendar), 10);
  const StreamDigest b = run_stream(chaos_config(sim::Engine::QueueKind::calendar), 10);
  EXPECT_EQ(a, b);
}

// --- multi-core (PR 9) digests -------------------------------------------
//
// The work-stealing scheduler must not perturb the engine's deterministic
// contract: multi-core runs are repeat-stable and backend-independent, and
// single-core runs are bit-identical to the seed scheduler no matter which
// smp knobs are set (they all reduce to no-ops at one core).

/// The golden seed digest of chaos_config's 10-message stream, captured on
/// the PR 8 scheduler (one CPU per host). Any cores=1 run must reproduce
/// it exactly; a change here means the single-core fast path regressed.
constexpr std::int64_t kSeedElapsedPs = 108101894184;
constexpr std::uint64_t kSeedRetransmits = 5;

void expect_seed_digest(const StreamDigest& d) {
  EXPECT_EQ(d.order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(d.elapsed.ps(), kSeedElapsedPs);
  EXPECT_EQ(d.retransmits, kSeedRetransmits);
}

TEST(DeterminismDigest, SingleCoreChaosDigestIsBitIdenticalToTheSeed) {
  expect_seed_digest(run_stream(chaos_config(sim::Engine::QueueKind::calendar), 10));
  expect_seed_digest(run_stream(chaos_config(sim::Engine::QueueKind::legacy_map), 10));
}

TEST(DeterminismDigest, SingleCoreDigestIsIndependentOfSmpKnobs) {
  // At one core every smp knob is inert: no victims, no sibling kicks, no
  // migrations. (ProgressModel::hybrid is excluded — it slices long user
  // charges even on one core, by design.)
  for (const mts::StealPolicy steal :
       {mts::StealPolicy::none, mts::StealPolicy::seeded, mts::StealPolicy::ring}) {
    for (const mts::ProgressModel progress :
         {mts::ProgressModel::dedicated_core, mts::ProgressModel::on_demand}) {
      SCOPED_TRACE(std::string(to_string(steal)) + "/" + to_string(progress));
      ClusterConfig cfg = chaos_config(sim::Engine::QueueKind::calendar);
      cfg.cores = 1;
      cfg.steal = steal;
      cfg.progress = progress;
      expect_seed_digest(run_stream(cfg, 10));
    }
  }
}

TEST(DeterminismDigest, MultiCoreMatrixMatchesLegacyMapBitIdentically) {
  // P x cores sweep: both event-queue backends must agree bit-for-bit on
  // every multi-core configuration, exactly as they do on one core.
  for (const int procs : {4, 16}) {
    for (const int cores : {1, 2, 4}) {
      SCOPED_TRACE("procs=" + std::to_string(procs) +
                   " cores=" + std::to_string(cores));
      auto run = [&](sim::Engine::QueueKind queue) {
        ClusterConfig cfg = nynet_wan(procs);
        cfg.queue = queue;
        cfg.cores = cores;
        cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 100_ms};
        cfg.faults.seed = 99;
        cfg.faults.link_burst("sonet", TimePoint::origin() + 1_ms, 80_ms,
                              {.p_good_to_bad = 0.2, .p_bad_to_good = 0.2,
                               .loss_good = 0.0, .loss_bad = 0.9});
        return run_stream(cfg, 10);
      };
      const StreamDigest calendar = run(sim::Engine::QueueKind::calendar);
      const StreamDigest legacy = run(sim::Engine::QueueKind::legacy_map);
      EXPECT_EQ(calendar, legacy);
      EXPECT_EQ(calendar.order.size(), 10u);
    }
  }
}

TEST(DeterminismDigest, MultiCoreRunsAreRepeatStableUnderEveryProgressModel) {
  for (const mts::ProgressModel progress :
       {mts::ProgressModel::dedicated_core, mts::ProgressModel::on_demand,
        mts::ProgressModel::hybrid}) {
    SCOPED_TRACE(to_string(progress));
    auto run = [&] {
      ClusterConfig cfg = chaos_config(sim::Engine::QueueKind::calendar);
      cfg.cores = 4;
      cfg.progress = progress;
      return run_stream(cfg, 10);
    };
    const StreamDigest a = run();
    const StreamDigest b = run();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.order.size(), 10u);
  }
}

}  // namespace
}  // namespace ncs::cluster
