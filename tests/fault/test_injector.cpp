// FaultPlan text-form parser and the FaultInjector's engine wiring.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include "fault/plan.hpp"
#include "sim/engine.hpp"

namespace ncs::fault {
namespace {

using namespace ncs::literals;

TEST(FaultPlanParse, FullGrammarRoundTrips) {
  const auto result = FaultPlan::parse(R"(
# exercise every event kind
seed 48879
at 1s     link sonet down for 200ms
at 500ms  link sonet burst for 2s p_gb=0.05 p_bg=0.3 loss_good=0 loss_bad=0.9
at 2s     nic nic0 corrupt for 100ms p=0.01
at 1s     switch wan-switch0 port 2 down for 100ms
at 1.5s   host p1 pause for 50ms   # trailing comment
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const FaultPlan& plan = result.value();
  EXPECT_EQ(plan.seed, 48879u);
  ASSERT_EQ(plan.events.size(), 5u);

  EXPECT_EQ(plan.events[0].kind, FaultEvent::Kind::link_down);
  EXPECT_EQ(plan.events[0].target, "sonet");
  EXPECT_EQ(plan.events[0].begin, TimePoint::origin() + 1_sec);
  EXPECT_EQ(plan.events[0].duration, 200_ms);

  EXPECT_EQ(plan.events[1].kind, FaultEvent::Kind::link_burst);
  EXPECT_DOUBLE_EQ(plan.events[1].ge.p_good_to_bad, 0.05);
  EXPECT_DOUBLE_EQ(plan.events[1].ge.p_bad_to_good, 0.3);
  EXPECT_DOUBLE_EQ(plan.events[1].ge.loss_good, 0.0);
  EXPECT_DOUBLE_EQ(plan.events[1].ge.loss_bad, 0.9);

  EXPECT_EQ(plan.events[2].kind, FaultEvent::Kind::nic_corrupt);
  EXPECT_DOUBLE_EQ(plan.events[2].probability, 0.01);

  EXPECT_EQ(plan.events[3].kind, FaultEvent::Kind::port_down);
  EXPECT_EQ(plan.events[3].target, "wan-switch0");
  EXPECT_EQ(plan.events[3].port, 2);

  EXPECT_EQ(plan.events[4].kind, FaultEvent::Kind::host_pause);
  EXPECT_EQ(plan.events[4].target, "p1");
}

TEST(FaultPlanParse, MatchesTheBuilderSugar) {
  const auto parsed = FaultPlan::parse("at 10ms link wan down for 5ms\n");
  ASSERT_TRUE(parsed.is_ok());
  FaultPlan built;
  built.link_down("wan", TimePoint::origin() + 10_ms, 5_ms);
  ASSERT_EQ(parsed.value().events.size(), 1u);
  EXPECT_EQ(parsed.value().events[0].kind, built.events[0].kind);
  EXPECT_EQ(parsed.value().events[0].target, built.events[0].target);
  EXPECT_EQ(parsed.value().events[0].begin, built.events[0].begin);
  EXPECT_EQ(parsed.value().events[0].duration, built.events[0].duration);
}

TEST(FaultPlanParse, RejectsMalformedLines) {
  const char* bad[] = {
      "at link sonet down for 1ms",            // missing time
      "at 1s link sonet down",                 // missing "for <duration>"
      "at 1s link sonet down for 1parsec",     // bad duration unit
      "at 1s frobnicate sonet for 1ms",        // unknown event
      "at 1s nic nic0 corrupt for 1ms",        // corruption needs p=
      "at 1s nic nic0 corrupt for 1ms p=2",    // probability out of range
      "at 1s switch sw port -1 down for 1ms",  // bad port
      "seed banana",                           // bad seed
  };
  for (const char* text : bad) {
    const auto result = FaultPlan::parse(text);
    EXPECT_FALSE(result.is_ok()) << "accepted: " << text;
    EXPECT_EQ(result.status().code(), ErrorCode::invalid_argument);
  }
}

TEST(FaultInjector, LinkDownWindowFlipsBothDuplexDirections) {
  sim::Engine engine;
  LinkFault fwd, bwd;
  FaultInjector inj(engine);
  inj.attach_link("wan>", &fwd);
  inj.attach_link("wan<", &bwd);

  FaultPlan plan;
  plan.link_down("wan", TimePoint::origin() + 10_ms, 5_ms);
  inj.schedule(plan);
  EXPECT_EQ(inj.stats().events_scheduled, 1u);

  engine.run_until(TimePoint::origin() + 12_ms);
  EXPECT_TRUE(fwd.down());
  EXPECT_TRUE(bwd.down());
  engine.run();
  EXPECT_FALSE(fwd.down());
  EXPECT_FALSE(bwd.down());
  EXPECT_EQ(inj.stats().transitions_fired, 2u);  // down + up
}

TEST(FaultInjector, BurstWindowsGetDistinctSeedsPerDirection) {
  sim::Engine engine;
  LinkFault fwd, bwd;
  FaultInjector inj(engine);
  inj.attach_link("wan>", &fwd);
  inj.attach_link("wan<", &bwd);

  FaultPlan plan;
  plan.link_burst("wan", TimePoint::origin() + 1_ms, 10_ms,
                  {.p_good_to_bad = 0.5, .p_bad_to_good = 0.5,
                   .loss_good = 0.0, .loss_bad = 1.0});
  inj.schedule(plan);
  engine.run_until(TimePoint::origin() + 2_ms);
  ASSERT_TRUE(fwd.bursting());
  ASSERT_TRUE(bwd.bursting());
  std::vector<bool> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(fwd.should_drop());
    b.push_back(bwd.should_drop());
  }
  EXPECT_NE(a, b);  // independent chains
  engine.run();
  EXPECT_FALSE(fwd.bursting());
  EXPECT_FALSE(bwd.bursting());
}

TEST(FaultInjector, SchedulingIsDeterministicAcrossRuns) {
  // Same plan, two fresh engines: identical drop sequences frame-by-frame.
  std::vector<bool> runs[2];
  for (std::vector<bool>& drops : runs) {
    sim::Engine engine;
    LinkFault f;
    FaultInjector inj(engine);
    inj.attach_link("wan", &f);
    FaultPlan plan;
    plan.seed = 7;
    plan.link_burst("wan", TimePoint::origin(), 1_ms,
                    {.p_good_to_bad = 0.3, .p_bad_to_good = 0.3,
                     .loss_good = 0.05, .loss_bad = 0.95});
    inj.schedule(plan);
    engine.run_until(TimePoint::origin() + 500_us);
    for (int i = 0; i < 500; ++i) drops.push_back(f.should_drop());
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(FaultInjector, UnmatchedTargetsWarnAndCount) {
  sim::Engine engine;
  FaultInjector inj(engine);
  FaultPlan plan;
  plan.link_down("nosuch", TimePoint::origin(), 1_ms);
  plan.nic_corrupt("ghost", TimePoint::origin(), 1_ms, 0.5);
  inj.schedule(plan);
  engine.run();
  EXPECT_EQ(inj.stats().events_scheduled, 0u);
  EXPECT_EQ(inj.stats().unmatched_targets, 2u);
  EXPECT_EQ(inj.stats().transitions_fired, 0u);
}

TEST(FaultInjector, HostPauseFiresBothPauseAndResumeTransitions) {
  sim::Engine engine;
  HostFault host;
  TimePoint paused_until;
  host.set_pause_handler([&](TimePoint resume_at) { paused_until = resume_at; });
  FaultInjector inj(engine);
  inj.attach_host("p1", &host);

  FaultPlan plan;
  plan.host_pause("p1", TimePoint::origin() + 10_ms, 20_ms);
  inj.schedule(plan);
  EXPECT_EQ(inj.stats().events_scheduled, 1u);

  engine.run_until(TimePoint::origin() + 15_ms);
  EXPECT_EQ(paused_until, TimePoint::origin() + 30_ms);
  EXPECT_EQ(inj.stats().transitions_fired, 1u);  // pause
  // The end of the window fires a second transition (the "resume" instant
  // that marks the thaw on a chaos trace's fault track).
  engine.run();
  EXPECT_EQ(inj.stats().transitions_fired, 2u);  // pause + resume
}

TEST(FaultInjector, PlansAccumulateAcrossScheduleCalls) {
  sim::Engine engine;
  SwitchFault sw;
  FaultInjector inj(engine);
  inj.attach_switch("sw", &sw);
  FaultPlan first, second;
  first.port_down("sw", 0, TimePoint::origin() + 1_ms, 1_ms);
  second.port_down("sw", 1, TimePoint::origin() + 1_ms, 1_ms);
  inj.schedule(first);
  inj.schedule(second);
  engine.run_until(TimePoint::origin() + 1500_us);
  EXPECT_TRUE(sw.port_down(0));
  EXPECT_TRUE(sw.port_down(1));
  engine.run();
  EXPECT_EQ(inj.stats().events_scheduled, 2u);
  EXPECT_EQ(inj.stats().transitions_fired, 4u);
}

}  // namespace
}  // namespace ncs::fault
