#!/bin/sh
# Tier-1 test driver: the default (RelWithDebInfo) build's full ctest suite,
# then the same suite again in a Debug build with AddressSanitizer +
# UndefinedBehaviorSanitizer (which forces the ucontext fiber backend — see
# NCS_SANITIZE in the top-level CMakeLists).
#
# Usage: tests/run_tier1.sh [build-dir-prefix]   (default: build)
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
prefix=${1:-build}

run_suite() {
  dir=$1
  shift
  cmake -S "$root" -B "$dir" "$@"
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "=== tier 1: default build ==="
run_suite "$root/$prefix"

echo "=== tier 1: sanitized build (Debug, address,undefined) ==="
run_suite "$root/${prefix}-asan" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNCS_SANITIZE=address,undefined

echo "=== tier 1: all suites passed ==="
