// Profiler: lifecycle leg folding, duplicate/unknown stamp handling,
// incomplete-message accounting, the per-thread/per-host overlap folds,
// and an end-to-end profiled cluster run (report v2 + flow events).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/report.hpp"
#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace ncs::obs {
namespace {

using namespace ncs::literals;

TimePoint at(std::int64_t us) {
  return TimePoint::origin() + Duration::picoseconds(us * 1'000'000);
}

TEST(Profiler, FoldsLifecycleLegsIntoLayers) {
  Profiler p;
  const Profiler::MsgKey k{0, 1, 7};
  p.on_enqueue(k, at(0));
  p.on_dequeue(k, at(10));
  p.on_admit(k, at(15));
  p.on_handoff(k, at(40));
  p.on_deliver(k, at(100));
  EXPECT_EQ(p.completed(), 0u);
  EXPECT_EQ(p.incomplete(), 1u);
  p.on_wakeup(k, at(130));

  EXPECT_EQ(p.completed(), 1u);
  EXPECT_EQ(p.incomplete(), 0u);
  EXPECT_EQ(p.hist(Layer::send_queue).max(), (10_us).ps());
  EXPECT_EQ(p.hist(Layer::flow_control).max(), (5_us).ps());
  EXPECT_EQ(p.hist(Layer::transport).max(), (25_us).ps());
  EXPECT_EQ(p.hist(Layer::network).max(), (60_us).ps());
  EXPECT_EQ(p.hist(Layer::mailbox).max(), (30_us).ps());
  EXPECT_EQ(p.hist(Layer::end_to_end).max(), (130_us).ps());
  // The five legs partition end_to_end exactly.
  const std::int64_t legs = p.hist(Layer::send_queue).sum() +
                            p.hist(Layer::flow_control).sum() +
                            p.hist(Layer::transport).sum() + p.hist(Layer::network).sum() +
                            p.hist(Layer::mailbox).sum();
  EXPECT_EQ(legs, p.hist(Layer::end_to_end).sum());
}

TEST(Profiler, IgnoresUnknownKeysAndDuplicateStamps) {
  Profiler p;
  const Profiler::MsgKey k{0, 1, 1};
  p.on_dequeue(k, at(5));  // never enqueued: dropped
  p.on_wakeup(k, at(9));   // unknown: no completion
  EXPECT_EQ(p.completed(), 0u);
  EXPECT_EQ(p.incomplete(), 0u);

  p.on_enqueue(k, at(10));
  p.on_enqueue(k, at(99));  // seq collision: first stamp wins
  p.on_deliver(k, at(20));
  p.on_deliver(k, at(88));  // duplicate delivery: first stamp wins
  p.on_wakeup(k, at(30));
  EXPECT_EQ(p.completed(), 1u);
  EXPECT_EQ(p.hist(Layer::end_to_end).max(), (20_us).ps());
  EXPECT_EQ(p.hist(Layer::mailbox).max(), (10_us).ps());
}

TEST(Profiler, PartialLifecyclesFoldAvailableLegsOnly) {
  Profiler p;
  const Profiler::MsgKey k{2, 3, 9};
  // Local delivery path: no flow-control/transport stamps distinct from
  // enqueue; only enqueue -> deliver -> wakeup.
  p.on_enqueue(k, at(0));
  p.on_deliver(k, at(4));
  p.on_wakeup(k, at(6));
  EXPECT_EQ(p.completed(), 1u);
  EXPECT_EQ(p.hist(Layer::send_queue).count(), 0u);
  EXPECT_EQ(p.hist(Layer::mailbox).count(), 1u);
  EXPECT_EQ(p.hist(Layer::end_to_end).count(), 1u);
}

TEST(Profiler, RecordsAuxiliaryLayersDirectly) {
  Profiler p;
  p.record(Layer::fc_stall, 100_us);
  p.record(Layer::nic_sar, 7_us);
  EXPECT_EQ(p.hist(Layer::fc_stall).count(), 1u);
  EXPECT_EQ(p.hist(Layer::nic_sar).max(), (7_us).ps());
}

TEST(Profiler, RecordCollKeysPerAlgorithmHistograms) {
  Profiler p;
  p.record_coll("allreduce/ring", 40_us);
  p.record_coll("allreduce/ring", 60_us);
  p.record_coll("bcast/binomial_tree", 5_us);
  ASSERT_EQ(p.coll_hists().size(), 2u);
  EXPECT_EQ(p.coll_hists().at("allreduce/ring").count(), 2u);
  EXPECT_EQ(p.coll_hists().at("allreduce/ring").max(), (60_us).ps());
  EXPECT_EQ(p.coll_hists().at("bcast/binomial_tree").count(), 1u);

  JsonWriter w;
  w.begin_object();
  p.write_json(w);
  w.end_object();
  const std::string doc = std::move(w).str();
  EXPECT_NE(doc.find("\"coll\""), std::string::npos);
  EXPECT_NE(doc.find("\"allreduce/ring\""), std::string::npos);
}

TEST(Profiler, WriteJsonEmitsPopulatedLayersAndMessageCounts) {
  Profiler p;
  const Profiler::MsgKey k{0, 1, 2};
  p.on_enqueue(k, at(0));
  p.on_wakeup(k, at(50));
  p.on_enqueue({0, 1, 3}, at(60));  // stays in flight

  JsonWriter w;
  w.begin_object();
  p.write_json(w);
  w.end_object();
  const std::string doc = std::move(w).str();
  EXPECT_NE(doc.find("\"layers\""), std::string::npos);
  EXPECT_NE(doc.find("\"end_to_end\""), std::string::npos);
  EXPECT_EQ(doc.find("\"flow_control\""), std::string::npos);  // empty: omitted
  EXPECT_NE(doc.find("\"completed\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"incomplete\":1"), std::string::npos);
}

TEST(Profiler, BottleneckSummaryNamesTheDominantLayer) {
  Profiler p;
  EXPECT_EQ(p.bottleneck_summary(), "no completed messages profiled");
  const Profiler::MsgKey k{0, 1, 4};
  p.on_enqueue(k, at(0));
  p.on_dequeue(k, at(1));
  p.on_admit(k, at(2));
  p.on_handoff(k, at(3));
  p.on_deliver(k, at(90));  // network dominates
  p.on_wakeup(k, at(100));
  const std::string s = p.bottleneck_summary();
  EXPECT_NE(s.find("p99 end-to-end"), std::string::npos);
  EXPECT_NE(s.find("over 1 messages"), std::string::npos);
  EXPECT_NE(s.find("network 87%"), std::string::npos);
}

// --- Timeline folds ---------------------------------------------------------

TEST(OverlapFold, PerThreadTotals) {
  sim::Timeline tl;
  const int t0 = tl.add_track("p0/main");
  tl.transition(t0, at(0), sim::Activity::compute);
  tl.transition(t0, at(10), sim::Activity::communicate);
  tl.transition(t0, at(30), sim::Activity::idle);
  tl.finish(at(35));

  const auto threads = fold_threads(tl);
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].track, "p0/main");
  EXPECT_EQ(threads[0].activity(sim::Activity::compute), 10_us);
  EXPECT_EQ(threads[0].activity(sim::Activity::communicate), 20_us);
  EXPECT_EQ(threads[0].activity(sim::Activity::idle), 5_us);
  EXPECT_EQ(threads[0].span, 35_us);
}

TEST(OverlapFold, HostSweepMeasuresConcurrency) {
  sim::Timeline tl;
  // Two threads on p0: compute on [0,30), communicate on [10,20) — the
  // overlap window is [10,20). A second host p1 idles after one compute.
  const int a = tl.add_track("p0/compute0");
  const int b = tl.add_track("p0/ncs-send");
  const int c = tl.add_track("p1/main");
  tl.transition(a, at(0), sim::Activity::compute);
  tl.transition(b, at(10), sim::Activity::communicate);
  tl.transition(b, at(20), sim::Activity::idle);
  tl.transition(a, at(30), sim::Activity::idle);
  tl.transition(c, at(0), sim::Activity::compute);
  tl.transition(c, at(5), sim::Activity::idle);
  tl.finish(at(40));

  const auto hosts = fold_hosts(tl);
  ASSERT_EQ(hosts.size(), 2u);
  const HostUsage& p0 = hosts[0].host == "p0" ? hosts[0] : hosts[1];
  const HostUsage& p1 = hosts[0].host == "p0" ? hosts[1] : hosts[0];
  EXPECT_EQ(p0.host, "p0");
  EXPECT_EQ(p0.compute, 30_us);
  EXPECT_EQ(p0.communicate, 10_us);
  EXPECT_EQ(p0.overlapped, 10_us);
  EXPECT_DOUBLE_EQ(p0.overlap_ratio(), 1.0);
  EXPECT_EQ(p0.idle, 10_us);
  EXPECT_EQ(p0.span, 40_us);

  EXPECT_EQ(p1.host, "p1");
  EXPECT_EQ(p1.compute, 5_us);
  EXPECT_EQ(p1.communicate, 0_us);
  EXPECT_DOUBLE_EQ(p1.overlap_ratio(), 0.0);
  EXPECT_EQ(p1.overlapped, 0_us);
}

TEST(OverlapFold, TouchingIntervalsDoNotOverlap) {
  sim::Timeline tl;
  // compute [0,10) then communicate [10,20) on sibling threads: the shared
  // boundary at t=10 must not count as concurrency.
  const int a = tl.add_track("p0/t0");
  const int b = tl.add_track("p0/t1");
  tl.transition(a, at(0), sim::Activity::compute);
  tl.transition(a, at(10), sim::Activity::idle);
  tl.transition(b, at(10), sim::Activity::communicate);
  tl.transition(b, at(20), sim::Activity::idle);
  tl.finish(at(20));

  const auto hosts = fold_hosts(tl);
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0].overlapped, 0_us);
  EXPECT_EQ(hosts[0].compute, 10_us);
  EXPECT_EQ(hosts[0].communicate, 10_us);
}

// --- End-to-end: a profiled cluster run -------------------------------------

TEST(ProfiledRun, ReportV3AndFlowEventsFromRealTraffic) {
  using cluster::Cluster;
  cluster::ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.profile = true;
  Cluster c(cfg);
  c.enable_trace();
  c.init_ncs_hsm();

  constexpr int kMessages = 6;
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < kMessages; ++i)
          node.send(0, 0, 1, Bytes(2000, std::byte{1}));
      } else {
        for (int i = 0; i < kMessages; ++i)
          (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });

  ASSERT_NE(c.profiler(), nullptr);
  EXPECT_EQ(c.profiler()->completed(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(c.profiler()->incomplete(), 0u);
  EXPECT_EQ(c.profiler()->hist(Layer::end_to_end).count(),
            static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(c.profiler()->hist(Layer::nic_sar).count(), 0u);

  const std::string report = cluster::report_json(c);
  EXPECT_NE(report.find("\"schema\":\"ncs-run-report-v3\""), std::string::npos);
  EXPECT_NE(report.find("\"profile\""), std::string::npos);
  EXPECT_NE(report.find("\"end_to_end\""), std::string::npos);
  EXPECT_NE(report.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(report.find("\"p999_us\""), std::string::npos);
  EXPECT_NE(report.find("\"overlap_ratio\""), std::string::npos);
  EXPECT_NE(report.find("\"hosts\""), std::string::npos);
  EXPECT_NE(report.find("\"threads\""), std::string::npos);

  const std::string bottleneck = cluster::bottleneck_report(c);
  EXPECT_NE(bottleneck.find("p99 end-to-end"), std::string::npos);
  EXPECT_NE(bottleneck.find("end_to_end"), std::string::npos);
  EXPECT_NE(bottleneck.find("p0"), std::string::npos);

  // The trace carries one flow pair per data message, hex ids and the
  // receiver-side binding attribute included.
  const std::string trace = c.trace()->chrome_json();
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(trace.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(trace.find("\"id\":\"0x"), std::string::npos);
}

TEST(ProfiledRun, UnprofiledReportStaysV1) {
  using cluster::Cluster;
  Cluster c(cluster::sun_atm_lan(2));
  c.init_ncs_hsm();
  c.run([&](int rank) {
    if (rank == 0) c.node(0).send(0, 0, 1, Bytes(100, std::byte{1}));
    else (void)c.node(1).recv(0, 0, 0);
  });
  const std::string report = cluster::report_json(c);
  EXPECT_NE(report.find("\"schema\":\"ncs-run-report-v1\""), std::string::npos);
  EXPECT_EQ(report.find("\"profile\""), std::string::npos);
}

}  // namespace
}  // namespace ncs::obs
