// JsonWriter: container nesting, comma placement, escaping, number
// formats. (Moved out of test_metrics.cpp when the obs tests were split
// per module.)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/json.hpp"

namespace ncs::obs {
namespace {

TEST(JsonWriter, NestedContainersAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.field("a", 1);
  w.key("b").begin_array().value(1).value(2).end_array();
  w.key("c").begin_object().field("d", true).end_object();
  w.end_object();
  EXPECT_EQ(std::move(w).str(), R"({"a":1,"b":[1,2],"c":{"d":true}})");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");

  JsonWriter w;
  w.begin_object().field("k\n", "v\"").end_object();
  EXPECT_EQ(std::move(w).str(), "{\"k\\n\":\"v\\\"\"}");
}

TEST(JsonWriter, NumberFormats) {
  JsonWriter w;
  w.begin_array();
  w.value(std::int64_t{-7});
  w.value(std::uint64_t{18446744073709551615ull});
  w.value(0.5);
  w.value(false);
  w.end_array();
  EXPECT_EQ(std::move(w).str(), "[-7,18446744073709551615,0.5,false]");
}

TEST(JsonWriter, DoublesRoundTrip) {
  JsonWriter w;
  w.begin_array().value(0.1).value(1e-9).value(12345678.75).end_array();
  const std::string doc = std::move(w).str();
  // Shortest-round-trip formatting: parsing the text back yields the bits.
  double a = 0, b = 0, c = 0;
  ASSERT_EQ(std::sscanf(doc.c_str(), "[%lf,%lf,%lf]", &a, &b, &c), 3);
  EXPECT_EQ(a, 0.1);
  EXPECT_EQ(b, 1e-9);
  EXPECT_EQ(c, 12345678.75);
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("arr").begin_array().end_array();
  w.key("obj").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(std::move(w).str(), R"({"arr":[],"obj":{}})");
}

TEST(JsonWriter, LvalueStrPeeksWithoutFinishing) {
  JsonWriter w;
  w.begin_array().value(1);
  EXPECT_EQ(w.str(), "[1");  // in-progress view
  w.end_array();
  EXPECT_EQ(std::move(w).str(), "[1]");
}

}  // namespace
}  // namespace ncs::obs
