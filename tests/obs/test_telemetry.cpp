// Telemetry plane: SLO grading semantics, flight-recorder ring/dump-once
// behavior, the sampler's series determinism across event-queue backends,
// and the fault-triggered black-box dump from a real blackout run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/report.hpp"
#include "obs/json.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"

namespace ncs::obs {
namespace {

using namespace ncs::literals;

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::origin() + Duration::milliseconds(static_cast<double>(ms));
}

// --- SloEngine --------------------------------------------------------------

TEST(SloEngine, LatencyObjectiveGradesTheWindow) {
  WindowedSketch sketch(Duration::milliseconds(100), 10);
  SloEngine e;
  SloSpec spec;
  spec.name = "p90_under_1us";
  spec.sketch = "x";
  spec.threshold = 1_us;
  spec.target = 0.9;
  e.add_latency(spec, &sketch);

  // An empty window is vacuously compliant but neither spends nor earns
  // budget — it must not count as a graded window.
  e.evaluate(at_ms(0));
  EXPECT_EQ(e.states()[0].windows, 0u);
  EXPECT_EQ(e.states()[0].last_compliance, 1.0);

  // 9 fast + 1 slow = 90% compliant: exactly on target, burn exactly 1.
  for (int i = 0; i < 9; ++i) sketch.record(at_ms(1), (100_ns).ps());
  sketch.record(at_ms(1), (50_us).ps());
  e.evaluate(at_ms(1));
  const SloEngine::State& s = e.states()[0];
  EXPECT_EQ(s.windows, 1u);
  EXPECT_EQ(s.compliant_windows, 1u);
  EXPECT_DOUBLE_EQ(s.last_compliance, 0.9);
  EXPECT_DOUBLE_EQ(s.last_burn, 1.0);
  EXPECT_EQ(s.hard_breaches, 0u);
}

TEST(SloEngine, DeliveryObjectiveGradesPerWindowDeltas) {
  std::uint64_t completions = 0;
  std::uint64_t failures = 0;
  SloEngine e;
  SloSpec spec;
  spec.name = "delivery";
  spec.kind = SloKind::delivery;
  spec.target = 0.5;
  e.add_delivery(spec, [&] { return completions; }, [&] { return failures; });

  completions = 100;
  e.evaluate(at_ms(0));
  EXPECT_DOUBLE_EQ(e.states()[0].last_compliance, 1.0);

  // Next window: 10 more completions, 30 failures -> 25% of offered load
  // delivered. Earlier totals must not dilute the window.
  completions = 110;
  failures = 30;
  e.evaluate(at_ms(1));
  const SloEngine::State& s = e.states()[0];
  EXPECT_DOUBLE_EQ(s.last_compliance, 0.25);
  EXPECT_EQ(s.windows, 2u);
  EXPECT_EQ(s.breaches, 1u);
}

TEST(SloEngine, HardBreachFiresTheHookPerBreachWindow) {
  WindowedSketch sketch(Duration::milliseconds(100), 10);
  SloEngine e;
  SloSpec spec;
  spec.name = "strict";
  spec.sketch = "x";
  spec.threshold = 1_us;
  spec.target = 0.9;
  spec.hard_burn = 5.0;
  e.add_latency(spec, &sketch);
  int fired = 0;
  TimePoint fired_at;
  e.set_hard_breach_hook([&](const SloSpec& sp, double burn, TimePoint t) {
    EXPECT_EQ(sp.name, "strict");
    EXPECT_GE(burn, 5.0);
    fired_at = t;
    ++fired;
  });

  // Every sample over threshold: compliance 0, burn 10 >= hard_burn 5.
  for (int i = 0; i < 4; ++i) sketch.record(at_ms(2), (50_us).ps());
  e.evaluate(at_ms(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(fired_at, at_ms(2));
  EXPECT_EQ(e.states()[0].hard_breaches, 1u);
  EXPECT_EQ(e.total_hard_breaches(), 1u);
}

// --- FlightRecorder ---------------------------------------------------------

TEST(FlightRecorder, RingsOverwriteOldestAndSnapshotSorts) {
  FlightRecorder fr(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i)
    fr.note(0, FlightRecorder::EntryKind::stamp, at_ms(i), "e2e", 1, i);
  fr.note(-1, FlightRecorder::EntryKind::fault, at_ms(3), "link-down sonet");
  EXPECT_EQ(fr.entries_recorded(), 11u);

  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 5u);  // 4 newest stamps + the fabric entry
  // The fabric ring's t=3ms fault survives even though host 0's ring has
  // long since evicted its own t=3ms stamp — and the merge is time-sorted.
  EXPECT_EQ(snap.front().t_ps, at_ms(3).ps());
  EXPECT_EQ(snap.front().host, -1);
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LE(snap[i - 1].t_ps, snap[i].t_ps);
  EXPECT_EQ(snap.back().value, 9);
}

TEST(FlightRecorder, FirstTriggerDumpsOnceLaterTriggersOnlyCount) {
  const std::string path = "test_recorder_dump.json";
  std::remove(path.c_str());
  FlightRecorder fr(8);
  fr.arm(path);
  fr.note(-1, FlightRecorder::EntryKind::fault, at_ms(1), "link-down sonet");
  fr.trigger(2, FlightRecorder::EntryKind::exception, at_ms(5), "recv_timeout", 0);
  fr.trigger(3, FlightRecorder::EntryKind::exception, at_ms(6), "recv_timeout", 0);
  EXPECT_EQ(fr.triggers(), 2u);
  EXPECT_EQ(fr.dumps(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  // The dump is the *first* failure's context: schema, trigger metadata,
  // and the fault instant that preceded it.
  EXPECT_NE(doc.find("ncs-flight-recorder-v1"), std::string::npos);
  EXPECT_NE(doc.find("recv_timeout"), std::string::npos);
  EXPECT_NE(doc.find("link-down sonet"), std::string::npos);
  std::remove(path.c_str());
}

// --- The sampler over a real cluster ----------------------------------------

cluster::ClusterConfig telemetry_lan_config(sim::Engine::QueueKind queue) {
  cluster::ClusterConfig cfg = cluster::sun_atm_lan(2);
  cfg.queue = queue;
  cfg.telemetry = true;
  cfg.telemetry_cfg.period = 100_us;  // LAN runs are short: tick densely
  cfg.telemetry_cfg.window = 1_ms;
  cfg.telemetry_cfg.subwindows = 10;
  SloSpec slo;
  slo.name = "e2e_p99_under_10ms";
  slo.sketch = "mps/e2e";
  slo.threshold = 10_ms;
  slo.target = 0.99;
  cfg.slos.push_back(slo);
  return cfg;
}

std::string run_telemetry_json(sim::Engine::QueueKind queue) {
  cluster::Cluster c(telemetry_lan_config(queue));
  c.init_ncs_hsm();
  constexpr int kMessages = 24;
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < kMessages; ++i)
          node.send(0, 0, 1, Bytes(2000, std::byte{1}));
      } else {
        for (int i = 0; i < kMessages; ++i)
          (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });

  const TelemetrySampler* ts = c.telemetry();
  EXPECT_NE(ts, nullptr);
  EXPECT_GT(ts->ticks(), 0u);
  EXPECT_NE(ts->sketch_series("mps/e2e"), nullptr);
  EXPECT_FALSE(ts->sketch_series("mps/e2e")->empty());
  JsonWriter w;
  w.begin_object();
  ts->write_json(w);
  w.end_object();
  return std::move(w).str();
}

TEST(TelemetryRun, SeriesBitIdenticalAcrossQueueBackends) {
  // The sampler only reads module state at instants both conforming
  // backends agree on, so the full telemetry document — every timeseries
  // point, every gauge, every SLO grade — must match byte for byte.
  const std::string calendar =
      run_telemetry_json(sim::Engine::QueueKind::calendar);
  const std::string legacy =
      run_telemetry_json(sim::Engine::QueueKind::legacy_map);
  EXPECT_EQ(calendar, legacy);
  EXPECT_NE(calendar.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(calendar.find("\"mps/e2e\""), std::string::npos);
  EXPECT_NE(calendar.find("\"slo\""), std::string::npos);
  EXPECT_NE(calendar.find("\"e2e_p99_under_10ms\""), std::string::npos);
}

TEST(TelemetryRun, ReportGainsTelemetrySectionAndStaysV3) {
  cluster::Cluster c(telemetry_lan_config(sim::Engine::kDefaultQueue));
  c.init_ncs_hsm();
  c.run([&](int rank) {
    if (rank == 0) c.node(0).send(0, 0, 1, Bytes(500, std::byte{2}));
    else (void)c.node(1).recv(0, 0, 0);
  });
  const std::string report = cluster::report_json(c);
  EXPECT_NE(report.find("\"schema\":\"ncs-run-report-v3\""), std::string::npos);
  EXPECT_NE(report.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(report.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(report.find("\"p999_us\""), std::string::npos);
}

TEST(TelemetryRun, BlackoutAutoDumpsTheFaultInstant) {
  const std::string path = "test_blackout_recorder.json";
  std::remove(path.c_str());
  cluster::ClusterConfig cfg = cluster::nynet_wan(2);
  cfg.ncs.recv_timeout = 200_ms;  // EC=none: timeouts are the only escape
  cfg.faults.link_down("sonet", TimePoint::origin(), 10_sec);
  cfg.recorder_path = path;  // arming alone enables the plane

  cluster::Cluster c(cfg);
  c.init_ncs_hsm();
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        node.send(0, 0, 1, Bytes(1500, std::byte{1}));
      } else {
        try {
          (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
        } catch (const mps::NcsException&) {
        }
      }
    });
    node.host().join(node.user_thread(t));
  });

  ASSERT_NE(c.recorder(), nullptr);
  EXPECT_GE(c.recorder()->triggers(), 1u);
  EXPECT_EQ(c.recorder()->dumps(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("ncs-flight-recorder-v1"), std::string::npos);
  EXPECT_NE(doc.find("link-down sonet"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ncs::obs
