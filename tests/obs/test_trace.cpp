// TraceLog: track dedup, Chrome JSON emission, flow events, timeline
// import, file output. (Span/instant/counter cases moved out of
// test_metrics.cpp when the obs tests were split per module.)
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace ncs::obs {
namespace {

using namespace ncs::literals;

TEST(TraceLog, TracksDedupeByName) {
  TraceLog log;
  const int a = log.track("p0/send");
  const int b = log.track("p0/recv");
  const int a2 = log.track("p0/send");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(log.track_count(), 2);
  EXPECT_EQ(log.track_name(a), "p0/send");
}

TEST(TraceLog, ChromeJsonCarriesEventsAndTrackNames) {
  TraceLog log;
  const int t = log.track("p0/nic");
  log.complete(t, "tx 4000B", "nic", TimePoint::origin() + 1_us, 3_us);
  log.instant(t, "rx-error", "nic", TimePoint::origin() + 5_us);
  log.counter("backlog", TimePoint::origin() + 6_us, 2.0);
  EXPECT_EQ(log.event_count(), 3u);

  const std::string doc = log.chrome_json();
  EXPECT_EQ(doc.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);  // track metadata
  EXPECT_NE(doc.find("\"p0/nic\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"tx 4000B\""), std::string::npos);
  // Timestamps are microseconds: the span starts at 1us and lasts 3us.
  EXPECT_NE(doc.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":3"), std::string::npos);
}

TEST(TraceLog, FlowEventsPairByIdAcrossTracks) {
  TraceLog log;
  const int send = log.track("p0/mps");
  const int recv = log.track("p1/mps");
  const std::uint64_t id = msg_flow_id(0, 1, 7);
  log.complete(send, "send->p1", "mps", TimePoint::origin() + 1_us, 2_us);
  log.flow_start(send, "msg", "flow", TimePoint::origin() + 2_us, id);
  log.complete(recv, "recv p0", "mps", TimePoint::origin() + 4_us, 2_us);
  log.flow_end(recv, "msg", "flow", TimePoint::origin() + 5_us, id);

  const std::string doc = log.chrome_json();
  EXPECT_NE(doc.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"f\""), std::string::npos);
  // Binding point "e" attaches the arrow end to the enclosing slice.
  EXPECT_NE(doc.find("\"bp\":\"e\""), std::string::npos);
  // Ids are emitted as hex strings so 64-bit values survive JS doubles;
  // both halves of the pair carry the same id.
  char hex[32];
  std::snprintf(hex, sizeof hex, "\"id\":\"0x%llx\"",
                static_cast<unsigned long long>(id));
  const auto first = doc.find(hex);
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(doc.find(hex, first + 1), std::string::npos);
}

TEST(TraceLog, MsgFlowIdIsStableAndDistinct) {
  EXPECT_EQ(msg_flow_id(1, 2, 3), msg_flow_id(1, 2, 3));
  EXPECT_NE(msg_flow_id(1, 2, 3), msg_flow_id(2, 1, 3));
  EXPECT_NE(msg_flow_id(1, 2, 3), msg_flow_id(1, 2, 4));
  EXPECT_NE(msg_flow_id(0, 1, 0), msg_flow_id(0, 2, 0));
}

TEST(TraceLog, ImportsTimelineIntervalsAsSpans) {
  sim::Timeline tl;
  const int track = tl.add_track("h0/t0");
  tl.transition(track, TimePoint::origin(), sim::Activity::compute);
  tl.transition(track, TimePoint::origin() + 10_us, sim::Activity::idle);
  tl.finish(TimePoint::origin() + 15_us);

  TraceLog log;
  log.import_timeline(tl);
  EXPECT_GE(log.event_count(), 2u);
  const std::string doc = log.chrome_json();
  EXPECT_NE(doc.find("\"compute\""), std::string::npos);
  EXPECT_NE(doc.find("\"h0/t0\""), std::string::npos);
}

TEST(TraceLog, WriteFileRoundTripsDocument) {
  TraceLog log;
  log.instant(log.track("t"), "mark", "test", TimePoint::origin() + 1_us);
  const std::string path = ::testing::TempDir() + "ncs_test_trace.json";
  ASSERT_TRUE(log.write_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), log.chrome_json());
  std::remove(path.c_str());

  EXPECT_FALSE(log.write_file("/nonexistent-dir/x/y.json"));
}

}  // namespace
}  // namespace ncs::obs
