// Histogram: bucket mapping, bounded relative error, exact scalar stats,
// quantile clamping, JSON emission.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/hist.hpp"
#include "obs/json.hpp"

namespace ncs::obs {
namespace {

using namespace ncs::literals;

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.quantile(0.99), 0);
}

TEST(Histogram, ExactScalarStats) {
  Histogram h;
  for (const std::int64_t v : {5, 1000, 77, 123456789, 5}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 123456789);
  EXPECT_EQ(h.sum(), 5 + 1000 + 77 + 123456789 + 5);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 5.0);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(std::int64_t{-42});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.sum(), 0);
}

TEST(Histogram, BucketMappingIsMonotoneAndConsistent) {
  // Small values are exact (one bucket per value).
  for (std::int64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::bucket_of(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::bucket_top(static_cast<int>(v)), v);
  }
  // Every bucket top maps back to its own bucket, and tops are strictly
  // increasing — together these pin down the bucket boundaries.
  std::int64_t prev_top = -1;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const std::int64_t top = Histogram::bucket_top(b);
    EXPECT_GT(top, prev_top);
    EXPECT_EQ(Histogram::bucket_of(top), b);
    prev_top = top;
  }
  // Values one past a bucket top land in the next bucket.
  for (int b = 0; b < 200; ++b)
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_top(b) + 1), b + 1);
}

TEST(Histogram, QuantileRelativeErrorBounded) {
  // A geometric sweep across many octaves: each single-value histogram's
  // p50 must be within 1/16 of the true value (and never below it, since
  // quantiles report bucket upper bounds clamped to max).
  for (std::int64_t v = 1; v < (std::int64_t{1} << 40); v = v * 7 + 3) {
    Histogram h;
    h.record(v);
    const std::int64_t q = h.quantile(0.5);
    EXPECT_EQ(q, v);  // single sample: clamped to exact [min, max]
  }
  // Multi-sample: the p50 representative stays within one sub-bucket.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(std::int64_t{1000000} + i);
  const double err =
      static_cast<double>(h.quantile(0.5) - 1000000) / 1000000.0;
  EXPECT_GE(err, 0.0 - 1.0 / Histogram::kSub);
  EXPECT_LE(err, 1.0 / Histogram::kSub);
}

TEST(Histogram, QuantilesOrderedAndClamped) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(std::int64_t{i} * 1000);
  // q=0 is the lowest sample's bucket top (>= min, within one sub-bucket);
  // q=1 clamps to the exact max.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(static_cast<double>(h.quantile(0.0)),
            static_cast<double>(h.min()) * (1.0 + 1.0 / Histogram::kSub));
  EXPECT_EQ(h.quantile(1.0), h.max());
  std::int64_t prev = 0;
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    const std::int64_t v = h.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // The median of 1000..100000 should be near 50000 (within a sub-bucket).
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50000.0,
              50000.0 / Histogram::kSub + 1000.0);
}

TEST(Histogram, P999IsolatesTheTailOutlier) {
  // Nine samples of 10 and a single 1,000,000 outlier: the p99.9 rank
  // lands on the outlier and must report it exactly (bucket top clamped
  // to the true max), while the median stays with the bulk. This is the
  // regression the telemetry plane's tail gates depend on — a p99.9 that
  // rounded the outlier away would pass every SLO it should fail.
  Histogram h;
  for (int i = 0; i < 9; ++i) h.record(std::int64_t{10});
  h.record(std::int64_t{1000000});
  EXPECT_EQ(h.quantile(0.5), 10);
  EXPECT_EQ(h.quantile(0.999), 1000000);
  EXPECT_EQ(h.quantile(1.0), 1000000);
  // With the outlier diluted below the p99.9 rank it must disappear again.
  Histogram big;
  for (int i = 0; i < 9999; ++i) big.record(std::int64_t{10});
  big.record(std::int64_t{1000000});
  EXPECT_EQ(big.quantile(0.999), 10);
  EXPECT_EQ(big.quantile(1.0), 1000000);
}

TEST(Histogram, RecordsDurations) {
  Histogram h;
  h.record(3_us);
  h.record(5_ms);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), (3_us).ps());
  EXPECT_EQ(h.max(), (5_ms).ps());
}

TEST(Histogram, WriteJsonEmitsMicrosecondFields) {
  Histogram h;
  h.record(10_us);
  h.record(20_us);
  JsonWriter w;
  w.begin_object();
  h.write_json(w);
  w.end_object();
  const std::string doc = std::move(w).str();
  EXPECT_NE(doc.find("\"count\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"min_us\":10"), std::string::npos);
  EXPECT_NE(doc.find("\"max_us\":20"), std::string::npos);
  EXPECT_NE(doc.find("\"p50_us\":"), std::string::npos);
  EXPECT_NE(doc.find("\"p90_us\":"), std::string::npos);
  EXPECT_NE(doc.find("\"p99_us\":"), std::string::npos);
  EXPECT_NE(doc.find("\"mean_us\":15"), std::string::npos);
  EXPECT_NE(doc.find("\"total_sec\":"), std::string::npos);
}

}  // namespace
}  // namespace ncs::obs
