// WindowedSketch: absolute-time slot alignment, sliding-window merge,
// idle expiry, cumulative totals, and bit-identical determinism.
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/sketch.hpp"

namespace ncs::obs {
namespace {

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::origin() + Duration::milliseconds(static_cast<double>(ms));
}

TEST(WindowedSketch, GeometryFromConfig) {
  WindowedSketch s(Duration::milliseconds(100), 10);
  EXPECT_EQ(s.n_sub(), 10);
  EXPECT_EQ(s.subwindow(), Duration::milliseconds(10));
  EXPECT_EQ(s.window(), Duration::milliseconds(100));
  EXPECT_EQ(s.rotations(), 0u);
  EXPECT_EQ(s.window_hist().count(), 0u);
}

TEST(WindowedSketch, BoundariesAlignToAbsoluteTimeNotFirstSample) {
  // First sample at 7 ms, second at 12 ms: under one sub-window apart,
  // but they straddle the absolute 10 ms boundary, so the ring rotates.
  // This is what makes the rotation schedule a pure function of
  // timestamps — and the series deterministic across runs.
  WindowedSketch s(Duration::milliseconds(100), 10);
  s.record(at_ms(7), 1);
  EXPECT_EQ(s.rotations(), 0u);
  s.record(at_ms(12), 2);
  EXPECT_EQ(s.rotations(), 1u);
  EXPECT_EQ(s.window_hist().count(), 2u);
}

TEST(WindowedSketch, WindowMergeCoversExactlyTheLastWindow) {
  WindowedSketch s(Duration::milliseconds(100), 10);
  for (int ms = 0; ms < 200; ms += 10) s.record(at_ms(ms), ms);
  // At t=190 the live slots cover [100 ms, 200 ms): ten samples, the
  // first ten (0..90) aged out — while the cumulative histogram kept
  // everything.
  const Histogram w = s.window_hist();
  EXPECT_EQ(w.count(), 10u);
  EXPECT_EQ(w.min(), 100);
  EXPECT_EQ(w.max(), 190);
  EXPECT_EQ(s.total().count(), 20u);
  EXPECT_EQ(s.total().min(), 0);
  EXPECT_EQ(s.total().max(), 190);
}

TEST(WindowedSketch, SlidingWindowForgetsAnOldOutlier) {
  // A giant early sample must stop dominating the window p99 once the
  // window slides past it — the whole point of windowed tail tracking.
  WindowedSketch s(Duration::milliseconds(100), 10);
  s.record(at_ms(0), 1'000'000);
  for (int ms = 10; ms <= 90; ms += 10) s.record(at_ms(ms), 10);
  EXPECT_EQ(s.window_hist().quantile(0.99), 1'000'000);
  for (int ms = 100; ms <= 190; ms += 10) s.record(at_ms(ms), 10);
  EXPECT_EQ(s.window_hist().quantile(0.99), 10);
  EXPECT_EQ(s.total().max(), 1'000'000);  // the run summary still knows
}

TEST(WindowedSketch, AdvanceAgesWindowsOutWhileIdle) {
  WindowedSketch s(Duration::milliseconds(100), 10);
  s.record(at_ms(0), 42);
  s.record(at_ms(5), 43);
  // An idle gap longer than the whole window expires every slot in one
  // clear — the sampler calls advance_to every tick so quiet phases
  // report empty windows, not stale tails.
  s.advance_to(at_ms(1000));
  EXPECT_EQ(s.window_hist().count(), 0u);
  EXPECT_EQ(s.total().count(), 2u);
}

TEST(WindowedSketch, OlderTimestampLandsInCurrentSlot) {
  // Engine order is non-decreasing; a backdated timestamp must neither
  // rotate backwards nor crash — it lands in the current slot.
  WindowedSketch s(Duration::milliseconds(100), 10);
  s.record(at_ms(50), 1);
  s.record(at_ms(49), 2);
  EXPECT_EQ(s.rotations(), 0u);
  EXPECT_EQ(s.window_hist().count(), 2u);
}

TEST(WindowedSketch, IdenticalFeedsProduceBitIdenticalState) {
  WindowedSketch a(Duration::milliseconds(100), 10);
  WindowedSketch b(Duration::milliseconds(100), 10);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;  // splitmix-style feed
  std::int64_t t_ps = 0;
  for (int i = 0; i < 5000; ++i) {
    x ^= x >> 12;
    x *= 0x2545F4914F6CDD1Dull;
    x ^= x << 25;
    t_ps += static_cast<std::int64_t>(x % 200'000'000);  // 0..200 us steps
    const auto v = static_cast<std::int64_t>(x % 50'000'000);
    const TimePoint t = TimePoint::origin() + Duration::picoseconds(t_ps);
    a.record(t, v);
    b.record(t, v);
    if (i % 500 == 0) {
      const Histogram wa = a.window_hist();
      const Histogram wb = b.window_hist();
      ASSERT_EQ(wa.count(), wb.count());
      ASSERT_EQ(wa.quantile(0.5), wb.quantile(0.5));
      ASSERT_EQ(wa.quantile(0.99), wb.quantile(0.99));
      ASSERT_EQ(wa.quantile(0.999), wb.quantile(0.999));
      ASSERT_EQ(a.rotations(), b.rotations());
    }
  }
  EXPECT_EQ(a.total().count(), 5000u);
  EXPECT_EQ(a.total().sum(), b.total().sum());
}

}  // namespace
}  // namespace ncs::obs
