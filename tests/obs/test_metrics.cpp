// Observability layer: the metrics registry — and the invariant the
// registry design rests on: registry totals equal the legacy per-module
// stats structs, because the registry *reads* those structs rather than
// counting separately. (The JSON writer and trace log have their own
// suites in test_json.cpp / test_trace.cpp.)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "atm/network.hpp"
#include "cluster/cluster.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ncs::obs {
namespace {

using namespace ncs::literals;

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, ReadsLiveFieldsAtSnapshotTime) {
  std::uint64_t count = 3;
  Duration busy = 250_ms;
  MetricsRegistry reg;
  reg.counter("p0/x/count", &count);
  reg.duration("p0/x/busy", &busy);
  reg.gauge("p0/x/depth", [] { return 1.5; });

  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("p0/x/count"));
  EXPECT_FALSE(reg.contains("p0/x/missing"));
  EXPECT_EQ(reg.counter_value("p0/x/count"), 3u);
  EXPECT_DOUBLE_EQ(reg.value("p0/x/busy"), 0.25);
  EXPECT_DOUBLE_EQ(reg.value("p0/x/depth"), 1.5);

  count = 10;  // pull model: the registry sees the module's later updates
  busy = busy + 750_ms;
  EXPECT_EQ(reg.counter_value("p0/x/count"), 10u);
  EXPECT_DOUBLE_EQ(reg.value("p0/x/busy"), 1.0);
}

TEST(MetricsRegistry, SnapshotIsSortedByKey) {
  MetricsRegistry reg;
  reg.counter("b", [] { return std::uint64_t{2}; });
  reg.counter("a", [] { return std::uint64_t{1}; });
  reg.counter("c", [] { return std::uint64_t{3}; });
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].key, "a");
  EXPECT_EQ(samples[1].key, "b");
  EXPECT_EQ(samples[2].key, "c");
  EXPECT_EQ(samples[1].kind, MetricKind::counter);
  EXPECT_DOUBLE_EQ(samples[2].value, 3.0);
}

TEST(MetricsRegistry, JsonEmbedsUnderMetricsKey) {
  MetricsRegistry reg;
  std::uint64_t n = 42;
  reg.counter("p0/mod/n", &n);
  const std::string doc = reg.to_json();
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  EXPECT_NE(doc.find("\"p0/mod/n\":42"), std::string::npos);
}

// --- Registry vs legacy stats on a real run ---------------------------------

TEST(ClusterMetrics, RegistryTotalsEqualLegacyStats) {
  using cluster::Cluster;
  cluster::ClusterConfig cfg = cluster::sun_atm_lan(2);
  Cluster c(cfg);
  c.init_ncs_hsm();

  constexpr int kMessages = 8;
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < kMessages; ++i)
          node.send(0, 0, 1, Bytes(4000, std::byte{1}));
      } else {
        for (int i = 0; i < kMessages; ++i) (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });

  MetricsRegistry& reg = c.metrics();
  for (int r = 0; r < 2; ++r) {
    const std::string p = "p" + std::to_string(r);
    const mps::Node::Stats& ns = c.node(r).stats();
    EXPECT_EQ(reg.counter_value(p + "/mps/sends"), ns.sends);
    EXPECT_EQ(reg.counter_value(p + "/mps/recvs"), ns.recvs);
    EXPECT_EQ(reg.counter_value(p + "/mps/bytes_sent"), ns.bytes_sent);
    EXPECT_EQ(reg.counter_value(p + "/mps/bytes_received"), ns.bytes_received);
    EXPECT_EQ(reg.counter_value(p + "/mps/flow/window_stalls"),
              c.node(r).flow_control().stats().window_stalls);
    EXPECT_EQ(reg.counter_value(p + "/mps/ec/retransmits"),
              c.node(r).error_control().stats().retransmits);
    EXPECT_EQ(reg.counter_value(p + "/mts/dispatches"), c.host(r).stats().dispatches);
    EXPECT_EQ(reg.counter_value(p + "/nic/tx_cells"), c.atm_fabric()->nic(r).stats().tx_cells);
  }
  EXPECT_EQ(reg.counter_value("p0/mps/sends"), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(reg.counter_value("p1/mps/recvs"), static_cast<std::uint64_t>(kMessages));

  // The snapshot is one coherent document: every key valued, JSON embeds.
  const auto samples = reg.snapshot();
  EXPECT_EQ(samples.size(), reg.size());
  const std::string doc = reg.to_json();
  EXPECT_NE(doc.find("\"p0/mps/sends\""), std::string::npos);
}

}  // namespace
}  // namespace ncs::obs
