#include "atm/aal34.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ncs::atm::aal34 {
namespace {

Bytes random_payload(std::size_t n, std::uint64_t seed = 7) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next_u64() & 0xFF);
  return b;
}

TEST(Aal34, SegmentTypes) {
  // Small message fits one cell -> SSM encoded; larger -> BOM/COM/EOM.
  const auto small = segment(VcId{0, 1}, random_payload(20));
  EXPECT_EQ(small.size(), 1u);

  const auto big = segment(VcId{0, 1}, random_payload(200));
  EXPECT_GE(big.size(), 3u);
}

class Aal34SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Aal34SizeSweep, RoundTripPreservesPayload) {
  const Bytes payload = random_payload(GetParam(), GetParam() * 3 + 1);
  Reassembler r;
  std::optional<Result<Bytes>> out;
  for (const auto& c : segment(VcId{0, 5}, payload, /*mid=*/9, /*btag=*/3)) out = r.push(c);
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->is_ok()) << out->status().to_string();
  EXPECT_EQ(out->value(), payload);
}

INSTANTIATE_TEST_SUITE_P(BoundarySizes, Aal34SizeSweep,
                         ::testing::Values(0, 1, 35, 36, 37, 43, 44, 45, 87, 88, 200, 4096,
                                           65527));

TEST(Aal34, MoreCellsThanAal5) {
  // 44 data bytes/cell vs AAL5's 48: AAL3/4 always needs at least as many.
  for (std::size_t n : {100u, 1000u, 9000u}) {
    EXPECT_GE(cell_count(n), (n + 47) / 48);
    EXPECT_GT(cell_count(n), n / 48);
  }
}

TEST(Aal34, PerCellCrcDetectsCorruption) {
  auto cells = segment(VcId{0, 1}, random_payload(300));
  cells[1].payload[20] ^= std::byte{0x40};
  Reassembler r;
  std::optional<Result<Bytes>> out;
  for (const auto& c : cells) {
    out = r.push(c);
    if (out.has_value() && !out->is_ok()) break;
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->is_ok());
  EXPECT_EQ(out->status().code(), ErrorCode::data_corruption);
}

TEST(Aal34, SequenceGapDetected) {
  const auto cells = segment(VcId{0, 1}, random_payload(300));
  ASSERT_GE(cells.size(), 4u);
  Reassembler r;
  (void)r.push(cells[0]);
  const auto out = r.push(cells[2]);  // skip cells[1]
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->is_ok());
}

TEST(Aal34, ComWithoutBomRejected) {
  const auto cells = segment(VcId{0, 1}, random_payload(300));
  Reassembler r;
  const auto out = r.push(cells[1]);  // COM first
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->is_ok());
}

TEST(Aal34, BackToBackMessagesWithDifferentBtags) {
  Reassembler r;
  for (std::uint8_t k = 0; k < 4; ++k) {
    const Bytes payload = random_payload(120 + k, k);
    std::optional<Result<Bytes>> out;
    for (const auto& c : segment(VcId{0, 1}, payload, 0, k)) out = r.push(c);
    ASSERT_TRUE(out.has_value() && out->is_ok());
    EXPECT_EQ(out->value(), payload);
  }
}

TEST(Aal34, RecoversAfterCorruptMessage) {
  auto bad = segment(VcId{0, 1}, random_payload(150, 1), 0, 1);
  bad[0].payload[5] ^= std::byte{0x01};
  const Bytes good_payload = random_payload(150, 2);
  const auto good = segment(VcId{0, 1}, good_payload, 0, 2);

  Reassembler r;
  std::optional<Result<Bytes>> out;
  for (const auto& c : bad) {
    out = r.push(c);
    if (out.has_value() && !out->is_ok()) break;
  }
  EXPECT_TRUE(out.has_value() && !out->is_ok());

  for (const auto& c : good) out = r.push(c);
  ASSERT_TRUE(out.has_value() && out->is_ok());
  EXPECT_EQ(out->value(), good_payload);
}

}  // namespace
}  // namespace ncs::atm::aal34
