#include "atm/switch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"

namespace ncs::atm {
namespace {

using namespace ncs::literals;

/// Records everything delivered to it.
struct SinkRecorder : CellSink {
  struct Arrival {
    int port;
    VcId vc;
    std::uint32_t cells;
    TimePoint at;
  };
  explicit SinkRecorder(sim::Engine& engine) : engine_(engine) {}
  void accept(int port, Burst burst) override {
    arrivals.push_back({port, burst.vc, burst.n_cells, engine_.now()});
  }
  sim::Engine& engine_;
  std::vector<Arrival> arrivals;
};

struct SwitchFixture : ::testing::Test {
  SwitchFixture()
      : sw(engine, SwitchParams{.forward_latency = 10_us}),
        link_a(engine, params()),
        link_b(engine, params()),
        sink_a(engine),
        sink_b(engine) {
    port_a = sw.add_port(link_a, sink_a, 5);
    port_b = sw.add_port(link_b, sink_b, 6);
  }

  static net::LinkParams params() {
    net::LinkParams p;
    p.bandwidth_bps = bw::taxi_140;
    p.propagation = 2_us;
    return p;
  }

  Burst burst_of(VcId vc, std::uint32_t cells) {
    Burst b;
    b.vc = vc;
    b.n_cells = cells;
    b.payload.resize(cells * Cell::kPayloadSize);
    return b;
  }

  sim::Engine engine;
  Switch sw;
  net::Link link_a, link_b;
  SinkRecorder sink_a, sink_b;
  int port_a = -1, port_b = -1;
};

TEST_F(SwitchFixture, ForwardsAndRewritesVc) {
  sw.add_route(port_a, VcId{0, 100}, port_b, VcId{0, 200});
  sw.accept(port_a, burst_of(VcId{0, 100}, 4));
  engine.run();

  ASSERT_EQ(sink_b.arrivals.size(), 1u);
  EXPECT_EQ(sink_b.arrivals[0].vc, (VcId{0, 200}));
  EXPECT_EQ(sink_b.arrivals[0].port, 6);
  EXPECT_EQ(sink_b.arrivals[0].cells, 4u);
  EXPECT_TRUE(sink_a.arrivals.empty());
}

TEST_F(SwitchFixture, ForwardTimingIsLatencyPlusTxPlusPropagation) {
  sw.add_route(port_a, VcId{0, 100}, port_b, VcId{0, 200});
  sw.accept(port_a, burst_of(VcId{0, 100}, 1));
  engine.run();

  const Duration expected = 10_us + Duration::for_bytes(53, bw::taxi_140) + 2_us;
  EXPECT_EQ(sink_b.arrivals[0].at, TimePoint::origin() + expected);
}

TEST_F(SwitchFixture, UnroutableBurstDroppedAndCounted) {
  sw.accept(port_a, burst_of(VcId{0, 999}, 1));
  engine.run();
  EXPECT_TRUE(sink_a.arrivals.empty());
  EXPECT_TRUE(sink_b.arrivals.empty());
  EXPECT_EQ(sw.stats().unroutable, 1u);
}

TEST_F(SwitchFixture, OutputContentionSerializes) {
  // Two inputs race for the same output port: deliveries serialize on the
  // output link.
  sw.add_route(port_a, VcId{0, 100}, port_b, VcId{0, 200});
  sw.add_route(port_b, VcId{0, 101}, port_b, VcId{0, 201});
  sw.accept(port_a, burst_of(VcId{0, 100}, 10));
  sw.accept(port_b, burst_of(VcId{0, 101}, 10));
  engine.run();

  ASSERT_EQ(sink_b.arrivals.size(), 2u);
  const Duration tx = Duration::for_bytes(530, bw::taxi_140);
  EXPECT_EQ(sink_b.arrivals[0].at, TimePoint::origin() + 10_us + tx + 2_us);
  EXPECT_EQ(sink_b.arrivals[1].at, TimePoint::origin() + 10_us + tx + tx + 2_us);
}

TEST_F(SwitchFixture, DetailedCellsGetHeadersRewritten) {
  sw.add_route(port_a, VcId{0, 100}, port_b, VcId{2, 222});
  Burst b;
  b.vc = VcId{0, 100};
  b.cells.resize(3);
  for (auto& c : b.cells) {
    c.header.vpi = 0;
    c.header.vci = 100;
  }
  b.n_cells = 3;
  sw.accept(port_a, std::move(b));
  engine.run();

  ASSERT_EQ(sink_b.arrivals.size(), 1u);
  EXPECT_EQ(sink_b.arrivals[0].vc, (VcId{2, 222}));
}

TEST_F(SwitchFixture, StatsAccumulate) {
  sw.add_route(port_a, VcId{0, 100}, port_b, VcId{0, 200});
  sw.accept(port_a, burst_of(VcId{0, 100}, 3));
  sw.accept(port_a, burst_of(VcId{0, 100}, 5));
  engine.run();
  EXPECT_EQ(sw.stats().bursts, 2u);
  EXPECT_EQ(sw.stats().cells, 8u);
}


TEST_F(SwitchFixture, RemoveRouteStopsForwarding) {
  sw.add_route(port_a, VcId{0, 100}, port_b, VcId{0, 200});
  EXPECT_TRUE(sw.remove_route(port_a, VcId{0, 100}));
  EXPECT_FALSE(sw.remove_route(port_a, VcId{0, 100}));  // already gone
  sw.accept(port_a, burst_of(VcId{0, 100}, 1));
  engine.run();
  EXPECT_TRUE(sink_b.arrivals.empty());
  EXPECT_EQ(sw.stats().unroutable, 1u);
}

TEST_F(SwitchFixture, RouteCanBeReinstalledAfterRemoval) {
  sw.add_route(port_a, VcId{0, 100}, port_b, VcId{0, 200});
  sw.remove_route(port_a, VcId{0, 100});
  sw.add_route(port_a, VcId{0, 100}, port_b, VcId{0, 300});  // new label
  sw.accept(port_a, burst_of(VcId{0, 100}, 1));
  engine.run();
  ASSERT_EQ(sink_b.arrivals.size(), 1u);
  EXPECT_EQ(sink_b.arrivals[0].vc, (VcId{0, 300}));
}

TEST_F(SwitchFixture, LocalEndpointInterceptsBeforeRouting) {
  sw.add_route(port_a, VcId{0, 5}, port_b, VcId{0, 200});  // would-be route
  int local_hits = 0, local_port = -1;
  sw.add_local_endpoint(VcId{0, 5}, [&](int in_port, Burst) {
    ++local_hits;
    local_port = in_port;
  });
  sw.accept(port_a, burst_of(VcId{0, 5}, 2));
  engine.run();
  EXPECT_EQ(local_hits, 1);
  EXPECT_EQ(local_port, port_a);
  EXPECT_TRUE(sink_b.arrivals.empty());  // intercepted, not forwarded
}

TEST_F(SwitchFixture, SendLocalOriginatesFromTheSwitch) {
  sw.send_local(port_b, burst_of(VcId{0, 77}, 3));
  engine.run();
  ASSERT_EQ(sink_b.arrivals.size(), 1u);
  EXPECT_EQ(sink_b.arrivals[0].vc, (VcId{0, 77}));
  EXPECT_EQ(sink_b.arrivals[0].cells, 3u);
  // Pays the forwarding latency + wire + propagation like any burst.
  const Duration expected = 10_us + Duration::for_bytes(3 * 53, bw::taxi_140) + 2_us;
  EXPECT_EQ(sink_b.arrivals[0].at, TimePoint::origin() + expected);
}

TEST_F(SwitchFixture, DuplicateLocalEndpointAborts) {
  sw.add_local_endpoint(VcId{0, 5}, [](int, Burst) {});
  EXPECT_DEATH(sw.add_local_endpoint(VcId{0, 5}, [](int, Burst) {}), "duplicate");
}

TEST_F(SwitchFixture, DuplicateRouteAborts) {
  sw.add_route(port_a, VcId{0, 100}, port_b, VcId{0, 200});
  EXPECT_DEATH(sw.add_route(port_a, VcId{0, 100}, port_b, VcId{0, 201}), "duplicate");
}

}  // namespace
}  // namespace ncs::atm
