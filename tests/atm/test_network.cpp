#include "atm/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ncs::atm {
namespace {

using namespace ncs::literals;

struct Delivery {
  int to;
  int from;
  Bytes data;
  TimePoint at;
};

Bytes tagged_payload(int tag, std::size_t n = 100) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::byte>(i + static_cast<std::size_t>(tag));
  return b;
}

template <typename Fabric>
std::vector<Delivery> wire_up(sim::Engine& engine, Fabric& fab,
                              std::vector<Delivery>* sink) {
  for (int h = 0; h < fab.n_hosts(); ++h) {
    fab.nic(h).set_rx_handler([&engine, sink, h](VcId vc, Bytes data, bool) {
      sink->push_back({h, src_of(vc), std::move(data), engine.now()});
    });
  }
  return {};
}

TEST(VcNumbering, RoundTrip) {
  for (int dst : {0, 1, 7, 100}) EXPECT_EQ(src_of(vc_to(dst)), dst);
}

TEST(AtmLan, AnyToAnyDelivery) {
  sim::Engine engine;
  LanConfig cfg;
  cfg.n_hosts = 4;
  cfg.nic.tx_buffers = 8;  // room for the 3 back-to-back submits per host
  AtmLan lan(engine, cfg);
  std::vector<Delivery> rx;
  wire_up(engine, lan, &rx);

  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      if (i != j) lan.nic(i).submit_tx(vc_to(j), tagged_payload(i * 10 + j), true);
  engine.run();

  ASSERT_EQ(rx.size(), 12u);
  std::map<std::pair<int, int>, int> seen;
  for (const auto& d : rx) {
    ++seen[{d.from, d.to}];
    EXPECT_EQ(d.data, tagged_payload(d.from * 10 + d.to));
  }
  EXPECT_EQ(seen.size(), 12u);
}

TEST(AtmLan, DedicatedLinksDoNotContend) {
  // Two disjoint pairs transfer simultaneously; each takes the same time
  // as it would alone — unlike shared Ethernet.
  sim::Engine engine;
  LanConfig cfg;
  cfg.n_hosts = 4;

  const auto solo = [&] {
    sim::Engine e2;
    AtmLan lan(e2, cfg);
    std::vector<Delivery> rx;
    wire_up(e2, lan, &rx);
    lan.nic(0).submit_tx(vc_to(1), tagged_payload(0, 4000), true);
    e2.run();
    return rx.at(0).at - TimePoint::origin();
  }();

  AtmLan lan(engine, cfg);
  std::vector<Delivery> rx;
  wire_up(engine, lan, &rx);
  lan.nic(0).submit_tx(vc_to(1), tagged_payload(0, 4000), true);
  lan.nic(2).submit_tx(vc_to(3), tagged_payload(0, 4000), true);
  engine.run();

  ASSERT_EQ(rx.size(), 2u);
  for (const auto& d : rx) EXPECT_EQ((d.at - TimePoint::origin()).ps(), solo.ps());
}

TEST(AtmLan, SelfSendLoopsThroughSwitch) {
  sim::Engine engine;
  LanConfig cfg;
  cfg.n_hosts = 2;
  AtmLan lan(engine, cfg);
  std::vector<Delivery> rx;
  wire_up(engine, lan, &rx);
  lan.nic(0).submit_tx(vc_to(0), tagged_payload(5), true);
  engine.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].from, 0);
  EXPECT_EQ(rx[0].to, 0);
}

TEST(AtmWan, CrossSiteDeliveryPaysBackbonePropagation) {
  sim::Engine engine;
  WanConfig cfg;
  cfg.n_hosts = 4;  // hosts 0,1 at site 0; 2,3 at site 1
  AtmWan wan(engine, cfg);
  std::vector<Delivery> rx;
  wire_up(engine, wan, &rx);

  wan.nic(0).submit_tx(vc_to(1), tagged_payload(1), true);  // same site
  wan.nic(0).submit_tx(vc_to(2), tagged_payload(2), true);  // cross site
  engine.run();

  ASSERT_EQ(rx.size(), 2u);
  TimePoint local, remote;
  for (const auto& d : rx) (d.to == 1 ? local : remote) = d.at;
  // The cross-site delivery pays at least the extra backbone propagation.
  EXPECT_GT((remote - local).ms(), cfg.backbone.propagation.ms() * 0.9);
}

TEST(AtmWan, SiteAssignment) {
  sim::Engine engine;
  WanConfig cfg;
  cfg.n_hosts = 5;
  AtmWan wan(engine, cfg);
  EXPECT_EQ(wan.site_of(0), 0);
  EXPECT_EQ(wan.site_of(2), 0);  // ceil(5/2)=3 hosts at site 0
  EXPECT_EQ(wan.site_of(3), 1);
  EXPECT_EQ(wan.site_of(4), 1);
}

TEST(AtmWan, AllPairsDeliverExactlyOnce) {
  sim::Engine engine;
  WanConfig cfg;
  cfg.n_hosts = 6;
  cfg.nic.tx_buffers = 8;  // room for the 5 back-to-back submits per host
  AtmWan wan(engine, cfg);
  std::vector<Delivery> rx;
  wire_up(engine, wan, &rx);

  int sent = 0;
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j)
      if (i != j) {
        wan.nic(i).submit_tx(vc_to(j), tagged_payload(i * 6 + j), true);
        ++sent;
      }
  engine.run();

  ASSERT_EQ(rx.size(), static_cast<std::size_t>(sent));
  std::map<std::pair<int, int>, int> seen;
  for (const auto& d : rx) {
    ++seen[{d.from, d.to}];
    EXPECT_EQ(d.data, tagged_payload(d.from * 6 + d.to));
  }
  for (const auto& [k, v] : seen) EXPECT_EQ(v, 1) << k.first << "->" << k.second;
}

TEST(AtmMultiWan, AllPairsDeliverExactlyOnceAcrossTheChain) {
  sim::Engine engine;
  MultiWanConfig cfg;
  cfg.n_hosts = 9;  // 3 hosts per site, 3 sites, full PVC mesh
  cfg.n_sites = 3;
  cfg.nic.tx_buffers = 16;  // room for the 8 back-to-back submits per host
  AtmMultiWan wan(engine, cfg);
  std::vector<Delivery> rx;
  wire_up(engine, wan, &rx);

  int sent = 0;
  for (int i = 0; i < 9; ++i)
    for (int j = 0; j < 9; ++j)
      if (i != j) {
        wan.nic(i).submit_tx(vc_to(j), tagged_payload(i * 9 + j), true);
        ++sent;
      }
  engine.run();

  ASSERT_EQ(rx.size(), static_cast<std::size_t>(sent));
  std::map<std::pair<int, int>, int> seen;
  for (const auto& d : rx) {
    ++seen[{d.from, d.to}];
    EXPECT_EQ(d.data, tagged_payload(d.from * 9 + d.to));
  }
  for (const auto& [k, v] : seen) EXPECT_EQ(v, 1) << k.first << "->" << k.second;
}

TEST(AtmMultiWan, HostsSplitIntoContiguousNearEqualSites) {
  sim::Engine engine;
  MultiWanConfig cfg;
  cfg.n_hosts = 7;
  cfg.n_sites = 3;
  cfg.provision = {{0, 1}};  // keep construction cheap
  AtmMultiWan wan(engine, cfg);
  // 7 hosts over 3 sites: 3 + 2 + 2.
  EXPECT_EQ(wan.site_of(0), 0);
  EXPECT_EQ(wan.site_of(2), 0);
  EXPECT_EQ(wan.site_of(3), 1);
  EXPECT_EQ(wan.site_of(4), 1);
  EXPECT_EQ(wan.site_of(5), 2);
  EXPECT_EQ(wan.site_of(6), 2);
}

TEST(AtmMultiWan, EachHopAddsBackbonePropagation) {
  sim::Engine engine;
  MultiWanConfig cfg;
  cfg.n_hosts = 4;  // one host per site
  cfg.n_sites = 4;
  cfg.provision = {{0, 1}, {0, 3}};
  AtmMultiWan wan(engine, cfg);
  std::vector<Delivery> rx;
  wire_up(engine, wan, &rx);

  wan.nic(0).submit_tx(vc_to(1), tagged_payload(1), true);  // 1 hop
  wan.nic(0).submit_tx(vc_to(3), tagged_payload(3), true);  // 3 hops
  engine.run();

  ASSERT_EQ(rx.size(), 2u);
  TimePoint near, far;
  for (const auto& d : rx) (d.to == 1 ? near : far) = d.at;
  // Two extra hops: at least 2x extra backbone propagation.
  EXPECT_GT((far - near).ms(), cfg.backbone.propagation.ms() * 1.9);
}

TEST(AtmMultiWan, SparseProvisioningBoundsTheLabelSpace) {
  sim::Engine engine;
  MultiWanConfig cfg;
  cfg.n_hosts = 64;
  cfg.n_sites = 4;  // 16 hosts per site
  // Ring traffic matrix: i -> (i+1) % n, both directions of each hop pair.
  for (int i = 0; i < cfg.n_hosts; ++i) {
    cfg.provision.emplace_back(i, (i + 1) % cfg.n_hosts);
    cfg.provision.emplace_back((i + 1) % cfg.n_hosts, i);
  }
  cfg.provision.emplace_back(0, 1);  // duplicates are tolerated
  AtmMultiWan wan(engine, cfg);

  // Only the ring crossings consume hop labels: of 128 directed pairs, the
  // vast majority are intra-site. Hop 0 carries 15->16 rightward, 16->15
  // leftward, plus the 63->0 wraparound transit (leftward through every
  // hop) and 0->63 (rightward through every hop) — each crossing takes one
  // label per plane (data, RMA, collective).
  for (int h = 0; h < 3; ++h) {
    EXPECT_LE(wan.labels_used(h, /*rightward=*/true), 6) << "hop " << h;
    EXPECT_LE(wan.labels_used(h, /*rightward=*/false), 6) << "hop " << h;
  }

  std::vector<Delivery> rx;
  wire_up(engine, wan, &rx);
  wan.nic(63).submit_tx(vc_to(0), tagged_payload(63), true);  // full transit
  wan.nic(15).submit_tx(vc_to(16), tagged_payload(15), true);  // hop 0 only
  engine.run();
  ASSERT_EQ(rx.size(), 2u);
  for (const auto& d : rx) EXPECT_EQ(d.data, tagged_payload(d.from));
}

TEST(AtmLan, DetailedModeDeliversIdenticalData) {
  sim::Engine engine;
  LanConfig cfg;
  cfg.n_hosts = 2;
  cfg.nic.detailed_cells = true;
  cfg.nic.io_buffer_size = 8192;
  AtmLan lan(engine, cfg);
  std::vector<Delivery> rx;
  wire_up(engine, lan, &rx);
  const Bytes data = tagged_payload(3, 5000);
  lan.nic(0).submit_tx(vc_to(1), data, true);
  engine.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].data, data);
}

}  // namespace
}  // namespace ncs::atm
