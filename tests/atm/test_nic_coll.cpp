// NIC collective-context lifecycle on a raw ATM LAN: arm/fire/tear-down/
// re-arm, burst loss stranding an operation, a mid-barrier switch fault,
// exactly-once completion upcalls, and the no-leaked-contexts census.
#include "atm/nic_coll.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "atm/network.hpp"
#include "coll/algorithms.hpp"
#include "coll/offload.hpp"

namespace ncs::atm {
namespace {

using namespace ncs::literals;

struct Completion {
  int host;
  std::uint64_t seq;
  Bytes result;
};

struct NicCollFixture : ::testing::Test {
  static constexpr int kHosts = 5;

  NicCollFixture() {
    LanConfig lc;
    lc.n_hosts = kHosts;
    lan = std::make_unique<AtmLan>(engine, lc);
    for (int h = 0; h < kHosts; ++h) {
      engines.push_back(std::make_unique<NicCollEngine>(
          engine, lan->nic(h), NicCollParams{}, "nic-coll" + std::to_string(h)));
      engines.back()->set_completion([this, h](std::uint64_t seq, Bytes result) {
        completions.push_back({h, seq, std::move(result)});
      });
    }
  }

  void program_all() {
    for (int h = 0; h < kHosts; ++h) engines[static_cast<std::size_t>(h)]->program(h, kHosts);
  }

  NicCollEngine& eng(int h) { return *engines[static_cast<std::size_t>(h)]; }

  int completions_for(int host, std::uint64_t seq) const {
    int n = 0;
    for (const auto& c : completions)
      if (c.host == host && c.seq == seq) ++n;
    return n;
  }

  std::size_t open_contexts() const {
    std::size_t n = 0;
    for (const auto& e : engines) n += e->pending_ops();
    return n;
  }

  sim::Engine engine;
  std::unique_ptr<AtmLan> lan;
  std::vector<std::unique_ptr<NicCollEngine>> engines;
  std::vector<Completion> completions;
};

TEST_F(NicCollFixture, BarrierCompletesExactlyOnceOnEveryRank) {
  program_all();
  for (int h = 0; h < kHosts; ++h) eng(h).contribute(0, CollKind::barrier, {});
  engine.run();

  for (int h = 0; h < kHosts; ++h) {
    EXPECT_EQ(completions_for(h, 0), 1) << "host " << h;
    EXPECT_EQ(eng(h).stats().completions, 1u);
  }
  // Interior combines happened in firmware: the root folded its children's
  // arrival, and no context is left open anywhere.
  EXPECT_GT(eng(0).stats().combines, 0u);
  EXPECT_EQ(open_contexts(), 0u);
}

TEST_F(NicCollFixture, AllreduceMatchesTheHostTreeFoldBitForBit) {
  program_all();
  constexpr std::size_t kN = 16;
  std::vector<Bytes> contribs(kHosts);
  for (int h = 0; h < kHosts; ++h) {
    std::vector<double> mine(kN);
    for (std::size_t i = 0; i < kN; ++i)
      mine[i] = std::sin(static_cast<double>(h + 1) * (static_cast<double>(i) + 0.5));
    contribs[static_cast<std::size_t>(h)] = coll::pack_doubles(mine);
    eng(h).contribute(0, CollKind::allreduce, contribs[static_cast<std::size_t>(h)]);
  }
  engine.run();

  // coll::tree_fold replays the firmware's fold order (own, then children
  // ascending) — the fallback path's bit-identity rests on this equality.
  const Bytes expected =
      coll::pack_doubles(coll::tree_fold(contribs, kHosts, NicCollParams{}.radix));
  ASSERT_EQ(completions.size(), static_cast<std::size_t>(kHosts));
  for (const auto& c : completions) EXPECT_EQ(c.result, expected) << "host " << c.host;
  EXPECT_EQ(open_contexts(), 0u);
}

TEST_F(NicCollFixture, BcastPushesTheRootPayloadDownTheTree) {
  program_all();
  const Bytes payload = to_bytes("firmware bcast payload");
  eng(0).contribute(0, CollKind::bcast, payload);
  // Non-root contributions are no-ops by design (nothing to push).
  eng(3).contribute(0, CollKind::bcast, {});
  engine.run();

  for (int h = 0; h < kHosts; ++h) {
    ASSERT_EQ(completions_for(h, 0), 1) << "host " << h;
  }
  for (const auto& c : completions) EXPECT_EQ(c.result, payload);
  EXPECT_EQ(open_contexts(), 0u);
}

TEST_F(NicCollFixture, BurstLossStrandsTheOperationAndAbortRearmsCleanly) {
  program_all();
  // Host 1's uplink eats every frame: its folded subtree (itself + children
  // 3 and 4) never reaches the root.
  net::Link* uplink = nullptr;
  lan->for_each_link([&](net::Link& l) {
    if (l.name() == "taxi1>") uplink = &l;
  });
  ASSERT_NE(uplink, nullptr);
  uplink->fault().set_down(true);

  for (int h = 0; h < kHosts; ++h) eng(h).contribute(0, CollKind::barrier, {});
  engine.run();
  EXPECT_TRUE(completions.empty());  // stranded, not wrongly completed
  EXPECT_GT(open_contexts(), 0u);    // the root still holds partial state

  // Host-side recovery: abort everywhere (SVC-style teardown), restore the
  // link, re-arm, and run the next operation.
  for (int h = 0; h < kHosts; ++h) {
    eng(h).abort_op(0);
    eng(h).teardown();
  }
  EXPECT_EQ(open_contexts(), 0u);  // abort leaks nothing
  uplink->fault().set_down(false);

  program_all();
  for (int h = 0; h < kHosts; ++h) eng(h).contribute(1, CollKind::barrier, {});
  engine.run();
  for (int h = 0; h < kHosts; ++h) EXPECT_EQ(completions_for(h, 1), 1) << "host " << h;
  for (int h = 0; h < kHosts; ++h) {
    EXPECT_EQ(eng(h).stats().programs, 2u);
    EXPECT_EQ(eng(h).stats().teardowns, 1u);
  }
  EXPECT_EQ(open_contexts(), 0u);
}

TEST_F(NicCollFixture, MidBarrierSwitchFaultThenRecoveryCompletesNextOp) {
  program_all();
  // The switch port of host 2 dies just as the barrier starts: host 2's
  // contribution is dropped at the fabric.
  lan->fabric().fault().set_port_down(2, true);
  for (int h = 0; h < kHosts; ++h) eng(h).contribute(0, CollKind::barrier, {});
  engine.run();
  EXPECT_TRUE(completions.empty());

  for (int h = 0; h < kHosts; ++h) {
    eng(h).abort_op(0);
    eng(h).teardown();
  }
  lan->fabric().fault().set_port_down(2, false);

  program_all();
  for (int h = 0; h < kHosts; ++h) eng(h).contribute(1, CollKind::barrier, {});
  engine.run();
  for (int h = 0; h < kHosts; ++h) EXPECT_EQ(completions_for(h, 1), 1) << "host " << h;
  EXPECT_EQ(open_contexts(), 0u);
}

TEST_F(NicCollFixture, LateTrafficForAbortedSequencesIsCountedAndDropped) {
  program_all();
  // Abort before the operation starts: the subsequent doorbell for that
  // sequence is late by definition and must not open a context.
  eng(0).abort_op(0);
  eng(0).contribute(0, CollKind::barrier, {});
  engine.run();
  EXPECT_EQ(eng(0).stats().late_drops, 1u);
  EXPECT_EQ(eng(0).pending_ops(), 0u);
  EXPECT_TRUE(completions.empty());

  // The next sequence is unaffected.
  for (int h = 0; h < kHosts; ++h) eng(h).contribute(1, CollKind::barrier, {});
  engine.run();
  for (int h = 0; h < kHosts; ++h) EXPECT_EQ(completions_for(h, 1), 1) << "host " << h;
}

TEST_F(NicCollFixture, BackToBackOperationsPipelineWithoutLeaks) {
  program_all();
  constexpr std::uint64_t kOps = 8;
  for (std::uint64_t s = 0; s < kOps; ++s)
    for (int h = 0; h < kHosts; ++h) eng(h).contribute(s, CollKind::barrier, {});
  engine.run();

  for (int h = 0; h < kHosts; ++h) {
    for (std::uint64_t s = 0; s < kOps; ++s)
      EXPECT_EQ(completions_for(h, s), 1) << "host " << h << " seq " << s;
    EXPECT_EQ(eng(h).stats().completions, kOps);
  }
  EXPECT_EQ(open_contexts(), 0u);
}

}  // namespace
}  // namespace ncs::atm
