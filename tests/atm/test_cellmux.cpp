#include "atm/cellmux.hpp"

#include "atm/aal5.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/units.hpp"

namespace ncs::atm {
namespace {

using namespace ncs::literals;

struct Arrival {
  VcId vc;
  std::size_t bytes;
  TimePoint at;
};

struct Recorder : CellSink {
  explicit Recorder(sim::Engine& engine) : engine_(engine) {}
  void accept(int, Burst burst) override {
    arrivals.push_back({burst.vc, burst.payload.size(), engine_.now()});
  }
  sim::Engine& engine_;
  std::vector<Arrival> arrivals;
};

struct MuxFixture : ::testing::Test {
  MuxFixture()
      : link(engine, {.bandwidth_bps = bw::taxi_140, .propagation = 2_us}),
        sink(engine),
        mux(engine, link, sink, 0) {}

  Burst burst_of(std::uint16_t vci, std::size_t payload_bytes) {
    Burst b;
    b.vc = VcId{0, vci};
    b.payload.assign(payload_bytes, std::byte{static_cast<unsigned char>(vci)});
    b.n_cells = static_cast<std::uint32_t>(aal5::cell_count(payload_bytes));
    return b;
  }

  sim::Engine engine;
  net::Link link;
  Recorder sink;
  CellMux mux;
};

TEST_F(MuxFixture, SingleBurstDeliversIntact) {
  mux.submit(burst_of(100, 5000));
  engine.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].bytes, 5000u);
  EXPECT_EQ(mux.stats().cells_sent, aal5::cell_count(5000));
}

TEST_F(MuxFixture, SingleFlowTimingMatchesBurstTransmission) {
  // One uncontended flow: per-cell scheduling must not change the timing
  // (same bytes, same wire).
  mux.submit(burst_of(100, 9000));
  engine.run();
  const Duration per_cell = link.tx_time(Cell::kSize);
  const auto cells = static_cast<std::int64_t>(aal5::cell_count(9000));
  EXPECT_EQ(sink.arrivals[0].at.ps(),
            (TimePoint::origin() + per_cell * cells + 2_us).ps());
}

TEST_F(MuxFixture, SmallBurstCutsThroughBulkWhenInterleaved) {
  mux.submit(burst_of(1, 512 * 1024));  // bulk: ~11k cells
  mux.submit(burst_of(2, 2048));        // urgent: 43 cells
  engine.run();

  ASSERT_EQ(sink.arrivals.size(), 2u);
  // The small burst finishes first by a wide margin: it needs ~2x43 cell
  // times (round-robin), not the bulk's ~11k.
  const Arrival& small = *std::find_if(sink.arrivals.begin(), sink.arrivals.end(),
                                       [](const Arrival& a) { return a.vc.vci == 2; });
  const Arrival& bulk = *std::find_if(sink.arrivals.begin(), sink.arrivals.end(),
                                      [](const Arrival& a) { return a.vc.vci == 1; });
  EXPECT_LT(small.at, bulk.at);
  EXPECT_LT(small.at.sec(), bulk.at.sec() / 50);
}

TEST_F(MuxFixture, FifoModeSuffersHeadOfLineBlocking) {
  mux.set_interleave(false);
  mux.submit(burst_of(1, 512 * 1024));
  mux.submit(burst_of(2, 2048));
  engine.run();

  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].vc.vci, 1);  // bulk completes first
  // The small burst waited for the entire bulk transfer.
  EXPECT_GT(sink.arrivals[1].at.sec(), sink.arrivals[0].at.sec() * 0.99);
}

TEST_F(MuxFixture, InterleavingPreservesTotalThroughput) {
  // Fairness must not cost capacity: the time to drain both flows equals
  // the serialized wire time of all cells (plus propagation).
  const std::size_t a_bytes = 100'000, b_bytes = 60'000;
  mux.submit(burst_of(1, a_bytes));
  mux.submit(burst_of(2, b_bytes));
  engine.run();
  const auto total_cells =
      static_cast<std::int64_t>(aal5::cell_count(a_bytes) + aal5::cell_count(b_bytes));
  const TimePoint expected = TimePoint::origin() + link.tx_time(Cell::kSize) * total_cells + 2_us;
  const TimePoint last = std::max(sink.arrivals[0].at, sink.arrivals[1].at);
  EXPECT_EQ(last.ps(), expected.ps());
}

TEST_F(MuxFixture, PerVcOrderPreservedAcrossBursts) {
  for (int i = 1; i <= 3; ++i)
    mux.submit(burst_of(7, static_cast<std::size_t>(i) * 1000));
  engine.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].bytes, 1000u);
  EXPECT_EQ(sink.arrivals[1].bytes, 2000u);
  EXPECT_EQ(sink.arrivals[2].bytes, 3000u);
}

TEST_F(MuxFixture, DrainedFlowsLeaveTheRoundRobinRing) {
  // Regression: flows used to stay in rr_order_ forever once seen, so an
  // SVC-churn workload (every transfer on a fresh VC) grew the ring — and
  // the O(n) membership scan on submit — without bound.
  for (std::uint16_t vci = 100; vci < 200; ++vci) {
    mux.submit(burst_of(vci, 2048));
    engine.run();  // drain completely before the next "connection"
  }
  ASSERT_EQ(sink.arrivals.size(), 100u);
  EXPECT_EQ(mux.flow_count(), 0u);
  EXPECT_LE(mux.rr_ring_size(), 1u);  // at most the slot being swept
}

TEST_F(MuxFixture, ReusedVcAfterDrainStillRoundRobins) {
  // A VC that drained out of the ring must re-enter it cleanly and still
  // share the wire fairly with a concurrent flow.
  mux.submit(burst_of(5, 4096));
  engine.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);

  mux.submit(burst_of(5, 48 * 200));
  mux.submit(burst_of(6, 48 * 200));
  engine.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  const double t1 = sink.arrivals[1].at.sec();
  const double t2 = sink.arrivals[2].at.sec();
  EXPECT_LT(std::abs(t2 - t1) / std::max(t1, t2), 0.02);
  EXPECT_EQ(mux.flow_count(), 0u);
}

TEST_F(MuxFixture, ThreeWayFairness) {
  // Three equal flows: all finish within one another's cell budget.
  for (const int v : {10, 11, 12}) mux.submit(burst_of(static_cast<std::uint16_t>(v), 48 * 100));
  engine.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  const double t0 = sink.arrivals[0].at.sec();
  const double t2 = sink.arrivals[2].at.sec();
  EXPECT_LT((t2 - t0) / t2, 0.02);
}

}  // namespace
}  // namespace ncs::atm
