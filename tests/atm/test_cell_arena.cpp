// CellArena pooling: released cell-train storage is recycled, steady-state
// SAR traffic allocates nothing, and CellBuffer's vector facade keeps
// value semantics (deep copies, move leaves the source empty).
#include "atm/cell_arena.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "atm/aal5.hpp"
#include "atm/network.hpp"

namespace ncs::atm {
namespace {

Bytes payload(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::byte>(i * 7);
  return b;
}

TEST(CellArena, ReleasedStorageIsRecycled) {
  CellArena& arena = CellArena::instance();
  arena.trim();
  CellArena::reset_census();

  { CellBuffer b; b.resize(100); }  // allocate, then return to the pool
  EXPECT_EQ(arena.pooled(), 1u);
  const std::uint64_t allocs_after_warm = CellArena::census().heap_allocs;
  EXPECT_GT(allocs_after_warm, 0u);

  { CellBuffer b; b.resize(100); }  // same size: must come from the pool
  EXPECT_EQ(CellArena::census().heap_allocs, allocs_after_warm);
  EXPECT_GT(CellArena::census().pool_hits, 0u);
  EXPECT_EQ(arena.pooled(), 1u);

  arena.trim();
  EXPECT_EQ(arena.pooled(), 0u);
}

TEST(CellArena, SteadyStateSegmentationIsAllocationFree) {
  CellArena::instance().trim();
  const Bytes pdu = payload(4000);
  const VcId vc = vc_to(3);

  { CellBuffer warm = aal5::segment(vc, pdu); }  // prime the pool
  CellArena::reset_census();
  for (int i = 0; i < 50; ++i) {
    CellBuffer train = aal5::segment(vc, pdu);
    EXPECT_EQ(train.size(), (4000 + 8 + 47) / 48);  // payload + trailer, padded
  }
  EXPECT_GT(CellArena::census().acquires, 0u);
  EXPECT_EQ(CellArena::census().heap_allocs, 0u);
  EXPECT_EQ(CellArena::census().releases, CellArena::census().acquires);
}

TEST(CellBuffer, CopyIsDeepMoveIsSteal) {
  CellBuffer a;
  a.resize(3);
  a[0].header.vci = 11;
  CellBuffer b(a);
  b[0].header.vci = 22;
  EXPECT_EQ(a[0].header.vci, 11);  // original untouched
  EXPECT_EQ(b[0].header.vci, 22);

  CellBuffer c(std::move(b));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): asserting the postcondition
  EXPECT_EQ(c[0].header.vci, 22);
}

}  // namespace
}  // namespace ncs::atm
