#include "atm/nic.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"

namespace ncs::atm {
namespace {

using namespace ncs::literals;

struct Loopback : CellSink {
  explicit Loopback(Nic& nic) : nic_(nic) {}
  void accept(int port, Burst burst) override { nic_.accept(port, std::move(burst)); }
  Nic& nic_;
};

struct NicFixture : ::testing::Test {
  NicFixture() { reset(NicParams{}); }

  void reset(NicParams p) {
    rx.clear();
    nic = std::make_unique<Nic>(engine, p);
    link = std::make_unique<net::Link>(engine, link_params());
    loop = std::make_unique<Loopback>(*nic);
    nic->attach(*link, *loop, 0);
    nic->set_rx_handler([this](VcId vc, Bytes data, bool eom) {
      rx.push_back({vc, std::move(data), eom, engine.now()});
    });
  }

  static net::LinkParams link_params() {
    net::LinkParams p;
    p.bandwidth_bps = bw::taxi_140;
    p.propagation = 2_us;
    return p;
  }

  Bytes payload(std::size_t n) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::byte>(i);
    return b;
  }

  struct Rx {
    VcId vc;
    Bytes data;
    bool eom;
    TimePoint at;
  };

  sim::Engine engine;
  std::unique_ptr<Nic> nic;
  std::unique_ptr<net::Link> link;
  std::unique_ptr<Loopback> loop;
  std::vector<Rx> rx;
};

TEST_F(NicFixture, ChunkLoopsBackIntact) {
  const Bytes data = payload(1000);
  nic->submit_tx(VcId{0, 70}, data, true);
  engine.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].data, data);
  EXPECT_EQ(rx[0].vc, (VcId{0, 70}));
  EXPECT_TRUE(rx[0].eom);
}

TEST_F(NicFixture, DetailedModeMatchesBurstModePayloadAndTiming) {
  const Bytes data = payload(3000);

  nic->submit_tx(VcId{0, 70}, data, true);
  engine.run();
  ASSERT_EQ(rx.size(), 1u);
  const TimePoint burst_time = rx[0].at - TimePoint::origin() + TimePoint::origin();
  const Bytes burst_data = rx[0].data;

  NicParams p;
  p.detailed_cells = true;
  // fresh engine time continues; measure delta instead.
  reset(p);
  const TimePoint t0 = engine.now();
  nic->submit_tx(VcId{0, 70}, data, true);
  engine.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].data, burst_data);
  EXPECT_EQ((rx[0].at - t0).ps(), (burst_time - TimePoint::origin()).ps());
}

TEST_F(NicFixture, TxBufferBackpressure) {
  NicParams p;
  p.tx_buffers = 2;
  reset(p);
  EXPECT_TRUE(nic->tx_buffer_available());
  nic->submit_tx(VcId{0, 70}, payload(4096), false);
  EXPECT_TRUE(nic->tx_buffer_available());
  nic->submit_tx(VcId{0, 70}, payload(4096), false);
  EXPECT_FALSE(nic->tx_buffer_available());

  bool notified = false;
  nic->notify_tx_buffer([&] { notified = true; });
  EXPECT_FALSE(notified);
  engine.run();
  EXPECT_TRUE(notified);
  EXPECT_TRUE(nic->tx_buffer_available());
}

TEST_F(NicFixture, NotifyFiresImmediatelyWhenBufferFree) {
  bool notified = false;
  nic->notify_tx_buffer([&] { notified = true; });
  engine.run();
  EXPECT_TRUE(notified);
}

TEST_F(NicFixture, PipelinedChunksBeatSerialTime) {
  // With 4 buffers, 8 chunks should take well under 8x one chunk's full
  // pipeline (copy overlap happens at the host; here DMA/SAR/wire stages
  // overlap across chunks).
  NicParams p;
  p.tx_buffers = 4;
  reset(p);
  const int chunks = 8;
  int submitted = 0;
  std::function<void()> pump = [&] {
    while (submitted < chunks && nic->tx_buffer_available()) {
      nic->submit_tx(VcId{0, 70}, payload(4096), submitted == chunks - 1);
      ++submitted;
    }
    if (submitted < chunks) nic->notify_tx_buffer(pump);
  };
  pump();
  engine.run();
  ASSERT_EQ(rx.size(), static_cast<std::size_t>(chunks));

  const Duration total = rx.back().at - TimePoint::origin();
  const Duration serial = nic->tx_stage_time(4096) * chunks;
  EXPECT_LT(total.sec(), serial.sec());
}

TEST_F(NicFixture, EomFlagCarriedPerChunk) {
  nic->submit_tx(VcId{0, 70}, payload(100), false);
  nic->submit_tx(VcId{0, 70}, payload(100), true);
  engine.run();
  ASSERT_EQ(rx.size(), 2u);
  EXPECT_FALSE(rx[0].eom);
  EXPECT_TRUE(rx[1].eom);
}

TEST_F(NicFixture, StatsCountChunksAndCells) {
  nic->submit_tx(VcId{0, 70}, payload(1000), true);
  engine.run();
  EXPECT_EQ(nic->stats().tx_chunks, 1u);
  EXPECT_EQ(nic->stats().tx_cells, aal5::cell_count(1000));
  EXPECT_EQ(nic->stats().rx_chunks, 1u);
}

TEST_F(NicFixture, OversizedChunkAborts) {
  NicParams p;
  p.io_buffer_size = 512;
  reset(p);
  EXPECT_DEATH(nic->submit_tx(VcId{0, 70}, payload(513), true), "exceeds");
}

TEST_F(NicFixture, SubmitWithoutFreeBufferAborts) {
  NicParams p;
  p.tx_buffers = 1;
  reset(p);
  nic->submit_tx(VcId{0, 70}, payload(100), true);
  EXPECT_DEATH(nic->submit_tx(VcId{0, 70}, payload(100), true), "no free buffer");
}


TEST_F(NicFixture, CellCorruptionCaughtByAal5Crc) {
  NicParams p;
  p.detailed_cells = true;
  p.cell_corrupt_probability = 1.0;  // every cell damaged
  reset(p);
  nic->submit_tx(VcId{0, 70}, payload(1000), true);
  engine.run();
  EXPECT_TRUE(rx.empty());  // nothing delivered
  EXPECT_EQ(nic->stats().rx_errors, 1u);
}

TEST_F(NicFixture, PartialCorruptionLosesSomeChunks) {
  NicParams p;
  p.detailed_cells = true;
  p.cell_corrupt_probability = 0.05;
  reset(p);
  const int chunks = 40;
  int submitted = 0;
  std::function<void()> pump = [&] {
    while (submitted < chunks && nic->tx_buffer_available()) {
      nic->submit_tx(VcId{0, 70}, payload(4000), true);
      ++submitted;
    }
    if (submitted < chunks) nic->notify_tx_buffer(pump);
  };
  pump();
  engine.run();
  // ~85 cells per chunk at 5%: most chunks lose a cell and are rejected;
  // what does arrive is intact.
  EXPECT_LT(rx.size(), static_cast<std::size_t>(chunks));
  EXPECT_EQ(rx.size() + nic->stats().rx_errors, static_cast<std::size_t>(chunks));
  for (const auto& r : rx) EXPECT_EQ(r.data, payload(4000));
}

TEST_F(NicFixture, CorruptionWorksInBurstModeToo) {
  // Burst mode has no per-cell wire representation, so a corrupted cell is
  // modelled as a damaged burst: the receiver's AAL5 CRC check rejects the
  // whole chunk, exactly as in detailed mode.
  NicParams p;
  p.cell_corrupt_probability = 1.0;
  reset(p);
  nic->submit_tx(VcId{0, 70}, payload(1000), true);
  engine.run();
  EXPECT_TRUE(rx.empty());
  EXPECT_EQ(nic->stats().rx_errors, 1u);
  EXPECT_GT(nic->fault().stats().corrupted_cells, 0u);
}


TEST_F(NicFixture, Aal34CarriesFewerBytesPerCell) {
  NicParams p5;
  NicParams p34;
  p34.adaptation = Adaptation::aal34;

  reset(p34);
  nic->submit_tx(VcId{0, 70}, payload(4000), true);
  engine.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].data, payload(4000));
  const auto cells34 = nic->stats().tx_cells;

  reset(p5);
  nic->submit_tx(VcId{0, 70}, payload(4000), true);
  engine.run();
  const auto cells5 = nic->stats().tx_cells;

  // 44 vs 48 useful bytes per cell (~9% more cells for AAL3/4).
  EXPECT_GT(cells34, cells5);
  EXPECT_NEAR(static_cast<double>(cells34) / static_cast<double>(cells5), 48.0 / 44.0, 0.03);
}

TEST_F(NicFixture, Aal34DetailedModeMatchesBurstTiming) {
  const Bytes data = payload(3000);
  NicParams burst_mode;
  burst_mode.adaptation = Adaptation::aal34;
  reset(burst_mode);
  nic->submit_tx(VcId{0, 70}, data, true);
  engine.run();
  ASSERT_EQ(rx.size(), 1u);
  const Duration burst_elapsed = rx[0].at - TimePoint::origin();

  NicParams detailed;
  detailed.adaptation = Adaptation::aal34;
  detailed.detailed_cells = true;
  reset(detailed);
  const TimePoint t0 = engine.now();
  nic->submit_tx(VcId{0, 70}, data, true);
  engine.run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].data, data);
  EXPECT_EQ((rx[0].at - t0).ps(), burst_elapsed.ps());
}

}  // namespace
}  // namespace ncs::atm
