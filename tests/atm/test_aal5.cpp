#include "atm/aal5.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ncs::atm::aal5 {
namespace {

Bytes random_payload(std::size_t n, std::uint64_t seed = 42) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next_u64() & 0xFF);
  return b;
}

Bytes roundtrip(const Bytes& payload) {
  const auto cells = segment(VcId{0, 99}, payload);
  Reassembler r;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto out = r.push(cells[i]);
    if (i + 1 < cells.size()) {
      EXPECT_FALSE(out.has_value()) << "early completion at cell " << i;
    } else {
      EXPECT_TRUE(out.has_value());
      EXPECT_TRUE(out->is_ok()) << out->status().to_string();
      return std::move(out->value());
    }
  }
  return {};
}

TEST(Aal5, CellCountArithmetic) {
  // trailer is 8 bytes: payload+8 rounded up to 48.
  EXPECT_EQ(cell_count(0), 1u);
  EXPECT_EQ(cell_count(40), 1u);
  EXPECT_EQ(cell_count(41), 2u);
  EXPECT_EQ(cell_count(88), 2u);
  EXPECT_EQ(cell_count(89), 3u);
  EXPECT_EQ(wire_bytes(40), 53u);
  EXPECT_EQ(wire_bytes(41), 106u);
}

TEST(Aal5, OnlyLastCellMarked) {
  const auto cells = segment(VcId{0, 7}, random_payload(200));
  ASSERT_EQ(cells.size(), cell_count(200));
  for (std::size_t i = 0; i < cells.size(); ++i)
    EXPECT_EQ(cells[i].header.aal5_end_of_pdu(), i + 1 == cells.size());
}

TEST(Aal5, AllCellsCarryTheVc) {
  const auto cells = segment(VcId{3, 77}, random_payload(100));
  for (const auto& c : cells) {
    EXPECT_EQ(c.header.vpi, 3);
    EXPECT_EQ(c.header.vci, 77);
  }
}

class Aal5SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Aal5SizeSweep, RoundTripPreservesPayload) {
  const Bytes payload = random_payload(GetParam(), GetParam() + 1);
  EXPECT_EQ(roundtrip(payload), payload);
}

INSTANTIATE_TEST_SUITE_P(BoundarySizes, Aal5SizeSweep,
                         ::testing::Values(0, 1, 39, 40, 41, 47, 48, 49, 87, 88, 89, 95, 96,
                                           1000, 4096, 9180, 65535));

TEST(Aal5, CorruptedPayloadFailsCrc) {
  auto cells = segment(VcId{0, 1}, random_payload(500));
  cells[2].payload[10] ^= std::byte{0x01};
  Reassembler r;
  std::optional<Result<Bytes>> out;
  for (const auto& c : cells) out = r.push(c);
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->is_ok());
  EXPECT_EQ(out->status().code(), ErrorCode::data_corruption);
}

TEST(Aal5, DroppedCellDetected) {
  const auto cells = segment(VcId{0, 1}, random_payload(500));
  Reassembler r;
  std::optional<Result<Bytes>> out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i == 3) continue;  // lose one cell
    out = r.push(cells[i]);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->is_ok());
}

TEST(Aal5, ReassemblerRecoversAfterError) {
  auto bad = segment(VcId{0, 1}, random_payload(100, 1));
  bad[0].payload[0] ^= std::byte{0xFF};
  const Bytes good_payload = random_payload(100, 2);
  const auto good = segment(VcId{0, 1}, good_payload);

  Reassembler r;
  std::optional<Result<Bytes>> out;
  for (const auto& c : bad) out = r.push(c);
  EXPECT_FALSE(out->is_ok());

  for (const auto& c : good) out = r.push(c);
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->is_ok());
  EXPECT_EQ(out->value(), good_payload);
}

TEST(Aal5, BackToBackPdusOnOneVc) {
  Reassembler r;
  for (int k = 0; k < 5; ++k) {
    const Bytes payload = random_payload(37 * static_cast<std::size_t>(k + 1),
                                         static_cast<std::uint64_t>(k));
    std::optional<Result<Bytes>> out;
    for (const auto& c : segment(VcId{0, 1}, payload)) out = r.push(c);
    ASSERT_TRUE(out.has_value() && out->is_ok());
    EXPECT_EQ(out->value(), payload);
  }
}

TEST(Aal5, CpcsPduIsMultipleOf48WithTrailer) {
  for (std::size_t n : {0u, 1u, 40u, 41u, 100u}) {
    const Bytes pdu = build_cpcs_pdu(random_payload(n));
    EXPECT_EQ(pdu.size() % Cell::kPayloadSize, 0u);
    EXPECT_GE(pdu.size(), n + kTrailerSize);
    EXPECT_LT(pdu.size(), n + kTrailerSize + Cell::kPayloadSize);
  }
}

}  // namespace
}  // namespace ncs::atm::aal5
