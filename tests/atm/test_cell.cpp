#include "atm/cell.hpp"

#include <gtest/gtest.h>

namespace ncs::atm {
namespace {

Cell make_cell() {
  Cell c;
  c.header.gfc = 0x5;
  c.header.vpi = 0xAB;
  c.header.vci = 0x1234;
  c.header.pti = 0x3;
  c.header.clp = true;
  for (std::size_t i = 0; i < Cell::kPayloadSize; ++i)
    c.payload[i] = static_cast<std::byte>(i * 7);
  return c;
}

TEST(Cell, PackUnpackRoundTrip) {
  const Cell c = make_cell();
  std::array<std::byte, Cell::kSize> wire{};
  c.pack(wire);

  const auto r = Cell::unpack(wire);
  ASSERT_TRUE(r.is_ok());
  const Cell& d = r.value();
  EXPECT_EQ(d.header.gfc, c.header.gfc);
  EXPECT_EQ(d.header.vpi, c.header.vpi);
  EXPECT_EQ(d.header.vci, c.header.vci);
  EXPECT_EQ(d.header.pti, c.header.pti);
  EXPECT_EQ(d.header.clp, c.header.clp);
  EXPECT_EQ(d.payload, c.payload);
}

TEST(Cell, HeaderCorruptionDetectedByHec) {
  const Cell c = make_cell();
  std::array<std::byte, Cell::kSize> wire{};
  c.pack(wire);
  wire[2] ^= std::byte{0x10};  // flip a VCI bit
  const auto r = Cell::unpack(wire);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::data_corruption);
}

TEST(Cell, PayloadCorruptionNotCaughtByHec) {
  // HEC only protects the header; payload integrity is AAL's job.
  const Cell c = make_cell();
  std::array<std::byte, Cell::kSize> wire{};
  c.pack(wire);
  wire[20] ^= std::byte{0xFF};
  EXPECT_TRUE(Cell::unpack(wire).is_ok());
}

TEST(Cell, EndOfPduFlagInPti) {
  Cell c;
  EXPECT_FALSE(c.header.aal5_end_of_pdu());
  c.header.set_aal5_end_of_pdu(true);
  EXPECT_TRUE(c.header.aal5_end_of_pdu());
  EXPECT_EQ(c.header.pti, 1);
  c.header.set_aal5_end_of_pdu(false);
  EXPECT_FALSE(c.header.aal5_end_of_pdu());
}

TEST(Cell, VciFullRangeSurvivesPacking) {
  for (std::uint32_t vci : {0u, 1u, 255u, 4096u, 65535u}) {
    Cell c;
    c.header.vci = static_cast<std::uint16_t>(vci);
    std::array<std::byte, Cell::kSize> wire{};
    c.pack(wire);
    const auto r = Cell::unpack(wire);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().header.vci, vci);
  }
}

TEST(VcId, OrderingAndEquality) {
  EXPECT_EQ((VcId{0, 5}), (VcId{0, 5}));
  EXPECT_LT((VcId{0, 5}), (VcId{1, 0}));
  EXPECT_LT((VcId{1, 2}), (VcId{1, 3}));
}

}  // namespace
}  // namespace ncs::atm
