#include "atm/signaling.hpp"

#include <gtest/gtest.h>

namespace ncs::atm {
namespace {

using namespace ncs::literals;

struct SignalingFixture : ::testing::Test {
  SignalingFixture() {
    LanConfig lc;
    lc.n_hosts = 3;
    lan = std::make_unique<AtmLan>(engine, lc);
    controller = std::make_unique<CallController>(engine, *lan);
  }

  sim::Engine engine;
  std::unique_ptr<AtmLan> lan;
  std::unique_ptr<CallController> controller;
};

TEST(SignalingMessage, EncodeDecodeRoundTrip) {
  SignalingMessage m;
  m.type = SignalingMessageType::connect;
  m.call_ref = 0xABCD1234;
  m.calling_party = 7;
  m.called_party = 2;
  m.assigned_vc = VcId{1, 2000};
  m.peer_vc = VcId{0, 1025};

  const auto d = SignalingMessage::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().type, SignalingMessageType::connect);
  EXPECT_EQ(d.value().call_ref, 0xABCD1234u);
  EXPECT_EQ(d.value().calling_party, 7);
  EXPECT_EQ(d.value().called_party, 2);
  EXPECT_EQ(d.value().assigned_vc, (VcId{1, 2000}));
  EXPECT_EQ(d.value().peer_vc, (VcId{0, 1025}));
}

TEST(SignalingMessage, MalformedRejected) {
  EXPECT_FALSE(SignalingMessage::decode(to_bytes("short")).is_ok());
  Bytes bad(19, std::byte{0});  // type = 0: invalid
  EXPECT_FALSE(SignalingMessage::decode(bad).is_ok());
}

TEST_F(SignalingFixture, CallSetupAssignsDynamicVc) {
  std::optional<VcId> caller_vc;
  controller->agent(1);  // callee agent exists (default-accepts)
  controller->agent(0).open_call(1, [&](Result<VcId> vc) {
    ASSERT_TRUE(vc.is_ok());
    caller_vc = vc.value();
  });
  engine.run();

  ASSERT_TRUE(caller_vc.has_value());
  EXPECT_GE(caller_vc->vci, kDynamicVciBase);
  EXPECT_EQ(controller->stats().connects, 1u);
  EXPECT_EQ(controller->stats().active_calls, 1u);
  // Callee learned its own transmit label too.
  EXPECT_TRUE(controller->agent(1).accepted_vc_from(0).has_value());
}

TEST_F(SignalingFixture, DataFlowsOnTheSignaledVc) {
  std::optional<VcId> caller_vc;
  controller->agent(1);
  controller->agent(0).open_call(1, [&](Result<VcId> vc) { caller_vc = vc.value(); });
  engine.run();
  ASSERT_TRUE(caller_vc.has_value());

  Bytes got;
  lan->nic(1).set_rx_handler([&](VcId vc, Bytes data, bool) {
    EXPECT_EQ(vc, *caller_vc);  // delivered under the caller's tx label
    got = std::move(data);
  });
  lan->nic(0).submit_tx(*caller_vc, to_bytes("svc data"), true);
  engine.run();
  EXPECT_EQ(got, to_bytes("svc data"));
}

TEST_F(SignalingFixture, BothDirectionsWork) {
  std::optional<VcId> caller_vc;
  controller->agent(2);
  controller->agent(0).open_call(2, [&](Result<VcId> vc) { caller_vc = vc.value(); });
  engine.run();
  const auto callee_vc = controller->agent(2).accepted_vc_from(0);
  ASSERT_TRUE(caller_vc.has_value());
  ASSERT_TRUE(callee_vc.has_value());

  Bytes at0, at2;
  lan->nic(0).set_rx_handler([&](VcId, Bytes d, bool) { at0 = std::move(d); });
  lan->nic(2).set_rx_handler([&](VcId, Bytes d, bool) { at2 = std::move(d); });
  lan->nic(0).submit_tx(*caller_vc, to_bytes("to callee"), true);
  lan->nic(2).submit_tx(*callee_vc, to_bytes("to caller"), true);
  engine.run();
  EXPECT_EQ(at2, to_bytes("to callee"));
  EXPECT_EQ(at0, to_bytes("to caller"));
}

TEST_F(SignalingFixture, RejectedCallReportsError) {
  controller->agent(1).set_incoming_filter([](int) { return false; });
  Status status;
  controller->agent(0).open_call(1, [&](Result<VcId> vc) {
    EXPECT_FALSE(vc.is_ok());
    status = vc.status();
  });
  engine.run();
  EXPECT_EQ(status.code(), ErrorCode::failed_precondition);
  EXPECT_EQ(controller->stats().rejects, 1u);
  EXPECT_EQ(controller->stats().active_calls, 0u);
}

TEST_F(SignalingFixture, ReleaseTearsDownRoutes) {
  std::optional<VcId> caller_vc;
  controller->agent(1);
  controller->agent(0).open_call(1, [&](Result<VcId> vc) { caller_vc = vc.value(); });
  engine.run();
  ASSERT_TRUE(caller_vc.has_value());

  controller->agent(0).release_call(*caller_vc);
  engine.run();
  EXPECT_EQ(controller->stats().active_calls, 0u);
  EXPECT_FALSE(controller->agent(1).accepted_vc_from(0).has_value());

  // Traffic on the released label is now unroutable.
  const auto unroutable_before = lan->fabric().stats().unroutable;
  lan->nic(0).submit_tx(*caller_vc, to_bytes("ghost"), true);
  engine.run();
  EXPECT_EQ(lan->fabric().stats().unroutable, unroutable_before + 1);
}

TEST_F(SignalingFixture, ConcurrentCallsGetDistinctLabels) {
  std::vector<VcId> vcs;
  controller->agent(1);
  controller->agent(2);
  for (int callee : {1, 2, 1}) {
    controller->agent(0).open_call(callee, [&](Result<VcId> vc) {
      ASSERT_TRUE(vc.is_ok());
      vcs.push_back(vc.value());
    });
  }
  engine.run();
  ASSERT_EQ(vcs.size(), 3u);
  EXPECT_NE(vcs[0], vcs[1]);
  EXPECT_NE(vcs[1], vcs[2]);
  EXPECT_NE(vcs[0], vcs[2]);
  EXPECT_EQ(controller->stats().active_calls, 3u);
}

TEST_F(SignalingFixture, SignalingCoexistsWithPvcMesh) {
  // The static PVC mesh keeps working while SVCs are up.
  std::optional<VcId> caller_vc;
  controller->agent(1);
  controller->agent(0).open_call(1, [&](Result<VcId> vc) { caller_vc = vc.value(); });
  engine.run();

  Bytes pvc_got, svc_got;
  lan->nic(1).set_rx_handler([&](VcId vc, Bytes d, bool) {
    if (vc == *caller_vc) {
      svc_got = std::move(d);
    } else {
      EXPECT_EQ(src_of(vc), 0);
      pvc_got = std::move(d);
    }
  });
  lan->nic(0).submit_tx(vc_to(1), to_bytes("over the pvc"), true);
  engine.run();
  lan->nic(0).submit_tx(*caller_vc, to_bytes("over the svc"), true);
  engine.run();
  EXPECT_EQ(pvc_got, to_bytes("over the pvc"));
  EXPECT_EQ(svc_got, to_bytes("over the svc"));
}


// --- failure paths (scripted via the switches' SwitchFault) ----------------

TEST_F(SignalingFixture, ReleaseMidTransferDropsTheTailWithoutCrashing) {
  std::optional<VcId> vc;
  controller->agent(1);
  controller->agent(0).open_call(1, [&](Result<VcId> r) { vc = r.value(); });
  engine.run();
  ASSERT_TRUE(vc.has_value());

  int delivered = 0;
  lan->nic(1).set_rx_handler([&](VcId, Bytes, bool) { ++delivered; });
  // Stream 8 bursts through the NIC's two tx buffers via backpressure.
  int submitted = 0;
  std::function<void()> pump = [&] {
    while (submitted < 8 && lan->nic(0).tx_buffer_available()) {
      lan->nic(0).submit_tx(*vc, Bytes(4000, std::byte{1}), true);
      ++submitted;
    }
    if (submitted < 8) lan->nic(0).notify_tx_buffer(pump);
  };
  pump();
  // The callee hangs up while the burst train is still on the wire: its
  // RELEASE overtakes the queued data, so the tail goes unroutable.
  const VcId callee_vc = *controller->agent(1).accepted_vc_from(0);
  engine.schedule_after(700_us, [&, callee_vc] {
    controller->agent(1).release_call(callee_vc);
  });
  engine.run();
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, 8);
  EXPECT_EQ(controller->stats().active_calls, 0u);
  EXPECT_GT(lan->fabric().stats().unroutable, 0u);
}

TEST_F(SignalingFixture, SetupTowardFailedPortIsRejectedNotHung) {
  lan->fabric().fault().set_port_down(2, true);
  controller->agent(2);
  bool answered = false;
  Status status;
  controller->agent(0).open_call(2, [&](Result<VcId> r) {
    answered = true;
    status = r.status();
  });
  engine.run();
  EXPECT_TRUE(answered);  // rejected immediately, not a hung SETUP
  EXPECT_EQ(status.code(), ErrorCode::failed_precondition);
  EXPECT_EQ(controller->stats().rejects, 1u);
  EXPECT_EQ(controller->stats().active_calls, 0u);
}

TEST_F(SignalingFixture, PortFailureReleasesCallsAndRecoveredPortCarriesNewSvc) {
  std::optional<VcId> first;
  controller->agent(1);
  controller->agent(0).open_call(1, [&](Result<VcId> r) { first = r.value(); });
  engine.run();
  ASSERT_TRUE(first.has_value());

  lan->fabric().fault().set_port_down(1, true);
  engine.run();
  EXPECT_EQ(controller->stats().faulted_releases, 1u);
  EXPECT_EQ(controller->stats().active_calls, 0u);

  // After recovery a fresh SETUP succeeds with a new label, and the
  // re-established circuit carries data end to end.
  lan->fabric().fault().set_port_down(1, false);
  std::optional<VcId> second;
  controller->agent(0).open_call(1, [&](Result<VcId> r) { second = r.value(); });
  engine.run();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first);

  Bytes got;
  lan->nic(1).set_rx_handler([&](VcId dvc, Bytes d, bool) {
    if (dvc == *second) got = std::move(d);
  });
  lan->nic(0).submit_tx(*second, to_bytes("after recovery"), true);
  engine.run();
  EXPECT_EQ(got, to_bytes("after recovery"));

  // The failed-over label stayed dead.
  const auto unroutable_before = lan->fabric().stats().unroutable;
  lan->nic(0).submit_tx(*first, to_bytes("stale"), true);
  engine.run();
  EXPECT_EQ(lan->fabric().stats().unroutable, unroutable_before + 1);
}

// --- dynamic-label space vs. the reserved planes ---------------------------

TEST_F(SignalingFixture, DynamicVciStopsBelowTheCollectivePlane) {
  // The last legal dynamic labels are kCollVciBase - 2 and - 1 (a call
  // takes one per direction); the allocator must hand them out rather than
  // hoard them.
  controller->set_next_vci_for_test(kCollVciBase - 2);
  std::optional<VcId> vc;
  controller->agent(1);
  controller->agent(0).open_call(1, [&](Result<VcId> r) { vc = r.value(); });
  engine.run();
  ASSERT_TRUE(vc.has_value());
  EXPECT_EQ(vc->vci, kCollVciBase - 2);
}

using SignalingDeathTest = SignalingFixture;

TEST_F(SignalingDeathTest, ExhaustedDynamicVciDiesInsteadOfSplicingIntoCollPlane) {
  // Regression: the guard used to assert against kRmaVciBase only, so a
  // long-lived SVC workload could allocate straight through
  // [kCollVciBase, kRmaVciBase) and splice calls into the firmware
  // combine contexts. Exhaustion must die loudly at the *collective* base.
  controller->set_next_vci_for_test(kCollVciBase);
  controller->agent(1);
  EXPECT_DEATH(
      {
        controller->agent(0).open_call(1, [](Result<VcId>) {});
        engine.run();
      },
      "dynamic VCI space exhausted");
}

// --- WAN (two-site) signaling --------------------------------------------------

struct WanSignalingFixture : ::testing::Test {
  WanSignalingFixture() {
    WanConfig wc;
    wc.n_hosts = 4;  // 0,1 at site 0; 2,3 at site 1
    wan = std::make_unique<AtmWan>(engine, wc);
    controller = std::make_unique<WanCallController>(engine, *wan);
  }

  sim::Engine engine;
  std::unique_ptr<AtmWan> wan;
  std::unique_ptr<WanCallController> controller;
};

TEST_F(WanSignalingFixture, SameSiteCallWorks) {
  std::optional<VcId> vc;
  controller->agent(1);
  controller->agent(0).open_call(1, [&](Result<VcId> r) { vc = r.value(); });
  engine.run();
  ASSERT_TRUE(vc.has_value());
  EXPECT_EQ(controller->stats().backbone_hops, 0u);

  Bytes got;
  wan->nic(1).set_rx_handler([&](VcId, Bytes d, bool) { got = std::move(d); });
  wan->nic(0).submit_tx(*vc, to_bytes("local call"), true);
  engine.run();
  EXPECT_EQ(got, to_bytes("local call"));
}

TEST_F(WanSignalingFixture, CrossSiteCallTransitsBackbone) {
  std::optional<VcId> vc;
  TimePoint connected;
  controller->agent(3);
  controller->agent(0).open_call(3, [&](Result<VcId> r) {
    vc = r.value();
    connected = engine.now();
  });
  engine.run();
  ASSERT_TRUE(vc.has_value());
  EXPECT_GE(controller->stats().backbone_hops, 2u);  // offer out, connect back
  // Setup latency includes at least two backbone propagations (2.5 ms each).
  EXPECT_GT((connected - TimePoint::origin()).ms(), 5.0);

  Bytes got;
  wan->nic(3).set_rx_handler([&](VcId dvc, Bytes d, bool) {
    EXPECT_EQ(dvc, *vc);
    got = std::move(d);
  });
  wan->nic(0).submit_tx(*vc, to_bytes("across the wan"), true);
  engine.run();
  EXPECT_EQ(got, to_bytes("across the wan"));
}

TEST_F(WanSignalingFixture, CrossSiteBothDirections) {
  std::optional<VcId> caller_vc;
  controller->agent(2);
  controller->agent(1).open_call(2, [&](Result<VcId> r) { caller_vc = r.value(); });
  engine.run();
  const auto callee_vc = controller->agent(2).accepted_vc_from(1);
  ASSERT_TRUE(caller_vc.has_value());
  ASSERT_TRUE(callee_vc.has_value());

  Bytes at1, at2;
  wan->nic(1).set_rx_handler([&](VcId, Bytes d, bool) { at1 = std::move(d); });
  wan->nic(2).set_rx_handler([&](VcId, Bytes d, bool) { at2 = std::move(d); });
  wan->nic(1).submit_tx(*caller_vc, to_bytes("east"), true);
  wan->nic(2).submit_tx(*callee_vc, to_bytes("west"), true);
  engine.run();
  EXPECT_EQ(at2, to_bytes("east"));
  EXPECT_EQ(at1, to_bytes("west"));
}

TEST_F(WanSignalingFixture, CrossSiteReleaseTearsDownBothSwitches) {
  std::optional<VcId> vc;
  controller->agent(3);
  controller->agent(0).open_call(3, [&](Result<VcId> r) { vc = r.value(); });
  engine.run();
  ASSERT_TRUE(vc.has_value());

  controller->agent(0).release_call(*vc);
  engine.run();
  EXPECT_EQ(controller->stats().active_calls, 0u);
  EXPECT_FALSE(controller->agent(3).accepted_vc_from(0).has_value());

  const auto unroutable_before = wan->site_switch(0).stats().unroutable;
  wan->nic(0).submit_tx(*vc, to_bytes("ghost"), true);
  engine.run();
  EXPECT_EQ(wan->site_switch(0).stats().unroutable, unroutable_before + 1);
}

TEST_F(WanSignalingFixture, CrossSiteRejectPropagates) {
  controller->agent(2).set_incoming_filter([](int) { return false; });
  Status status;
  controller->agent(0).open_call(2, [&](Result<VcId> r) { status = r.status(); });
  engine.run();
  EXPECT_EQ(status.code(), ErrorCode::failed_precondition);
  EXPECT_EQ(controller->stats().active_calls, 0u);
}

TEST_F(WanSignalingFixture, BackbonePortFailureReleasesAndCallReestablishes) {
  std::optional<VcId> vc;
  controller->agent(3);
  controller->agent(0).open_call(3, [&](Result<VcId> r) { vc = r.value(); });
  engine.run();
  ASSERT_TRUE(vc.has_value());

  wan->site_switch(1).fault().set_port_down(wan->backbone_port(1), true);
  engine.run();
  EXPECT_GE(controller->stats().faulted_releases, 1u);
  EXPECT_EQ(controller->stats().active_calls, 0u);

  // While the backbone is dead, a new cross-site SETUP is rejected
  // immediately instead of hanging on an undeliverable offer.
  Status status;
  controller->agent(0).open_call(3, [&](Result<VcId> r) { status = r.status(); });
  engine.run();
  EXPECT_EQ(status.code(), ErrorCode::failed_precondition);

  // After recovery the call comes back up and carries data again.
  wan->site_switch(1).fault().set_port_down(wan->backbone_port(1), false);
  std::optional<VcId> vc2;
  controller->agent(0).open_call(3, [&](Result<VcId> r) { vc2 = r.value(); });
  engine.run();
  ASSERT_TRUE(vc2.has_value());

  Bytes got;
  wan->nic(3).set_rx_handler([&](VcId dvc, Bytes d, bool) {
    if (dvc == *vc2) got = std::move(d);
  });
  wan->nic(0).submit_tx(*vc2, to_bytes("reestablished"), true);
  engine.run();
  EXPECT_EQ(got, to_bytes("reestablished"));
}

}  // namespace
}  // namespace ncs::atm
