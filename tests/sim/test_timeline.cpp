#include "sim/timeline.hpp"

#include <gtest/gtest.h>

namespace ncs::sim {
namespace {

using namespace ncs::literals;

TimePoint at(std::int64_t us) { return TimePoint::origin() + Duration::microseconds(static_cast<double>(us)); }

TEST(Timeline, RecordsIntervalsBetweenTransitions) {
  Timeline tl;
  const int t = tl.add_track("host/t0");
  tl.transition(t, at(0), Activity::idle);
  tl.transition(t, at(10), Activity::compute);
  tl.transition(t, at(30), Activity::communicate);
  tl.finish(at(40));

  const auto& ivs = tl.intervals(t);
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_EQ(ivs[0].activity, Activity::idle);
  EXPECT_EQ((ivs[0].end - ivs[0].begin).us(), 10);
  EXPECT_EQ(ivs[1].activity, Activity::compute);
  EXPECT_EQ((ivs[1].end - ivs[1].begin).us(), 20);
  EXPECT_EQ(ivs[2].activity, Activity::communicate);
}

TEST(Timeline, ZeroWidthTransitionsProduceNoIntervals) {
  Timeline tl;
  const int t = tl.add_track("x");
  tl.transition(t, at(5), Activity::idle);
  tl.transition(t, at(5), Activity::compute);
  tl.transition(t, at(5), Activity::communicate);
  tl.finish(at(9));
  ASSERT_EQ(tl.intervals(t).size(), 1u);
  EXPECT_EQ(tl.intervals(t)[0].activity, Activity::communicate);
}

TEST(Timeline, SummaryFractions) {
  Timeline tl;
  const int t = tl.add_track("x");
  tl.transition(t, at(0), Activity::compute);
  tl.transition(t, at(75), Activity::idle);
  tl.finish(at(100));

  const auto s = tl.summarize(t);
  EXPECT_DOUBLE_EQ(s.fraction(Activity::compute), 0.75);
  EXPECT_DOUBLE_EQ(s.fraction(Activity::idle), 0.25);
  EXPECT_DOUBLE_EQ(s.fraction(Activity::communicate), 0.0);
}

TEST(Timeline, MultipleTracksIndependent) {
  Timeline tl;
  const int a = tl.add_track("a");
  const int b = tl.add_track("b");
  tl.transition(a, at(0), Activity::compute);
  tl.transition(b, at(0), Activity::communicate);
  tl.finish(at(10));
  EXPECT_EQ(tl.intervals(a)[0].activity, Activity::compute);
  EXPECT_EQ(tl.intervals(b)[0].activity, Activity::communicate);
  EXPECT_EQ(tl.track_name(a), "a");
  EXPECT_EQ(tl.track_name(b), "b");
}

TEST(Timeline, AsciiRenderShowsDominantActivity) {
  Timeline tl;
  const int t = tl.add_track("n0");
  tl.transition(t, at(0), Activity::compute);
  tl.transition(t, at(50), Activity::idle);
  tl.finish(at(100));

  const std::string art = tl.render_ascii(at(0), at(100), 10);
  // First half compute glyphs, second half idle glyphs.
  EXPECT_NE(art.find("#####....."), std::string::npos) << art;
}

// Regression: degenerate render ranges used to abort (NCS_ASSERT) — and
// without the assert, width <= 0 handed std::string a negative length and
// t1 < t0 produced a garbage negative span. A bench whose run drains at
// t=0 renders exactly this.
TEST(Timeline, AsciiRenderDegenerateRangeIsSafe) {
  Timeline tl;
  const int t = tl.add_track("n0");
  tl.transition(t, at(0), Activity::compute);
  tl.finish(at(10));

  // Empty span: one blank column per track plus the legend, no crash.
  // (Only inspect the track row — the legend line always contains '#'.)
  const std::string empty_span = tl.render_ascii(at(5), at(5), 10);
  EXPECT_NE(empty_span.find("n0"), std::string::npos);
  EXPECT_NE(empty_span.find("span"), std::string::npos);
  EXPECT_EQ(empty_span.substr(0, empty_span.find('\n')).find('#'), std::string::npos)
      << empty_span;

  // Inverted span behaves like the empty one.
  const std::string inverted = tl.render_ascii(at(8), at(2), 10);
  EXPECT_EQ(inverted, empty_span);

  // Non-positive width clamps to one column instead of a negative length.
  const std::string narrow = tl.render_ascii(at(0), at(10), 0);
  EXPECT_NE(narrow.find("|#|"), std::string::npos) << narrow;
  const std::string negative = tl.render_ascii(at(0), at(10), -3);
  EXPECT_EQ(negative, narrow);
}

TEST(Timeline, GlyphsAndNamesDistinct) {
  EXPECT_NE(activity_glyph(Activity::compute), activity_glyph(Activity::idle));
  EXPECT_NE(activity_glyph(Activity::communicate), activity_glyph(Activity::overhead));
  EXPECT_STREQ(activity_name(Activity::compute), "compute");
}

TEST(TimelineDeathTest, BackwardsTransitionAborts) {
  Timeline tl;
  const int t = tl.add_track("x");
  tl.transition(t, at(10), Activity::idle);
  EXPECT_DEATH(tl.transition(t, at(5), Activity::compute), "backwards");
}

}  // namespace
}  // namespace ncs::sim
