#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/time.hpp"

namespace ncs::sim {
namespace {

using namespace ncs::literals;

TEST(Engine, StartsAtOriginEmpty) {
  Engine e;
  EXPECT_EQ(e.now(), TimePoint::origin());
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_after(3_us, [&] { order.push_back(3); });
  e.schedule_after(1_us, [&] { order.push_back(1); });
  e.schedule_after(2_us, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), TimePoint::origin() + 3_us);
}

TEST(Engine, SameTimeEventsFireInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.schedule_after(5_us, [&, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, PostRunsAfterQueuedNowEvents) {
  Engine e;
  std::vector<int> order;
  e.schedule_after(0_us, [&] { order.push_back(1); });
  e.post([&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule_after(1_us, chain);
  };
  e.schedule_after(1_us, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), TimePoint::origin() + 5_us);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_after(1_us, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine e;
  const EventId id = e.schedule_after(1_us, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelOneOfManyAtSameTime) {
  Engine e;
  std::vector<int> order;
  e.schedule_after(1_us, [&] { order.push_back(1); });
  const EventId id = e.schedule_after(1_us, [&] { order.push_back(2); });
  e.schedule_after(1_us, [&] { order.push_back(3); });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Engine, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Engine e;
  std::vector<int> order;
  e.schedule_after(1_us, [&] { order.push_back(1); });
  e.schedule_after(10_us, [&] { order.push_back(10); });
  e.run_until(TimePoint::origin() + 5_us);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(e.now(), TimePoint::origin() + 5_us);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
}

TEST(Engine, RunUntilIncludesDeadlineEvents) {
  Engine e;
  bool fired = false;
  e.schedule_after(5_us, [&] { fired = true; });
  e.run_until(TimePoint::origin() + 5_us);
  EXPECT_TRUE(fired);
}

TEST(Engine, ProcessedCountsFiredEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_after(1_us, [] {});
  const EventId id = e.schedule_after(2_us, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.processed(), 7u);
}

TEST(EngineDeathTest, SchedulingInThePastAborts) {
  Engine e;
  e.schedule_after(2_us, [] {});
  e.run();
  EXPECT_DEATH(e.schedule_at(TimePoint::origin() + 1_us, [] {}), "past");
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 50; ++i) {
      e.schedule_after(Duration::microseconds(i % 7), [&, i] {
        trace.push_back(e.now().ps() * 100 + i);
        if (i % 3 == 0) e.schedule_after(1_us, [&] { trace.push_back(e.now().ps()); });
      });
    }
    e.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ncs::sim
