#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace ncs::sim {
namespace {

using namespace ncs::literals;

// Every behavioural test runs against both queue backends: the calendar
// queue must be observationally identical to the legacy std::map ordering.
class EngineTest : public ::testing::TestWithParam<Engine::QueueKind> {
 protected:
  Engine e{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Backends, EngineTest,
                         ::testing::Values(Engine::QueueKind::calendar,
                                           Engine::QueueKind::legacy_map),
                         [](const auto& pinfo) {
                           return pinfo.param == Engine::QueueKind::calendar ? "calendar"
                                                                             : "legacy_map";
                         });

TEST_P(EngineTest, StartsAtOriginEmpty) {
  EXPECT_EQ(e.now(), TimePoint::origin());
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.step());
}

TEST_P(EngineTest, EventsFireInTimeOrder) {
  std::vector<int> order;
  e.schedule_after(3_us, [&] { order.push_back(3); });
  e.schedule_after(1_us, [&] { order.push_back(1); });
  e.schedule_after(2_us, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), TimePoint::origin() + 3_us);
}

TEST_P(EngineTest, SameTimeEventsFireInInsertionOrder) {
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.schedule_after(5_us, [&, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_P(EngineTest, PostRunsAfterQueuedNowEvents) {
  std::vector<int> order;
  e.schedule_after(0_us, [&] { order.push_back(1); });
  e.post([&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(EngineTest, EventsCanScheduleMoreEvents) {
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule_after(1_us, chain);
  };
  e.schedule_after(1_us, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), TimePoint::origin() + 5_us);
}

TEST_P(EngineTest, CancelPreventsFiring) {
  bool fired = false;
  const EventId id = e.schedule_after(1_us, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST_P(EngineTest, CancelAfterFireReturnsFalse) {
  const EventId id = e.schedule_after(1_us, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST_P(EngineTest, DoubleCancelReturnsFalse) {
  const EventId id = e.schedule_after(1_us, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
  e.run();
}

TEST_P(EngineTest, CancelOneOfManyAtSameTime) {
  std::vector<int> order;
  e.schedule_after(1_us, [&] { order.push_back(1); });
  const EventId id = e.schedule_after(1_us, [&] { order.push_back(2); });
  e.schedule_after(1_us, [&] { order.push_back(3); });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

// --- cancel-from-inside-a-callback audit (pinned before the calendar port:
// --- the id→slot mapping retires *before* the callback runs) ---

TEST_P(EngineTest, SelfCancelFromOwnCallbackReturnsFalse) {
  EventId id = 0;
  bool self_cancel_result = true;
  id = e.schedule_after(1_us, [&] { self_cancel_result = e.cancel(id); });
  e.run();
  EXPECT_FALSE(self_cancel_result);  // the firing event is no longer pending
  EXPECT_FALSE(e.cancel(id));
}

TEST_P(EngineTest, CancelSameTimeSiblingFromCallback) {
  std::vector<int> order;
  EventId sibling = 0;
  e.schedule_after(1_us, [&] {
    order.push_back(1);
    EXPECT_TRUE(e.cancel(sibling));   // still pending at the same timestamp
    EXPECT_FALSE(e.cancel(sibling));  // and exactly once
  });
  sibling = e.schedule_after(1_us, [&] { order.push_back(2); });
  e.schedule_after(1_us, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_TRUE(e.empty());
}

TEST_P(EngineTest, CancelLaterSiblingThenRescheduleFromCallback) {
  std::vector<std::string> log;
  EventId later = e.schedule_after(2_us, [&] { log.push_back("victim"); });
  e.schedule_after(1_us, [&] {
    EXPECT_TRUE(e.cancel(later));
    e.schedule_after(2_us, [&] { log.push_back("replacement"); });
  });
  e.run();
  EXPECT_EQ(log, (std::vector<std::string>{"replacement"}));
}

// A stale id whose storage slot has been reused by a *new* event must not
// cancel the new event — the subtle part of an id→slot scheme.
TEST_P(EngineTest, StaleIdDoesNotCancelSlotReuser) {
  bool first_fired = false;
  bool second_fired = false;
  const EventId first = e.schedule_after(1_us, [&] { first_fired = true; });
  e.run();
  EXPECT_TRUE(first_fired);
  // With a freelist this new event reuses `first`'s slot immediately.
  e.schedule_after(1_us, [&] { second_fired = true; });
  EXPECT_FALSE(e.cancel(first));
  e.run();
  EXPECT_TRUE(second_fired);
}

TEST_P(EngineTest, StaleIdFromInsideCallbackDoesNotCancelSlotReuser) {
  EventId original = 0;
  bool replacement_fired = false;
  original = e.schedule_after(1_us, [&] {
    // Scheduling first makes slot reuse most likely; the stale cancel of
    // our own id must then hit the generation guard, not the new event.
    e.schedule_after(1_us, [&] { replacement_fired = true; });
    EXPECT_FALSE(e.cancel(original));
  });
  e.run();
  EXPECT_TRUE(replacement_fired);
}

TEST_P(EngineTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  std::vector<int> order;
  e.schedule_after(1_us, [&] { order.push_back(1); });
  e.schedule_after(10_us, [&] { order.push_back(10); });
  e.run_until(TimePoint::origin() + 5_us);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(e.now(), TimePoint::origin() + 5_us);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
}

TEST_P(EngineTest, RunUntilIncludesDeadlineEvents) {
  bool fired = false;
  e.schedule_after(5_us, [&] { fired = true; });
  e.run_until(TimePoint::origin() + 5_us);
  EXPECT_TRUE(fired);
}

TEST_P(EngineTest, ProcessedCountsFiredEvents) {
  for (int i = 0; i < 7; ++i) e.schedule_after(1_us, [] {});
  const EventId id = e.schedule_after(2_us, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.processed(), 7u);
}

TEST_P(EngineTest, PendingTracksQueueDepth) {
  EXPECT_EQ(e.pending(), 0u);
  const EventId a = e.schedule_after(1_us, [] {});
  e.schedule_after(2_us, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
}

TEST_P(EngineTest, CancelledEventCaptureIsDestroyed) {
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventId id = e.schedule_after(1_us, [t = std::move(token)] { (void)*t; });
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(e.cancel(id));
  EXPECT_TRUE(watch.expired());  // cancel releases the capture immediately
}

TEST_P(EngineTest, DeterministicAcrossRuns) {
  auto run_once = [this] {
    Engine eng{GetParam()};
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 50; ++i) {
      eng.schedule_after(Duration::microseconds(i % 7), [&, i] {
        trace.push_back(eng.now().ps() * 100 + i);
        if (i % 3 == 0) eng.schedule_after(1_us, [&] { trace.push_back(eng.now().ps()); });
      });
    }
    eng.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// Wide-timescale churn: microsecond traffic mixed with far-out timers that
// are almost always cancelled (the RTO pattern), across enough events to
// force several bucket-array resizes in both directions.
TEST_P(EngineTest, TimerChurnAcrossResizes) {
  std::uint64_t fired = 0;
  std::uint64_t timers_fired = 0;
  EventId timer = 0;
  std::function<void(int)> tick = [&](int i) {
    ++fired;
    if (timer != 0) e.cancel(timer);
    timer = e.schedule_after(200_ms, [&] { ++timers_fired; });
    if (i > 0) {
      e.schedule_after(Duration::microseconds((i * 7) % 13 + 1), [&, i] { tick(i - 1); });
      for (int j = 0; j < (i % 4); ++j) e.schedule_after(2_us, [&] { ++fired; });
    }
  };
  e.schedule_after(1_us, [&] { tick(400); });
  e.run();
  EXPECT_EQ(fired, 401u + 600u);  // 401 ticks + sum over i=1..400 of (i % 4)
  EXPECT_EQ(timers_fired, 1u);    // only the last RTO survives
  EXPECT_TRUE(e.empty());
}

TEST(EngineDeathTest, SchedulingInThePastAborts) {
  Engine e;
  e.schedule_after(2_us, [] {});
  e.run();
  EXPECT_DEATH(e.schedule_at(TimePoint::origin() + 1_us, [] {}), "past");
}

// --- cross-backend equivalence: the determinism contract itself ---

// Randomized schedule/cancel/run_until workloads must produce byte-identical
// firing traces on both backends. This is the engine-level half of the
// digest suite (tests/fault/test_determinism_digest.cpp runs the app-level
// half over chaos scenarios).
std::vector<std::string> record_trace(Engine::QueueKind kind, std::uint64_t seed) {
  Engine eng{kind};
  std::vector<std::string> trace;
  Rng rng{seed};
  std::vector<EventId> cancellable;
  std::function<void(int)> spawn = [&](int depth) {
    trace.push_back("fire@" + std::to_string(eng.now().ps()) + "#" +
                    std::to_string(trace.size()));
    if (depth <= 0) return;
    const int n = 1 + static_cast<int>(rng.next_below(4));
    for (int k = 0; k < n; ++k) {
      const auto gap = Duration::picoseconds(static_cast<std::int64_t>(rng.next_below(5'000'000)));
      const EventId id = eng.schedule_after(gap, [&, depth] { spawn(depth - 1); });
      if (rng.next_below(8) == 0) cancellable.push_back(id);
    }
    if (!cancellable.empty() && rng.next_below(3) == 0) {
      const std::size_t pick = rng.next_below(cancellable.size());
      const bool ok = eng.cancel(cancellable[pick]);
      trace.push_back(std::string("cancel:") + (ok ? "hit" : "stale"));
      cancellable.erase(cancellable.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  };
  for (int i = 0; i < 24; ++i)
    eng.schedule_after(Duration::microseconds(static_cast<double>(rng.next_below(40))),
                       [&] { spawn(4); });
  eng.run_until(eng.now() + 30_us);
  trace.push_back("pending@deadline=" + std::to_string(eng.pending()));
  eng.run();
  trace.push_back("end@" + std::to_string(eng.now().ps()) + " processed=" +
                  std::to_string(eng.processed()));
  return trace;
}

TEST(EngineEquivalence, CalendarMatchesLegacyMapOrderingExactly) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1995ull, 0xCAFEull}) {
    const auto calendar = record_trace(Engine::QueueKind::calendar, seed);
    const auto legacy = record_trace(Engine::QueueKind::legacy_map, seed);
    ASSERT_EQ(calendar, legacy) << "seed " << seed;
    ASSERT_GT(calendar.size(), 100u) << "workload degenerated; seed " << seed;
  }
}

}  // namespace
}  // namespace ncs::sim
