#!/usr/bin/env python3
"""Self-check for tools/bench_diff.py — the gate that gates the gates.

Builds synthetic ncs-bench-v1 reports and asserts the three numeric
classes behave:

  symmetric   any drift beyond --tol fails, both directions
  rate        higher-is-better: improvements pass, a drop beyond
              --rate-tol fails
  latency     lower-is-better: improvements pass, a p99.9 rise beyond
              --lat-tol fails (the injected-regression case CI runs this
              file for)

Run: python3 tools/test_bench_diff.py   (exit 0 = bench_diff behaves)
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_diff.py")

REPORT = {
    "schema": "ncs-bench-v1",
    "bench": "selfcheck",
    "rows": [
        {
            "experiment": "telemetry",
            "payload_bytes": 64,
            "msgs_per_sec": 100000.0,
            "e2e_p99_us": 120.0,
            "e2e_p999_us": 480.0,
            "slo_compliance": 1.0,
        }
    ],
    "summary": {"all_ok": True, "sim_elapsed_sec": 1.25},
}


def run_diff(base, cur, *extra):
    with tempfile.TemporaryDirectory() as d:
        bp = os.path.join(d, "base.json")
        cp = os.path.join(d, "cur.json")
        with open(bp, "w") as f:
            json.dump(base, f)
        with open(cp, "w") as f:
            json.dump(cur, f)
        r = subprocess.run([sys.executable, TOOL, bp, cp, *extra],
                           capture_output=True, text=True)
        return r.returncode, r.stdout + r.stderr


def mutate(**changes):
    cur = copy.deepcopy(REPORT)
    cur["rows"][0].update(changes)
    return cur


def check(name, want_exit, got_exit, output):
    if got_exit != want_exit:
        print(f"FAIL {name}: expected exit {want_exit}, got {got_exit}\n"
              f"{output}", file=sys.stderr)
        sys.exit(1)
    print(f"ok   {name}")


def main():
    code, out = run_diff(REPORT, copy.deepcopy(REPORT))
    check("identical reports pass", 0, code, out)

    # Symmetric fields: deterministic, both directions drift.
    code, out = run_diff(REPORT, mutate(slo_compliance=0.9))
    check("symmetric drift fails", 1, code, out)

    # Rate class: higher is better.
    code, out = run_diff(REPORT, mutate(msgs_per_sec=250000.0))
    check("rate improvement passes", 0, code, out)
    code, out = run_diff(REPORT, mutate(msgs_per_sec=30000.0))
    check("rate collapse fails", 1, code, out)
    code, out = run_diff(REPORT, mutate(msgs_per_sec=80000.0))
    check("rate wobble within rate-tol passes", 0, code, out)

    # Latency class: lower is better — the injected p99.9 regression.
    code, out = run_diff(REPORT, mutate(e2e_p999_us=960.0))
    check("p999 regression fails", 1, code, out)
    if "latency" not in out:
        print(f"FAIL p999 regression not classified as latency:\n{out}",
              file=sys.stderr)
        sys.exit(1)
    code, out = run_diff(REPORT, mutate(e2e_p999_us=100.0))
    check("p999 improvement passes", 0, code, out)
    code, out = run_diff(REPORT, mutate(e2e_p99_us=130.0))
    check("p99 wobble within lat-tol passes", 0, code, out)
    code, out = run_diff(REPORT, mutate(e2e_p99_us=130.0), "--lat-tol", "0.05")
    check("tightened lat-tol catches the wobble", 1, code, out)

    print("bench_diff self-check: all behaviors hold")


if __name__ == "__main__":
    main()
