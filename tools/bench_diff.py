#!/usr/bin/env python3
"""Diff an ncs-bench-v1 report against a recorded ncs-bench-baseline-v1.

The simulator is deterministic, so on identical code the numbers match to
the last digit; a tolerance (default 2%) absorbs intentional model tweaks
while still catching perf regressions and accidental behaviour changes.

Throughput fields (name ending in `_per_sec`, or containing `speedup`) are
wall-clock rates where higher is better: improvements never count as
drift, and regressions are judged against the looser --rate-tol (default
0.6, i.e. fail only when the current rate drops below 40% of baseline) so
hardware variance between the recording machine and CI does not trip the
gate, while an algorithmic regression in the event core still does.

Latency fields (name ending in `_p99`, `_p999`, `_p99_us`, `_p999_us` or
`_latency_us`) are lower-is-better tails over *simulated* time: getting
faster never counts as drift, while a rise beyond --lat-tol (default
0.25) fails the gate. The asymmetric tolerance exists because tail
quantiles snap between histogram buckets — a one-bucket wobble is noise,
a 25% p99.9 climb is a scheduling or queueing regression.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--bench NAME]
                        [--tol 0.02] [--rate-tol 0.6] [--lat-tol 0.25]

BASELINE.json is either an ncs-bench-baseline-v1 document (its `benches`
map is searched for the bench named in CURRENT.json, or for --bench) or a
bare ncs-bench-v1 document. Exit status: 0 = within tolerance, 1 = drift,
2 = usage/schema error.
"""

import argparse
import json
import re
import sys

# Higher-is-better wall-clock rates: events_per_sec, msgs_per_sec,
# speedup_vs_legacy, ...
RATE_FIELD = re.compile(r"(_per_sec$|speedup)")

# Lower-is-better latency tails: e2e_p999_us, rma_p99_us, put_latency_us, ...
LAT_FIELD = re.compile(r"(_p99$|_p999$|_p99_us$|_p999_us$|_latency_us$)")


def fail(msg):
    print(f"bench_diff: {msg}", file=sys.stderr)
    sys.exit(2)


def pick_baseline(doc, bench_name):
    """Resolve a baseline document to the single-bench report to compare."""
    if not isinstance(doc, dict):
        fail(f"baseline is not a JSON object (got {type(doc).__name__})")
    schema = doc.get("schema", "")
    if schema == "ncs-bench-baseline-v1":
        benches = doc.get("benches")
        if not isinstance(benches, dict):
            fail("baseline has no 'benches' map (malformed "
                 "ncs-bench-baseline-v1 document)")
        if bench_name not in benches:
            fail(f"baseline has no bench {bench_name!r} "
                 f"(has: {', '.join(sorted(benches)) or 'none'})")
        entry = benches[bench_name]
        if not isinstance(entry, dict):
            fail(f"baseline entry for {bench_name!r} is not a bench report "
                 f"(got {type(entry).__name__})")
        return entry
    if schema == "ncs-bench-v1":
        recorded = doc.get("bench")
        if recorded != bench_name:
            fail(f"baseline is a bare report for bench {recorded!r}, but the "
                 f"current report is {bench_name!r} — wrong baseline file, "
                 "or pass --bench to override")
        return doc
    fail(f"unrecognised baseline schema {schema!r}")


def diff(path, base, cur, tol, rate_tol, lat_tol, drifts, key=None):
    """Structural diff: exact for strings/bools/shape, relative for numbers.

    `key` is the nearest enclosing dict key — what classifies a numeric
    leaf as a symmetric deterministic quantity, a higher-is-better rate,
    or a lower-is-better latency tail.
    """
    if isinstance(base, dict) and isinstance(cur, dict):
        for k in sorted(set(base) | set(cur)):
            if k not in cur:
                drifts.append(f"{path}.{k}: missing from current")
            elif k not in base:
                drifts.append(f"{path}.{k}: not in baseline (new field)")
            else:
                diff(f"{path}.{k}", base[k], cur[k], tol, rate_tol, lat_tol,
                     drifts, key=k)
    elif isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            drifts.append(f"{path}: length {len(base)} -> {len(cur)}")
        for i, (b, c) in enumerate(zip(base, cur)):
            diff(f"{path}[{i}]", b, c, tol, rate_tol, lat_tol, drifts, key=key)
    elif isinstance(base, bool) or isinstance(cur, bool):
        if base is not cur:
            drifts.append(f"{path}: {base} -> {cur}")
    elif isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        if key is not None and RATE_FIELD.search(key):
            # Higher is better: only a regression beyond rate_tol drifts.
            if base > 0 and (base - cur) / base > rate_tol:
                pct = (cur - base) / base * 100.0
                drifts.append(f"{path}: rate {base:g} -> {cur:g} ({pct:+.2f}%)")
            return
        if key is not None and LAT_FIELD.search(key):
            # Lower is better: only a rise beyond lat_tol drifts.
            if base > 0 and (cur - base) / base > lat_tol:
                pct = (cur - base) / base * 100.0
                drifts.append(f"{path}: latency {base:g} -> {cur:g} "
                              f"({pct:+.2f}%)")
            return
        scale = max(abs(base), abs(cur))
        if scale > 0 and abs(cur - base) / scale > tol:
            pct = (cur - base) / scale * 100.0
            drifts.append(f"{path}: {base:g} -> {cur:g} ({pct:+.2f}%)")
    elif base != cur:
        drifts.append(f"{path}: {base!r} -> {cur!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--bench", help="bench name to pull from a baseline map "
                                    "(default: the current report's name)")
    ap.add_argument("--tol", type=float, default=0.02,
                    help="relative tolerance for numeric fields (default 0.02)")
    ap.add_argument("--rate-tol", type=float, default=0.6,
                    help="allowed relative drop for higher-is-better rate "
                         "fields (*_per_sec, speedup); improvements always "
                         "pass (default 0.6)")
    ap.add_argument("--lat-tol", type=float, default=0.25,
                    help="allowed relative rise for lower-is-better latency "
                         "tails (*_p99, *_p999, *_p99_us, *_p999_us, "
                         "*_latency_us); improvements always pass "
                         "(default 0.25)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base_doc = json.load(f)
        with open(args.current) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))

    if not isinstance(cur, dict):
        fail(f"current report is not a JSON object (got {type(cur).__name__})")
    if cur.get("schema") != "ncs-bench-v1":
        fail(f"current report schema is {cur.get('schema')!r}, "
             "expected ncs-bench-v1")
    bench_name = args.bench or cur.get("bench")
    if not bench_name:
        fail("current report has no bench name; pass --bench")
    base = pick_baseline(base_doc, bench_name)

    drifts = []
    diff(bench_name, base, cur, args.tol, args.rate_tol, args.lat_tol, drifts)
    if drifts:
        print(f"bench_diff: {bench_name}: {len(drifts)} field(s) drifted "
              f"beyond {args.tol:.0%}:")
        for d in drifts:
            print(f"  {d}")
        sys.exit(1)
    print(f"bench_diff: {bench_name}: within {args.tol:.0%} of baseline")


if __name__ == "__main__":
    main()
