// One-sided RMA engine: NCS_put / NCS_get / remote atomics over HSM.
//
// The paper's HSM path already removed the kernel from the data plane;
// this subsystem removes the *receiver's threads* too. Each rank's engine
// terminates a dedicated PVC mesh (atm::rma_vc_to, a second label plane
// parallel to the data mesh) directly in the NIC upcall, the way the
// signaling agent terminates VPI 0 / VCI 5 — so a put lands in the target
// window and an atomic executes against it with zero involvement from the
// target's send/receive/EC threads. Target-side work is charged as
// adapter firmware time (Params::target_exec), not host CPU.
//
// Initiator side: posting is cheap (descriptor build, desc_post_cycles on
// the calling thread) and returns an op id immediately; the operation's
// fate arrives on the endpoint's CompletionQueue. Per-peer admission
// credits bound the outstanding-descriptor window (ops beyond the window
// defer in FIFO order), and a per-op response timer drives retransmission:
// every request kind is made idempotent at the target (puts/gets by
// nature, atomics by a response cache keyed on op id, pruned by the
// initiator's advertised completion watermark), so a lost request or
// response is repaired by simple resend. When retries exhaust — the
// persistent-failure case, e.g. a SwitchFault tore the circuit down — the
// op completes *with error* on the CQ (typed message_timeout), its credit
// is released, and the node's exception handler is informed; no operation
// is ever silently dropped.
//
// Determinism: all state changes happen in engine-event or green-thread
// context under the simulator's (time, seq) contract; identical configs
// produce bit-identical completion streams (asserted by tests/rma).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "atm/network.hpp"
#include "atm/nic.hpp"
#include "common/bytes.hpp"
#include "core/mts/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "rma/cq.hpp"
#include "rma/window.hpp"

namespace ncs::rma {

struct Params {
  /// Outstanding operations per peer before posts defer (descriptor ring
  /// depth on the adapter).
  int op_credits = 8;
  /// Largest single put/get payload (one descriptor).
  std::size_t max_op_bytes = 1 << 20;
  /// Host cycles to build and ring a descriptor (the entire initiator-side
  /// software cost — the one-sided analogue of the paper's send overhead).
  double desc_post_cycles = 120;
  /// Adapter firmware time to execute one request at the target (window
  /// lookup, DMA setup or atomic read-modify-write).
  Duration target_exec = Duration::microseconds(1.5);
  /// Response timeout before a request is retransmitted. Must exceed the
  /// worst-case RTT of the provisioned topology (WAN hops are milliseconds).
  Duration response_timeout = Duration::milliseconds(40);
  /// Retransmissions before an op completes with error.
  int retry_limit = 8;
};

class Engine {
 public:
  Engine(mts::Scheduler& host, atm::Nic& nic, int rank, int n_procs,
         Params params = {});

  int rank() const { return rank_; }
  int n_procs() const { return n_procs_; }
  const Params& params() const { return params_; }

  // --- registration ---

  /// Registers `bytes` of engine-owned zeroed storage as window `id`.
  Window& create_window(int id, std::size_t bytes);
  /// Registers caller-owned memory (must outlive the engine) as window `id`.
  Window& register_window(int id, std::span<std::byte> user);
  /// Local window by id, or nullptr.
  Window* window(int id);

  /// Resolves a remote coordinate to the adapter descriptor that would
  /// carry it: the RMA-plane VC toward `peer` plus the target window
  /// coordinates. Pure translation; no validation against the remote side.
  DmaDescriptor descriptor_for(int peer, int rwindow, std::uint64_t roffset,
                               std::uint32_t len) const {
    return DmaDescriptor{atm::rma_vc_to(peer), rwindow, roffset, len};
  }

  // --- one-sided operations (calling thread context; non-blocking) ---

  /// Copies `data` into remote (rwindow, roffset). With `notify`, the
  /// target's CQ receives a remote_put completion when the data lands
  /// (exactly once, retransmissions deduplicated).
  std::uint32_t put(int peer, int rwindow, std::uint64_t roffset, BytesView data,
                    bool notify = false, std::uint64_t cookie = 0);

  /// Reads `len` bytes from remote (rwindow, roffset) into local
  /// (lwindow, loffset); data is in place when the completion arrives.
  std::uint32_t get(int peer, int rwindow, std::uint64_t roffset, int lwindow,
                    std::uint64_t loffset, std::uint32_t len,
                    std::uint64_t cookie = 0);

  /// Atomically adds `delta` to the u64 at remote (rwindow, roffset);
  /// completion carries the pre-update value.
  std::uint32_t fetch_add(int peer, int rwindow, std::uint64_t roffset,
                          std::uint64_t delta, std::uint64_t cookie = 0);

  /// Atomically replaces the u64 at remote (rwindow, roffset) with
  /// `desired` iff it equals `expected`; completion carries the value read
  /// (swap happened iff value == expected).
  std::uint32_t compare_swap(int peer, int rwindow, std::uint64_t roffset,
                             std::uint64_t expected, std::uint64_t desired,
                             std::uint64_t cookie = 0);

  /// Blocks the calling thread until every posted op has completed (ok or
  /// error). Completions stay on the CQ for the caller to drain.
  void fence();

  CompletionQueue& cq() { return cq_; }

  /// Outstanding (posted, not yet completed) operations.
  int pending() const { return pending_total_; }

  /// Admission credits held right now, summed over every peer — the
  /// telemetry probe for descriptor-ring occupancy.
  int credits_in_use() const {
    int n = 0;
    for (const PeerState& ps : peers_) n += ps.credits_used;
    return n;
  }

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t fetch_adds = 0;
    std::uint64_t compare_swaps = 0;
    std::uint64_t bytes_put = 0;
    std::uint64_t bytes_got = 0;
    std::uint64_t completions = 0;        // ok completions (initiator side)
    std::uint64_t error_completions = 0;  // retry-exhausted ops
    std::uint64_t retransmits = 0;
    std::uint64_t deferred = 0;      // posts that waited for a credit
    std::uint64_t tx_chunks = 0;     // NIC submissions
    std::uint64_t rx_requests = 0;   // requests executed at this target
    std::uint64_t rx_replays = 0;    // duplicate requests answered from cache
    std::uint64_t rx_garbled = 0;    // undersized/over-declared frames dropped
    std::uint64_t rx_bad_window = 0; // out-of-range window/offset dropped
    std::uint64_t notifies = 0;      // remote_put completions delivered here
  };
  const Stats& stats() const { return stats_; }

  /// Failed completions are also reported here (the node forwards them to
  /// the application's NCS exception handler).
  void set_exception_hook(std::function<void(const mps::NcsException&)> hook) {
    exception_hook_ = std::move(hook);
  }

  void set_profiler(obs::Profiler* prof) { prof_ = prof; }
  /// Telemetry sink: every completion (ok or error) records its
  /// post->completion latency into the sketch at completion time.
  void set_latency_sketch(obs::WindowedSketch* sketch) { latency_sketch_ = sketch; }
  /// Creates "<prefix>" as this engine's trace track. Posts become spans
  /// (descriptor-build cost) starting a flow arrow; target execution spans
  /// end it and start the response arrow; completions end that — the
  /// one-sided analogue of the send/recv flow stitching. Retransmits,
  /// errors and replays stay instants.
  void set_trace(obs::TraceLog* trace, const std::string& prefix);
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

 private:
  struct PendingOp {
    std::uint32_t op_id = 0;
    OpKind kind = OpKind::put;
    int peer = -1;
    int rwindow = 0;
    std::uint64_t roffset = 0;
    int lwindow = 0;            // get: destination window
    std::uint64_t loffset = 0;  // get: destination offset
    std::uint32_t len = 0;
    std::uint64_t aux = 0;  // fetch_add delta / compare_swap expected
    std::uint64_t cookie = 0;
    bool notify = false;
    Bytes wire;  // full request frame, kept for retransmission
    int retries = 0;
    sim::EventId timer = 0;
    TimePoint posted;
  };

  /// A request parsed at the target, parked for Params::target_exec of
  /// firmware time before execution (FIFO; the deque keeps the scheduled
  /// callback's capture tiny).
  struct RxRequest {
    int p = -1;
    std::uint8_t kind = 0;
    bool notify = false;
    int window = 0;
    std::uint32_t op_id = 0;
    std::uint32_t sync = 0;  // initiator watermark, applied at execution time
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    std::uint64_t aux = 0;
    Bytes payload;
  };

  /// A loopback op (peer == rank): executed against the local window after
  /// the same firmware delay, no wire involved.
  struct SelfOp {
    PendingOp op;
    Bytes data;
  };

  struct PeerState {
    int credits_used = 0;
    std::uint32_t next_op_id = 1;
    /// Posted-and-sent ops awaiting a response, keyed op id.
    std::map<std::uint32_t, PendingOp> inflight;
    /// Built ops waiting for a credit, FIFO.
    std::deque<PendingOp> deferred;
    /// Target side: reassembly of the peer's request frames (chunks of one
    /// frame arrive back-to-back on the pair's dedicated VC).
    Bytes rx_buf;
    /// Target side: atomic results by op id, replayed on duplicate
    /// requests so retransmitted atomics execute exactly once.
    std::map<std::uint32_t, std::uint64_t> atomic_cache;
    /// Target side: put op ids already notified (exactly-once remote_put).
    std::set<std::uint32_t> notified;
  };

  PeerState& peer(int p) { return peers_[static_cast<std::size_t>(p)]; }

  Bytes build_frame(const PendingOp& op, BytesView payload) const;
  /// Initiator-side trace span + request flow arrow for a just-posted op;
  /// `begin` is when the descriptor build started charging.
  void trace_post(const PendingOp& op, TimePoint begin);
  std::uint32_t post_self(PendingOp op, Bytes data);
  void run_self_op();
  void issue(int p, PendingOp op);
  void arm_timer(int p, std::uint32_t op_id);
  void on_timeout(int p, std::uint32_t op_id);
  void complete(int p, PendingOp op, bool ok, std::uint64_t value);
  void release_credit(int p);

  void enqueue_tx(atm::VcId vc, Bytes frame);
  void tx_step();

  void on_rx(int p, Bytes chunk, bool eom);
  void handle_frame(int p, Bytes frame);
  void execute_request(RxRequest q);
  void send_response(int p, std::uint8_t kind, int window, std::uint32_t op_id,
                     std::uint64_t offset, std::uint64_t aux, BytesView payload);
  void handle_response(int p, std::uint8_t kind, std::uint32_t op_id,
                       std::uint64_t aux, BytesView payload);
  /// Lowest outstanding op id toward `p` — the completion watermark
  /// advertised on every request so the target can prune its caches.
  std::uint32_t sync_watermark(int p) const;

  mts::Scheduler& host_;
  sim::Engine& engine_;
  atm::Nic& nic_;
  int rank_;
  int n_procs_;
  Params params_;

  std::map<int, std::unique_ptr<Window>> windows_;
  std::vector<PeerState> peers_;
  CompletionQueue cq_;
  int pending_total_ = 0;
  std::deque<mts::Thread*> fence_waiters_;

  struct TxPacket {
    atm::VcId vc;
    Bytes frame;
  };
  std::deque<TxPacket> txq_;
  std::size_t tx_off_ = 0;
  bool tx_active_ = false;

  std::deque<RxRequest> rx_exec_;  // parked requests awaiting target_exec
  std::deque<SelfOp> self_ops_;    // parked loopback ops

  std::function<void(const mps::NcsException&)> exception_hook_;
  obs::Profiler* prof_ = nullptr;
  obs::WindowedSketch* latency_sketch_ = nullptr;
  obs::TraceLog* trace_ = nullptr;
  int trace_track_ = -1;
  Stats stats_;
};

}  // namespace ncs::rma
