// Memory registration for one-sided operations.
//
// A Window is the unit of remote accessibility: a pinned, contiguous byte
// range a process exposes under a small integer id. Registration is what
// lets the adapter firmware DMA directly between the wire and user memory
// with no receive-thread involvement — the target side of NCS_put/NCS_get
// resolves (window, offset) straight to a host address, exactly the way
// the SBA-200's i960 resolved an I/O buffer slot.
//
// Windows are symmetric by convention (every rank creates window k with
// the same size before using it), matching the collectives' SPMD model;
// the engine validates every remote (window, offset, len) against the
// local registration table and drops out-of-range requests on the floor
// (the initiator's timeout machinery reports the failure).
#pragma once

#include <cstdint>
#include <span>

#include "atm/cell.hpp"
#include "common/bytes.hpp"

namespace ncs::rma {

/// What a registered (rank, window, offset, len) coordinate resolves to on
/// the adapter: the RMA-plane VC toward the target plus the target-side
/// window coordinates the firmware will DMA against.
struct DmaDescriptor {
  atm::VcId vc;          // RMA-plane PVC toward the target rank
  int window = 0;        // target window id
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
};

class Window {
 public:
  /// Registers `bytes` of window-owned, zero-initialized storage.
  Window(int id, std::size_t bytes) : id_(id), owned_(bytes), mem_(owned_) {}

  /// Registers caller-owned memory (must outlive the window).
  Window(int id, std::span<std::byte> user) : id_(id), mem_(user) {}

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  int id() const { return id_; }
  std::size_t size() const { return mem_.size(); }
  std::span<std::byte> span() { return mem_; }
  std::span<const std::byte> span() const { return mem_; }

  bool in_range(std::uint64_t offset, std::uint64_t len) const {
    return offset <= mem_.size() && len <= mem_.size() - offset;
  }
  std::byte* at(std::uint64_t offset) { return mem_.data() + offset; }
  const std::byte* at(std::uint64_t offset) const { return mem_.data() + offset; }

  /// Host-endian 8-byte loads/stores — the unit remote atomics operate on.
  std::uint64_t load_u64(std::uint64_t offset) const {
    std::uint64_t v;
    std::memcpy(&v, at(offset), sizeof v);
    return v;
  }
  void store_u64(std::uint64_t offset, std::uint64_t v) {
    std::memcpy(at(offset), &v, sizeof v);
  }

 private:
  int id_;
  Bytes owned_;  // empty when registering user memory
  std::span<std::byte> mem_;
};

}  // namespace ncs::rma
