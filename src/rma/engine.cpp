#include "rma/engine.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace ncs::rma {

namespace {

// Request/response frame, big-endian (one frame = one logical operation;
// the TX pump chunks frames larger than an I/O buffer and the target
// reassembles on the pair's dedicated VC):
//   magic u16 | kind u8 | flags u8 | window u16 | from u16 | op_id u32 |
//   offset u64 | len u32 | aux u64 | sync u32 | payload...
// `aux` carries the atomic operand (delta / expected) on requests and the
// pre-update value on atomic responses; `sync` is the initiator's
// completion watermark (every op id below it is complete), which lets the
// target prune its idempotency caches.
constexpr std::uint16_t kMagic = 0x524D;  // "RM"
constexpr std::size_t kHeader = 36;

enum WireKind : std::uint8_t {
  kPut = 1,
  kGet = 2,
  kFetchAdd = 3,
  kCompareSwap = 4,
  kPutAck = 5,
  kGetResp = 6,
  kAtomicResp = 7,
};

std::uint8_t wire_kind(OpKind k) {
  switch (k) {
    case OpKind::put: return kPut;
    case OpKind::get: return kGet;
    case OpKind::fetch_add: return kFetchAdd;
    case OpKind::compare_swap: return kCompareSwap;
    case OpKind::remote_put: break;  // never on the wire as a request kind
  }
  NCS_ASSERT_MSG(false, "not a request kind");
  return 0;
}

const char* request_name(std::uint8_t wire) {
  switch (wire) {
    case kPut: return "put";
    case kGet: return "get";
    case kFetchAdd: return "fetch_add";
    case kCompareSwap: return "compare_swap";
  }
  return "?";
}

/// A point strictly inside [begin, end) when the span is non-empty — where
/// flow events must land so Perfetto binds the arrow to the enclosing span.
TimePoint midpoint(TimePoint begin, TimePoint end) {
  return begin + Duration::picoseconds((end.ps() - begin.ps()) / 2);
}

}  // namespace

Engine::Engine(mts::Scheduler& host, atm::Nic& nic, int rank, int n_procs,
               Params params)
    : host_(host),
      engine_(host.engine()),
      nic_(nic),
      rank_(rank),
      n_procs_(n_procs),
      params_(params),
      peers_(static_cast<std::size_t>(n_procs)),
      cq_(host) {
  NCS_ASSERT(rank >= 0 && rank < n_procs);
  NCS_ASSERT(params_.op_credits >= 1);
  // Terminate the RMA-plane VCs in the NIC upcall — the target side of
  // every one-sided op runs here, never in a receive thread.
  for (int p = 0; p < n_procs_; ++p) {
    if (p == rank_) continue;
    nic_.set_vc_handler(atm::rma_vc_to(p),
                        [this, p](atm::VcId, Bytes chunk, bool eom) {
                          on_rx(p, std::move(chunk), eom);
                        });
  }
}

Window& Engine::create_window(int id, std::size_t bytes) {
  NCS_ASSERT(id >= 0 && id <= 0xFFFF);
  auto [it, inserted] = windows_.emplace(id, std::make_unique<Window>(id, bytes));
  NCS_ASSERT_MSG(inserted, "window id already registered");
  return *it->second;
}

Window& Engine::register_window(int id, std::span<std::byte> user) {
  NCS_ASSERT(id >= 0 && id <= 0xFFFF);
  auto [it, inserted] = windows_.emplace(id, std::make_unique<Window>(id, user));
  NCS_ASSERT_MSG(inserted, "window id already registered");
  return *it->second;
}

Window* Engine::window(int id) {
  auto it = windows_.find(id);
  return it == windows_.end() ? nullptr : it->second.get();
}

std::uint32_t Engine::put(int peer_rank, int rwindow, std::uint64_t roffset,
                          BytesView data, bool notify, std::uint64_t cookie) {
  NCS_ASSERT(peer_rank >= 0 && peer_rank < n_procs_);
  NCS_ASSERT(rwindow >= 0 && rwindow <= 0xFFFF);
  NCS_ASSERT_MSG(data.size() <= params_.max_op_bytes, "put exceeds max_op_bytes");
  const TimePoint post_begin = engine_.now();
  host_.charge_cycles(params_.desc_post_cycles, sim::Activity::overhead);
  PeerState& ps = peer(peer_rank);
  PendingOp op;
  op.op_id = ps.next_op_id++;
  op.kind = OpKind::put;
  op.peer = peer_rank;
  op.rwindow = rwindow;
  op.roffset = roffset;
  op.len = static_cast<std::uint32_t>(data.size());
  op.cookie = cookie;
  op.notify = notify;
  op.posted = engine_.now();
  ++stats_.puts;
  stats_.bytes_put += data.size();
  if (peer_rank == rank_) return post_self(std::move(op), to_bytes(data));
  op.wire = build_frame(op, data);
  trace_post(op, post_begin);
  const std::uint32_t id = op.op_id;
  ++pending_total_;
  issue(peer_rank, std::move(op));
  return id;
}

std::uint32_t Engine::get(int peer_rank, int rwindow, std::uint64_t roffset,
                          int lwindow, std::uint64_t loffset, std::uint32_t len,
                          std::uint64_t cookie) {
  NCS_ASSERT(peer_rank >= 0 && peer_rank < n_procs_);
  NCS_ASSERT(rwindow >= 0 && rwindow <= 0xFFFF);
  NCS_ASSERT_MSG(len <= params_.max_op_bytes, "get exceeds max_op_bytes");
  Window* lw = window(lwindow);
  NCS_ASSERT_MSG(lw != nullptr && lw->in_range(loffset, len),
                 "get destination outside a registered window");
  const TimePoint post_begin = engine_.now();
  host_.charge_cycles(params_.desc_post_cycles, sim::Activity::overhead);
  PeerState& ps = peer(peer_rank);
  PendingOp op;
  op.op_id = ps.next_op_id++;
  op.kind = OpKind::get;
  op.peer = peer_rank;
  op.rwindow = rwindow;
  op.roffset = roffset;
  op.lwindow = lwindow;
  op.loffset = loffset;
  op.len = len;
  op.cookie = cookie;
  op.posted = engine_.now();
  ++stats_.gets;
  if (peer_rank == rank_) return post_self(std::move(op), {});
  op.wire = build_frame(op, {});
  trace_post(op, post_begin);
  const std::uint32_t id = op.op_id;
  ++pending_total_;
  issue(peer_rank, std::move(op));
  return id;
}

std::uint32_t Engine::fetch_add(int peer_rank, int rwindow, std::uint64_t roffset,
                                std::uint64_t delta, std::uint64_t cookie) {
  NCS_ASSERT(peer_rank >= 0 && peer_rank < n_procs_);
  NCS_ASSERT(rwindow >= 0 && rwindow <= 0xFFFF);
  const TimePoint post_begin = engine_.now();
  host_.charge_cycles(params_.desc_post_cycles, sim::Activity::overhead);
  PeerState& ps = peer(peer_rank);
  PendingOp op;
  op.op_id = ps.next_op_id++;
  op.kind = OpKind::fetch_add;
  op.peer = peer_rank;
  op.rwindow = rwindow;
  op.roffset = roffset;
  op.len = 8;
  op.aux = delta;
  op.cookie = cookie;
  op.posted = engine_.now();
  ++stats_.fetch_adds;
  if (peer_rank == rank_) return post_self(std::move(op), {});
  op.wire = build_frame(op, {});
  trace_post(op, post_begin);
  const std::uint32_t id = op.op_id;
  ++pending_total_;
  issue(peer_rank, std::move(op));
  return id;
}

std::uint32_t Engine::compare_swap(int peer_rank, int rwindow,
                                   std::uint64_t roffset, std::uint64_t expected,
                                   std::uint64_t desired, std::uint64_t cookie) {
  NCS_ASSERT(peer_rank >= 0 && peer_rank < n_procs_);
  NCS_ASSERT(rwindow >= 0 && rwindow <= 0xFFFF);
  const TimePoint post_begin = engine_.now();
  host_.charge_cycles(params_.desc_post_cycles, sim::Activity::overhead);
  Bytes desired_bytes(8);
  {
    ByteWriter w(desired_bytes);
    w.u64(desired);
  }
  PeerState& ps = peer(peer_rank);
  PendingOp op;
  op.op_id = ps.next_op_id++;
  op.kind = OpKind::compare_swap;
  op.peer = peer_rank;
  op.rwindow = rwindow;
  op.roffset = roffset;
  op.len = 8;
  op.aux = expected;
  op.cookie = cookie;
  op.posted = engine_.now();
  ++stats_.compare_swaps;
  if (peer_rank == rank_) return post_self(std::move(op), std::move(desired_bytes));
  op.wire = build_frame(op, desired_bytes);
  trace_post(op, post_begin);
  const std::uint32_t id = op.op_id;
  ++pending_total_;
  issue(peer_rank, std::move(op));
  return id;
}

void Engine::fence() {
  while (pending_total_ > 0) {
    fence_waiters_.push_back(host_.current());
    host_.block(sim::Activity::communicate);
  }
}

void Engine::set_trace(obs::TraceLog* trace, const std::string& prefix) {
  trace_ = trace;
  trace_track_ = trace ? trace->track(prefix) : -1;
}

void Engine::trace_post(const PendingOp& op, TimePoint begin) {
  if (trace_ == nullptr || op.peer == rank_) return;
  const TimePoint end = engine_.now();
  trace_->complete(trace_track_,
                   std::string(to_string(op.kind)) + " #" +
                       std::to_string(op.op_id) + " -> p" + std::to_string(op.peer),
                   "rma", begin, end - begin);
  trace_->flow_start(trace_track_, "rma-req", "flow", midpoint(begin, end),
                     obs::rma_flow_id(rank_, op.peer, op.op_id, 0));
}

void Engine::register_metrics(obs::MetricsRegistry& reg,
                              const std::string& prefix) const {
  reg.counter(prefix + "/puts", &stats_.puts);
  reg.counter(prefix + "/gets", &stats_.gets);
  reg.counter(prefix + "/fetch_adds", &stats_.fetch_adds);
  reg.counter(prefix + "/compare_swaps", &stats_.compare_swaps);
  reg.counter(prefix + "/bytes_put", &stats_.bytes_put);
  reg.counter(prefix + "/bytes_got", &stats_.bytes_got);
  reg.counter(prefix + "/completions", &stats_.completions);
  reg.counter(prefix + "/error_completions", &stats_.error_completions);
  reg.counter(prefix + "/retransmits", &stats_.retransmits);
  reg.counter(prefix + "/deferred", &stats_.deferred);
  reg.counter(prefix + "/tx_chunks", &stats_.tx_chunks);
  reg.counter(prefix + "/rx_requests", &stats_.rx_requests);
  reg.counter(prefix + "/rx_replays", &stats_.rx_replays);
  reg.counter(prefix + "/rx_garbled", &stats_.rx_garbled);
  reg.counter(prefix + "/rx_bad_window", &stats_.rx_bad_window);
  reg.counter(prefix + "/notifies", &stats_.notifies);
}

// --- initiator internals ---

Bytes Engine::build_frame(const PendingOp& op, BytesView payload) const {
  Bytes out(kHeader + payload.size());
  ByteWriter w(out);
  w.u16(kMagic);
  w.u8(wire_kind(op.kind));
  w.u8(op.notify ? std::uint8_t{1} : std::uint8_t{0});
  w.u16(static_cast<std::uint16_t>(op.rwindow));
  w.u16(static_cast<std::uint16_t>(rank_));
  w.u32(op.op_id);
  w.u64(op.roffset);
  w.u32(op.len);
  w.u64(op.aux);
  // Clamped to this op's own id: when the pipe toward the peer is
  // otherwise empty the watermark already points past `op` (its id was
  // allocated before this frame is built), and a retransmission carrying
  // sync > op_id would prune the target's idempotency entry for the very
  // op being retried — re-executing an atomic that already ran.
  w.u32(std::min(sync_watermark(op.peer), op.op_id));
  w.bytes(payload);
  return out;
}

std::uint32_t Engine::sync_watermark(int p) const {
  const PeerState& ps = peers_[static_cast<std::size_t>(p)];
  if (!ps.inflight.empty()) return ps.inflight.begin()->first;
  if (!ps.deferred.empty()) return ps.deferred.front().op_id;
  return ps.next_op_id;
}

std::uint32_t Engine::post_self(PendingOp op, Bytes data) {
  const std::uint32_t id = op.op_id;
  ++pending_total_;
  self_ops_.push_back({std::move(op), std::move(data)});
  engine_.schedule_after(params_.target_exec, [this] { run_self_op(); });
  return id;
}

void Engine::run_self_op() {
  SelfOp s = std::move(self_ops_.front());
  self_ops_.pop_front();
  PendingOp& op = s.op;
  Window* w = window(op.rwindow);
  NCS_ASSERT_MSG(w != nullptr && w->in_range(op.roffset, op.len),
                 "loopback op outside a registered window");
  std::uint64_t value = 0;
  switch (op.kind) {
    case OpKind::put:
      if (op.len != 0) std::memcpy(w->at(op.roffset), s.data.data(), op.len);
      if (op.notify) {
        Completion n;
        n.kind = OpKind::remote_put;
        n.peer = rank_;
        n.window = op.rwindow;
        n.op_id = op.op_id;
        n.offset = op.roffset;
        n.bytes = op.len;
        n.at = engine_.now();
        cq_.push(n);
        ++stats_.notifies;
      }
      break;
    case OpKind::get: {
      Window* lw = window(op.lwindow);
      if (op.len != 0) std::memcpy(lw->at(op.loffset), w->at(op.roffset), op.len);
      stats_.bytes_got += op.len;
      break;
    }
    case OpKind::fetch_add:
      value = w->load_u64(op.roffset);
      w->store_u64(op.roffset, value + op.aux);
      break;
    case OpKind::compare_swap: {
      value = w->load_u64(op.roffset);
      ByteReader r(s.data);
      const std::uint64_t desired = r.u64();
      if (value == op.aux) w->store_u64(op.roffset, desired);
      break;
    }
    case OpKind::remote_put:
      NCS_ASSERT_MSG(false, "not a postable kind");
  }
  complete(rank_, std::move(s.op), /*ok=*/true, value);
}

void Engine::issue(int p, PendingOp op) {
  PeerState& ps = peer(p);
  if (ps.credits_used >= params_.op_credits) {
    ps.deferred.push_back(std::move(op));
    ++stats_.deferred;
    return;
  }
  ++ps.credits_used;
  const std::uint32_t id = op.op_id;
  Bytes wire = op.wire;  // the pending op keeps the original for retransmit
  auto [it, inserted] = ps.inflight.emplace(id, std::move(op));
  NCS_ASSERT(inserted);
  enqueue_tx(atm::rma_vc_to(p), std::move(wire));
  arm_timer(p, id);
}

void Engine::arm_timer(int p, std::uint32_t op_id) {
  PeerState& ps = peer(p);
  auto it = ps.inflight.find(op_id);
  NCS_ASSERT(it != ps.inflight.end());
  it->second.timer = engine_.schedule_after(
      params_.response_timeout, [this, p, op_id] { on_timeout(p, op_id); });
}

void Engine::on_timeout(int p, std::uint32_t op_id) {
  PeerState& ps = peer(p);
  auto it = ps.inflight.find(op_id);
  if (it == ps.inflight.end()) return;  // response raced the timer
  PendingOp& op = it->second;
  op.timer = 0;
  if (op.retries < params_.retry_limit) {
    ++op.retries;
    ++stats_.retransmits;
    if (trace_) trace_->instant(trace_track_, "rma-retx", "rma", engine_.now());
    enqueue_tx(atm::rma_vc_to(p), Bytes(op.wire));
    arm_timer(p, op_id);
    return;
  }
  // Retries exhausted: the circuit is gone (or the target never had the
  // window). Complete with error and free the credit — the failure is
  // loud, never a hang.
  PendingOp dead = std::move(it->second);
  ps.inflight.erase(it);
  complete(p, std::move(dead), /*ok=*/false, 0);
  release_credit(p);
}

void Engine::complete(int p, PendingOp op, bool ok, std::uint64_t value) {
  if (op.timer != 0) engine_.cancel(op.timer);
  Completion c;
  c.kind = op.kind;
  c.ok = ok;
  c.error = mps::NcsExceptionKind::message_timeout;
  c.peer = p;
  c.window = op.rwindow;
  c.op_id = op.op_id;
  c.offset = op.roffset;
  c.bytes = op.len;
  c.value = value;
  c.cookie = op.cookie;
  c.at = engine_.now();
  cq_.push(c);
  const Duration lat = engine_.now() - op.posted;
  if (prof_) {
    prof_->record(obs::Layer::rma, lat);
    prof_->record_rma(to_string(op.kind), lat);
  }
  if (latency_sketch_ != nullptr) latency_sketch_->record(engine_.now(), lat);
  if (ok) {
    ++stats_.completions;
    if (trace_ != nullptr && p != rank_) {
      // Synthetic sliver ending at completion time — just wide enough for
      // the response arrow to land inside it.
      const TimePoint end = engine_.now();
      const TimePoint begin = end - Duration::nanoseconds(500);
      trace_->complete(trace_track_,
                       std::string("comp ") + to_string(op.kind) + " #" +
                           std::to_string(op.op_id) + " <- p" + std::to_string(p),
                       "rma", begin, end - begin);
      trace_->flow_end(trace_track_, "rma-resp", "flow", midpoint(begin, end),
                       obs::rma_flow_id(rank_, p, op.op_id, 1));
    }
  } else {
    ++stats_.error_completions;
    if (trace_) trace_->instant(trace_track_, "rma-error", "rma", engine_.now());
    if (exception_hook_)
      exception_hook_(
          mps::NcsException(mps::NcsExceptionKind::message_timeout, p, op.op_id));
  }
  --pending_total_;
  NCS_ASSERT(pending_total_ >= 0);
  if (pending_total_ == 0) {
    while (!fence_waiters_.empty()) {
      host_.unblock(fence_waiters_.front());
      fence_waiters_.pop_front();
    }
  }
}

void Engine::release_credit(int p) {
  PeerState& ps = peer(p);
  NCS_ASSERT(ps.credits_used > 0);
  --ps.credits_used;
  if (!ps.deferred.empty()) {
    PendingOp next = std::move(ps.deferred.front());
    ps.deferred.pop_front();
    issue(p, std::move(next));
  }
}

// --- TX pump ---

void Engine::enqueue_tx(atm::VcId vc, Bytes frame) {
  txq_.push_back({vc, std::move(frame)});
  if (!tx_active_) {
    tx_active_ = true;
    tx_step();
  }
}

void Engine::tx_step() {
  if (txq_.empty()) {
    tx_active_ = false;
    return;
  }
  if (!nic_.tx_buffer_available()) {
    nic_.notify_tx_buffer([this] { tx_step(); });
    return;
  }
  TxPacket& pkt = txq_.front();
  const std::size_t chunk_max = nic_.params().io_buffer_size;
  const std::size_t n = std::min(pkt.frame.size() - tx_off_, chunk_max);
  const auto begin = pkt.frame.begin() + static_cast<std::ptrdiff_t>(tx_off_);
  Bytes chunk(begin, begin + static_cast<std::ptrdiff_t>(n));
  tx_off_ += n;
  const bool last = tx_off_ == pkt.frame.size();
  nic_.submit_tx(pkt.vc, std::move(chunk), last);
  ++stats_.tx_chunks;
  if (last) {
    txq_.pop_front();
    tx_off_ = 0;
  }
  // Drain via the buffer-free notification (fires through the event queue
  // immediately when a buffer is already free).
  nic_.notify_tx_buffer([this] { tx_step(); });
}

// --- target side (NIC upcall context) ---

void Engine::on_rx(int p, Bytes chunk, bool eom) {
  PeerState& ps = peer(p);
  append(ps.rx_buf, chunk);
  if (!eom) return;
  Bytes frame = std::move(ps.rx_buf);
  ps.rx_buf = {};
  handle_frame(p, std::move(frame));
}

void Engine::handle_frame(int p, Bytes frame) {
  if (frame.size() < kHeader) {
    ++stats_.rx_garbled;
    return;
  }
  ByteReader r(frame);
  const std::uint16_t magic = r.u16();
  const std::uint8_t kind = r.u8();
  const std::uint8_t flags = r.u8();
  const int window_id = r.u16();
  const int from = r.u16();
  const std::uint32_t op_id = r.u32();
  const std::uint64_t offset = r.u64();
  const std::uint32_t len = r.u32();
  const std::uint64_t aux = r.u64();
  const std::uint32_t sync = r.u32();
  const BytesView payload = r.bytes(r.remaining());

  // A lost cell drops a whole chunk, so a reassembled frame can be a
  // truncated splice of two frames; the magic + per-kind length checks
  // reject it and the initiator's timeout repairs.
  if (magic != kMagic || from != p) {
    ++stats_.rx_garbled;
    return;
  }

  bool well_formed = true;
  switch (kind) {
    case kPutAck:
    case kAtomicResp:
      if (!payload.empty()) break;
      handle_response(p, kind, op_id, aux, payload);
      return;
    case kGetResp:
      if (payload.size() != len) break;
      handle_response(p, kind, op_id, aux, payload);
      return;
    case kPut:
      well_formed = payload.size() == len;
      break;
    case kGet:
      well_formed = payload.empty() && len <= params_.max_op_bytes;
      break;
    case kFetchAdd:
      well_formed = payload.empty();
      break;
    case kCompareSwap:
      well_formed = payload.size() == 8;
      break;
    default:
      well_formed = false;
      break;
  }
  if (!well_formed || kind == kPutAck || kind == kAtomicResp || kind == kGetResp) {
    ++stats_.rx_garbled;
    return;
  }

  RxRequest q;
  q.p = p;
  q.kind = kind;
  q.notify = (flags & 1) != 0;
  q.window = window_id;
  q.op_id = op_id;
  q.sync = sync;
  q.offset = offset;
  q.len = len;
  q.aux = aux;
  q.payload = to_bytes(payload);
  rx_exec_.push_back(std::move(q));
  engine_.schedule_after(params_.target_exec, [this] {
    RxRequest next = std::move(rx_exec_.front());
    rx_exec_.pop_front();
    execute_request(std::move(next));
  });
}

void Engine::execute_request(RxRequest q) {
  PeerState& ps = peer(q.p);
  // The watermark proves every op id below `sync` completed at the
  // initiator, so the idempotency state for them can never be needed again.
  // Pruning happens here, not at frame arrival: requests park in rx_exec_
  // for target_exec, and a successor frame's watermark arriving in that
  // window must not evict the cache entry a parked duplicate still needs.
  // FIFO execution plus the frame's sync clamp (sync <= its own op_id)
  // guarantee the duplicate is answered from cache before any prune that
  // could cover its id.
  ps.atomic_cache.erase(ps.atomic_cache.begin(), ps.atomic_cache.lower_bound(q.sync));
  ps.notified.erase(ps.notified.begin(), ps.notified.lower_bound(q.sync));
  Window* w = window(q.window);
  const std::uint64_t need = (q.kind == kPut || q.kind == kGet)
                                 ? std::uint64_t{q.len}
                                 : std::uint64_t{8};
  if (w == nullptr || !w->in_range(q.offset, need)) {
    // Out-of-range access: dropped on the floor; the initiator's retries
    // exhaust and it completes with error.
    ++stats_.rx_bad_window;
    return;
  }
  if (trace_ != nullptr) {
    // The request parked for exactly target_exec of firmware time; the
    // span covers it, ends the request arrow, and starts the response one.
    const TimePoint end = engine_.now();
    const TimePoint begin = end - params_.target_exec;
    trace_->complete(trace_track_,
                     std::string("exec ") + request_name(q.kind) + " #" +
                         std::to_string(q.op_id) + " from p" + std::to_string(q.p),
                     "rma", begin, end - begin);
    trace_->flow_end(trace_track_, "rma-req", "flow", midpoint(begin, end),
                     obs::rma_flow_id(q.p, rank_, q.op_id, 0));
    trace_->flow_start(trace_track_, "rma-resp", "flow", midpoint(begin, end),
                       obs::rma_flow_id(q.p, rank_, q.op_id, 1));
  }
  switch (q.kind) {
    case kPut:
      // Replayed puts rewrite the same bytes — idempotent by nature. Only
      // the notification must be deduplicated.
      if (q.len != 0) std::memcpy(w->at(q.offset), q.payload.data(), q.len);
      ++stats_.rx_requests;
      if (q.notify && ps.notified.insert(q.op_id).second) {
        Completion n;
        n.kind = OpKind::remote_put;
        n.peer = q.p;
        n.window = q.window;
        n.op_id = q.op_id;
        n.offset = q.offset;
        n.bytes = q.len;
        n.at = engine_.now();
        cq_.push(n);
        ++stats_.notifies;
      }
      send_response(q.p, kPutAck, q.window, q.op_id, q.offset, 0, {});
      break;
    case kGet:
      ++stats_.rx_requests;
      send_response(q.p, kGetResp, q.window, q.op_id, q.offset, 0,
                    BytesView(w->at(q.offset), q.len));
      break;
    case kFetchAdd: {
      std::uint64_t old;
      auto cached = ps.atomic_cache.find(q.op_id);
      if (cached != ps.atomic_cache.end()) {
        old = cached->second;  // duplicate: answer without re-executing
        ++stats_.rx_replays;
      } else {
        old = w->load_u64(q.offset);
        w->store_u64(q.offset, old + q.aux);
        ps.atomic_cache.emplace(q.op_id, old);
        ++stats_.rx_requests;
      }
      send_response(q.p, kAtomicResp, q.window, q.op_id, q.offset, old, {});
      break;
    }
    case kCompareSwap: {
      std::uint64_t old;
      auto cached = ps.atomic_cache.find(q.op_id);
      if (cached != ps.atomic_cache.end()) {
        old = cached->second;
        ++stats_.rx_replays;
      } else {
        old = w->load_u64(q.offset);
        ByteReader r(q.payload);
        const std::uint64_t desired = r.u64();
        if (old == q.aux) w->store_u64(q.offset, desired);
        ps.atomic_cache.emplace(q.op_id, old);
        ++stats_.rx_requests;
      }
      send_response(q.p, kAtomicResp, q.window, q.op_id, q.offset, old, {});
      break;
    }
    default:
      NCS_ASSERT_MSG(false, "not a request kind");
  }
}

void Engine::send_response(int p, std::uint8_t kind, int window_id,
                           std::uint32_t op_id, std::uint64_t offset,
                           std::uint64_t aux, BytesView payload) {
  Bytes out(kHeader + payload.size());
  ByteWriter w(out);
  w.u16(kMagic);
  w.u8(kind);
  w.u8(0);
  w.u16(static_cast<std::uint16_t>(window_id));
  w.u16(static_cast<std::uint16_t>(rank_));
  w.u32(op_id);
  w.u64(offset);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(aux);
  w.u32(0);  // responses carry no watermark
  w.bytes(payload);
  enqueue_tx(atm::rma_vc_to(p), std::move(out));
}

void Engine::handle_response(int p, std::uint8_t kind, std::uint32_t op_id,
                             std::uint64_t aux, BytesView payload) {
  PeerState& ps = peer(p);
  auto it = ps.inflight.find(op_id);
  if (it == ps.inflight.end()) return;  // duplicate response: op already done
  PendingOp& op = it->second;
  const bool match =
      (kind == kPutAck && op.kind == OpKind::put) ||
      (kind == kGetResp && op.kind == OpKind::get) ||
      (kind == kAtomicResp &&
       (op.kind == OpKind::fetch_add || op.kind == OpKind::compare_swap));
  if (!match) {
    ++stats_.rx_garbled;
    return;
  }
  if (kind == kGetResp) {
    if (payload.size() != op.len) {
      ++stats_.rx_garbled;
      return;
    }
    // The local window was validated at post time; this is the initiator
    // side of the get DMA.
    Window* lw = window(op.lwindow);
    if (op.len != 0) std::memcpy(lw->at(op.loffset), payload.data(), op.len);
    stats_.bytes_got += op.len;
  }
  PendingOp done = std::move(it->second);
  ps.inflight.erase(it);
  complete(p, std::move(done), /*ok=*/true, aux);
  release_credit(p);
}

}  // namespace ncs::rma
