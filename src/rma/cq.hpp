// Per-endpoint completion queue for one-sided operations.
//
// One-sided calls return immediately with an op id; the adapter reports
// each operation's fate — success or a typed failure — by depositing a
// Completion here. The queue is the only rendezvous between the RMA plane
// and application threads: poll() is the cheap non-blocking probe, wait()
// parks the calling thread until the adapter pushes (the same
// block/unblock discipline as mts::Channel, so wakeup order is FIFO and
// deterministic under the simulator's (time, seq) contract).
//
// Completions for operations on the same peer are pushed in posting
// order (the engine's per-peer op stream is FIFO: one VC, one timeout
// discipline); across peers the order is whatever the simulated network
// produced — stable for a fixed seed, but not an ordering guarantee.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/time.hpp"
#include "core/mps/exception.hpp"
#include "core/mts/scheduler.hpp"

namespace ncs::rma {

enum class OpKind : std::uint8_t {
  put,
  get,
  fetch_add,
  compare_swap,
  remote_put,  // target-side notification of a peer's NCS_put (notify flag)
};

inline const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::put: return "put";
    case OpKind::get: return "get";
    case OpKind::fetch_add: return "fetch_add";
    case OpKind::compare_swap: return "compare_swap";
    case OpKind::remote_put: return "remote_put";
  }
  return "?";
}

struct Completion {
  OpKind kind = OpKind::put;
  bool ok = true;
  /// Valid when !ok — the failure class a blocked raise_if_error() throws.
  mps::NcsExceptionKind error = mps::NcsExceptionKind::message_timeout;
  int peer = -1;       // target rank (initiator rank for remote_put)
  int window = 0;      // remote window id (local window for remote_put)
  std::uint32_t op_id = 0;
  std::uint64_t offset = 0;
  std::uint32_t bytes = 0;
  /// fetch_add / compare_swap: the value read at the target before the
  /// update (compare_swap succeeded iff value == expected).
  std::uint64_t value = 0;
  std::uint64_t cookie = 0;  // caller-chosen tag, returned verbatim
  TimePoint at;              // completion timestamp (engine clock)

  /// Converts a failed completion into the typed exception the rest of the
  /// runtime speaks (Section 3.1's fourth service class).
  void raise_if_error() const {
    if (!ok) throw mps::NcsException(error, peer, op_id);
  }
};

class CompletionQueue {
 public:
  explicit CompletionQueue(mts::Scheduler& sched) : sched_(sched) {}

  /// Engine or thread context: deposits a completion, waking the
  /// longest-blocked waiter.
  void push(Completion c) {
    items_.push_back(c);
    ++pushed_;
    if (!waiters_.empty()) {
      mts::Thread* t = waiters_.front();
      waiters_.pop_front();
      sched_.unblock(t);
    }
  }

  /// Non-blocking probe; any context.
  std::optional<Completion> poll() {
    if (items_.empty()) return std::nullopt;
    Completion c = items_.front();
    items_.pop_front();
    return c;
  }

  /// Thread context only: blocks until a completion is available.
  /// Re-checks on wakeup (a completion can be stolen by poll() between
  /// push and resume, same as mts::Channel).
  Completion wait() {
    while (items_.empty()) {
      waiters_.push_back(sched_.current());
      sched_.block(sim::Activity::communicate);
    }
    Completion c = items_.front();
    items_.pop_front();
    return c;
  }

  std::size_t depth() const { return items_.size(); }
  std::uint64_t pushed() const { return pushed_; }

 private:
  mts::Scheduler& sched_;
  std::deque<mts::Thread*> waiters_;
  std::deque<Completion> items_;
  std::uint64_t pushed_ = 0;
};

}  // namespace ncs::rma
