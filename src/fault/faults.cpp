#include "fault/faults.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::fault {

void LinkFault::configure_uniform(double probability, std::uint64_t seed) {
  NCS_ASSERT(probability >= 0.0 && probability <= 1.0);
  uniform_p_ = probability;
  if (probability > 0.0) uniform_rng_.emplace(seed);
}

void LinkFault::set_down(bool down) {
  if (down) {
    ++down_depth_;
  } else {
    NCS_ASSERT_MSG(down_depth_ > 0, "link up without a matching down");
    --down_depth_;
  }
}

void LinkFault::begin_burst(const GilbertElliottParams& params, std::uint64_t seed) {
  // Overlapping windows: the newest chain wins (a fresh burst process
  // replaces the running one — simple and deterministic).
  burst_.emplace(params, seed);
}

void LinkFault::end_burst() { burst_.reset(); }

bool LinkFault::should_drop() {
  if (down_depth_ > 0) {
    ++stats_.down_drops;
    return true;
  }
  if (burst_.has_value() && burst_->advance()) {
    ++stats_.burst_drops;
    return true;
  }
  if (uniform_p_ > 0.0 && uniform_rng_->next_bool(uniform_p_)) {
    ++stats_.uniform_drops;
    return true;
  }
  return false;
}

void NicFault::configure_uniform(double probability, std::uint64_t seed) {
  NCS_ASSERT(probability >= 0.0 && probability <= 1.0);
  uniform_p_ = probability;
  rng_.emplace(seed);
}

void NicFault::begin_window(double probability) {
  NCS_ASSERT(probability >= 0.0 && probability <= 1.0);
  windows_.push_back(probability);
}

void NicFault::end_window() {
  NCS_ASSERT_MSG(!windows_.empty(), "corrupt window end without a begin");
  windows_.pop_back();
}

double NicFault::effective_p() const {
  double p = uniform_p_;
  for (const double w : windows_) p += w;
  return std::min(p, 1.0);
}

bool NicFault::draw_corrupt() {
  NCS_ASSERT_MSG(rng_.has_value(), "NicFault draws before configure_uniform");
  return rng_->next_bool(effective_p());
}

std::uint64_t NicFault::draw_below(std::uint64_t bound) {
  return rng_->next_below(bound);
}

bool SwitchFault::port_down(int port) const {
  const auto it = down_depth_.find(port);
  return it != down_depth_.end() && it->second > 0;
}

void SwitchFault::set_port_down(int port, bool down) {
  int& depth = down_depth_[port];
  const bool was_down = depth > 0;
  if (down) {
    ++depth;
  } else {
    NCS_ASSERT_MSG(depth > 0, "port up without a matching down");
    --depth;
  }
  const bool is_down = depth > 0;
  if (was_down == is_down) return;
  for (const PortObserver& fn : observers_) fn(port, is_down);
}

void HostFault::pause_until(TimePoint resume_at) {
  ++stats_.pauses;
  if (handler_) {
    handler_(resume_at);
  } else {
    NCS_WARN("fault", "host pause scheduled but no pause handler installed");
  }
}

}  // namespace ncs::fault
