#include "fault/plan.hpp"

#include <cctype>
#include <charconv>
#include <sstream>
#include <utility>

namespace ncs::fault {

FaultPlan& FaultPlan::link_down(std::string link, TimePoint begin, Duration duration) {
  events.push_back(FaultEvent{FaultEvent::Kind::link_down, begin, duration,
                              std::move(link), -1, 0.0, {}});
  return *this;
}

FaultPlan& FaultPlan::link_burst(std::string link, TimePoint begin, Duration duration,
                                 GilbertElliottParams ge) {
  events.push_back(FaultEvent{FaultEvent::Kind::link_burst, begin, duration,
                              std::move(link), -1, 0.0, ge});
  return *this;
}

FaultPlan& FaultPlan::nic_corrupt(std::string nic, TimePoint begin, Duration duration,
                                  double probability) {
  events.push_back(FaultEvent{FaultEvent::Kind::nic_corrupt, begin, duration,
                              std::move(nic), -1, probability, {}});
  return *this;
}

FaultPlan& FaultPlan::port_down(std::string sw, int port, TimePoint begin,
                                Duration duration) {
  events.push_back(FaultEvent{FaultEvent::Kind::port_down, begin, duration, std::move(sw),
                              port, 0.0, {}});
  return *this;
}

FaultPlan& FaultPlan::host_pause(std::string host, TimePoint begin, Duration duration) {
  events.push_back(FaultEvent{FaultEvent::Kind::host_pause, begin, duration,
                              std::move(host), -1, 0.0, {}});
  return *this;
}

namespace {

Status parse_error(int line_no, const std::string& what) {
  return Status(ErrorCode::invalid_argument,
                "fault plan line " + std::to_string(line_no) + ": " + what);
}

bool parse_double(const std::string& tok, double* out) {
  const char* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

/// "200ms" / "1.5s" / "40us" / "300ns" -> Duration.
bool parse_duration(const std::string& tok, Duration* out) {
  std::size_t unit = tok.size();
  while (unit > 0 && (std::isalpha(static_cast<unsigned char>(tok[unit - 1])) != 0)) --unit;
  if (unit == 0 || unit == tok.size()) return false;
  double value = 0.0;
  if (!parse_double(tok.substr(0, unit), &value) || value < 0.0) return false;
  const std::string suffix = tok.substr(unit);
  if (suffix == "ns") {
    *out = Duration::nanoseconds(value);
  } else if (suffix == "us") {
    *out = Duration::microseconds(value);
  } else if (suffix == "ms") {
    *out = Duration::milliseconds(value);
  } else if (suffix == "s") {
    *out = Duration::seconds(value);
  } else {
    return false;
  }
  return true;
}

/// "key=value" trailing options (burst parameters, corruption probability).
bool parse_option(const std::string& tok, std::string* key, double* value) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string::npos) return false;
  *key = tok.substr(0, eq);
  return parse_double(tok.substr(eq + 1), value);
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream words(line);
    std::vector<std::string> tok;
    for (std::string w; words >> w;) tok.push_back(std::move(w));
    if (tok.empty()) continue;

    if (tok[0] == "seed") {
      if (tok.size() != 2) return parse_error(line_no, "expected: seed <u64>");
      std::uint64_t seed = 0;
      const auto [ptr, ec] =
          std::from_chars(tok[1].data(), tok[1].data() + tok[1].size(), seed);
      if (ec != std::errc() || ptr != tok[1].data() + tok[1].size())
        return parse_error(line_no, "bad seed value '" + tok[1] + "'");
      plan.seed = seed;
      continue;
    }

    // Every event line: at <time> <kind ...> for <duration> [options].
    Duration at;
    if (tok.size() < 2 || tok[0] != "at" || !parse_duration(tok[1], &at))
      return parse_error(line_no, "expected: at <time> ...");
    const TimePoint begin = TimePoint::origin() + at;

    // Locate "for <duration>"; options follow it.
    std::size_t for_at = 0;
    for (std::size_t i = 2; i < tok.size(); ++i)
      if (tok[i] == "for") for_at = i;
    Duration duration;
    if (for_at == 0 || for_at + 1 >= tok.size() ||
        !parse_duration(tok[for_at + 1], &duration))
      return parse_error(line_no, "expected: ... for <duration>");

    std::vector<std::pair<std::string, double>> options;
    for (std::size_t i = for_at + 2; i < tok.size(); ++i) {
      std::string key;
      double value = 0.0;
      if (!parse_option(tok[i], &key, &value))
        return parse_error(line_no, "bad option '" + tok[i] + "'");
      options.emplace_back(std::move(key), value);
    }
    const auto option = [&](const std::string& key, double* out) {
      for (const auto& [k, v] : options)
        if (k == key) *out = v;
    };

    const std::vector<std::string> body(tok.begin() + 2, tok.begin() + static_cast<std::ptrdiff_t>(for_at));
    if (body.size() == 3 && body[0] == "link" && body[2] == "down") {
      plan.link_down(body[1], begin, duration);
    } else if (body.size() == 3 && body[0] == "link" && body[2] == "burst") {
      GilbertElliottParams ge;
      option("p_gb", &ge.p_good_to_bad);
      option("p_bg", &ge.p_bad_to_good);
      option("loss_good", &ge.loss_good);
      option("loss_bad", &ge.loss_bad);
      plan.link_burst(body[1], begin, duration, ge);
    } else if (body.size() == 3 && body[0] == "nic" && body[2] == "corrupt") {
      double p = 0.0;
      option("p", &p);
      if (p <= 0.0 || p > 1.0)
        return parse_error(line_no, "nic corrupt needs p=<probability in (0,1]>");
      plan.nic_corrupt(body[1], begin, duration, p);
    } else if (body.size() == 5 && body[0] == "switch" && body[2] == "port" &&
               body[4] == "down") {
      int port = 0;
      const auto [ptr, ec] =
          std::from_chars(body[3].data(), body[3].data() + body[3].size(), port);
      if (ec != std::errc() || ptr != body[3].data() + body[3].size() || port < 0)
        return parse_error(line_no, "bad port '" + body[3] + "'");
      plan.port_down(body[1], port, begin, duration);
    } else if (body.size() == 3 && body[0] == "host" && body[2] == "pause") {
      plan.host_pause(body[1], begin, duration);
    } else {
      return parse_error(line_no, "unrecognized event");
    }
  }
  return plan;
}

}  // namespace ncs::fault
