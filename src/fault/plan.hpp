// Scripted fault schedules.
//
// A FaultPlan is a time-ordered list of fault events against named
// components — links by name ("sonet" matches both directions of the
// duplex pair, "ether" the shared segment), NICs by name ("nic2"),
// switches by (name, port), hosts by scheduler name ("p1"). The plan is a
// plain value: build it programmatically or parse the one-line-per-event
// text form (see `FaultPlan::parse`), then hand it to a FaultInjector (or
// `ClusterConfig::faults`) to arm it against a built topology.
//
// Text form, one event per line ('#' comments, blank lines ignored):
//
//   seed 48879
//   at 1s     link sonet down for 200ms
//   at 500ms  link sonet burst for 2s p_gb=0.05 p_bg=0.3 loss_good=0 loss_bad=0.9
//   at 2s     nic nic0 corrupt for 100ms p=0.01
//   at 1s     switch wan-switch0 port 2 down for 100ms
//   at 1.5s   host p1 pause for 50ms
//
// Durations accept ns/us/ms/s suffixes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/time.hpp"
#include "fault/faults.hpp"

namespace ncs::fault {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    link_down,    // target: link name
    link_burst,   // target: link name; `ge` parameterizes the chain
    nic_corrupt,  // target: NIC name; `probability` per cell
    port_down,    // target: switch name; `port`
    host_pause,   // target: host (scheduler) name
  };

  Kind kind = Kind::link_down;
  TimePoint begin;
  Duration duration;
  std::string target;
  int port = -1;             // port_down only
  double probability = 0.0;  // nic_corrupt only
  GilbertElliottParams ge;   // link_burst only
};

struct FaultPlan {
  /// Master seed for the plan's stochastic elements (each burst chain is
  /// seeded from this mixed with its event index).
  std::uint64_t seed = 0xFA517;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  // --- builder sugar ---
  FaultPlan& link_down(std::string link, TimePoint begin, Duration duration);
  FaultPlan& link_burst(std::string link, TimePoint begin, Duration duration,
                        GilbertElliottParams ge = {});
  FaultPlan& nic_corrupt(std::string nic, TimePoint begin, Duration duration,
                         double probability);
  FaultPlan& port_down(std::string sw, int port, TimePoint begin, Duration duration);
  FaultPlan& host_pause(std::string host, TimePoint begin, Duration duration);

  /// Parses the text form described in the header comment.
  static Result<FaultPlan> parse(const std::string& text);
};

}  // namespace ncs::fault
