// Central fault injector.
//
// Components register their fault-state objects under the component name;
// `schedule(plan)` arms one engine event per fault transition (window
// begin and end) that flips the matching state. Everything is ordinary
// simulation-event machinery, so fault timing is exactly as deterministic
// as the rest of the run, and fault instants can be emitted into the obs
// TraceLog next to the traffic they perturb.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/faults.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace ncs::fault {

class FaultInjector {
 public:
  explicit FaultInjector(sim::Engine& engine) : engine_(engine) {}

  // --- component registration (topology wiring) ---
  // Links register per direction; a plan target "sonet" matches "sonet",
  // "sonet>" and "sonet<", so one event takes down a whole duplex pair.
  void attach_link(const std::string& name, LinkFault* state);
  void attach_nic(const std::string& name, NicFault* state);
  void attach_switch(const std::string& name, SwitchFault* state);
  void attach_host(const std::string& name, HostFault* state);

  /// Arms every event of `plan` on the engine. May be called more than
  /// once (plans accumulate). Unmatched targets warn and count.
  void schedule(const FaultPlan& plan);

  /// Fault transitions are emitted as instants onto a dedicated track.
  void set_trace(obs::TraceLog* trace);

  /// Fault transitions additionally land on the flight recorder's fabric
  /// ring, so a triggered dump shows the injected fault next to the
  /// failures it caused.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  struct Stats {
    std::uint64_t events_scheduled = 0;
    std::uint64_t transitions_fired = 0;
    std::uint64_t unmatched_targets = 0;
  };
  const Stats& stats() const { return stats_; }
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

 private:
  std::vector<LinkFault*> links_for(const std::string& target);
  void fire(const std::string& label);

  sim::Engine& engine_;
  std::map<std::string, LinkFault*> link_;
  std::map<std::string, NicFault*> nic_;
  std::map<std::string, SwitchFault*> switch_;
  std::map<std::string, HostFault*> host_;
  obs::TraceLog* trace_ = nullptr;
  int trace_track_ = -1;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint64_t scheduled_total_ = 0;  // burst-seed mixing across plans
  Stats stats_;
};

}  // namespace ncs::fault
