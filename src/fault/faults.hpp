// Per-component fault state.
//
// Components own their fault state object (a Link owns a LinkFault, a
// Switch a SwitchFault, ...) and consult it on the data path; the
// FaultInjector flips the state at scripted instants. Keeping the state
// inside the component preserves the pre-fault-plan RNG streams exactly:
// the uniform loss/corruption draws use the same seeds and draw order as
// the legacy `LinkParams::loss_probability` / `NicParams::
// cell_corrupt_probability` knobs, so runs without a FaultPlan are
// bit-identical to the pre-subsystem simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace ncs::fault {

/// Gilbert–Elliott two-state burst-loss chain: a good state with low loss
/// and a bad state with high loss, with per-frame transition probabilities.
/// The classic model for fiber error bursts and congested WAN hops.
struct GilbertElliottParams {
  double p_good_to_bad = 0.05;
  double p_bad_to_good = 0.3;
  double loss_good = 0.0;
  double loss_bad = 1.0;
};

class GilbertElliott {
 public:
  GilbertElliott(GilbertElliottParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  /// Advances the chain one frame and draws its fate. Returns true if the
  /// frame is lost.
  bool advance() {
    const double flip = bad_ ? params_.p_bad_to_good : params_.p_good_to_bad;
    if (rng_.next_bool(flip)) bad_ = !bad_;
    return rng_.next_bool(bad_ ? params_.loss_bad : params_.loss_good);
  }

  bool in_bad() const { return bad_; }

 private:
  GilbertElliottParams params_;
  Rng rng_;
  bool bad_ = false;
};

/// Fault state of one unidirectional link (or the shared Ethernet medium):
/// hard down-windows, an optional Gilbert–Elliott burst process, and the
/// legacy uniform loss draw. Consulted once per frame by the owner.
class LinkFault {
 public:
  /// Legacy `loss_probability` sugar: a uniform per-frame loss draw from
  /// the link's own seeded stream (same stream as before this subsystem).
  void configure_uniform(double probability, std::uint64_t seed);

  bool down() const { return down_depth_ > 0; }
  void set_down(bool down);  // depth-counted for overlapping windows

  void begin_burst(const GilbertElliottParams& params, std::uint64_t seed);
  void end_burst();
  bool bursting() const { return burst_.has_value(); }

  /// The per-frame verdict, in priority order: down-window, then the burst
  /// chain, then the uniform draw. Exactly one cause is charged per drop.
  /// The uniform draw is only consumed when uniform loss is configured,
  /// preserving the legacy RNG stream.
  bool should_drop();

  struct Stats {
    std::uint64_t down_drops = 0;
    std::uint64_t burst_drops = 0;
    std::uint64_t uniform_drops = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  int down_depth_ = 0;
  std::optional<GilbertElliott> burst_;
  double uniform_p_ = 0.0;
  std::optional<Rng> uniform_rng_;
  Stats stats_;
};

/// Fault state of one NIC: per-cell corruption probability, as the legacy
/// uniform knob plus scripted windows that add to it. The NIC keeps
/// ownership of what "corrupt" means (bit flip in detailed mode, damaged
/// burst otherwise); this class only owns the draws so the legacy stream
/// (seed + draw order) is preserved.
class NicFault {
 public:
  void configure_uniform(double probability, std::uint64_t seed);

  void begin_window(double probability);
  void end_window();

  /// Any corruption source active (gate the per-cell draws on this).
  bool corrupting() const { return effective_p() > 0.0; }

  /// Per-cell Bernoulli(effective probability).
  bool draw_corrupt();
  /// Uniform in [0, bound): position draws for the bit flip.
  std::uint64_t draw_below(std::uint64_t bound);

  struct Stats {
    std::uint64_t corrupted_cells = 0;
  };
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

 private:
  double effective_p() const;

  double uniform_p_ = 0.0;
  std::vector<double> windows_;  // active scripted windows (stacked)
  std::optional<Rng> rng_;
  Stats stats_;
};

/// Fault state of one switch: per-port down flags. The switch drops bursts
/// entering or leaving a dead port; subscribers (the SVC call controllers)
/// are notified on every transition so they can release and later
/// re-establish circuits through the port.
class SwitchFault {
 public:
  using PortObserver = std::function<void(int port, bool down)>;

  bool port_down(int port) const;
  void set_port_down(int port, bool down);  // depth-counted; notifies observers
  void subscribe(PortObserver observer) { observers_.push_back(std::move(observer)); }

  struct Stats {
    std::uint64_t port_drops = 0;
  };
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

 private:
  std::map<int, int> down_depth_;
  std::vector<PortObserver> observers_;
  Stats stats_;
};

/// Fault state of one host: scripted pause windows. The owner (the cluster
/// harness) installs a handler that stalls the host's scheduler — e.g. by
/// occupying the CPU with a top-priority thread — until `resume_at`.
class HostFault {
 public:
  using PauseHandler = std::function<void(TimePoint resume_at)>;

  void set_pause_handler(PauseHandler handler) { handler_ = std::move(handler); }
  void pause_until(TimePoint resume_at);

  struct Stats {
    std::uint64_t pauses = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  PauseHandler handler_;
  Stats stats_;
};

}  // namespace ncs::fault
