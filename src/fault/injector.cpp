#include "fault/injector.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::fault {

namespace {
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  return seed ^ (0x9E3779B97F4A7C15ull * (index + 1));
}
}  // namespace

void FaultInjector::attach_link(const std::string& name, LinkFault* state) {
  NCS_ASSERT(state != nullptr);
  link_[name] = state;
}

void FaultInjector::attach_nic(const std::string& name, NicFault* state) {
  NCS_ASSERT(state != nullptr);
  nic_[name] = state;
}

void FaultInjector::attach_switch(const std::string& name, SwitchFault* state) {
  NCS_ASSERT(state != nullptr);
  switch_[name] = state;
}

void FaultInjector::attach_host(const std::string& name, HostFault* state) {
  NCS_ASSERT(state != nullptr);
  host_[name] = state;
}

void FaultInjector::set_trace(obs::TraceLog* trace) {
  trace_ = trace;
  if (trace_ != nullptr) trace_track_ = trace_->track("fault");
}

std::vector<LinkFault*> FaultInjector::links_for(const std::string& target) {
  std::vector<LinkFault*> out;
  for (const std::string& name : {target, target + ">", target + "<"}) {
    const auto it = link_.find(name);
    if (it != link_.end()) out.push_back(it->second);
  }
  return out;
}

void FaultInjector::fire(const std::string& label) {
  ++stats_.transitions_fired;
  NCS_INFO("fault", "%s", label.c_str());
  if (trace_ != nullptr) trace_->instant(trace_track_, label, "fault", engine_.now());
  // Fault transitions live on the recorder's fabric ring (host -1), which
  // per-message stamp traffic never evicts — so a dump triggered seconds
  // after a blackout still contains the instant that caused it.
  if (recorder_ != nullptr)
    recorder_->note(-1, obs::FlightRecorder::EntryKind::fault, engine_.now(), label);
}

void FaultInjector::schedule(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events) {
    const std::uint64_t index = scheduled_total_++;
    const TimePoint begin = ev.begin;
    const TimePoint end = ev.begin + ev.duration;

    switch (ev.kind) {
      case FaultEvent::Kind::link_down: {
        const auto targets = links_for(ev.target);
        if (targets.empty()) {
          ++stats_.unmatched_targets;
          NCS_WARN("fault", "no link named '%s' attached", ev.target.c_str());
          break;
        }
        engine_.schedule_at(begin, [this, targets, t = ev.target] {
          for (LinkFault* f : targets) f->set_down(true);
          fire("link-down " + t);
        });
        engine_.schedule_at(end, [this, targets, t = ev.target] {
          for (LinkFault* f : targets) f->set_down(false);
          fire("link-up " + t);
        });
        stats_.events_scheduled += 1;
        break;
      }
      case FaultEvent::Kind::link_burst: {
        const auto targets = links_for(ev.target);
        if (targets.empty()) {
          ++stats_.unmatched_targets;
          NCS_WARN("fault", "no link named '%s' attached", ev.target.c_str());
          break;
        }
        const std::uint64_t seed = mix_seed(plan.seed, index);
        engine_.schedule_at(begin, [this, targets, ge = ev.ge, seed, t = ev.target] {
          // Each direction gets its own chain (distinct sub-seed) so the
          // two streams stay independent.
          std::uint64_t s = seed;
          for (LinkFault* f : targets) f->begin_burst(ge, s++);
          fire("burst-begin " + t);
        });
        engine_.schedule_at(end, [this, targets, t = ev.target] {
          for (LinkFault* f : targets) f->end_burst();
          fire("burst-end " + t);
        });
        stats_.events_scheduled += 1;
        break;
      }
      case FaultEvent::Kind::nic_corrupt: {
        const auto it = nic_.find(ev.target);
        if (it == nic_.end()) {
          ++stats_.unmatched_targets;
          NCS_WARN("fault", "no NIC named '%s' attached", ev.target.c_str());
          break;
        }
        NicFault* f = it->second;
        engine_.schedule_at(begin, [this, f, p = ev.probability, t = ev.target] {
          f->begin_window(p);
          fire("corrupt-begin " + t);
        });
        engine_.schedule_at(end, [this, f, t = ev.target] {
          f->end_window();
          fire("corrupt-end " + t);
        });
        stats_.events_scheduled += 1;
        break;
      }
      case FaultEvent::Kind::port_down: {
        const auto it = switch_.find(ev.target);
        if (it == switch_.end()) {
          ++stats_.unmatched_targets;
          NCS_WARN("fault", "no switch named '%s' attached", ev.target.c_str());
          break;
        }
        SwitchFault* f = it->second;
        engine_.schedule_at(begin, [this, f, port = ev.port, t = ev.target] {
          f->set_port_down(port, true);
          fire("port-down " + t + ":" + std::to_string(port));
        });
        engine_.schedule_at(end, [this, f, port = ev.port, t = ev.target] {
          f->set_port_down(port, false);
          fire("port-up " + t + ":" + std::to_string(port));
        });
        stats_.events_scheduled += 1;
        break;
      }
      case FaultEvent::Kind::host_pause: {
        const auto it = host_.find(ev.target);
        if (it == host_.end()) {
          ++stats_.unmatched_targets;
          NCS_WARN("fault", "no host named '%s' attached", ev.target.c_str());
          break;
        }
        HostFault* f = it->second;
        engine_.schedule_at(begin, [this, f, end, t = ev.target] {
          f->pause_until(end);
          fire("pause " + t);
        });
        // The pause itself needs no end-of-window action (threads check the
        // deadline themselves), but the timeline does: without a resume
        // instant a chaos trace shows when a host froze and never when it
        // thawed.
        engine_.schedule_at(end, [this, t = ev.target] { fire("resume " + t); });
        stats_.events_scheduled += 1;
        break;
      }
    }
  }
}

void FaultInjector::register_metrics(obs::MetricsRegistry& reg,
                                     const std::string& prefix) const {
  reg.counter(prefix + "/events_scheduled", &stats_.events_scheduled);
  reg.counter(prefix + "/transitions_fired", &stats_.transitions_fired);
  reg.counter(prefix + "/unmatched_targets", &stats_.unmatched_targets);
}

}  // namespace ncs::fault
