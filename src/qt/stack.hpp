// Execution stacks for user-level threads.
//
// Each stack is an mmap'ed region with a PROT_NONE guard page below it, so
// overflow faults immediately instead of corrupting a neighbouring thread's
// stack — the classic failure mode of 1995-era user-space thread packages.
#pragma once

#include <cstddef>

namespace ncs::qt {

class Stack {
 public:
  static constexpr std::size_t kDefaultSize = 256 * 1024;

  /// Maps `size` usable bytes plus one guard page. Aborts on mmap failure
  /// (thread creation happens at setup time; there is nothing to degrade to).
  explicit Stack(std::size_t size = kDefaultSize);
  ~Stack();

  Stack(Stack&& other) noexcept;
  Stack& operator=(Stack&& other) noexcept;
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  /// Lowest usable address (just above the guard page).
  void* base() const { return base_; }
  /// One past the highest usable address; initial stack pointers grow down from here.
  void* top() const { return static_cast<char*>(base_) + size_; }
  std::size_t size() const { return size_; }

  /// Fills the stack with a sentinel pattern so high_watermark() can report
  /// peak usage later. Call before first use.
  void paint();

  /// Bytes of stack ever touched since paint(); 0 if never painted.
  std::size_t high_watermark() const;

 private:
  void* map_ = nullptr;   // includes guard page
  void* base_ = nullptr;  // usable region
  std::size_t size_ = 0;
  std::size_t map_size_ = 0;
  bool painted_ = false;
};

}  // namespace ncs::qt
