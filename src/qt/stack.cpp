#include "qt/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace ncs::qt {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t v, std::size_t align) { return (v + align - 1) / align * align; }

constexpr std::uint64_t kPaint = 0x51CC51CC51CC51CCull;  // "QT" sentinel

}  // namespace

Stack::Stack(std::size_t size) {
  const std::size_t ps = page_size();
  size_ = round_up(size, ps);
  map_size_ = size_ + ps;  // one guard page below
  void* p = ::mmap(nullptr, map_size_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  NCS_ASSERT_MSG(p != MAP_FAILED, "stack mmap failed");
  map_ = p;
  NCS_ASSERT_MSG(::mprotect(p, ps, PROT_NONE) == 0, "guard page mprotect failed");
  base_ = static_cast<char*>(p) + ps;
}

Stack::~Stack() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

Stack::Stack(Stack&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      map_size_(std::exchange(other.map_size_, 0)),
      painted_(std::exchange(other.painted_, false)) {}

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = std::exchange(other.map_, nullptr);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    map_size_ = std::exchange(other.map_size_, 0);
    painted_ = std::exchange(other.painted_, false);
  }
  return *this;
}

void Stack::paint() {
  auto* words = static_cast<std::uint64_t*>(base_);
  const std::size_t n = size_ / sizeof(std::uint64_t);
  for (std::size_t i = 0; i < n; ++i) words[i] = kPaint;
  painted_ = true;
}

std::size_t Stack::high_watermark() const {
  if (!painted_) return 0;
  // Stacks grow down: scan from the bottom for the first clobbered word.
  const auto* words = static_cast<const std::uint64_t*>(base_);
  const std::size_t n = size_ / sizeof(std::uint64_t);
  for (std::size_t i = 0; i < n; ++i) {
    if (words[i] != kPaint) return size_ - i * sizeof(std::uint64_t);
  }
  return 0;
}

}  // namespace ncs::qt
