#include "qt/context.hpp"

#include <cstdint>

#include "common/assert.hpp"

extern "C" void ncs_qt_entry_returned() {
  NCS_UNREACHABLE("a qt::Context entry function returned; it must switch away instead");
}

#if defined(NCS_QT_UCONTEXT)

// -------- ucontext(3) fallback --------------------------------------------
//
// makecontext only passes int arguments portably, so the 64-bit entry/arg
// pointers are split into 32-bit halves and reassembled in the shim.

namespace ncs::qt {
namespace {

void entry_shim(unsigned fn_hi, unsigned fn_lo, unsigned arg_hi, unsigned arg_lo) {
  const auto join = [](unsigned hi, unsigned lo) {
    return (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  };
  auto entry = reinterpret_cast<Context::Entry>(join(fn_hi, fn_lo));
  auto* arg = reinterpret_cast<void*>(join(arg_hi, arg_lo));
  entry(arg);
  ncs_qt_entry_returned();
}

}  // namespace

void Context::init(Stack& stack, Entry entry, void* arg) {
  NCS_ASSERT(getcontext(&uc_) == 0);
  uc_.uc_stack.ss_sp = stack.base();
  uc_.uc_stack.ss_size = stack.size();
  uc_.uc_link = nullptr;
  const auto fn_bits = reinterpret_cast<std::uint64_t>(entry);
  const auto arg_bits = reinterpret_cast<std::uint64_t>(arg);
  makecontext(&uc_, reinterpret_cast<void (*)()>(entry_shim), 4,
              static_cast<unsigned>(fn_bits >> 32), static_cast<unsigned>(fn_bits),
              static_cast<unsigned>(arg_bits >> 32), static_cast<unsigned>(arg_bits));
}

void Context::switch_to(Context& from, Context& to) {
  NCS_ASSERT(swapcontext(&from.uc_, &to.uc_) == 0);
}

}  // namespace ncs::qt

#else

// -------- x86-64 assembly implementation -----------------------------------

extern "C" {
void ncs_qt_switch(void** save_sp, void* restore_sp);
void ncs_qt_start();
}

namespace ncs::qt {

void Context::init(Stack& stack, Entry entry, void* arg) {
  // Build the saved frame ncs_qt_switch's restore path expects; see the
  // layout comment in context_x86_64.S. Frame base is 16-byte aligned so
  // ncs_qt_start observes SysV pre-call alignment.
  auto top = reinterpret_cast<std::uintptr_t>(stack.top());
  top &= ~static_cast<std::uintptr_t>(15);
  auto* frame = reinterpret_cast<std::uint64_t*>(top) - 8;  // 64 bytes
  frame[7] = reinterpret_cast<std::uint64_t>(&ncs_qt_start);  // return address
  frame[6] = 0;                                               // rbp
  frame[5] = 0;                                               // rbx
  frame[4] = reinterpret_cast<std::uint64_t>(entry);          // r12
  frame[3] = reinterpret_cast<std::uint64_t>(arg);            // r13
  frame[2] = 0;                                               // r14
  frame[1] = 0;                                               // r15
  // FP control block: default mxcsr (all exceptions masked, round-nearest)
  // and default x87 control word.
  frame[0] = 0x1F80ull | (0x037Full << 32);
  sp_ = frame;
}

void Context::switch_to(Context& from, Context& to) {
  NCS_ASSERT_MSG(to.sp_ != nullptr, "switching to an uninitialized context");
  ncs_qt_switch(&from.sp_, to.sp_);
}

}  // namespace ncs::qt

#endif
