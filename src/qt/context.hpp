// Cooperative execution contexts — the QuickThreads role.
//
// The paper builds NCS_MTS on the University of Washington QuickThreads
// toolkit, which "only provides the capability for thread initialization
// and context switching"; scheduling and synchronization live a layer up
// (src/core/mts). This module is the same minimal contract:
//
//   Context ctx;
//   ctx.init(stack, entry, arg);        // prepare a fresh context
//   Context::switch_to(here, ctx);      // transfer control; `here` resumes
//                                       // when someone switches back to it
//
// Two interchangeable implementations, selected at build time:
//  - x86-64 SysV assembly (default on x86-64): saves callee-saved GPRs plus
//    mxcsr/x87 control words, ~30 instructions per switch.
//  - ucontext(3) fallback (-DNCS_USE_UCONTEXT=ON or non-x86-64 hosts).
//
// An entry function must never return: the layer above must switch away
// (thread exit is a scheduler concept). Returning aborts the process.
#pragma once

#include "qt/stack.hpp"

#if defined(NCS_QT_UCONTEXT)
#include <ucontext.h>
#endif

namespace ncs::qt {

class Context {
 public:
  using Entry = void (*)(void*);

  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Prepares this context to run `entry(arg)` on `stack` at first switch-in.
  void init(Stack& stack, Entry entry, void* arg);

  /// Saves the current machine context into `from` and resumes `to`.
  /// Returns (into `from`) when another switch targets `from` again.
  static void switch_to(Context& from, Context& to);

 private:
#if defined(NCS_QT_UCONTEXT)
  ucontext_t uc_{};
#else
  void* sp_ = nullptr;
#endif
};

}  // namespace ncs::qt
