// Datagram abstraction over the two physical substrates.
//
// TCP (below) needs only "move an opaque datagram from host i to host j,
// maybe dropping it". Ethernet provides that directly; ATM provides it via
// one AAL5 PDU per datagram (RFC 1483 style), submitted through the NIC's
// I/O buffers with backpressure handled by an internal per-host queue.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "atm/network.hpp"
#include "common/bytes.hpp"
#include "ether/bus.hpp"
#include "sim/engine.hpp"

namespace ncs::proto {

class SegmentNetwork {
 public:
  using RxHandler = std::function<void(int /*src*/, Bytes)>;

  virtual ~SegmentNetwork() = default;

  /// Queues one datagram. `on_sent` (nullable) fires when the local
  /// transmitter is done with it.
  virtual void send(int src, int dst, Bytes datagram, sim::EventFn on_sent) = 0;

  virtual void set_rx(int host, RxHandler handler) = 0;

  /// Largest datagram this network carries.
  virtual std::size_t mtu() const = 0;

  virtual int n_hosts() const = 0;
};

/// 10 Mbps shared Ethernet: datagram = one frame payload.
class EthernetSegmentNetwork final : public SegmentNetwork {
 public:
  explicit EthernetSegmentNetwork(ether::Bus& bus, int n_hosts)
      : bus_(bus), n_hosts_(n_hosts) {}

  void send(int src, int dst, Bytes datagram, sim::EventFn on_sent) override {
    bus_.send(src, dst, std::move(datagram), std::move(on_sent));
  }
  void set_rx(int host, RxHandler handler) override {
    bus_.set_rx_handler(host, std::move(handler));
  }
  std::size_t mtu() const override { return ether::kMaxPayload; }
  int n_hosts() const override { return n_hosts_; }

 private:
  ether::Bus& bus_;
  int n_hosts_;
};

/// Classical IP over ATM: datagram = one AAL5 PDU on the pairwise PVC.
/// The 9180-byte IP-over-ATM MTU applies; NIC I/O buffers must be at
/// least that large (the kernel driver owns big buffers on this path).
class AtmSegmentNetwork final : public SegmentNetwork {
 public:
  AtmSegmentNetwork(sim::Engine& engine, atm::AtmFabric& fabric);

  void send(int src, int dst, Bytes datagram, sim::EventFn on_sent) override;
  void set_rx(int host, RxHandler handler) override;
  std::size_t mtu() const override { return 9180; }
  int n_hosts() const override { return fabric_.n_hosts(); }

 private:
  struct Pending {
    int dst;
    Bytes datagram;
    sim::EventFn on_sent;
  };

  void pump(int host);

  sim::Engine& engine_;
  atm::AtmFabric& fabric_;
  std::vector<std::deque<Pending>> queues_;  // per source host
  std::vector<bool> pump_pending_;           // notify_tx_buffer already armed
  std::vector<RxHandler> handlers_;
};

}  // namespace ncs::proto
