#include "proto/tcp.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::proto {

namespace {

constexpr std::uint8_t kFlagData = 1;
constexpr std::uint8_t kFlagAck = 2;
// conn_id, flags, seq, len occupy 15 bytes; the datagram is padded to the
// real 40-byte IPv4+TCP header size so wire accounting stays honest.
constexpr std::size_t kFieldBytes = 2 + 1 + 8 + 4;
static_assert(kFieldBytes <= kIpTcpHeaderBytes);

Bytes make_segment(std::uint16_t conn_id, std::uint8_t flags, std::uint64_t seq,
                   BytesView payload) {
  Bytes out(kIpTcpHeaderBytes + payload.size(), std::byte{0});
  ByteWriter w(out);
  w.u16(conn_id);
  w.u8(flags);
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.zeros(kIpTcpHeaderBytes - kFieldBytes);
  w.bytes(payload);
  return out;
}

constexpr int kMaxBackoffShift = 3;  // RTO caps at 8x

}  // namespace

TcpConnection::TcpConnection(sim::Engine& engine, SegmentNetwork& net, int src, int dst,
                             std::uint16_t conn_id, TcpParams params)
    : engine_(engine), net_(net), src_(src), dst_(dst), conn_id_(conn_id), params_(params) {
  NCS_ASSERT(params_.window_segments >= 1);
  NCS_ASSERT(net.mtu() > kIpTcpHeaderBytes);
  mss_ = std::min(params_.mss, net.mtu() - kIpTcpHeaderBytes);
  NCS_ASSERT(mss_ >= 1);
}

TcpConnection::~TcpConnection() {
  cancel_rto();
  if (delayed_ack_event_ != 0) engine_.cancel(delayed_ack_event_);
}

void TcpConnection::send(Bytes data) {
  if (data.empty()) return;
  append(send_buffer_, data);
  snd_buffered_ += data.size();
  pump();
}

void TcpConnection::pump() {
  const std::uint64_t window_bytes =
      static_cast<std::uint64_t>(params_.window_segments) * mss_;
  while (snd_nxt_ < snd_buffered_ && snd_nxt_ - snd_una_ < window_bytes) {
    const std::uint64_t window_room = window_bytes - (snd_nxt_ - snd_una_);
    const std::uint64_t len = std::min<std::uint64_t>(
        {static_cast<std::uint64_t>(mss_), snd_buffered_ - snd_nxt_, window_room});
    // Nagle: hold a sub-MSS segment while earlier data is unacknowledged.
    // Combined with the peer's delayed ack this stalls every small-message
    // tail by up to the delayed-ack timer — deliberately modeled.
    if (params_.nagle && len < mss_ && snd_nxt_ > snd_una_) {
      ++stats_.nagle_holds;
      if (trace_ != nullptr)
        trace_->instant(trace_track_, "nagle-hold c" + std::to_string(conn_id_), "tcp",
                        engine_.now());
      break;
    }
    transmit_range(snd_nxt_, snd_nxt_ + len);
    snd_nxt_ += len;
  }
  if (snd_una_ < snd_nxt_ && rto_event_ == 0) arm_rto();
}

void TcpConnection::transmit_range(std::uint64_t from, std::uint64_t to) {
  NCS_ASSERT(from >= buffer_base_ && to <= snd_buffered_);
  const BytesView payload =
      BytesView(send_buffer_).subspan(static_cast<std::size_t>(from - buffer_base_),
                                      static_cast<std::size_t>(to - from));
  ++stats_.data_segments;
  if (to <= snd_max_) ++stats_.retransmits;
  snd_max_ = std::max(snd_max_, to);

  net_.send(src_, dst_, make_segment(conn_id_, kFlagData, from, payload), nullptr);
}

void TcpConnection::arm_rto() {
  const Duration rto = params_.rto * (std::int64_t{1} << std::min(backoff_, kMaxBackoffShift));
  rto_event_ = engine_.schedule_after(rto, [this] {
    rto_event_ = 0;
    on_rto();
  });
}

void TcpConnection::cancel_rto() {
  if (rto_event_ != 0) {
    engine_.cancel(rto_event_);
    rto_event_ = 0;
  }
}

void TcpConnection::on_rto() {
  if (snd_una_ == snd_nxt_) return;  // everything acked meanwhile
  NCS_DEBUG("tcp", "conn %u rto: go-back-n to %llu", conn_id_,
            static_cast<unsigned long long>(snd_una_));
  if (trace_ != nullptr)
    trace_->instant(trace_track_, "rto c" + std::to_string(conn_id_), "tcp", engine_.now());
  ++backoff_;
  snd_nxt_ = snd_una_;  // go-back-N
  pump();
}

void TcpConnection::on_ack(std::uint64_t ack) {
  if (ack <= snd_una_) return;  // duplicate/stale
  NCS_ASSERT(ack <= snd_nxt_);
  snd_una_ = ack;
  backoff_ = 0;
  // Trim acknowledged prefix.
  const auto drop = static_cast<std::size_t>(snd_una_ - buffer_base_);
  send_buffer_.erase(send_buffer_.begin(),
                     send_buffer_.begin() + static_cast<std::ptrdiff_t>(drop));
  buffer_base_ = snd_una_;
  cancel_rto();
  pump();
}

void TcpConnection::on_data_segment(std::uint64_t seq, BytesView payload) {
  bool in_order = false;
  if (seq == rcv_nxt_) {
    rcv_nxt_ += payload.size();
    stats_.bytes_delivered += payload.size();
    in_order = true;
    if (on_deliver_) on_deliver_(payload);
  } else {
    // Go-back-N receiver: drop anything out of order; the (immediate,
    // duplicate) ack tells the sender where to resume.
    ++stats_.out_of_order_drops;
  }

  if (!params_.delayed_ack_enabled || !in_order) {
    send_ack();
    return;
  }
  // BSD delayed ack: every second in-order segment acks immediately;
  // a lone segment waits for the timer.
  if (delayed_ack_event_ != 0) {
    engine_.cancel(delayed_ack_event_);
    delayed_ack_event_ = 0;
    send_ack();
  } else {
    ++stats_.acks_delayed;
    if (trace_ != nullptr)
      trace_->instant(trace_track_, "delay-ack c" + std::to_string(conn_id_), "tcp",
                      engine_.now());
    delayed_ack_event_ = engine_.schedule_after(params_.delayed_ack, [this] {
      delayed_ack_event_ = 0;
      send_ack();
    });
  }
}

void TcpConnection::send_ack() {
  ++stats_.acks_sent;
  net_.send(dst_, src_, make_segment(conn_id_, kFlagAck, rcv_nxt_, {}), nullptr);
}

TcpMesh::TcpMesh(sim::Engine& engine, SegmentNetwork& net, TcpParams params)
    : engine_(engine), net_(net), params_(params),
      deliver_(static_cast<std::size_t>(net.n_hosts())) {
  for (int h = 0; h < net_.n_hosts(); ++h) {
    net_.set_rx(h, [this, h](int from, Bytes datagram) {
      ByteReader r(datagram);
      const std::uint16_t conn_id = r.u16();
      const std::uint8_t flags = r.u8();
      const std::uint64_t seq = r.u64();
      const std::uint32_t len = r.u32();
      r.skip(kIpTcpHeaderBytes - kFieldBytes);
      const int a = conn_id / 256;
      const int b = conn_id % 256;
      if (flags & kFlagData) {
        NCS_ASSERT(a == from && b == h);
        connection(a, b).on_data_segment(seq, r.bytes(len));
      } else {
        NCS_ASSERT(b == from && a == h);
        connection(a, b).on_ack(seq);
      }
    });
  }
}

TcpConnection& TcpMesh::connection(int src, int dst) {
  NCS_ASSERT(src >= 0 && src < 256 && dst >= 0 && dst < 256);
  const auto key = std::make_pair(src, dst);
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    auto conn = std::make_unique<TcpConnection>(
        engine_, net_, src, dst, static_cast<std::uint16_t>(src * 256 + dst), params_);
    conn->set_on_deliver([this, src, dst](BytesView data) {
      auto& fn = deliver_[static_cast<std::size_t>(dst)];
      if (fn) fn(src, data);
    });
    conn->set_trace(trace_, trace_track_);
    it = connections_.emplace(key, std::move(conn)).first;
  }
  return *it->second;
}

void TcpMesh::send(int src, int dst, Bytes data) {
  connection(src, dst).send(std::move(data));
}

void TcpMesh::set_on_deliver(int host, std::function<void(int, BytesView)> fn) {
  deliver_[static_cast<std::size_t>(host)] = std::move(fn);
}

std::size_t TcpMesh::effective_mss() const {
  return std::min(params_.mss, net_.mtu() - kIpTcpHeaderBytes);
}

bool TcpMesh::idle() const {
  for (const auto& [key, conn] : connections_)
    if (!conn->idle()) return false;
  return true;
}

TcpConnection::Stats TcpMesh::total_stats() const {
  TcpConnection::Stats total{};
  for (const auto& [key, conn] : connections_) {
    const auto& s = conn->stats();
    total.data_segments += s.data_segments;
    total.acks_sent += s.acks_sent;
    total.acks_delayed += s.acks_delayed;
    total.retransmits += s.retransmits;
    total.nagle_holds += s.nagle_holds;
    total.bytes_delivered += s.bytes_delivered;
    total.out_of_order_drops += s.out_of_order_drops;
  }
  return total;
}

void TcpMesh::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/data_segments", [this] { return total_stats().data_segments; });
  reg.counter(prefix + "/acks_sent", [this] { return total_stats().acks_sent; });
  reg.counter(prefix + "/acks_delayed", [this] { return total_stats().acks_delayed; });
  reg.counter(prefix + "/retransmits", [this] { return total_stats().retransmits; });
  reg.counter(prefix + "/nagle_holds", [this] { return total_stats().nagle_holds; });
  reg.counter(prefix + "/bytes_delivered", [this] { return total_stats().bytes_delivered; });
  reg.counter(prefix + "/out_of_order_drops",
              [this] { return total_stats().out_of_order_drops; });
}

void TcpMesh::set_trace(obs::TraceLog* trace, const std::string& prefix) {
  trace_ = trace;
  trace_track_ = trace_ != nullptr ? trace_->track(prefix) : -1;
  for (auto& [key, conn] : connections_) conn->set_trace(trace_, trace_track_);
}

}  // namespace ncs::proto
