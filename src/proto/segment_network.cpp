#include "proto/segment_network.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ncs::proto {

AtmSegmentNetwork::AtmSegmentNetwork(sim::Engine& engine, atm::AtmFabric& fabric)
    : engine_(engine),
      fabric_(fabric),
      queues_(static_cast<std::size_t>(fabric.n_hosts())),
      pump_pending_(static_cast<std::size_t>(fabric.n_hosts()), false),
      handlers_(static_cast<std::size_t>(fabric.n_hosts())) {
  for (int h = 0; h < fabric_.n_hosts(); ++h) {
    NCS_ASSERT_MSG(fabric_.nic(h).params().io_buffer_size >= mtu(),
                   "IP-over-ATM needs NIC buffers >= the 9180-byte MTU");
    fabric_.nic(h).set_rx_handler([this, h](atm::VcId vc, Bytes data, bool eom) {
      NCS_ASSERT_MSG(eom, "IP datagram must be a single AAL5 PDU");
      auto& handler = handlers_[static_cast<std::size_t>(h)];
      if (handler) handler(atm::src_of(vc), std::move(data));
    });
  }
}

void AtmSegmentNetwork::send(int src, int dst, Bytes datagram, sim::EventFn on_sent) {
  NCS_ASSERT(datagram.size() <= mtu());
  queues_[static_cast<std::size_t>(src)].push_back(
      Pending{dst, std::move(datagram), std::move(on_sent)});
  pump(src);
}

void AtmSegmentNetwork::pump(int host) {
  auto& queue = queues_[static_cast<std::size_t>(host)];
  atm::Nic& nic = fabric_.nic(host);
  while (!queue.empty() && nic.tx_buffer_available()) {
    Pending p = std::move(queue.front());
    queue.pop_front();
    if (p.on_sent) engine_.post(std::move(p.on_sent));  // accepted by the driver
    nic.submit_tx(atm::vc_to(p.dst), std::move(p.datagram), /*end_of_message=*/true);
  }
  if (!queue.empty() && !pump_pending_[static_cast<std::size_t>(host)]) {
    pump_pending_[static_cast<std::size_t>(host)] = true;
    nic.notify_tx_buffer([this, host] {
      pump_pending_[static_cast<std::size_t>(host)] = false;
      pump(host);
    });
  }
}

void AtmSegmentNetwork::set_rx(int host, RxHandler handler) {
  handlers_[static_cast<std::size_t>(host)] = std::move(handler);
}

}  // namespace ncs::proto
