// Host-side protocol cost model — the paper's Fig 3 made explicit.
//
// The paper's argument for the HSM path is counted in memory-bus accesses
// per transmitted word: the socket/TCP/IP stack touches each word five
// times (application write, socket-layer copy in and out, TCP checksum
// read, copy to the interface), while NCS's mmap'ed kernel buffers cut
// that to three. The application's own write of its buffer happens in both
// paths (it is part of "compute"), so the charges below cover the
// *protocol* portion: 4 accesses/word for TCP, 2 for NCS.
//
// All costs are expressed in CPU cycles so the same model scales between
// the 33 MHz ELCs (Ethernet testbed) and 40 MHz IPXs (ATM testbed);
// threads charge them through their host's Scheduler.
#pragma once

#include <cstddef>

namespace ncs::proto {

struct CostModel {
  /// CPU cycles per memory-bus access of one 4-byte word (these machines
  /// moved data with the CPU; cache misses dominate).
  double cycles_per_bus_access = 6.0;
  double word_bytes = 4.0;

  /// Protocol-path bus accesses per word, CPU-charged (see header comment).
  double tcp_accesses_per_word = 4.0;
  double ncs_accesses_per_word = 2.0;

  /// Fixed per-operation costs, in cycles.
  double syscall_cycles = 1500;       // SunOS syscall + socket layer entry
  double trap_cycles = 150;           // NCS read/write trap (paper: cheaper)
  double tcp_per_segment_cycles = 5000;  // TCP/IP header processing, checksums
  double ncs_per_chunk_cycles = 400;     // NCS buffer bookkeeping per I/O chunk

  /// p4 library costs on top of the socket path: internal buffering plus
  /// XDR data conversion per byte, and per-message bookkeeping. Era
  /// measurements put p4/PVM effective throughput near 1 MB/s on
  /// SPARCstation-class hosts — far below the raw socket path — and this
  /// is the term that dominates the paper's communication times.
  double p4_per_byte_cycles = 20;
  double p4_per_message_cycles = 10000;

  /// Copy cost in cycles for `bytes` at `accesses_per_word`.
  double copy_cycles(std::size_t bytes, double accesses_per_word) const {
    return static_cast<double>(bytes) / word_bytes * accesses_per_word *
           cycles_per_bus_access;
  }

  /// Send/receive CPU cost of one message through the socket/TCP path,
  /// excluding the application's own buffer write.
  double tcp_side_cycles(std::size_t bytes, std::size_t mss) const {
    const auto segments = static_cast<double>(bytes / mss + (bytes % mss != 0 ? 1 : 0));
    return syscall_cycles + copy_cycles(bytes, tcp_accesses_per_word) +
           tcp_per_segment_cycles * (segments == 0 ? 1 : segments);
  }

  /// Send/receive CPU cost of one chunk through the NCS/ATM-API path.
  double ncs_chunk_cycles(std::size_t bytes) const {
    return trap_cycles + copy_cycles(bytes, ncs_accesses_per_word) + ncs_per_chunk_cycles;
  }
};

/// IPv4 + TCP header bytes carried by every segment.
inline constexpr std::size_t kIpTcpHeaderBytes = 40;
/// RFC 1483 LLC/SNAP encapsulation for IP over AAL5.
inline constexpr std::size_t kLlcSnapBytes = 8;

}  // namespace ncs::proto
