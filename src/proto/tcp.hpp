// Reliable in-order byte streams — the transport under p4 and the NSM tier.
//
// A deliberately 1995-shaped TCP: fixed-size sliding window (SunOS-era
// default socket buffers), MSS segmentation with 40 bytes of IP+TCP header
// per segment, cumulative ACKs, go-back-N retransmission on timeout with
// exponential backoff. No slow start or congestion avoidance: the paper's
// testbeds are short LANs/one WAN hop where static windowing is the
// first-order behaviour, and the paper treats TCP purely as overhead.
// Loss (from lossy links) is genuinely recovered — the WAN ablations
// exercise retransmission.
//
// TcpMesh manages one unidirectional connection per ordered host pair,
// created lazily; this mirrors p4's pre-established socket mesh.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/costs.hpp"
#include "proto/segment_network.hpp"
#include "sim/engine.hpp"

namespace ncs::proto {

struct TcpParams {
  /// Maximum segment payload; clamped to the network MTU minus headers.
  std::size_t mss = 1460;
  /// Fixed window, in segments (window_segments * mss ~ the socket buffer).
  int window_segments = 8;
  /// Initial retransmission timeout; doubles per retry, capped at 8x.
  Duration rto = Duration::milliseconds(800);
  /// Nagle's algorithm: a sub-MSS segment is held while unacked data is
  /// outstanding. With `delayed_ack` this reproduces the notorious
  /// ~200 ms stall on every small-message exchange — the dominant cost of
  /// 1995 request/response traffic over BSD-derived stacks, and a large
  /// part of why the paper's p4 communication is so expensive.
  bool nagle = true;
  /// BSD delayed acknowledgement: an ack is held until a second segment
  /// arrives or this timer fires.
  Duration delayed_ack = Duration::milliseconds(200);
  bool delayed_ack_enabled = true;
};

class TcpConnection {
 public:
  using DeliverFn = std::function<void(BytesView)>;

  TcpConnection(sim::Engine& engine, SegmentNetwork& net, int src, int dst,
                std::uint16_t conn_id, TcpParams params);
  ~TcpConnection();

  /// Appends `data` to the stream. Returns immediately (unbounded send
  /// buffer, as p4 behaves with its non-blocking socket writes); wire
  /// pacing is governed by the window.
  void send(Bytes data);

  /// In-order delivery at the receiver (invoked in engine context).
  void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }

  /// True when every sent byte has been acknowledged.
  bool idle() const { return snd_una_ == snd_buffered_; }

  std::size_t effective_mss() const { return mss_; }

  struct Stats {
    std::uint64_t data_segments = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_delayed = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t nagle_holds = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t out_of_order_drops = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Retransmit / nagle-hold / delayed-ack instants are emitted onto
  /// `track` of `trace` (nullptr disables).
  void set_trace(obs::TraceLog* trace, int track) {
    trace_ = trace;
    trace_track_ = track;
  }

  // --- internal entry points used by TcpMesh demux ---
  void on_data_segment(std::uint64_t seq, BytesView payload);
  void on_ack(std::uint64_t ack);

 private:
  void pump();
  void arm_rto();
  void cancel_rto();
  void on_rto();
  void send_ack();
  void transmit_range(std::uint64_t from, std::uint64_t to);

  sim::Engine& engine_;
  SegmentNetwork& net_;
  const int src_;
  const int dst_;
  const std::uint16_t conn_id_;
  TcpParams params_;
  std::size_t mss_;

  // Sender state (byte sequence space, 64-bit: no wraparound handling).
  Bytes send_buffer_;            // bytes [snd_una_, snd_buffered_)
  std::uint64_t buffer_base_ = 0;  // stream offset of send_buffer_[0]
  std::uint64_t snd_una_ = 0;      // oldest unacked
  std::uint64_t snd_nxt_ = 0;      // next to transmit
  std::uint64_t snd_max_ = 0;      // highest byte ever transmitted
  std::uint64_t snd_buffered_ = 0; // end of buffered data
  sim::EventId rto_event_ = 0;
  int backoff_ = 0;

  // Receiver state.
  std::uint64_t rcv_nxt_ = 0;
  sim::EventId delayed_ack_event_ = 0;
  DeliverFn on_deliver_;

  obs::TraceLog* trace_ = nullptr;
  int trace_track_ = -1;
  Stats stats_;
};

/// All-pairs stream fabric over one SegmentNetwork.
class TcpMesh {
 public:
  TcpMesh(sim::Engine& engine, SegmentNetwork& net, TcpParams params = {});

  /// Stream bytes from src to dst (in-order, reliable).
  void send(int src, int dst, Bytes data);

  /// Per-destination in-order delivery callback: (src, payload view).
  void set_on_deliver(int host, std::function<void(int, BytesView)> fn);

  /// Effective MSS (after MTU clamping) — what cost models should use.
  std::size_t effective_mss() const;

  bool idle() const;

  TcpConnection::Stats total_stats() const;

  /// Registers mesh-aggregate counters under `prefix` (e.g. "tcp"): sums
  /// over every connection, sampled at snapshot time.
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

  /// One shared "<prefix>" track carries per-connection protocol instants
  /// (retransmits, nagle holds, delayed acks). Applies to existing and
  /// lazily created connections alike.
  void set_trace(obs::TraceLog* trace, const std::string& prefix);

 private:
  TcpConnection& connection(int src, int dst);

  sim::Engine& engine_;
  SegmentNetwork& net_;
  TcpParams params_;
  std::map<std::pair<int, int>, std::unique_ptr<TcpConnection>> connections_;
  std::vector<std::function<void(int, BytesView)>> deliver_;
  obs::TraceLog* trace_ = nullptr;
  int trace_track_ = -1;
};

}  // namespace ncs::proto
