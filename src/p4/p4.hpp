// p4-compatible message passing substrate (Butler & Lusk, Argonne).
//
// The paper's baseline and the foundation of NCS_MPS "approach 1". The
// primitives the paper's pseudocode uses are implemented with p4 semantics:
//
//   p4_send(type, dst, data)              -> Process::send
//   p4_recv(&type, &from, &data, &size)   -> Process::recv (in/out wildcards)
//   p4_messages_available(&type, &from)   -> Process::messages_available
//   p4_broadcast / p4_global_barrier      -> broadcast / global_barrier
//
// Transport: one TCP stream per ordered process pair over the cluster's
// network (shared Ethernet or IP-over-ATM) — exactly the socket mesh real
// p4 establishes at p4_create_procgroup time.
//
// Blocking semantics matter: recv blocks the *calling green thread*. For a
// plain p4 application (one thread per process) that blocks the whole
// process, which is precisely the behaviour NCS's multithreading removes —
// an NCS receive system thread calling the same recv blocks only itself.
//
// CPU cost accounting (proto::CostModel): send charges syscall + socket
// copy + per-segment TCP processing before the data enters the stream;
// recv charges the same on consumption. The paper's Fig 3(a) five
// bus-accesses-per-word path.
#pragma once

#include <list>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "core/mts/scheduler.hpp"
#include "proto/costs.hpp"
#include "proto/tcp.hpp"

namespace ncs::p4 {

inline constexpr int kAnyType = -1;
inline constexpr int kAnyProc = -1;

/// Message types at or above this value are reserved for p4 internals
/// (barrier protocol); user sends must stay below.
inline constexpr int kInternalTypeBase = 1 << 30;

class Runtime;

class Process {
 public:
  int my_id() const { return rank_; }
  int num_procs() const;
  mts::Scheduler& host() { return host_; }

  /// Blocking typed send (blocks the calling green thread for the CPU cost
  /// of the socket path; wire transfer proceeds asynchronously).
  void send(int type, int dst, BytesView data);

  /// Blocking typed receive. On entry *type/*from may be kAnyType/kAnyProc
  /// wildcards; on return they hold the matched message's type and sender.
  Bytes recv(int* type, int* from);

  /// Non-blocking probe with the same wildcard semantics; fills *type and
  /// *from on a hit.
  bool messages_available(int* type, int* from);

  /// Sends to every other process.
  void broadcast(int type, BytesView data);

  /// All processes must call; returns when all have arrived.
  void global_barrier();

  struct Stats {
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class Runtime;

  struct Entry {
    int type;
    int from;
    Bytes data;
  };

  struct Waiter {
    int type;
    int from;
    mts::Thread* thread;
    bool filled = false;
    Entry entry;
  };

  Process(Runtime& rt, mts::Scheduler& host, int rank)
      : rt_(rt), host_(host), rank_(rank) {}

  static bool matches(const Waiter& w, const Entry& e) {
    return (w.type == kAnyType || w.type == e.type) &&
           (w.from == kAnyProc || w.from == e.from);
  }

  void on_stream_bytes(int src, BytesView data);
  void dispatch(Entry entry);
  Entry recv_internal(int type);          // barrier machinery: exact-type wait
  void send_internal(int type, int dst);  // barrier machinery: empty payload

  Runtime& rt_;
  mts::Scheduler& host_;
  int rank_;

  std::list<Entry> inbox_;           // user messages
  std::list<Entry> internal_inbox_;  // barrier protocol messages
  std::list<Waiter*> waiters_;
  std::list<Waiter*> internal_waiters_;
  std::vector<Bytes> partial_;  // per-source stream reassembly buffers

  Stats stats_;
};

class Runtime {
 public:
  /// hosts[r] is the scheduler (workstation) running process rank r.
  Runtime(sim::Engine& engine, std::vector<mts::Scheduler*> hosts,
          proto::SegmentNetwork& net, proto::TcpParams tcp = {},
          proto::CostModel costs = {});

  int n_procs() const { return static_cast<int>(procs_.size()); }
  Process& process(int rank) { return *procs_[static_cast<std::size_t>(rank)]; }

  proto::TcpMesh& mesh() { return mesh_; }
  const proto::CostModel& costs() const { return costs_; }

 private:
  friend class Process;

  sim::Engine& engine_;
  proto::CostModel costs_;
  proto::TcpMesh mesh_;
  std::vector<std::unique_ptr<Process>> procs_;
};

}  // namespace ncs::p4
