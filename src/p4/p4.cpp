#include "p4/p4.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ncs::p4 {

namespace {

/// Stream frame: u32 payload length, i32 type, then payload bytes.
constexpr std::size_t kFrameHeader = 8;

Bytes make_frame(int type, BytesView data) {
  Bytes out(kFrameHeader + data.size());
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(data.size()));
  w.u32(static_cast<std::uint32_t>(type));
  w.bytes(data);
  return out;
}

/// Barrier protocol types.
constexpr int kBarrierArrive = kInternalTypeBase + 1;
constexpr int kBarrierRelease = kInternalTypeBase + 2;

}  // namespace

Runtime::Runtime(sim::Engine& engine, std::vector<mts::Scheduler*> hosts,
                 proto::SegmentNetwork& net, proto::TcpParams tcp, proto::CostModel costs)
    : engine_(engine), costs_(costs), mesh_(engine, net, tcp) {
  NCS_ASSERT(!hosts.empty());
  NCS_ASSERT(static_cast<int>(hosts.size()) <= net.n_hosts());
  for (int r = 0; r < static_cast<int>(hosts.size()); ++r) {
    procs_.emplace_back(new Process(*this, *hosts[static_cast<std::size_t>(r)], r));
    procs_.back()->partial_.resize(hosts.size());
    mesh_.set_on_deliver(r, [this, r](int src, BytesView data) {
      procs_[static_cast<std::size_t>(r)]->on_stream_bytes(src, data);
    });
  }
}

int Process::num_procs() const { return rt_.n_procs(); }

void Process::send(int type, int dst, BytesView data) {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &host_, "p4 send from a foreign thread");
  NCS_ASSERT(dst >= 0 && dst < num_procs());
  Bytes frame = make_frame(type, data);
  // p4 library cost (buffering + XDR) plus the socket path: syscall,
  // socket-buffer copy, per-segment TCP/IP processing — all charged to the
  // calling thread before the stream moves.
  host_.charge_cycles(rt_.costs_.p4_per_message_cycles +
                          rt_.costs_.p4_per_byte_cycles * static_cast<double>(frame.size()) +
                          rt_.costs_.tcp_side_cycles(frame.size(), rt_.mesh_.effective_mss()),
                      sim::Activity::communicate);
  ++stats_.sends;
  stats_.bytes_sent += data.size();
  rt_.mesh_.send(rank_, dst, std::move(frame));
}

void Process::on_stream_bytes(int src, BytesView data) {
  Bytes& buf = partial_[static_cast<std::size_t>(src)];
  append(buf, data);
  // Extract every complete frame.
  std::size_t off = 0;
  while (buf.size() - off >= kFrameHeader) {
    ByteReader r(BytesView(buf).subspan(off));
    const std::uint32_t len = r.u32();
    const int type = static_cast<int>(r.u32());
    if (buf.size() - off - kFrameHeader < len) break;
    Entry e{type, src, to_bytes(r.bytes(len))};
    off += kFrameHeader + len;
    dispatch(std::move(e));
  }
  if (off > 0) buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
}

void Process::dispatch(Entry entry) {
  auto& waiters = entry.type >= kInternalTypeBase ? internal_waiters_ : waiters_;
  for (auto it = waiters.begin(); it != waiters.end(); ++it) {
    Waiter* w = *it;
    if (matches(*w, entry)) {
      waiters.erase(it);
      w->entry = std::move(entry);
      w->filled = true;
      host_.unblock(w->thread);
      return;
    }
  }
  auto& inbox = entry.type >= kInternalTypeBase ? internal_inbox_ : inbox_;
  inbox.push_back(std::move(entry));
}

Bytes Process::recv(int* type, int* from) {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &host_, "p4 recv from a foreign thread");
  NCS_ASSERT(type != nullptr && from != nullptr);
  NCS_ASSERT_MSG(*type < kInternalTypeBase, "reserved p4 message type");

  Entry entry;
  bool have = false;
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    Waiter probe{*type, *from, nullptr};
    if (matches(probe, *it)) {
      entry = std::move(*it);
      inbox_.erase(it);
      have = true;
      break;
    }
  }
  if (!have) {
    Waiter w{*type, *from, host_.current()};
    waiters_.push_back(&w);
    // Blocking here is what the whole paper is about: in single-threaded
    // p4 the process idles; under NCS only this green thread does.
    while (!w.filled) host_.block(sim::Activity::communicate);
    entry = std::move(w.entry);
  }

  // Consumption cost: kernel->user copy, protocol processing and the p4
  // library's receive-side buffering/XDR.
  const std::size_t frame_size = entry.data.size() + kFrameHeader;
  host_.charge_cycles(rt_.costs_.p4_per_message_cycles +
                          rt_.costs_.p4_per_byte_cycles * static_cast<double>(frame_size) +
                          rt_.costs_.tcp_side_cycles(frame_size, rt_.mesh_.effective_mss()),
                      sim::Activity::communicate);
  ++stats_.recvs;
  stats_.bytes_received += entry.data.size();
  *type = entry.type;
  *from = entry.from;
  return std::move(entry.data);
}

void Process::send_internal(int type, int dst) {
  Bytes frame = make_frame(type, {});
  host_.charge_cycles(rt_.costs_.tcp_side_cycles(frame.size(), rt_.mesh_.effective_mss()),
                      sim::Activity::communicate);
  rt_.mesh_.send(rank_, dst, std::move(frame));
}

Process::Entry Process::recv_internal(int type) {
  Entry entry;
  for (auto it = internal_inbox_.begin(); it != internal_inbox_.end(); ++it) {
    if (it->type == type) {
      entry = std::move(*it);
      internal_inbox_.erase(it);
      return entry;
    }
  }
  Waiter w{type, kAnyProc, host_.current()};
  internal_waiters_.push_back(&w);
  while (!w.filled) host_.block(sim::Activity::communicate);
  return std::move(w.entry);
}

bool Process::messages_available(int* type, int* from) {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &host_, "p4 probe from a foreign thread");
  // A probe is a (cheap) system call.
  host_.charge_cycles(rt_.costs_.syscall_cycles, sim::Activity::communicate);
  for (const Entry& e : inbox_) {
    Waiter probe{*type, *from, nullptr};
    if (matches(probe, e)) {
      *type = e.type;
      *from = e.from;
      return true;
    }
  }
  return false;
}

void Process::broadcast(int type, BytesView data) {
  for (int dst = 0; dst < num_procs(); ++dst)
    if (dst != rank_) send(type, dst, data);
}

void Process::global_barrier() {
  // Rank 0 gathers arrivals, then releases everyone — the classic p4
  // master-coordinated barrier.
  if (rank_ == 0) {
    for (int i = 1; i < num_procs(); ++i) (void)recv_internal(kBarrierArrive);
    for (int dst = 1; dst < num_procs(); ++dst) send_internal(kBarrierRelease, dst);
  } else {
    send_internal(kBarrierArrive, 0);
    (void)recv_internal(kBarrierRelease);
  }
}

}  // namespace ncs::p4
