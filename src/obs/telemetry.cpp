#include "obs/telemetry.hpp"

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace ncs::obs {

TelemetrySampler::TelemetrySampler(sim::Engine& engine, TelemetryConfig cfg)
    : engine_(engine), cfg_(cfg) {
  NCS_ASSERT(cfg_.period.ps() > 0);
}

WindowedSketch& TelemetrySampler::sketch(const std::string& name) {
  for (SketchEntry& e : sketches_)
    if (e.name == name) return *e.sketch;
  sketches_.push_back(
      {name, std::make_unique<WindowedSketch>(cfg_.window, cfg_.subwindows), {}});
  return *sketches_.back().sketch;
}

const WindowedSketch* TelemetrySampler::find_sketch(const std::string& name) const {
  for (const SketchEntry& e : sketches_)
    if (e.name == name) return e.sketch.get();
  return nullptr;
}

void TelemetrySampler::probe(std::string name, std::function<double()> fn) {
  NCS_ASSERT(fn != nullptr);
  probes_.push_back({std::move(name), std::move(fn), {}});
}

const std::vector<TelemetrySampler::SketchPoint>* TelemetrySampler::sketch_series(
    const std::string& name) const {
  for (const SketchEntry& e : sketches_)
    if (e.name == name) return &e.series;
  return nullptr;
}

const std::vector<TelemetrySampler::GaugePoint>* TelemetrySampler::gauge_series(
    const std::string& name) const {
  for (const ProbeEntry& e : probes_)
    if (e.name == name) return &e.series;
  return nullptr;
}

void TelemetrySampler::arm(TimePoint first, std::function<bool()> keep_going) {
  NCS_ASSERT(keep_going != nullptr);
  keep_going_ = std::move(keep_going);
  engine_.schedule_at(first, [this] { tick(); });
}

void TelemetrySampler::tick() {
  const TimePoint now = engine_.now();
  ++ticks_;
  constexpr double kPsToUs = 1e-6;

  for (SketchEntry& e : sketches_) {
    e.sketch->advance_to(now);
    const Histogram window = e.sketch->window_hist();
    const SketchPoint p{now.ps(), window.count(), window.quantile(0.50),
                        window.quantile(0.99), window.quantile(0.999)};
    e.series.push_back(p);
    if (trace_ != nullptr) {
      trace_->counter(e.name + "/p99_us", now,
                      static_cast<double>(p.p99_ps) * kPsToUs);
      trace_->counter(e.name + "/p999_us", now,
                      static_cast<double>(p.p999_ps) * kPsToUs);
      trace_->counter(e.name + "/window_count", now, static_cast<double>(p.count));
    }
  }

  for (ProbeEntry& e : probes_) {
    const double v = e.fn();
    e.series.push_back({now.ps(), v});
    if (trace_ != nullptr) trace_->counter(e.name, now, v);
  }

  slo_.evaluate(now);
  if (trace_ != nullptr) {
    for (const SloEngine::State& s : slo_.states())
      trace_->counter("slo/" + s.spec.name + "/burn", now, s.last_burn);
  }

  if (keep_going_()) engine_.schedule_after(cfg_.period, [this] { tick(); });
}

void TelemetrySampler::write_json(JsonWriter& w) const {
  w.field("period_us", static_cast<double>(cfg_.period.ps()) * 1e-6);
  w.field("window_us", static_cast<double>(cfg_.window.ps()) * 1e-6);
  w.field("subwindows", cfg_.subwindows);
  w.field("ticks", ticks_);

  constexpr double kPsToUs = 1e-6;
  w.key("timeseries").begin_object();
  w.key("sketches").begin_object();
  for (const SketchEntry& e : sketches_) {
    w.key(e.name).begin_object();
    // Run-total tail latency next to the series so summaries don't replay it.
    w.key("total").begin_object();
    e.sketch->total().write_json(w);
    w.end_object();
    w.key("points").begin_array();
    for (const SketchPoint& p : e.series) {
      w.begin_object();
      w.field("t_ms", static_cast<double>(p.t_ps) * 1e-9);
      w.field("count", p.count);
      w.field("p50_us", static_cast<double>(p.p50_ps) * kPsToUs);
      w.field("p99_us", static_cast<double>(p.p99_ps) * kPsToUs);
      w.field("p999_us", static_cast<double>(p.p999_ps) * kPsToUs);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const ProbeEntry& e : probes_) {
    w.key(e.name).begin_array();
    for (const GaugePoint& p : e.series) {
      w.begin_object();
      w.field("t_ms", static_cast<double>(p.t_ps) * 1e-9);
      w.field("value", p.value);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  w.end_object();

  slo_.write_json(w);
}

}  // namespace ncs::obs
