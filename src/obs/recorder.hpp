// Fault-triggered flight recorder.
//
// Post-mortem observability for faulty runs: each host (plus one fabric
// ring, host -1, fed by the fault injector) keeps a bounded ring of
// recent moments — profiler end-to-end stamps, fault transitions, typed
// NcsException upcalls, error-control give-ups, SLO hard breaches. In
// steady state the rings just overwrite their oldest slot; nothing is
// written anywhere.
//
// When a failure fires — an exception upcall, an EC give-up, an SLO hard
// breach — the owning module calls trigger(). The *first* trigger of an
// armed recorder dumps every ring, merged and time-sorted, as an
// `ncs-flight-recorder-v1` JSON file plus a trace instant, capturing the
// run's last moments around the failure (the injected fault instant that
// caused it included, because the fabric ring is never evicted by
// per-message stamp traffic). Later triggers are counted but don't dump
// again: the interesting state is what surrounded the *first* failure,
// and a blackout that times out thousands of messages must not write
// thousands of files.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/trace.hpp"

namespace ncs::obs {

class JsonWriter;

class FlightRecorder {
 public:
  enum class EntryKind : std::uint8_t {
    stamp,       // profiler lifecycle moment (e2e fold, rma completion)
    fault,       // injector transition ("sonet down")
    exception,   // typed NcsException upcall
    give_up,     // error control abandoned a message
    slo_breach,  // SLO hard breach
    note,        // anything else
  };

  struct Entry {
    std::int64_t t_ps = 0;
    int host = -1;  // rank, or -1 for the fabric/cluster ring
    EntryKind kind = EntryKind::note;
    std::string what;        // short label ("e2e", "sonet down", "recv_timeout")
    int peer = -1;           // counterpart rank where meaningful
    std::int64_t value = 0;  // latency ps, seq, burn*1000 — kind-dependent
  };

  /// `ring_capacity` slots per host ring.
  explicit FlightRecorder(std::size_t ring_capacity = 256);

  /// Arms auto-dump: the first trigger() writes the snapshot to `path`.
  void arm(std::string path) { dump_path_ = std::move(path); }

  /// Dump annotations land on a "flight-recorder" instant track.
  void set_trace(TraceLog* trace);

  /// Appends to `host`'s ring (oldest entry overwritten when full).
  void note(int host, EntryKind kind, TimePoint t, std::string what, int peer = -1,
            std::int64_t value = 0);

  /// Records the failure into the ring, then dumps once if armed.
  void trigger(int host, EntryKind kind, TimePoint t, const std::string& reason,
               int peer = -1, std::int64_t value = 0);

  std::uint64_t entries_recorded() const { return recorded_; }
  std::uint64_t triggers() const { return triggers_; }
  std::uint64_t dumps() const { return dumps_; }

  /// All live entries, merged across rings and sorted by (time, host).
  std::vector<Entry> snapshot() const;

  /// The ncs-flight-recorder-v1 document (trigger metadata + snapshot).
  std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Ring {
    std::vector<Entry> slots;  // capacity-bounded, circular
    std::size_t next = 0;
    std::uint64_t total = 0;
  };

  Ring& ring(int host);

  std::size_t capacity_;
  std::map<int, Ring> rings_;
  std::string dump_path_;
  TraceLog* trace_ = nullptr;
  int trace_track_ = -1;
  std::uint64_t recorded_ = 0;
  std::uint64_t triggers_ = 0;
  std::uint64_t dumps_ = 0;
  Entry first_trigger_;
  bool have_trigger_ = false;
};

const char* to_string(FlightRecorder::EntryKind k);

}  // namespace ncs::obs
