#include "obs/sketch.hpp"

#include "common/assert.hpp"

namespace ncs::obs {

WindowedSketch::WindowedSketch(Duration window, int subwindows)
    : sub_(static_cast<std::size_t>(subwindows)),
      sub_ps_(window.ps() / (subwindows > 0 ? subwindows : 1)) {
  NCS_ASSERT_MSG(subwindows >= 1, "sketch needs at least one sub-window");
  NCS_ASSERT_MSG(sub_ps_ > 0, "sketch window too small for its sub-window count");
  NCS_ASSERT_MSG(window.ps() % subwindows == 0,
                 "sketch window must divide evenly into sub-windows");
}

void WindowedSketch::advance_to(TimePoint t) {
  // Align boundaries to absolute time so the rotation schedule is a pure
  // function of timestamps, not of when the first sample happened to land.
  const std::int64_t slot_start = (t.ps() / sub_ps_) * sub_ps_;
  if (!started_) {
    started_ = true;
    cur_start_ps_ = slot_start;
    return;
  }
  if (slot_start <= cur_start_ps_) return;
  const std::int64_t gap = (slot_start - cur_start_ps_) / sub_ps_;
  const auto n = static_cast<std::int64_t>(sub_.size());
  if (gap >= n) {
    // Idle longer than the whole window: every slot expired.
    for (Histogram& h : sub_) h.clear();
    cur_ = 0;
  } else {
    for (std::int64_t i = 0; i < gap; ++i) {
      cur_ = (cur_ + 1) % static_cast<int>(n);
      sub_[static_cast<std::size_t>(cur_)].clear();
    }
  }
  rotations_ += static_cast<std::uint64_t>(gap);
  cur_start_ps_ = slot_start;
}

void WindowedSketch::record(TimePoint t, std::int64_t v) {
  advance_to(t);
  sub_[static_cast<std::size_t>(cur_)].record(v);
  total_.record(v);
}

Histogram WindowedSketch::window_hist() const {
  Histogram merged;
  for (const Histogram& h : sub_) merged.merge(h);
  return merged;
}

}  // namespace ncs::obs
