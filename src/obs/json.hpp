// Minimal streaming JSON writer.
//
// The observability layer emits three kinds of machine-readable output —
// metric snapshots, Chrome-trace event streams, and per-run bench reports —
// and all three need exactly this: correct string escaping, stable number
// formatting (round-trippable doubles, exact integers) and automatic comma
// placement. No parsing, no DOM; writers append to one growing string.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ncs::obs {

/// Escapes `s` per RFC 8259 (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The finished document. Asserts all containers were closed.
  std::string str() &&;
  const std::string& str() const& { return out_; }

 private:
  void comma();

  std::string out_;
  /// One entry per open container: true once the first element was written.
  std::vector<bool> nonempty_;
  bool after_key_ = false;
};

}  // namespace ncs::obs
