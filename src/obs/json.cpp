#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace ncs::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!nonempty_.empty()) {
    if (nonempty_.back()) out_ += ',';
    nonempty_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  nonempty_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  NCS_ASSERT(!nonempty_.empty() && !after_key_);
  nonempty_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  nonempty_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  NCS_ASSERT(!nonempty_.empty() && !after_key_);
  nonempty_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  NCS_ASSERT_MSG(!after_key_, "two keys in a row");
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Use the shortest representation that round-trips.
  double parsed = 0;
  char probe[32];
  std::snprintf(probe, sizeof probe, "%.12g", v);
  std::sscanf(probe, "%lf", &parsed);
  out_ += parsed == v ? probe : buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() && {
  NCS_ASSERT_MSG(nonempty_.empty() && !after_key_, "unclosed JSON container");
  return std::move(out_);
}

}  // namespace ncs::obs
