#include "obs/trace.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace ncs::obs {

namespace {
/// Picoseconds -> the trace format's microsecond unit, kept fractional so
/// sub-microsecond events (cell times, DMA setup) stay distinguishable.
double to_us(std::int64_t ps) { return static_cast<double>(ps) * 1e-6; }
}  // namespace

int TraceLog::track(const std::string& name) {
  for (int i = 0; i < track_count(); ++i)
    if (tracks_[static_cast<std::size_t>(i)] == name) return i;
  tracks_.push_back(name);
  return track_count() - 1;
}

void TraceLog::complete(int track, std::string name, const char* category, TimePoint begin,
                        Duration dur) {
  NCS_ASSERT(track >= 0 && track < track_count());
  events_.push_back(
      {'X', track, std::move(name), category, begin.ps(), ncs::max(dur, Duration::zero()).ps(), 0.0});
}

void TraceLog::instant(int track, std::string name, const char* category, TimePoint t) {
  NCS_ASSERT(track >= 0 && track < track_count());
  events_.push_back({'i', track, std::move(name), category, t.ps(), 0, 0.0});
}

void TraceLog::counter(std::string name, TimePoint t, double value) {
  events_.push_back({'C', -1, std::move(name), "counter", t.ps(), 0, value});
}

void TraceLog::flow_start(int track, std::string name, const char* category, TimePoint t,
                          std::uint64_t id) {
  NCS_ASSERT(track >= 0 && track < track_count());
  events_.push_back({'s', track, std::move(name), category, t.ps(), 0, 0.0, id});
}

void TraceLog::flow_end(int track, std::string name, const char* category, TimePoint t,
                        std::uint64_t id) {
  NCS_ASSERT(track >= 0 && track < track_count());
  events_.push_back({'f', track, std::move(name), category, t.ps(), 0, 0.0, id});
}

void TraceLog::import_timeline(const sim::Timeline& tl) {
  for (int k = 0; k < tl.track_count(); ++k) {
    const int tr = track(tl.track_name(k));
    for (const auto& iv : tl.intervals(k))
      complete(tr, sim::activity_name(iv.activity), "activity", iv.begin, iv.end - iv.begin);
  }
}

std::string TraceLog::chrome_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Process/thread naming metadata so Perfetto labels the tracks.
  w.begin_object()
      .field("ph", "M")
      .field("pid", 1)
      .field("tid", 0)
      .field("name", "process_name")
      .key("args")
      .begin_object()
      .field("name", "ncs simulation")
      .end_object()
      .end_object();
  for (int t = 0; t < track_count(); ++t) {
    w.begin_object()
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", t + 1)
        .field("name", "thread_name")
        .key("args")
        .begin_object()
        .field("name", track_name(t))
        .end_object()
        .end_object();
    // sort_index keeps tracks in registration order (hosts, then modules).
    w.begin_object()
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", t + 1)
        .field("name", "thread_sort_index")
        .key("args")
        .begin_object()
        .field("sort_index", t)
        .end_object()
        .end_object();
  }

  for (const Event& e : events_) {
    w.begin_object();
    w.field("ph", std::string_view(&e.phase, 1));
    w.field("pid", 1);
    w.field("tid", e.track + 1);
    w.field("name", e.name);
    w.field("cat", e.category);
    w.field("ts", to_us(e.ts_ps));
    if (e.phase == 'X') w.field("dur", to_us(e.dur_ps));
    if (e.phase == 'i') w.field("s", "t");
    if (e.phase == 's' || e.phase == 'f') {
      // As a hex string: ids pack (from, to, seq) into 64 bits, which JSON
      // consumers parsing numbers as doubles would silently round.
      char id[19];
      std::snprintf(id, sizeof id, "0x%llx", static_cast<unsigned long long>(e.id));
      w.field("id", id);
      if (e.phase == 'f') w.field("bp", "e");  // bind to the enclosing slice
    }
    if (e.phase == 'C') {
      w.key("args").begin_object().field("value", e.value).end_object();
    }
    w.end_object();
  }

  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  return std::move(w).str();
}

bool TraceLog::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ncs::obs
