#include "obs/recorder.hpp"

#include <algorithm>
#include <fstream>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/json.hpp"

namespace ncs::obs {

const char* to_string(FlightRecorder::EntryKind k) {
  switch (k) {
    case FlightRecorder::EntryKind::stamp: return "stamp";
    case FlightRecorder::EntryKind::fault: return "fault";
    case FlightRecorder::EntryKind::exception: return "exception";
    case FlightRecorder::EntryKind::give_up: return "give_up";
    case FlightRecorder::EntryKind::slo_breach: return "slo_breach";
    case FlightRecorder::EntryKind::note: return "note";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t ring_capacity) : capacity_(ring_capacity) {
  NCS_ASSERT(ring_capacity >= 1);
}

void FlightRecorder::set_trace(TraceLog* trace) {
  trace_ = trace;
  if (trace_ != nullptr) trace_track_ = trace_->track("flight-recorder");
}

FlightRecorder::Ring& FlightRecorder::ring(int host) {
  Ring& r = rings_[host];
  if (r.slots.capacity() == 0) r.slots.reserve(capacity_);
  return r;
}

void FlightRecorder::note(int host, EntryKind kind, TimePoint t, std::string what,
                          int peer, std::int64_t value) {
  Ring& r = ring(host);
  Entry e{t.ps(), host, kind, std::move(what), peer, value};
  if (r.slots.size() < capacity_) {
    r.slots.push_back(std::move(e));
  } else {
    r.slots[r.next] = std::move(e);
  }
  r.next = (r.next + 1) % capacity_;
  ++r.total;
  ++recorded_;
}

void FlightRecorder::trigger(int host, EntryKind kind, TimePoint t,
                             const std::string& reason, int peer, std::int64_t value) {
  note(host, kind, t, reason, peer, value);
  ++triggers_;
  if (have_trigger_) return;  // first failure wins; later ones only count
  have_trigger_ = true;
  first_trigger_ = Entry{t.ps(), host, kind, reason, peer, value};
  if (trace_ != nullptr)
    trace_->instant(trace_track_, "dump: " + reason, "recorder", t);
  if (!dump_path_.empty()) {
    if (write(dump_path_)) {
      ++dumps_;
    } else {
      NCS_WARN("obs", "flight recorder cannot write %s", dump_path_.c_str());
    }
  }
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  std::vector<Entry> out;
  for (const auto& [host, r] : rings_) {
    (void)host;
    // Oldest-first within the ring: slots starting at `next` when full.
    const std::size_t n = r.slots.size();
    const std::size_t start = n == capacity_ ? r.next : 0;
    for (std::size_t i = 0; i < n; ++i) out.push_back(r.slots[(start + i) % n]);
  }
  std::stable_sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.t_ps != b.t_ps) return a.t_ps < b.t_ps;
    return a.host < b.host;
  });
  return out;
}

namespace {
void write_entry(JsonWriter& w, const FlightRecorder::Entry& e) {
  w.begin_object();
  w.field("t_ms", static_cast<double>(e.t_ps) * 1e-9);
  w.field("host", e.host);
  w.field("kind", to_string(e.kind));
  w.field("what", std::string_view(e.what));
  if (e.peer >= 0) w.field("peer", e.peer);
  if (e.value != 0) w.field("value", e.value);
  w.end_object();
}
}  // namespace

std::string FlightRecorder::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "ncs-flight-recorder-v1");
  w.field("ring_capacity", static_cast<std::uint64_t>(capacity_));
  w.field("entries_recorded", recorded_);
  w.field("triggers", triggers_);
  if (have_trigger_) {
    w.key("trigger");
    write_entry(w, first_trigger_);
  }
  w.key("entries").begin_array();
  for (const Entry& e : snapshot()) write_entry(w, e);
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

bool FlightRecorder::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f.is_open()) return false;
  f << to_json() << '\n';
  return f.good();
}

}  // namespace ncs::obs
