#include "obs/slo.hpp"

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace ncs::obs {

const char* to_string(SloKind k) {
  switch (k) {
    case SloKind::latency: return "latency";
    case SloKind::delivery: return "delivery";
  }
  return "?";
}

void SloEngine::add_latency(SloSpec spec, const WindowedSketch* sketch) {
  NCS_ASSERT(spec.kind == SloKind::latency);
  NCS_ASSERT(sketch != nullptr);
  NCS_ASSERT_MSG(spec.target >= 0.0 && spec.target < 1.0,
                 "SLO target must be in [0, 1)");
  State s;
  s.spec = std::move(spec);
  s.sketch = sketch;
  states_.push_back(std::move(s));
}

void SloEngine::add_delivery(SloSpec spec, std::function<std::uint64_t()> attempts,
                             std::function<std::uint64_t()> violations) {
  NCS_ASSERT(spec.kind == SloKind::delivery);
  NCS_ASSERT(attempts != nullptr && violations != nullptr);
  NCS_ASSERT_MSG(spec.target >= 0.0 && spec.target < 1.0,
                 "SLO target must be in [0, 1)");
  State s;
  s.spec = std::move(spec);
  s.attempts = std::move(attempts);
  s.violations = std::move(violations);
  states_.push_back(std::move(s));
}

void SloEngine::grade(State& s, double compliance, bool had_samples, TimePoint now) {
  s.last_compliance = compliance;
  const double budget = 1.0 - s.spec.target;
  s.last_burn = budget > 0.0 ? (1.0 - compliance) / budget : 0.0;
  if (!had_samples) return;  // empty windows neither spend nor earn budget
  ++s.windows;
  if (compliance < s.min_compliance) s.min_compliance = compliance;
  if (s.last_burn > s.max_burn) s.max_burn = s.last_burn;
  if (compliance >= s.spec.target) {
    ++s.compliant_windows;
  } else {
    ++s.breaches;
  }
  if (s.last_burn >= s.spec.hard_burn) {
    ++s.hard_breaches;
    if (hard_breach_hook_) hard_breach_hook_(s.spec, s.last_burn, now);
  }
}

void SloEngine::evaluate(TimePoint now) {
  for (State& s : states_) {
    if (s.spec.kind == SloKind::latency) {
      const Histogram window = s.sketch->window_hist();
      const std::uint64_t total = window.count();
      const double compliance =
          total == 0
              ? 1.0
              : static_cast<double>(window.count_le(s.spec.threshold.ps())) /
                    static_cast<double>(total);
      grade(s, compliance, total != 0, now);
    } else {
      const std::uint64_t attempts = s.attempts();
      const std::uint64_t violations = s.violations();
      const std::uint64_t da = attempts - s.prev_attempts;
      const std::uint64_t dv = violations - s.prev_violations;
      s.prev_attempts = attempts;
      s.prev_violations = violations;
      // Violated attempts never complete, so the window's offered load is
      // the completions plus the failures.
      const std::uint64_t offered = da + dv;
      const double compliance =
          offered == 0 ? 1.0 : static_cast<double>(da) / static_cast<double>(offered);
      grade(s, compliance, offered != 0, now);
    }
  }
}

std::uint64_t SloEngine::total_hard_breaches() const {
  std::uint64_t n = 0;
  for (const State& s : states_) n += s.hard_breaches;
  return n;
}

void SloEngine::write_json(JsonWriter& w) const {
  w.key("slo").begin_array();
  for (const State& s : states_) {
    w.begin_object();
    w.field("name", std::string_view(s.spec.name));
    w.field("kind", to_string(s.spec.kind));
    if (s.spec.kind == SloKind::latency) {
      w.field("sketch", std::string_view(s.spec.sketch));
      w.field("threshold_us", static_cast<double>(s.spec.threshold.ps()) * 1e-6);
    }
    w.field("target", s.spec.target);
    w.field("hard_burn", s.spec.hard_burn);
    w.field("windows", s.windows);
    w.field("compliant_windows", s.compliant_windows);
    w.field("breaches", s.breaches);
    w.field("hard_breaches", s.hard_breaches);
    w.field("compliance",
            s.windows == 0 ? 1.0
                           : static_cast<double>(s.compliant_windows) /
                                 static_cast<double>(s.windows));
    w.field("min_compliance", s.min_compliance);
    w.field("last_compliance", s.last_compliance);
    w.field("last_burn", s.last_burn);
    w.field("max_burn", s.max_burn);
    w.end_object();
  }
  w.end_array();
}

}  // namespace ncs::obs
