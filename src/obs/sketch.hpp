// Sliding-window quantile sketch over sim time.
//
// A WindowedSketch is a ring of `subwindows` Histograms covering
// consecutive, aligned sub-windows of simulated time. record(t, v) drops
// the sample into the sub-window containing t (rotating the ring forward
// and clearing expired slots first), so at any instant the merge of the
// live slots is the exact histogram of the last `window` of samples —
// quantiles over a sliding window at sub-window granularity, from fixed
// memory. Rotation is a memset of a flat 8 KB array; record is a bucket
// increment: the steady-state path performs no allocation.
//
// Determinism: the rotation schedule depends only on sample timestamps
// (sub-window boundaries are aligned to t = 0, not to the first sample),
// and samples arrive in the engine's (time, seq) order, so two runs that
// are event-for-event identical produce bit-identical window series —
// including across the calendar / legacy_map queue backends
// (tests/obs/test_telemetry.cpp asserts this).
//
// A cumulative histogram accumulates every sample since construction
// alongside the ring, so end-of-run summaries (bench rows, SLO totals)
// don't need to replay the series.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "obs/hist.hpp"

namespace ncs::obs {

class WindowedSketch {
 public:
  /// `window` must divide into `subwindows` equal non-zero slices.
  WindowedSketch(Duration window, int subwindows);

  Duration window() const { return Duration::picoseconds(sub_ps_ * n_sub()); }
  Duration subwindow() const { return Duration::picoseconds(sub_ps_); }
  int n_sub() const { return static_cast<int>(sub_.size()); }

  /// Records `v` into the sub-window containing `t`. Timestamps must be
  /// non-decreasing (engine order); an older `t` lands in the current slot.
  void record(TimePoint t, std::int64_t v);
  void record(TimePoint t, Duration d) { record(t, d.ps()); }

  /// Rotates the ring so the window ends at the sub-window containing `t`
  /// (expired slots cleared). The sampler calls this every tick so windows
  /// age out even when no samples arrive.
  void advance_to(TimePoint t);

  /// Merge of the live sub-windows: the histogram of (up to) the last
  /// `window` of samples. O(buckets * subwindows); by value, the caller
  /// queries quantiles on the snapshot.
  Histogram window_hist() const;

  /// Every sample since construction.
  const Histogram& total() const { return total_; }

  /// Sub-window boundary crossings so far (0 until the first record).
  std::uint64_t rotations() const { return rotations_; }

 private:
  std::vector<Histogram> sub_;
  Histogram total_;
  std::int64_t sub_ps_;
  std::int64_t cur_start_ps_ = 0;  // start of the current (newest) sub-window
  int cur_ = 0;
  bool started_ = false;
  std::uint64_t rotations_ = 0;
};

}  // namespace ncs::obs
