// Chrome-trace / Perfetto span log.
//
// One TraceLog collects timestamped events from every instrumented layer of
// a run — scheduler dispatch/charge/block, MPS send/recv and flow-control
// stalls, NIC DMA/SAR, switch forwarding, TCP segmentation and retransmit
// timers — and serializes them in the Chrome Trace Event format (JSON), so
// a whole simulated cluster run opens in chrome://tracing or
// https://ui.perfetto.dev as a zoomable timeline.
//
// Tracks map to Chrome's (pid, tid) pairs: every named track becomes a tid
// under one synthetic process, labeled via thread_name metadata. track()
// deduplicates by name, so a module and the sim::Timeline import can share
// a track. Simulated picoseconds are exported as fractional microseconds
// (the format's unit).
//
// All hooks are pointer-guarded at the call site: a module holds a
// `TraceLog*` that defaults to nullptr, and every emission site checks it —
// tracing disabled costs one predictable branch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sim/timeline.hpp"

namespace ncs::obs {

class TraceLog {
 public:
  /// Returns the track (Chrome tid) with this name, creating it if new.
  int track(const std::string& name);

  int track_count() const { return static_cast<int>(tracks_.size()); }
  const std::string& track_name(int t) const {
    return tracks_[static_cast<std::size_t>(t)];
  }

  /// Complete span ("X" phase): [begin, begin+dur) on `track`.
  void complete(int track, std::string name, const char* category, TimePoint begin,
                Duration dur);

  /// Instant event ("i" phase, thread scope).
  void instant(int track, std::string name, const char* category, TimePoint t);

  /// Counter sample ("C" phase): plots `value` over time under `name`.
  void counter(std::string name, TimePoint t, double value);

  /// Flow events ("s" / "f" phases): Perfetto draws an arrow from the slice
  /// enclosing the start event to the slice enclosing the end event, even
  /// across tracks — this is what stitches a send span on one host to the
  /// matching recv span on another. Events pair by id (see msg_flow_id);
  /// `t` must fall strictly inside the span the arrow should attach to.
  void flow_start(int track, std::string name, const char* category, TimePoint t,
                  std::uint64_t id);
  void flow_end(int track, std::string name, const char* category, TimePoint t,
                std::uint64_t id);

  /// Imports a per-thread activity timeline: one track per timeline track
  /// (same name), one span per interval, named after the activity
  /// (compute / communicate / overhead / idle). Call after
  /// Timeline::finish() so every interval is closed.
  void import_timeline(const sim::Timeline& tl);

  std::size_t event_count() const { return events_.size(); }

  /// The full document: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  std::string chrome_json() const;

  /// Writes chrome_json() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X', 'i', 'C', 's', 'f'
    int track;
    std::string name;
    const char* category;
    std::int64_t ts_ps;
    std::int64_t dur_ps;   // X only
    double value;          // C only
    std::uint64_t id = 0;  // s/f only
  };

  std::vector<std::string> tracks_;
  std::vector<Event> events_;
};

}  // namespace ncs::obs
