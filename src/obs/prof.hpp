// Per-message lifecycle profiler and overlap attribution.
//
// The paper's performance story has two halves: Table 4 attributes
// end-to-end message latency to protocol layers (host send overhead, SAR,
// wire, switch, receive path), and Fig 4 quantifies how much communication
// the multithreaded runtime hides behind computation. This module measures
// both from a live run.
//
// Lifecycle: every data-plane MPS message is keyed by its stable
// (from, to, seq) triple — the same triple the error-control layer uses for
// dedup, so it is unique per payload message. As the message crosses each
// layer the owning module stamps the shared engine clock:
//
//   enqueue  NCS_send pushed the request into the send queue
//   dequeue  the send system thread picked it up
//   admit    flow control released it (window credit / rate pacing done)
//   handoff  the transport accepted the last byte (NIC submit / TCP write)
//   deliver  the receive system thread put it in the destination mailbox
//   wakeup   NCS_recv returned it to the application thread
//
// Consecutive stages fold into per-layer Histograms (send_queue,
// flow_control, transport, network, mailbox) plus end_to_end; auxiliary
// layers (fc_stall, retx_delay, NIC DMA/SAR, wire serialization, cell-mux
// queueing, scheduler dispatch latency) are fed directly by their modules
// via record(). Everything is pointer-guarded at the call sites — a module
// holds a `Profiler*` defaulting to nullptr, matching the TraceLog
// convention, so profiling disabled costs one predictable branch.
//
// The overlap half folds a finished sim::Timeline into per-thread
// compute/communicate/idle totals and a per-host sweep that measures the
// time where computation and communication proceed concurrently
// (overlap_ratio = overlapped / communicate, the Fig 4 quantity).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/hist.hpp"
#include "obs/recorder.hpp"
#include "obs/sketch.hpp"
#include "sim/timeline.hpp"

namespace ncs::obs {

class JsonWriter;

/// Latency layers. The first five are the consecutive legs of the message
/// lifecycle (their sums partition end_to_end exactly); the rest are
/// auxiliary distributions recorded directly by the owning module.
enum class Layer : std::uint8_t {
  send_queue,       // enqueue -> dequeue: wait for the send system thread
  flow_control,     // dequeue -> admit: window credit / rate pacing
  transport,        // admit -> handoff: protocol send cost, NIC submit, copies
  network,          // handoff -> deliver: wire, switch, reassembly, recv thread
  mailbox,          // deliver -> wakeup: message parked awaiting NCS_recv
  end_to_end,       // enqueue -> wakeup
  fc_stall,         // flow-control blocked spans (subset of flow_control)
  retx_delay,       // first transmission -> each retransmission
  tx_buffer_stall,  // HSM sender blocked on NIC I/O buffer backpressure
  nic_dma,          // per-burst host-memory DMA stage
  nic_sar,          // per-burst segmentation-and-reassembly stage
  wire,             // per-burst link serialization time
  mux_queue,        // cell-mux queueing delay (ablation_cellmux datapath)
  sched_dispatch,   // thread runnable -> dispatched (scheduler queue wait)
  coll,             // whole-collective latency (entry -> result, per op)
  proto,            // protocol-engine delays: eager batch residency and
                    // rendezvous RTS->CTS handshake waits (mps/proto.hpp)
  rma,              // one-sided operation latency (post -> completion, all
                    // kinds; per-kind split lives in the "rma" section)
  nic_coll,         // NIC-offloaded collective firmware stages: per-hop
                    // combine and forward time on the i960 (atm/nic_coll)
};
inline constexpr int kLayerCount = static_cast<int>(Layer::nic_coll) + 1;

const char* to_string(Layer l);

/// Stable Chrome-trace flow id for a message: the same (from, to, seq)
/// triple that keys the profiler, packed so sender and receiver compute an
/// identical id without coordination.
inline std::uint64_t msg_flow_id(int from, int to, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(from)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(to)) << 32) |
         seq;
}

/// Flow ids for the one-sided plane: (initiator, target, op_id) plus a
/// leg bit — 0 for the request arrow (post span -> target execution), 1
/// for the response arrow (target execution -> completion). Bit 63 keeps
/// the RMA id space disjoint from msg_flow_id (ranks are 16-bit, so the
/// two-sided ids never set it).
inline std::uint64_t rma_flow_id(int initiator, int target, std::uint32_t op_id,
                                 int leg) {
  return (1ull << 63) | (static_cast<std::uint64_t>(leg & 1) << 62) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(initiator)) << 46) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(target)) << 30) |
         op_id;
}

class Profiler {
 public:
  struct MsgKey {
    int from;
    int to;
    std::uint32_t seq;
    bool operator<(const MsgKey& o) const {
      if (from != o.from) return from < o.from;
      if (to != o.to) return to < o.to;
      return seq < o.seq;
    }
  };

  // Lifecycle stamps, in stage order. Stamps for unknown keys (or repeated
  // stamps for the same stage, e.g. a duplicate delivery that slipped past
  // dedup) are ignored; on_wakeup folds the completed lifecycle into the
  // layer histograms and retires the key.
  void on_enqueue(const MsgKey& k, TimePoint t);
  void on_dequeue(const MsgKey& k, TimePoint t);
  void on_admit(const MsgKey& k, TimePoint t);
  void on_handoff(const MsgKey& k, TimePoint t);
  void on_deliver(const MsgKey& k, TimePoint t);
  void on_wakeup(const MsgKey& k, TimePoint t);

  /// Direct sample into an auxiliary layer histogram.
  void record(Layer l, Duration d) { hist_[static_cast<int>(l)].record(d); }

  const Histogram& hist(Layer l) const { return hist_[static_cast<int>(l)]; }

  /// Per-collective-algorithm sample, keyed "op/algorithm" (e.g.
  /// "allreduce/ring"). Each key gets its own histogram, emitted as the
  /// profile's "coll" section; the coll::Engine also folds the same
  /// sample into Layer::coll as the aggregate.
  void record_coll(const std::string& key, Duration d) { coll_[key].record(d); }

  const std::map<std::string, Histogram>& coll_hists() const { return coll_; }

  /// Named protocol-engine duration sample (e.g. "rts_cts_delay"),
  /// emitted as the profile's "proto" section alongside Layer::proto.
  void record_proto(const std::string& key, Duration d) { proto_time_[key].record(d); }

  /// Named protocol-engine count sample (e.g. "eager_batch_occupancy" —
  /// messages per flushed frame); unit-less, so it is reported raw.
  void record_proto_count(const std::string& key, std::int64_t v) {
    proto_count_[key].record(v);
  }

  const std::map<std::string, Histogram>& proto_time_hists() const { return proto_time_; }
  const std::map<std::string, Histogram>& proto_count_hists() const { return proto_count_; }

  /// Per-kind one-sided latency sample ("put", "get", "fetch_add",
  /// "compare_swap"), emitted as the profile's "rma" section; the
  /// rma::Engine also folds the same sample into Layer::rma.
  void record_rma(const std::string& key, Duration d) { rma_[key].record(d); }

  const std::map<std::string, Histogram>& rma_hists() const { return rma_; }

  /// Per-core dispatch-latency sample, keyed "<host>/c<index>", emitted as
  /// the profile's "cores" section when a multi-core host is attached; the
  /// scheduler also folds the same sample into Layer::sched_dispatch as
  /// the aggregate. Single-core hosts record nothing here, so the profile
  /// JSON is unchanged for them.
  void record_core(const std::string& key, Duration d) { core_[key].record(d); }

  const std::map<std::string, Histogram>& core_hists() const { return core_; }

  /// Telemetry sink for completed end-to-end latencies: every on_wakeup
  /// fold additionally records (wakeup time, e2e) into the sketch, so the
  /// sampler sees tail latency as it happens. Pointer-guarded like the
  /// other hooks.
  void set_latency_sketch(WindowedSketch* sketch) { e2e_sketch_ = sketch; }

  /// Flight-recorder sink: every fold leaves an EntryKind::stamp on the
  /// destination host's ring (what = "e2e", peer = source, value = e2e ps).
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /// Messages whose full lifecycle was folded.
  std::uint64_t completed() const { return completed_; }
  /// Messages with at least one stamp but no wakeup yet (lost to a link
  /// fault, given up by error control, or still in flight at end of run).
  std::uint64_t incomplete() const { return static_cast<std::uint64_t>(live_.size()); }

  /// Emits "layers": {...} and "messages": {...} as fields of the
  /// currently open JSON object (the report's "profile" section).
  void write_json(JsonWriter& w) const;

  /// One-line bottleneck attribution, e.g.
  /// "p99 end-to-end 412.3 us over 240 messages: network 61%, ...".
  std::string bottleneck_summary() const;

 private:
  // One TimePoint per stamp before wakeup, validity tracked by bitmask.
  struct Live {
    TimePoint t[5];
    std::uint8_t have = 0;
  };

  std::map<MsgKey, Live> live_;
  Histogram hist_[kLayerCount];
  std::map<std::string, Histogram> coll_;
  std::map<std::string, Histogram> proto_time_;
  std::map<std::string, Histogram> proto_count_;
  std::map<std::string, Histogram> rma_;
  std::map<std::string, Histogram> core_;
  std::uint64_t completed_ = 0;
  WindowedSketch* e2e_sketch_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
};

/// Per-thread activity totals folded from a finished Timeline track.
struct ThreadUsage {
  std::string track;                // "p0/main", "p1/ncs-send", ...
  Duration per_activity[4];         // indexed by sim::Activity
  Duration span;                    // first transition -> finish
  Duration activity(sim::Activity a) const {
    return per_activity[static_cast<int>(a)];
  }
};

/// Per-host concurrency measures from a boundary sweep over all of the
/// host's threads: `compute` is time where >= 1 thread computes,
/// `communicate` where >= 1 communicates, `overlapped` where both hold at
/// once — the communication the runtime hid behind computation.
struct HostUsage {
  std::string host;
  Duration compute;
  Duration communicate;
  Duration overhead;
  Duration overlapped;
  Duration idle;  // no thread doing anything within the host's span
  Duration span;
  double overlap_ratio() const {
    return communicate.is_zero() ? 0.0 : overlapped.sec() / communicate.sec();
  }
};

std::vector<ThreadUsage> fold_threads(const sim::Timeline& tl);

/// Groups tracks by their "host/" name prefix (tracks without a '/' form a
/// single-track host) and sweeps each group's interval boundaries.
std::vector<HostUsage> fold_hosts(const sim::Timeline& tl);

}  // namespace ncs::obs
