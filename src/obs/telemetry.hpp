// Live telemetry plane: the periodic sampler tying sketches, gauges, SLOs
// and the flight recorder together.
//
// A TelemetrySampler owns named WindowedSketches (hot paths resolve them
// once to raw pointers — Profiler::set_latency_sketch,
// rma::Engine::set_latency_sketch — so per-sample cost is a bucket
// increment) and named gauge probes (queue depths, credit occupancy,
// window occupancy: cheap lambdas over live module state). arm() schedules
// a periodic sim event; every tick it
//
//   1. advances every sketch to now (windows age out even when idle),
//   2. appends one {t, count, p50, p99, p999} point per sketch and one
//      {t, value} point per probe to the in-memory series,
//   3. grades every SLO against the new windows (hard breaches reach the
//      flight recorder through the cluster's hook),
//   4. emits the same values as Chrome counter tracks when tracing, and
//   5. reschedules itself only while the caller's keep_going() predicate
//      holds — the tick must never keep the engine's queue non-empty
//      after the workload finished, or run() would never drain.
//
// Sampling only *reads* module state at instants that are identical
// across conforming queue backends, so enabling telemetry never perturbs
// simulated results, and the series is bit-identical run-to-run
// (tests/obs/test_telemetry.cpp).
//
// write_json() emits the report's "telemetry" section: config, the
// "timeseries" object (sketches + gauges) and the "slo" array.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/recorder.hpp"
#include "obs/sketch.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace ncs::obs {

class JsonWriter;

struct TelemetryConfig {
  /// Sampler tick period (one timeseries point per tick).
  Duration period = Duration::milliseconds(10);
  /// Sliding window the sketch quantiles and SLO grades cover.
  Duration window = Duration::milliseconds(100);
  /// Ring granularity: the window ages out in window/subwindows steps.
  int subwindows = 10;
  /// Flight-recorder ring slots per host.
  std::size_t recorder_capacity = 256;
};

class TelemetrySampler {
 public:
  TelemetrySampler(sim::Engine& engine, TelemetryConfig cfg);

  const TelemetryConfig& config() const { return cfg_; }

  /// Named sketch, created on first use (stable address; hot paths keep
  /// the pointer). Creation order fixes JSON emission order.
  WindowedSketch& sketch(const std::string& name);
  const WindowedSketch* find_sketch(const std::string& name) const;

  /// Named gauge probe, sampled every tick.
  void probe(std::string name, std::function<double()> fn);

  SloEngine& slo() { return slo_; }
  const SloEngine& slo() const { return slo_; }

  /// Counter tracks go here when set ("<name>/p99_us", probes verbatim).
  void set_trace(TraceLog* trace) { trace_ = trace; }

  /// Starts ticking at `first`, then every period while keep_going()
  /// (checked after each tick) returns true. One final tick after the
  /// predicate turns false is fine — the predicate gates *rescheduling*.
  void arm(TimePoint first, std::function<bool()> keep_going);

  std::uint64_t ticks() const { return ticks_; }

  struct SketchPoint {
    std::int64_t t_ps;
    std::uint64_t count;  // samples in the window at this tick
    std::int64_t p50_ps;
    std::int64_t p99_ps;
    std::int64_t p999_ps;
  };
  struct GaugePoint {
    std::int64_t t_ps;
    double value;
  };

  const std::vector<SketchPoint>* sketch_series(const std::string& name) const;
  const std::vector<GaugePoint>* gauge_series(const std::string& name) const;

  /// Emits the "telemetry" object's fields (callers open/close it).
  void write_json(JsonWriter& w) const;

 private:
  void tick();

  struct SketchEntry {
    std::string name;
    std::unique_ptr<WindowedSketch> sketch;  // stable across vector growth
    std::vector<SketchPoint> series;
  };
  struct ProbeEntry {
    std::string name;
    std::function<double()> fn;
    std::vector<GaugePoint> series;
  };

  sim::Engine& engine_;
  TelemetryConfig cfg_;
  std::vector<SketchEntry> sketches_;
  std::vector<ProbeEntry> probes_;
  SloEngine slo_;
  TraceLog* trace_ = nullptr;
  std::function<bool()> keep_going_;
  std::uint64_t ticks_ = 0;
};

}  // namespace ncs::obs
