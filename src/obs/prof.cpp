#include "obs/prof.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace ncs::obs {

const char* to_string(Layer l) {
  switch (l) {
    case Layer::send_queue: return "send_queue";
    case Layer::flow_control: return "flow_control";
    case Layer::transport: return "transport";
    case Layer::network: return "network";
    case Layer::mailbox: return "mailbox";
    case Layer::end_to_end: return "end_to_end";
    case Layer::fc_stall: return "fc_stall";
    case Layer::retx_delay: return "retx_delay";
    case Layer::tx_buffer_stall: return "tx_buffer_stall";
    case Layer::nic_dma: return "nic_dma";
    case Layer::nic_sar: return "nic_sar";
    case Layer::wire: return "wire";
    case Layer::mux_queue: return "mux_queue";
    case Layer::sched_dispatch: return "sched_dispatch";
    case Layer::coll: return "coll";
    case Layer::proto: return "proto";
    case Layer::rma: return "rma";
    case Layer::nic_coll: return "nic_coll";
  }
  return "?";
}

namespace {
// Stage indices into Live::t (wakeup folds immediately, so it has no slot).
enum Stage { kEnqueue = 0, kDequeue = 1, kAdmit = 2, kHandoff = 3, kDeliver = 4 };
}  // namespace

void Profiler::on_enqueue(const MsgKey& k, TimePoint t) {
  Live& live = live_[k];
  if ((live.have & (1u << kEnqueue)) != 0) return;  // seq collision: keep first
  live.t[kEnqueue] = t;
  live.have |= 1u << kEnqueue;
}

void Profiler::on_dequeue(const MsgKey& k, TimePoint t) {
  auto it = live_.find(k);
  if (it == live_.end() || (it->second.have & (1u << kDequeue)) != 0) return;
  it->second.t[kDequeue] = t;
  it->second.have |= 1u << kDequeue;
}

void Profiler::on_admit(const MsgKey& k, TimePoint t) {
  auto it = live_.find(k);
  if (it == live_.end() || (it->second.have & (1u << kAdmit)) != 0) return;
  it->second.t[kAdmit] = t;
  it->second.have |= 1u << kAdmit;
}

void Profiler::on_handoff(const MsgKey& k, TimePoint t) {
  auto it = live_.find(k);
  if (it == live_.end() || (it->second.have & (1u << kHandoff)) != 0) return;
  it->second.t[kHandoff] = t;
  it->second.have |= 1u << kHandoff;
}

void Profiler::on_deliver(const MsgKey& k, TimePoint t) {
  auto it = live_.find(k);
  if (it == live_.end() || (it->second.have & (1u << kDeliver)) != 0) return;
  it->second.t[kDeliver] = t;
  it->second.have |= 1u << kDeliver;
}

void Profiler::on_wakeup(const MsgKey& k, TimePoint wakeup) {
  auto it = live_.find(k);
  if (it == live_.end()) return;
  const Live& live = it->second;

  // Fold each leg whose endpoints were both stamped. The local-delivery
  // path collapses some stages onto the same instant; those legs record 0
  // and keep the partition property (legs sum to end_to_end).
  struct LegDef {
    Stage from;
    Stage to;
    Layer layer;
  };
  static constexpr LegDef kLegs[] = {
      {kEnqueue, kDequeue, Layer::send_queue},
      {kDequeue, kAdmit, Layer::flow_control},
      {kAdmit, kHandoff, Layer::transport},
      {kHandoff, kDeliver, Layer::network},
  };
  for (const LegDef& leg : kLegs) {
    if ((live.have & (1u << leg.from)) != 0 && (live.have & (1u << leg.to)) != 0)
      record(leg.layer, live.t[leg.to] - live.t[leg.from]);
  }
  if ((live.have & (1u << kDeliver)) != 0)
    record(Layer::mailbox, wakeup - live.t[kDeliver]);
  if ((live.have & (1u << kEnqueue)) != 0) {
    const Duration e2e = wakeup - live.t[kEnqueue];
    record(Layer::end_to_end, e2e);
    ++completed_;
    if (e2e_sketch_ != nullptr) e2e_sketch_->record(wakeup, e2e);
    if (recorder_ != nullptr)
      recorder_->note(k.to, FlightRecorder::EntryKind::stamp, wakeup, "e2e", k.from,
                      e2e.ps());
  }
  live_.erase(it);
}

void Profiler::write_json(JsonWriter& w) const {
  w.key("layers").begin_object();
  for (int i = 0; i < kLayerCount; ++i) {
    if (hist_[i].count() == 0) continue;
    w.key(to_string(static_cast<Layer>(i))).begin_object();
    hist_[i].write_json(w);
    w.end_object();
  }
  w.end_object();
  if (!coll_.empty()) {
    w.key("coll").begin_object();
    for (const auto& [key, hist] : coll_) {
      w.key(key).begin_object();
      hist.write_json(w);
      w.end_object();
    }
    w.end_object();
  }
  if (!proto_time_.empty() || !proto_count_.empty()) {
    w.key("proto").begin_object();
    for (const auto& [key, hist] : proto_time_) {
      w.key(key).begin_object();
      hist.write_json(w);
      w.end_object();
    }
    // Count-valued histograms (batch occupancy) have no time unit.
    for (const auto& [key, hist] : proto_count_) {
      w.key(key).begin_object();
      hist.write_json_raw(w);
      w.end_object();
    }
    w.end_object();
  }
  if (!rma_.empty()) {
    w.key("rma").begin_object();
    for (const auto& [key, hist] : rma_) {
      w.key(key).begin_object();
      hist.write_json(w);
      w.end_object();
    }
    w.end_object();
  }
  if (!core_.empty()) {
    w.key("cores").begin_object();
    for (const auto& [key, hist] : core_) {
      w.key(key).begin_object();
      hist.write_json(w);
      w.end_object();
    }
    w.end_object();
  }
  w.key("messages")
      .begin_object()
      .field("completed", completed_)
      .field("incomplete", incomplete())
      .end_object();
}

std::string Profiler::bottleneck_summary() const {
  const Histogram& e2e = hist(Layer::end_to_end);
  if (e2e.count() == 0) return "no completed messages profiled";

  char buf[128];
  std::snprintf(buf, sizeof buf, "p99 end-to-end %.1f us over %llu messages:",
                static_cast<double>(e2e.quantile(0.99)) * 1e-6,
                static_cast<unsigned long long>(e2e.count()));
  std::string out = buf;

  static constexpr Layer kPath[] = {Layer::send_queue, Layer::flow_control, Layer::transport,
                                    Layer::network, Layer::mailbox};
  struct Share {
    Layer layer;
    double frac;
  };
  std::vector<Share> shares;
  const auto total = static_cast<double>(e2e.sum());
  for (Layer l : kPath) {
    if (hist(l).sum() > 0 && total > 0.0)
      shares.push_back({l, static_cast<double>(hist(l).sum()) / total});
  }
  std::sort(shares.begin(), shares.end(),
            [](const Share& a, const Share& b) { return a.frac > b.frac; });
  for (std::size_t i = 0; i < shares.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s %s %.0f%%", i == 0 ? "" : ",",
                  to_string(shares[i].layer), shares[i].frac * 100.0);
    out += buf;
  }
  if (shares.empty()) out += " (all legs empty)";
  return out;
}

std::vector<ThreadUsage> fold_threads(const sim::Timeline& tl) {
  std::vector<ThreadUsage> out;
  out.reserve(static_cast<std::size_t>(tl.track_count()));
  for (int k = 0; k < tl.track_count(); ++k) {
    ThreadUsage u;
    u.track = tl.track_name(k);
    const auto& ivs = tl.intervals(k);
    for (const auto& iv : ivs)
      u.per_activity[static_cast<int>(iv.activity)] += iv.end - iv.begin;
    if (!ivs.empty()) u.span = ivs.back().end - ivs.front().begin;
    out.push_back(std::move(u));
  }
  return out;
}

std::vector<HostUsage> fold_hosts(const sim::Timeline& tl) {
  struct Edge {
    std::int64_t t_ps;
    int activity;
    int delta;  // +1 open, -1 close
  };
  struct Group {
    std::string host;
    std::vector<Edge> edges;
  };
  std::vector<Group> groups;
  auto group_of = [&groups](const std::string& host) -> Group& {
    for (Group& g : groups)
      if (g.host == host) return g;
    groups.push_back({host, {}});
    return groups.back();
  };

  for (int k = 0; k < tl.track_count(); ++k) {
    const std::string& name = tl.track_name(k);
    const auto slash = name.find('/');
    Group& g = group_of(slash == std::string::npos ? name : name.substr(0, slash));
    for (const auto& iv : tl.intervals(k)) {
      g.edges.push_back({iv.begin.ps(), static_cast<int>(iv.activity), +1});
      g.edges.push_back({iv.end.ps(), static_cast<int>(iv.activity), -1});
    }
  }

  std::vector<HostUsage> out;
  for (Group& g : groups) {
    HostUsage u;
    u.host = g.host;
    if (g.edges.empty()) {
      out.push_back(std::move(u));
      continue;
    }
    // Closes sort before opens at equal times so zero-width touching
    // intervals don't create spurious concurrency.
    std::sort(g.edges.begin(), g.edges.end(), [](const Edge& a, const Edge& b) {
      if (a.t_ps != b.t_ps) return a.t_ps < b.t_ps;
      return a.delta < b.delta;
    });
    int open[4] = {};
    std::int64_t prev = g.edges.front().t_ps;
    const std::int64_t first = prev;
    for (const Edge& e : g.edges) {
      const Duration seg = Duration::picoseconds(e.t_ps - prev);
      if (!seg.is_zero()) {
        const bool comp = open[static_cast<int>(sim::Activity::compute)] > 0;
        const bool comm = open[static_cast<int>(sim::Activity::communicate)] > 0;
        const bool ovhd = open[static_cast<int>(sim::Activity::overhead)] > 0;
        if (comp) u.compute += seg;
        if (comm) u.communicate += seg;
        if (ovhd) u.overhead += seg;
        if (comp && comm) u.overlapped += seg;
        if (!comp && !comm && !ovhd) u.idle += seg;
      }
      open[e.activity] += e.delta;
      prev = e.t_ps;
    }
    u.span = Duration::picoseconds(prev - first);
    out.push_back(std::move(u));
  }
  return out;
}

}  // namespace ncs::obs
