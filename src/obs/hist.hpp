// Fixed-memory log-bucketed latency histogram (HDR-style).
//
// Values land in power-of-two octaves subdivided into 16 linear
// sub-buckets, so any recorded value is off by at most 1/16 (~6%) of its
// magnitude while the whole structure stays a flat ~8 KB array — no
// allocation on the record path, safe to feed from per-message hooks at
// simulation rates. Quantiles come from a cumulative walk and are clamped
// to the exact observed [min, max], so p0/p100 are always exact.
//
// The profiler records simulated durations in picoseconds; write_json()
// reports them in the microsecond/second units the rest of the report
// schema uses.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace ncs::obs {

class JsonWriter;

class Histogram {
 public:
  /// Records one value. Negative values clamp to zero (a latency measured
  /// as negative is a caller bug, but must not corrupt the buckets).
  void record(std::int64_t v);
  void record(Duration d) { record(d.ps()); }

  /// Resets to the empty state without releasing storage (the counts array
  /// is flat, so this is one memset — the WindowedSketch rotation path).
  void clear();

  /// Adds every sample of `other` into this histogram, bucket-for-bucket.
  /// Exact for counts/sum/min/max; quantiles of the merge equal quantiles
  /// of recording both sample streams into one histogram.
  void merge(const Histogram& other);

  /// Samples known to be <= v: the count of every bucket whose upper bound
  /// is <= v. Conservative (a bucket straddling v is excluded), so
  /// SLO compliance computed from it never over-reports. O(buckets).
  std::uint64_t count_le(std::int64_t v) const;

  std::uint64_t count() const { return count_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return max_; }
  std::int64_t sum() const { return sum_; }
  double mean() const;

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest sample, clamped to [min, max].
  /// Returns 0 on an empty histogram.
  std::int64_t quantile(double q) const;

  /// Emits count/min/mean/p50/p90/p99/p999/max (microseconds) and total
  /// (seconds) as fields of the currently open JSON object. Assumes the
  /// recorded values are picoseconds.
  void write_json(JsonWriter& w) const;

  /// Unit-less variant for histograms of counts (e.g. eager batch
  /// occupancy): emits count/min/mean/p50/p90/p99/p999/max/total verbatim.
  void write_json_raw(JsonWriter& w) const;

  static constexpr int kSubBits = 4;  // 16 linear sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  // Octave 0 holds values < kSub exactly; octaves for msb = kSubBits..62
  // hold kSub sub-buckets each.
  static constexpr int kBuckets = kSub + (63 - kSubBits) * kSub;

  /// Bucket index for a (non-negative, clamped) value. Exposed for tests.
  static int bucket_of(std::int64_t v);
  /// Largest value mapping to bucket `b` (the quantile representative).
  static std::int64_t bucket_top(int b);

 private:
  std::uint64_t counts_[static_cast<std::size_t>(kBuckets)] = {};
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t sum_ = 0;
};

}  // namespace ncs::obs
