// Run-wide metrics registry.
//
// Every module in the system keeps a per-instance `stats_` struct (message
// counts, stalls, retransmissions, CPU busy time, ...). Historically those
// were dead-end fields: each bench hand-picked a few for its printout and
// the rest were invisible. The registry turns them into one hierarchical,
// machine-readable namespace — `host/module/name`, e.g.
// `p0/mps/sends` or `p2/mts/cpu_busy` — without changing how modules count.
//
// Registration is pull-model: a module registers a *reader* (usually a
// lambda capturing `this`) per stat field, and the registry samples it at
// snapshot time. The hot paths keep bumping plain struct fields; with no
// registry attached nothing changes at all — zero overhead when disabled,
// and registry totals are equal to the legacy per-module stats by
// construction (asserted by tests/obs/test_metrics.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "obs/json.hpp"

namespace ncs::obs {

enum class MetricKind : std::uint8_t { counter, gauge, duration };

const char* to_string(MetricKind k);

class MetricsRegistry {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;
  using DurationFn = std::function<Duration()>;

  /// Monotone event count. The pointer form reads a live stats field.
  void counter(std::string key, CounterFn read);
  void counter(std::string key, const std::uint64_t* src) {
    counter(std::move(key), [src] { return *src; });
  }

  /// Instantaneous level (queue depth, window occupancy, ...).
  void gauge(std::string key, GaugeFn read);

  /// Accumulated simulated time.
  void duration(std::string key, DurationFn read);
  void duration(std::string key, const Duration* src) {
    duration(std::move(key), [src] { return *src; });
  }

  struct Sample {
    std::string key;
    MetricKind kind;
    /// counters: exact count; durations: seconds; gauges: raw value.
    double value;
  };

  /// Samples every registered metric, sorted by key.
  std::vector<Sample> snapshot() const;

  std::size_t size() const { return entries_.size(); }
  bool contains(std::string_view key) const;

  /// Current value of one counter; asserts the key exists and is a counter.
  std::uint64_t counter_value(std::string_view key) const;
  /// Current value of one metric in canonical units (see Sample::value).
  double value(std::string_view key) const;

  /// Writes `"metrics": {key: value, ...}` — callers embed it in a larger
  /// document. Durations are reported in seconds.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 private:
  struct Entry {
    std::string key;
    MetricKind kind;
    CounterFn counter;
    GaugeFn gauge;
    DurationFn duration;
    double read() const;
  };

  const Entry* find(std::string_view key) const;
  void insert(Entry e);

  std::vector<Entry> entries_;
};

}  // namespace ncs::obs
