// Declarative service-level objectives over the telemetry plane.
//
// An SloSpec states an objective ("99% of end-to-end latencies under
// 5 ms", "99.9% of messages delivered without an exception") and the
// SloEngine grades it once per sampler tick against the current sliding
// window:
//
//   compliance = good / total over the window      (empty window = 1.0)
//   burn_rate  = (1 - compliance) / (1 - target)
//
// burn_rate is the standard error-budget language: 1.0 means the window
// is failing at exactly the rate the objective tolerates; 10.0 means the
// budget burns ten times too fast. A window whose burn rate reaches
// `hard_burn` (and actually contains samples) is a *hard breach* — the
// engine counts it and fires the hard-breach hook, which the cluster
// wires to the flight recorder so the dump captures the window that blew
// the objective.
//
// Latency objectives read a WindowedSketch (compliance via
// Histogram::count_le, which is conservative: a bucket straddling the
// threshold counts as non-compliant, so compliance is never
// over-reported). Delivery objectives read two cumulative counters
// (attempts, violations) and grade the per-window delta.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/sketch.hpp"

namespace ncs::obs {

class JsonWriter;

enum class SloKind : std::uint8_t { latency, delivery };

const char* to_string(SloKind k);

struct SloSpec {
  std::string name;              // e.g. "e2e_p99_under_5ms"
  SloKind kind = SloKind::latency;
  /// Latency objectives: the telemetry sketch graded ("mps/e2e",
  /// "rma/op"); resolved by the cluster when it binds the spec.
  std::string sketch;
  /// Latency objectives: samples <= threshold are compliant.
  Duration threshold;
  /// Required fraction of compliant samples per window, in [0, 1).
  double target = 0.99;
  /// Burn rate at or above which a window is a hard breach.
  double hard_burn = 10.0;
};

class SloEngine {
 public:
  struct State {
    SloSpec spec;
    const WindowedSketch* sketch = nullptr;        // latency
    std::function<std::uint64_t()> attempts;       // delivery (cumulative)
    std::function<std::uint64_t()> violations;     // delivery (cumulative)
    std::uint64_t prev_attempts = 0;
    std::uint64_t prev_violations = 0;
    // Accumulated over the run.
    std::uint64_t windows = 0;        // evaluations with samples/attempts
    std::uint64_t compliant_windows = 0;
    std::uint64_t breaches = 0;       // windows with compliance < target
    std::uint64_t hard_breaches = 0;  // windows with burn >= hard_burn
    double last_compliance = 1.0;
    double last_burn = 0.0;
    double max_burn = 0.0;
    /// Worst (lowest) per-window compliance seen, 1.0 if never evaluated.
    double min_compliance = 1.0;
  };

  /// Latency objective over `sketch` (not owned; must outlive the engine).
  void add_latency(SloSpec spec, const WindowedSketch* sketch);

  /// Delivery objective over two cumulative counters; each evaluation
  /// grades the delta since the previous one.
  void add_delivery(SloSpec spec, std::function<std::uint64_t()> attempts,
                    std::function<std::uint64_t()> violations);

  /// Grades every objective against its current window. `now` is only
  /// forwarded to the hard-breach hook.
  void evaluate(TimePoint now);

  /// Fired (from evaluate) for each hard-breach window.
  void set_hard_breach_hook(
      std::function<void(const SloSpec&, double burn, TimePoint)> hook) {
    hard_breach_hook_ = std::move(hook);
  }

  const std::vector<State>& states() const { return states_; }
  bool empty() const { return states_.empty(); }
  std::uint64_t total_hard_breaches() const;

  /// Emits the "slo" array: one object per objective with spec, live
  /// values and run accumulators.
  void write_json(JsonWriter& w) const;

 private:
  void grade(State& s, double compliance, bool had_samples, TimePoint now);

  std::vector<State> states_;
  std::function<void(const SloSpec&, double, TimePoint)> hard_breach_hook_;
};

}  // namespace ncs::obs
