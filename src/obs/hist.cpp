#include "obs/hist.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace ncs::obs {

int Histogram::bucket_of(std::int64_t v) {
  if (v < kSub) return static_cast<int>(v);
  const auto u = static_cast<std::uint64_t>(v);
  const int msb = 63 - std::countl_zero(u);
  const int shift = msb - kSubBits;
  const auto sub = static_cast<int>((u >> shift) - kSub);
  return (shift + 1) * kSub + sub;
}

std::int64_t Histogram::bucket_top(int b) {
  NCS_ASSERT(b >= 0 && b < kBuckets);
  if (b < kSub) return b;
  const int shift = b / kSub - 1;
  const auto top = (static_cast<std::uint64_t>(kSub + b % kSub + 1) << shift) - 1;
  return static_cast<std::int64_t>(top);
}

void Histogram::record(std::int64_t v) {
  if (v < 0) v = 0;
  ++counts_[static_cast<std::size_t>(bucket_of(v))];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

void Histogram::clear() {
  std::memset(counts_, 0, sizeof counts_);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBuckets; ++b)
    counts_[static_cast<std::size_t>(b)] += other.counts_[static_cast<std::size_t>(b)];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

std::uint64_t Histogram::count_le(std::int64_t v) const {
  if (count_ == 0 || v < 0) return 0;
  if (v >= max_) return count_;
  std::uint64_t n = 0;
  for (int b = 0; b < kBuckets && bucket_top(b) <= v; ++b)
    n += counts_[static_cast<std::size_t>(b)];
  return n;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      std::int64_t v = bucket_top(b);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;  // unreachable: seen reaches count_ by the last bucket
}

void Histogram::write_json(JsonWriter& w) const {
  constexpr double kPsToUs = 1e-6;
  constexpr double kPsToSec = 1e-12;
  w.field("count", count_);
  w.field("min_us", static_cast<double>(min()) * kPsToUs);
  w.field("mean_us", mean() * kPsToUs);
  w.field("p50_us", static_cast<double>(quantile(0.50)) * kPsToUs);
  w.field("p90_us", static_cast<double>(quantile(0.90)) * kPsToUs);
  w.field("p99_us", static_cast<double>(quantile(0.99)) * kPsToUs);
  w.field("p999_us", static_cast<double>(quantile(0.999)) * kPsToUs);
  w.field("max_us", static_cast<double>(max()) * kPsToUs);
  w.field("total_sec", static_cast<double>(sum()) * kPsToSec);
}

void Histogram::write_json_raw(JsonWriter& w) const {
  w.field("count", count_);
  w.field("min", min());
  w.field("mean", mean());
  w.field("p50", quantile(0.50));
  w.field("p90", quantile(0.90));
  w.field("p99", quantile(0.99));
  w.field("p999", quantile(0.999));
  w.field("max", max());
  w.field("total", sum());
}

}  // namespace ncs::obs
