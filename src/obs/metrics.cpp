#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ncs::obs {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::counter: return "counter";
    case MetricKind::gauge: return "gauge";
    case MetricKind::duration: return "duration";
  }
  return "?";
}

double MetricsRegistry::Entry::read() const {
  switch (kind) {
    case MetricKind::counter: return static_cast<double>(counter());
    case MetricKind::gauge: return gauge();
    case MetricKind::duration: return duration().sec();
  }
  return 0.0;
}

void MetricsRegistry::insert(Entry e) {
  NCS_ASSERT_MSG(!e.key.empty(), "metric key must not be empty");
  NCS_ASSERT_MSG(find(e.key) == nullptr, "duplicate metric key");
  entries_.push_back(std::move(e));
}

void MetricsRegistry::counter(std::string key, CounterFn read) {
  NCS_ASSERT(read != nullptr);
  insert(Entry{std::move(key), MetricKind::counter, std::move(read), nullptr, nullptr});
}

void MetricsRegistry::gauge(std::string key, GaugeFn read) {
  NCS_ASSERT(read != nullptr);
  insert(Entry{std::move(key), MetricKind::gauge, nullptr, std::move(read), nullptr});
}

void MetricsRegistry::duration(std::string key, DurationFn read) {
  NCS_ASSERT(read != nullptr);
  insert(Entry{std::move(key), MetricKind::duration, nullptr, nullptr, std::move(read)});
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view key) const {
  for (const Entry& e : entries_)
    if (e.key == key) return &e;
  return nullptr;
}

bool MetricsRegistry::contains(std::string_view key) const { return find(key) != nullptr; }

std::uint64_t MetricsRegistry::counter_value(std::string_view key) const {
  const Entry* e = find(key);
  NCS_ASSERT_MSG(e != nullptr, "unknown metric key");
  NCS_ASSERT_MSG(e->kind == MetricKind::counter, "metric is not a counter");
  return e->counter();
}

double MetricsRegistry::value(std::string_view key) const {
  const Entry* e = find(key);
  NCS_ASSERT_MSG(e != nullptr, "unknown metric key");
  return e->read();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back({e.key, e.kind, e.read()});
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.key < b.key; });
  return out;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.key("metrics").begin_object();
  for (const Sample& s : snapshot()) {
    if (s.kind == MetricKind::counter) {
      w.field(s.key, static_cast<std::uint64_t>(s.value));
    } else {
      w.field(s.key, s.value);
    }
  }
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  write_json(w);
  w.end_object();
  return std::move(w).str();
}

}  // namespace ncs::obs
