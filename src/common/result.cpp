#include "common/result.hpp"

namespace ncs {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::ok: return "OK";
    case ErrorCode::invalid_argument: return "INVALID_ARGUMENT";
    case ErrorCode::not_found: return "NOT_FOUND";
    case ErrorCode::already_exists: return "ALREADY_EXISTS";
    case ErrorCode::resource_exhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::failed_precondition: return "FAILED_PRECONDITION";
    case ErrorCode::out_of_range: return "OUT_OF_RANGE";
    case ErrorCode::data_corruption: return "DATA_CORRUPTION";
    case ErrorCode::timed_out: return "TIMED_OUT";
    case ErrorCode::connection_reset: return "CONNECTION_RESET";
    case ErrorCode::unimplemented: return "UNIMPLEMENTED";
    case ErrorCode::internal: return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace ncs
