// Bandwidth and size units used across network models.
#pragma once

#include <cstdint>

namespace ncs {

/// Bandwidths are plain doubles in bits per second; these named constants
/// document the 1995 link technologies the paper's testbeds use.
namespace bw {
inline constexpr double kbps(double v) { return v * 1e3; }
inline constexpr double mbps(double v) { return v * 1e6; }
inline constexpr double gbps(double v) { return v * 1e9; }

inline constexpr double ethernet_10 = mbps(10);   // shared 10BASE Ethernet
inline constexpr double taxi_140 = mbps(140);     // FORE TAXI host-switch link
inline constexpr double oc3 = mbps(155.52);       // SONET OC-3 (site links)
inline constexpr double oc48 = gbps(2.488);       // SONET OC-48 (NYNET WAN core)
inline constexpr double ds3 = mbps(44.736);       // DS-3 (upstate-downstate)
}  // namespace bw

namespace size {
inline constexpr std::size_t KiB = 1024;
inline constexpr std::size_t MiB = 1024 * 1024;
}  // namespace size

}  // namespace ncs
