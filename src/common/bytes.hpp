// Byte-buffer helpers: owned buffers, big-endian field packing (network
// order, used by every wire format in the ATM/Ethernet substrates), and a
// bounds-checked reader/writer pair for header (de)serialization.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace ncs {

using Bytes = std::vector<std::byte>;
using BytesView = std::span<const std::byte>;

inline Bytes to_bytes(std::string_view s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

inline Bytes to_bytes(BytesView v) { return Bytes(v.begin(), v.end()); }

template <typename T>
BytesView as_bytes_view(const T& pod) {
  static_assert(std::is_trivially_copyable_v<T>);
  return BytesView(reinterpret_cast<const std::byte*>(&pod), sizeof(T));
}

/// Appends `view` to `out`.
inline void append(Bytes& out, BytesView view) { out.insert(out.end(), view.begin(), view.end()); }

/// Sequential big-endian writer over a caller-provided buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::span<std::byte> buf) : buf_(buf) {}

  std::size_t written() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) {
    const std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
    raw(b, 2);
  }
  void u32(std::uint32_t v) {
    const std::uint8_t b[4] = {
        static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
        static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
    raw(b, 4);
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(BytesView v) { raw(v.data(), v.size()); }
  void zeros(std::size_t n) {
    NCS_ASSERT(n <= remaining());
    std::memset(buf_.data() + pos_, 0, n);
    pos_ += n;
  }

 private:
  void raw(const void* p, std::size_t n) {
    NCS_ASSERT_MSG(n <= remaining(), "ByteWriter overflow");
    // An empty BytesView has a null data(); memcpy's pointers are declared
    // nonnull even for n == 0.
    if (n != 0) std::memcpy(buf_.data() + pos_, p, n);
    pos_ += n;
  }

  std::span<std::byte> buf_;
  std::size_t pos_ = 0;
};

/// Sequential big-endian reader over a view.
class ByteReader {
 public:
  explicit ByteReader(BytesView buf) : buf_(buf) {}

  std::size_t consumed() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, 1);
    return v;
  }
  std::uint16_t u16() {
    std::uint8_t b[2];
    raw(b, 2);
    return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
  }
  std::uint32_t u32() {
    std::uint8_t b[4];
    raw(b, 4);
    return (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
           (static_cast<std::uint32_t>(b[2]) << 8) | static_cast<std::uint32_t>(b[3]);
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  BytesView bytes(std::size_t n) {
    NCS_ASSERT_MSG(n <= remaining(), "ByteReader underflow");
    BytesView v = buf_.subspan(pos_, n);
    pos_ += n;
    return v;
  }
  void skip(std::size_t n) {
    NCS_ASSERT_MSG(n <= remaining(), "ByteReader underflow");
    pos_ += n;
  }

 private:
  void raw(void* p, std::size_t n) {
    NCS_ASSERT_MSG(n <= remaining(), "ByteReader underflow");
    if (n != 0) std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }

  BytesView buf_;
  std::size_t pos_ = 0;
};

}  // namespace ncs
