// Deterministic pseudo-random numbers.
//
// Every stochastic element of the simulation (loss injection, Ethernet
// backoff, synthetic workload data) draws from an explicitly-seeded stream
// so benchmark tables reproduce exactly run to run. SplitMix64 seeds a
// xoshiro256** state; both are tiny, fast and well studied.
#pragma once

#include <cstdint>

namespace ncs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p).
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace ncs
