// CRC generators used by the ATM substrate.
//
//  - CRC-32 (IEEE 802.3): AAL5 CPCS trailer and Ethernet FCS.
//  - CRC-10 (x^10+x^9+x^5+x^4+x+1): AAL3/4 per-cell protection.
//  - CRC-8 HEC (x^8+x^2+x+1, ATM I.432): cell header error control,
//    including the standard 0x55 coset XOR.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ncs {

/// IEEE 802.3 CRC-32 (reflected, init 0xFFFFFFFF, final XOR 0xFFFFFFFF).
std::uint32_t crc32_ieee(std::span<const std::byte> data);

/// Incremental form: feed chunks, then finalize.
class Crc32 {
 public:
  void update(std::span<const std::byte> data);
  std::uint32_t final() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// ITU-T I.363 AAL3/4 CRC-10 over `data` (non-reflected, init 0).
std::uint16_t crc10_aal34(std::span<const std::byte> data);

/// ATM HEC: CRC-8 over the first 4 header octets, XOR 0x55 (ITU-T I.432).
std::uint8_t hec_compute(const std::uint8_t header[4]);

/// True if `header[4]` equals the HEC of `header[0..3]`.
bool hec_verify(const std::uint8_t header[5]);

}  // namespace ncs
