#include "common/log.hpp"

#include <cstdarg>

namespace ncs::log {

namespace {
Level g_level = Level::warn;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::trace: return "TRACE";
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO";
    case Level::warn: return "WARN";
    case Level::error: return "ERROR";
    case Level::off: return "OFF";
  }
  return "?";
}
}  // namespace

Level level() { return g_level; }
void set_level(Level lvl) { g_level = lvl; }

namespace detail {

void vlogf(Level lvl, const char* tag, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] %s: ", level_name(lvl), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace ncs::log
