// Error handling for the runtime's fallible paths.
//
// Green threads switch stacks underneath C++; throwing across a context
// switch is undefined behaviour, so runtime and protocol code reports
// failures through Status/Result instead of exceptions. Exceptions remain
// acceptable at configuration/setup time (before any fiber runs).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/assert.hpp"

namespace ncs {

enum class ErrorCode {
  ok = 0,
  invalid_argument,
  not_found,
  already_exists,
  resource_exhausted,
  failed_precondition,
  out_of_range,
  data_corruption,   // CRC / length mismatch during reassembly
  timed_out,         // error-control retransmission budget exceeded
  connection_reset,  // peer process terminated
  unimplemented,
  internal,
};

const char* to_string(ErrorCode code);

/// Success-or-error, with an optional human-readable detail message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {
    NCS_ASSERT_MSG(code != ErrorCode::ok, "use default Status for success");
  }

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::ok; }
  explicit operator bool() const { return is_ok(); }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    std::string s = ncs::to_string(code_);
    if (!message_.empty()) { s += ": "; s += message_; }
    return s;
  }

 private:
  ErrorCode code_ = ErrorCode::ok;
  std::string message_;
};

/// A value or a Status describing why the value could not be produced.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {  // NOLINT: implicit by design
    NCS_ASSERT_MSG(!std::get<Status>(v_).is_ok(), "Result from OK status has no value");
  }

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    NCS_ASSERT_MSG(is_ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  T& value() & {
    NCS_ASSERT_MSG(is_ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  T&& value() && {
    NCS_ASSERT_MSG(is_ok(), "Result::value() on error");
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace ncs
