// Internal invariant checking.
//
// NCS_ASSERT is compiled in every build type: the simulator's determinism
// guarantees rest on these invariants, and the cost is negligible next to
// event dispatch. Failures print file:line and the expression, then abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ncs::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "NCS_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace ncs::detail

#define NCS_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::ncs::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define NCS_ASSERT_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) ::ncs::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// Marks unreachable control flow; aborts if reached.
#define NCS_UNREACHABLE(msg) ::ncs::detail::assert_fail("unreachable", __FILE__, __LINE__, (msg))
