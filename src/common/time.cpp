#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace ncs {

namespace {

std::string format_seconds(double s) {
  char buf[64];
  const double as = std::fabs(s);
  if (as >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.6fs", s);
  } else if (as >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3fms", s * 1e3);
  } else if (as >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3fus", s * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fns", s * 1e9);
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return format_seconds(sec()); }
std::string TimePoint::to_string() const { return format_seconds(sec()); }

}  // namespace ncs
