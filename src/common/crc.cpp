#include "common/crc.hpp"

#include <array>

namespace ncs {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint16_t, 256> make_crc10_table() {
  // Polynomial x^10 + x^9 + x^5 + x^4 + x + 1 -> 0x633 (non-reflected).
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i << 2;
    for (int k = 0; k < 8; ++k) c = (c & 0x200u) ? ((c << 1) ^ 0x633u) : (c << 1);
    table[i] = static_cast<std::uint16_t>(c & 0x3FFu);
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> make_crc8_table() {
  // HEC polynomial x^8 + x^2 + x + 1 -> 0x07.
  std::array<std::uint8_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 0x80u) ? ((c << 1) ^ 0x07u) : (c << 1);
    table[i] = static_cast<std::uint8_t>(c & 0xFFu);
  }
  return table;
}

constexpr auto kCrc32Table = make_crc32_table();
constexpr auto kCrc10Table = make_crc10_table();
constexpr auto kCrc8Table = make_crc8_table();

}  // namespace

void Crc32::update(std::span<const std::byte> data) {
  std::uint32_t c = state_;
  for (std::byte b : data)
    c = kCrc32Table[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32_ieee(std::span<const std::byte> data) {
  Crc32 crc;
  crc.update(data);
  return crc.final();
}

std::uint16_t crc10_aal34(std::span<const std::byte> data) {
  std::uint16_t c = 0;
  for (std::byte b : data) {
    const std::uint32_t idx = ((static_cast<std::uint32_t>(c) >> 2) ^ std::to_integer<std::uint32_t>(b)) & 0xFFu;
    c = static_cast<std::uint16_t>((static_cast<std::uint32_t>(c) << 8 ^ kCrc10Table[idx]) & 0x3FFu);
  }
  return c;
}

std::uint8_t hec_compute(const std::uint8_t header[4]) {
  std::uint8_t c = 0;
  for (int i = 0; i < 4; ++i) c = kCrc8Table[c ^ header[i]];
  return static_cast<std::uint8_t>(c ^ 0x55u);  // I.432 coset
}

bool hec_verify(const std::uint8_t header[5]) { return hec_compute(header) == header[4]; }

}  // namespace ncs
