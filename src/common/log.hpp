// Minimal leveled logging.
//
// Logging is for humans debugging the simulator; it never affects virtual
// time. The level is a process-global runtime setting (default: warn), and
// trace/debug statements compile away entirely in NDEBUG builds so the
// benchmark hot paths carry no formatting cost.
#pragma once

#include <cstdio>
#include <utility>

namespace ncs::log {

enum class Level : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

Level level();
void set_level(Level lvl);

namespace detail {
void vlogf(Level lvl, const char* tag, const char* fmt, ...) __attribute__((format(printf, 3, 4)));
}

#define NCS_LOG_AT(lvl, tag, ...)                                       \
  do {                                                                  \
    if (static_cast<int>(lvl) >= static_cast<int>(::ncs::log::level())) \
      ::ncs::log::detail::vlogf((lvl), (tag), __VA_ARGS__);             \
  } while (0)

#ifdef NDEBUG
#define NCS_TRACE(tag, ...) do {} while (0)
#define NCS_DEBUG(tag, ...) do {} while (0)
#else
#define NCS_TRACE(tag, ...) NCS_LOG_AT(::ncs::log::Level::trace, (tag), __VA_ARGS__)
#define NCS_DEBUG(tag, ...) NCS_LOG_AT(::ncs::log::Level::debug, (tag), __VA_ARGS__)
#endif
#define NCS_INFO(tag, ...) NCS_LOG_AT(::ncs::log::Level::info, (tag), __VA_ARGS__)
#define NCS_WARN(tag, ...) NCS_LOG_AT(::ncs::log::Level::warn, (tag), __VA_ARGS__)
#define NCS_ERROR(tag, ...) NCS_LOG_AT(::ncs::log::Level::error, (tag), __VA_ARGS__)

}  // namespace ncs::log
