// Intrusive doubly-linked list.
//
// This is the data structure the paper builds its scheduler from (Fig 9):
// the multi-level priority queue is one circular doubly-linked list per
// priority, and the blocked queue is another — doubly linked "to speed up
// search operation during unblocking of threads", i.e. O(1) removal from
// the middle given a pointer to the node. Intrusive linkage means a thread
// moves between queues without any allocation.
#pragma once

#include <cstddef>
#include <iterator>

#include "common/assert.hpp"

namespace ncs {

/// Embed one of these per list a type participates in.
/// A default-constructed hook is unlinked; destroying a linked hook aborts
/// (the owner must be removed from the list first).
class ListHook {
 public:
  ListHook() = default;
  ~ListHook() { NCS_ASSERT_MSG(!is_linked(), "destroying a ListHook that is still linked"); }

  ListHook(const ListHook&) = delete;
  ListHook& operator=(const ListHook&) = delete;

  bool is_linked() const { return next_ != nullptr; }

 private:
  template <typename T, ListHook T::*>
  friend class IntrusiveList;

  ListHook* prev_ = nullptr;
  ListHook* next_ = nullptr;
};

/// Doubly-linked list of T, linked through member hook `HookPtr`.
/// The list does not own its elements.
template <typename T, ListHook T::*HookPtr>
class IntrusiveList {
 public:
  IntrusiveList() { sentinel_.prev_ = sentinel_.next_ = &sentinel_; }
  ~IntrusiveList() {
    clear();
    // The sentinel is self-linked by construction; unlink it so its own
    // hook destructor does not misread it as a stranded element.
    sentinel_.prev_ = sentinel_.next_ = nullptr;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return sentinel_.next_ == &sentinel_; }
  std::size_t size() const { return size_; }

  void push_back(T& item) { insert_before(sentinel_, hook(item)); }
  void push_front(T& item) { insert_before(*sentinel_.next_, hook(item)); }

  T& front() {
    NCS_ASSERT(!empty());
    return *owner(sentinel_.next_);
  }
  T& back() {
    NCS_ASSERT(!empty());
    return *owner(sentinel_.prev_);
  }

  T& pop_front() {
    T& item = front();
    remove(item);
    return item;
  }

  /// O(1): unlink `item` from this list. `item` must be in this list.
  void remove(T& item) {
    ListHook& h = hook(item);
    NCS_ASSERT_MSG(h.is_linked(), "removing an unlinked item");
    h.prev_->next_ = h.next_;
    h.next_->prev_ = h.prev_;
    h.prev_ = h.next_ = nullptr;
    --size_;
  }

  /// Unlinks every element (does not destroy them).
  void clear() {
    while (!empty()) pop_front();
  }

  static bool is_linked(const T& item) { return (item.*HookPtr).is_linked(); }

  class iterator {
   public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    iterator() = default;
    explicit iterator(ListHook* pos) : pos_(pos) {}

    reference operator*() const { return *owner(pos_); }
    pointer operator->() const { return owner(pos_); }
    iterator& operator++() { pos_ = pos_->next_; return *this; }
    iterator operator++(int) { iterator t = *this; ++*this; return t; }
    iterator& operator--() { pos_ = pos_->prev_; return *this; }
    iterator operator--(int) { iterator t = *this; --*this; return t; }
    friend bool operator==(iterator a, iterator b) { return a.pos_ == b.pos_; }

   private:
    ListHook* pos_ = nullptr;
  };

  iterator begin() { return iterator(sentinel_.next_); }
  iterator end() { return iterator(&sentinel_); }

 private:
  static ListHook& hook(T& item) { return item.*HookPtr; }

  static T* owner(ListHook* h) {
    // Recover the T* from the embedded hook address.
    const auto offset = reinterpret_cast<std::ptrdiff_t>(
        &(reinterpret_cast<T const volatile*>(0x1000)->*HookPtr)) - 0x1000;
    return reinterpret_cast<T*>(reinterpret_cast<char*>(h) - offset);
  }

  void insert_before(ListHook& pos, ListHook& h) {
    NCS_ASSERT_MSG(!h.is_linked(), "inserting an already-linked item");
    h.prev_ = pos.prev_;
    h.next_ = &pos;
    pos.prev_->next_ = &h;
    pos.prev_ = &h;
    ++size_;
  }

  ListHook sentinel_;
  std::size_t size_ = 0;
};

}  // namespace ncs
