// Simulated time.
//
// The whole system runs on one virtual clock with integer picosecond
// resolution: fine enough to resolve single bit times on an OC-48 (2.4 Gbps)
// link (~417 ps) and wide enough (int64) for ~106 days of simulated time,
// orders of magnitude beyond the tens of seconds the paper's benchmarks run.
// Integer time is what makes event ordering — and therefore every benchmark
// table — bit-for-bit reproducible.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace ncs {

/// A span of simulated time. Internally int64 picoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration picoseconds(std::int64_t ps) { return Duration(ps); }
  static constexpr Duration nanoseconds(double ns) { return Duration(static_cast<std::int64_t>(ns * 1e3)); }
  static constexpr Duration microseconds(double us) { return Duration(static_cast<std::int64_t>(us * 1e6)); }
  static constexpr Duration milliseconds(double ms) { return Duration(static_cast<std::int64_t>(ms * 1e9)); }
  static constexpr Duration seconds(double s) { return Duration(static_cast<std::int64_t>(s * 1e12)); }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration infinite() { return Duration(INT64_MAX); }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr bool is_zero() const { return ps_ == 0; }
  constexpr bool is_negative() const { return ps_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.ps_ + b.ps_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.ps_ - b.ps_); }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration(a.ps_ * k); }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration(a.ps_ * k); }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration(a.ps_ / k); }
  constexpr Duration& operator+=(Duration o) { ps_ += o.ps_; return *this; }
  constexpr Duration& operator-=(Duration o) { ps_ -= o.ps_; return *this; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  /// Time to move `bytes` at `bits_per_second`, rounded up to a whole ps.
  static constexpr Duration for_bits(std::int64_t bits, double bits_per_second) {
    const double s = static_cast<double>(bits) / bits_per_second;
    return Duration(static_cast<std::int64_t>(s * 1e12 + 0.5));
  }
  static constexpr Duration for_bytes(std::int64_t bytes, double bits_per_second) {
    return for_bits(bytes * 8, bits_per_second);
  }

  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

/// An absolute point on the simulation clock.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint origin() { return TimePoint(); }
  static constexpr TimePoint from_ps(std::int64_t ps) { TimePoint t; t.ps_ = ps; return t; }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return from_ps(t.ps_ + d.ps()); }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return from_ps(t.ps_ - d.ps()); }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::picoseconds(a.ps_ - b.ps_);
  }
  constexpr TimePoint& operator+=(Duration d) { ps_ += d.ps(); return *this; }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  std::string to_string() const;

 private:
  std::int64_t ps_ = 0;
};

constexpr TimePoint max(TimePoint a, TimePoint b) { return a < b ? b : a; }
constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }
constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }

namespace literals {
constexpr Duration operator""_ps(unsigned long long v) { return Duration::picoseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ns(unsigned long long v) { return Duration::nanoseconds(static_cast<double>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::microseconds(static_cast<double>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::milliseconds(static_cast<double>(v)); }
constexpr Duration operator""_sec(unsigned long long v) { return Duration::seconds(static_cast<double>(v)); }
}  // namespace literals

}  // namespace ncs
