#include "atm/network.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace ncs::atm {

AtmLan::AtmLan(sim::Engine& engine, LanConfig config) {
  NCS_ASSERT(config.n_hosts >= 1);
  switch_ = std::make_unique<Switch>(engine, config.sw, "lan-switch");

  for (int i = 0; i < config.n_hosts; ++i) {
    links_.push_back(std::make_unique<net::DuplexLink>(engine, config.host_link,
                                                       "taxi" + std::to_string(i)));
    nics_.push_back(std::make_unique<Nic>(engine, config.nic, "nic" + std::to_string(i)));
  }
  // Switch port i transmits down link i toward NIC i; NIC i transmits up
  // link i into the switch, arriving tagged with in_port = i.
  for (int i = 0; i < config.n_hosts; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const int port = switch_->add_port(links_[ui]->backward(), *nics_[ui], 0);
    NCS_ASSERT(port == i);
    nics_[ui]->attach(links_[ui]->forward(), *switch_, i);
  }
  for (int i = 0; i < config.n_hosts; ++i)
    for (int j = 0; j < config.n_hosts; ++j)
      switch_->add_route(i, vc_to(j), j, vc_to(i));
  // RMA plane: the same mesh shifted into the kRmaVciBase label range.
  for (int i = 0; i < config.n_hosts; ++i)
    for (int j = 0; j < config.n_hosts; ++j)
      switch_->add_route(i, rma_vc_to(j), j, rma_vc_to(i));
  // NIC-collective plane: a third mesh in the kCollVciBase range, added
  // last so the data/RMA label assignment stays byte-identical.
  for (int i = 0; i < config.n_hosts; ++i)
    for (int j = 0; j < config.n_hosts; ++j)
      switch_->add_route(i, coll_vc_to(j), j, coll_vc_to(i));
}

AtmWan::AtmWan(sim::Engine& engine, WanConfig config) {
  NCS_ASSERT(config.n_hosts >= 2);
  site0_hosts_ = (config.n_hosts + 1) / 2;

  switches_.push_back(std::make_unique<Switch>(engine, config.sw, "wan-switch0"));
  switches_.push_back(std::make_unique<Switch>(engine, config.sw, "wan-switch1"));

  // Per-site local port index of each host.
  std::vector<int> local_port(static_cast<std::size_t>(config.n_hosts));
  int counts[2] = {0, 0};
  for (int i = 0; i < config.n_hosts; ++i)
    local_port[static_cast<std::size_t>(i)] = counts[site_of(i)]++;
  local_port_ = local_port;

  for (int i = 0; i < config.n_hosts; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const int site = site_of(i);
    links_.push_back(std::make_unique<net::DuplexLink>(engine, config.host_link,
                                                       "taxi" + std::to_string(i)));
    nics_.push_back(std::make_unique<Nic>(engine, config.nic, "nic" + std::to_string(i)));
    Switch& sw = *switches_[static_cast<std::size_t>(site)];
    const int port = sw.add_port(links_[ui]->backward(), *nics_[ui], 0);
    NCS_ASSERT(port == local_port[ui]);
    nics_[ui]->attach(links_[ui]->forward(), sw, port);
  }

  // Backbone: one duplex link between the two site switches; its switch
  // port index is counts[site] (the port after all host ports).
  links_.push_back(std::make_unique<net::DuplexLink>(engine, config.backbone, "sonet"));
  net::DuplexLink& bb = *links_.back();
  const int bb_port0 = switches_[0]->add_port(bb.forward(), *switches_[1], counts[1]);
  const int bb_port1 = switches_[1]->add_port(bb.backward(), *switches_[0], counts[0]);
  NCS_ASSERT(bb_port0 == counts[0]);
  NCS_ASSERT(bb_port1 == counts[1]);
  const int bb_in_port[2] = {counts[0], counts[1]};
  backbone_port_[0] = bb_port0;
  backbone_port_[1] = bb_port1;

  for (int i = 0; i < config.n_hosts; ++i) {
    for (int j = 0; j < config.n_hosts; ++j) {
      const int si = site_of(i);
      const int sj = site_of(j);
      const int pi = local_port[static_cast<std::size_t>(i)];
      const int pj = local_port[static_cast<std::size_t>(j)];
      if (si == sj) {
        switches_[static_cast<std::size_t>(si)]->add_route(pi, vc_to(j), pj, vc_to(i));
        switches_[static_cast<std::size_t>(si)]->add_route(pi, rma_vc_to(j), pj, rma_vc_to(i));
        switches_[static_cast<std::size_t>(si)]->add_route(pi, coll_vc_to(j), pj, coll_vc_to(i));
      } else {
        // Ingress switch: host uplink -> backbone, with a per-pair backbone
        // label in VPI 1 space. Egress switch: backbone -> host downlink.
        // The RMA plane crosses on its own per-pair labels in VPI 2.
        const VcId bb_vc{1, static_cast<std::uint16_t>(i * 256 + j)};
        switches_[static_cast<std::size_t>(si)]->add_route(
            pi, vc_to(j), /*out_port=*/bb_in_port[si], bb_vc);
        switches_[static_cast<std::size_t>(sj)]->add_route(bb_in_port[sj], bb_vc, pj, vc_to(i));
        const VcId bb_rma{2, static_cast<std::uint16_t>(i * 256 + j)};
        switches_[static_cast<std::size_t>(si)]->add_route(
            pi, rma_vc_to(j), /*out_port=*/bb_in_port[si], bb_rma);
        switches_[static_cast<std::size_t>(sj)]->add_route(bb_in_port[sj], bb_rma, pj,
                                                           rma_vc_to(i));
        // NIC-collective plane crosses on its own per-pair labels in VPI 3.
        const VcId bb_coll{3, static_cast<std::uint16_t>(i * 256 + j)};
        switches_[static_cast<std::size_t>(si)]->add_route(
            pi, coll_vc_to(j), /*out_port=*/bb_in_port[si], bb_coll);
        switches_[static_cast<std::size_t>(sj)]->add_route(bb_in_port[sj], bb_coll, pj,
                                                           coll_vc_to(i));
      }
    }
  }
}

AtmMultiWan::AtmMultiWan(sim::Engine& engine, MultiWanConfig config) {
  NCS_ASSERT(config.n_hosts >= 1);
  NCS_ASSERT(config.n_sites >= 1 && config.n_sites <= config.n_hosts);
  const int n_sites = config.n_sites;

  // Contiguous near-equal host blocks: the first (n_hosts % n_sites) sites
  // take one extra host.
  const int base = config.n_hosts / n_sites;
  const int extra = config.n_hosts % n_sites;
  std::vector<int> n_local(static_cast<std::size_t>(n_sites));
  for (int s = 0; s < n_sites; ++s)
    n_local[static_cast<std::size_t>(s)] = base + (s < extra ? 1 : 0);

  for (int s = 0; s < n_sites; ++s)
    switches_.push_back(
        std::make_unique<Switch>(engine, config.sw, "wan-switch" + std::to_string(s)));
  left_port_.assign(static_cast<std::size_t>(n_sites), -1);
  right_port_.assign(static_cast<std::size_t>(n_sites), -1);
  next_label_right_.assign(static_cast<std::size_t>(n_sites - 1), 1);
  next_label_left_.assign(static_cast<std::size_t>(n_sites - 1), 1);

  // Host ports first, so every site's hop ports start at n_local(site).
  int site = 0, filled = 0;
  for (int i = 0; i < config.n_hosts; ++i) {
    if (filled == n_local[static_cast<std::size_t>(site)]) {
      ++site;
      filled = 0;
    }
    site_of_.push_back(site);
    local_port_.push_back(filled++);
    const auto ui = static_cast<std::size_t>(i);
    links_.push_back(std::make_unique<net::DuplexLink>(engine, config.host_link,
                                                       "taxi" + std::to_string(i)));
    nics_.push_back(std::make_unique<Nic>(engine, config.nic, "nic" + std::to_string(i)));
    Switch& sw = *switches_[static_cast<std::size_t>(site)];
    const int port = sw.add_port(links_[ui]->backward(), *nics_[ui], 0);
    NCS_ASSERT(port == local_port_[ui]);
    nics_[ui]->attach(links_[ui]->forward(), sw, port);
  }

  // Chain hops, left to right. Processing in order guarantees site s's left
  // port (added by hop s-1) exists before its right port, so port indices
  // are n_local(s) for the left hop and n_local(s)+1 for the right.
  for (int h = 0; h + 1 < n_sites; ++h) {
    const auto uh = static_cast<std::size_t>(h);
    links_.push_back(
        std::make_unique<net::DuplexLink>(engine, config.backbone, "sonet" + std::to_string(h)));
    net::DuplexLink& bb = *links_.back();
    Switch& left = *switches_[uh];
    Switch& right = *switches_[uh + 1];
    // The right switch's left port index is known before add_port: host
    // ports only, since its own right port (hop h+1) is not added yet.
    const int right_in = n_local[uh + 1];
    right_port_[uh] = left.add_port(bb.forward(), right, right_in);
    left_port_[uh + 1] = right.add_port(bb.backward(), left, right_port_[uh]);
    NCS_ASSERT(left_port_[uh + 1] == right_in);
  }

  std::vector<std::pair<int, int>> pairs;
  if (config.provision.empty()) {
    for (int i = 0; i < config.n_hosts; ++i)
      for (int j = 0; j < config.n_hosts; ++j)
        if (i != j) pairs.emplace_back(i, j);
  } else {
    std::sort(config.provision.begin(), config.provision.end());
    config.provision.erase(
        std::unique(config.provision.begin(), config.provision.end()),
        config.provision.end());
    for (const auto& [i, j] : config.provision) {
      NCS_ASSERT(i >= 0 && i < config.n_hosts && j >= 0 && j < config.n_hosts);
      if (i != j) pairs.emplace_back(i, j);
    }
  }
  // Data plane first, then the RMA plane, then the NIC-collective plane,
  // each as its own pass, so the earlier planes' backbone label assignment
  // is byte-identical with or without the later subsystems in play (chaos
  // digests must not move).
  for (const auto& [i, j] : pairs) provision_pair(i, j, Plane::data);
  for (const auto& [i, j] : pairs) provision_pair(i, j, Plane::rma);
  for (const auto& [i, j] : pairs) provision_pair(i, j, Plane::coll);
}

void AtmMultiWan::provision_pair(int src, int dst, Plane plane) {
  const int si = site_of(src);
  const int sj = site_of(dst);
  const int pi = local_port_[static_cast<std::size_t>(src)];
  const int pj = local_port_[static_cast<std::size_t>(dst)];
  Switch& in_sw = *switches_[static_cast<std::size_t>(si)];
  Switch& out_sw = *switches_[static_cast<std::size_t>(sj)];
  const VcId dst_vc = plane == Plane::rma    ? rma_vc_to(dst)
                      : plane == Plane::coll ? coll_vc_to(dst)
                                             : vc_to(dst);
  const VcId src_vc = plane == Plane::rma    ? rma_vc_to(src)
                      : plane == Plane::coll ? coll_vc_to(src)
                                             : vc_to(src);
  if (si == sj) {
    in_sw.add_route(pi, dst_vc, pj, src_vc);
    return;
  }

  // One fresh VPI-1 label per directed hop the path crosses; each switch
  // along the way rewrites the previous hop's label into the next one.
  const int step = si < sj ? 1 : -1;
  VcId prev = dst_vc;
  int prev_in_port = pi;
  for (int s = si; s != sj; s += step) {
    const auto hop = static_cast<std::size_t>(step > 0 ? s : s - 1);
    std::uint32_t& next = step > 0 ? next_label_right_[hop] : next_label_left_[hop];
    NCS_ASSERT_MSG(next <= 0xFFFF,
                   "backbone hop out of VPI-1 labels; provision fewer pairs");
    const VcId lab{1, static_cast<std::uint16_t>(next++)};
    const int out_port =
        step > 0 ? right_port_[static_cast<std::size_t>(s)] : left_port_[static_cast<std::size_t>(s)];
    switches_[static_cast<std::size_t>(s)]->add_route(prev_in_port, prev, out_port, lab);
    prev = lab;
    prev_in_port = step > 0 ? left_port_[static_cast<std::size_t>(s + 1)]
                            : right_port_[static_cast<std::size_t>(s - 1)];
  }
  out_sw.add_route(prev_in_port, prev, pj, src_vc);
}

int AtmMultiWan::labels_used(int site, bool rightward) const {
  const auto hop = static_cast<std::size_t>(site);
  const std::uint32_t next =
      rightward ? next_label_right_[hop] : next_label_left_[hop];
  return static_cast<int>(next - 1);
}

}  // namespace ncs::atm
