#include "atm/network.hpp"

#include <string>

#include "common/assert.hpp"

namespace ncs::atm {

AtmLan::AtmLan(sim::Engine& engine, LanConfig config) {
  NCS_ASSERT(config.n_hosts >= 1);
  switch_ = std::make_unique<Switch>(engine, config.sw, "lan-switch");

  for (int i = 0; i < config.n_hosts; ++i) {
    links_.push_back(std::make_unique<net::DuplexLink>(engine, config.host_link,
                                                       "taxi" + std::to_string(i)));
    nics_.push_back(std::make_unique<Nic>(engine, config.nic, "nic" + std::to_string(i)));
  }
  // Switch port i transmits down link i toward NIC i; NIC i transmits up
  // link i into the switch, arriving tagged with in_port = i.
  for (int i = 0; i < config.n_hosts; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const int port = switch_->add_port(links_[ui]->backward(), *nics_[ui], 0);
    NCS_ASSERT(port == i);
    nics_[ui]->attach(links_[ui]->forward(), *switch_, i);
  }
  for (int i = 0; i < config.n_hosts; ++i)
    for (int j = 0; j < config.n_hosts; ++j)
      switch_->add_route(i, vc_to(j), j, vc_to(i));
}

AtmWan::AtmWan(sim::Engine& engine, WanConfig config) {
  NCS_ASSERT(config.n_hosts >= 2);
  site0_hosts_ = (config.n_hosts + 1) / 2;

  switches_.push_back(std::make_unique<Switch>(engine, config.sw, "wan-switch0"));
  switches_.push_back(std::make_unique<Switch>(engine, config.sw, "wan-switch1"));

  // Per-site local port index of each host.
  std::vector<int> local_port(static_cast<std::size_t>(config.n_hosts));
  int counts[2] = {0, 0};
  for (int i = 0; i < config.n_hosts; ++i)
    local_port[static_cast<std::size_t>(i)] = counts[site_of(i)]++;
  local_port_ = local_port;

  for (int i = 0; i < config.n_hosts; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const int site = site_of(i);
    links_.push_back(std::make_unique<net::DuplexLink>(engine, config.host_link,
                                                       "taxi" + std::to_string(i)));
    nics_.push_back(std::make_unique<Nic>(engine, config.nic, "nic" + std::to_string(i)));
    Switch& sw = *switches_[static_cast<std::size_t>(site)];
    const int port = sw.add_port(links_[ui]->backward(), *nics_[ui], 0);
    NCS_ASSERT(port == local_port[ui]);
    nics_[ui]->attach(links_[ui]->forward(), sw, port);
  }

  // Backbone: one duplex link between the two site switches; its switch
  // port index is counts[site] (the port after all host ports).
  links_.push_back(std::make_unique<net::DuplexLink>(engine, config.backbone, "sonet"));
  net::DuplexLink& bb = *links_.back();
  const int bb_port0 = switches_[0]->add_port(bb.forward(), *switches_[1], counts[1]);
  const int bb_port1 = switches_[1]->add_port(bb.backward(), *switches_[0], counts[0]);
  NCS_ASSERT(bb_port0 == counts[0]);
  NCS_ASSERT(bb_port1 == counts[1]);
  const int bb_in_port[2] = {counts[0], counts[1]};
  backbone_port_[0] = bb_port0;
  backbone_port_[1] = bb_port1;

  for (int i = 0; i < config.n_hosts; ++i) {
    for (int j = 0; j < config.n_hosts; ++j) {
      const int si = site_of(i);
      const int sj = site_of(j);
      const int pi = local_port[static_cast<std::size_t>(i)];
      const int pj = local_port[static_cast<std::size_t>(j)];
      if (si == sj) {
        switches_[static_cast<std::size_t>(si)]->add_route(pi, vc_to(j), pj, vc_to(i));
      } else {
        // Ingress switch: host uplink -> backbone, with a per-pair backbone
        // label in VPI 1 space. Egress switch: backbone -> host downlink.
        const VcId bb_vc{1, static_cast<std::uint16_t>(i * 256 + j)};
        switches_[static_cast<std::size_t>(si)]->add_route(
            pi, vc_to(j), /*out_port=*/bb_in_port[si], bb_vc);
        switches_[static_cast<std::size_t>(sj)]->add_route(bb_in_port[sj], bb_vc, pj, vc_to(i));
      }
    }
  }
}

}  // namespace ncs::atm
