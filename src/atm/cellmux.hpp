// Per-VC cell-interleaved link scheduling.
//
// The defining property of ATM — and the reason the paper's VOD/QOS story
// is told over ATM at all — is that traffic is multiplexed in 53-byte
// cells: an urgent stream's cells interleave with a bulk transfer's at
// per-cell granularity (~3 us on TAXI), instead of waiting behind whole
// frames or messages. The main data plane forwards per-burst (a
// deliberate, property-tested timing simplification that is exact when
// flows do not contend); CellMux is the cell-accurate scheduler for
// studying exactly the contended case: round-robin across VCs, one cell
// per turn. Setting `interleave = false` degrades it to burst-at-once
// FIFO — the head-of-line blocking a frame-based network would impose —
// which the ablation bench quantifies.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "atm/burst.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace ncs::atm {

class CellMux {
 public:
  CellMux(sim::Engine& engine, net::Link& link, CellSink& peer, int peer_port);

  /// Round-robin per-VC cell interleaving (true) or burst-at-once FIFO.
  void set_interleave(bool on) { interleave_ = on; }

  /// Queues a burst. Its payload is delivered to the peer when its last
  /// cell arrives.
  void submit(Burst burst);

  struct Stats {
    std::uint64_t bursts = 0;
    std::uint64_t cells_sent = 0;
    std::uint64_t turns = 0;  // scheduler decisions
  };
  const Stats& stats() const { return stats_; }

  /// Registers the mux's counters under `prefix` (e.g. "p0/cellmux").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

  /// Per-burst delivery spans (submit -> last cell out) go onto `track`.
  void set_trace(obs::TraceLog* trace, int track) {
    trace_ = trace;
    trace_track_ = track;
  }

  /// Per-burst queueing+serialization delay (submit -> last cell out)
  /// feeds Layer::mux_queue — the contended-link wait the interleaving
  /// ablation studies.
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

  /// Introspection for the SVC-churn regression tests: both must stay
  /// bounded by the number of *currently backlogged* VCs, not by every VC
  /// ever seen.
  std::size_t rr_ring_size() const { return rr_order_.size(); }
  std::size_t flow_count() const { return flows_.size(); }

  /// Bursts queued and not yet fully serialized, across every VC (plus the
  /// FIFO in non-interleaved mode) — the telemetry VC-backlog probe.
  std::size_t backlog() const {
    std::size_t n = fifo_.size();
    for (const auto& kv : flows_) n += kv.second.bursts.size();
    return n;
  }

 private:
  struct Flow {
    std::deque<Burst> bursts;
    std::deque<TimePoint> enqueued;  // submit time of each queued burst
    std::uint32_t cells_left_in_head = 0;
    bool in_ring = false;
  };

  void pump();
  Flow* next_flow();
  /// Burst leaves the mux: trace span + profiler sample over its wait.
  void note_delivered(const Burst& burst, TimePoint submitted);

  sim::Engine& engine_;
  net::Link& link_;
  CellSink& peer_;
  int peer_port_;
  bool interleave_ = true;
  bool transmitting_ = false;

  std::map<VcId, Flow> flows_;
  std::vector<VcId> rr_order_;
  std::size_t rr_pos_ = 0;
  std::deque<Burst> fifo_;  // non-interleaved mode
  std::deque<TimePoint> fifo_enqueued_;

  obs::TraceLog* trace_ = nullptr;
  int trace_track_ = -1;
  obs::Profiler* prof_ = nullptr;
  Stats stats_;
};

}  // namespace ncs::atm
