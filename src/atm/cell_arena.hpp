// Pooled storage for materialized cell trains (detailed-cells mode).
//
// The event path stopped allocating in the calendar-queue rework; the SAR
// data path still built a fresh std::vector<Cell> per segmented PDU. At
// simulated line rate that is one heap round-trip per chunk per hop —
// exactly the churn the event-node arena eliminated. CellArena recycles
// the vectors' capacity: a released train keeps its buffer and the next
// segmentation of a same-sized PDU reuses it, so steady-state traffic
// performs zero cell-storage allocations (asserted by bench/scale_sweep's
// census, mirroring the EventFn check).
//
// CellBuffer is the user-facing handle: a vector<Cell> facade that
// acquires pooled storage lazily on first growth and returns it to the
// arena on destruction. The simulation is single-threaded, so one
// process-wide arena needs no locking; pooling only changes where the
// bytes live, never simulated behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atm/cell.hpp"

namespace ncs::atm {

class CellArena {
 public:
  static CellArena& instance();

  /// Pooled storage with capacity >= `n` if available (first fit), else an
  /// empty fresh vector. Returned cleared.
  std::vector<Cell> acquire(std::size_t n);

  /// Returns a buffer's storage to the pool (contents discarded, capacity
  /// kept). Zero-capacity and beyond-bound buffers are simply dropped.
  void release(std::vector<Cell>&& v);

  /// Drops all pooled storage (tests; steady state never calls this).
  void trim();

  std::size_t pooled() const { return pool_.size(); }

  struct Census {
    std::uint64_t acquires = 0;    // total acquire() calls
    std::uint64_t pool_hits = 0;   // served from the pool with enough capacity
    std::uint64_t heap_allocs = 0; // vector buffer allocations (fresh or grow)
    std::uint64_t releases = 0;    // buffers returned to the pool
  };
  static const Census& census() { return census_; }
  static void reset_census() { census_ = Census{}; }
  /// CellBuffer reports its growth reallocations here.
  static void note_heap_alloc() { ++census_.heap_allocs; }

 private:
  static constexpr std::size_t kMaxPooled = 4096;
  std::vector<std::vector<Cell>> pool_;
  static Census census_;
};

/// A cell train backed by arena-recycled storage. Supports the slice of
/// the std::vector API the SAR/switch/test code uses; copying deep-copies
/// into freshly acquired storage (bursts are occasionally copied in
/// tests and fan-out paths).
class CellBuffer {
 public:
  CellBuffer() = default;
  ~CellBuffer() { release_storage(); }

  CellBuffer(CellBuffer&& o) noexcept : v_(std::move(o.v_)) { o.v_ = {}; }
  CellBuffer& operator=(CellBuffer&& o) noexcept {
    if (this != &o) {
      release_storage();
      v_ = std::move(o.v_);
      o.v_ = {};
    }
    return *this;
  }

  CellBuffer(const CellBuffer& o) { assign(o); }
  CellBuffer& operator=(const CellBuffer& o) {
    if (this != &o) {
      v_.clear();
      assign(o);
    }
    return *this;
  }

  void reserve(std::size_t n) { grow_to(n); }
  void resize(std::size_t n) {
    grow_to(n);
    v_.resize(n);
  }
  void push_back(const Cell& c) {
    if (v_.size() == v_.capacity()) grow_to(next_capacity());
    v_.push_back(c);
  }
  void clear() { v_.clear(); }  // keeps storage

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  Cell& operator[](std::size_t i) { return v_[i]; }
  const Cell& operator[](std::size_t i) const { return v_[i]; }
  Cell* begin() { return v_.data(); }
  Cell* end() { return v_.data() + v_.size(); }
  const Cell* begin() const { return v_.data(); }
  const Cell* end() const { return v_.data() + v_.size(); }
  Cell& front() { return v_.front(); }
  Cell& back() { return v_.back(); }

 private:
  void grow_to(std::size_t n);
  std::size_t next_capacity() const {
    const std::size_t cap = v_.capacity();
    return cap == 0 ? 8 : cap * 2;
  }
  void assign(const CellBuffer& o) {
    grow_to(o.size());
    v_.assign(o.begin(), o.end());
  }
  void release_storage() {
    if (v_.capacity() > 0) CellArena::instance().release(std::move(v_));
  }

  std::vector<Cell> v_;
};

}  // namespace ncs::atm
