#include "atm/cell.hpp"

#include <cstring>

#include "common/crc.hpp"

namespace ncs::atm {

void Cell::pack(std::span<std::byte, kSize> out) const {
  std::uint8_t h[4];
  h[0] = static_cast<std::uint8_t>((header.gfc & 0x0F) << 4 | (header.vpi >> 4));
  h[1] = static_cast<std::uint8_t>((header.vpi & 0x0F) << 4 | (header.vci >> 12));
  h[2] = static_cast<std::uint8_t>((header.vci >> 4) & 0xFF);
  h[3] = static_cast<std::uint8_t>((header.vci & 0x0F) << 4 | (header.pti & 0x7) << 1 |
                                   (header.clp ? 1 : 0));
  for (int i = 0; i < 4; ++i) out[static_cast<std::size_t>(i)] = static_cast<std::byte>(h[i]);
  out[4] = static_cast<std::byte>(hec_compute(h));
  std::memcpy(out.data() + kHeaderSize, payload.data(), kPayloadSize);
}

Result<Cell> Cell::unpack(std::span<const std::byte, kSize> in) {
  std::uint8_t h[5];
  for (int i = 0; i < 5; ++i) h[i] = static_cast<std::uint8_t>(in[static_cast<std::size_t>(i)]);
  if (!hec_verify(h)) return Status(ErrorCode::data_corruption, "ATM header HEC mismatch");

  Cell cell;
  cell.header.gfc = static_cast<std::uint8_t>(h[0] >> 4);
  cell.header.vpi = static_cast<std::uint8_t>((h[0] & 0x0F) << 4 | (h[1] >> 4));
  cell.header.vci = static_cast<std::uint16_t>((h[1] & 0x0F) << 12 | (h[2] << 4) | (h[3] >> 4));
  cell.header.pti = static_cast<std::uint8_t>((h[3] >> 1) & 0x7);
  cell.header.clp = (h[3] & 0x1) != 0;
  std::memcpy(cell.payload.data(), in.data() + kHeaderSize, kPayloadSize);
  return cell;
}

}  // namespace ncs::atm
