// NIC-resident combine/forward collectives, modeled as i960 firmware.
//
// The Quadrics/Myrinet NIC-barrier result: a combining tree run by the
// adapters beats any host-level algorithm, because interior hops never wake
// a host thread. This module reproduces that on the SBA-200 model: a
// collective context programmed per group (parent/children in a radix-k
// tree rooted at rank 0, expected arity) plus a per-operation state table
// keyed by sequence number. Contribution PDUs arrive on the kCollVciBase
// plane, terminate in firmware (Nic::set_firmware_range — no RX DMA, no
// upcall), are folded in firmware time on a dedicated execution unit, and
// one combined PDU is forwarded upstream via Nic::firmware_tx (sharing the
// SAR engine with host traffic). Only the final result crosses the SBus.
//
// Operation kinds:
//   barrier    empty contributions; arity-only combine.
//   allreduce  packed-doubles contributions; elementwise sum folded in the
//              offload tree order (own, then children ascending) so the
//              host fallback (coll::tree_fold) is bit-identical.
//   bcast      root-0 push: the root's contribution is forwarded straight
//              down the tree; non-roots contribute nothing.
//
// Fault story: there is no firmware-level retransmission. A lost cell
// (LinkFault/SwitchFault/corruption) stalls the operation; the host times
// out, abort_op() drops the partial accumulation and raises the
// fallen-back floor so *late* traffic for that sequence — a straggling
// contribution or a result that was already in flight — is counted and
// dropped instead of double-contributing into a restarted operation.
// teardown()/program() model SVC-style context re-establishment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "atm/nic.hpp"
#include "common/bytes.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace ncs::atm {

enum class CollKind : std::uint8_t { barrier = 0, allreduce = 1, bcast = 2 };

struct NicCollParams {
  /// Radix of the combine tree (must match coll::Params::offload_radix).
  int radix = 2;
  /// Host doorbell -> firmware visibility of a local contribution.
  Duration doorbell = Duration::microseconds(2);
  /// Firmware context-table lookup per arriving PDU.
  Duration context_lookup = Duration::nanoseconds(300);
  /// Firmware fold cost per 48-byte cell of contribution payload.
  Duration combine_per_cell = Duration::nanoseconds(900);
};

class NicCollEngine {
 public:
  /// Host completion upcall: fires once per completed operation, after the
  /// adapter->host RX DMA of the result (empty for barrier).
  using CompletionHandler = std::function<void(std::uint64_t seq, Bytes result)>;

  NicCollEngine(sim::Engine& engine, Nic& nic, NicCollParams params,
                std::string name = "nic-coll");

  /// Arms the context: programs parent/children VCs and expected arity for
  /// `rank` in a group of `n_procs`.
  void program(int rank, int n_procs);
  /// Drops the context and every pending accumulation (SVC teardown).
  void teardown();
  bool armed() const { return armed_; }

  /// Host injects its own contribution for operation `seq` (doorbell +
  /// firmware visibility delay). For bcast only rank 0 contributes.
  void contribute(std::uint64_t seq, CollKind kind, Bytes own);

  /// Abandons `seq`: erases its partial accumulation and raises the
  /// fallen-back floor so late traffic for it is dropped, never folded
  /// into a restarted operation.
  void abort_op(std::uint64_t seq);

  void set_completion(CompletionHandler h) { completion_ = std::move(h); }

  struct Stats {
    std::uint64_t programs = 0;
    std::uint64_t teardowns = 0;
    std::uint64_t combines = 0;     // child contributions folded
    std::uint64_t forwards = 0;     // firmware sends (up + down the tree)
    std::uint64_t completions = 0;  // host completion upcalls delivered
    std::uint64_t aborts = 0;
    std::uint64_t late_drops = 0;   // PDUs/doorbells for aborted or done seqs
  };
  const Stats& stats() const { return stats_; }
  /// Open per-operation accumulations — the leak-census probe.
  std::size_t pending_ops() const { return pending_.size(); }

  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;
  void set_trace(obs::TraceLog* trace, const std::string& prefix);
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

 private:
  struct Pending {
    CollKind kind = CollKind::barrier;
    bool have_own = false;
    Bytes own;
    std::map<int, Bytes> children;  // child rank -> folded subtree payload
  };

  void process(int src, Bytes pdu);
  void try_fire(std::uint64_t seq, Pending& p);
  void complete(std::uint64_t seq, CollKind kind, Bytes result, bool forward_down);
  void send(int dst, std::uint8_t msgkind, CollKind kind, std::uint64_t seq,
            BytesView payload);
  void drop_late(const char* what);

  sim::Engine& engine_;
  Nic& nic_;
  NicCollParams params_;
  std::string name_;

  bool armed_ = false;
  int rank_ = -1;
  int n_procs_ = 0;
  int parent_ = -1;
  std::vector<int> children_;

  /// Sequences below this are aborted or completed; their traffic drops.
  std::uint64_t floor_ = 0;
  std::map<std::uint64_t, Pending> pending_;

  /// The firmware collective execution unit: one fold/lookup at a time.
  sim::SerialResource fw_;

  CompletionHandler completion_;
  obs::TraceLog* trace_ = nullptr;
  int track_ = -1;
  obs::Profiler* prof_ = nullptr;
  Stats stats_;
};

}  // namespace ncs::atm
