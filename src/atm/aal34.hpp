// AAL3/4 segmentation and reassembly (ITU-T I.363).
//
// The older adaptation layer the paper's Fig 11/12 stacks show alongside
// AAL5. Far heavier per cell: each SAR-PDU spends 4 of the 48 payload bytes
// on a 2-byte header (segment type, sequence number, MID) and a 2-byte
// trailer (length indicator, CRC-10), so only 44 bytes carry data. The
// CPCS adds another 4-byte header (CPI, Btag, BASize) and 4-byte trailer
// (AL, Etag, Length) with begin/end tag matching. Implemented in full —
// per-cell CRC-10, sequence-number checking, Btag/Etag matching — both as
// an authentic substrate and as the contrast that motivated AAL5.
#pragma once

#include <cstdint>
#include <optional>

#include "atm/cell.hpp"
#include "atm/cell_arena.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"

namespace ncs::atm::aal34 {

enum class SegmentType : std::uint8_t {
  bom = 2,  // beginning of message
  com = 0,  // continuation
  eom = 1,  // end of message
  ssm = 3,  // single-segment message
};

inline constexpr std::size_t kSarPayloadSize = 44;
inline constexpr std::size_t kCpcsHeaderSize = 4;
inline constexpr std::size_t kCpcsTrailerSize = 4;

/// Number of cells to carry `payload_bytes` of user data.
std::size_t cell_count(std::size_t payload_bytes);

/// Segments one CPCS-PDU into SAR cells on `vc`. `mid` is the multiplexing
/// id shared by all cells of the message; `btag` disambiguates back-to-back
/// messages. payload.size() must be <= 65535 - 8.
CellBuffer segment(VcId vc, BytesView payload, std::uint16_t mid = 0,
                   std::uint8_t btag = 0);

/// Reassembler for a single MID stream.
class Reassembler {
 public:
  /// Feed cells in order. nullopt mid-message; payload on success; error
  /// Status on CRC-10 failure, sequence gap, tag mismatch or bad length.
  std::optional<Result<Bytes>> push(const Cell& cell);

  void reset();

 private:
  Result<Bytes> fail(const char* why);

  Bytes buffer_;
  bool in_message_ = false;
  std::uint8_t next_sn_ = 0;
  std::uint8_t btag_ = 0;
  std::uint16_t expected_total_ = 0;
};

}  // namespace ncs::atm::aal34
