// Output-buffered ATM switch (the FORE ASX role).
//
// Ports pair an outgoing link with the sink reachable over it. Forwarding:
// look up (input port, VPI/VCI) in the connection table, rewrite the label,
// and queue the burst on the output port's link after a fixed forwarding
// latency. Output contention is resolved by the link's FIFO serialization —
// the behaviour of an output-buffered switch under the paper's workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "atm/burst.hpp"
#include "common/time.hpp"
#include "fault/faults.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace ncs::atm {

struct SwitchParams {
  /// Per-burst lookup + cut-through latency (first-bit-in to first-bit-out).
  Duration forward_latency = Duration::microseconds(10);
};

class Switch : public CellSink {
 public:
  Switch(sim::Engine& engine, SwitchParams params, std::string name = "switch");

  /// Adds an output port transmitting on `out_link` towards `peer`, which
  /// will see the burst arrive on its `peer_port`. Returns the port index.
  int add_port(net::Link& out_link, CellSink& peer, int peer_port);

  /// Installs (in_port, in_vc) -> (out_port, out_vc). Duplicate entries abort.
  void add_route(int in_port, VcId in_vc, int out_port, VcId out_vc);

  /// Removes a route (call teardown). Returns false if absent.
  bool remove_route(int in_port, VcId in_vc);

  /// Registers a switch-local endpoint: bursts arriving on `vc` from any
  /// port are handed to `handler` (with the input port) instead of being
  /// forwarded — how the signaling channel terminates at the call
  /// controller.
  using LocalHandler = std::function<void(int, Burst)>;
  void add_local_endpoint(VcId vc, LocalHandler handler);

  /// Originates a burst from the switch itself onto `out_port` (control
  /// traffic towards a host).
  void send_local(int out_port, Burst burst);

  /// Link-delivery entry point.
  void accept(int in_port, Burst burst) override;

  struct Stats {
    std::uint64_t bursts = 0;
    std::uint64_t cells = 0;
    std::uint64_t unroutable = 0;
    std::uint64_t port_drops = 0;  // bursts eaten by a failed port
  };
  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  /// Per-port failure state. Bursts entering or leaving a downed port are
  /// dropped (and counted); the SVC call controllers subscribe here to
  /// release circuits through dead ports.
  fault::SwitchFault& fault() { return fault_; }

  /// Registers the switch's counters under `prefix` (e.g. "switch").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

  /// Forwarding spans (cut-through latency per burst) go onto `track`.
  void set_trace(obs::TraceLog* trace, int track) {
    trace_ = trace;
    trace_track_ = track;
  }

 private:
  struct Port {
    net::Link* link;
    CellSink* peer;
    int peer_port;
  };

  sim::Engine& engine_;
  SwitchParams params_;
  std::string name_;
  std::vector<Port> ports_;
  std::map<std::pair<int, VcId>, std::pair<int, VcId>> routes_;
  std::map<VcId, LocalHandler> local_;
  fault::SwitchFault fault_;
  obs::TraceLog* trace_ = nullptr;
  int trace_track_ = -1;
  Stats stats_;
};

}  // namespace ncs::atm
