#include "atm/switch.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::atm {

Switch::Switch(sim::Engine& engine, SwitchParams params, std::string name)
    : engine_(engine), params_(params), name_(std::move(name)) {}

int Switch::add_port(net::Link& out_link, CellSink& peer, int peer_port) {
  ports_.push_back(Port{&out_link, &peer, peer_port});
  return static_cast<int>(ports_.size()) - 1;
}

void Switch::add_route(int in_port, VcId in_vc, int out_port, VcId out_vc) {
  NCS_ASSERT(out_port >= 0 && static_cast<std::size_t>(out_port) < ports_.size());
  const bool inserted = routes_.emplace(std::make_pair(in_port, in_vc),
                                        std::make_pair(out_port, out_vc)).second;
  NCS_ASSERT_MSG(inserted, "duplicate VC route");
}

bool Switch::remove_route(int in_port, VcId in_vc) {
  return routes_.erase(std::make_pair(in_port, in_vc)) > 0;
}

void Switch::add_local_endpoint(VcId vc, LocalHandler handler) {
  NCS_ASSERT(handler != nullptr);
  const bool inserted = local_.emplace(vc, std::move(handler)).second;
  NCS_ASSERT_MSG(inserted, "duplicate local endpoint VC");
}

void Switch::send_local(int out_port, Burst burst) {
  NCS_ASSERT(out_port >= 0 && static_cast<std::size_t>(out_port) < ports_.size());
  if (fault_.port_down(out_port)) {
    ++fault_.stats().port_drops;
    ++stats_.port_drops;
    return;
  }
  Port& port = ports_[static_cast<std::size_t>(out_port)];
  engine_.schedule_after(params_.forward_latency,
                         [&port, b = std::move(burst)]() mutable {
                           CellSink* peer = port.peer;
                           const int peer_port = port.peer_port;
                           port.link->transmit(
                               b.wire_bytes(), nullptr,
                               [peer, peer_port, b2 = std::move(b)]() mutable {
                                 peer->accept(peer_port, std::move(b2));
                               });
                         });
}

void Switch::accept(int in_port, Burst burst) {
  if (fault_.port_down(in_port)) {
    // Dead ingress: the port's receiver is dark; nothing gets in.
    ++fault_.stats().port_drops;
    ++stats_.port_drops;
    if (trace_ != nullptr)
      trace_->instant(trace_track_, "port-drop in p" + std::to_string(in_port), "atm",
                      engine_.now());
    return;
  }
  if (const auto lit = local_.find(burst.vc); lit != local_.end()) {
    ++stats_.bursts;
    stats_.cells += burst.n_cells;
    lit->second(in_port, std::move(burst));
    return;
  }
  const auto it = routes_.find(std::make_pair(in_port, burst.vc));
  if (it == routes_.end()) {
    ++stats_.unroutable;
    NCS_WARN("atm.switch", "%s: no route for port %d vpi %u vci %u", name_.c_str(), in_port,
             burst.vc.vpi, burst.vc.vci);
    if (trace_ != nullptr)
      trace_->instant(trace_track_,
                      "unroutable vc" + std::to_string(burst.vc.vpi) + "." +
                          std::to_string(burst.vc.vci),
                      "atm", engine_.now());
    return;
  }
  const auto [out_port, out_vc] = it->second;
  if (fault_.port_down(out_port)) {
    // Dead egress: drop at the output buffer, as a real failed line card
    // would. Upstream recovery is error control's job.
    ++fault_.stats().port_drops;
    ++stats_.port_drops;
    if (trace_ != nullptr)
      trace_->instant(trace_track_, "port-drop out p" + std::to_string(out_port), "atm",
                      engine_.now());
    return;
  }
  ++stats_.bursts;
  stats_.cells += burst.n_cells;
  if (trace_ != nullptr)
    trace_->complete(trace_track_,
                     "fwd p" + std::to_string(in_port) + "->p" + std::to_string(out_port) +
                         " x" + std::to_string(burst.n_cells),
                     "atm", engine_.now(), params_.forward_latency);

  // Label rewriting (and, in detailed mode, per-cell header rewrite).
  burst.vc = out_vc;
  for (Cell& c : burst.cells) {
    c.header.vpi = out_vc.vpi;
    c.header.vci = out_vc.vci;
  }

  Port& port = ports_[static_cast<std::size_t>(out_port)];
  engine_.schedule_after(params_.forward_latency,
                         [this, &port, b = std::move(burst)]() mutable {
                           CellSink* peer = port.peer;
                           const int peer_port = port.peer_port;
                           port.link->transmit(
                               b.wire_bytes(), nullptr,
                               [peer, peer_port, b2 = std::move(b)]() mutable {
                                 peer->accept(peer_port, std::move(b2));
                               });
                         });
}

void Switch::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/bursts", &stats_.bursts);
  reg.counter(prefix + "/cells", &stats_.cells);
  reg.counter(prefix + "/unroutable", &stats_.unroutable);
  reg.counter(prefix + "/port_drops", &stats_.port_drops);
}

}  // namespace ncs::atm
