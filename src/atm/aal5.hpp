// AAL5 segmentation and reassembly (ITU-T I.363.5).
//
// The adaptation layer the FORE SBA-200 implements in adapter firmware and
// the one NCS's HSM path rides on. A CPCS-PDU is the user payload, zero
// padding, and an 8-byte trailer (CPCS-UU, CPI, 16-bit Length, CRC-32),
// padded so the whole PDU is a multiple of 48 bytes; the final cell is
// marked via PTI. Reassembly validates Length and CRC-32 and surfaces
// corruption as Status errors, which the error-control ablations exercise.
#pragma once

#include <cstdint>
#include <optional>

#include "atm/cell.hpp"
#include "atm/cell_arena.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"

namespace ncs::atm::aal5 {

inline constexpr std::size_t kTrailerSize = 8;
inline constexpr std::size_t kMaxPayload = 65535;

/// Number of cells needed to carry `payload_bytes` of user data.
constexpr std::size_t cell_count(std::size_t payload_bytes) {
  return (payload_bytes + kTrailerSize + Cell::kPayloadSize - 1) / Cell::kPayloadSize;
}

/// Bytes on the wire for `payload_bytes` of user data.
constexpr std::size_t wire_bytes(std::size_t payload_bytes) {
  return cell_count(payload_bytes) * Cell::kSize;
}

/// Builds the padded CPCS-PDU (payload + pad + trailer) for `payload`.
Bytes build_cpcs_pdu(BytesView payload, std::uint8_t cpcs_uu = 0);

/// Segments `payload` into cells on `vc`. The last cell carries the
/// end-of-PDU mark. payload.size() must be <= kMaxPayload.
CellBuffer segment(VcId vc, BytesView payload, std::uint8_t cpcs_uu = 0);

/// Per-VC reassembler: feed cells in order; returns the recovered payload
/// when an end-of-PDU cell completes a valid CPCS-PDU.
class Reassembler {
 public:
  /// Returns nullopt while mid-PDU; a payload on success; or a failed
  /// Result if the completed PDU has a bad CRC-32 or Length field
  /// (partial state is discarded either way).
  std::optional<Result<Bytes>> push(const Cell& cell);

  /// Bytes buffered for the in-progress PDU.
  std::size_t pending_bytes() const { return buffer_.size(); }
  void reset() { buffer_.clear(); }

 private:
  Bytes buffer_;
};

}  // namespace ncs::atm::aal5
