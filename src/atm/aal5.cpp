#include "atm/aal5.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/crc.hpp"

namespace ncs::atm::aal5 {

Bytes build_cpcs_pdu(BytesView payload, std::uint8_t cpcs_uu) {
  NCS_ASSERT_MSG(payload.size() <= kMaxPayload, "AAL5 payload exceeds 65535 bytes");
  const std::size_t total =
      (payload.size() + kTrailerSize + Cell::kPayloadSize - 1) / Cell::kPayloadSize *
      Cell::kPayloadSize;
  Bytes pdu(total, std::byte{0});
  // An empty payload has a null data(); memcpy's pointers are declared
  // nonnull even for n == 0.
  if (!payload.empty()) std::memcpy(pdu.data(), payload.data(), payload.size());

  // Trailer: CPCS-UU, CPI, Length, CRC-32 — the CRC covers everything
  // before its own field.
  ByteWriter w(std::span<std::byte>(pdu).subspan(total - kTrailerSize));
  w.u8(cpcs_uu);
  w.u8(0);  // CPI, must be 0
  w.u16(static_cast<std::uint16_t>(payload.size()));
  const std::uint32_t crc = crc32_ieee(BytesView(pdu).first(total - 4));
  w.u32(crc);
  return pdu;
}

CellBuffer segment(VcId vc, BytesView payload, std::uint8_t cpcs_uu) {
  const Bytes pdu = build_cpcs_pdu(payload, cpcs_uu);
  NCS_ASSERT(pdu.size() % Cell::kPayloadSize == 0);
  const std::size_t n = pdu.size() / Cell::kPayloadSize;

  CellBuffer cells;
  cells.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Cell& c = cells[i];
    c.header.vpi = vc.vpi;
    c.header.vci = vc.vci;
    c.header.set_aal5_end_of_pdu(i + 1 == n);
    std::memcpy(c.payload.data(), pdu.data() + i * Cell::kPayloadSize, Cell::kPayloadSize);
  }
  return cells;
}

std::optional<Result<Bytes>> Reassembler::push(const Cell& cell) {
  append(buffer_, BytesView(cell.payload));
  if (!cell.header.aal5_end_of_pdu()) return std::nullopt;

  Bytes pdu = std::move(buffer_);
  buffer_.clear();

  if (pdu.size() < Cell::kPayloadSize)
    return Result<Bytes>(Status(ErrorCode::data_corruption, "AAL5 PDU shorter than one cell"));

  const std::uint32_t expected_crc = crc32_ieee(BytesView(pdu).first(pdu.size() - 4));
  ByteReader r(BytesView(pdu).subspan(pdu.size() - kTrailerSize));
  r.u8();  // CPCS-UU
  r.u8();  // CPI
  const std::uint16_t length = r.u16();
  const std::uint32_t crc = r.u32();

  if (crc != expected_crc)
    return Result<Bytes>(Status(ErrorCode::data_corruption, "AAL5 CRC-32 mismatch"));
  // Length must be consistent with the padded PDU size: the payload plus
  // trailer must fit, with less than one extra cell of padding.
  const std::size_t needed = length + kTrailerSize;
  if (needed > pdu.size() || pdu.size() - needed >= Cell::kPayloadSize)
    return Result<Bytes>(Status(ErrorCode::data_corruption, "AAL5 length field inconsistent"));

  pdu.resize(length);
  return Result<Bytes>(std::move(pdu));
}

}  // namespace ncs::atm::aal5
