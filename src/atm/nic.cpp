#include "atm/nic.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::atm {

Nic::Nic(sim::Engine& engine, NicParams params, std::string name)
    : engine_(engine), params_(params), name_(std::move(name)) {
  NCS_ASSERT(params_.tx_buffers >= 1);
  NCS_ASSERT(params_.io_buffer_size >= 1);
  // The legacy knob becomes the uniform component of the fault state, on
  // the same seed and draw order as before fault/ existed.
  fault_.configure_uniform(params_.cell_corrupt_probability, params_.corrupt_seed);
}

void Nic::attach(net::Link& tx_link, CellSink& peer, int peer_port) {
  tx_link_ = &tx_link;
  peer_ = &peer;
  peer_port_ = peer_port;
}

void Nic::notify_tx_buffer(sim::EventFn cb) {
  NCS_ASSERT(cb != nullptr);
  if (tx_buffer_available()) {
    engine_.post(std::move(cb));
  } else {
    tx_waiters_.push_back(std::move(cb));
  }
}

void Nic::free_tx_buffer() {
  NCS_ASSERT(tx_buffers_in_use_ > 0);
  --tx_buffers_in_use_;
  if (!tx_waiters_.empty()) {
    // FIFO hand-off: one buffer freed wakes one waiter.
    sim::EventFn cb = std::move(tx_waiters_.front());
    tx_waiters_.erase(tx_waiters_.begin());
    engine_.post(std::move(cb));
  }
}

Duration Nic::tx_stage_time(std::size_t n) const {
  const auto cells = static_cast<std::int64_t>(cells_for(n));
  const Duration dma =
      params_.dma_setup + Duration::for_bytes(static_cast<std::int64_t>(n), params_.dma_bandwidth_bps);
  const Duration sar = params_.sar_setup + params_.sar_per_cell * cells;
  const Duration wire = tx_link_ != nullptr
                            ? tx_link_->tx_time(static_cast<std::size_t>(cells) * Cell::kSize)
                            : Duration::zero();
  return dma + sar + wire;
}

void Nic::submit_tx(VcId vc, Bytes chunk, bool end_of_message) {
  NCS_ASSERT_MSG(tx_link_ != nullptr && peer_ != nullptr, "NIC not attached");
  NCS_ASSERT_MSG(tx_buffer_available(), "submit_tx with no free buffer");
  NCS_ASSERT_MSG(chunk.size() <= params_.io_buffer_size, "chunk exceeds I/O buffer");
  ++tx_buffers_in_use_;
  const std::size_t chunk_bytes = chunk.size();

  Burst burst;
  burst.vc = vc;
  burst.end_of_message = end_of_message;
  if (params_.detailed_cells) {
    burst.cells = params_.adaptation == Adaptation::aal5
                      ? aal5::segment(vc, chunk)
                      : aal34::segment(vc, chunk, /*mid=*/0, next_btag_++);
    burst.n_cells = static_cast<std::uint32_t>(burst.cells.size());
    if (fault_.corrupting()) {
      // Transit fault injection: flip one payload bit in afflicted cells;
      // the receiving adapter's AAL CRC catches it.
      for (Cell& c : burst.cells) {
        if (fault_.draw_corrupt()) {
          ++fault_.stats().corrupted_cells;
          const auto at = fault_.draw_below(Cell::kPayloadSize);
          c.payload[at] ^= static_cast<std::byte>(1u << fault_.draw_below(8));
        }
      }
    }
  } else {
    burst.n_cells = static_cast<std::uint32_t>(cells_for(chunk.size()));
    burst.payload = std::move(chunk);
    if (fault_.corrupting()) {
      // Burst mode has no materialized cells to flip bits in; a corrupt
      // draw marks the PDU damaged and the receiver drops it at its CRC
      // check — the same per-cell Bernoulli process, same observable.
      for (std::uint32_t i = 0; i < burst.n_cells; ++i) {
        if (fault_.draw_corrupt()) {
          ++fault_.stats().corrupted_cells;
          burst.damaged = true;
        }
      }
    }
  }
  ++stats_.tx_chunks;
  stats_.tx_cells += burst.n_cells;

  // Pipeline: DMA then SAR are serial per-engine; the wire is entered via
  // an event at SAR completion so link FIFO order matches SAR order.
  const Duration dma_time =
      params_.dma_setup +
      Duration::for_bytes(static_cast<std::int64_t>(chunk_bytes), params_.dma_bandwidth_bps);
  const TimePoint dma_done = tx_dma_.occupy(engine_.now(), dma_time);
  const Duration sar_time = params_.sar_setup + params_.sar_per_cell * burst.n_cells;
  const TimePoint sar_done = sar_.occupy(dma_done, sar_time);
  if (prof_ != nullptr) {
    prof_->record(obs::Layer::nic_dma, dma_time);
    prof_->record(obs::Layer::nic_sar, sar_time);
    prof_->record(obs::Layer::wire, tx_link_->tx_time(burst.wire_bytes()));
  }
  if (trace_ != nullptr)
    trace_->complete(tx_track_,
                     "tx " + std::to_string(chunk_bytes) + "B x" +
                         std::to_string(burst.n_cells),
                     "nic", engine_.now(), sar_done - engine_.now());

  engine_.schedule_at(sar_done, [this, b = std::move(burst)]() mutable {
    CellSink* peer = peer_;
    const int port = peer_port_;
    tx_link_->transmit(
        b.wire_bytes(), [this] { free_tx_buffer(); },
        [peer, port, b2 = std::move(b)]() mutable { peer->accept(port, std::move(b2)); });
  });
}

void Nic::firmware_tx(VcId vc, Bytes payload) {
  NCS_ASSERT_MSG(tx_link_ != nullptr && peer_ != nullptr, "NIC not attached");
  NCS_ASSERT_MSG(payload.size() <= params_.io_buffer_size, "firmware PDU exceeds I/O buffer");
  Burst burst;
  burst.vc = vc;
  burst.end_of_message = true;
  burst.n_cells = static_cast<std::uint32_t>(cells_for(payload.size()));
  burst.payload = std::move(payload);
  if (fault_.corrupting()) {
    // Same per-cell Bernoulli corruption process as host bursts; a damaged
    // firmware PDU is dropped at the receiving adapter's CRC check.
    for (std::uint32_t i = 0; i < burst.n_cells; ++i) {
      if (fault_.draw_corrupt()) {
        ++fault_.stats().corrupted_cells;
        burst.damaged = true;
      }
    }
  }
  ++stats_.tx_chunks;
  stats_.tx_cells += burst.n_cells;

  // No host->adapter DMA and no I/O buffer: the PDU originates in adapter
  // memory. The SAR engine is shared with host traffic, so firmware sends
  // queue behind in-flight host segmentation (and vice versa).
  const Duration sar_time = params_.sar_setup + params_.sar_per_cell * burst.n_cells;
  const TimePoint sar_done = sar_.occupy(engine_.now(), sar_time);
  if (prof_ != nullptr) {
    prof_->record(obs::Layer::nic_sar, sar_time);
    prof_->record(obs::Layer::wire, tx_link_->tx_time(burst.wire_bytes()));
  }
  if (trace_ != nullptr)
    trace_->complete(tx_track_, "fw-tx x" + std::to_string(burst.n_cells), "nic",
                     engine_.now(), sar_done - engine_.now());
  engine_.schedule_at(sar_done, [this, b = std::move(burst)]() mutable {
    CellSink* peer = peer_;
    const int port = peer_port_;
    tx_link_->transmit(
        b.wire_bytes(), nullptr,
        [peer, port, b2 = std::move(b)]() mutable { peer->accept(port, std::move(b2)); });
  });
}

TimePoint Nic::rx_dma_delay(std::size_t n) {
  const Duration dma_time =
      params_.dma_setup +
      Duration::for_bytes(static_cast<std::int64_t>(n), params_.dma_bandwidth_bps);
  return rx_dma_.occupy(engine_.now(), dma_time);
}

void Nic::accept(int /*port*/, Burst burst) {
  ++stats_.rx_chunks;
  stats_.rx_cells += burst.n_cells;

  Bytes payload;
  if (burst.detailed()) {
    // Real reassembly: HEC was implicitly valid (cells were never packed on
    // this path); run the adaptation layer's CRC/length checks.
    const auto push_all = [&](auto& reasm) -> bool {
      bool complete = false;
      for (const Cell& c : burst.cells) {
        auto out = reasm.push(c);
        if (!out.has_value()) continue;
        if (!out->is_ok()) {
          ++stats_.rx_errors;
          NCS_WARN("atm.nic", "%s: reassembly error: %s", name_.c_str(),
                   out->status().to_string().c_str());
          if (trace_ != nullptr)
            trace_->instant(rx_track_, "rx-error " + out->status().to_string(), "nic",
                            engine_.now());
          return false;
        }
        payload = std::move(out->value());
        complete = true;
      }
      NCS_ASSERT_MSG(complete, "burst did not end a CPCS-PDU");
      return true;
    };
    const bool ok = params_.adaptation == Adaptation::aal5
                        ? push_all(rx_reassembly_[burst.vc])
                        : push_all(rx_reassembly34_[burst.vc]);
    if (!ok) return;
  } else {
    if (burst.damaged) {
      // Burst-mode stand-in for a CRC failure during reassembly.
      ++stats_.rx_errors;
      NCS_WARN("atm.nic", "%s: dropping damaged PDU (injected corruption)", name_.c_str());
      if (trace_ != nullptr)
        trace_->instant(rx_track_, "rx-error injected corruption", "nic", engine_.now());
      return;
    }
    payload = std::move(burst.payload);
  }

  // Firmware-terminated VCs never cross the SBus: the i960 consumes the
  // PDU right after reassembly, with no RX DMA and no host upcall.
  if (fw_handler_ && burst.vc.vpi == 0 && burst.vc.vci >= fw_lo_ && burst.vc.vci < fw_hi_) {
    fw_handler_(burst.vc, std::move(payload), burst.end_of_message);
    return;
  }

  // Adapter->host DMA, then the host upcall.
  const Duration dma_time =
      params_.dma_setup +
      Duration::for_bytes(static_cast<std::int64_t>(payload.size()), params_.dma_bandwidth_bps);
  const TimePoint done = rx_dma_.occupy(engine_.now(), dma_time);
  if (trace_ != nullptr)
    trace_->complete(rx_track_, "rx " + std::to_string(payload.size()) + "B", "nic",
                     engine_.now(), done - engine_.now());
  engine_.schedule_at(done, [this, vc = burst.vc, p = std::move(payload),
                             eom = burst.end_of_message]() mutable {
    if (const auto it = vc_handlers_.find(vc); it != vc_handlers_.end()) {
      it->second(vc, std::move(p), eom);
      return;
    }
    if (rx_handler_) rx_handler_(vc, std::move(p), eom);
  });
}

void Nic::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/tx_chunks", &stats_.tx_chunks);
  reg.counter(prefix + "/tx_cells", &stats_.tx_cells);
  reg.counter(prefix + "/rx_chunks", &stats_.rx_chunks);
  reg.counter(prefix + "/rx_cells", &stats_.rx_cells);
  reg.counter(prefix + "/rx_errors", &stats_.rx_errors);
}

void Nic::set_trace(obs::TraceLog* trace, const std::string& prefix) {
  trace_ = trace;
  if (trace_ == nullptr) return;
  tx_track_ = trace_->track(prefix + "/tx");
  rx_track_ = trace_->track(prefix + "/rx");
}

}  // namespace ncs::atm
