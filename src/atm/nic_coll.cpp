#include "atm/nic_coll.hpp"

#include <utility>

#include "atm/network.hpp"
#include "coll/algorithms.hpp"
#include "coll/offload.hpp"
#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::atm {

namespace {

// Wire format of one firmware PDU: [u8 msgkind][u8 opkind][u64 seq][payload].
constexpr std::uint8_t kContribution = 0;  // child -> parent, folded subtree
constexpr std::uint8_t kResult = 1;        // parent -> child, final result
constexpr std::size_t kHeader = 10;

}  // namespace

NicCollEngine::NicCollEngine(sim::Engine& engine, Nic& nic, NicCollParams params,
                             std::string name)
    : engine_(engine), nic_(nic), params_(params), name_(std::move(name)) {
  NCS_ASSERT(params_.radix >= 1);
  // Terminate the whole collective VC plane in firmware. Charging happens
  // here, at reassembly time: one context lookup plus the per-cell fold
  // cost, serialized on the collective execution unit.
  nic_.set_firmware_range(kCollVciBase, kRmaVciBase,
                          [this](VcId vc, Bytes pdu, bool /*eom*/) {
                            const int src = coll_src_of(vc);
                            const Duration work =
                                params_.context_lookup +
                                params_.combine_per_cell *
                                    static_cast<std::int64_t>(1 + pdu.size() / 48);
                            const TimePoint done = fw_.occupy(engine_.now(), work);
                            if (prof_ != nullptr) prof_->record(obs::Layer::nic_coll, work);
                            engine_.schedule_at(done, [this, src, p = std::move(pdu)]() mutable {
                              process(src, std::move(p));
                            });
                          });
}

void NicCollEngine::program(int rank, int n_procs) {
  NCS_ASSERT(rank >= 0 && rank < n_procs);
  rank_ = rank;
  n_procs_ = n_procs;
  parent_ = coll::offload_parent(rank, params_.radix);
  children_ = coll::offload_children(rank, n_procs, params_.radix);
  armed_ = true;
  ++stats_.programs;
  if (trace_ != nullptr) trace_->instant(track_, "program", "nic_coll", engine_.now());
}

void NicCollEngine::teardown() {
  if (!armed_) return;
  armed_ = false;
  pending_.clear();
  ++stats_.teardowns;
  if (trace_ != nullptr) trace_->instant(track_, "teardown", "nic_coll", engine_.now());
}

void NicCollEngine::drop_late(const char* what) {
  ++stats_.late_drops;
  if (trace_ != nullptr)
    trace_->instant(track_, std::string("late-drop ") + what, "nic_coll", engine_.now());
}

void NicCollEngine::contribute(std::uint64_t seq, CollKind kind, Bytes own) {
  NCS_ASSERT_MSG(armed_, "contribute on an unarmed collective context");
  // Non-root bcast ranks have nothing to push: the result arrives
  // downstream. Opening a pending slot here would fire arity-0 combines.
  if (kind == CollKind::bcast && parent_ >= 0) return;
  const TimePoint visible = fw_.occupy(engine_.now(), params_.doorbell);
  engine_.schedule_at(visible, [this, seq, kind, own = std::move(own)]() mutable {
    if (!armed_ || seq < floor_) {
      drop_late("doorbell");
      return;
    }
    Pending& p = pending_[seq];
    p.kind = kind;
    p.have_own = true;
    p.own = std::move(own);
    try_fire(seq, p);
  });
}

void NicCollEngine::abort_op(std::uint64_t seq) {
  pending_.erase(seq);
  if (seq >= floor_) floor_ = seq + 1;
  ++stats_.aborts;
  if (trace_ != nullptr) trace_->instant(track_, "abort", "nic_coll", engine_.now());
}

void NicCollEngine::process(int src, Bytes pdu) {
  if (pdu.size() < kHeader) {
    NCS_WARN("atm.nic_coll", "%s: runt collective PDU (%zu bytes)", name_.c_str(), pdu.size());
    return;
  }
  ByteReader r(pdu);
  const std::uint8_t msgkind = r.u8();
  const auto kind = static_cast<CollKind>(r.u8());
  const std::uint64_t seq = r.u64();
  Bytes payload = to_bytes(r.bytes(r.remaining()));

  if (!armed_ || seq < floor_) {
    drop_late(msgkind == kContribution ? "contribution" : "result");
    return;
  }

  if (msgkind == kContribution) {
    Pending& p = pending_[seq];
    p.kind = kind;
    NCS_ASSERT_MSG(p.children.find(src) == p.children.end(),
                   "duplicate contribution from one child");
    p.children[src] = std::move(payload);
    ++stats_.combines;
    try_fire(seq, p);
    return;
  }

  // Result from the parent: forward down, hand to the host, close the op.
  complete(seq, kind, std::move(payload), /*forward_down=*/true);
}

void NicCollEngine::try_fire(std::uint64_t seq, Pending& p) {
  const bool need_children = p.kind != CollKind::bcast;
  if (!p.have_own) return;
  if (need_children && p.children.size() < children_.size()) return;

  Bytes result;
  if (p.kind == CollKind::allreduce) {
    // The canonical offload fold order: own first, then children ascending
    // (std::map iterates ascending) — matched by coll::tree_fold.
    std::vector<double> acc = coll::unpack_doubles(p.own);
    for (const auto& [child, bytes] : p.children) {
      (void)child;
      coll::accumulate_doubles(acc, bytes);
    }
    result = coll::pack_doubles(acc);
  } else if (p.kind == CollKind::bcast) {
    result = std::move(p.own);
  }  // barrier: empty result

  if (parent_ < 0) {
    complete(seq, p.kind, std::move(result), /*forward_down=*/true);
  } else {
    // Interior/leaf: one folded PDU upstream, then this op's state is done
    // here until the result comes back down.
    send(parent_, kContribution, p.kind, seq, result);
    pending_.erase(seq);
  }
}

void NicCollEngine::complete(std::uint64_t seq, CollKind kind, Bytes result,
                             bool forward_down) {
  if (forward_down)
    for (const int c : children_) send(c, kResult, kind, seq, result);
  pending_.erase(seq);
  if (seq >= floor_) floor_ = seq + 1;
  ++stats_.completions;
  if (trace_ != nullptr) trace_->instant(track_, "complete", "nic_coll", engine_.now());
  // Only the final result crosses the SBus: RX DMA, then the upcall.
  const TimePoint done = nic_.rx_dma_delay(result.size());
  if (completion_)
    engine_.schedule_at(done, [this, seq, r = std::move(result)]() mutable {
      completion_(seq, std::move(r));
    });
}

void NicCollEngine::send(int dst, std::uint8_t msgkind, CollKind kind, std::uint64_t seq,
                         BytesView payload) {
  Bytes pdu(kHeader + payload.size());
  ByteWriter w(pdu);
  w.u8(msgkind);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(seq);
  w.bytes(payload);
  ++stats_.forwards;
  nic_.firmware_tx(coll_vc_to(dst), std::move(pdu));
}

void NicCollEngine::register_metrics(obs::MetricsRegistry& reg,
                                     const std::string& prefix) const {
  reg.counter(prefix + "/programs", &stats_.programs);
  reg.counter(prefix + "/teardowns", &stats_.teardowns);
  reg.counter(prefix + "/combines", &stats_.combines);
  reg.counter(prefix + "/forwards", &stats_.forwards);
  reg.counter(prefix + "/completions", &stats_.completions);
  reg.counter(prefix + "/aborts", &stats_.aborts);
  reg.counter(prefix + "/late_drops", &stats_.late_drops);
}

void NicCollEngine::set_trace(obs::TraceLog* trace, const std::string& prefix) {
  trace_ = trace;
  if (trace_ == nullptr) return;
  track_ = trace_->track(prefix);
}

}  // namespace ncs::atm
