// ATM host adapter, modeled on the FORE SBA-200.
//
// The SBA-200 pairs a dedicated i960 (25 MHz) that performs AAL
// segmentation/reassembly and CRC with DMA hardware that moves data over
// the SBus — so the host CPU touches the data only to copy it into the
// adapter's I/O buffers. That offload is what makes the paper's HSM path
// cheap, and the *multiple* I/O buffers are what Fig 2 exploits: while the
// adapter drains buffer k, the host fills buffer k+1.
//
// TX pipeline per chunk (one I/O buffer, one AAL5 PDU):
//   host copy (charged by the caller)  ->  DMA host->adapter  ->
//   i960 SAR  ->  wire.  The buffer frees when its last bit leaves the
//   wire; tx_buffer_available()/notify_tx_buffer() expose backpressure so
//   the send thread blocks exactly when the paper's would.
// RX pipeline: wire -> i960 reassembly -> DMA adapter->host -> rx handler.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "atm/aal34.hpp"
#include "atm/aal5.hpp"
#include "atm/burst.hpp"
#include "common/time.hpp"
#include "fault/faults.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace ncs::atm {

/// Which adaptation layer the adapter firmware runs (the paper's protocol
/// stacks, Figs 11/12, show both): AAL5 carries 48 payload bytes per cell;
/// AAL3/4 spends 4 of them on per-cell header/trailer (44 useful) plus a
/// CPCS envelope — the ~9 % efficiency gap that made AAL5 win.
enum class Adaptation { aal5, aal34 };

struct NicParams {
  Adaptation adaptation = Adaptation::aal5;
  /// Size of one I/O buffer: the unit of host<->adapter transfer and of
  /// AAL segmentation (one buffer = one CPCS-PDU).
  std::size_t io_buffer_size = 4096;
  /// Number of transmit-side I/O buffers (paper Fig 2; >= 1).
  int tx_buffers = 2;
  /// SBus DMA: per-transfer setup plus streaming bandwidth.
  Duration dma_setup = Duration::microseconds(2);
  double dma_bandwidth_bps = 320e6;  // ~40 MB/s sustained SBus
  /// i960 SAR engine: per-PDU setup plus per-cell processing.
  Duration sar_setup = Duration::microseconds(4);
  Duration sar_per_cell = Duration::nanoseconds(700);
  /// Materialize and check real cells (HEC + AAL5 CRC) instead of only
  /// charging their time. Identical timing; used by validation tests.
  bool detailed_cells = false;
  /// Fault injection: per-cell probability of a payload bit flip in
  /// transit — caught by the AAL5 CRC-32 at the receiving adapter, exactly
  /// like real fiber errors were. In detailed mode the bit really flips;
  /// in burst mode the afflicted PDU is marked damaged and the receiver
  /// counts an rx_error and drops it (same observable behaviour). Sugar
  /// for a trivial FaultPlan; scripted corruption windows layer on top via
  /// FaultInjector::attach_nic.
  double cell_corrupt_probability = 0.0;
  std::uint64_t corrupt_seed = 0xC0FFEE;
};

class Nic : public CellSink {
 public:
  /// (source vc as seen by this host, chunk payload, end-of-message flag)
  using RxHandler = std::function<void(VcId, Bytes, bool)>;

  Nic(sim::Engine& engine, NicParams params, std::string name = "nic");

  /// Connects the transmit side: bursts go out on `tx_link` and arrive at
  /// `peer` (normally a switch port).
  void attach(net::Link& tx_link, CellSink& peer, int peer_port);

  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

  /// Per-VC override: traffic on `vc` bypasses the default handler —
  /// how the signaling channel (VPI 0 / VCI 5) terminates at the
  /// SignalingAgent without disturbing the data-plane demultiplexer.
  void set_vc_handler(VcId vc, RxHandler handler) {
    vc_handlers_[vc] = std::move(handler);
  }

  /// Firmware-resident termination for the VPI-0 VCI range [lo, hi):
  /// reassembled PDUs on these VCs are handed to `handler` in adapter
  /// (i960) time — no adapter->host DMA, no host upcall. This is how the
  /// NIC-collective combine/forward engine terminates its plane.
  void set_firmware_range(std::uint16_t lo, std::uint16_t hi, RxHandler handler) {
    fw_lo_ = lo;
    fw_hi_ = hi;
    fw_handler_ = std::move(handler);
  }

  // --- TX (driver interface) ---
  bool tx_buffer_available() const { return tx_buffers_in_use_ < params_.tx_buffers; }
  /// Occupied I/O buffers right now — the telemetry backpressure probe.
  int tx_buffers_in_use() const { return tx_buffers_in_use_; }

  /// One-shot: `cb` fires when a TX buffer frees (immediately via the event
  /// queue if one is already free).
  void notify_tx_buffer(sim::EventFn cb);

  /// Hands one chunk (<= io_buffer_size) to the adapter. The host-side copy
  /// cost is the caller's to charge; this models DMA + SAR + wire.
  /// Precondition: tx_buffer_available().
  void submit_tx(VcId vc, Bytes chunk, bool end_of_message);

  /// Adapter time (DMA+SAR+wire serialization, no queueing or propagation)
  /// for a chunk of `n` bytes — used by benches to report ideal pipelines.
  Duration tx_stage_time(std::size_t n) const;

  /// Firmware-originated transmit: the i960 segments and sends `payload` on
  /// `vc` without touching host I/O buffers or the host->adapter DMA — the
  /// cells never existed in host memory. Charges the SAR engine (sharing it
  /// with host traffic) and enters the wire in SAR-completion order.
  void firmware_tx(VcId vc, Bytes payload);

  /// Occupies the adapter->host RX DMA engine for an `n`-byte delivery and
  /// returns the completion time — firmware-resident modules use it to
  /// schedule their host completion upcalls with the same contention the
  /// data path sees.
  TimePoint rx_dma_delay(std::size_t n);

  // --- RX (network side) ---
  void accept(int port, Burst burst) override;

  struct Stats {
    std::uint64_t tx_chunks = 0;
    std::uint64_t tx_cells = 0;
    std::uint64_t rx_chunks = 0;
    std::uint64_t rx_cells = 0;
    std::uint64_t rx_errors = 0;
  };
  const Stats& stats() const { return stats_; }
  const NicParams& params() const { return params_; }
  const std::string& name() const { return name_; }

  /// Corruption fault state (the legacy knob is its uniform component).
  fault::NicFault& fault() { return fault_; }

  /// Registers the adapter's counters under `prefix` (e.g. "p0/nic").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

  /// Creates "<prefix>/tx" and "<prefix>/rx" trace tracks: TX spans cover
  /// DMA+SAR per chunk, RX spans the adapter->host DMA, plus error instants.
  void set_trace(obs::TraceLog* trace, const std::string& prefix);

  /// Per-burst pipeline stage durations (host DMA, i960 SAR, link
  /// serialization) feed Layer::nic_dma / nic_sar / wire — the Table 4
  /// adapter-side breakdown.
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

 private:
  void free_tx_buffer();

  sim::Engine& engine_;
  NicParams params_;
  std::string name_;

  net::Link* tx_link_ = nullptr;
  CellSink* peer_ = nullptr;
  int peer_port_ = 0;

  int tx_buffers_in_use_ = 0;
  std::vector<sim::EventFn> tx_waiters_;
  sim::SerialResource tx_dma_;
  sim::SerialResource sar_;
  sim::SerialResource rx_dma_;

  /// Cells to carry `n` payload bytes under the configured adaptation.
  std::size_t cells_for(std::size_t n) const {
    return params_.adaptation == Adaptation::aal5 ? aal5::cell_count(n)
                                                  : aal34::cell_count(n);
  }

  std::map<VcId, aal5::Reassembler> rx_reassembly_;       // detailed AAL5
  std::map<VcId, aal34::Reassembler> rx_reassembly34_;    // detailed AAL3/4
  std::uint8_t next_btag_ = 0;
  fault::NicFault fault_;
  RxHandler rx_handler_;
  std::uint16_t fw_lo_ = 0;
  std::uint16_t fw_hi_ = 0;  // empty range = no firmware termination
  RxHandler fw_handler_;
  std::map<VcId, RxHandler> vc_handlers_;
  obs::TraceLog* trace_ = nullptr;
  int tx_track_ = -1;
  int rx_track_ = -1;
  obs::Profiler* prof_ = nullptr;
  Stats stats_;
};

}  // namespace ncs::atm
