// ATM testbed topologies.
//
// AtmLan — the paper's "SUN/ATM LAN": N hosts, each on a dedicated
// 140 Mbps TAXI link into one FORE-style switch, with a full mesh of PVCs.
//
// AtmWan — the NYNET shape (Fig 1): two sites, each a LAN star, whose
// switches are joined by a long-haul SONET link (OC-48 core, or the DS-3
// upstate-downstate hop) with millisecond propagation delay — the term the
// paper's overlap argument targets.
//
// AtmMultiWan — the NYNET shape extrapolated: a chain of `n_sites` LAN
// stars whose switches are joined by per-hop SONET links. Cross-site PVCs
// are label-switched hop by hop through the VPI-1 backbone space, so the
// label a path consumes is per-hop, not global — but the 16-bit VCI space
// still bounds the paths crossing any one hop, which is why provisioning
// is sparse (only the pairs the workload names) once host counts reach the
// hundreds.
//
// VC numbering: a host sends to destination j on VCI kVciBase+j and
// receives from source i on VCI kVciBase+i; the switches rewrite between
// the two (cross-site hops use a VPI-1 backbone label space).
#pragma once

#include <memory>
#include <vector>

#include "atm/nic.hpp"
#include "atm/switch.hpp"
#include "common/units.hpp"
#include "net/link.hpp"
#include "sim/engine.hpp"

namespace ncs::atm {

inline constexpr std::uint16_t kVciBase = 64;

/// VC a host uses to send to host `dst`.
inline VcId vc_to(int dst) { return VcId{0, static_cast<std::uint16_t>(kVciBase + dst)}; }

/// Source host of a received chunk, from the delivered VC label.
inline int src_of(VcId vc) { return static_cast<int>(vc.vci) - static_cast<int>(kVciBase); }

/// One-sided RMA plane: a second PVC mesh, provisioned alongside the data
/// mesh with the same src/dst numbering shifted into a high VCI range
/// (clear of data VCs and of the signaling channel's dynamic labels, which
/// start at kDynamicVciBase = 1024 and assert-stop short of this base
/// rather than wrapping into it). The rma::Engine terminates these VCs
/// with Nic::set_vc_handler, the way the signaling agent terminates
/// VPI 0 / VCI 5 — so one-sided traffic never touches the receive thread.
inline constexpr std::uint16_t kRmaVciBase = 40000;

/// VC a host uses for one-sided operations targeting host `dst`; also the
/// label one-sided traffic *from* `dst` arrives on (switches rewrite
/// between the two, mirroring the data plane).
inline VcId rma_vc_to(int dst) {
  return VcId{0, static_cast<std::uint16_t>(kRmaVciBase + dst)};
}

/// Source host of a received one-sided chunk.
inline int rma_src_of(VcId vc) {
  return static_cast<int>(vc.vci) - static_cast<int>(kRmaVciBase);
}

/// NIC-collective plane: a third PVC mesh carrying combine/forward traffic
/// between adapter firmware instances (NicCollEngine). Sits below the RMA
/// range and above the signaling channel's dynamic labels, which
/// assert-stop short of this base. These VCs terminate in firmware — no
/// adapter->host DMA, no host upcall on interior tree hops.
inline constexpr std::uint16_t kCollVciBase = 38000;

/// VC a host's adapter uses for collective contributions/results sent to
/// host `dst`'s adapter; also the label such traffic *from* `dst` arrives
/// on (switches rewrite between the two, mirroring the data plane).
inline VcId coll_vc_to(int dst) {
  return VcId{0, static_cast<std::uint16_t>(kCollVciBase + dst)};
}

/// Source host of a received collective cell.
inline int coll_src_of(VcId vc) {
  return static_cast<int>(vc.vci) - static_cast<int>(kCollVciBase);
}

/// Abstract N-host ATM fabric; LAN and WAN expose the same host-side API
/// so the protocol stacks are topology-agnostic.
class AtmFabric {
 public:
  virtual ~AtmFabric() = default;
  virtual int n_hosts() const = 0;
  virtual Nic& nic(int host) = 0;

  /// Enumeration over the fabric's physical elements — how a FaultInjector
  /// reaches every link direction and switch without knowing the topology.
  virtual void for_each_link(const std::function<void(net::Link&)>& fn) = 0;
  virtual void for_each_switch(const std::function<void(Switch&)>& fn) = 0;
};

struct LanConfig {
  int n_hosts = 4;
  NicParams nic;
  net::LinkParams host_link{
      .bandwidth_bps = bw::taxi_140,
      .propagation = Duration::microseconds(2),  // tens of meters of fiber
      .per_frame_overhead = Duration::zero(),
  };
  SwitchParams sw;
};

class AtmLan final : public AtmFabric {
 public:
  AtmLan(sim::Engine& engine, LanConfig config);

  int n_hosts() const override { return static_cast<int>(nics_.size()); }
  Nic& nic(int host) override { return *nics_[static_cast<std::size_t>(host)]; }
  Switch& fabric() { return *switch_; }

  void for_each_link(const std::function<void(net::Link&)>& fn) override {
    for (auto& l : links_) {
      fn(l->forward());
      fn(l->backward());
    }
  }
  void for_each_switch(const std::function<void(Switch&)>& fn) override { fn(*switch_); }

 private:
  std::vector<std::unique_ptr<net::DuplexLink>> links_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::unique_ptr<Switch> switch_;
};

struct WanConfig {
  int n_hosts = 4;  // first half at site 0, rest at site 1
  NicParams nic;
  net::LinkParams host_link{
      .bandwidth_bps = bw::taxi_140,
      .propagation = Duration::microseconds(2),
  };
  /// Inter-site SONET hop. Default: DS-3 with upstate-downstate distance.
  net::LinkParams backbone{
      .bandwidth_bps = bw::ds3,
      .propagation = Duration::milliseconds(2.5),  // ~500 km of fiber
  };
  SwitchParams sw;
};

struct MultiWanConfig {
  int n_hosts = 8;
  /// Sites in the chain; hosts are split into contiguous, near-equal
  /// blocks (site 0 gets the remainder first).
  int n_sites = 4;
  NicParams nic;
  net::LinkParams host_link{
      .bandwidth_bps = bw::taxi_140,
      .propagation = Duration::microseconds(2),
  };
  /// Per-hop inter-site SONET link.
  net::LinkParams backbone{
      .bandwidth_bps = bw::ds3,
      .propagation = Duration::milliseconds(2.5),
  };
  SwitchParams sw;
  /// Directed (src, dst) host pairs to provision PVCs for; duplicates are
  /// ignored. Empty = full mesh, which is only viable while every backbone
  /// hop carries fewer than 2^16 paths — large topologies must name the
  /// traffic matrix.
  std::vector<std::pair<int, int>> provision;
};

class AtmMultiWan final : public AtmFabric {
 public:
  AtmMultiWan(sim::Engine& engine, MultiWanConfig config);

  int n_hosts() const override { return static_cast<int>(nics_.size()); }
  Nic& nic(int host) override { return *nics_[static_cast<std::size_t>(host)]; }
  int n_sites() const { return static_cast<int>(switches_.size()); }
  int site_of(int host) const { return site_of_[static_cast<std::size_t>(host)]; }
  Switch& site_switch(int site) { return *switches_[static_cast<std::size_t>(site)]; }

  /// Backbone labels consumed on the directed hop `site` -> `site+1`
  /// (or the reverse) — provisioning headroom introspection.
  int labels_used(int site, bool rightward) const;

  void for_each_link(const std::function<void(net::Link&)>& fn) override {
    for (auto& l : links_) {
      fn(l->forward());
      fn(l->backward());
    }
  }
  void for_each_switch(const std::function<void(Switch&)>& fn) override {
    for (auto& s : switches_) fn(*s);
  }

 private:
  enum class Plane { data, rma, coll };
  void provision_pair(int src, int dst, Plane plane);

  std::vector<int> site_of_;     // per host
  std::vector<int> local_port_;  // per host, port index on its site switch
  std::vector<int> left_port_;   // per site, port toward site-1 (-1 = none)
  std::vector<int> right_port_;  // per site, port toward site+1 (-1 = none)
  /// Next free VPI-1 VCI per directed hop; index h = hop between sites h
  /// and h+1.
  std::vector<std::uint32_t> next_label_right_;
  std::vector<std::uint32_t> next_label_left_;
  std::vector<std::unique_ptr<net::DuplexLink>> links_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<Switch>> switches_;
};

class AtmWan final : public AtmFabric {
 public:
  AtmWan(sim::Engine& engine, WanConfig config);

  int n_hosts() const override { return static_cast<int>(nics_.size()); }
  Nic& nic(int host) override { return *nics_[static_cast<std::size_t>(host)]; }
  int site_of(int host) const { return host < site0_hosts_ ? 0 : 1; }
  Switch& site_switch(int site) { return *switches_[static_cast<std::size_t>(site)]; }

  /// Port index of `host` on its site switch.
  int local_port(int host) const { return local_port_[static_cast<std::size_t>(host)]; }
  /// Port index of the inter-site link on `site`'s switch.
  int backbone_port(int site) const { return backbone_port_[site]; }

  void for_each_link(const std::function<void(net::Link&)>& fn) override {
    for (auto& l : links_) {
      fn(l->forward());
      fn(l->backward());
    }
  }
  void for_each_switch(const std::function<void(Switch&)>& fn) override {
    for (auto& s : switches_) fn(*s);
  }

 private:
  int site0_hosts_ = 0;
  std::vector<int> local_port_;
  int backbone_port_[2] = {0, 0};
  std::vector<std::unique_ptr<net::DuplexLink>> links_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<Switch>> switches_;
};

}  // namespace ncs::atm
