// ATM switched-virtual-circuit signaling (Q.2931-shaped, simplified).
//
// The paper's testbed uses preconfigured PVCs (our topology builders
// install a full mesh); real ATM deployments set circuits up on demand
// over the reserved signaling channel VPI 0 / VCI 5. This module adds that
// control plane to the LAN fabric as an extension:
//
//   host A                switch (CallController)              host B
//   SETUP(called=B) ----->  allocate VC labels,
//                           install half routes   -----> SETUP(caller=A)
//                                                        agent accepts?
//   CONNECT(vc) <--------  activate routes        <----- CONNECT
//   ... data on the assigned VC ...
//   RELEASE(vc) ---------> tear down routes       -----> RELEASE(vc)
//
// Signaling messages ride ordinary AAL5 PDUs on the signaling VC; the
// CallController owns the dynamic label space above the static mesh and
// mutates the switch's routing table at call setup/teardown — exercising
// the switch as a mutable, not just preconfigured, fabric.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "atm/network.hpp"
#include "common/result.hpp"

namespace ncs::atm {

/// Signaling channel (ITU-T Q.2931 / UNI: VPI 0, VCI 5).
inline constexpr VcId kSignalingVc{0, 5};
/// Dynamic labels are allocated at and above this VCI (the static PVC mesh
/// lives in [kVciBase, kVciBase + hosts)).
inline constexpr std::uint16_t kDynamicVciBase = 1024;

enum class SignalingMessageType : std::uint8_t {
  setup = 1,
  connect = 2,
  release = 3,
  release_complete = 4,
  reject = 5,
};

struct SignalingMessage {
  SignalingMessageType type = SignalingMessageType::setup;
  std::uint32_t call_ref = 0;  // caller-chosen call reference
  int calling_party = -1;      // host index
  int called_party = -1;       // host index
  /// Assigned data VC to transmit on (meaningful in connect / release).
  VcId assigned_vc{};
  /// Data VC the peer transmits on, i.e. the label to expect inbound
  /// traffic under (meaningful in connect).
  VcId peer_vc{};

  Bytes encode() const;
  static Result<SignalingMessage> decode(BytesView wire);
};

/// Per-host user side of the signaling protocol. The application polls or
/// registers callbacks; everything runs on engine events (no threads
/// required, so it composes with any runtime above).
class SignalingAgent {
 public:
  using ConnectHandler = std::function<void(Result<VcId>)>;
  /// Return true to accept the call (the default handler accepts).
  using IncomingFilter = std::function<bool(int calling_party)>;
  /// Invoked when the network (or the peer) releases an established call:
  /// (caller's tx label, callee's tx label). Data-plane users invalidate
  /// cached circuits here so the next send re-signals.
  using ReleaseHandler = std::function<void(VcId, VcId)>;

  SignalingAgent(sim::Engine& engine, Nic& nic, int host_index);

  /// Initiates call setup to `called_party`. `on_complete` fires with the
  /// data VC to *send on*, or an error if the callee rejected.
  void open_call(int called_party, ConnectHandler on_complete);

  /// Releases an established call by its data VC (either side may).
  void release_call(VcId data_vc);

  void set_incoming_filter(IncomingFilter filter) { incoming_filter_ = std::move(filter); }
  void set_release_handler(ReleaseHandler handler) { release_handler_ = std::move(handler); }

  /// Data VC to send on for calls accepted as the callee, keyed by caller.
  std::optional<VcId> accepted_vc_from(int calling_party) const;

  struct Stats {
    std::uint64_t calls_opened = 0;
    std::uint64_t calls_accepted = 0;
    std::uint64_t calls_rejected = 0;
    std::uint64_t releases = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Wire-in from the NIC demultiplexer (signaling VC traffic).
  void on_signaling_pdu(BytesView wire);

 private:
  void send(const SignalingMessage& msg);

  sim::Engine& engine_;
  Nic& nic_;
  int host_;
  std::uint32_t next_call_ref_ = 1;
  IncomingFilter incoming_filter_;
  ReleaseHandler release_handler_;
  std::map<std::uint32_t, ConnectHandler> pending_;          // my outgoing calls
  std::map<int, VcId> accepted_;                             // caller -> data vc
  Stats stats_;
};

/// Switch-side call controller for a single-switch (LAN) fabric: owns the
/// dynamic VCI space, installs/removes routes, and relays the signaling
/// conversation between the parties.
class CallController {
 public:
  CallController(sim::Engine& engine, AtmLan& lan);

  /// Returns the agent for `host` (created lazily on first use).
  SignalingAgent& agent(int host);

  /// Port-failure handling (driven by the switch's SwitchFault, to which
  /// the controller subscribes at construction; tests may call directly).
  /// fail_port releases every call whose party sits on `port` and rejects
  /// new SETUPs towards it until restore_port.
  void fail_port(int port);
  void restore_port(int port);

  struct Stats {
    std::uint64_t setups = 0;
    std::uint64_t connects = 0;
    std::uint64_t rejects = 0;
    std::uint64_t releases = 0;
    std::uint64_t active_calls = 0;
    std::uint64_t faulted_releases = 0;  // calls torn down by port failure
  };
  const Stats& stats() const { return stats_; }

  /// Test hook: fast-forwards the dynamic label allocator so range-guard
  /// tests need not burn tens of thousands of real calls.
  void set_next_vci_for_test(std::uint16_t v) { next_vci_ = v; }

 private:
  friend class SignalingAgent;

  struct Call {
    std::uint32_t call_ref;
    int caller;
    int callee;
    VcId caller_vc;  // label the caller transmits on
    VcId callee_vc;  // label the callee transmits on
    bool connected = false;
  };

  /// Entry point for signaling PDUs arriving at the switch from `in_port`.
  void on_signaling(int in_port, const SignalingMessage& msg);
  void forward_to_host(int host, const SignalingMessage& msg);
  VcId allocate_vc();
  void install_call_routes(const Call& call);
  void remove_call_routes(const Call& call);

  void release_call_faulted(const Call& call);

  sim::Engine& engine_;
  AtmLan& lan_;
  std::map<int, std::unique_ptr<SignalingAgent>> agents_;
  std::map<std::pair<int, std::uint32_t>, Call> calls_;  // (caller, ref)
  std::map<VcId, std::pair<int, std::uint32_t>> by_vc_;  // either data vc -> call key
  std::set<int> failed_ports_;
  std::uint16_t next_vci_ = kDynamicVciBase;
  Stats stats_;
};

/// Call controller for the two-site WAN fabric: the same protocol, but a
/// cross-site call's signaling transits the SONET backbone hop-by-hop and
/// its data routes are installed on *both* site switches with label
/// continuity across the backbone.
class WanCallController {
 public:
  WanCallController(sim::Engine& engine, AtmWan& wan);

  SignalingAgent& agent(int host);

  /// Port-failure handling on `site`'s switch (subscribed to both site
  /// switches' SwitchFault at construction). A failed backbone port
  /// releases every cross-site call.
  void fail_port(int site, int port);
  void restore_port(int site, int port);

  struct Stats {
    std::uint64_t setups = 0;
    std::uint64_t connects = 0;
    std::uint64_t rejects = 0;
    std::uint64_t releases = 0;
    std::uint64_t active_calls = 0;
    std::uint64_t backbone_hops = 0;  // signaling messages that crossed sites
    std::uint64_t faulted_releases = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Test hook: fast-forwards the dynamic label allocator (see
  /// CallController::set_next_vci_for_test).
  void set_next_vci_for_test(std::uint16_t v) { next_vci_ = v; }

 private:
  struct Call {
    std::uint32_t call_ref;
    int caller;
    int callee;
    VcId caller_vc;
    VcId callee_vc;
  };

  void on_signaling(int site, int in_port, const SignalingMessage& msg);
  /// Delivers `msg` to `host`, transiting the backbone first when it is
  /// not reachable from `from_site`.
  void route_to_host(int from_site, int host, const SignalingMessage& msg);
  void send_on_switch_port(int site, int port, const SignalingMessage& msg);
  VcId allocate_vc();
  void install_call_routes(const Call& call);
  void remove_call_routes(const Call& call);

  void release_call_faulted(const Call& call);
  bool touches_port(const Call& call, int site, int port) const;

  sim::Engine& engine_;
  AtmWan& wan_;
  std::map<int, std::unique_ptr<SignalingAgent>> agents_;
  std::map<std::pair<int, std::uint32_t>, Call> calls_;
  std::map<VcId, std::pair<int, std::uint32_t>> by_vc_;
  std::set<std::pair<int, int>> failed_ports_;  // (site, port)
  std::uint16_t next_vci_ = kDynamicVciBase;
  Stats stats_;
};

}  // namespace ncs::atm
