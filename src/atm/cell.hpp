// ATM cell format (ITU-T I.361, UNI variant).
//
// 53 bytes on the wire: 5-byte header (GFC/VPI/VCI/PTI/CLP + HEC) and a
// 48-byte payload. The 48/53 framing tax is why a "155 Mbps" OC-3 carries
// at most ~135 Mbps of AAL payload — the substrates charge it explicitly.
#pragma once

#include <array>
#include <compare>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace ncs::atm {

/// Virtual path + virtual channel identifier pair: the per-hop connection
/// label every cell carries and every switch rewrites.
struct VcId {
  std::uint8_t vpi = 0;
  std::uint16_t vci = 0;

  friend constexpr auto operator<=>(VcId, VcId) = default;
};

struct CellHeader {
  std::uint8_t gfc = 0;   // 4 bits (UNI only)
  std::uint8_t vpi = 0;   // 8 bits at UNI
  std::uint16_t vci = 0;  // 16 bits
  std::uint8_t pti = 0;   // 3 bits; bit0 = AAL5 end-of-PDU (AUU)
  bool clp = false;       // cell loss priority

  VcId vc() const { return VcId{vpi, vci}; }

  /// PTI bit 0 carries the AAL5 "last cell of CPCS-PDU" indication.
  bool aal5_end_of_pdu() const { return (pti & 0x1) != 0; }
  void set_aal5_end_of_pdu(bool end) {
    pti = static_cast<std::uint8_t>(end ? (pti | 0x1) : (pti & ~0x1));
  }
};

struct Cell {
  static constexpr std::size_t kSize = 53;
  static constexpr std::size_t kHeaderSize = 5;
  static constexpr std::size_t kPayloadSize = 48;

  CellHeader header;
  std::array<std::byte, kPayloadSize> payload{};

  /// Serializes header (computing HEC) + payload into 53 bytes.
  void pack(std::span<std::byte, kSize> out) const;

  /// Parses 53 bytes; fails with data_corruption if the HEC does not match.
  static Result<Cell> unpack(std::span<const std::byte, kSize> in);
};

}  // namespace ncs::atm
