#include "atm/cell_arena.hpp"

#include <utility>

namespace ncs::atm {

CellArena::Census CellArena::census_;

CellArena& CellArena::instance() {
  static CellArena arena;
  return arena;
}

std::vector<Cell> CellArena::acquire(std::size_t n) {
  ++census_.acquires;
  // First fit from the back (most recently released first — LIFO keeps the
  // hot buffer hot and makes a repeating workload hit the same storage).
  for (std::size_t i = pool_.size(); i-- > 0;) {
    if (pool_[i].capacity() >= n) {
      std::vector<Cell> out = std::move(pool_[i]);
      if (i != pool_.size() - 1) pool_[i] = std::move(pool_.back());
      pool_.pop_back();
      out.clear();
      ++census_.pool_hits;
      return out;
    }
  }
  return {};
}

void CellArena::release(std::vector<Cell>&& v) {
  if (v.capacity() == 0 || pool_.size() >= kMaxPooled) return;
  v.clear();
  pool_.push_back(std::move(v));
  ++census_.releases;
}

void CellArena::trim() { pool_.clear(); }

void CellBuffer::grow_to(std::size_t n) {
  if (v_.capacity() >= n) return;
  if (v_.capacity() == 0) {
    std::vector<Cell> pooled = CellArena::instance().acquire(n);
    if (pooled.capacity() >= n) {
      v_ = std::move(pooled);
      return;
    }
    // Pool miss: fall through and size the fresh buffer ourselves (the
    // zero-capacity vector acquire() returned needs no release).
  }
  CellArena::note_heap_alloc();
  v_.reserve(n);
}

}  // namespace ncs::atm
