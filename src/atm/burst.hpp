// The data-plane transfer unit.
//
// A Burst is a back-to-back train of cells carrying one AAL5 CPCS-PDU — at
// most one NIC I/O buffer's worth of user data. Two fidelity modes share
// the same timing arithmetic (wire bytes = cells x 53):
//
//  - burst mode (default for benchmarks): `payload` carries the user chunk;
//    cell framing is charged in time but cells are not materialized.
//  - detailed mode: `cells` carries the real segmented cells; the receiving
//    NIC runs HEC checks and the real AAL5 reassembler. A property test
//    pins the two modes to identical timing.
#pragma once

#include <cstdint>

#include "atm/cell.hpp"
#include "atm/cell_arena.hpp"
#include "common/bytes.hpp"

namespace ncs::atm {

struct Burst {
  VcId vc;
  std::uint32_t n_cells = 0;
  /// True on the burst that completes an API-level write (message framing
  /// above AAL5; carried opaquely by the network).
  bool end_of_message = true;
  Bytes payload;     // burst mode: the user chunk
  CellBuffer cells;  // detailed mode: real cells (payload empty), pooled
  /// Burst-mode stand-in for a corrupted cell: the receiving NIC's CRC
  /// check fails and the PDU is dropped (detailed mode flips a real payload
  /// bit instead and lets the AAL reassembler catch it).
  bool damaged = false;

  bool detailed() const { return !cells.empty(); }
  std::size_t wire_bytes() const { return static_cast<std::size_t>(n_cells) * Cell::kSize; }
};

/// Anything that can receive bursts from a link: a switch port or a NIC.
class CellSink {
 public:
  virtual ~CellSink() = default;
  virtual void accept(int port, Burst burst) = 0;
};

}  // namespace ncs::atm
