#include "atm/aal34.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/crc.hpp"

namespace ncs::atm::aal34 {

namespace {

/// CPCS-PDU length (header + payload padded to 4 + trailer).
std::size_t cpcs_size(std::size_t payload_bytes) {
  const std::size_t padded = (payload_bytes + 3) / 4 * 4;
  return kCpcsHeaderSize + padded + kCpcsTrailerSize;
}

/// Builds one 48-byte SAR-PDU.
void build_sar_pdu(std::array<std::byte, Cell::kPayloadSize>& out, SegmentType st,
                   std::uint8_t sn, std::uint16_t mid, BytesView chunk) {
  NCS_ASSERT(chunk.size() <= kSarPayloadSize);
  ByteWriter w(out);
  const std::uint16_t head = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(st) << 14) | ((sn & 0xF) << 10) | (mid & 0x3FF));
  w.u16(head);
  w.bytes(chunk);
  w.zeros(kSarPayloadSize - chunk.size());
  // Trailer: LI (6 bits) in the upper bits, CRC-10 over header+payload+LI.
  const std::uint16_t li = static_cast<std::uint16_t>(chunk.size());
  // Compose the final 16 bits with CRC zeroed, compute, then patch.
  w.u16(static_cast<std::uint16_t>(li << 10));
  const std::uint16_t crc =
      crc10_aal34(BytesView(out.data(), Cell::kPayloadSize));
  const std::uint16_t trailer = static_cast<std::uint16_t>((li << 10) | (crc & 0x3FF));
  out[46] = static_cast<std::byte>(trailer >> 8);
  out[47] = static_cast<std::byte>(trailer & 0xFF);
}

}  // namespace

std::size_t cell_count(std::size_t payload_bytes) {
  return (cpcs_size(payload_bytes) + kSarPayloadSize - 1) / kSarPayloadSize;
}

CellBuffer segment(VcId vc, BytesView payload, std::uint16_t mid, std::uint8_t btag) {
  NCS_ASSERT_MSG(payload.size() <= 65535 - 8, "AAL3/4 payload too large");

  // CPCS encapsulation.
  Bytes cpcs(cpcs_size(payload.size()), std::byte{0});
  {
    ByteWriter w(cpcs);
    w.u8(0);     // CPI
    w.u8(btag);  // Btag
    w.u16(static_cast<std::uint16_t>(cpcs.size() - kCpcsHeaderSize - kCpcsTrailerSize));  // BASize
    w.bytes(payload);
  }
  {
    ByteWriter w(std::span<std::byte>(cpcs).subspan(cpcs.size() - kCpcsTrailerSize));
    w.u8(0);     // AL
    w.u8(btag);  // Etag, must equal Btag
    w.u16(static_cast<std::uint16_t>(payload.size()));
  }

  // SAR segmentation into 44-byte chunks.
  const std::size_t n = (cpcs.size() + kSarPayloadSize - 1) / kSarPayloadSize;
  CellBuffer cells;
  cells.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t off = i * kSarPayloadSize;
    const std::size_t len = std::min(kSarPayloadSize, cpcs.size() - off);
    SegmentType st;
    if (n == 1) st = SegmentType::ssm;
    else if (i == 0) st = SegmentType::bom;
    else if (i + 1 == n) st = SegmentType::eom;
    else st = SegmentType::com;

    Cell& c = cells[i];
    c.header.vpi = vc.vpi;
    c.header.vci = vc.vci;
    build_sar_pdu(c.payload, st, static_cast<std::uint8_t>(i & 0xF), mid,
                  BytesView(cpcs).subspan(off, len));
  }
  return cells;
}

Result<Bytes> Reassembler::fail(const char* why) {
  reset();
  return Result<Bytes>(Status(ErrorCode::data_corruption, why));
}

void Reassembler::reset() {
  buffer_.clear();
  in_message_ = false;
  next_sn_ = 0;
}

std::optional<Result<Bytes>> Reassembler::push(const Cell& cell) {
  // Validate CRC-10 first: recompute over the SAR-PDU with the CRC bits
  // zeroed and compare.
  std::array<std::byte, Cell::kPayloadSize> scratch = cell.payload;
  const std::uint16_t trailer = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(scratch[46]) << 8) | static_cast<std::uint16_t>(scratch[47]));
  const std::uint16_t li = static_cast<std::uint16_t>(trailer >> 10);
  const std::uint16_t got_crc = static_cast<std::uint16_t>(trailer & 0x3FF);
  scratch[46] = static_cast<std::byte>((trailer >> 8) & 0xFC);
  scratch[47] = std::byte{0};
  if (crc10_aal34(BytesView(scratch.data(), Cell::kPayloadSize)) != got_crc)
    return fail("AAL3/4 CRC-10 mismatch");
  if (li > kSarPayloadSize) return fail("AAL3/4 length indicator out of range");

  ByteReader r(BytesView(cell.payload));
  const std::uint16_t head = r.u16();
  const auto st = static_cast<SegmentType>(head >> 14);
  const auto sn = static_cast<std::uint8_t>((head >> 10) & 0xF);
  const BytesView chunk = r.bytes(li);

  if (st == SegmentType::bom || st == SegmentType::ssm) {
    buffer_.clear();
    in_message_ = true;
    next_sn_ = static_cast<std::uint8_t>((sn + 1) & 0xF);
  } else {
    if (!in_message_) return fail("AAL3/4 COM/EOM without BOM");
    if (sn != next_sn_) return fail("AAL3/4 sequence number gap");
    next_sn_ = static_cast<std::uint8_t>((sn + 1) & 0xF);
  }
  append(buffer_, chunk);

  if (st != SegmentType::eom && st != SegmentType::ssm) return std::nullopt;

  // Message complete: strip and validate CPCS envelope.
  Bytes cpcs = std::move(buffer_);
  reset();
  if (cpcs.size() < kCpcsHeaderSize + kCpcsTrailerSize) return fail("AAL3/4 CPCS too short");

  ByteReader hr(cpcs);
  hr.u8();  // CPI
  const std::uint8_t bt = hr.u8();
  const std::uint16_t ba_size = hr.u16();

  ByteReader tr(BytesView(cpcs).subspan(cpcs.size() - kCpcsTrailerSize));
  tr.u8();  // AL
  const std::uint8_t et = tr.u8();
  const std::uint16_t length = tr.u16();

  if (bt != et) return fail("AAL3/4 Btag/Etag mismatch");
  if (length > ba_size || kCpcsHeaderSize + ba_size + kCpcsTrailerSize != cpcs.size())
    return fail("AAL3/4 CPCS length inconsistent");

  Bytes payload(cpcs.begin() + kCpcsHeaderSize, cpcs.begin() + kCpcsHeaderSize + length);
  return Result<Bytes>(std::move(payload));
}

}  // namespace ncs::atm::aal34
