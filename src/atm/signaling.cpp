#include "atm/signaling.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::atm {

namespace {

/// Small signaling PDUs are submitted as soon as a TX buffer frees; the
/// agent runs on engine events, so it queues instead of blocking.
void submit_when_free(sim::Engine& engine, Nic& nic, VcId vc, Bytes pdu) {
  if (nic.tx_buffer_available()) {
    nic.submit_tx(vc, std::move(pdu), /*end_of_message=*/true);
    return;
  }
  // Capture by value; retry on the buffer-free notification.
  nic.notify_tx_buffer([&engine, &nic, vc, p = std::move(pdu)]() mutable {
    submit_when_free(engine, nic, vc, std::move(p));
  });
}

}  // namespace

Bytes SignalingMessage::encode() const {
  Bytes out(1 + 4 + 4 + 4 + 2 * 3);
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(call_ref);
  w.u32(static_cast<std::uint32_t>(calling_party));
  w.u32(static_cast<std::uint32_t>(called_party));
  w.u8(assigned_vc.vpi);
  w.u16(assigned_vc.vci);
  w.u8(peer_vc.vpi);
  w.u16(peer_vc.vci);
  return out;
}

Result<SignalingMessage> SignalingMessage::decode(BytesView wire) {
  if (wire.size() < 19) return Status(ErrorCode::data_corruption, "short signaling PDU");
  ByteReader r(wire);
  SignalingMessage m;
  const std::uint8_t t = r.u8();
  if (t < 1 || t > 5) return Status(ErrorCode::data_corruption, "bad signaling type");
  m.type = static_cast<SignalingMessageType>(t);
  m.call_ref = r.u32();
  m.calling_party = static_cast<int>(r.u32());
  m.called_party = static_cast<int>(r.u32());
  m.assigned_vc.vpi = r.u8();
  m.assigned_vc.vci = r.u16();
  m.peer_vc.vpi = r.u8();
  m.peer_vc.vci = r.u16();
  return m;
}

SignalingAgent::SignalingAgent(sim::Engine& engine, Nic& nic, int host_index)
    : engine_(engine), nic_(nic), host_(host_index) {
  nic_.set_vc_handler(kSignalingVc, [this](VcId, Bytes data, bool) {
    on_signaling_pdu(data);
  });
}

void SignalingAgent::send(const SignalingMessage& msg) {
  submit_when_free(engine_, nic_, kSignalingVc, msg.encode());
}

void SignalingAgent::open_call(int called_party, ConnectHandler on_complete) {
  NCS_ASSERT(on_complete != nullptr);
  SignalingMessage msg;
  msg.type = SignalingMessageType::setup;
  msg.call_ref = next_call_ref_++;
  msg.calling_party = host_;
  msg.called_party = called_party;
  pending_.emplace(msg.call_ref, std::move(on_complete));
  ++stats_.calls_opened;
  send(msg);
}

void SignalingAgent::release_call(VcId data_vc) {
  SignalingMessage msg;
  msg.type = SignalingMessageType::release;
  msg.calling_party = host_;
  msg.assigned_vc = data_vc;
  ++stats_.releases;
  send(msg);
}

std::optional<VcId> SignalingAgent::accepted_vc_from(int calling_party) const {
  const auto it = accepted_.find(calling_party);
  if (it == accepted_.end()) return std::nullopt;
  return it->second;
}

void SignalingAgent::on_signaling_pdu(BytesView wire) {
  const auto decoded = SignalingMessage::decode(wire);
  if (!decoded.is_ok()) {
    NCS_WARN("atm.sig", "host %d: dropping malformed signaling PDU", host_);
    return;
  }
  const SignalingMessage& msg = decoded.value();

  switch (msg.type) {
    case SignalingMessageType::setup: {
      // Incoming call offer (relayed by the controller).
      const bool accept = !incoming_filter_ || incoming_filter_(msg.calling_party);
      SignalingMessage reply = msg;
      reply.type = accept ? SignalingMessageType::connect : SignalingMessageType::reject;
      if (accept) {
        ++stats_.calls_accepted;
        accepted_[msg.calling_party] = msg.assigned_vc;  // my tx label
      } else {
        ++stats_.calls_rejected;
      }
      send(reply);
      return;
    }
    case SignalingMessageType::connect: {
      const auto it = pending_.find(msg.call_ref);
      if (it == pending_.end()) return;
      ConnectHandler handler = std::move(it->second);
      pending_.erase(it);
      handler(Result<VcId>(msg.assigned_vc));
      return;
    }
    case SignalingMessageType::reject: {
      const auto it = pending_.find(msg.call_ref);
      if (it == pending_.end()) return;
      ConnectHandler handler = std::move(it->second);
      pending_.erase(it);
      handler(Result<VcId>(Status(ErrorCode::failed_precondition, "call rejected by callee")));
      return;
    }
    case SignalingMessageType::release:
    case SignalingMessageType::release_complete:
      // Peer or network released; forget any matching accepted call.
      for (auto it = accepted_.begin(); it != accepted_.end(); ++it) {
        if (it->second == msg.assigned_vc || it->second == msg.peer_vc) {
          accepted_.erase(it);
          break;
        }
      }
      // Let the data plane invalidate any circuit cache keyed on either
      // label (the caller's tx label rides in assigned_vc).
      if (release_handler_) release_handler_(msg.assigned_vc, msg.peer_vc);
      return;
  }
}

CallController::CallController(sim::Engine& engine, AtmLan& lan) : engine_(engine), lan_(lan) {
  lan_.fabric().add_local_endpoint(kSignalingVc, [this](int in_port, Burst burst) {
    const auto decoded = SignalingMessage::decode(burst.payload);
    if (!decoded.is_ok()) {
      NCS_WARN("atm.sig", "switch: dropping malformed signaling PDU from port %d", in_port);
      return;
    }
    on_signaling(in_port, decoded.value());
  });
  // Signaling always tracks the fabric's health: a dead port releases the
  // circuits through it so callers can re-establish after recovery.
  lan_.fabric().fault().subscribe([this](int port, bool down) {
    if (down) {
      fail_port(port);
    } else {
      restore_port(port);
    }
  });
}

void CallController::release_call_faulted(const Call& call) {
  remove_call_routes(call);
  by_vc_.erase(call.caller_vc);
  by_vc_.erase(call.callee_vc);
  ++stats_.faulted_releases;
  if (call.connected) --stats_.active_calls;
  SignalingMessage note;
  note.type = SignalingMessageType::release_complete;
  note.call_ref = call.call_ref;
  note.calling_party = call.caller;
  note.called_party = call.callee;
  note.assigned_vc = call.caller_vc;
  note.peer_vc = call.callee_vc;
  // Both parties are told; the one on the dead port won't hear it (the
  // switch eats the PDU), matching reality.
  forward_to_host(call.caller, note);
  forward_to_host(call.callee, note);
}

void CallController::fail_port(int port) {
  if (!failed_ports_.insert(port).second) return;
  NCS_INFO("atm.sig", "call controller: port %d failed, releasing its calls", port);
  // Host index == port index on the LAN star.
  for (auto it = calls_.begin(); it != calls_.end();) {
    const Call call = it->second;
    if (call.caller == port || call.callee == port) {
      it = calls_.erase(it);
      release_call_faulted(call);
    } else {
      ++it;
    }
  }
}

void CallController::restore_port(int port) { failed_ports_.erase(port); }

SignalingAgent& CallController::agent(int host) {
  auto it = agents_.find(host);
  if (it == agents_.end()) {
    it = agents_
             .emplace(host,
                      std::make_unique<SignalingAgent>(engine_, lan_.nic(host), host))
             .first;
  }
  return *it->second;
}

VcId CallController::allocate_vc() {
  // Dynamic labels must stay below every reserved PVC plane. The NIC
  // collective-context range (kCollVciBase) now sits *under* the RMA range,
  // so guarding against kRmaVciBase alone would let SVC churn silently
  // splice call labels into live firmware combine contexts.
  static_assert(kCollVciBase < kRmaVciBase);
  NCS_ASSERT_MSG(next_vci_ < kCollVciBase, "dynamic VCI space exhausted");
  return VcId{0, next_vci_++};
}

void CallController::install_call_routes(const Call& call) {
  // Same label on both hops: (caller port, caller_vc) -> (callee port,
  // caller_vc), and the mirror for the callee's transmit label.
  lan_.fabric().add_route(call.caller, call.caller_vc, call.callee, call.caller_vc);
  lan_.fabric().add_route(call.callee, call.callee_vc, call.caller, call.callee_vc);
}

void CallController::remove_call_routes(const Call& call) {
  lan_.fabric().remove_route(call.caller, call.caller_vc);
  lan_.fabric().remove_route(call.callee, call.callee_vc);
}

void CallController::forward_to_host(int host, const SignalingMessage& msg) {
  Burst burst;
  burst.vc = kSignalingVc;
  burst.payload = msg.encode();
  burst.n_cells = static_cast<std::uint32_t>(aal5::cell_count(burst.payload.size()));
  burst.end_of_message = true;
  lan_.fabric().send_local(host, std::move(burst));
}

void CallController::on_signaling(int in_port, const SignalingMessage& msg) {
  switch (msg.type) {
    case SignalingMessageType::setup: {
      ++stats_.setups;
      if (msg.called_party < 0 || msg.called_party >= lan_.n_hosts() ||
          failed_ports_.contains(msg.called_party)) {
        // Unknown party — or a known one behind a failed port, where the
        // offer could never be delivered: reject instead of letting the
        // caller hang on a SETUP with no answer.
        SignalingMessage reject = msg;
        reject.type = SignalingMessageType::reject;
        forward_to_host(msg.calling_party, reject);
        ++stats_.rejects;
        return;
      }
      Call call{msg.call_ref, msg.calling_party, msg.called_party, allocate_vc(),
                allocate_vc()};
      calls_.emplace(std::make_pair(call.caller, call.call_ref), call);
      // Offer to the callee, telling it which label it would transmit on
      // and which label the caller's traffic will arrive under.
      SignalingMessage offer = msg;
      offer.assigned_vc = call.callee_vc;
      offer.peer_vc = call.caller_vc;
      forward_to_host(call.callee, offer);
      return;
    }
    case SignalingMessageType::connect: {
      const auto it = calls_.find(std::make_pair(msg.calling_party, msg.call_ref));
      if (it == calls_.end()) return;
      Call& call = it->second;
      NCS_ASSERT(in_port == call.callee);
      call.connected = true;
      install_call_routes(call);
      by_vc_[call.caller_vc] = it->first;
      by_vc_[call.callee_vc] = it->first;
      ++stats_.connects;
      ++stats_.active_calls;
      // Tell the caller its transmit label and the label to expect.
      SignalingMessage connect = msg;
      connect.assigned_vc = call.caller_vc;
      connect.peer_vc = call.callee_vc;
      forward_to_host(call.caller, connect);
      return;
    }
    case SignalingMessageType::reject: {
      const auto it = calls_.find(std::make_pair(msg.calling_party, msg.call_ref));
      if (it == calls_.end()) return;
      ++stats_.rejects;
      forward_to_host(it->second.caller, msg);
      calls_.erase(it);
      return;
    }
    case SignalingMessageType::release: {
      const auto vit = by_vc_.find(msg.assigned_vc);
      if (vit == by_vc_.end()) return;
      const auto cit = calls_.find(vit->second);
      NCS_ASSERT(cit != calls_.end());
      const Call call = cit->second;
      remove_call_routes(call);
      by_vc_.erase(call.caller_vc);
      by_vc_.erase(call.callee_vc);
      calls_.erase(cit);
      ++stats_.releases;
      --stats_.active_calls;
      // Notify both parties.
      SignalingMessage note = msg;
      note.type = SignalingMessageType::release_complete;
      note.assigned_vc = call.caller_vc;
      note.peer_vc = call.callee_vc;
      forward_to_host(call.caller, note);
      forward_to_host(call.callee, note);
      return;
    }
    case SignalingMessageType::release_complete:
      return;  // host-side only
  }
}

WanCallController::WanCallController(sim::Engine& engine, AtmWan& wan)
    : engine_(engine), wan_(wan) {
  for (int site = 0; site < 2; ++site) {
    wan_.site_switch(site).add_local_endpoint(
        kSignalingVc, [this, site](int in_port, Burst burst) {
          const auto decoded = SignalingMessage::decode(burst.payload);
          if (!decoded.is_ok()) {
            NCS_WARN("atm.sig", "site %d: dropping malformed signaling PDU", site);
            return;
          }
          on_signaling(site, in_port, decoded.value());
        });
    wan_.site_switch(site).fault().subscribe([this, site](int port, bool down) {
      if (down) {
        fail_port(site, port);
      } else {
        restore_port(site, port);
      }
    });
  }
}

bool WanCallController::touches_port(const Call& call, int site, int port) const {
  if (port == wan_.backbone_port(site))
    return wan_.site_of(call.caller) != wan_.site_of(call.callee);
  for (const int party : {call.caller, call.callee})
    if (wan_.site_of(party) == site && wan_.local_port(party) == port) return true;
  return false;
}

void WanCallController::release_call_faulted(const Call& call) {
  remove_call_routes(call);
  by_vc_.erase(call.caller_vc);
  by_vc_.erase(call.callee_vc);
  ++stats_.faulted_releases;
  --stats_.active_calls;
  for (const int party : {call.caller, call.callee}) {
    SignalingMessage note;
    note.type = SignalingMessageType::release_complete;
    note.call_ref = call.call_ref;
    note.calling_party = call.caller;
    note.called_party = party;  // explicit destination for transit hops
    note.assigned_vc = call.caller_vc;
    note.peer_vc = call.callee_vc;
    route_to_host(wan_.site_of(party), party, note);
  }
}

void WanCallController::fail_port(int site, int port) {
  if (!failed_ports_.insert({site, port}).second) return;
  NCS_INFO("atm.sig", "wan call controller: site %d port %d failed", site, port);
  // Connected calls only (by_vc_): half-open calls resolve when the
  // CONNECT/REJECT PDU is eaten by the dead port and the caller retries.
  for (auto it = calls_.begin(); it != calls_.end();) {
    const Call call = it->second;
    if (by_vc_.contains(call.caller_vc) && touches_port(call, site, port)) {
      it = calls_.erase(it);
      release_call_faulted(call);
    } else {
      ++it;
    }
  }
}

void WanCallController::restore_port(int site, int port) {
  failed_ports_.erase({site, port});
}

SignalingAgent& WanCallController::agent(int host) {
  auto it = agents_.find(host);
  if (it == agents_.end()) {
    it = agents_
             .emplace(host,
                      std::make_unique<SignalingAgent>(engine_, wan_.nic(host), host))
             .first;
  }
  return *it->second;
}

VcId WanCallController::allocate_vc() {
  // Same bound as the LAN controller: dynamic labels stop short of the
  // lowest reserved PVC plane (the NIC collective-context range) instead
  // of wrapping into it.
  NCS_ASSERT_MSG(next_vci_ < kCollVciBase, "dynamic VCI space exhausted");
  return VcId{0, next_vci_++};
}

void WanCallController::send_on_switch_port(int site, int port, const SignalingMessage& msg) {
  Burst burst;
  burst.vc = kSignalingVc;
  burst.payload = msg.encode();
  burst.n_cells = static_cast<std::uint32_t>(aal5::cell_count(burst.payload.size()));
  burst.end_of_message = true;
  wan_.site_switch(site).send_local(port, std::move(burst));
}

void WanCallController::route_to_host(int from_site, int host, const SignalingMessage& msg) {
  const int target_site = wan_.site_of(host);
  if (target_site != from_site) {
    // Transit the backbone: the peer switch's local endpoint re-enters
    // on_signaling with in_port == its backbone port.
    ++stats_.backbone_hops;
    send_on_switch_port(from_site, wan_.backbone_port(from_site), msg);
    return;
  }
  send_on_switch_port(target_site, wan_.local_port(host), msg);
}

void WanCallController::install_call_routes(const Call& call) {
  const int sa = wan_.site_of(call.caller);
  const int sb = wan_.site_of(call.callee);
  Switch& swa = wan_.site_switch(sa);
  Switch& swb = wan_.site_switch(sb);
  const int pa = wan_.local_port(call.caller);
  const int pb = wan_.local_port(call.callee);
  if (sa == sb) {
    swa.add_route(pa, call.caller_vc, pb, call.caller_vc);
    swa.add_route(pb, call.callee_vc, pa, call.callee_vc);
    return;
  }
  // Label continuity across the backbone: the same VCI on every hop.
  swa.add_route(pa, call.caller_vc, wan_.backbone_port(sa), call.caller_vc);
  swb.add_route(wan_.backbone_port(sb), call.caller_vc, pb, call.caller_vc);
  swb.add_route(pb, call.callee_vc, wan_.backbone_port(sb), call.callee_vc);
  swa.add_route(wan_.backbone_port(sa), call.callee_vc, pa, call.callee_vc);
}

void WanCallController::remove_call_routes(const Call& call) {
  const int sa = wan_.site_of(call.caller);
  const int sb = wan_.site_of(call.callee);
  const int pa = wan_.local_port(call.caller);
  const int pb = wan_.local_port(call.callee);
  if (sa == sb) {
    wan_.site_switch(sa).remove_route(pa, call.caller_vc);
    wan_.site_switch(sa).remove_route(pb, call.callee_vc);
    return;
  }
  wan_.site_switch(sa).remove_route(pa, call.caller_vc);
  wan_.site_switch(sb).remove_route(wan_.backbone_port(sb), call.caller_vc);
  wan_.site_switch(sb).remove_route(pb, call.callee_vc);
  wan_.site_switch(sa).remove_route(wan_.backbone_port(sa), call.callee_vc);
}

void WanCallController::on_signaling(int site, int in_port, const SignalingMessage& msg) {
  // A message entering from the backbone port continues towards its
  // destination host; host-originated messages drive the call state.
  const bool from_backbone = in_port == wan_.backbone_port(site);

  switch (msg.type) {
    case SignalingMessageType::setup: {
      if (from_backbone) {  // offer in transit towards the callee
        route_to_host(site, msg.called_party, msg);
        return;
      }
      ++stats_.setups;
      bool unreachable = msg.called_party < 0 || msg.called_party >= wan_.n_hosts();
      if (!unreachable) {
        const int target_site = wan_.site_of(msg.called_party);
        unreachable =
            failed_ports_.contains({target_site, wan_.local_port(msg.called_party)});
        // A cross-site offer also needs the backbone alive on both ends.
        if (target_site != site)
          unreachable = unreachable ||
                        failed_ports_.contains({site, wan_.backbone_port(site)}) ||
                        failed_ports_.contains(
                            {target_site, wan_.backbone_port(target_site)});
      }
      if (unreachable) {
        SignalingMessage reject = msg;
        reject.type = SignalingMessageType::reject;
        route_to_host(site, msg.calling_party, reject);
        ++stats_.rejects;
        return;
      }
      Call call{msg.call_ref, msg.calling_party, msg.called_party, allocate_vc(),
                allocate_vc()};
      calls_.emplace(std::make_pair(call.caller, call.call_ref), call);
      SignalingMessage offer = msg;
      offer.assigned_vc = call.callee_vc;
      offer.peer_vc = call.caller_vc;
      route_to_host(site, call.callee, offer);
      return;
    }
    case SignalingMessageType::connect: {
      if (from_backbone) {
        route_to_host(site, msg.calling_party, msg);
        return;
      }
      const auto it = calls_.find(std::make_pair(msg.calling_party, msg.call_ref));
      if (it == calls_.end()) return;
      Call& call = it->second;
      install_call_routes(call);
      by_vc_[call.caller_vc] = it->first;
      by_vc_[call.callee_vc] = it->first;
      ++stats_.connects;
      ++stats_.active_calls;
      SignalingMessage connect = msg;
      connect.assigned_vc = call.caller_vc;
      connect.peer_vc = call.callee_vc;
      route_to_host(site, call.caller, connect);
      return;
    }
    case SignalingMessageType::reject: {
      if (from_backbone) {
        route_to_host(site, msg.calling_party, msg);
        return;
      }
      const auto it = calls_.find(std::make_pair(msg.calling_party, msg.call_ref));
      if (it == calls_.end()) return;
      ++stats_.rejects;
      SignalingMessage reject = msg;
      route_to_host(site, it->second.caller, reject);
      calls_.erase(it);
      return;
    }
    case SignalingMessageType::release: {
      if (from_backbone) return;  // teardown is driven at first entry
      const auto vit = by_vc_.find(msg.assigned_vc);
      if (vit == by_vc_.end()) return;
      const auto cit = calls_.find(vit->second);
      NCS_ASSERT(cit != calls_.end());
      const Call call = cit->second;
      remove_call_routes(call);
      by_vc_.erase(call.caller_vc);
      by_vc_.erase(call.callee_vc);
      calls_.erase(cit);
      ++stats_.releases;
      --stats_.active_calls;
      for (const int party : {call.caller, call.callee}) {
        SignalingMessage note = msg;
        note.type = SignalingMessageType::release_complete;
        note.called_party = party;  // explicit destination for transit hops
        note.assigned_vc = call.caller_vc;
        note.peer_vc = call.callee_vc;
        route_to_host(site, party, note);
      }
      return;
    }
    case SignalingMessageType::release_complete:
      if (from_backbone) route_to_host(site, msg.called_party, msg);
      return;
  }
}

}  // namespace ncs::atm
