#include "atm/cellmux.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ncs::atm {

CellMux::CellMux(sim::Engine& engine, net::Link& link, CellSink& peer, int peer_port)
    : engine_(engine), link_(link), peer_(peer), peer_port_(peer_port) {}

void CellMux::submit(Burst burst) {
  NCS_ASSERT(burst.n_cells > 0);
  ++stats_.bursts;
  if (!interleave_) {
    fifo_.push_back(std::move(burst));
    fifo_enqueued_.push_back(engine_.now());
  } else {
    Flow& flow = flows_[burst.vc];
    if (!flow.in_ring) {
      flow.in_ring = true;
      rr_order_.push_back(burst.vc);
    }
    if (flow.bursts.empty()) flow.cells_left_in_head = burst.n_cells;
    flow.enqueued.push_back(engine_.now());
    flow.bursts.push_back(std::move(burst));
  }
  pump();
}

CellMux::Flow* CellMux::next_flow() {
  // Sweep from rr_pos_, dropping drained VCs as they are encountered. The
  // ring (and the flow table) stay bounded by the set of *backlogged* VCs;
  // SVC churn — many short-lived VCs over the mux's lifetime — would
  // otherwise grow both without bound.
  std::size_t probes = rr_order_.size();
  while (probes-- > 0) {
    if (rr_pos_ >= rr_order_.size()) rr_pos_ = 0;
    auto it = flows_.find(rr_order_[rr_pos_]);
    NCS_ASSERT(it != flows_.end());
    Flow& flow = it->second;
    if (!flow.bursts.empty()) {
      rr_pos_ = (rr_pos_ + 1) % rr_order_.size();
      return &flow;
    }
    // Drained: leave the ring and the table; a new burst on this VC
    // re-registers it in submit(). rr_pos_ now indexes the next entry.
    NCS_ASSERT(flow.cells_left_in_head == 0 && flow.enqueued.empty());
    flows_.erase(it);
    rr_order_.erase(rr_order_.begin() + static_cast<std::ptrdiff_t>(rr_pos_));
  }
  return nullptr;
}

void CellMux::note_delivered(const Burst& burst, TimePoint submitted) {
  if (prof_ != nullptr) prof_->record(obs::Layer::mux_queue, engine_.now() - submitted);
  if (trace_ == nullptr) return;
  trace_->complete(trace_track_,
                   "vc" + std::to_string(burst.vc.vpi) + "." + std::to_string(burst.vc.vci) +
                       " x" + std::to_string(burst.n_cells),
                   "atm", submitted, engine_.now() - submitted);
}

void CellMux::pump() {
  if (transmitting_) return;

  if (!interleave_) {
    if (fifo_.empty()) return;
    Burst burst = std::move(fifo_.front());
    fifo_.pop_front();
    const TimePoint submitted = fifo_enqueued_.front();
    fifo_enqueued_.pop_front();
    transmitting_ = true;
    stats_.cells_sent += burst.n_cells;
    ++stats_.turns;
    note_delivered(burst, submitted);
    link_.transmit(
        burst.wire_bytes(),
        [this] {
          transmitting_ = false;
          pump();
        },
        [this, b = std::move(burst)]() mutable { peer_.accept(peer_port_, std::move(b)); });
    return;
  }

  Flow* flow = next_flow();
  if (flow == nullptr) return;

  NCS_ASSERT(flow->cells_left_in_head > 0);
  --flow->cells_left_in_head;
  ++stats_.cells_sent;
  ++stats_.turns;
  const bool last_cell = flow->cells_left_in_head == 0;

  transmitting_ = true;
  sim::EventFn on_delivered;
  if (last_cell) {
    Burst finished = std::move(flow->bursts.front());
    flow->bursts.pop_front();
    const TimePoint submitted = flow->enqueued.front();
    flow->enqueued.pop_front();
    if (!flow->bursts.empty()) flow->cells_left_in_head = flow->bursts.front().n_cells;
    note_delivered(finished, submitted);
    on_delivered = [this, b = std::move(finished)]() mutable {
      peer_.accept(peer_port_, std::move(b));
    };
  }
  link_.transmit(Cell::kSize,
                 [this] {
                   transmitting_ = false;
                   pump();
                 },
                 std::move(on_delivered));
}

void CellMux::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/bursts", &stats_.bursts);
  reg.counter(prefix + "/cells_sent", &stats_.cells_sent);
  reg.counter(prefix + "/turns", &stats_.turns);
}

}  // namespace ncs::atm
