#include "atm/cellmux.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ncs::atm {

CellMux::CellMux(sim::Engine& engine, net::Link& link, CellSink& peer, int peer_port)
    : engine_(engine), link_(link), peer_(peer), peer_port_(peer_port) {}

void CellMux::submit(Burst burst) {
  NCS_ASSERT(burst.n_cells > 0);
  ++stats_.bursts;
  if (!interleave_) {
    fifo_.push_back(std::move(burst));
  } else {
    Flow& flow = flows_[burst.vc];
    if (flow.bursts.empty() && flow.cells_left_in_head == 0) {
      // First pending work on this VC: join the round-robin ring.
      if (std::find(rr_order_.begin(), rr_order_.end(), burst.vc) == rr_order_.end())
        rr_order_.push_back(burst.vc);
    }
    if (flow.bursts.empty()) flow.cells_left_in_head = burst.n_cells;
    flow.bursts.push_back(std::move(burst));
  }
  pump();
}

CellMux::Flow* CellMux::next_flow() {
  for (std::size_t probe = 0; probe < rr_order_.size(); ++probe) {
    const std::size_t idx = (rr_pos_ + probe) % rr_order_.size();
    Flow& flow = flows_[rr_order_[idx]];
    if (!flow.bursts.empty()) {
      rr_pos_ = (idx + 1) % rr_order_.size();
      return &flow;
    }
  }
  return nullptr;
}

void CellMux::pump() {
  if (transmitting_) return;

  if (!interleave_) {
    if (fifo_.empty()) return;
    Burst burst = std::move(fifo_.front());
    fifo_.pop_front();
    transmitting_ = true;
    stats_.cells_sent += burst.n_cells;
    ++stats_.turns;
    link_.transmit(
        burst.wire_bytes(),
        [this] {
          transmitting_ = false;
          pump();
        },
        [this, b = std::move(burst)]() mutable { peer_.accept(peer_port_, std::move(b)); });
    return;
  }

  Flow* flow = next_flow();
  if (flow == nullptr) return;

  NCS_ASSERT(flow->cells_left_in_head > 0);
  --flow->cells_left_in_head;
  ++stats_.cells_sent;
  ++stats_.turns;
  const bool last_cell = flow->cells_left_in_head == 0;

  transmitting_ = true;
  sim::EventFn on_delivered;
  if (last_cell) {
    Burst finished = std::move(flow->bursts.front());
    flow->bursts.pop_front();
    if (!flow->bursts.empty()) flow->cells_left_in_head = flow->bursts.front().n_cells;
    on_delivered = [this, b = std::move(finished)]() mutable {
      peer_.accept(peer_port_, std::move(b));
    };
  }
  link_.transmit(Cell::kSize,
                 [this] {
                   transmitting_ = false;
                   pump();
                 },
                 std::move(on_delivered));
}

}  // namespace ncs::atm
