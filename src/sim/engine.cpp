#include "sim/engine.hpp"

#include "common/assert.hpp"

namespace ncs::sim {

EventId Engine::schedule_at(TimePoint t, EventFn fn) {
  NCS_ASSERT_MSG(t >= now_, "scheduling an event in the past");
  NCS_ASSERT(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  queue_.emplace(Key{t, seq}, std::move(fn));
  by_seq_.emplace(seq, t);
  return seq;
}

bool Engine::cancel(EventId id) {
  const auto idx = by_seq_.find(id);
  if (idx == by_seq_.end()) return false;  // already fired or cancelled
  const auto it = queue_.find(Key{idx->second, id});
  NCS_ASSERT(it != queue_.end());
  queue_.erase(it);
  by_seq_.erase(idx);
  return true;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  NCS_ASSERT(it->first.first >= now_);
  now_ = it->first.first;
  by_seq_.erase(it->first.second);
  EventFn fn = std::move(it->second);
  queue_.erase(it);
  ++processed_;
  fn();
  return true;
}

std::uint64_t Engine::run() {
  const std::uint64_t start = processed_;
  while (step()) {
  }
  return processed_ - start;
}

std::uint64_t Engine::run_until(TimePoint deadline) {
  const std::uint64_t start = processed_;
  while (!queue_.empty() && queue_.begin()->first.first <= deadline) step();
  if (now_ < deadline) now_ = deadline;
  return processed_ - start;
}

}  // namespace ncs::sim
