#include "sim/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ncs::sim {

namespace {

constexpr std::uint64_t kU64Max = ~std::uint64_t{0};

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  return a > kU64Max - b ? kU64Max : a + b;
}

EventId pack_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) | slot;
}

// Relative cost of one sorted-insert walk step (a dependent load from a
// scattered event node) versus one find_min empty-bucket probe (a
// streaming read of the bucket array) in the shared wasted_steps_ budget.
constexpr std::uint64_t kWalkWeight = 8;

}  // namespace

Engine::Engine(QueueKind kind) : kind_(kind) {
  if (kind_ == QueueKind::calendar) {
    buckets_.resize(kMinBuckets);
    // Seed width: 1 us. Arbitrary but harmless — the first resize (at 2 *
    // kMinBuckets pending events) replaces it with the measured gap.
    width_ps_ = 1'000'000;
    overflow_limit_ps_ = width_ps_ * static_cast<std::int64_t>(kMinBuckets);
  }
}

Engine::~Engine() = default;

// --- arena ---

Engine::Event* Engine::alloc_event() {
  if (free_head_ == nullptr) {
    auto slab = std::make_unique<Event[]>(kSlabEvents);
    for (std::size_t i = 0; i < kSlabEvents; ++i) {
      Event& e = slab[i];
      e.slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(&e);
      e.next = free_head_;
      free_head_ = &e;
    }
    slabs_.push_back(std::move(slab));
  }
  Event* e = free_head_;
  free_head_ = e->next;
  e->next = nullptr;
  return e;
}

void Engine::free_event(Event* e) {
  e->fn = nullptr;  // run the capture's destructor now, not at slot reuse
  e->queued = false;
  e->in_overflow = false;
  // Bump the generation so every outstanding id for this slot goes stale.
  if (++e->gen == 0) e->gen = 1;
  e->prev = nullptr;
  e->next = free_head_;
  free_head_ = e;
}

// --- bucket list maintenance ---

void Engine::bucket_insert(Event* e) {
  Bucket& b = buckets_[bucket_of(e->time_ps)];
  if (b.tail == nullptr) {
    b.head = b.tail = e;
    e->prev = e->next = nullptr;
    ++n_occupied_;
  } else if (!before(*e, *b.tail)) {
    // Fast path: at-or-after the tail. Same-time events always land here
    // (their seq is the largest yet), which keeps the FIFO tier O(1).
    e->prev = b.tail;
    e->next = nullptr;
    b.tail->next = e;
    b.tail = e;
  } else {
    Event* at = b.head;
    std::uint64_t steps = 0;
    while (before(*at, *e)) {
      at = at->next;  // tail check above bounds this
      ++steps;
    }
    // A couple of steps per insert is healthy; only the excess indicates a
    // too-wide bucket (many distinct instants chained in one list). Each
    // step is a cold pointer chase through scattered nodes — as expensive
    // as a rebuild moving one node — so it weighs kWalkWeight times an
    // empty-bucket probe, which only streams the bucket array. A misfit
    // that shows up as long walks then refits after ~n_pending of them
    // (one rebuild's worth of damage), not after 8x that.
    if (steps > 2) wasted_steps_ += kWalkWeight * (steps - 2);
    e->next = at;
    e->prev = at->prev;
    at->prev = e;
    if (e->prev != nullptr) {
      e->prev->next = e;
    } else {
      b.head = e;
    }
  }
  e->queued = true;
}

void Engine::bucket_unlink(Event* e) {
  Bucket& b = buckets_[bucket_of(e->time_ps)];
  if (e->prev != nullptr) {
    e->prev->next = e->next;
  } else {
    b.head = e->next;
  }
  if (e->next != nullptr) {
    e->next->prev = e->prev;
  } else {
    b.tail = e->prev;
  }
  if (b.head == nullptr) --n_occupied_;
  e->queued = false;
}

// --- far-future overflow bag (unordered, swap-remove) ---

void Engine::overflow_push(Event* e) {
  e->ovf_idx = static_cast<std::uint32_t>(overflow_.size());
  overflow_.push_back(e);
  e->queued = true;
  e->in_overflow = true;
  ++n_overflow_;
}

void Engine::overflow_unlink(Event* e) {
  Event* last = overflow_.back();
  overflow_[e->ovf_idx] = last;
  last->ovf_idx = e->ovf_idx;
  overflow_.pop_back();
  e->queued = false;
  e->in_overflow = false;
  --n_overflow_;
}

void Engine::migrate_overflow() {
  NCS_ASSERT(n_calendar_ == 0 && n_overflow_ != 0);
  // One refit re-fits the geometry to the parked population and re-anchors
  // the year at its earliest event, which always lands in the calendar.
  rebuild();
  NCS_ASSERT(n_calendar_ != 0);
}

// --- scheduling ---

EventId Engine::schedule_at(TimePoint t, EventFn fn) {
  NCS_ASSERT_MSG(t >= now_, "scheduling an event in the past");
  NCS_ASSERT(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  ++stats_.scheduled;

  if (kind_ == QueueKind::legacy_map) {
    legacy_queue_.emplace(LegacyKey{t, seq}, std::move(fn));
    legacy_by_seq_.emplace(seq, t);
    stats_.peak_pending = std::max(stats_.peak_pending, legacy_queue_.size());
    return seq;
  }

  Event* e = alloc_event();
  e->time_ps = t.ps();
  e->seq = seq;
  e->fn = std::move(fn);
  ++n_pending_;  // before maybe_resize: rebuild() checks it against reality
  stats_.peak_pending = std::max(stats_.peak_pending, n_pending_);
  // pack_id inputs are stable across a rebuild (it moves nodes, not slots),
  // so the id can be formed before the insert triggers one.
  const EventId id = pack_id(e->slot, e->gen);
  if (e->time_ps >= overflow_limit_ps_) {
    overflow_push(e);
  } else {
    bucket_insert(e);
    ++n_calendar_;
    if (cached_min_bucket_ >= 0) {
      const Event* cached = buckets_[static_cast<std::size_t>(cached_min_bucket_)].head;
      // An earlier key than the cached global min is the new min — and is
      // by definition the head of its own bucket.
      if (cached == nullptr || before(*e, *cached))
        cached_min_bucket_ = static_cast<int>(bucket_of(e->time_ps));
    }
    maybe_resize();
  }
  return id;
}

bool Engine::cancel(EventId id) {
  if (kind_ == QueueKind::legacy_map) {
    const auto idx = legacy_by_seq_.find(id);
    if (idx == legacy_by_seq_.end()) return false;  // already fired or cancelled
    const auto it = legacy_queue_.find(LegacyKey{idx->second, id});
    NCS_ASSERT(it != legacy_queue_.end());
    legacy_queue_.erase(it);
    legacy_by_seq_.erase(idx);
    ++stats_.cancelled;
    return true;
  }

  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Event* e = slots_[slot];
  // Fired, already cancelled, or the slot has been reused since: stale.
  if (!e->queued || e->gen != gen) return false;
  --n_pending_;  // before maybe_resize: rebuild() checks it against reality
  ++stats_.cancelled;
  if (e->in_overflow) {
    overflow_unlink(e);
    free_event(e);
  } else {
    if (cached_min_bucket_ >= 0 &&
        buckets_[static_cast<std::size_t>(cached_min_bucket_)].head == e)
      cached_min_bucket_ = -1;
    bucket_unlink(e);
    --n_calendar_;
    free_event(e);  // before maybe_resize: a freed node must not be refiled
    maybe_resize();
  }
  return true;
}

// --- dequeue ---

Engine::Event* Engine::find_min() {
  if (cached_min_bucket_ >= 0) {
    Event* h = buckets_[static_cast<std::size_t>(cached_min_bucket_)].head;
    NCS_ASSERT(h != nullptr);
    return h;
  }
  if (n_calendar_ == 0) {
    if (n_overflow_ == 0) return nullptr;
    migrate_overflow();  // guarantees n_calendar_ > 0: the anchor event moves
  } else if (wasted_steps_ > 256 + kWalkWeight * n_pending_) {
    // Drain phases pop without scheduling, so maybe_resize never runs;
    // check the waste budget here too or a miss-fitted table keeps paying
    // full empty-bucket scans per pop to the end.
    rebuild();
  }

  const auto width = static_cast<std::uint64_t>(width_ps_);
  const std::size_t mask = buckets_.size() - 1;
  std::uint64_t epoch = static_cast<std::uint64_t>(now_.ps()) / width;
  std::size_t b = epoch & mask;
  // Upper time bound of bucket b's current-year window. Events in earlier
  // windows cannot exist (nothing is scheduled in the past), so the first
  // head inside its window is the global minimum.
  std::uint64_t top = saturating_add(epoch, 1) > kU64Max / width
                          ? kU64Max
                          : (epoch + 1) * width;
  for (std::size_t visited = 0; visited < buckets_.size(); ++visited) {
    const Event* h = buckets_[b].head;
    if (h != nullptr && static_cast<std::uint64_t>(h->time_ps) < top) {
      cached_min_bucket_ = static_cast<int>(b);
      // Skipping a couple of empty buckets per pop is the healthy steady
      // state of a ~half-occupied table; only the excess is waste.
      if (visited > 2) wasted_steps_ += visited - 2;
      return buckets_[b].head;
    }
    b = (b + 1) & mask;
    top = saturating_add(top, width);
  }

  // Sparse tail: nothing within a full year of `now`. Direct-search the
  // bucket heads (each bucket is sorted, so the min is one of them).
  wasted_steps_ += buckets_.size();
  Event* best = nullptr;
  std::size_t best_bucket = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    Event* h = buckets_[i].head;
    if (h != nullptr && (best == nullptr || before(*h, *best))) {
      best = h;
      best_bucket = i;
    }
  }
  NCS_ASSERT(best != nullptr);
  cached_min_bucket_ = static_cast<int>(best_bucket);
  return best;
}

void Engine::pop(Event* e) {
  // Same-instant storm fast path: the event right behind the popped min in
  // its FIFO chain carries the identical timestamp, so it *is* the next
  // global min — keep the cache instead of rescanning from `now`.
  const bool next_is_min = e->next != nullptr && e->next->time_ps == e->time_ps;
  bucket_unlink(e);
  --n_pending_;
  --n_calendar_;
  if (!next_is_min) cached_min_bucket_ = -1;
}

// --- geometry adaptation ---

void Engine::maybe_resize() {
  // Refit only when the current geometry has demonstrably wasted as much
  // work as a refit costs. Population- or occupancy-threshold triggers are
  // deliberately absent: they fire on workload phase swings that the
  // geometry handles fine (same-instant ties are O(1) regardless of
  // count), and a trigger that can fire at a fixpoint rebuilds forever.
  if (wasted_steps_ > 256 + kWalkWeight * n_pending_) rebuild();
}

void Engine::rebuild() {
  ++stats_.resizes;

  // Detach every pending node — buckets and overflow both — into one
  // packed (time, seq, node) array and sort it — see Refile in the
  // header. The stride sample the geometry fit reads below then consists
  // of exact population percentiles, and the whole procedure is
  // deterministic: identical runs make identical geometry decisions.
  refile_scratch_.clear();
  for (Bucket& b : buckets_) {
    for (Event* e = b.head; e != nullptr; e = e->next)
      refile_scratch_.push_back({e->time_ps, e->seq, e});
    b.head = b.tail = nullptr;
  }
  for (Event* e : overflow_) {
    e->in_overflow = false;
    refile_scratch_.push_back({e->time_ps, e->seq, e});
  }
  overflow_.clear();
  n_calendar_ = 0;
  n_overflow_ = 0;
  std::sort(refile_scratch_.begin(), refile_scratch_.end(),
            [](const Refile& a, const Refile& b) {
              return a.time_ps != b.time_ps ? a.time_ps < b.time_ps : a.seq < b.seq;
            });
  const std::size_t n = refile_scratch_.size();
  NCS_ASSERT(n == n_pending_);
  const std::size_t stride = n <= kMaxSample ? 1 : n / kMaxSample;
  const std::size_t s = n == 0 ? 0 : (n - 1) / stride + 1;
  const auto sample = [&](std::size_t j) { return refile_scratch_[j * stride].time_ps; };

  // Bucket width: the average gap between the earliest pending events
  // (Brown's estimate, times 3 so a bucket holds a few events), with two
  // refinements for simulation workloads whose timestamps are heavily
  // *quantized* (whole hosts acting at the same microsecond-aligned
  // instant, cell trains on a sub-microsecond lattice):
  //
  //  - The average runs over the earliest ~32 *distinct* instants but is
  //    deflated by the raw events they span, so a bucket targets ~3
  //    events, not 3 tie runs. A raw 32-sample can sit entirely inside one
  //    tie run and see no spacing signal at all (the old `avg_gap <= 0 ->
  //    width 1 ps` fallback then aliased every lattice event into the few
  //    buckets dividing the table size).
  //
  //  - The width is floored at the smallest observed adjacent gap — the
  //    time quantum. On a lattice the deflated average lands far below the
  //    quantum, which would buy nothing (instants cannot be split) and
  //    waste a larger table. Width = quantum makes each bucket one
  //    instant; ties ride the O(1) tail append. For continuous workloads
  //    min-gap < average, so the floor is inert.
  //
  //  - When tie runs are material (>= 2 raw events per distinct instant)
  //    the width *is* the quantum, not 3x the deflated average. "A few
  //    raw events per bucket" is a meaningless target once events arrive
  //    in runs: a bucket then holds a couple of *instants*, and every
  //    insert of the later instant walks the earlier instant's whole run
  //    — cold pointer chases the waste budget duly trips on, whereupon
  //    this fit reproduces the same width and the rebuilds cycle without
  //    converging (measured: a mid-size bimodal mix rebuilt 758 times in
  //    a 200k-event run, ~3x slower than the fixed geometry). Instant
  //    gaps on beat-frequency lattices (cell trains at 3030 ns against
  //    microsecond ticks) are bimodal themselves, so only the quantum —
  //    not any average — separates the instants.
  constexpr std::int64_t kMaxWidth = INT64_MAX / 64;
  std::int64_t new_width = width_ps_;
  std::size_t i = 0;  // index of the last sampled instant the width saw
  if (s >= 2) {
    std::int64_t quantum = 0;
    std::size_t distinct = 1;
    for (i = 1; i < s && distinct < 32; ++i) {
      const std::int64_t gap = sample(i) - sample(i - 1);
      if (gap > 0) {
        // Mode boundary: a population too small to fill the 32-instant
        // sample from its near cluster alone would run the scan across
        // the dead gap to its far timer cluster, inflating the average by
        // the *inter-mode* distance (measured at P=4: width fit ~770 us
        // against a 2 us near lattice — the whole active window in one
        // bucket, a rebuild every ~8 events). A gap two orders beyond the
        // average *instant* spacing so far is that boundary, not spacing
        // signal: cut the sample there and fit the near mode only. The
        // far mode is the overflow bag's job. Instant spacing, not the
        // tie-deflated event average — deflation drives the average to
        // picoseconds under heavy ties, and against that yardstick every
        // ordinary lattice gap reads as a boundary, cutting the sample to
        // a handful of instants (measured to triple the same-instant
        // storm mix's runtime). Exponential inter-arrivals cannot trip
        // this (P[gap > 256x mean] ~ e^-256).
        const std::int64_t span_so_far = sample(i - 1) - sample(0);
        if (distinct >= 4 &&
            gap / 256 > span_so_far / static_cast<std::int64_t>(distinct - 1))
          break;
        ++distinct;
        if (quantum == 0 || gap < quantum) quantum = gap;
      }
    }
    if (quantum > 0) {
      const std::int64_t span = sample(i - 1) - sample(0);
      const auto covered =  // raw events the sampled span stands for
          std::max<std::int64_t>(2, static_cast<std::int64_t>(i * stride));
      if (covered >= static_cast<std::int64_t>(2 * distinct)) {
        new_width = quantum;  // tie runs: one instant per bucket
      } else {
        const std::int64_t avg_gap = std::max<std::int64_t>(1, span / (covered - 1));
        new_width = avg_gap > kMaxWidth / 2 ? kMaxWidth : std::max(quantum, 2 * avg_gap);
      }
    }
  }

  // Table size: enough buckets that the year (width x buckets) covers the
  // sampled population out to its 90th percentile with 2x slack — the
  // slack keeps steady-state traffic from crossing the year edge (and
  // re-parking on overflow) every window, and the percentile keeps one
  // stray far timer from stretching a max-based year arbitrarily. The
  // population cap (~4 buckets per pending event) is the bound that
  // matters for bimodal mixes: a small population with a months-away
  // timer horizon gets a small table plus overflow parking rather than a
  // maximal table it would pay to re-zero on every re-anchor, while a
  // large population is allowed the buckets needed to take its far
  // cluster *inside* the year — a timer mode the year covers costs
  // nothing, but one left outside forces a full migrate-and-rebuild
  // every time the calendar drains to it.
  std::size_t want = kMinBuckets;
  if (s >= 2) {
    const std::int64_t h90 = sample((s * 9) / 10) - sample(0);
    const std::int64_t per_year = h90 / new_width;  // buckets to reach h90
    const std::int64_t span_want = per_year >= static_cast<std::int64_t>(kMaxBuckets) / 2
                                       ? static_cast<std::int64_t>(kMaxBuckets)
                                       : 2 * per_year + 1;
    const auto pop_cap = static_cast<std::int64_t>(4 * n_pending_);
    want = static_cast<std::size_t>(
        std::max<std::int64_t>(static_cast<std::int64_t>(kMinBuckets),
                               std::min(span_want, pop_cap)));
  }
  std::size_t n_buckets = kMinBuckets;
  while (n_buckets < want && n_buckets < kMaxBuckets) n_buckets *= 2;

  // Re-file everything against the new year, in sorted order so every
  // insert takes the tail-append path. The year is anchored at the
  // *earliest pending event*, not at `now`: nothing can be scheduled in
  // the past, so this keeps the next event to fire inside the calendar
  // unconditionally, whatever geometry was chosen.
  buckets_.assign(n_buckets, Bucket{});
  n_occupied_ = 0;
  width_ps_ = new_width;
  const std::int64_t year = new_width * static_cast<std::int64_t>(n_buckets);
  const std::int64_t anchor = n == 0 ? now_.ps() : refile_scratch_.front().time_ps;
  overflow_limit_ps_ = anchor > INT64_MAX - year ? INT64_MAX : anchor + year;
  cached_min_bucket_ = -1;
  for (const Refile& r : refile_scratch_) {
    if (r.time_ps >= overflow_limit_ps_) {
      overflow_push(r.e);
    } else {
      bucket_insert(r.e);
      ++n_calendar_;
    }
  }
  // Reinsertion above is this rebuild's own (already amortized) cost;
  // only post-rebuild waste counts against the next refit.
  wasted_steps_ = 0;
}

// --- execution ---

bool Engine::step() {
  if (kind_ == QueueKind::legacy_map) {
    if (legacy_queue_.empty()) return false;
    auto it = legacy_queue_.begin();
    NCS_ASSERT(it->first.first >= now_);
    now_ = it->first.first;
    legacy_by_seq_.erase(it->first.second);
    EventFn fn = std::move(it->second);
    legacy_queue_.erase(it);
    ++processed_;
    fn();
    return true;
  }

  Event* e = find_min();
  if (e == nullptr) return false;
  NCS_ASSERT(e->time_ps >= now_.ps());
  now_ = TimePoint::from_ps(e->time_ps);
  // Retire the node before firing so a self-cancel from inside the
  // callback sees a stale id — but invoke the closure *in place*: moving
  // an inline-capture EventFn to the stack costs a relocate dispatch per
  // event for nothing. The popped node sits on no list and is freed only
  // after the call, so callback-driven schedules, cancels and even a
  // geometry rebuild cannot touch it.
  pop(e);
  ++processed_;
  e->fn();
  free_event(e);
  maybe_resize();  // shrink after drains, or direct search degrades to O(buckets)
  return true;
}

std::uint64_t Engine::run() {
  const std::uint64_t start = processed_;
  while (step()) {
  }
  return processed_ - start;
}

std::uint64_t Engine::run_until(TimePoint deadline) {
  const std::uint64_t start = processed_;
  if (kind_ == QueueKind::legacy_map) {
    while (!legacy_queue_.empty() && legacy_queue_.begin()->first.first <= deadline) step();
  } else {
    for (Event* e = find_min(); e != nullptr && e->time_ps <= deadline.ps(); e = find_min())
      step();
  }
  if (now_ < deadline) now_ = deadline;
  return processed_ - start;
}

}  // namespace ncs::sim
