#include "sim/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace ncs::sim {

char activity_glyph(Activity a) {
  switch (a) {
    case Activity::idle: return '.';
    case Activity::compute: return '#';
    case Activity::communicate: return '=';
    case Activity::overhead: return '+';
  }
  return '?';
}

const char* activity_name(Activity a) {
  switch (a) {
    case Activity::idle: return "idle";
    case Activity::compute: return "compute";
    case Activity::communicate: return "communicate";
    case Activity::overhead: return "overhead";
  }
  return "?";
}

int Timeline::add_track(std::string name) {
  Track t;
  t.name = std::move(name);
  tracks_.push_back(std::move(t));
  return static_cast<int>(tracks_.size()) - 1;
}

void Timeline::transition(int track, TimePoint t, Activity a) {
  Track& tr = tracks_[static_cast<std::size_t>(track)];
  if (tr.open) {
    NCS_ASSERT_MSG(t >= tr.open_since, "timeline transition going backwards");
    if (t > tr.open_since || tr.open_activity != a) {
      if (t > tr.open_since)
        tr.intervals.push_back({tr.open_since, t, tr.open_activity});
    }
  }
  tr.open_since = t;
  tr.open_activity = a;
  tr.open = true;
}

void Timeline::finish(TimePoint t) {
  for (auto& tr : tracks_) {
    if (tr.open && t > tr.open_since)
      tr.intervals.push_back({tr.open_since, t, tr.open_activity});
    tr.open = false;
  }
}

Timeline::Summary Timeline::summarize(int track) const {
  Summary s{};
  for (const auto& iv : intervals(track)) {
    const Duration d = iv.end - iv.begin;
    s.total += d;
    s.per_activity[static_cast<int>(iv.activity)] += d;
  }
  return s;
}

std::string Timeline::render_ascii(TimePoint t0, TimePoint t1, int width) const {
  // Degenerate requests happen in practice (a bench whose run finished at
  // t=0 renders [0, 0]; a narrow terminal yields width 0): clamp rather
  // than crash or hand std::string a negative length.
  if (width < 1) width = 1;
  if (t1 < t0) t1 = t0;
  const double span = (t1 - t0).sec();

  std::size_t name_w = 0;
  for (const auto& tr : tracks_) name_w = std::max(name_w, tr.name.size());

  std::string out;
  for (int k = 0; k < track_count(); ++k) {
    const Track& tr = tracks_[static_cast<std::size_t>(k)];
    std::string row(static_cast<std::size_t>(width), ' ');
    // For each column pick the activity covering the largest share of it.
    for (int c = 0; c < width; ++c) {
      const TimePoint cb = t0 + Duration::seconds(span * c / width);
      const TimePoint ce = t0 + Duration::seconds(span * (c + 1) / width);
      Duration best = Duration::zero();
      Activity best_a = Activity::idle;
      bool any = false;
      for (const auto& iv : tr.intervals) {
        const TimePoint b = ncs::max(iv.begin, cb);
        const TimePoint e = iv.end < ce ? iv.end : ce;
        if (e > b) {
          const Duration d = e - b;
          // Prefer non-idle activities on ties so thin compute slivers show.
          if (!any || d > best || (d == best && iv.activity != Activity::idle)) {
            best = d;
            best_a = iv.activity;
            any = true;
          }
        }
      }
      row[static_cast<std::size_t>(c)] = any ? activity_glyph(best_a) : ' ';
    }
    out += tr.name;
    out.append(name_w - tr.name.size() + 2, ' ');
    out += '|';
    out += row;
    out += "|\n";
  }
  char legend[160];
  std::snprintf(legend, sizeof legend, "%*s  [%c compute  %c communicate  %c overhead  %c idle]  span %s\n",
                static_cast<int>(name_w), "", activity_glyph(Activity::compute),
                activity_glyph(Activity::communicate), activity_glyph(Activity::overhead),
                activity_glyph(Activity::idle), (t1 - t0).to_string().c_str());
  out += legend;
  return out;
}

}  // namespace ncs::sim
