// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, insertion-sequence)
// order, so two runs with the same inputs produce identical traces and
// identical benchmark tables. Everything in the repository — links, switches,
// NIC DMA, CPU busy windows, thread wakeups — is expressed as events here.
//
// Two queue backends implement that contract:
//
//  - calendar (default): a Brown-style calendar queue. Events live in
//    arena-allocated nodes (slab + freelist, never freed back to malloc)
//    hashed by time into an array of doubly-linked buckets whose width
//    adapts to the observed inter-event gap; enqueue, dequeue-min and
//    cancel are O(1) amortized, and with EventFn's inline capture storage
//    the steady-state event path performs no heap allocation at all.
//    Same-time events land in the same bucket in seq order (a tail-append
//    fast path makes same-time storms O(1) per event), preserving the
//    FIFO tier bit-identically. Events beyond the current calendar year
//    (far retransmit timers amid microsecond traffic) park on an unsorted
//    overflow list — O(1) in, O(1) cancel — and migrate into the buckets
//    when the year advances to them, so a bimodal time horizon cannot
//    wrap the table and degrade the active window's bucket lists.
//
//  - legacy_map: the original std::map<(time,seq)> implementation, kept so
//    determinism suites can diff the two orderings event for event. The
//    NCS_LEGACY_QUEUE cmake option flips the process-wide default.
//
// EventIds pack (slot, generation) so cancel() is one array index plus a
// generation compare — no map lookups — and stale ids (fired, cancelled,
// or slot since reused) are rejected safely.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "sim/event_fn.hpp"

namespace ncs::sim {

/// Handle for cancellation. 0 is never a valid id.
using EventId = std::uint64_t;

class Engine {
 public:
  enum class QueueKind { calendar, legacy_map };

#ifdef NCS_LEGACY_QUEUE
  static constexpr QueueKind kDefaultQueue = QueueKind::legacy_map;
#else
  static constexpr QueueKind kDefaultQueue = QueueKind::calendar;
#endif

  explicit Engine(QueueKind kind = kDefaultQueue);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  QueueKind queue_kind() const { return kind_; }

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must not be in the past).
  EventId schedule_at(TimePoint t, EventFn fn);

  /// Schedules `fn` at now + d.
  EventId schedule_after(Duration d, EventFn fn) { return schedule_at(now_ + d, std::move(fn)); }

  /// Schedules `fn` to run after all events already queued for `now`.
  EventId post(EventFn fn) { return schedule_after(Duration::zero(), std::move(fn)); }

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled (safe to call with stale ids, including from inside the
  /// cancelled event's own callback).
  bool cancel(EventId id);

  /// Runs the next event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains. Returns the number of events processed.
  std::uint64_t run();

  /// Runs events with time <= deadline; advances the clock to `deadline`
  /// even if the queue drains earlier. Returns events processed.
  std::uint64_t run_until(TimePoint deadline);

  bool empty() const { return pending() == 0; }
  std::size_t pending() const {
    return kind_ == QueueKind::calendar ? n_pending_ : legacy_queue_.size();
  }
  std::uint64_t processed() const { return processed_; }

  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t resizes = 0;       // calendar bucket-array rebuilds
    std::size_t peak_pending = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Calendar introspection (1 / width 0 for the legacy backend).
  std::size_t bucket_count() const { return buckets_.size(); }
  std::int64_t bucket_width_ps() const { return width_ps_; }

 private:
  // --- calendar backend ---

  struct Event {
    std::int64_t time_ps = 0;
    std::uint64_t seq = 0;  // insertion order; the determinism tiebreak
    Event* next = nullptr;
    Event* prev = nullptr;
    std::uint32_t gen = 1;  // bumped on free; stale-id detector
    std::uint32_t slot = 0;
    std::uint32_t ovf_idx = 0;  // position in overflow_ while parked there
    bool queued = false;
    bool in_overflow = false;  // parked in the far-future overflow bag
    EventFn fn;
  };

  struct Bucket {
    Event* head = nullptr;
    Event* tail = nullptr;
  };

  static constexpr std::size_t kMinBuckets = 16;  // power of two
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  static constexpr std::size_t kMaxSample = 1024;  // geometry-fit sample cap
  static constexpr std::size_t kSlabEvents = 256;

  /// (time, seq) strict ordering — the one total order everything obeys.
  static bool before(const Event& a, const Event& b) {
    return a.time_ps != b.time_ps ? a.time_ps < b.time_ps : a.seq < b.seq;
  }

  std::size_t bucket_of(std::int64_t time_ps) const {
    return (static_cast<std::uint64_t>(time_ps) / static_cast<std::uint64_t>(width_ps_)) &
           (buckets_.size() - 1);
  }

  Event* alloc_event();
  void free_event(Event* e);
  void bucket_insert(Event* e);
  void bucket_unlink(Event* e);
  void overflow_push(Event* e);
  void overflow_unlink(Event* e);
  /// Re-anchors the calendar year at the earliest overflow event and moves
  /// every overflow event inside the new year into the buckets. Called when
  /// the calendar drains while far-future events remain parked.
  void migrate_overflow();
  /// Locates the pending minimum (caching its bucket); null when empty.
  Event* find_min();
  /// Pops a node previously returned by find_min().
  void pop(Event* e);
  void maybe_resize();
  /// Refits the whole calendar geometry — bucket width, table size and the
  /// overflow limit — from one strided sample of every pending event, then
  /// re-files all of them. Width and table size are chosen *together* so
  /// the year (width x buckets) always covers the near event cluster:
  /// adapting them independently lets a width change shrink the year under
  /// the active window and re-park everything a migration just pulled in.
  void rebuild();

  // --- common state ---

  QueueKind kind_;
  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  Stats stats_;

  // --- calendar state ---

  std::vector<Bucket> buckets_;
  std::int64_t width_ps_ = 0;
  std::size_t n_pending_ = 0;   // calendar + overflow
  std::size_t n_calendar_ = 0;  // events hashed into buckets_
  std::size_t n_overflow_ = 0;  // events parked in overflow_
  /// Non-empty buckets. The table is sized against this, not n_calendar_:
  /// quantized workloads pile dozens of same-instant events into one bucket
  /// (where they cost O(1) via the tail-append path), and sizing against
  /// the raw event count would rebuild an O(n) table every burst for
  /// buckets that stay empty.
  std::size_t n_occupied_ = 0;
  /// Wasted work since the last rebuild: sorted-insert list steps in
  /// bucket_insert plus empty buckets visited by find_min, each in excess
  /// of the 1-2 per operation a well-fitted table does anyway (charging
  /// the healthy baseline would trip the budget at a fixed period and
  /// rebuild a perfect geometry forever). A miss-fitted
  /// geometry always shows up as one of the two (width too wide -> long
  /// insert walks; width too narrow or table oversized -> long empty
  /// scans), so the refit triggers on this measured cost, not on
  /// population thresholds — which ties the O(n) rebuild to O(n) observed
  /// waste and makes the amortization self-enforcing.
  std::uint64_t wasted_steps_ = 0;
  /// Times >= this sit in the unsorted overflow bag instead of the
  /// buckets, so one far timer horizon (an RTO months of bucket-years away
  /// from microsecond traffic) never wraps around the table and interleaves
  /// with the active window's bucket lists. Calendar events are < this;
  /// overflow events are >= this — so whenever the calendar is non-empty
  /// its minimum is the global minimum.
  std::int64_t overflow_limit_ps_ = 0;
  /// The far-future bag: unordered, swap-remove on cancel (each parked
  /// event records its index). A timer re-arm cancelling a minutes-old
  /// cold event then touches two cache lines, not the three a linked
  /// unlink costs, and rebuild() detaches the bag with a sequential scan.
  std::vector<Event*> overflow_;
  int cached_min_bucket_ = -1;  // bucket whose head is the global min
  std::vector<std::unique_ptr<Event[]>> slabs_;
  std::vector<Event*> slots_;
  Event* free_head_ = nullptr;
  /// rebuild() detaches every pending event into this packed array and
  /// sorts it by (time, seq) before re-filing. Sorting 24-byte entries is
  /// cheap next to touching the nodes, and it makes every reinsertion a
  /// tail append — an unlucky detach order against long same-bucket
  /// chains would otherwise make the refill itself quadratic.
  struct Refile {
    std::int64_t time_ps;
    std::uint64_t seq;
    Event* e;
  };
  std::vector<Refile> refile_scratch_;

  // --- legacy_map state (the seed implementation, verbatim) ---

  using LegacyKey = std::pair<TimePoint, std::uint64_t>;  // (time, seq)
  std::map<LegacyKey, EventFn> legacy_queue_;
  std::unordered_map<EventId, TimePoint> legacy_by_seq_;
};

}  // namespace ncs::sim
