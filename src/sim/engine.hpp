// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, insertion-sequence)
// order, so two runs with the same inputs produce identical traces and
// identical benchmark tables. Everything in the repository — links, switches,
// NIC DMA, CPU busy windows, thread wakeups — is expressed as events here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/time.hpp"

namespace ncs::sim {

using EventFn = std::function<void()>;

/// Handle for cancellation. 0 is never a valid id.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must not be in the past).
  EventId schedule_at(TimePoint t, EventFn fn);

  /// Schedules `fn` at now + d.
  EventId schedule_after(Duration d, EventFn fn) { return schedule_at(now_ + d, std::move(fn)); }

  /// Schedules `fn` to run after all events already queued for `now`.
  EventId post(EventFn fn) { return schedule_after(Duration::zero(), std::move(fn)); }

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled (safe to call with stale ids).
  bool cancel(EventId id);

  /// Runs the next event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains. Returns the number of events processed.
  std::uint64_t run();

  /// Runs events with time <= deadline; advances the clock to `deadline`
  /// even if the queue drains earlier. Returns events processed.
  std::uint64_t run_until(TimePoint deadline);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t processed() const { return processed_; }

 private:
  using Key = std::pair<TimePoint, std::uint64_t>;  // (time, seq)

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::map<Key, EventFn> queue_;
  std::unordered_map<EventId, TimePoint> by_seq_;  // pending events, for cancel()
};

}  // namespace ncs::sim
