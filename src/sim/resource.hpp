// Serially-occupied resource.
//
// Models any device that does one thing at a time — a DMA engine, an SAR
// coprocessor, a bus — as a rolling "busy until" horizon. occupy() is the
// whole scheduling discipline: FIFO in request order, which is what the
// paper-era hardware (SBus DMA, the SBA-200's i960) actually did.
#pragma once

#include "common/time.hpp"

namespace ncs::sim {

class SerialResource {
 public:
  /// Reserves the resource for `dur`, starting no earlier than `earliest`
  /// and no earlier than the end of all previous reservations.
  /// Returns the completion time.
  TimePoint occupy(TimePoint earliest, Duration dur) {
    const TimePoint start = ncs::max(earliest, busy_until_);
    busy_until_ = start + dur;
    return busy_until_;
  }

  TimePoint busy_until() const { return busy_until_; }

 private:
  TimePoint busy_until_;
};

}  // namespace ncs::sim
