// Per-thread activity timelines.
//
// The scheduler reports state transitions here; the recorder reconstructs,
// for every (host, thread) track, the compute / communicate / idle intervals
// that the paper draws in Fig 16 and uses to argue the overlap benefit.
// Benches render these as ASCII Gantt charts and busy-fraction summaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace ncs::sim {

enum class Activity : std::uint8_t {
  idle = 0,         // runnable or blocked, CPU not working for this track
  compute = 1,      // application computation
  communicate = 2,  // protocol processing, copies, blocking send/recv
  overhead = 3,     // scheduler / thread-maintenance work
};

char activity_glyph(Activity a);
const char* activity_name(Activity a);

class Timeline {
 public:
  struct Interval {
    TimePoint begin;
    TimePoint end;
    Activity activity;
  };

  struct Summary {
    Duration total;
    Duration per_activity[4];
    double fraction(Activity a) const {
      if (total.is_zero()) return 0.0;
      return per_activity[static_cast<int>(a)].sec() / total.sec();
    }
  };

  /// Registers a named track (e.g. "node1/thread0"); returns its index.
  int add_track(std::string name);

  int track_count() const { return static_cast<int>(tracks_.size()); }
  const std::string& track_name(int track) const { return tracks_[static_cast<std::size_t>(track)].name; }
  const std::vector<Interval>& intervals(int track) const {
    return tracks_[static_cast<std::size_t>(track)].intervals;
  }

  /// Closes the current interval of `track` at time `t` and opens one in
  /// state `a`. Transitions must be monotone in time per track.
  void transition(int track, TimePoint t, Activity a);

  /// Closes all open intervals at `t` (call once, at end of run).
  void finish(TimePoint t);

  Summary summarize(int track) const;

  /// Renders all tracks as an ASCII Gantt chart over [t0, t1], `width`
  /// columns wide. Each column shows the dominant activity in its slice.
  std::string render_ascii(TimePoint t0, TimePoint t1, int width) const;

 private:
  struct Track {
    std::string name;
    std::vector<Interval> intervals;
    TimePoint open_since;
    Activity open_activity = Activity::idle;
    bool open = false;
  };

  std::vector<Track> tracks_;
};

}  // namespace ncs::sim
