// Small-buffer-optimized event callback.
//
// Every event in the simulator carries a callable. std::function heap-
// allocates for any capture beyond ~2 words, which put one malloc/free pair
// on the fire path of nearly every event (the obs profiler showed the
// common captures are [this] at 8-16 bytes and the burst-delivery closures
// at ~80 bytes — see EXPERIMENTS.md "Event-path allocation census"). EventFn
// stores captures up to kInlineSize bytes inline, so an Event node in the
// engine's arena holds the whole closure and the hot path allocates
// nothing. Larger captures (rare: fault-injector closures carrying
// std::string targets) fall back to the heap, and a census counter records
// every fallback so a regressing capture is visible in bench reports.
//
// Move-only on purpose: events fire once, and copyability is what forces
// std::function to heap-allocate non-copyable captures (e.g. moved-in
// Bursts would need a copy constructor they don't want to pay for).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace ncs::sim {

class EventFn {
 public:
  /// Inline capture budget. 88 bytes covers the largest hot capture in the
  /// tree ([this + atm::Burst] burst-delivery closures, 80 bytes) with a
  /// little headroom; together with the two dispatch pointers an EventFn is
  /// 104 bytes and an engine Event node 144.
  static constexpr std::size_t kInlineSize = 88;

  struct Census {
    std::uint64_t inline_constructions = 0;
    std::uint64_t heap_constructions = 0;
  };
  /// Global construction census (the simulation is single-threaded).
  static const Census& census() { return census_; }
  static void reset_census() { census_ = Census{}; }

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      call_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      manage_ = [](Op op, void* p, void* dst) {
        switch (op) {
          case Op::destroy: static_cast<Fn*>(p)->~Fn(); break;
          case Op::relocate:
            ::new (dst) Fn(std::move(*static_cast<Fn*>(p)));
            static_cast<Fn*>(p)->~Fn();
            break;
        }
      };
      ++census_.inline_constructions;
    } else {
      auto* heap = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) Fn*(heap);
      call_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      manage_ = [](Op op, void* p, void* dst) {
        switch (op) {
          case Op::destroy: delete *static_cast<Fn**>(p); break;
          case Op::relocate:
            ::new (dst) Fn*(*static_cast<Fn**>(p));
            break;
        }
      };
      ++census_.heap_constructions;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { call_(buf_); }

  explicit operator bool() const noexcept { return call_ != nullptr; }
  friend bool operator==(const EventFn& f, std::nullptr_t) noexcept { return !f; }
  friend bool operator!=(const EventFn& f, std::nullptr_t) noexcept {
    return static_cast<bool>(f);
  }

 private:
  enum class Op { destroy, relocate };

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::destroy, buf_, nullptr);
    call_ = nullptr;
    manage_ = nullptr;
  }

  void move_from(EventFn& other) noexcept {
    if (other.manage_ != nullptr) other.manage_(Op::relocate, other.buf_, buf_);
    call_ = other.call_;
    manage_ = other.manage_;
    other.call_ = nullptr;
    other.manage_ = nullptr;
  }

  void (*call_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineSize];

  static Census census_;
};

inline EventFn::Census EventFn::census_{};

}  // namespace ncs::sim
