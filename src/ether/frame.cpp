#include "ether/frame.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/crc.hpp"

namespace ncs::ether {

MacAddress mac_of_host(int index) {
  NCS_ASSERT(index >= 0);
  const auto i = static_cast<std::uint32_t>(index);
  // 0x02 = locally administered, unicast.
  return MacAddress{0x02, 0x4E, 0x43, 0x53,  // "NCS"
                    static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i & 0xFF)};
}

std::size_t Frame::wire_size() const {
  return kHeaderSize + std::max(payload.size(), kMinPayload) + kFcsSize;
}

Bytes Frame::pack() const {
  NCS_ASSERT_MSG(payload.size() <= kMaxPayload, "Ethernet payload exceeds MTU");
  Bytes out(wire_size(), std::byte{0});
  ByteWriter w(out);
  for (std::uint8_t b : dst) w.u8(b);
  for (std::uint8_t b : src) w.u8(b);
  w.u16(ethertype);
  w.bytes(payload);
  // Padding bytes are already zero; FCS covers header + payload + padding.
  const std::size_t body = out.size() - kFcsSize;
  const std::uint32_t fcs = crc32_ieee(BytesView(out).first(body));
  ByteWriter t(std::span<std::byte>(out).subspan(body));
  t.u32(fcs);
  return out;
}

Result<Frame> Frame::unpack(BytesView wire) {
  if (wire.size() < kHeaderSize + kMinPayload + kFcsSize)
    return Status(ErrorCode::data_corruption, "Ethernet frame below minimum size");

  const std::size_t body = wire.size() - kFcsSize;
  ByteReader t(wire.subspan(body));
  if (t.u32() != crc32_ieee(wire.first(body)))
    return Status(ErrorCode::data_corruption, "Ethernet FCS mismatch");

  Frame f;
  ByteReader r(wire);
  for (auto& b : f.dst) b = r.u8();
  for (auto& b : f.src) b = r.u8();
  f.ethertype = r.u16();
  f.payload = to_bytes(r.bytes(body - kHeaderSize));
  return f;
}

std::size_t wire_bytes_for_payload(std::size_t n) {
  return kHeaderSize + std::max(n, kMinPayload) + kFcsSize + kSilentOverheadBytes;
}

}  // namespace ncs::ether
