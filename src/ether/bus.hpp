// Shared 10 Mbps Ethernet segment — the paper's "SUN/Ethernet" baseline.
//
// Every host hangs off one medium: exactly one frame is on the wire at a
// time and all hosts pay for each other's traffic. That serialization is
// the dominant effect in the paper's Ethernet columns (four nodes share
// 10 Mbps while the ATM hosts each get a dedicated 140 Mbps TAXI link).
//
// CSMA/CD is modeled deterministically: frames queue while the medium is
// busy (carrier sense / deferral), and when more than one station is
// waiting at dequeue time, a contention penalty drawn from a seeded RNG
// approximates the collision + binary-exponential-backoff resolution of
// 802.3 without the non-determinism of real collision timing. Set
// `model_contention = false` for a pure store-and-forward medium.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "ether/frame.hpp"
#include "fault/faults.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace ncs::ether {

struct BusParams {
  double bandwidth_bps = 10e6;
  /// End-to-end propagation over the segment.
  Duration propagation = Duration::microseconds(10);
  /// 802.3 slot time (512 bit times at 10 Mbps).
  Duration slot_time = Duration::microseconds(51.2);
  bool model_contention = true;
  /// Upper bound on the backoff draw per transmission. ~8 models a lightly
  /// contended segment (>80 % utilization); 16-32 models the measured
  /// behaviour of a segment saturated by several simultaneous senders
  /// (40-70 % utilization).
  std::uint64_t max_backoff_slots = 16;
  std::uint64_t seed = 0xE7E12;
};

class Bus {
 public:
  /// Handler invoked on the destination host: (src host, payload).
  using RxHandler = std::function<void(int, Bytes)>;

  Bus(sim::Engine& engine, BusParams params, int n_hosts);

  void set_rx_handler(int host, RxHandler handler);

  /// Queues one frame of `payload` (<= kMaxPayload) from `src` to `dst`.
  /// `on_sent` fires when the frame has left `src`'s transmitter (transmit
  /// buffer reusable); the destination handler fires one propagation later.
  void send(int src, int dst, Bytes payload, sim::EventFn on_sent);

  /// Fault state of the shared medium (FaultPlan target name: "ether").
  /// Down-windows and burst loss drop frames after they occupy the wire —
  /// the transmitter still pays the serialization time.
  fault::LinkFault& fault() { return fault_; }

  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t drops = 0;  // fault-injected losses
    std::uint64_t contention_events = 0;
    Duration contention_delay;
  };
  const Stats& stats() const { return stats_; }

  /// Registers the segment's counters under `prefix` (e.g. "ether").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

 private:
  struct Pending {
    int src;
    int dst;
    Bytes payload;
    sim::EventFn on_sent;
    int attempts = 0;
  };

  void pump();
  void start_transmit(Pending&& frame);

  sim::Engine& engine_;
  BusParams params_;
  Rng rng_;
  fault::LinkFault fault_;
  std::vector<RxHandler> handlers_;
  std::deque<Pending> queue_;
  bool medium_busy_ = false;
  Stats stats_;
};

}  // namespace ncs::ether
