#include "ether/bus.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ncs::ether {

Bus::Bus(sim::Engine& engine, BusParams params, int n_hosts)
    : engine_(engine), params_(params), rng_(params.seed),
      handlers_(static_cast<std::size_t>(n_hosts)) {
  NCS_ASSERT(n_hosts >= 1);
}

void Bus::set_rx_handler(int host, RxHandler handler) {
  handlers_[static_cast<std::size_t>(host)] = std::move(handler);
}

void Bus::send(int src, int dst, Bytes payload, sim::EventFn on_sent) {
  NCS_ASSERT(src >= 0 && static_cast<std::size_t>(src) < handlers_.size());
  NCS_ASSERT(dst >= 0 && static_cast<std::size_t>(dst) < handlers_.size());
  NCS_ASSERT_MSG(payload.size() <= kMaxPayload, "payload exceeds Ethernet MTU");
  queue_.push_back(Pending{src, dst, std::move(payload), std::move(on_sent), 0});
  if (!medium_busy_) pump();
}

void Bus::pump() {
  if (queue_.empty() || medium_busy_) return;

  // Carrier released with more than one station deferring: charge a
  // collision-resolution penalty before the winner transmits.
  Duration penalty = Duration::zero();
  if (params_.model_contention && queue_.size() > 1) {
    // Collision resolution costs a bounded number of slot times: binary
    // exponential backoff resolves k contenders in O(log k) slots on
    // average, and measured heavily-loaded 802.3 sustains ~60-80 %
    // utilization — an unbounded queue-proportional penalty would model a
    // collapse that real Ethernet does not exhibit.
    const std::uint64_t cap = std::min<std::uint64_t>(2 * queue_.size(), params_.max_backoff_slots);
    const auto backoff_slots = rng_.next_below(cap);
    penalty = params_.slot_time * static_cast<std::int64_t>(1 + backoff_slots);
    ++stats_.contention_events;
    stats_.contention_delay += penalty;
  }

  Pending frame = std::move(queue_.front());
  queue_.pop_front();
  medium_busy_ = true;

  if (penalty.is_zero()) {
    start_transmit(std::move(frame));
  } else {
    engine_.schedule_after(penalty, [this, f = std::move(frame)]() mutable {
      start_transmit(std::move(f));
    });
  }
}

void Bus::start_transmit(Pending&& frame) {
  const std::size_t wire = wire_bytes_for_payload(frame.payload.size());
  const Duration tx = Duration::for_bytes(static_cast<std::int64_t>(wire), params_.bandwidth_bps);
  ++stats_.frames;
  stats_.payload_bytes += frame.payload.size();

  engine_.schedule_after(tx, [this, f = std::move(frame)]() mutable {
    if (f.on_sent) f.on_sent();
    // Fault verdict after the wire time is paid: a downed or bursty
    // segment eats the frame, the transmitter none the wiser.
    if (fault_.should_drop()) {
      ++stats_.drops;
    } else {
      engine_.schedule_after(params_.propagation,
                             [this, dst = f.dst, src = f.src, p = std::move(f.payload)]() mutable {
                               auto& h = handlers_[static_cast<std::size_t>(dst)];
                               if (h) h(src, std::move(p));
                             });
    }
    medium_busy_ = false;
    pump();
  });
}

void Bus::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/frames", &stats_.frames);
  reg.counter(prefix + "/payload_bytes", &stats_.payload_bytes);
  reg.counter(prefix + "/drops", &stats_.drops);
  reg.counter(prefix + "/contention_events", &stats_.contention_events);
  reg.duration(prefix + "/contention_delay", &stats_.contention_delay);
}

}  // namespace ncs::ether
