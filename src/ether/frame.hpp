// Ethernet II framing (DIX): 6+6 byte MACs, 2-byte EtherType, payload
// padded to the 46-byte minimum, 4-byte FCS (CRC-32). On the wire each
// frame additionally costs 8 bytes of preamble/SFD and a 12-byte
// inter-frame gap; EtherBus charges those as per-frame overhead time.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace ncs::ether {

using MacAddress = std::array<std::uint8_t, 6>;

/// Deterministic locally-administered MAC for simulated host `index`.
MacAddress mac_of_host(int index);

inline constexpr std::size_t kHeaderSize = 14;
inline constexpr std::size_t kFcsSize = 4;
inline constexpr std::size_t kMinPayload = 46;
inline constexpr std::size_t kMaxPayload = 1500;
/// Preamble + SFD + inter-frame gap, charged as time, not carried as bytes.
inline constexpr std::size_t kSilentOverheadBytes = 8 + 12;

struct Frame {
  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ethertype = 0x0800;  // IPv4 by default
  Bytes payload;

  /// Serialized size including header, padding and FCS.
  std::size_t wire_size() const;

  /// Serializes (padding short payloads) and appends the FCS.
  Bytes pack() const;

  /// Parses and verifies the FCS. The payload keeps any padding (the layer
  /// above carries explicit lengths, as IP does).
  static Result<Frame> unpack(BytesView wire);
};

/// Total on-the-wire byte cost (including silent overhead) for a payload of
/// `n` bytes — the quantity EtherBus converts to serialization time.
std::size_t wire_bytes_for_payload(std::size_t n);

}  // namespace ncs::ether
