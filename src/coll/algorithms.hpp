// The collective algorithms, as free functions over a Fabric.
//
// Every process of the group calls the same function in the same order
// (SPMD); each call is one collective. Two families:
//
//   flat            root-centric linear fan-out/fan-in. The baseline the
//                   paper implies for NCS group ops — kept both as the
//                   small-group fast path and as the comparison arm of
//                   bench/coll_sweep. Fan-outs queue every transfer and
//                   wait once on the final hand-off, so even flat roots
//                   pipeline their sends.
//   binomial_tree   bcast/gather/scatter/reduce over the classic vrank
//                   tree: rank r maps to vrank (r - root + P) % P, vrank v
//                   parents to v minus its lowest set bit. log2(P) depth.
//   dissemination   barrier in ceil(log2 P) rounds: round k sends a token
//                   to (rank + 2^k) % P and waits on one from
//                   (rank - 2^k + P) % P.
//   recursive_doubling
//                   allreduce in log2 P pairwise exchange rounds, with the
//                   MPICH-style fold-in of the non-power-of-two remainder.
//   ring            bandwidth-optimal allreduce (reduce-scatter then
//                   allgather, 2(P-1)/P of the payload per link) and the
//                   corresponding standalone allgather / reduce_scatter.
//                   Segment transfers are chunk-pipelined: a segment is
//                   sent as ceil(len/chunk) back-to-back messages so its
//                   tail is still being copied while its head serializes.
//
// Reductions are element-wise sums of equal-length double vectors. All
// double (de)serialization goes through std::memcpy — Bytes buffers carry
// no alignment guarantee, so reinterpret_cast loads would be UB.
//
// Determinism: each algorithm fixes its accumulation order by rank
// arithmetic, never by arrival time (per-source FIFO receives are
// source-addressed). Repeated runs — including runs where error control
// retransmits lost messages — produce bit-identical results.
#pragma once

#include <span>
#include <vector>

#include "coll/fabric.hpp"

namespace ncs::coll {

// --- payload helpers (exposed for tests) ---

/// acc[i] += i-th double of `raw` (memcpy per element; no alignment
/// assumption). raw must hold exactly acc.size() doubles.
void accumulate_doubles(std::vector<double>& acc, BytesView raw);

Bytes pack_doubles(std::span<const double> values);
std::vector<double> unpack_doubles(BytesView raw);

/// Balanced ring partition of `n` elements over `n_procs` segments:
/// segment s gets n/n_procs elements plus one of the n%n_procs extras.
struct Segment {
  std::size_t begin = 0;
  std::size_t len = 0;
};
Segment segment_of(std::size_t n, int n_procs, int s);

/// Ring-pipeline chunk granularity in doubles (whole elements only).
/// chunk_bytes == 0 means "no chunking" — the entire payload travels as
/// one message; any nonzero request clamps to at least one element so a
/// sub-8-byte chunk size still pipelines per element instead of silently
/// collapsing into a single whole-payload chunk.
std::size_t chunk_elems(std::size_t chunk_bytes, std::size_t total);

// --- broadcast: root's payload lands on every rank (root included) ---
Bytes bcast_flat(Fabric& f, int root, BytesView payload);
Bytes bcast_binomial(Fabric& f, int root, BytesView payload);

// --- gather: root returns one payload per rank; non-roots return {} ---
std::vector<Bytes> gather_flat(Fabric& f, int root, BytesView contribution);
std::vector<Bytes> gather_binomial(Fabric& f, int root, BytesView contribution);

// --- scatter: root supplies n_procs payloads; everyone returns its own ---
Bytes scatter_flat(Fabric& f, int root, std::span<const Bytes> payloads);
Bytes scatter_binomial(Fabric& f, int root, std::span<const Bytes> payloads);

// --- barrier ---
void barrier_flat(Fabric& f);
void barrier_dissemination(Fabric& f);

// --- reduce: element-wise sum at root; non-roots return {} ---
std::vector<double> reduce_flat(Fabric& f, int root, std::span<const double> values);
std::vector<double> reduce_binomial(Fabric& f, int root, std::span<const double> values);

// --- allreduce: element-wise sum on every rank ---
std::vector<double> allreduce_flat(Fabric& f, std::span<const double> values);
std::vector<double> allreduce_recursive_doubling(Fabric& f, std::span<const double> values);
std::vector<double> allreduce_ring(Fabric& f, std::span<const double> values,
                                   std::size_t chunk_bytes);

// --- allgather: every rank returns all contributions indexed by rank ---
std::vector<Bytes> allgather_flat(Fabric& f, BytesView contribution);
std::vector<Bytes> allgather_ring(Fabric& f, BytesView contribution);

// --- reduce_scatter: rank r returns segment_of(n, P, r) of the sum ---
std::vector<double> reduce_scatter_flat(Fabric& f, std::span<const double> values);
std::vector<double> reduce_scatter_ring(Fabric& f, std::span<const double> values,
                                        std::size_t chunk_bytes);

}  // namespace ncs::coll
