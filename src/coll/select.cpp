#include "coll/select.hpp"

namespace ncs::coll {

const char* to_string(Op op) {
  switch (op) {
    case Op::bcast: return "bcast";
    case Op::gather: return "gather";
    case Op::scatter: return "scatter";
    case Op::barrier: return "barrier";
    case Op::reduce: return "reduce";
    case Op::allreduce: return "allreduce";
    case Op::allgather: return "allgather";
    case Op::reduce_scatter: return "reduce_scatter";
  }
  return "?";
}

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::automatic: return "automatic";
    case Algorithm::flat: return "flat";
    case Algorithm::binomial_tree: return "binomial_tree";
    case Algorithm::dissemination: return "dissemination";
    case Algorithm::recursive_doubling: return "recursive_doubling";
    case Algorithm::ring: return "ring";
    case Algorithm::nic_offload: return "nic_offload";
  }
  return "?";
}

bool implements(Op op, Algorithm a) {
  if (a == Algorithm::flat) return true;
  switch (op) {
    case Op::bcast:
    case Op::gather:
    case Op::scatter:
    case Op::reduce:
      return a == Algorithm::binomial_tree || (op == Op::bcast && a == Algorithm::nic_offload);
    case Op::barrier:
      return a == Algorithm::dissemination || a == Algorithm::nic_offload;
    case Op::allreduce:
      return a == Algorithm::recursive_doubling || a == Algorithm::ring ||
             a == Algorithm::nic_offload;
    case Op::allgather:
    case Op::reduce_scatter:
      return a == Algorithm::ring;
  }
  return false;
}

namespace {

Algorithm table(Op op, int n_procs, std::size_t bytes, const Params& p) {
  // The NIC-offload family preempts the host table. bcast must decide
  // independently of `bytes`: only the root knows the payload size, so a
  // size-dependent rule would diverge across ranks (the payload size is
  // negotiated in-band by the offloaded flag round instead).
  if (p.nic_offload && n_procs >= p.offload_min_procs) {
    if (op == Op::barrier || op == Op::bcast) return Algorithm::nic_offload;
    if (op == Op::allreduce && bytes <= p.offload_max_bytes) return Algorithm::nic_offload;
  }
  if (n_procs < p.tree_min_procs) return Algorithm::flat;
  switch (op) {
    case Op::bcast:
    case Op::gather:
    case Op::scatter:
    case Op::reduce:
      return Algorithm::binomial_tree;
    case Op::barrier:
      return Algorithm::dissemination;
    case Op::allreduce:
      return bytes <= p.allreduce_ring_min_bytes ? Algorithm::recursive_doubling
                                                 : Algorithm::ring;
    case Op::allgather:
    case Op::reduce_scatter:
      return Algorithm::ring;
  }
  return Algorithm::flat;
}

}  // namespace

Algorithm select(Op op, int n_procs, std::size_t bytes, const Params& params) {
  const Algorithm forced = params.forced(op);
  if (forced != Algorithm::automatic && implements(op, forced)) return forced;
  return table(op, n_procs, bytes, params);
}

}  // namespace ncs::coll
