#include "coll/algorithms.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace ncs::coll {

namespace {

int mod(int a, int p) { return ((a % p) + p) % p; }

}  // namespace

// Chunk granularity in doubles (whole elements only). chunk_bytes == 0
// means "no chunking" — the whole payload in one message; any nonzero
// request clamps to at least one element, so a sub-8-byte chunk size
// still pipelines per element instead of silently collapsing to one
// whole-payload chunk (which defeated the ring's pipelining).
std::size_t chunk_elems(std::size_t chunk_bytes, std::size_t total) {
  if (chunk_bytes == 0) return std::max<std::size_t>(total, 1);
  return std::max<std::size_t>(chunk_bytes / sizeof(double), 1);
}

namespace {

BytesView doubles_view(const double* p, std::size_t count) {
  return BytesView(reinterpret_cast<const std::byte*>(p), count * sizeof(double));
}

/// Ships `count` doubles starting at `p` as back-to-back chunk messages;
/// blocks on the final hand-off iff `wait_last`.
void send_chunked(Fabric& f, int to, const double* p, std::size_t count,
                  std::size_t chunk, bool wait_last) {
  std::size_t off = 0;
  while (off < count) {
    const std::size_t n = std::min(chunk, count - off);
    const bool last = off + n == count;
    f.send(to, doubles_view(p + off, n), wait_last && last);
    off += n;
  }
}

/// Receives the chunk sequence for `count` doubles into `p`; `add`
/// accumulates instead of overwriting. The chunk schedule is recomputed
/// from (count, chunk), so both sides agree without any framing.
void recv_chunked(Fabric& f, int from, double* p, std::size_t count, std::size_t chunk,
                  bool add) {
  std::size_t off = 0;
  while (off < count) {
    const std::size_t n = std::min(chunk, count - off);
    const Bytes raw = f.recv(from);
    NCS_ASSERT_MSG(raw.size() == n * sizeof(double), "collective chunk size mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      double v;
      std::memcpy(&v, raw.data() + i * sizeof(double), sizeof(double));
      if (add) {
        p[off + i] += v;
      } else {
        p[off + i] = v;
      }
    }
    off += n;
  }
}

// Gather/scatter tree payloads travel as framed entry blobs:
// u32 count, then per entry u32 id (rank or vrank), u32 len, len bytes.
Bytes pack_entries(const std::vector<std::pair<int, Bytes>>& entries) {
  std::size_t size = 4;
  for (const auto& [id, payload] : entries) size += 8 + payload.size();
  Bytes out(size);
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [id, payload] : entries) {
    w.u32(static_cast<std::uint32_t>(id));
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.bytes(payload);
  }
  return out;
}

void unpack_entries_into(BytesView blob, std::vector<std::pair<int, Bytes>>& entries) {
  ByteReader r(blob);
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const int id = static_cast<int>(r.u32());
    const std::uint32_t len = r.u32();
    entries.emplace_back(id, to_bytes(r.bytes(len)));
  }
}

}  // namespace

void accumulate_doubles(std::vector<double>& acc, BytesView raw) {
  NCS_ASSERT_MSG(raw.size() == acc.size() * sizeof(double),
                 "reduction contributions must have equal lengths");
  for (std::size_t i = 0; i < acc.size(); ++i) {
    double v;
    std::memcpy(&v, raw.data() + i * sizeof(double), sizeof(double));
    acc[i] += v;
  }
}

Bytes pack_doubles(std::span<const double> values) {
  return to_bytes(doubles_view(values.data(), values.size()));
}

std::vector<double> unpack_doubles(BytesView raw) {
  NCS_ASSERT(raw.size() % sizeof(double) == 0);
  std::vector<double> out(raw.size() / sizeof(double));
  for (std::size_t i = 0; i < out.size(); ++i)
    std::memcpy(&out[i], raw.data() + i * sizeof(double), sizeof(double));
  return out;
}

Segment segment_of(std::size_t n, int n_procs, int s) {
  const auto p = static_cast<std::size_t>(n_procs);
  const auto i = static_cast<std::size_t>(s);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  Segment seg;
  seg.begin = i * base + std::min(i, extra);
  seg.len = base + (i < extra ? 1 : 0);
  return seg;
}

// --- bcast ---

Bytes bcast_flat(Fabric& f, int root, BytesView payload) {
  const int p = f.n_procs();
  if (f.rank() != root) return f.recv(root);
  for (int step = 1; step < p; ++step)
    f.send(mod(root + step, p), payload, step + 1 == p);
  return to_bytes(payload);
}

Bytes bcast_binomial(Fabric& f, int root, BytesView payload) {
  const int p = f.n_procs();
  const int vr = mod(f.rank() - root, p);
  Bytes data;
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      data = f.recv(mod(vr - mask + root, p));
      break;
    }
    mask <<= 1;
  }
  if (vr == 0) data = to_bytes(payload);
  // Children sit at vrank + m for each mask m below the one we received
  // on; farthest (largest subtree) first so its transfer starts earliest.
  std::vector<int> children;
  for (int m = mask >> 1; m > 0; m >>= 1)
    if (vr + m < p) children.push_back(mod(vr + m + root, p));
  for (std::size_t i = 0; i < children.size(); ++i)
    f.send(children[i], data, i + 1 == children.size());
  return data;
}

// --- gather ---

std::vector<Bytes> gather_flat(Fabric& f, int root, BytesView contribution) {
  const int p = f.n_procs();
  if (f.rank() != root) {
    f.send(root, contribution, true);
    return {};
  }
  std::vector<Bytes> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(root)] = to_bytes(contribution);
  for (int r = 0; r < p; ++r)
    if (r != root) out[static_cast<std::size_t>(r)] = f.recv(r);
  return out;
}

std::vector<Bytes> gather_binomial(Fabric& f, int root, BytesView contribution) {
  const int p = f.n_procs();
  const int me = f.rank();
  const int vr = mod(me - root, p);
  std::vector<std::pair<int, Bytes>> entries;
  entries.emplace_back(me, to_bytes(contribution));
  // Absorb each child subtree, then (non-root) forward the merged blob to
  // the parent at vrank minus our lowest set bit.
  int mask = 1;
  while (mask < p && (vr & mask) == 0) {
    if (vr + mask < p) unpack_entries_into(f.recv(mod(vr + mask + root, p)), entries);
    mask <<= 1;
  }
  if (vr != 0) {
    f.send(mod(vr - mask + root, p), pack_entries(entries), true);
    return {};
  }
  std::vector<Bytes> out(static_cast<std::size_t>(p));
  NCS_ASSERT(entries.size() == static_cast<std::size_t>(p));
  for (auto& [rank, payload] : entries)
    out[static_cast<std::size_t>(rank)] = std::move(payload);
  return out;
}

// --- scatter ---

Bytes scatter_flat(Fabric& f, int root, std::span<const Bytes> payloads) {
  const int p = f.n_procs();
  if (f.rank() != root) return f.recv(root);
  NCS_ASSERT_MSG(payloads.size() == static_cast<std::size_t>(p),
                 "scatter needs one payload per rank");
  for (int step = 1; step < p; ++step) {
    const int dst = mod(root + step, p);
    f.send(dst, payloads[static_cast<std::size_t>(dst)], step + 1 == p);
  }
  return payloads[static_cast<std::size_t>(root)];
}

Bytes scatter_binomial(Fabric& f, int root, std::span<const Bytes> payloads) {
  const int p = f.n_procs();
  const int me = f.rank();
  const int vr = mod(me - root, p);
  // sub[v] is vrank v's payload; we only ever fill our own subtree
  // [vr, vr + m0) where m0 is our lowest set bit (the whole range at the
  // root, whose m0 is the smallest power of two >= P).
  std::vector<Bytes> sub(static_cast<std::size_t>(p));
  int m0 = 1;
  if (vr == 0) {
    NCS_ASSERT_MSG(payloads.size() == static_cast<std::size_t>(p),
                   "scatter needs one payload per rank");
    while (m0 < p) m0 <<= 1;
    for (int v = 0; v < p; ++v)
      sub[static_cast<std::size_t>(v)] = payloads[static_cast<std::size_t>(mod(v + root, p))];
  } else {
    m0 = vr & -vr;
    std::vector<std::pair<int, Bytes>> entries;
    unpack_entries_into(f.recv(mod(vr - m0 + root, p)), entries);
    for (auto& [v, payload] : entries) sub[static_cast<std::size_t>(v)] = std::move(payload);
  }
  // Child at vrank vr + m owns [vr + m, vr + 2m); farthest first.
  std::vector<std::pair<int, int>> children;  // (child vrank, subtree span m)
  for (int m = m0 >> 1; m > 0; m >>= 1)
    if (vr + m < p) children.emplace_back(vr + m, m);
  for (std::size_t i = 0; i < children.size(); ++i) {
    const auto [cv, m] = children[i];
    std::vector<std::pair<int, Bytes>> entries;
    for (int v = cv; v < std::min(cv + m, p); ++v)
      entries.emplace_back(v, std::move(sub[static_cast<std::size_t>(v)]));
    f.send(mod(cv + root, p), pack_entries(entries), i + 1 == children.size());
  }
  return std::move(sub[static_cast<std::size_t>(vr)]);
}

// --- barrier ---

namespace {
const Bytes kToken(1, std::byte{0xB7});
}  // namespace

void barrier_flat(Fabric& f) {
  const int p = f.n_procs();
  if (f.rank() == 0) {
    for (int r = 1; r < p; ++r) (void)f.recv(r);
    for (int r = 1; r < p; ++r) f.send(r, kToken, r + 1 == p);
  } else {
    f.send(0, kToken, false);
    (void)f.recv(0);
  }
}

void barrier_dissemination(Fabric& f) {
  const int p = f.n_procs();
  const int me = f.rank();
  // Round k: notify (me + 2^k), wait on (me - 2^k). After ceil(log2 P)
  // rounds every rank transitively heard from every other.
  for (int k = 1; k < p; k <<= 1) {
    f.send(mod(me + k, p), kToken, false);
    (void)f.recv(mod(me - k, p));
  }
}

// --- reduce ---

std::vector<double> reduce_flat(Fabric& f, int root, std::span<const double> values) {
  const int p = f.n_procs();
  if (f.rank() != root) {
    f.send(root, doubles_view(values.data(), values.size()), true);
    return {};
  }
  std::vector<double> acc(values.begin(), values.end());
  for (int r = 0; r < p; ++r) {
    if (r == root) continue;
    accumulate_doubles(acc, f.recv(r));
  }
  return acc;
}

std::vector<double> reduce_binomial(Fabric& f, int root, std::span<const double> values) {
  const int p = f.n_procs();
  const int vr = mod(f.rank() - root, p);
  std::vector<double> acc(values.begin(), values.end());
  // Mirror of the bcast tree: absorb children (low mask first), then hand
  // the partial sum to the parent. Accumulation order is fixed by vrank
  // arithmetic, so results are bit-stable run to run.
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      f.send(mod(vr - mask + root, p), doubles_view(acc.data(), acc.size()), true);
      return {};
    }
    if (vr + mask < p) accumulate_doubles(acc, f.recv(mod(vr + mask + root, p)));
    mask <<= 1;
  }
  return acc;
}

// --- allreduce ---

std::vector<double> allreduce_flat(Fabric& f, std::span<const double> values) {
  std::vector<double> acc = reduce_flat(f, 0, values);
  const Bytes raw = f.rank() == 0 ? pack_doubles(acc) : Bytes{};
  return unpack_doubles(bcast_flat(f, 0, raw));
}

std::vector<double> allreduce_recursive_doubling(Fabric& f, std::span<const double> values) {
  const int p = f.n_procs();
  const int me = f.rank();
  std::vector<double> acc(values.begin(), values.end());
  if (p == 1) return acc;

  // Fold the non-power-of-two remainder in: the first 2*rem ranks pair up,
  // evens push their vector to the odd neighbour and sit out the doubling.
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;
  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      f.send(me + 1, doubles_view(acc.data(), acc.size()), true);
      newrank = -1;
    } else {
      accumulate_doubles(acc, f.recv(me - 1));
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }

  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newrank ^ mask;
      const int partner = partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
      // Queue our half of the exchange, then block on the partner's; the
      // payload is copied at enqueue so accumulating into acc is safe.
      f.send(partner, doubles_view(acc.data(), acc.size()), false);
      accumulate_doubles(acc, f.recv(partner));
    }
  }

  // Sat-out evens get the finished vector back from their partner.
  if (me < 2 * rem) {
    if (me % 2 != 0) {
      f.send(me - 1, doubles_view(acc.data(), acc.size()), true);
    } else {
      acc = unpack_doubles(f.recv(me + 1));
    }
  }
  return acc;
}

namespace {

/// Ring reduce-scatter over acc in place: P-1 steps around the ring, each
/// rank pushing the segment it just finished accumulating to its right
/// neighbour. Afterwards rank r's segment_of(n, P, r) slice is the full
/// element-wise sum (other slices hold partials).
void ring_reduce_scatter(Fabric& f, std::vector<double>& acc, std::size_t chunk,
                         bool wait_last) {
  const int p = f.n_procs();
  const int me = f.rank();
  const int left = mod(me - 1, p);
  const int right = mod(me + 1, p);
  for (int t = 0; t < p - 1; ++t) {
    const Segment out = segment_of(acc.size(), p, mod(me - t - 1, p));
    const Segment in = segment_of(acc.size(), p, mod(me - t - 2, p));
    send_chunked(f, right, acc.data() + out.begin, out.len, chunk,
                 wait_last && t + 1 == p - 1);
    recv_chunked(f, left, acc.data() + in.begin, in.len, chunk, /*add=*/true);
  }
}

}  // namespace

std::vector<double> allreduce_ring(Fabric& f, std::span<const double> values,
                                   std::size_t chunk_bytes) {
  const int p = f.n_procs();
  const int me = f.rank();
  std::vector<double> acc(values.begin(), values.end());
  if (p == 1) return acc;
  const std::size_t chunk = chunk_elems(chunk_bytes, acc.size());
  ring_reduce_scatter(f, acc, chunk, /*wait_last=*/false);
  // Allgather phase: circulate the finished segments the same way.
  const int left = mod(me - 1, p);
  const int right = mod(me + 1, p);
  for (int t = 0; t < p - 1; ++t) {
    const Segment out = segment_of(acc.size(), p, mod(me - t, p));
    const Segment in = segment_of(acc.size(), p, mod(me - t - 1, p));
    send_chunked(f, right, acc.data() + out.begin, out.len, chunk, t + 1 == p - 1);
    recv_chunked(f, left, acc.data() + in.begin, in.len, chunk, /*add=*/false);
  }
  return acc;
}

// --- allgather ---

std::vector<Bytes> allgather_flat(Fabric& f, BytesView contribution) {
  const int p = f.n_procs();
  const int me = f.rank();
  // Ring-ordered fan-out (avoids hammering one destination first), queued
  // with a single wait on the final hand-off.
  for (int step = 1; step < p; ++step)
    f.send(mod(me + step, p), contribution, step + 1 == p);
  std::vector<Bytes> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(me)] = to_bytes(contribution);
  for (int r = 0; r < p; ++r)
    if (r != me) out[static_cast<std::size_t>(r)] = f.recv(r);
  return out;
}

std::vector<Bytes> allgather_ring(Fabric& f, BytesView contribution) {
  const int p = f.n_procs();
  const int me = f.rank();
  std::vector<Bytes> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(me)] = to_bytes(contribution);
  const int left = mod(me - 1, p);
  const int right = mod(me + 1, p);
  // Step t forwards the payload received at step t-1; position in the
  // stream identifies the origin rank, so sizes may vary freely.
  for (int t = 0; t < p - 1; ++t) {
    f.send(right, out[static_cast<std::size_t>(mod(me - t, p))], t + 1 == p - 1);
    out[static_cast<std::size_t>(mod(me - t - 1, p))] = f.recv(left);
  }
  return out;
}

// --- reduce_scatter ---

std::vector<double> reduce_scatter_flat(Fabric& f, std::span<const double> values) {
  const int p = f.n_procs();
  const int me = f.rank();
  const Segment mine = segment_of(values.size(), p, me);
  // Direct pairwise: queue every peer's slice of our vector, then sum the
  // P-1 contributions for ours.
  for (int step = 1; step < p; ++step) {
    const int dst = mod(me + step, p);
    const Segment s = segment_of(values.size(), p, dst);
    f.send(dst, doubles_view(values.data() + s.begin, s.len), step + 1 == p);
  }
  std::vector<double> acc(values.begin() + static_cast<std::ptrdiff_t>(mine.begin),
                          values.begin() + static_cast<std::ptrdiff_t>(mine.begin + mine.len));
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    accumulate_doubles(acc, f.recv(r));
  }
  return acc;
}

std::vector<double> reduce_scatter_ring(Fabric& f, std::span<const double> values,
                                        std::size_t chunk_bytes) {
  const int p = f.n_procs();
  std::vector<double> acc(values.begin(), values.end());
  const Segment mine = segment_of(acc.size(), p, f.rank());
  if (p > 1) {
    ring_reduce_scatter(f, acc, chunk_elems(chunk_bytes, acc.size()), /*wait_last=*/true);
  }
  return {acc.begin() + static_cast<std::ptrdiff_t>(mine.begin),
          acc.begin() + static_cast<std::ptrdiff_t>(mine.begin + mine.len)};
}

}  // namespace ncs::coll
