#include "coll/offload.hpp"

#include "coll/algorithms.hpp"
#include "common/assert.hpp"

namespace ncs::coll {

int offload_parent(int rank, int radix) {
  NCS_ASSERT(radix >= 1);
  return rank == 0 ? -1 : (rank - 1) / radix;
}

std::vector<int> offload_children(int rank, int n_procs, int radix) {
  NCS_ASSERT(radix >= 1);
  std::vector<int> out;
  for (int c = rank * radix + 1; c <= rank * radix + radix && c < n_procs; ++c)
    out.push_back(c);
  return out;
}

namespace {

std::vector<double> subtree(const std::vector<Bytes>& contribs, int n_procs, int radix,
                            int rank) {
  // Exactly the firmware fold: start from the node's own doubles, then
  // accumulate each child's *packed* subtree result in ascending order.
  std::vector<double> acc = unpack_doubles(contribs[static_cast<std::size_t>(rank)]);
  for (const int c : offload_children(rank, n_procs, radix)) {
    const Bytes packed = pack_doubles(subtree(contribs, n_procs, radix, c));
    accumulate_doubles(acc, packed);
  }
  return acc;
}

}  // namespace

std::vector<double> tree_fold(const std::vector<Bytes>& contribs, int n_procs, int radix) {
  NCS_ASSERT(static_cast<int>(contribs.size()) == n_procs);
  return subtree(contribs, n_procs, radix, 0);
}

}  // namespace ncs::coll
