// The collective engine: op entry points + autoselection + profiling.
//
// One Engine per process, bound to that process's Fabric (for mps::Node,
// the collective plane). Each op consults select() — honoring any per-op
// forced algorithm in Params — runs the chosen algorithm, and samples the
// op's wall (simulated) time into the obs Profiler twice: once into the
// aggregate Layer::coll histogram, once into a per-"op/algorithm" keyed
// histogram, so the bottleneck report can attribute collective time to
// the algorithm that spent it.
//
// Single-process groups short-circuit to the identity result without
// touching the fabric (and without profiling — there is nothing to
// attribute).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/fabric.hpp"
#include "coll/select.hpp"

namespace ncs::obs {
class Profiler;
}

namespace ncs::coll {

class OffloadPort;

class Engine {
 public:
  Engine(Fabric& fabric, Params params) : fabric_(fabric), params_(params) {}

  const Params& params() const { return params_; }

  /// What select() picks for this group at this payload size.
  Algorithm algorithm_for(Op op, std::size_t bytes) const {
    return select(op, fabric_.n_procs(), bytes, params_);
  }

  /// Samples land in Layer::coll plus a per-"op/algorithm" histogram.
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

  /// Attaches the NIC-offload port (coll/offload.hpp). Attachment is part
  /// of cluster configuration and must be uniform across the group: with
  /// no port, Algorithm::nic_offload selections resolve to the host table
  /// on every rank alike.
  void set_offload(OffloadPort* port) { offload_ = port; }

  /// Root's payload lands on every rank (root included).
  Bytes bcast(int root, BytesView payload);

  /// Root returns one payload per rank; non-roots return {}.
  std::vector<Bytes> gather(int root, BytesView contribution);

  /// Root supplies n_procs payloads; everyone returns its own slice.
  Bytes scatter(int root, std::span<const Bytes> payloads);

  void barrier();

  /// Element-wise sum at the root; non-roots return {}.
  std::vector<double> reduce_sum(int root, std::span<const double> values);

  /// Element-wise sum on every rank.
  std::vector<double> allreduce_sum(std::span<const double> values);

  /// Every rank returns all contributions indexed by source rank.
  std::vector<Bytes> allgather(BytesView contribution);

  /// Rank r returns segment_of(n, n_procs, r) of the element-wise sum.
  std::vector<double> reduce_scatter_sum(std::span<const double> values);

 private:
  /// Scope guard sampling one op's latency at destruction.
  class Timed;

  /// The table's answer with the offload family masked out — what a
  /// nic_offload selection degrades to when no port is attached (or a
  /// bcast root is not rank 0).
  Algorithm host_algorithm_for(Op op, std::size_t bytes) const;

  /// One offloaded operation: begin/await on the port; on timeout, abort
  /// the NIC state and rebuild a bit-identical result from every rank's
  /// original contribution (fetched over the reliable plane, folded in
  /// the same tree order the firmware uses).
  Bytes offload_round(Op op, BytesView own);

  Fabric& fabric_;
  Params params_;
  obs::Profiler* prof_ = nullptr;
  OffloadPort* offload_ = nullptr;
  /// Offloaded ops burn one group-wide sequence number each; every rank
  /// must attempt the same set of offloaded ops in the same order.
  std::uint64_t offload_seq_ = 0;
};

}  // namespace ncs::coll
