// NIC-offload support: the host-side contract for adapter-resident
// combine/forward collectives.
//
// The firmware half lives in atm/nic_coll (a table of collective contexts
// on the i960 that folds arriving contribution cells and forwards one
// result upstream); mps/coll_offload bridges the two across the reliable
// message plane. This header owns everything both halves must agree on:
//
//   * the combine-tree shape (radix-k over plain ranks, rooted at rank 0),
//   * the fold order (own contribution first, then children ascending) —
//     replayed on the host by tree_fold so a fallback after a mid-operation
//     abort reconstructs a bit-identical result from the original
//     contributions, no matter which ranks already completed on the NIC,
//   * the OffloadPort interface coll::Engine drives.
//
// Offload participation is decided from configuration alone (coll::Params),
// never from live port state: every rank must reach the same
// offload-or-host decision and burn the same operation sequence numbers,
// or the group deadlocks. A rank whose context is torn down still calls
// begin() — the contribution is retained for peers' fetch fallback — and
// simply times out in await().
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "coll/select.hpp"
#include "common/bytes.hpp"

namespace ncs::coll {

/// Parent of `rank` in the radix-k combine tree rooted at rank 0
/// (-1 for the root).
int offload_parent(int rank, int radix);

/// Children of `rank` in the radix-k combine tree over `n_procs` ranks,
/// ascending.
std::vector<int> offload_children(int rank, int n_procs, int radix);

/// The NIC combine order, replayed on the host: subtree(r) folds rank r's
/// own doubles, then each child's folded subtree in ascending child order.
/// Returns subtree(0) — the full reduction. `contribs[r]` is rank r's
/// original packed-doubles contribution.
std::vector<double> tree_fold(const std::vector<Bytes>& contribs, int n_procs, int radix);

/// Host-side port into the adapter's collective contexts. One per rank;
/// coll::Engine drives it when select() picks Algorithm::nic_offload.
class OffloadPort {
 public:
  virtual ~OffloadPort() = default;

  /// Starts offloaded operation `seq`: retains `own` for peers' fetch
  /// fallback (and answers any parked fetches for it), re-arms the NIC
  /// context if a fault tore it down, then injects the contribution.
  virtual void begin(std::uint64_t seq, Op op, BytesView own) = 0;

  /// Blocks until the NIC completion upcall for `seq` delivers the combined
  /// result (empty for barrier), or nullopt after the offload timeout.
  virtual std::optional<Bytes> await(std::uint64_t seq) = 0;

  /// Abandons `seq` after a timeout: partial NIC accumulations for it are
  /// dropped and late cells/completions must not surface (the
  /// double-contribution guard), and the context is torn down for re-arm.
  virtual void abort(std::uint64_t seq) = 0;

  /// Fetches `rank`'s original contribution for `seq` over the reliable
  /// message plane — the fallback's input. Blocks until served (the remote
  /// side parks the request if it has not reached begin(seq) yet).
  virtual Bytes fetch(std::uint64_t seq, int rank) = 0;
};

}  // namespace ncs::coll
