// The transport surface collective algorithms run on.
//
// A Fabric is the minimal point-to-point substrate a collective needs:
// ranked peers, a queueing send, a blocking source-addressed receive, and
// the simulation clock (for the engine's per-algorithm latency samples).
// mps::Node adapts itself to this interface (the collective plane:
// endpoint kCollectiveThread, per-source FIFO delivery), and tests can
// substitute their own.
//
// Send contract: the payload is copied before send() returns, so callers
// may reuse or mutate the buffer immediately — pipelined algorithms rely
// on this. `wait=false` only queues the transfer (the node's send system
// thread drains it in FIFO order per destination); `wait=true`
// additionally blocks the caller until the transport hand-off completes,
// the paper's NCS_send semantics. Per-(source,destination) ordering is
// preserved either way, which is what lets algorithms match messages
// positionally instead of tagging rounds.
#pragma once

#include "common/bytes.hpp"
#include "common/time.hpp"

namespace ncs::coll {

class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual int rank() const = 0;
  virtual int n_procs() const = 0;
  virtual TimePoint now() const = 0;

  /// Queues `data` for `to`; blocks until transport hand-off iff `wait`.
  virtual void send(int to, BytesView data, bool wait) = 0;

  /// Blocks until the next collective message from `from` arrives.
  virtual Bytes recv(int from) = 0;
};

}  // namespace ncs::coll
