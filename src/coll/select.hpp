// Algorithm autoselection: the size x nprocs decision table.
//
// Every collective op has a naive flat algorithm (root-centric linear
// fan-out/fan-in, correct at any scale and cheapest for tiny groups) and
// at least one scalable algorithm. select() picks per call from the
// message size and group size; Params makes the thresholds and per-op
// forced overrides part of mps::Node::Options, so cluster configs (and
// the coll_sweep bench) can pin any op to any algorithm.
//
// The default table:
//
//   op             P < tree_min_procs   P >= tree_min_procs
//   -------------  ------------------   -------------------------------
//   bcast          flat                 binomial_tree
//   gather         flat                 binomial_tree
//   scatter        flat                 binomial_tree
//   reduce         flat                 binomial_tree
//   barrier        flat                 dissemination
//   allgather      flat                 ring
//   reduce_scatter flat                 ring
//   allreduce      flat                 recursive_doubling (payload <=
//                                       allreduce_ring_min_bytes), else
//                                       ring (chunk-pipelined)
#pragma once

#include <cstddef>
#include <cstdint>

namespace ncs::coll {

enum class Op : std::uint8_t {
  bcast,
  gather,
  scatter,
  barrier,
  reduce,
  allreduce,
  allgather,
  reduce_scatter,
};
inline constexpr int kOpCount = static_cast<int>(Op::reduce_scatter) + 1;

enum class Algorithm : std::uint8_t {
  automatic,  // Params value only: defer to the decision table
  flat,
  binomial_tree,
  dissemination,
  recursive_doubling,
  ring,
};

const char* to_string(Op op);
const char* to_string(Algorithm a);

struct Params {
  /// Groups smaller than this use the flat algorithms everywhere: a tree
  /// over 2-3 ranks is all constant factors and no fan-out to amortize.
  int tree_min_procs = 4;

  /// Allreduce payloads at or below this stay on recursive doubling
  /// (log2 P latency-bound rounds); above it the ring's bandwidth-optimal
  /// 2(P-1)/P transfer volume wins.
  std::size_t allreduce_ring_min_bytes = 16 * 1024;

  /// Ring segment transfers are split into chunks of at most this many
  /// bytes so a segment's tail serializes while its head is already on
  /// the wire (rounded to whole doubles; 0 = no chunking).
  std::size_t ring_chunk_bytes = 8 * 1024;

  /// Per-op forced algorithm; `automatic` defers to the table above.
  /// An op forced to an algorithm that cannot implement it falls back to
  /// the table (e.g. `ring` bcast).
  Algorithm force[kOpCount] = {};

  Algorithm forced(Op op) const { return force[static_cast<int>(op)]; }
  void set_force(Op op, Algorithm a) { force[static_cast<int>(op)] = a; }
};

/// True when `a` is one of the algorithms implementing `op`.
bool implements(Op op, Algorithm a);

/// The decision table: total payload `bytes` moved per rank, group of
/// `n_procs`. Never returns `automatic`.
Algorithm select(Op op, int n_procs, std::size_t bytes, const Params& params);

}  // namespace ncs::coll
