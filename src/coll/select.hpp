// Algorithm autoselection: the size x nprocs decision table.
//
// Every collective op has a naive flat algorithm (root-centric linear
// fan-out/fan-in, correct at any scale and cheapest for tiny groups) and
// at least one scalable algorithm. select() picks per call from the
// message size and group size; Params makes the thresholds and per-op
// forced overrides part of mps::Node::Options, so cluster configs (and
// the coll_sweep bench) can pin any op to any algorithm.
//
// The default table:
//
//   op             P < tree_min_procs   P >= tree_min_procs
//   -------------  ------------------   -------------------------------
//   bcast          flat                 binomial_tree
//   gather         flat                 binomial_tree
//   scatter        flat                 binomial_tree
//   reduce         flat                 binomial_tree
//   barrier        flat                 dissemination
//   allgather      flat                 ring
//   reduce_scatter flat                 ring
//   allreduce      flat                 recursive_doubling (payload <=
//                                       allreduce_ring_min_bytes), else
//                                       ring (chunk-pipelined)
#pragma once

#include <cstddef>
#include <cstdint>

namespace ncs::coll {

enum class Op : std::uint8_t {
  bcast,
  gather,
  scatter,
  barrier,
  reduce,
  allreduce,
  allgather,
  reduce_scatter,
};
inline constexpr int kOpCount = static_cast<int>(Op::reduce_scatter) + 1;

enum class Algorithm : std::uint8_t {
  automatic,  // Params value only: defer to the decision table
  flat,
  binomial_tree,
  dissemination,
  recursive_doubling,
  ring,
  nic_offload,  // adapter-resident combine/forward tree (atm/nic_coll):
                // barrier, root-0 bcast, small allreduce
};

const char* to_string(Op op);
const char* to_string(Algorithm a);

struct Params {
  /// Groups smaller than this use the flat algorithms everywhere: a tree
  /// over 2-3 ranks is all constant factors and no fan-out to amortize.
  int tree_min_procs = 4;

  /// Allreduce payloads at or below this stay on recursive doubling
  /// (log2 P latency-bound rounds); above it the ring's bandwidth-optimal
  /// 2(P-1)/P transfer volume wins.
  std::size_t allreduce_ring_min_bytes = 16 * 1024;

  /// Ring segment transfers are split into chunks of at most this many
  /// bytes so a segment's tail serializes while its head is already on
  /// the wire (rounded to whole doubles; 0 = no chunking).
  std::size_t ring_chunk_bytes = 8 * 1024;

  /// NIC-offloaded combine/forward family (cluster wiring attaches the
  /// OffloadPort when this is set; without a port the table is used).
  /// Participation must be decided from these fields alone — every rank
  /// has to reach the same offload-or-host decision — so the thresholds
  /// below gate on group size and payload size only.
  bool nic_offload = false;

  /// Offloaded barrier/bcast take over at or above this group size (the
  /// measured LAN crossover vs dissemination/binomial_tree; see
  /// bench/nic_coll_sweep — the adapter tree wins from P=4 up, the default
  /// stays conservative for mixed workloads).
  int offload_min_procs = 4;

  /// Allreduce payloads at or below this combine inline in firmware;
  /// larger payloads stay on the host algorithms (measured crossover:
  /// firmware folding wins while the whole vector fits a handful of
  /// cells; past ~2 KiB recursive doubling's pipelining takes over).
  std::size_t offload_max_bytes = 2048;

  /// Radix of the adapter combine tree (rooted at rank 0).
  int offload_radix = 2;

  /// Host-side wait bound for an offloaded operation before it aborts the
  /// NIC state and falls back to fetching original contributions over the
  /// reliable plane. Only fires under faults; must comfortably exceed a
  /// healthy WAN combine round-trip.
  std::int64_t offload_timeout_us = 50'000;

  /// Per-op forced algorithm; `automatic` defers to the table above.
  /// An op forced to an algorithm that cannot implement it falls back to
  /// the table (e.g. `ring` bcast).
  Algorithm force[kOpCount] = {};

  Algorithm forced(Op op) const { return force[static_cast<int>(op)]; }
  void set_force(Op op, Algorithm a) { force[static_cast<int>(op)] = a; }
};

/// True when `a` is one of the algorithms implementing `op`.
bool implements(Op op, Algorithm a);

/// The decision table: total payload `bytes` moved per rank, group of
/// `n_procs`. Never returns `automatic`.
Algorithm select(Op op, int n_procs, std::size_t bytes, const Params& params);

}  // namespace ncs::coll
