#include "coll/engine.hpp"

#include <string>
#include <utility>

#include "coll/algorithms.hpp"
#include "coll/offload.hpp"
#include "common/assert.hpp"
#include "obs/prof.hpp"

namespace ncs::coll {

class Engine::Timed {
 public:
  Timed(Engine& engine, Op op, Algorithm algorithm)
      : engine_(engine), op_(op), algorithm_(algorithm), began_(engine.fabric_.now()) {}

  ~Timed() {
    obs::Profiler* prof = engine_.prof_;
    if (prof == nullptr) return;
    const Duration elapsed = engine_.fabric_.now() - began_;
    prof->record(obs::Layer::coll, elapsed);
    prof->record_coll(std::string(to_string(op_)) + "/" + to_string(algorithm_), elapsed);
  }

 private:
  Engine& engine_;
  Op op_;
  Algorithm algorithm_;
  TimePoint began_;
};

Algorithm Engine::host_algorithm_for(Op op, std::size_t bytes) const {
  Params host = params_;
  host.nic_offload = false;
  if (host.forced(op) == Algorithm::nic_offload) host.set_force(op, Algorithm::automatic);
  return select(op, fabric_.n_procs(), bytes, host);
}

Bytes Engine::offload_round(Op op, BytesView own) {
  const std::uint64_t seq = offload_seq_++;
  offload_->begin(seq, op, own);
  if (auto result = offload_->await(seq)) return std::move(*result);

  // Timeout (fault in the combine tree, or the context was torn down).
  // Drop the NIC's partial accumulation for this sequence *before*
  // restarting on the host — late cells must not double-contribute — then
  // rebuild from original contributions. fetch() blocks until the remote
  // rank has begun the same sequence, which preserves barrier semantics.
  offload_->abort(seq);
  const int n = fabric_.n_procs();
  const int rank = fabric_.rank();
  if (op == Op::bcast) return rank == 0 ? to_bytes(own) : offload_->fetch(seq, 0);
  std::vector<Bytes> contribs(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    contribs[static_cast<std::size_t>(r)] =
        r == rank ? to_bytes(own) : offload_->fetch(seq, r);
  if (op == Op::barrier) return {};
  return pack_doubles(tree_fold(contribs, n, params_.offload_radix));
}

Bytes Engine::bcast(int root, BytesView payload) {
  NCS_ASSERT(root >= 0 && root < fabric_.n_procs());
  if (fabric_.n_procs() == 1) return to_bytes(payload);
  Algorithm a = algorithm_for(Op::bcast, payload.size());
  // The offload tree is rooted at rank 0; other roots resolve to the host
  // table (same `root` argument on every rank, so the group agrees).
  if (a == Algorithm::nic_offload && (offload_ == nullptr || root != 0))
    a = host_algorithm_for(Op::bcast, payload.size());
  Timed timed(*this, Op::bcast, a);
  if (a == Algorithm::nic_offload) {
    // Flag round through the adapter tree: the root pushes one header PDU
    // carrying either the payload inline (small) or a "big" marker, in
    // which case the payload itself follows on the host binomial tree.
    // Non-roots learn the size in-band, so selection never depends on it.
    Bytes header;
    if (fabric_.rank() == 0) {
      const bool inline_ok = payload.size() <= params_.offload_max_bytes;
      header.push_back(static_cast<std::byte>(inline_ok ? 1 : 0));
      if (inline_ok) append(header, payload);
    }
    const Bytes got = offload_round(Op::bcast, header);
    NCS_ASSERT(!got.empty());
    if (got.front() == std::byte{1}) return Bytes(got.begin() + 1, got.end());
    return bcast_binomial(fabric_, 0, payload);
  }
  return a == Algorithm::binomial_tree ? bcast_binomial(fabric_, root, payload)
                                       : bcast_flat(fabric_, root, payload);
}

std::vector<Bytes> Engine::gather(int root, BytesView contribution) {
  NCS_ASSERT(root >= 0 && root < fabric_.n_procs());
  if (fabric_.n_procs() == 1) return {to_bytes(contribution)};
  const Algorithm a = algorithm_for(Op::gather, contribution.size());
  Timed timed(*this, Op::gather, a);
  return a == Algorithm::binomial_tree ? gather_binomial(fabric_, root, contribution)
                                       : gather_flat(fabric_, root, contribution);
}

Bytes Engine::scatter(int root, std::span<const Bytes> payloads) {
  NCS_ASSERT(root >= 0 && root < fabric_.n_procs());
  if (fabric_.n_procs() == 1) {
    NCS_ASSERT_MSG(payloads.size() == 1, "scatter needs one payload per rank");
    return payloads.front();
  }
  const std::size_t bytes =
      fabric_.rank() == root && !payloads.empty() ? payloads.front().size() : 0;
  const Algorithm a = algorithm_for(Op::scatter, bytes);
  Timed timed(*this, Op::scatter, a);
  return a == Algorithm::binomial_tree ? scatter_binomial(fabric_, root, payloads)
                                       : scatter_flat(fabric_, root, payloads);
}

void Engine::barrier() {
  if (fabric_.n_procs() == 1) return;
  Algorithm a = algorithm_for(Op::barrier, 0);
  if (a == Algorithm::nic_offload && offload_ == nullptr) a = host_algorithm_for(Op::barrier, 0);
  Timed timed(*this, Op::barrier, a);
  if (a == Algorithm::nic_offload) {
    offload_round(Op::barrier, {});
  } else if (a == Algorithm::dissemination) {
    barrier_dissemination(fabric_);
  } else {
    barrier_flat(fabric_);
  }
}

std::vector<double> Engine::reduce_sum(int root, std::span<const double> values) {
  NCS_ASSERT(root >= 0 && root < fabric_.n_procs());
  if (fabric_.n_procs() == 1) return {values.begin(), values.end()};
  const Algorithm a = algorithm_for(Op::reduce, values.size_bytes());
  Timed timed(*this, Op::reduce, a);
  return a == Algorithm::binomial_tree ? reduce_binomial(fabric_, root, values)
                                       : reduce_flat(fabric_, root, values);
}

std::vector<double> Engine::allreduce_sum(std::span<const double> values) {
  if (fabric_.n_procs() == 1) return {values.begin(), values.end()};
  Algorithm a = algorithm_for(Op::allreduce, values.size_bytes());
  if (a == Algorithm::nic_offload && offload_ == nullptr)
    a = host_algorithm_for(Op::allreduce, values.size_bytes());
  Timed timed(*this, Op::allreduce, a);
  switch (a) {
    case Algorithm::nic_offload:
      return unpack_doubles(offload_round(Op::allreduce, pack_doubles(values)));
    case Algorithm::recursive_doubling:
      return allreduce_recursive_doubling(fabric_, values);
    case Algorithm::ring:
      return allreduce_ring(fabric_, values, params_.ring_chunk_bytes);
    default:
      return allreduce_flat(fabric_, values);
  }
}

std::vector<Bytes> Engine::allgather(BytesView contribution) {
  if (fabric_.n_procs() == 1) return {to_bytes(contribution)};
  const Algorithm a = algorithm_for(Op::allgather, contribution.size());
  Timed timed(*this, Op::allgather, a);
  return a == Algorithm::ring ? allgather_ring(fabric_, contribution)
                              : allgather_flat(fabric_, contribution);
}

std::vector<double> Engine::reduce_scatter_sum(std::span<const double> values) {
  if (fabric_.n_procs() == 1) return {values.begin(), values.end()};
  const Algorithm a = algorithm_for(Op::reduce_scatter, values.size_bytes());
  Timed timed(*this, Op::reduce_scatter, a);
  return a == Algorithm::ring
             ? reduce_scatter_ring(fabric_, values, params_.ring_chunk_bytes)
             : reduce_scatter_flat(fabric_, values);
}

}  // namespace ncs::coll
