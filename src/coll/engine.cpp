#include "coll/engine.hpp"

#include <string>

#include "coll/algorithms.hpp"
#include "common/assert.hpp"
#include "obs/prof.hpp"

namespace ncs::coll {

class Engine::Timed {
 public:
  Timed(Engine& engine, Op op, Algorithm algorithm)
      : engine_(engine), op_(op), algorithm_(algorithm), began_(engine.fabric_.now()) {}

  ~Timed() {
    obs::Profiler* prof = engine_.prof_;
    if (prof == nullptr) return;
    const Duration elapsed = engine_.fabric_.now() - began_;
    prof->record(obs::Layer::coll, elapsed);
    prof->record_coll(std::string(to_string(op_)) + "/" + to_string(algorithm_), elapsed);
  }

 private:
  Engine& engine_;
  Op op_;
  Algorithm algorithm_;
  TimePoint began_;
};

Bytes Engine::bcast(int root, BytesView payload) {
  NCS_ASSERT(root >= 0 && root < fabric_.n_procs());
  if (fabric_.n_procs() == 1) return to_bytes(payload);
  const Algorithm a = algorithm_for(Op::bcast, payload.size());
  Timed timed(*this, Op::bcast, a);
  return a == Algorithm::binomial_tree ? bcast_binomial(fabric_, root, payload)
                                       : bcast_flat(fabric_, root, payload);
}

std::vector<Bytes> Engine::gather(int root, BytesView contribution) {
  NCS_ASSERT(root >= 0 && root < fabric_.n_procs());
  if (fabric_.n_procs() == 1) return {to_bytes(contribution)};
  const Algorithm a = algorithm_for(Op::gather, contribution.size());
  Timed timed(*this, Op::gather, a);
  return a == Algorithm::binomial_tree ? gather_binomial(fabric_, root, contribution)
                                       : gather_flat(fabric_, root, contribution);
}

Bytes Engine::scatter(int root, std::span<const Bytes> payloads) {
  NCS_ASSERT(root >= 0 && root < fabric_.n_procs());
  if (fabric_.n_procs() == 1) {
    NCS_ASSERT_MSG(payloads.size() == 1, "scatter needs one payload per rank");
    return payloads.front();
  }
  const std::size_t bytes =
      fabric_.rank() == root && !payloads.empty() ? payloads.front().size() : 0;
  const Algorithm a = algorithm_for(Op::scatter, bytes);
  Timed timed(*this, Op::scatter, a);
  return a == Algorithm::binomial_tree ? scatter_binomial(fabric_, root, payloads)
                                       : scatter_flat(fabric_, root, payloads);
}

void Engine::barrier() {
  if (fabric_.n_procs() == 1) return;
  const Algorithm a = algorithm_for(Op::barrier, 0);
  Timed timed(*this, Op::barrier, a);
  if (a == Algorithm::dissemination) {
    barrier_dissemination(fabric_);
  } else {
    barrier_flat(fabric_);
  }
}

std::vector<double> Engine::reduce_sum(int root, std::span<const double> values) {
  NCS_ASSERT(root >= 0 && root < fabric_.n_procs());
  if (fabric_.n_procs() == 1) return {values.begin(), values.end()};
  const Algorithm a = algorithm_for(Op::reduce, values.size_bytes());
  Timed timed(*this, Op::reduce, a);
  return a == Algorithm::binomial_tree ? reduce_binomial(fabric_, root, values)
                                       : reduce_flat(fabric_, root, values);
}

std::vector<double> Engine::allreduce_sum(std::span<const double> values) {
  if (fabric_.n_procs() == 1) return {values.begin(), values.end()};
  const Algorithm a = algorithm_for(Op::allreduce, values.size_bytes());
  Timed timed(*this, Op::allreduce, a);
  switch (a) {
    case Algorithm::recursive_doubling:
      return allreduce_recursive_doubling(fabric_, values);
    case Algorithm::ring:
      return allreduce_ring(fabric_, values, params_.ring_chunk_bytes);
    default:
      return allreduce_flat(fabric_, values);
  }
}

std::vector<Bytes> Engine::allgather(BytesView contribution) {
  if (fabric_.n_procs() == 1) return {to_bytes(contribution)};
  const Algorithm a = algorithm_for(Op::allgather, contribution.size());
  Timed timed(*this, Op::allgather, a);
  return a == Algorithm::ring ? allgather_ring(fabric_, contribution)
                              : allgather_flat(fabric_, contribution);
}

std::vector<double> Engine::reduce_scatter_sum(std::span<const double> values) {
  if (fabric_.n_procs() == 1) return {values.begin(), values.end()};
  const Algorithm a = algorithm_for(Op::reduce_scatter, values.size_bytes());
  Timed timed(*this, Op::reduce_scatter, a);
  return a == Algorithm::ring
             ? reduce_scatter_ring(fabric_, values, params_.ring_chunk_bytes)
             : reduce_scatter_flat(fabric_, values);
}

}  // namespace ncs::coll
