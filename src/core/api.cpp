#include "core/api.hpp"

#include <map>

namespace ncs::api {

namespace {
std::map<mts::Scheduler*, mps::Node*>& registry() {
  static std::map<mts::Scheduler*, mps::Node*> nodes;
  return nodes;
}
}  // namespace

void register_node(mps::Node* node) {
  NCS_ASSERT(node != nullptr);
  registry()[&node->host()] = node;
}

void unregister_node(mps::Node* node) {
  NCS_ASSERT(node != nullptr);
  registry().erase(&node->host());
}

mps::Node& self() {
  mts::Scheduler* sched = mts::Scheduler::active();
  NCS_ASSERT_MSG(sched != nullptr, "NCS API used outside a thread");
  const auto it = registry().find(sched);
  NCS_ASSERT_MSG(it != registry().end(), "no NCS node registered for this host");
  return *it->second;
}

}  // namespace ncs::api
