// Paper-style NCS API.
//
// The paper's programming interface is a set of C functions (Fig 7, 10):
// NCS_init / NCS_t_create / NCS_start / NCS_send / NCS_recv / NCS_bcast /
// NCS_block / NCS_unblock. These wrappers reproduce those signatures on
// top of mps::Node so the example programs read like the paper's
// pseudocode. The node for "this process" is found through the scheduler
// of the calling green thread; the cluster harness registers it at setup.
#pragma once

#include "core/mps/node.hpp"

namespace ncs::api {

/// Associates `node` with its host scheduler (harness setup).
void register_node(mps::Node* node);
void unregister_node(mps::Node* node);

/// The Node of the calling thread's process. Aborts outside a thread.
mps::Node& self();

inline int NCS_get_my_id() { return self().rank(); }
inline int NCS_num_procs() { return self().n_procs(); }

inline int NCS_t_create(std::function<void()> body, int priority = mts::kDefaultPriority) {
  return self().t_create(std::move(body), priority);
}

inline void NCS_send(int from_thread, int from_process, int to_thread, int to_process,
                     BytesView data) {
  mps::Node& node = self();
  NCS_ASSERT_MSG(from_process == node.rank(), "NCS_send from_process must be the caller's");
  node.send(from_thread, to_thread, to_process, data);
}

inline Bytes NCS_recv(int from_thread, int from_process, int to_thread, int to_process,
                      int* src_thread = nullptr, int* src_process = nullptr) {
  mps::Node& node = self();
  NCS_ASSERT_MSG(to_process == node.rank(), "NCS_recv to_process must be the caller's");
  return node.recv(from_thread, from_process, to_thread, src_thread, src_process);
}

inline void NCS_bcast(int from_thread, int from_process,
                      std::span<const mps::Endpoint> list, BytesView data) {
  mps::Node& node = self();
  NCS_ASSERT_MSG(from_process == node.rank(), "NCS_bcast from_process must be the caller's");
  node.bcast(from_thread, list, data);
}

inline void NCS_barrier() { self().barrier(); }
inline void NCS_block() { self().block(); }
inline void NCS_unblock(int tid) { self().unblock(tid); }

}  // namespace ncs::api
