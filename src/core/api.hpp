// Paper-style NCS API.
//
// The paper's programming interface is a set of C functions (Fig 7, 10):
// NCS_init / NCS_t_create / NCS_start / NCS_send / NCS_recv / NCS_bcast /
// NCS_block / NCS_unblock. These wrappers reproduce those signatures on
// top of mps::Node so the example programs read like the paper's
// pseudocode. The node for "this process" is found through the scheduler
// of the calling green thread; the cluster harness registers it at setup.
#pragma once

#include "core/mps/node.hpp"
#include "rma/engine.hpp"

namespace ncs::api {

/// Associates `node` with its host scheduler (harness setup).
void register_node(mps::Node* node);
void unregister_node(mps::Node* node);

/// The Node of the calling thread's process. Aborts outside a thread.
mps::Node& self();

inline int NCS_get_my_id() { return self().rank(); }
inline int NCS_num_procs() { return self().n_procs(); }

inline int NCS_t_create(std::function<void()> body, int priority = mts::kDefaultPriority) {
  return self().t_create(std::move(body), priority);
}

inline void NCS_send(int from_thread, int from_process, int to_thread, int to_process,
                     BytesView data) {
  mps::Node& node = self();
  NCS_ASSERT_MSG(from_process == node.rank(), "NCS_send from_process must be the caller's");
  node.send(from_thread, to_thread, to_process, data);
}

inline Bytes NCS_recv(int from_thread, int from_process, int to_thread, int to_process,
                      int* src_thread = nullptr, int* src_process = nullptr) {
  mps::Node& node = self();
  NCS_ASSERT_MSG(to_process == node.rank(), "NCS_recv to_process must be the caller's");
  return node.recv(from_thread, from_process, to_thread, src_thread, src_process);
}

inline void NCS_bcast(int from_thread, int from_process,
                      std::span<const mps::Endpoint> list, BytesView data) {
  mps::Node& node = self();
  NCS_ASSERT_MSG(from_process == node.rank(), "NCS_bcast from_process must be the caller's");
  node.bcast(from_thread, list, data);
}

inline void NCS_barrier() { self().barrier(); }
inline void NCS_block() { self().block(); }
inline void NCS_unblock(int tid) { self().unblock(tid); }

// --- collective group operations (coll::Engine behind mps::Node; the
//     algorithm — flat, binomial tree, dissemination, recursive doubling,
//     chunk-pipelined ring — is autoselected per call from the payload
//     size and group size, overridable via ClusterConfig::ncs.coll) ---

/// Collective broadcast: the root's payload lands on every process.
inline Bytes NCS_bcast(int root, BytesView data) { return self().bcast(root, data); }

/// Element-wise sum of equal-length double vectors, result on every rank.
inline std::vector<double> NCS_allreduce(std::span<const double> values) {
  return self().allreduce_sum(values);
}

/// Every rank returns all contributions indexed by source rank.
inline std::vector<Bytes> NCS_allgather(BytesView contribution) {
  return self().allgather(contribution);
}

/// Rank r returns its balanced segment of the element-wise sum.
inline std::vector<double> NCS_reduce_scatter(std::span<const double> values) {
  return self().reduce_scatter_sum(values);
}

inline std::vector<Bytes> NCS_gather(int root, BytesView contribution) {
  return self().gather(root, contribution);
}

inline Bytes NCS_scatter(int root, std::span<const Bytes> payloads) {
  return self().scatter(root, payloads);
}

// --- one-sided operations (rma::Engine behind mps::Node; enable with
//     ClusterConfig::rma_enabled). Ops return an op id immediately; their
//     fate arrives on the endpoint's completion queue — NCS_rma_poll /
//     NCS_rma_wait drain it, NCS_rma_fence waits for everything posted. ---

inline rma::Engine& NCS_rma() { return self().rma(); }

/// Registers `bytes` of zeroed process memory as one-sided window `id`
/// (call on every rank with the same id/size before targeting it).
inline rma::Window& NCS_win_create(int id, std::size_t bytes) {
  return self().rma().create_window(id, bytes);
}

/// One-sided write of `data` into (peer, window, offset); with `notify`,
/// the target's queue receives a remote_put completion when the data lands.
inline std::uint32_t NCS_put(int peer, int window, std::uint64_t offset, BytesView data,
                             bool notify = false, std::uint64_t cookie = 0) {
  return self().rma().put(peer, window, offset, data, notify, cookie);
}

/// One-sided read of `len` bytes from (peer, rwindow, roffset) into the
/// local (lwindow, loffset).
inline std::uint32_t NCS_get(int peer, int rwindow, std::uint64_t roffset, int lwindow,
                             std::uint64_t loffset, std::uint32_t len,
                             std::uint64_t cookie = 0) {
  return self().rma().get(peer, rwindow, roffset, lwindow, loffset, len, cookie);
}

/// Remote atomic add on the u64 at (peer, window, offset); the completion
/// carries the pre-update value.
inline std::uint32_t NCS_fetch_add(int peer, int window, std::uint64_t offset,
                                   std::uint64_t delta, std::uint64_t cookie = 0) {
  return self().rma().fetch_add(peer, window, offset, delta, cookie);
}

/// Remote atomic compare-and-swap on the u64 at (peer, window, offset);
/// the swap happened iff the completion's value equals `expected`.
inline std::uint32_t NCS_compare_swap(int peer, int window, std::uint64_t offset,
                                      std::uint64_t expected, std::uint64_t desired,
                                      std::uint64_t cookie = 0) {
  return self().rma().compare_swap(peer, window, offset, expected, desired, cookie);
}

/// Non-blocking completion probe.
inline std::optional<rma::Completion> NCS_rma_poll() { return self().rma().cq().poll(); }

/// Blocks the calling thread until a completion is available.
inline rma::Completion NCS_rma_wait() { return self().rma().cq().wait(); }

/// Blocks until every posted one-sided op has completed (ok or error);
/// completions stay on the queue for the caller to drain.
inline void NCS_rma_fence() { self().rma().fence(); }

}  // namespace ncs::api
