// Paper-style NCS API.
//
// The paper's programming interface is a set of C functions (Fig 7, 10):
// NCS_init / NCS_t_create / NCS_start / NCS_send / NCS_recv / NCS_bcast /
// NCS_block / NCS_unblock. These wrappers reproduce those signatures on
// top of mps::Node so the example programs read like the paper's
// pseudocode. The node for "this process" is found through the scheduler
// of the calling green thread; the cluster harness registers it at setup.
#pragma once

#include "core/mps/node.hpp"

namespace ncs::api {

/// Associates `node` with its host scheduler (harness setup).
void register_node(mps::Node* node);
void unregister_node(mps::Node* node);

/// The Node of the calling thread's process. Aborts outside a thread.
mps::Node& self();

inline int NCS_get_my_id() { return self().rank(); }
inline int NCS_num_procs() { return self().n_procs(); }

inline int NCS_t_create(std::function<void()> body, int priority = mts::kDefaultPriority) {
  return self().t_create(std::move(body), priority);
}

inline void NCS_send(int from_thread, int from_process, int to_thread, int to_process,
                     BytesView data) {
  mps::Node& node = self();
  NCS_ASSERT_MSG(from_process == node.rank(), "NCS_send from_process must be the caller's");
  node.send(from_thread, to_thread, to_process, data);
}

inline Bytes NCS_recv(int from_thread, int from_process, int to_thread, int to_process,
                      int* src_thread = nullptr, int* src_process = nullptr) {
  mps::Node& node = self();
  NCS_ASSERT_MSG(to_process == node.rank(), "NCS_recv to_process must be the caller's");
  return node.recv(from_thread, from_process, to_thread, src_thread, src_process);
}

inline void NCS_bcast(int from_thread, int from_process,
                      std::span<const mps::Endpoint> list, BytesView data) {
  mps::Node& node = self();
  NCS_ASSERT_MSG(from_process == node.rank(), "NCS_bcast from_process must be the caller's");
  node.bcast(from_thread, list, data);
}

inline void NCS_barrier() { self().barrier(); }
inline void NCS_block() { self().block(); }
inline void NCS_unblock(int tid) { self().unblock(tid); }

// --- collective group operations (coll::Engine behind mps::Node; the
//     algorithm — flat, binomial tree, dissemination, recursive doubling,
//     chunk-pipelined ring — is autoselected per call from the payload
//     size and group size, overridable via ClusterConfig::ncs.coll) ---

/// Collective broadcast: the root's payload lands on every process.
inline Bytes NCS_bcast(int root, BytesView data) { return self().bcast(root, data); }

/// Element-wise sum of equal-length double vectors, result on every rank.
inline std::vector<double> NCS_allreduce(std::span<const double> values) {
  return self().allreduce_sum(values);
}

/// Every rank returns all contributions indexed by source rank.
inline std::vector<Bytes> NCS_allgather(BytesView contribution) {
  return self().allgather(contribution);
}

/// Rank r returns its balanced segment of the element-wise sum.
inline std::vector<double> NCS_reduce_scatter(std::span<const double> values) {
  return self().reduce_scatter_sum(values);
}

inline std::vector<Bytes> NCS_gather(int root, BytesView contribution) {
  return self().gather(root, contribution);
}

inline Bytes NCS_scatter(int root, std::span<const Bytes> payloads) {
  return self().scatter(root, payloads);
}

}  // namespace ncs::api
