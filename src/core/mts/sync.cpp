#include "core/mts/sync.hpp"

namespace ncs::mts {

namespace {

Thread* current_thread_of(Scheduler& sched) {
  Scheduler* active = Scheduler::active();
  NCS_ASSERT_MSG(active == &sched, "sync primitive used from a foreign host's thread");
  Thread* t = active->current();
  NCS_ASSERT(t != nullptr);
  return t;
}

}  // namespace

void Semaphore::wait() {
  Thread* self = current_thread_of(sched_);
  if (value_ > 0) {
    --value_;
    return;
  }
  waiters_.push_back(self);
  sched_.block(sim::Activity::idle);
  // Direct hand-off: the signaler consumed the credit on our behalf.
}

void Semaphore::signal() {
  if (!waiters_.empty()) {
    Thread* t = waiters_.front();
    waiters_.pop_front();
    sched_.unblock(t);
    return;
  }
  ++value_;
}

void CondVar::wait(Mutex& m) {
  Thread* self = current_thread_of(sched_);
  m.unlock();
  waiters_.push_back(self);
  sched_.block(sim::Activity::idle);
  m.lock();
}

void CondVar::notify_one() {
  if (waiters_.empty()) return;
  Thread* t = waiters_.front();
  waiters_.pop_front();
  sched_.unblock(t);
}

void CondVar::notify_all() {
  while (!waiters_.empty()) notify_one();
}

void Barrier::arrive_and_wait() {
  Thread* self = current_thread_of(sched_);
  ++arrived_;
  if (arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    for (Thread* t : waiters_) sched_.unblock(t);
    waiters_.clear();
    return;
  }
  const int my_generation = generation_;
  waiters_.push_back(self);
  do {
    sched_.block(sim::Activity::idle);
  } while (generation_ == my_generation);
}

void Event::wait() {
  Thread* self = current_thread_of(sched_);
  while (!set_) {
    waiters_.push_back(self);
    sched_.block(sim::Activity::idle);
  }
}

void Event::set() {
  set_ = true;
  for (Thread* t : waiters_) sched_.unblock(t);
  waiters_.clear();
}

}  // namespace ncs::mts
