#include "core/mts/smp.hpp"

#include <memory>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ncs::mts {

const char* to_string(ProgressModel m) {
  switch (m) {
    case ProgressModel::dedicated_core: return "dedicated_core";
    case ProgressModel::on_demand: return "on_demand";
    case ProgressModel::hybrid: return "hybrid";
  }
  return "?";
}

const char* to_string(StealPolicy p) {
  switch (p) {
    case StealPolicy::none: return "none";
    case StealPolicy::seeded: return "seeded";
    case StealPolicy::ring: return "ring";
  }
  return "?";
}

std::vector<int> victim_order(int self, int n_cores, StealPolicy policy,
                              std::uint64_t seed) {
  std::vector<int> order;
  if (policy == StealPolicy::none || n_cores <= 1) return order;
  // Ring order: the next core first, wrapping around.
  for (int i = 1; i < n_cores; ++i) order.push_back((self + i) % n_cores);
  if (policy == StealPolicy::ring) return order;
  // Seeded: Fisher-Yates over the ring with a per-(seed, core) stream, so
  // thieves spread over victims instead of all hammering core self+1.
  constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15;  // SplitMix64 increment
  Rng rng(seed ^ (static_cast<std::uint64_t>(self) * kGamma));
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

CoreSet::CoreSet(const SmpParams& params, const std::string& host_name) {
  NCS_ASSERT(params.n_cores >= 1);
  for (int c = 0; c < params.n_cores; ++c) {
    cores_.push_back(std::make_unique<Core>());
    Core& core = *cores_.back();
    core.index = c;
    core.victims = victim_order(c, params.n_cores, params.steal, params.steal_seed);
    core.prof_key = host_name + "/c" + std::to_string(c);
  }
}

}  // namespace ncs::mts
