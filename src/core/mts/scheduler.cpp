#include "core/mts/scheduler.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::mts {

namespace {
/// The scheduler whose thread is executing right now. A plain global is
/// correct: the whole simulation runs on one OS thread, and dispatches
/// never nest (cross-host interactions go through engine events).
Scheduler* g_active = nullptr;
}  // namespace

Scheduler* Scheduler::active() { return g_active; }

Scheduler::Scheduler(sim::Engine& engine, SchedulerParams params)
    : engine_(engine), params_(std::move(params)) {
  NCS_ASSERT(params_.cpu_mhz > 0);
}

Scheduler::~Scheduler() {
  // Unlink every thread before the Thread objects (and their hooks) die,
  // and retire any pending sleep timers so no queued event is left holding
  // a pointer into the threads we are about to destroy.
  for (auto& t : threads_) {
    if (t->sleep_timer_ != 0) engine_.cancel(t->sleep_timer_);
  }
  for (auto& q : runnable_) q.clear();
  blocked_.clear();
}

Thread* Scheduler::spawn(std::function<void()> body, ThreadOptions opts) {
  const auto id = static_cast<ThreadId>(threads_.size());
  threads_.push_back(std::make_unique<Thread>(*this, id, std::move(body), std::move(opts)));
  Thread* t = threads_.back().get();
  ++stats_.spawns;

  if (timeline_ != nullptr) {
    t->timeline_track_ = timeline_->add_track(params_.name + "/" + t->name_);
    timeline_->transition(t->timeline_track_, engine_.now(), sim::Activity::idle);
  }
  if (trace_ != nullptr) t->trace_track_ = trace_->track(params_.name + "/" + t->name_);

  // Creation cost: charged inline when a thread of this host spawns,
  // otherwise (setup from engine context) pushed onto the CPU horizon.
  if (params_.thread_create_cost > Duration::zero()) {
    if (g_active == this && current_ != nullptr) {
      stats_.overhead += params_.thread_create_cost;
      charge(params_.thread_create_cost, sim::Activity::overhead);
    } else {
      reserve_cpu(params_.thread_create_cost, /*as_overhead=*/true);
    }
  }

  t->state_ = ThreadState::runnable;
  make_runnable(t, /*front=*/false);
  kick();
  return t;
}

void Scheduler::make_runnable(Thread* t, bool front) {
  NCS_ASSERT(t->queue_ == nullptr);
  t->runnable_since_ = engine_.now();
  Queue& q = runnable_[static_cast<std::size_t>(t->priority_)];
  if (front) {
    q.push_front(*t);
  } else {
    q.push_back(*t);
  }
  t->queue_ = &q;
}

Thread* Scheduler::pop_runnable() {
  for (auto& q : runnable_) {
    if (!q.empty()) {
      Thread& t = q.pop_front();
      t.queue_ = nullptr;
      if (prof_ != nullptr)
        prof_->record(obs::Layer::sched_dispatch, engine_.now() - t.runnable_since_);
      return &t;
    }
  }
  return nullptr;
}

void Scheduler::mark(Thread* t, sim::Activity a) {
  if (timeline_ != nullptr && t->timeline_track_ >= 0)
    timeline_->transition(t->timeline_track_, engine_.now(), a);
}

void Scheduler::reserve_cpu(Duration d, bool as_overhead) {
  cpu_free_at_ = ncs::max(engine_.now(), cpu_free_at_) + d;
  stats_.cpu_busy += d;
  if (as_overhead) stats_.overhead += d;
}

void Scheduler::kick() {
  if (dispatch_scheduled_ || in_dispatch_) return;
  dispatch_scheduled_ = true;
  engine_.post([this] {
    dispatch_scheduled_ = false;
    if (!in_dispatch_) dispatch_loop();
  });
}

void Scheduler::dispatch_loop() {
  NCS_ASSERT(!in_dispatch_ && current_ == nullptr);
  in_dispatch_ = true;
  for (;;) {
    // Overhead window (context switch / spawn cost) still running.
    if (engine_.now() < cpu_free_at_) {
      if (!dispatch_scheduled_) {
        dispatch_scheduled_ = true;
        engine_.schedule_at(cpu_free_at_, [this] {
          dispatch_scheduled_ = false;
          if (!in_dispatch_) dispatch_loop();
        });
      }
      break;
    }

    Thread* t = nullptr;
    if (resume_direct_ != nullptr) {
      // Continuation of the running thread (post-charge or post-switch-cost):
      // no context switch happens, so no switch cost.
      t = std::exchange(resume_direct_, nullptr);
    } else if (cpu_owner_ != nullptr) {
      break;  // a charge window is in progress; its timer will resume us
    } else {
      t = pop_runnable();
      if (t == nullptr) break;
      if (params_.context_switch_cost > Duration::zero()) {
        // Pay the dispatch cost, then resume this thread directly.
        reserve_cpu(params_.context_switch_cost, /*as_overhead=*/true);
        resume_direct_ = t;
        continue;
      }
    }
    run_thread(t);
  }
  in_dispatch_ = false;
}

void Scheduler::run_thread(Thread* t) {
  NCS_ASSERT(t->queue_ == nullptr);
  NCS_ASSERT(t->state_ == ThreadState::runnable || t->state_ == ThreadState::blocked);
  t->state_ = ThreadState::running;
  current_ = t;
  ++stats_.dispatches;
  if (trace_ != nullptr && t->trace_track_ >= 0)
    trace_->instant(t->trace_track_, "dispatch", "mts", engine_.now());

  Scheduler* prev_active = g_active;
  g_active = this;
  qt::Context::switch_to(scheduler_context_, t->context_);
  g_active = prev_active;
  current_ = nullptr;
}

void Scheduler::switch_to_scheduler() {
  Thread* t = current_;
  NCS_ASSERT(t != nullptr);
  qt::Context::switch_to(t->context_, scheduler_context_);
  // Resumed: run_thread set current_ = t again before switching here.
  NCS_ASSERT(current_ == t && t->state_ == ThreadState::running);
}

void Scheduler::thread_main(Thread* t) {
  NCS_ASSERT(current_ == t);
  t->body_();
  t->body_ = nullptr;  // release captured resources
  t->state_ = ThreadState::finished;
  mark(t, sim::Activity::idle);
  for (Thread* j : t->joiners_) unblock(j);
  t->joiners_.clear();
  // Switch away forever.
  qt::Context::switch_to(t->context_, scheduler_context_);
  NCS_UNREACHABLE("finished thread resumed");
}

void Scheduler::block(sim::Activity blocked_as) {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "block() outside a thread");
  t->state_ = ThreadState::blocked;
  t->blocked_as_ = blocked_as;
  t->block_began_ = engine_.now();
  blocked_.push_back(*t);
  t->queue_ = &blocked_;
  mark(t, blocked_as);
  switch_to_scheduler();
  mark(t, sim::Activity::idle);
  if (trace_ != nullptr && t->trace_track_ >= 0)
    trace_->complete(t->trace_track_,
                     std::string("block:") + sim::activity_name(blocked_as), "mts",
                     t->block_began_, engine_.now() - t->block_began_);
}

void Scheduler::unblock(Thread* t) {
  NCS_ASSERT(t != nullptr);
  NCS_ASSERT_MSG(t->state_ == ThreadState::blocked && t->queue_ == &blocked_,
                 "unblock target is not on the blocked queue");
  blocked_.remove(*t);
  t->queue_ = nullptr;
  t->state_ = ThreadState::runnable;
  mark(t, sim::Activity::idle);
  make_runnable(t, /*front=*/false);
  kick();
}

void Scheduler::charge(Duration d, sim::Activity a) {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "charge() outside a thread");
  if (d <= Duration::zero()) return;

  if (trace_ != nullptr && t->trace_track_ >= 0)
    trace_->complete(t->trace_track_, std::string("charge:") + sim::activity_name(a), "mts",
                     engine_.now(), d);
  mark(t, a);
  stats_.cpu_busy += d;
  NCS_ASSERT(cpu_owner_ == nullptr);
  cpu_owner_ = t;
  engine_.schedule_after(d, [this, t] {
    NCS_ASSERT(cpu_owner_ == t);
    cpu_owner_ = nullptr;
    resume_direct_ = t;
    if (!in_dispatch_) dispatch_loop();
  });
  t->state_ = ThreadState::blocked;  // parked, but owns the CPU; not queued
  switch_to_scheduler();
  mark(t, sim::Activity::idle);
}

void Scheduler::yield() {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "yield() outside a thread");
  if (runnable_count() == 0) return;  // nothing to yield to
  t->state_ = ThreadState::runnable;
  make_runnable(t, /*front=*/false);
  mark(t, sim::Activity::idle);
  switch_to_scheduler();
}

void Scheduler::yield_to_higher() {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "yield_to_higher() outside a thread");
  bool higher = false;
  for (int p = kHighestPriority; p < t->priority_; ++p) {
    if (!runnable_[static_cast<std::size_t>(p)].empty()) {
      higher = true;
      break;
    }
  }
  if (!higher) return;
  t->state_ = ThreadState::runnable;
  make_runnable(t, /*front=*/true);
  mark(t, sim::Activity::idle);
  switch_to_scheduler();
}

void Scheduler::sleep_until(TimePoint when) {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "sleep_until() outside a thread");
  if (when <= engine_.now()) return;
  // The thread may be woken before `when` by another path (unblock from a
  // sibling, NCS_unblock, ...). When the block returns we cancel the timer,
  // so it neither fires stale for a later sleep nor sits dead in the event
  // queue until `when`. The token + state checks stay as defense in depth
  // for the one window cancellation cannot close: the thread was woken
  // early but not yet re-dispatched (e.g. a fault pause is monopolising the
  // CPU) when the deadline arrives — the timer still fires there and must
  // not unblock a thread that is already runnable.
  const std::uint64_t token = ++t->sleep_token_;
  t->sleep_timer_ = engine_.schedule_at(when, [this, t, token] {
    t->sleep_timer_ = 0;  // firing retires the id; nothing left to cancel
    if (t->sleep_token_ != token) return;  // a later sleep owns this thread
    if (t->state_ != ThreadState::blocked || t->queue_ != &blocked_) return;
    unblock(t);
  });
  block(sim::Activity::idle);
  ++t->sleep_token_;
  if (t->sleep_timer_ != 0) {
    engine_.cancel(t->sleep_timer_);
    t->sleep_timer_ = 0;
  }
}

void Scheduler::join(Thread* t) {
  NCS_ASSERT(t != nullptr);
  Thread* self = current_;
  NCS_ASSERT_MSG(self != nullptr && g_active == this, "join() outside a thread");
  NCS_ASSERT_MSG(t != self, "thread joining itself");
  if (t->finished()) return;
  t->joiners_.push_back(self);
  block(sim::Activity::idle);
}

void Scheduler::set_priority(Thread* t, int priority) {
  NCS_ASSERT(t != nullptr);
  NCS_ASSERT(priority >= kHighestPriority && priority <= kLowestPriority);
  if (t->priority_ == priority) return;
  const bool requeue = t->state_ == ThreadState::runnable && t->queue_ != nullptr &&
                       t->queue_ != &blocked_;
  if (requeue) {
    t->queue_->remove(*t);
    t->queue_ = nullptr;
  }
  t->priority_ = priority;
  if (requeue) {
    make_runnable(t, /*front=*/false);
    kick();
  }
}

void Scheduler::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/dispatches", &stats_.dispatches);
  reg.counter(prefix + "/spawns", &stats_.spawns);
  reg.duration(prefix + "/cpu_busy", &stats_.cpu_busy);
  reg.duration(prefix + "/overhead", &stats_.overhead);
}

bool Scheduler::quiescent() const {
  if (current_ != nullptr || cpu_owner_ != nullptr || resume_direct_ != nullptr) return false;
  for (const auto& q : runnable_)
    if (!q.empty()) return false;
  return true;
}

std::size_t Scheduler::runnable_count() const {
  std::size_t n = 0;
  for (const auto& q : runnable_) n += q.size();
  return n;
}

Thread* Scheduler::thread_by_id(ThreadId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= threads_.size()) return nullptr;
  return threads_[static_cast<std::size_t>(id)].get();
}

}  // namespace ncs::mts
