#include "core/mts/scheduler.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::mts {

namespace {
/// The scheduler whose thread is executing right now. A plain global is
/// correct: the whole simulation runs on one OS thread, and dispatches
/// never nest (cross-host interactions go through engine events).
Scheduler* g_active = nullptr;
}  // namespace

Scheduler* Scheduler::active() { return g_active; }

Scheduler::Scheduler(sim::Engine& engine, SchedulerParams params)
    : engine_(engine),
      params_(std::move(params)),
      cores_(params_.smp, params_.name) {
  NCS_ASSERT(params_.cpu_mhz > 0);
}

Scheduler::~Scheduler() {
  // Unlink every thread before the Thread objects (and their hooks) die,
  // and retire any pending sleep timers so no queued event is left holding
  // a pointer into the threads we are about to destroy.
  for (auto& t : threads_) {
    if (t->sleep_timer_ != 0) engine_.cancel(t->sleep_timer_);
  }
  for (int c = 0; c < cores_.size(); ++c) {
    for (auto& q : cores_[c].runnable) q.clear();
  }
  blocked_.clear();
}

int Scheduler::place(const Thread& t) {
  const int n = cores_.size();
  if (t.affinity_ >= 0) {
    NCS_ASSERT_MSG(t.affinity_ < n, "thread pinned to a core the host lacks");
    return t.affinity_;
  }
  if (n == 1) return 0;
  if (t.cls_ == ThreadClass::system) {
    // dedicated_core reserves the last core for the communication planes;
    // the on-demand models start them on core 0 and let progress_hint()
    // pull them to wherever the application is waiting.
    return params_.smp.progress == ProgressModel::dedicated_core ? n - 1 : 0;
  }
  // User threads round-robin across the compute cores (all of them, unless
  // the last one is dedicated to progress).
  const int compute = params_.smp.progress == ProgressModel::dedicated_core ? n - 1 : n;
  const int c = next_user_core_ % compute;
  next_user_core_ = (next_user_core_ + 1) % compute;
  return c;
}

Thread* Scheduler::spawn(std::function<void()> body, ThreadOptions opts) {
  const auto id = static_cast<ThreadId>(threads_.size());
  threads_.push_back(std::make_unique<Thread>(*this, id, std::move(body), std::move(opts)));
  Thread* t = threads_.back().get();
  ++stats_.spawns;
  t->core_ = place(*t);

  if (timeline_ != nullptr) {
    t->timeline_track_ = timeline_->add_track(params_.name + "/" + t->name_);
    timeline_->transition(t->timeline_track_, engine_.now(), sim::Activity::idle);
  }
  if (trace_ != nullptr) t->trace_track_ = trace_->track(params_.name + "/" + t->name_);

  // Creation cost: charged inline when a thread of this host spawns,
  // otherwise (setup from engine context) pushed onto the new thread's
  // core horizon.
  if (params_.thread_create_cost > Duration::zero()) {
    if (g_active == this && current_ != nullptr) {
      stats_.overhead += params_.thread_create_cost;
      cores_[current_->core_].stats.overhead += params_.thread_create_cost;
      charge(params_.thread_create_cost, sim::Activity::overhead);
    } else {
      reserve_cpu(cores_[t->core_], params_.thread_create_cost, /*as_overhead=*/true);
    }
  }

  t->state_ = ThreadState::runnable;
  make_runnable(t, /*front=*/false);
  return t;
}

void Scheduler::make_runnable(Thread* t, bool front) {
  NCS_ASSERT(t->queue_ == nullptr);
  t->runnable_since_ = engine_.now();
  Core& c = cores_[t->core_];
  Queue& q = c.runnable[static_cast<std::size_t>(t->priority_)];
  if (front) {
    q.push_front(*t);
  } else {
    q.push_back(*t);
  }
  t->queue_ = &q;
  kick(c.index);
  // Idle-kick: a stealable thread that lands behind a busy core is
  // advertised to idle siblings now, instead of waiting for their next
  // natural dispatch pass. No-op on one core (no siblings).
  if (params_.smp.steal == StealPolicy::none) return;
  if (t->cls_ != ThreadClass::user || t->affinity_ >= 0) return;
  const bool busy = c.cpu_owner != nullptr || c.resume_direct != nullptr ||
                    engine_.now() < c.cpu_free_at;
  if (!busy) return;
  for (int s = 0; s < cores_.size(); ++s) {
    if (s != c.index && cores_[s].idle()) kick(s);
  }
}

Thread* Scheduler::pop_runnable(Core& core) {
  for (auto& q : core.runnable) {
    if (!q.empty()) {
      Thread& t = q.pop_front();
      t.queue_ = nullptr;
      if (prof_ != nullptr) {
        const Duration lat = engine_.now() - t.runnable_since_;
        prof_->record(obs::Layer::sched_dispatch, lat);
        if (cores_.size() > 1) prof_->record_core(core.prof_key, lat);
      }
      return &t;
    }
  }
  return nullptr;
}

Thread* Scheduler::steal_into(Core& thief) {
  if (thief.victims.empty()) return nullptr;
  // Keep the dedicated progress core dedicated: it never pulls user work.
  if (params_.smp.progress == ProgressModel::dedicated_core &&
      thief.index == cores_.size() - 1)
    return nullptr;
  for (int v : thief.victims) {
    Core& victim = cores_[v];
    for (auto& q : victim.runnable) {
      // The owner pops from the front of a level; the thief scans the same
      // level back-to-front (Chase-Lev discipline, simulated).
      for (auto it = q.end(); it != q.begin();) {
        --it;
        Thread& cand = *it;
        if (cand.cls_ != ThreadClass::user || cand.affinity_ >= 0) continue;
        q.remove(cand);
        cand.queue_ = nullptr;
        cand.core_ = thief.index;
        ++stats_.steals;
        ++thief.stats.steals_in;
        ++victim.stats.steals_out;
        if (trace_ != nullptr && cand.trace_track_ >= 0)
          trace_->instant(cand.trace_track_, "steal", "mts", engine_.now());
        if (prof_ != nullptr) {
          const Duration lat = engine_.now() - cand.runnable_since_;
          prof_->record(obs::Layer::sched_dispatch, lat);
          prof_->record_core(thief.prof_key, lat);
        }
        return &cand;
      }
    }
  }
  return nullptr;
}

void Scheduler::mark(Thread* t, sim::Activity a) {
  if (timeline_ != nullptr && t->timeline_track_ >= 0)
    timeline_->transition(t->timeline_track_, engine_.now(), a);
}

void Scheduler::reserve_cpu(Core& core, Duration d, bool as_overhead) {
  core.cpu_free_at = ncs::max(engine_.now(), core.cpu_free_at) + d;
  stats_.cpu_busy += d;
  core.stats.cpu_busy += d;
  if (as_overhead) {
    stats_.overhead += d;
    core.stats.overhead += d;
  }
}

void Scheduler::kick() {
  for (int c = 0; c < cores_.size(); ++c) kick(c);
}

void Scheduler::kick(int core) {
  Core& c = cores_[core];
  if (c.dispatch_scheduled || c.in_dispatch) return;
  c.dispatch_scheduled = true;
  engine_.post([this, core] {
    Core& c2 = cores_[core];
    c2.dispatch_scheduled = false;
    if (!c2.in_dispatch) dispatch_loop(core);
  });
}

void Scheduler::dispatch_loop(int core) {
  Core& c = cores_[core];
  NCS_ASSERT(!c.in_dispatch && current_ == nullptr);
  c.in_dispatch = true;
  for (;;) {
    // Overhead window (context switch / spawn cost) still running.
    if (engine_.now() < c.cpu_free_at) {
      if (!c.dispatch_scheduled) {
        c.dispatch_scheduled = true;
        engine_.schedule_at(c.cpu_free_at, [this, core] {
          Core& c2 = cores_[core];
          c2.dispatch_scheduled = false;
          if (!c2.in_dispatch) dispatch_loop(core);
        });
      }
      break;
    }

    Thread* t = nullptr;
    if (c.resume_direct != nullptr) {
      // Continuation of the running thread (post-charge or post-switch-cost):
      // no context switch happens, so no switch cost.
      t = std::exchange(c.resume_direct, nullptr);
    } else if (c.cpu_owner != nullptr) {
      break;  // a charge window is in progress; its timer will resume us
    } else {
      t = pop_runnable(c);
      if (t == nullptr) t = steal_into(c);
      if (t == nullptr) break;
      if (params_.context_switch_cost > Duration::zero()) {
        // Pay the dispatch cost, then resume this thread directly.
        reserve_cpu(c, params_.context_switch_cost, /*as_overhead=*/true);
        c.resume_direct = t;
        continue;
      }
    }
    run_thread(c, t);
  }
  // The loop may leave runnable work behind a charge window or overhead
  // horizon; offer it to idle siblings before going quiet.
  advertise(c);
  c.in_dispatch = false;
}

void Scheduler::advertise(Core& core) {
  if (cores_.size() <= 1 || params_.smp.steal == StealPolicy::none) return;
  bool stealable = false;
  for (auto& q : core.runnable) {
    for (Thread& t : q) {
      if (t.thread_class() == ThreadClass::user && t.affinity() < 0) {
        stealable = true;
        break;
      }
    }
    if (stealable) break;
  }
  if (!stealable) return;
  for (int s = 0; s < cores_.size(); ++s) {
    if (s != core.index && cores_[s].idle()) kick(s);
  }
}

void Scheduler::run_thread(Core& core, Thread* t) {
  NCS_ASSERT(t->queue_ == nullptr);
  NCS_ASSERT(t->state_ == ThreadState::runnable || t->state_ == ThreadState::blocked);
  NCS_ASSERT(t->core_ == core.index);
  t->state_ = ThreadState::running;
  current_ = t;
  ++stats_.dispatches;
  ++core.stats.dispatches;
  if (trace_ != nullptr && t->trace_track_ >= 0)
    trace_->instant(t->trace_track_, "dispatch", "mts", engine_.now());

  Scheduler* prev_active = g_active;
  g_active = this;
  qt::Context::switch_to(scheduler_context_, t->context_);
  g_active = prev_active;
  current_ = nullptr;
}

void Scheduler::switch_to_scheduler() {
  Thread* t = current_;
  NCS_ASSERT(t != nullptr);
  qt::Context::switch_to(t->context_, scheduler_context_);
  // Resumed: run_thread set current_ = t again before switching here.
  NCS_ASSERT(current_ == t && t->state_ == ThreadState::running);
}

void Scheduler::thread_main(Thread* t) {
  NCS_ASSERT(current_ == t);
  t->body_();
  t->body_ = nullptr;  // release captured resources
  t->state_ = ThreadState::finished;
  mark(t, sim::Activity::idle);
  for (Thread* j : t->joiners_) unblock(j);
  t->joiners_.clear();
  // Switch away forever.
  qt::Context::switch_to(t->context_, scheduler_context_);
  NCS_UNREACHABLE("finished thread resumed");
}

void Scheduler::block(sim::Activity blocked_as) {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "block() outside a thread");
  t->state_ = ThreadState::blocked;
  t->blocked_as_ = blocked_as;
  t->block_began_ = engine_.now();
  blocked_.push_back(*t);
  t->queue_ = &blocked_;
  mark(t, blocked_as);
  switch_to_scheduler();
  mark(t, sim::Activity::idle);
  if (trace_ != nullptr && t->trace_track_ >= 0)
    trace_->complete(t->trace_track_,
                     std::string("block:") + sim::activity_name(blocked_as), "mts",
                     t->block_began_, engine_.now() - t->block_began_);
}

void Scheduler::unblock(Thread* t) {
  NCS_ASSERT(t != nullptr);
  NCS_ASSERT_MSG(t->state_ == ThreadState::blocked && t->queue_ == &blocked_,
                 "unblock target is not on the blocked queue");
  blocked_.remove(*t);
  t->queue_ = nullptr;
  t->state_ = ThreadState::runnable;
  mark(t, sim::Activity::idle);
  // Sticky wake-up: the thread re-queues on the core it last ran on.
  make_runnable(t, /*front=*/false);
}

void Scheduler::charge(Duration d, sim::Activity a) {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "charge() outside a thread");
  if (d <= Duration::zero()) return;
  // hybrid progress: long user-thread compute bursts are sliced at
  // poll_quantum with a yield point between slices, bounding how long the
  // communication planes can starve behind a busy core.
  if (params_.smp.progress == ProgressModel::hybrid &&
      t->cls_ == ThreadClass::user && params_.smp.poll_quantum > Duration::zero()) {
    while (d > params_.smp.poll_quantum) {
      charge_window(t, params_.smp.poll_quantum, a);
      d = d - params_.smp.poll_quantum;
      yield_to_higher();
    }
  }
  charge_window(t, d, a);
}

void Scheduler::charge_window(Thread* t, Duration d, sim::Activity a) {
  const int core = t->core_;
  Core& c = cores_[core];
  if (trace_ != nullptr && t->trace_track_ >= 0)
    trace_->complete(t->trace_track_, std::string("charge:") + sim::activity_name(a), "mts",
                     engine_.now(), d);
  mark(t, a);
  stats_.cpu_busy += d;
  c.stats.cpu_busy += d;
  NCS_ASSERT(c.cpu_owner == nullptr);
  c.cpu_owner = t;
  engine_.schedule_after(d, [this, t, core] {
    Core& c2 = cores_[core];
    NCS_ASSERT(c2.cpu_owner == t);
    c2.cpu_owner = nullptr;
    c2.resume_direct = t;
    if (!c2.in_dispatch) dispatch_loop(core);
  });
  t->state_ = ThreadState::blocked;  // parked, but owns the core; not queued
  switch_to_scheduler();
  mark(t, sim::Activity::idle);
}

void Scheduler::yield() {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "yield() outside a thread");
  if (cores_[t->core_].runnable_count() == 0) return;  // nothing to yield to here
  t->state_ = ThreadState::runnable;
  make_runnable(t, /*front=*/false);
  mark(t, sim::Activity::idle);
  switch_to_scheduler();
}

void Scheduler::yield_to_higher() {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "yield_to_higher() outside a thread");
  Core& c = cores_[t->core_];
  bool higher = false;
  for (int p = kHighestPriority; p < t->priority_; ++p) {
    if (!c.runnable[static_cast<std::size_t>(p)].empty()) {
      higher = true;
      break;
    }
  }
  if (!higher) return;
  t->state_ = ThreadState::runnable;
  make_runnable(t, /*front=*/true);
  mark(t, sim::Activity::idle);
  switch_to_scheduler();
}

void Scheduler::sleep_until(TimePoint when) {
  Thread* t = current_;
  NCS_ASSERT_MSG(t != nullptr && g_active == this, "sleep_until() outside a thread");
  if (when <= engine_.now()) return;
  // The thread may be woken before `when` by another path (unblock from a
  // sibling, NCS_unblock, ...). When the block returns we cancel the timer,
  // so it neither fires stale for a later sleep nor sits dead in the event
  // queue until `when`. The token + state checks stay as defense in depth
  // for the one window cancellation cannot close: the thread was woken
  // early but not yet re-dispatched (e.g. a fault pause is monopolising the
  // CPU) when the deadline arrives — the timer still fires there and must
  // not unblock a thread that is already runnable.
  const std::uint64_t token = ++t->sleep_token_;
  t->sleep_timer_ = engine_.schedule_at(when, [this, t, token] {
    t->sleep_timer_ = 0;  // firing retires the id; nothing left to cancel
    if (t->sleep_token_ != token) return;  // a later sleep owns this thread
    if (t->state_ != ThreadState::blocked || t->queue_ != &blocked_) return;
    unblock(t);
  });
  block(sim::Activity::idle);
  ++t->sleep_token_;
  if (t->sleep_timer_ != 0) {
    engine_.cancel(t->sleep_timer_);
    t->sleep_timer_ = 0;
  }
}

void Scheduler::join(Thread* t) {
  NCS_ASSERT(t != nullptr);
  Thread* self = current_;
  NCS_ASSERT_MSG(self != nullptr && g_active == this, "join() outside a thread");
  NCS_ASSERT_MSG(t != self, "thread joining itself");
  if (t->finished()) return;
  t->joiners_.push_back(self);
  block(sim::Activity::idle);
}

void Scheduler::set_priority(Thread* t, int priority) {
  NCS_ASSERT(t != nullptr);
  NCS_ASSERT(priority >= kHighestPriority && priority <= kLowestPriority);
  if (t->priority_ == priority) return;
  const bool requeue = t->state_ == ThreadState::runnable && t->queue_ != nullptr &&
                       t->queue_ != &blocked_;
  if (requeue) {
    t->queue_->remove(*t);
    t->queue_ = nullptr;
  }
  t->priority_ = priority;
  if (requeue) make_runnable(t, /*front=*/false);
}

void Scheduler::progress_hint() {
  if (cores_.size() <= 1) return;
  if (params_.smp.progress != ProgressModel::on_demand &&
      params_.smp.progress != ProgressModel::hybrid)
    return;
  Thread* self = current_;
  NCS_ASSERT_MSG(self != nullptr && g_active == this, "progress_hint() outside a thread");
  Core& here = cores_[self->core_];
  for (int ci = 0; ci < cores_.size(); ++ci) {
    if (ci == here.index) continue;
    Core& other = cores_[ci];
    for (auto& q : other.runnable) {
      for (auto it = q.begin(); it != q.end();) {
        Thread& cand = *it;
        ++it;  // advance before a possible unlink
        if (cand.cls_ != ThreadClass::system || cand.affinity_ >= 0) continue;
        q.remove(cand);
        cand.queue_ = nullptr;
        cand.core_ = here.index;
        ++here.stats.migrations_in;
        if (trace_ != nullptr && cand.trace_track_ >= 0)
          trace_->instant(cand.trace_track_, "migrate", "mts", engine_.now());
        make_runnable(&cand, /*front=*/false);
      }
    }
  }
}

void Scheduler::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/dispatches", &stats_.dispatches);
  reg.counter(prefix + "/spawns", &stats_.spawns);
  reg.duration(prefix + "/cpu_busy", &stats_.cpu_busy);
  reg.duration(prefix + "/overhead", &stats_.overhead);
  if (cores_.size() > 1) {
    reg.counter(prefix + "/steals", &stats_.steals);
    for (int c = 0; c < cores_.size(); ++c) {
      const std::string p = prefix + "/core" + std::to_string(c);
      const CoreStats& s = cores_[c].stats;
      reg.counter(p + "/dispatches", &s.dispatches);
      reg.counter(p + "/steals_in", &s.steals_in);
      reg.counter(p + "/steals_out", &s.steals_out);
      reg.counter(p + "/migrations_in", &s.migrations_in);
      reg.duration(p + "/cpu_busy", &s.cpu_busy);
      reg.duration(p + "/overhead", &s.overhead);
    }
  }
}

bool Scheduler::quiescent() const {
  if (current_ != nullptr) return false;
  for (int c = 0; c < cores_.size(); ++c) {
    if (!cores_[c].idle()) return false;
  }
  return true;
}

std::size_t Scheduler::runnable_count() const {
  std::size_t n = 0;
  for (int c = 0; c < cores_.size(); ++c) n += cores_[c].runnable_count();
  return n;
}

std::size_t Scheduler::runnable_count_on(int core) const {
  return cores_[core].runnable_count();
}

Thread* Scheduler::thread_by_id(ThreadId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= threads_.size()) return nullptr;
  return threads_[static_cast<std::size_t>(id)].get();
}

}  // namespace ncs::mts
