// NCS_MTS thread object.
//
// Mirrors the paper's Section 4.1: a thread is blocked, runnable or
// running; it lives on doubly-linked queues (one circular runnable queue
// per priority level, one blocked queue); and it is either a *system*
// thread (send / receive / flow control / error control, created by
// NCS_init) or a *user* thread (compute threads created by NCS_t_create).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/intrusive_list.hpp"
#include "common/time.hpp"
#include "qt/context.hpp"
#include "qt/stack.hpp"
#include "sim/engine.hpp"
#include "sim/timeline.hpp"

namespace ncs::mts {

class Scheduler;

using ThreadId = std::int32_t;
inline constexpr ThreadId kInvalidThread = -1;

/// Priority levels, highest first. The paper: "current implementation has
/// N = 16", round-robin within each level.
inline constexpr int kPriorityLevels = 16;
inline constexpr int kHighestPriority = 0;
inline constexpr int kDefaultPriority = 8;
inline constexpr int kLowestPriority = kPriorityLevels - 1;

enum class ThreadState : std::uint8_t { runnable, running, blocked, finished };
enum class ThreadClass : std::uint8_t { user, system };

const char* to_string(ThreadState s);

struct ThreadOptions {
  std::string name;
  int priority = kDefaultPriority;
  ThreadClass cls = ThreadClass::user;
  std::size_t stack_size = qt::Stack::kDefaultSize;
  /// Pin the thread to one core of a multi-core host (core/mts/smp.hpp):
  /// it is never stolen or migrated. -1 = let the scheduler place it.
  int affinity = -1;
};

class Thread {
 public:
  Thread(Scheduler& scheduler, ThreadId id, std::function<void()> body, ThreadOptions opts);

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  ThreadId id() const { return id_; }
  const std::string& name() const { return name_; }
  int priority() const { return priority_; }
  ThreadClass thread_class() const { return cls_; }
  ThreadState state() const { return state_; }
  Scheduler& scheduler() { return scheduler_; }
  /// Core the thread is currently bound to (queued on / running on). Work
  /// stealing and on-demand progress migration rebind unpinned threads.
  int core() const { return core_; }
  /// Pinned core, or -1 when the scheduler may move the thread.
  int affinity() const { return affinity_; }

  bool finished() const { return state_ == ThreadState::finished; }

  /// Peak stack usage, valid once the thread has run (stacks are painted).
  std::size_t stack_high_watermark() const { return stack_.high_watermark(); }

 private:
  friend class Scheduler;
  static void trampoline(void* self);

  Scheduler& scheduler_;
  ThreadId id_;
  std::string name_;
  int priority_;
  ThreadClass cls_;
  ThreadState state_ = ThreadState::runnable;
  int affinity_ = -1;
  int core_ = 0;

  std::function<void()> body_;
  qt::Stack stack_;
  qt::Context context_;

  ListHook queue_hook_;  // runnable queue or blocked queue
  IntrusiveList<Thread, &Thread::queue_hook_>* queue_ = nullptr;

  // Joiners blocked on this thread's completion.
  std::vector<Thread*> joiners_;

  int timeline_track_ = -1;
  int trace_track_ = -1;
  sim::Activity blocked_as_ = sim::Activity::idle;
  TimePoint block_began_;
  /// When the thread last entered a runnable queue; pop_runnable() turns
  /// it into a dispatch-latency sample when profiling is on.
  TimePoint runnable_since_;
  /// Sleep generation: bumped when a sleep starts and when its block
  /// returns, so a sleep_until() timer can detect it has gone stale
  /// (the thread was woken early by another path).
  std::uint64_t sleep_token_ = 0;
  /// The pending sleep_until() timer event, cancelled when the thread is
  /// woken early so a dead timer neither fires stale nor sits in the event
  /// queue until its deadline. 0 = no timer pending.
  sim::EventId sleep_timer_ = 0;

 public:
  /// The intrusive queue type threaded through queue_hook_ — the per-core
  /// runnable levels and the host blocked queue (scheduler internals; see
  /// core/mts/smp.hpp).
  using Queue = IntrusiveList<Thread, &Thread::queue_hook_>;
};

}  // namespace ncs::mts
