#include "core/mts/thread.hpp"

#include <utility>

#include "core/mts/scheduler.hpp"

namespace ncs::mts {

const char* to_string(ThreadState s) {
  switch (s) {
    case ThreadState::runnable: return "runnable";
    case ThreadState::running: return "running";
    case ThreadState::blocked: return "blocked";
    case ThreadState::finished: return "finished";
  }
  return "?";
}

Thread::Thread(Scheduler& scheduler, ThreadId id, std::function<void()> body, ThreadOptions opts)
    : scheduler_(scheduler),
      id_(id),
      name_(opts.name.empty() ? "t" + std::to_string(id) : std::move(opts.name)),
      priority_(opts.priority),
      cls_(opts.cls),
      affinity_(opts.affinity),
      body_(std::move(body)),
      stack_(opts.stack_size) {
  NCS_ASSERT(priority_ >= kHighestPriority && priority_ <= kLowestPriority);
  NCS_ASSERT(body_ != nullptr);
  stack_.paint();
  context_.init(stack_, &Thread::trampoline, this);
}

void Thread::trampoline(void* self) {
  auto* t = static_cast<Thread*>(self);
  t->scheduler_.thread_main(t);
  NCS_UNREACHABLE("thread_main returned");
}

}  // namespace ncs::mts
