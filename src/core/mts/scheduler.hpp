// NCS_MTS scheduler — the per-host user-space thread runtime.
//
// Implements the paper's Section 4.1 on top of qt contexts and the
// discrete-event clock:
//
//  - 16 priority levels, round-robin within a level, via one intrusive
//    doubly-linked queue per level (Fig 9);
//  - a blocked queue with O(1) unblocking;
//  - non-preemptive dispatch: a running thread keeps the (single, simulated)
//    CPU until it blocks, yields or finishes — user-space threading on a
//    1995 UNIX workstation had no other option;
//  - virtual-time integration: charge() performs its caller's computation
//    cost by reserving the CPU for a window of simulated time. Sibling
//    threads may become runnable meanwhile but are not dispatched, which is
//    exactly the overlap behaviour the paper's Fig 16 illustrates — the
//    *network* makes progress during a compute window, other threads do not;
//  - a per-dispatch context-switch cost, the "overhead of maintaining
//    threads" the paper cites to explain NCS losing slightly to p4 at one
//    node (Table 1).
//
// One Scheduler == one simulated host. The host has SmpParams::n_cores
// virtual CPUs (core/mts/smp.hpp): each core has its own run queues,
// dispatch state and busy horizon, while the thread table, blocked queue
// and fiber machinery stay host-wide. With one core (the default) the
// behaviour is bit-identical to the original single-CPU scheduler. All
// schedulers in a simulation interleave deterministically through the
// shared engine.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "core/mts/smp.hpp"
#include "core/mts/thread.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/timeline.hpp"

namespace ncs::mts {

struct SchedulerParams {
  std::string name = "host";
  /// Host CPU clock; compute costs are expressed in cycles (the paper's
  /// ELCs run ~33 MHz, IPXs ~40 MHz).
  double cpu_mhz = 40.0;
  /// CPU cost of one thread dispatch (context switch + queue maintenance).
  /// QuickThreads-era user-space switches were a few microseconds.
  Duration context_switch_cost = Duration::microseconds(8);
  /// CPU cost of creating a thread.
  Duration thread_create_cost = Duration::microseconds(25);
  /// Multi-core layout, stealing and progress model (core/mts/smp.hpp).
  SmpParams smp;
};

class Scheduler {
 public:
  Scheduler(sim::Engine& engine, SchedulerParams params);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  sim::Engine& engine() { return engine_; }
  const SchedulerParams& params() const { return params_; }
  const std::string& name() const { return params_.name; }

  /// Converts a cycle count on this host's CPU to simulated time.
  Duration cycles(double n) const { return Duration::seconds(n / (params_.cpu_mhz * 1e6)); }

  // --- thread management (engine context or thread context) ---

  /// Creates a thread; it becomes runnable immediately (dispatch happens
  /// via the engine). The scheduler owns the Thread.
  Thread* spawn(std::function<void()> body, ThreadOptions opts = {});

  /// Moves a blocked thread to its core's runnable queue and kicks dispatch.
  void unblock(Thread* t);

  /// Schedules a dispatch pass on every core that has none pending.
  void kick();

  // --- primitives callable only from a running thread of this scheduler ---

  /// Blocks the current thread until someone unblocks it. `blocked_as`
  /// tags the blocked interval on the timeline (communicate for message
  /// waits, idle for joins/barriers).
  void block(sim::Activity blocked_as = sim::Activity::idle);

  /// Reserves the CPU for `d` of simulated time, tagged `a` on the
  /// timeline. The thread resumes — still running, never re-queued —
  /// when the window elapses. This is how all computation and protocol
  /// processing spends virtual time.
  void charge(Duration d, sim::Activity a = sim::Activity::compute);

  /// Cycle-count convenience for charge().
  void charge_cycles(double n, sim::Activity a = sim::Activity::compute) {
    charge(cycles(n), a);
  }

  /// Re-queues the current thread behind its priority peers and dispatches.
  void yield();

  /// Yields only if a strictly higher-priority thread is runnable (and then
  /// re-queues at the *front* of this thread's level, preserving
  /// run-to-completion order among peers). The idiom for long computations:
  /// give the system threads their dispatch points without timesharing
  /// against sibling compute threads.
  void yield_to_higher();

  /// Blocks the current thread until `t` (CPU free — unlike charge()).
  void sleep_until(TimePoint t);
  void sleep_for(Duration d) { sleep_until(engine_.now() + d); }

  /// Blocks until `t` finishes (returns immediately if it already has).
  void join(Thread* t);

  /// Changes a thread's priority level. A runnable thread is re-queued at
  /// the back of its new level; running/blocked threads take the new level
  /// at their next queueing.
  void set_priority(Thread* t, int priority);

  /// On-demand communication progress (ProgressModel::on_demand): pulls
  /// runnable, unpinned system-class threads from sibling cores onto the
  /// calling thread's core, so the protocol planes run here while the
  /// caller waits. The NCS_recv path calls this before blocking; a no-op
  /// on one core or under the other progress models.
  void progress_hint();

  /// The running thread, or nullptr from engine context.
  Thread* current() { return current_; }

  /// Scheduler of the thread currently executing, set only while a thread
  /// runs. Free functions (mps API) use this to find "my host".
  static Scheduler* active();

  // --- introspection ---
  bool quiescent() const;  // no runnable or running threads
  std::size_t runnable_count() const;
  std::size_t runnable_count_on(int core) const;
  Thread* thread_by_id(ThreadId id);

  int n_cores() const { return cores_.size(); }
  const CoreStats& core_stats(int core) const { return cores_[core].stats; }

  struct Stats {
    std::uint64_t dispatches = 0;
    std::uint64_t spawns = 0;
    std::uint64_t steals = 0;  // cross-core steals (0 on one core)
    Duration cpu_busy;      // total charged time incl. switch overhead
    Duration overhead;      // context-switch + spawn portion of cpu_busy
  };
  const Stats& stats() const { return stats_; }

  /// Attach an activity timeline; threads spawned afterwards get tracks
  /// named "<host>/<thread>".
  void set_timeline(sim::Timeline* timeline) { timeline_ = timeline; }

  /// Attach a span log; threads spawned afterwards emit dispatch instants
  /// plus charge and block spans on tracks named "<host>/<thread>".
  void set_trace(obs::TraceLog* trace) { trace_ = trace; }

  /// Per-dispatch runnable->running latency feeds Layer::sched_dispatch —
  /// the time work sits queued behind the non-preemptive CPU, i.e. the
  /// scheduling share of the paper's "overhead of maintaining threads".
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

  /// Registers this host's counters under `prefix` (e.g. "p0/mts").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

 private:
  friend class Thread;

  using Queue = Thread::Queue;

  void kick(int core);
  void dispatch_loop(int core);
  void run_thread(Core& core, Thread* t);
  void switch_to_scheduler();
  void thread_main(Thread* t);  // called from trampoline
  void make_runnable(Thread* t, bool front);
  Thread* pop_runnable(Core& core);
  Thread* steal_into(Core& thief);
  void advertise(Core& core);  // offer leftover stealable work to idle siblings
  int place(const Thread& t);  // initial core for a newly spawned thread
  void mark(Thread* t, sim::Activity a);
  void reserve_cpu(Core& core, Duration d, bool as_overhead);
  void charge_window(Thread* t, Duration d, sim::Activity a);

  sim::Engine& engine_;
  SchedulerParams params_;
  sim::Timeline* timeline_ = nullptr;
  obs::TraceLog* trace_ = nullptr;
  obs::Profiler* prof_ = nullptr;

  std::vector<std::unique_ptr<Thread>> threads_;
  /// Per-core run contexts (queues, dispatch state, busy horizons). The
  /// blocked queue stays host-wide: a blocked thread belongs to no core's
  /// run state, only its `core_` field remembers where it will wake.
  CoreSet cores_;
  Queue blocked_;

  /// One fiber context suffices for all cores: the whole simulation runs
  /// on one OS thread and dispatch loops never nest, so at most one core
  /// is mid-dispatch at any host at any real instant.
  qt::Context scheduler_context_;
  Thread* current_ = nullptr;
  /// Round-robin cursor for placing new user threads across compute cores.
  int next_user_core_ = 0;

  Stats stats_;
};

}  // namespace ncs::mts
