// NCS_MTS synchronization primitives.
//
// The paper's services taxonomy (Section 3.1) lists synchronization —
// barrier, wait, signal — alongside point-to-point and group
// communication. These are the intra-process primitives, built directly
// on block()/unblock(); the cross-process barrier lives in NCS_MPS.
//
// Cooperative threads never race on plain data (a thread only loses the
// CPU at a blocking call), so these primitives order *blocking points*:
// a semaphore hand-off, a producer/consumer queue, a phase barrier.
#pragma once

#include <deque>
#include <optional>

#include "core/mts/scheduler.hpp"

namespace ncs::mts {

/// Counting semaphore — the paper's wait/signal pair.
class Semaphore {
 public:
  explicit Semaphore(Scheduler& sched, int initial = 0) : sched_(sched), value_(initial) {
    NCS_ASSERT(initial >= 0);
  }

  /// P: decrements, blocking while the count is zero. FIFO wakeups.
  void wait();

  /// V: increments; wakes the longest-blocked waiter if any.
  void signal();

  int value() const { return value_; }

 private:
  Scheduler& sched_;
  int value_;
  std::deque<Thread*> waiters_;
};

/// Mutual exclusion across blocking points.
class Mutex {
 public:
  explicit Mutex(Scheduler& sched) : sem_(sched, 1) {}

  void lock() {
    sem_.wait();
    owner_ = Scheduler::active()->current();
  }
  void unlock() {
    NCS_ASSERT_MSG(owner_ == Scheduler::active()->current(), "unlock by non-owner");
    owner_ = nullptr;
    sem_.signal();
  }
  bool locked() const { return owner_ != nullptr; }

 private:
  Semaphore sem_;
  Thread* owner_ = nullptr;
};

/// RAII guard for Mutex.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable over Mutex.
class CondVar {
 public:
  explicit CondVar(Scheduler& sched) : sched_(sched) {}

  /// Atomically releases `m` and blocks; re-acquires before returning.
  void wait(Mutex& m);
  void notify_one();
  void notify_all();

 private:
  Scheduler& sched_;
  std::deque<Thread*> waiters_;
};

/// Reusable phase barrier for `parties` threads of one process.
class Barrier {
 public:
  Barrier(Scheduler& sched, int parties) : sched_(sched), parties_(parties) {
    NCS_ASSERT(parties >= 1);
  }

  /// Blocks until `parties` threads have arrived; the last arrival releases
  /// everyone and resets the barrier for the next phase.
  void arrive_and_wait();

  int generation() const { return generation_; }

 private:
  Scheduler& sched_;
  int parties_;
  int arrived_ = 0;
  int generation_ = 0;
  std::deque<Thread*> waiters_;
};

/// One-shot event: waiters block until set() (sticky thereafter).
class Event {
 public:
  explicit Event(Scheduler& sched) : sched_(sched) {}

  void wait();
  void set();
  bool is_set() const { return set_; }

 private:
  Scheduler& sched_;
  bool set_ = false;
  std::deque<Thread*> waiters_;
};

/// Unbounded single-process producer/consumer queue of T. The backbone of
/// the system threads: compute threads push send requests, the send thread
/// pops; the NIC upcall pushes chunks, the receive thread pops.
template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& sched) : sched_(sched) {}

  /// Callable from engine context or thread context.
  void push(T item) {
    items_.push_back(std::move(item));
    if (!waiters_.empty()) {
      Thread* t = waiters_.front();
      waiters_.pop_front();
      sched_.unblock(t);
    }
  }

  /// Thread context only: blocks until an item is available. Re-checks on
  /// wakeup: an item can be stolen by try_pop() between push and resume.
  T pop(sim::Activity blocked_as = sim::Activity::idle) {
    while (items_.empty()) {
      waiters_.push_back(sched_.current());
      sched_.block(blocked_as);
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop; callable from any context.
  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  Scheduler& sched_;
  std::deque<Thread*> waiters_;
  std::deque<T> items_;
};

}  // namespace ncs::mts
