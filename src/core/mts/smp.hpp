// Multi-core host runtime for NCS_MTS.
//
// The paper's Section 4.1 scheduler models one non-preemptive CPU per
// host. This header generalises it to N cores sharing one host's thread
// table: a CoreSet of per-core run contexts, each with its own 16-level
// priority queue, dispatch state and virtual-CPU horizon, plus the knobs
// that make the design ablatable:
//
//  - StealPolicy: when a core's own queues drain it may steal a runnable
//    *user-class, unpinned* thread from a sibling. The discipline is
//    Chase-Lev in spirit — the owner pops from the front of a level, the
//    thief scans from the back — but simulated and fully deterministic:
//    victim order is a seeded permutation fixed at construction, and all
//    scheduling flows through the engine's (time, insertion-seq) contract.
//
//  - ProgressModel: who runs the communication system planes (ncs-send /
//    ncs-recv / ncs-ec, the collective and RMA handlers).
//      dedicated_core : system threads are placed on the last core, user
//                       threads round-robin the remaining cores — progress
//                       is immediate but one core is lost to compute.
//      on_demand      : system threads start on core 0 unpinned; NCS_recv
//                       pulls runnable system threads onto the calling
//                       thread's core before it blocks (progress happens
//                       inside the application's receive, MPI-style).
//      hybrid         : like on_demand placement, but long user-thread
//                       charge() windows are sliced at poll_quantum with a
//                       yield-to-higher point between slices, bounding how
//                       long a compute burst can starve the planes.
//
// Determinism: with n_cores == 1 every operation reduces to the original
// single-CPU code path — no steal scans, no sibling kicks, no migrations —
// so existing digests (chaos_soak, BENCH_PR*.json) remain bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "core/mts/thread.hpp"

namespace ncs::mts {

enum class ProgressModel : std::uint8_t { dedicated_core, on_demand, hybrid };

enum class StealPolicy : std::uint8_t {
  none,    // strict per-core queues (ablation baseline)
  seeded,  // deterministic seeded victim permutation per thief core
  ring,    // scan victims in ring order starting at the next core
};

const char* to_string(ProgressModel m);
const char* to_string(StealPolicy p);

struct SmpParams {
  int n_cores = 1;
  StealPolicy steal = StealPolicy::seeded;
  ProgressModel progress = ProgressModel::dedicated_core;
  /// hybrid: maximum user-thread charge slice between yield points.
  Duration poll_quantum = Duration::microseconds(200);
  /// Seeds the per-core victim permutations (StealPolicy::seeded).
  std::uint64_t steal_seed = 1995;
};

struct CoreStats {
  std::uint64_t dispatches = 0;
  std::uint64_t steals_in = 0;       // threads this core stole from siblings
  std::uint64_t steals_out = 0;      // threads siblings stole from this core
  std::uint64_t migrations_in = 0;   // on-demand progress pulls onto this core
  Duration cpu_busy;                 // charged time incl. switch overhead
  Duration overhead;                 // context-switch + spawn portion
};

/// One per-core run context. This is the state that was per-Scheduler when
/// one Scheduler meant one CPU; the Scheduler now owns a CoreSet of these
/// and keeps only the host-wide state (thread table, blocked queue, fiber
/// context) shared.
struct Core {
  int index = 0;
  Thread::Queue runnable[kPriorityLevels];
  /// Thread whose charge() window is in progress on this core: it owns the
  /// core and is resumed directly, ahead of any queue, when the window ends.
  Thread* cpu_owner = nullptr;
  /// Thread to resume ahead of the queues (end of a charge window, or a
  /// dispatch whose context-switch cost was just paid).
  Thread* resume_direct = nullptr;
  /// Core busy horizon for switch/spawn overhead windows.
  TimePoint cpu_free_at;
  bool dispatch_scheduled = false;
  bool in_dispatch = false;
  /// Victim scan order for stealing (excludes this core; empty at 1 core).
  std::vector<int> victims;
  /// Cached per-core dispatch-attribution key, "<host>/c<index>".
  std::string prof_key;
  CoreStats stats;

  std::size_t runnable_count() const {
    std::size_t n = 0;
    for (const auto& q : runnable) n += q.size();
    return n;
  }
  /// No work bound to this core: nothing queued, nothing mid-charge,
  /// nothing waiting to resume.
  bool idle() const {
    return cpu_owner == nullptr && resume_direct == nullptr && runnable_count() == 0;
  }
};

/// The per-host collection of cores. Cores are stable in memory (metrics
/// registration takes addresses into CoreStats).
class CoreSet {
 public:
  CoreSet(const SmpParams& params, const std::string& host_name);

  int size() const { return static_cast<int>(cores_.size()); }
  Core& operator[](int i) { return *cores_[static_cast<std::size_t>(i)]; }
  const Core& operator[](int i) const { return *cores_[static_cast<std::size_t>(i)]; }

 private:
  std::vector<std::unique_ptr<Core>> cores_;
};

/// Victim scan order for core `self` of `n_cores` under `policy`: a seeded
/// deterministic permutation of the siblings (seeded), ring order (ring),
/// or empty (none / single core).
std::vector<int> victim_order(int self, int n_cores, StealPolicy policy,
                              std::uint64_t seed);

}  // namespace ncs::mts
