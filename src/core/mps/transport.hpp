// NCS_MPS transport interface — the seam between the paper's two
// implementation approaches.
//
//   Approach 1 (evaluated, "NCS_MTS/p4"): P4Transport — NCS messages ride
//   p4 typed messages over TCP. NSM tier.
//
//   Approach 2 (described, HSM): AtmTransport — NCS messages go straight
//   to the ATM API: trap + copy into mapped kernel buffers, chunked
//   through the NIC's multiple I/O buffers (Fig 2 pipelining).
//
// Both sides run inside NCS system threads: submit() is called by the send
// thread and may block it (NIC buffer backpressure, p4 socket costs);
// recv_next() is called by the receive thread and blocks until a complete
// message has arrived and its receive-side CPU cost is charged.
#pragma once

#include <functional>

#include "core/mps/message.hpp"

namespace ncs::obs {
class Profiler;
}

namespace ncs::mps {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Static cost shape of this transport, used by the protocol engine to
  /// place its eager/rendezvous crossover (mps/proto.hpp). Zeroed fields
  /// mean "unknown" — the engine falls back to conservative defaults.
  struct CostHints {
    /// Fixed host-side cost charged per submitted message, independent of
    /// its size (trap/syscall, per-message bookkeeping).
    Duration per_message;
    /// Sustained host-side copy/processing bandwidth for the size-
    /// proportional part of a submit.
    double bytes_per_sec = 0.0;
    /// Preferred bulk-transfer granularity: the payload that fills one
    /// NIC I/O buffer (the unit of the multi-buffer DMA overlap), or 0
    /// when the transport has no such structure.
    std::size_t dma_window = 0;
  };

  /// Sends one message (send-thread context). Returns when the local
  /// hand-off completes — the paper's point at which the blocked compute
  /// thread may be woken.
  virtual void submit(const Message& msg) = 0;

  /// Bulk variant for rendezvous chunk frames: a transport that stages
  /// through fixed-size buffers may honor `chunk_hint` (bytes per staging
  /// copy, pre-clamped by the caller to cost_hints().dma_window) instead
  /// of its small-message chunking. Default: plain submit.
  virtual void submit_bulk(const Message& msg, std::size_t /*chunk_hint*/) { submit(msg); }

  virtual CostHints cost_hints() const { return {}; }

  /// Blocks until the next complete inbound message (receive-thread
  /// context). Receive-side CPU costs are charged here.
  virtual Message recv_next() = 0;

  /// Human-readable tier name ("NSM/p4" or "HSM/ATM").
  virtual const char* name() const = 0;

  /// Optional: invoked (system context, non-blocking) when the transport
  /// detects and drops a damaged inbound frame, with the source process.
  /// Transports without such a failure mode ignore it.
  virtual void set_frame_error_handler(std::function<void(int)> /*handler*/) {}

  /// Optional: transports with internal backpressure or staging record
  /// their stall/stage durations here (pointer-guarded, nullptr disables).
  virtual void set_profiler(obs::Profiler* /*prof*/) {}
};

}  // namespace ncs::mps
