// NCS_MPS transport interface — the seam between the paper's two
// implementation approaches.
//
//   Approach 1 (evaluated, "NCS_MTS/p4"): P4Transport — NCS messages ride
//   p4 typed messages over TCP. NSM tier.
//
//   Approach 2 (described, HSM): AtmTransport — NCS messages go straight
//   to the ATM API: trap + copy into mapped kernel buffers, chunked
//   through the NIC's multiple I/O buffers (Fig 2 pipelining).
//
// Both sides run inside NCS system threads: submit() is called by the send
// thread and may block it (NIC buffer backpressure, p4 socket costs);
// recv_next() is called by the receive thread and blocks until a complete
// message has arrived and its receive-side CPU cost is charged.
#pragma once

#include <functional>

#include "core/mps/message.hpp"

namespace ncs::obs {
class Profiler;
}

namespace ncs::mps {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one message (send-thread context). Returns when the local
  /// hand-off completes — the paper's point at which the blocked compute
  /// thread may be woken.
  virtual void submit(const Message& msg) = 0;

  /// Blocks until the next complete inbound message (receive-thread
  /// context). Receive-side CPU costs are charged here.
  virtual Message recv_next() = 0;

  /// Human-readable tier name ("NSM/p4" or "HSM/ATM").
  virtual const char* name() const = 0;

  /// Optional: invoked (system context, non-blocking) when the transport
  /// detects and drops a damaged inbound frame, with the source process.
  /// Transports without such a failure mode ignore it.
  virtual void set_frame_error_handler(std::function<void(int)> /*handler*/) {}

  /// Optional: transports with internal backpressure or staging record
  /// their stall/stage durations here (pointer-guarded, nullptr disables).
  virtual void set_profiler(obs::Profiler* /*prof*/) {}
};

}  // namespace ncs::mps
