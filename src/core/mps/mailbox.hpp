// Per-process mailbox: FIFO pending queue plus blocked receivers.
//
// deliver() is called by the receive system thread once a message is fully
// reassembled and its protocol cost charged; recv() is called by compute
// threads. Matching follows the paper's wildcard rules (Pattern).
#pragma once

#include <list>

#include "core/mps/exception.hpp"
#include "core/mps/message.hpp"
#include "core/mts/scheduler.hpp"

namespace ncs::mps {

class Mailbox {
 public:
  explicit Mailbox(mts::Scheduler& sched) : sched_(sched) {}

  /// Hands the message to the longest-waiting matching receiver, or queues
  /// it. Callable from any context.
  void deliver(Message msg);

  /// Blocks the calling thread until a matching message arrives. A nonzero
  /// `timeout` bounds the wait: if nothing matches in time, the waiter is
  /// withdrawn and NcsException(recv_timeout) is thrown into the caller —
  /// the exception-handling service's guarantee that threads observe
  /// failure instead of hanging.
  Message recv(Pattern pattern, Duration timeout = Duration::zero());

  /// Non-blocking probe.
  bool available(const Pattern& pattern) const;

  std::size_t pending() const { return pending_.size(); }

 private:
  struct Waiter {
    Pattern pattern;
    mts::Thread* thread;
    bool filled = false;
    bool timed_out = false;
    Message msg;
  };

  mts::Scheduler& sched_;
  std::list<Message> pending_;
  std::list<Waiter*> waiters_;
};

}  // namespace ncs::mps
