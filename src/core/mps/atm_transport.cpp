#include "core/mps/atm_transport.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/prof.hpp"

namespace ncs::mps {

AtmTransport::AtmTransport(mts::Scheduler& host, atm::Nic& nic, Params params)
    : host_(host), nic_(nic), params_(params), rx_(host) {
  NCS_ASSERT_MSG(params_.chunk_size >= kHeaderBytes, "chunk must hold the NCS header");
  NCS_ASSERT_MSG(params_.chunk_size <= nic.params().io_buffer_size,
                 "chunk larger than a NIC I/O buffer");
  nic_.set_rx_handler([this](atm::VcId vc, Bytes data, bool eom) {
    rx_.push(RxChunk{vc, std::move(data), eom});
  });
  if (params_.signaling != nullptr) {
    // A network-side RELEASE (peer teardown or port failure) retires the
    // cached circuit; the next send to that peer re-signals.
    params_.signaling->set_release_handler([this](atm::VcId a, atm::VcId b) {
      for (auto it = svc_to_.begin(); it != svc_to_.end();) {
        if (it->second == a || it->second == b) {
          ++stats_.svc_invalidations;
          NCS_INFO("ncs.hsm", "SVC to p%d released, will re-signal", it->first);
          it = svc_to_.erase(it);
        } else {
          ++it;
        }
      }
    });
  }
}

void AtmTransport::wait_for_tx_buffer() {
  const TimePoint started = host_.engine().now();
  while (!nic_.tx_buffer_available()) {
    ++stats_.tx_buffer_stalls;
    mts::Thread* self = host_.current();
    nic_.notify_tx_buffer([this, self] { host_.unblock(self); });
    host_.block(sim::Activity::communicate);
  }
  if (prof_ != nullptr) {
    const Duration stalled = host_.engine().now() - started;
    if (stalled > Duration::zero()) prof_->record(obs::Layer::tx_buffer_stall, stalled);
  }
}

atm::VcId AtmTransport::vc_towards(int to_process) {
  if (params_.signaling == nullptr) return atm::vc_to(to_process);

  const auto it = svc_to_.find(to_process);
  if (it != svc_to_.end()) return it->second;

  // First traffic for this peer: set up a switched circuit. The signaling
  // handshake is asynchronous; park the calling (send) thread until the
  // CONNECT arrives. Rejections (e.g. the peer's port is down) back off
  // and retry — a transient failure heals, a permanent one aborts.
  for (int attempt = 0;; ++attempt) {
    mts::Thread* self = host_.current();
    std::optional<Result<atm::VcId>> outcome;
    params_.signaling->open_call(to_process, [this, self, &outcome](Result<atm::VcId> vc) {
      outcome = std::move(vc);
      host_.unblock(self);
    });
    ++stats_.svc_calls_opened;
    while (!outcome.has_value()) host_.block(sim::Activity::communicate);
    if (outcome->is_ok()) {
      svc_to_.emplace(to_process, outcome->value());
      return outcome->value();
    }
    NCS_ASSERT_MSG(attempt < params_.svc_retry_limit,
                   "SVC call setup rejected past the retry limit");
    ++stats_.svc_retries;
    NCS_WARN("ncs.hsm", "SVC setup to p%d rejected, retrying (%d)", to_process, attempt + 1);
    host_.sleep_for(params_.svc_retry_backoff);
  }
}

void AtmTransport::submit(const Message& msg) { submit_bulk(msg, params_.chunk_size); }

void AtmTransport::submit_bulk(const Message& msg, std::size_t chunk_hint) {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &host_, "submit from a foreign thread");
  const std::size_t chunk =
      std::clamp(chunk_hint, params_.chunk_size, nic_.params().io_buffer_size);
  const atm::VcId vc = vc_towards(msg.to_process);
  const Bytes wire = encode(msg);

  std::size_t off = 0;
  do {
    const std::size_t len = std::min(chunk, wire.size() - off);
    // Backpressure first: copying into a buffer requires owning one.
    wait_for_tx_buffer();
    // Trap + copy into the mapped kernel buffer (Fig 3b: 2 accesses/word).
    host_.charge_cycles(params_.costs.ncs_chunk_cycles(len), sim::Activity::communicate);
    Bytes staged(wire.begin() + static_cast<std::ptrdiff_t>(off),
                 wire.begin() + static_cast<std::ptrdiff_t>(off + len));
    const bool last = off + len == wire.size();
    nic_.submit_tx(vc, std::move(staged), last);
    ++stats_.tx_chunks;
    off += len;
  } while (off < wire.size());
}

Transport::CostHints AtmTransport::cost_hints() const {
  CostHints h;
  // Fixed per-chunk host cost: the trap plus the NCS buffer bookkeeping
  // (the copy itself is the size-proportional part, reported as bandwidth).
  h.per_message =
      host_.cycles(params_.costs.trap_cycles + params_.costs.ncs_per_chunk_cycles);
  const double cycles_per_byte = params_.costs.ncs_accesses_per_word /
                                 params_.costs.word_bytes *
                                 params_.costs.cycles_per_bus_access;
  h.bytes_per_sec = host_.params().cpu_mhz * 1e6 / cycles_per_byte;
  h.dma_window = nic_.params().io_buffer_size;
  return h;
}

Message AtmTransport::recv_next() {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &host_, "recv_next from a foreign thread");
  for (;;) {
    RxChunk chunk = rx_.pop(sim::Activity::communicate);
    ++stats_.rx_chunks;
    // Trap + copy out of the mapped kernel buffer.
    host_.charge_cycles(params_.costs.ncs_chunk_cycles(chunk.data.size()),
                        sim::Activity::communicate);
    Bytes& buf = partial_[chunk.vc];
    append(buf, chunk.data);
    if (!chunk.end_of_message) continue;

    // A chunk lost on the wire (no error control) leaves an inconsistent
    // reassembly buffer; drop it — recovering is the error-control
    // policy's job, not the transport's.
    std::optional<Message> msg = try_decode(buf);
    buf.clear();
    // On the PVC mesh the VC label encodes the source; cross-check it.
    // SVC labels are dynamic, so the header is the source of truth there.
    const bool src_consistent =
        params_.signaling != nullptr || !msg.has_value() ||
        msg->from_process == atm::src_of(chunk.vc);
    if (!msg.has_value() || !src_consistent) {
      ++stats_.rx_frame_errors;
      NCS_WARN("ncs.hsm", "dropping garbled reassembly on vci %u", chunk.vc.vci);
      if (frame_error_handler_)
        frame_error_handler_(msg.has_value() ? msg->from_process
                                             : atm::src_of(chunk.vc));
      continue;
    }
    return std::move(*msg);
  }
}

}  // namespace ncs::mps
