#include "core/mps/flow_control.hpp"

#include "common/assert.hpp"

namespace ncs::mps {

const char* to_string(FlowControlKind k) {
  switch (k) {
    case FlowControlKind::none: return "none";
    case FlowControlKind::window: return "window";
    case FlowControlKind::rate: return "rate";
  }
  return "?";
}

FlowControl::FlowControl(mts::Scheduler& sched, FlowControlParams params, int n_procs)
    : sched_(sched), params_(params), outstanding_(static_cast<std::size_t>(n_procs), 0) {
  NCS_ASSERT(params_.window >= 1);
  NCS_ASSERT(params_.rate_bytes_per_sec > 0);
}

void FlowControl::before_send(const Message& msg) {
  switch (params_.kind) {
    case FlowControlKind::none:
      return;

    case FlowControlKind::window: {
      auto& out = outstanding_[static_cast<std::size_t>(msg.to_process)];
      const TimePoint started = sched_.engine().now();
      while (out >= params_.window) {
        ++stats_.window_stalls;
        window_waiters_.push_back(sched_.current());
        sched_.block(sim::Activity::communicate);
      }
      stats_.time_blocked += sched_.engine().now() - started;
      ++out;
      return;
    }

    case FlowControlKind::rate: {
      const TimePoint now = sched_.engine().now();
      if (next_free_ > now) {
        ++stats_.rate_delays;
        const TimePoint started = now;
        sched_.sleep_until(next_free_);
        stats_.time_blocked += sched_.engine().now() - started;
      }
      const Duration occupancy =
          Duration::seconds(static_cast<double>(msg.data.size()) / params_.rate_bytes_per_sec);
      next_free_ = ncs::max(sched_.engine().now(), next_free_) + occupancy;
      return;
    }
  }
}

void FlowControl::on_ack(int from_process) {
  if (params_.kind != FlowControlKind::window) return;
  auto& out = outstanding_[static_cast<std::size_t>(from_process)];
  // Clamp instead of asserting: with retransmitting error control over a
  // lossy link, duplicate deliveries produce duplicate acks.
  if (out > 0) --out;
  if (!window_waiters_.empty()) {
    mts::Thread* t = window_waiters_.front();
    window_waiters_.pop_front();
    sched_.unblock(t);
  }
}

}  // namespace ncs::mps
