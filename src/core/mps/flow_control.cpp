#include "core/mps/flow_control.hpp"

#include "common/assert.hpp"

namespace ncs::mps {

const char* to_string(FlowControlKind k) {
  switch (k) {
    case FlowControlKind::none: return "none";
    case FlowControlKind::window: return "window";
    case FlowControlKind::rate: return "rate";
  }
  return "?";
}

FlowControl::FlowControl(mts::Scheduler& sched, FlowControlParams params, int n_procs)
    : sched_(sched),
      params_(params),
      outstanding_(static_cast<std::size_t>(n_procs), 0),
      window_waiters_(static_cast<std::size_t>(n_procs)) {
  NCS_ASSERT(params_.window >= 1);
  NCS_ASSERT(params_.rate_bytes_per_sec > 0);
}

void FlowControl::before_send(const Message& msg) {
  switch (params_.kind) {
    case FlowControlKind::none:
      return;

    case FlowControlKind::window: {
      const auto dst = static_cast<std::size_t>(msg.to_process);
      auto& out = outstanding_[dst];
      auto& waiters = window_waiters_[dst];
      const TimePoint started = sched_.engine().now();
      // A sender queues when the window is full — or when earlier senders
      // are already queued: admitting a newcomer past the queue would let
      // it steal the credit an ack just granted to the front waiter, which
      // would then re-queue at the back and starve (FIFO inversion).
      if (out >= params_.window || !waiters.empty()) {
        ++stats_.window_stalls;
        waiters.push_back(WindowWaiter{sched_.current(), false});
        auto me = std::prev(waiters.end());
        for (;;) {
          sched_.block(sim::Activity::communicate);
          // An ack marked this entry and freed a credit, so the re-check
          // normally passes; it is kept so an unexpected wakeup cannot
          // overfill the window — re-arm and keep the queue seat.
          if (me->signaled && out < params_.window) break;
          me->signaled = false;
        }
        waiters.erase(me);
      }
      const Duration stalled = sched_.engine().now() - started;
      stats_.time_blocked += stalled;
      if (trace_ != nullptr && stalled > Duration::zero())
        trace_->complete(trace_track_, "fc-stall->p" + std::to_string(msg.to_process), "mps",
                         started, stalled);
      if (prof_ != nullptr && stalled > Duration::zero())
        prof_->record(obs::Layer::fc_stall, stalled);
      ++out;
      return;
    }

    case FlowControlKind::rate: {
      TimePoint now = sched_.engine().now();
      if (next_free_ > now) {
        ++stats_.rate_delays;
        const TimePoint started = now;
        // Loop until admitted: N senders sleeping toward the same horizon
        // all wake together, and only the first to dispatch may claim it —
        // it advances next_free_ below, so the re-check sends the others
        // back to sleep instead of letting the whole cohort inject a burst
        // above rate_bytes_per_sec.
        do {
          sched_.sleep_until(next_free_);
          now = sched_.engine().now();
        } while (next_free_ > now);
        stats_.time_blocked += now - started;
        if (trace_ != nullptr)
          trace_->complete(trace_track_, "rate-pace", "mps", started, now - started);
        if (prof_ != nullptr) prof_->record(obs::Layer::fc_stall, now - started);
      }
      const Duration occupancy =
          Duration::seconds(static_cast<double>(msg.data.size()) / params_.rate_bytes_per_sec);
      next_free_ = ncs::max(now, next_free_) + occupancy;
      return;
    }
  }
}

void FlowControl::on_ack(int from_process) {
  if (params_.kind != FlowControlKind::window) return;
  const auto src = static_cast<std::size_t>(from_process);
  auto& out = outstanding_[src];
  // Clamp instead of asserting: with retransmitting error control over a
  // lossy link, duplicate deliveries produce duplicate acks.
  if (out > 0) --out;
  // Wake only a thread stalled on *this* destination's window — credit for
  // process B is useless to a thread waiting on process A (it would
  // re-block, and B's waiter would sleep forever). The wakeup budget is
  // window - outstanding - already-signaled: a duplicate ack (clamped
  // above) frees no credit and must not wake a second waiter onto the one
  // credit, which would admit both and overfill the window.
  auto& waiters = window_waiters_[src];
  int signaled = 0;
  for (const WindowWaiter& w : waiters)
    if (w.signaled) ++signaled;
  if (out + signaled >= params_.window) return;
  for (WindowWaiter& w : waiters) {
    if (w.signaled) continue;
    w.signaled = true;
    sched_.unblock(w.thread);
    return;
  }
}

void FlowControl::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/window_stalls", &stats_.window_stalls);
  reg.counter(prefix + "/rate_delays", &stats_.rate_delays);
  reg.duration(prefix + "/time_blocked", &stats_.time_blocked);
}

}  // namespace ncs::mps
